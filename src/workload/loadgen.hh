/**
 * @file
 * Load generation and latency measurement (the role sockperf plays
 * in the paper, §6: "a network load generator optimized for Mellanox
 * hardware ... each experiment 5 times, 20 seconds, with 2 seconds
 * warmup").
 *
 * Two modes:
 *  - closed loop: N workers, each with one outstanding request —
 *    measures unloaded/matched-load latency and natural throughput;
 *  - open loop: Poisson arrivals at a target rate — measures latency
 *    under a fixed offered load (and loss under overload).
 *
 * The open loop is scheduled on *absolute intended send times*: each
 * request's slot in the Poisson schedule is drawn up front, and its
 * latency is measured from that intended time, whether or not the
 * client NIC could actually transmit on schedule. A backpressured
 * sender (PFC pause, saturated link) therefore *raises* the recorded
 * tail instead of silently stretching the inter-arrival gaps — the
 * classic coordinated-omission bug this file used to have.
 *
 * Open-loop requests carry per-request timeout accounting with an
 * exact conservation invariant over in-window requests:
 *
 *     sent == completed + windowValidationFailures
 *                       + late + lost + openInFlight
 *
 * where `lost` requests expired unanswered, `late` ones were answered
 * after their deadline (excluded from the latency sample), and
 * `openInFlight` are still awaiting a response or expiry.
 *
 * Latency is computed from the request timestamp echoed back in the
 * response (Message::sentAt), recorded into an HDR histogram inside
 * the measurement window only.
 */

#ifndef LYNX_WORKLOAD_LOADGEN_HH
#define LYNX_WORKLOAD_LOADGEN_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/message.hh"
#include "net/nic.hh"
#include "sim/co.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace lynx::workload {

/** Await a message with a deadline; nullopt on timeout. */
sim::Co<std::optional<net::Message>>
recvTimeout(sim::Simulator &sim, net::Endpoint &ep, sim::Tick timeout,
            sim::Tick pollStep = sim::microseconds(20));

/** Configuration of one load generator. */
struct LoadGenConfig
{
    /** The client machine's NIC. */
    net::Nic *nic = nullptr;

    /** Service address under test. */
    net::Address target;
    net::Protocol proto = net::Protocol::Udp;

    /** Closed-loop worker count (ignored in open-loop mode). */
    int concurrency = 1;

    /** >0: open-loop Poisson offered load, requests/second. */
    double openRate = 0.0;

    /** Measurement window: samples in [warmup, warmup+duration). */
    sim::Tick warmup = sim::milliseconds(20);
    sim::Tick duration = sim::milliseconds(200);

    /** Stop issuing after the window closes (plus drain time). */
    sim::Tick drain = sim::milliseconds(5);

    /** Request payload builder. */
    std::function<std::vector<std::uint8_t>(std::uint64_t seq, sim::Rng &)>
        makeRequest = [](std::uint64_t, sim::Rng &) {
            return std::vector<std::uint8_t>(64, 0x42);
        };

    /** Optional response checker. Failed responses are counted and
     *  excluded from completions and the latency sample. */
    std::function<bool(const net::Message &resp)> validate;

    /** First client port; closed-loop worker i uses basePort + i,
     *  open-loop logical client c uses basePort + (c % openPorts). */
    std::uint16_t basePort = 40000;

    /** Open loop: size of the client source-port pool. Each port is
     *  a distinct flow for RSS steering; logical clients multiplex
     *  onto the pool. The pool [basePort, basePort+openPorts) must
     *  fit in 16 bits — construction fails fast otherwise, exactly
     *  like an over-wide closed-loop worker range. */
    int openPorts = 1;

    /** Open loop: logical client population. Each request is issued
     *  by a uniformly drawn client whose identity fixes its source
     *  port (flow) and its routeTarget key — millions of clients
     *  without millions of endpoints. 0 = one client per pool port. */
    std::uint64_t logicalClients = 0;

    /** Per-request timeout. Closed loop: lost-datagram recovery.
     *  Open loop: a request unanswered this long after its *intended*
     *  send time counts `lost` (a response arriving later moves it to
     *  `late`); both are excluded from the latency sample. */
    sim::Tick requestTimeout = sim::milliseconds(20);

    /** SLO bound for goodput accounting: completions with latency <=
     *  slo count toward goodput(). 0 = no bound (goodput == completed). */
    sim::Tick slo = 0;

    /** Open loop: per-request target override keyed by logical client
     *  (cluster routing, e.g. a consistent-hash ring over machines).
     *  Unset = every request goes to `target`. */
    std::function<net::Address(std::uint64_t clientId)> routeTarget;

    /** Open loop: per-request tenant override keyed by logical
     *  client. Unset = the fixed `tenant` below. */
    std::function<std::uint16_t(std::uint64_t clientId)> tenantOf;

    /** Mean exponential think time between closed-loop requests
     *  (0 = none). Decorrelates workers for latency measurements. */
    sim::Tick thinkTime = 0;

    /** Tenant id stamped on every request (lynx/tenant.hh); 0 =
     *  untenanted. Pure metadata unless the serving runtime has a
     *  TenantTable enabled. */
    std::uint16_t tenant = 0;

    /** Metrics registration path. Scenarios with several generators
     *  (one per machine in the sharded cluster runs) give each a
     *  distinct name so merged snapshots keep them apart instead of
     *  colliding into "#2"-suffixed duplicates. */
    std::string metricsName = "workload.loadgen";

    std::uint64_t seed = 1;
};

/** A load generator bound to one client NIC. */
class LoadGen
{
  public:
    LoadGen(sim::Simulator &sim, LoadGenConfig cfg);
    ~LoadGen();

    LoadGen(const LoadGen &) = delete;
    LoadGen &operator=(const LoadGen &) = delete;

    /** Spawn the generator tasks. */
    void start();

    /** @return when the measurement window closes (run the simulator
     *  at least this far). */
    sim::Tick
    windowEnd() const
    {
        return cfg_.warmup + cfg_.duration + cfg_.drain;
    }

    /** @return response latency histogram (ns), window-only. In open
     *  loop, latencies are measured from the *intended* send time. */
    const sim::Histogram &latency() const { return latency_; }

    /** @return validated responses completed inside the window (open
     *  loop: before their deadline). */
    std::uint64_t completed() const { return completed_; }

    /** @return requests sent inside the window (open loop: requests
     *  whose *intended* send time lies in the window). */
    std::uint64_t sent() const { return sent_; }

    /** @return responses that failed validation (any window). */
    std::uint64_t validationFailures() const { return failures_; }

    /** @return in-window responses that failed validation (the
     *  conservation term). */
    std::uint64_t
    windowValidationFailures() const
    {
        return failuresWindow_;
    }

    /** @return request timeouts: closed-loop unanswered requests plus
     *  open-loop in-window requests that passed their deadline. */
    std::uint64_t timeouts() const { return timeouts_; }

    /** @return open-loop in-window requests that expired and were
     *  never answered. */
    std::uint64_t lost() const { return lost_; }

    /** @return open-loop in-window requests answered *after* their
     *  deadline (excluded from the latency sample). */
    std::uint64_t late() const { return late_; }

    /** @return completions within the SLO bound (== completed() when
     *  no SLO is configured). */
    std::uint64_t goodput() const { return goodput_; }

    /** @return open-loop in-window requests still awaiting a response
     *  or expiry. */
    std::uint64_t
    openInFlight() const
    {
        std::uint64_t n = 0;
        for (const auto &[seq, req] : outstanding_)
            n += req.inWindow ? 1 : 0;
        return n;
    }

    /** @return whether the open-loop books balance exactly:
     *  sent == completed + windowValidationFailures + late + lost +
     *  openInFlight. The terms are maintained independently (send
     *  path, receive path, expiry sweeper), so a hole in any of them
     *  breaks the balance — this is a real invariant, not an
     *  identity. */
    bool
    conservationHolds() const
    {
        return sent_ == completed_ + failuresWindow_ + late_ + lost_ +
                            openInFlight();
    }

    /** @return closed-loop responses discarded because their echoed
     *  seq did not match the outstanding request (a reply outliving
     *  its requestTimeout must not be attributed to the *next*
     *  request's latency sample), plus open-loop responses matching
     *  no outstanding or expired request (e.g. duplicates). */
    std::uint64_t
    staleResponses() const
    {
        return stats_.counterValue("stale_responses");
    }

    /** Counters ("stale_responses"), registered as
     *  "workload.loadgen" in the simulator's metrics registry. */
    sim::StatSet &stats() { return stats_; }

    /** @return completed-per-second over the window. */
    double
    throughputRps() const
    {
        return static_cast<double>(completed_) /
               sim::toSeconds(cfg_.duration);
    }

  private:
    /** One in-flight open-loop request. */
    struct OpenReq
    {
        sim::Tick intendedAt = 0;
        bool inWindow = false;
    };

    bool
    inWindow(sim::Tick t) const
    {
        return t >= cfg_.warmup && t < cfg_.warmup + cfg_.duration;
    }

    bool issuing() const { return sim_.now() < cfg_.warmup + cfg_.duration; }

    void recordResponse(const net::Message &resp);
    void recordOpenResponse(const net::Message &resp);

    sim::Task closedWorker(int idx);
    sim::Task openSender();
    sim::Task openReceiver(net::Endpoint &ep);
    sim::Task openExpiry();

    sim::Simulator &sim_;
    LoadGenConfig cfg_;
    sim::Rng rng_;
    std::uint64_t nextSeq_ = 0;

    sim::Histogram latency_;
    std::uint64_t completed_ = 0;
    std::uint64_t sent_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t failuresWindow_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t lost_ = 0;
    std::uint64_t late_ = 0;
    std::uint64_t goodput_ = 0;

    /** Open-loop request table: seq -> in-flight request. Every entry
     *  also has a deadline queued in expiry_ (deadlines are monotonic
     *  because intended times are). */
    std::unordered_map<std::uint64_t, OpenReq> outstanding_;
    /** Expired-but-unanswered requests (value: inWindow), kept so a
     *  straggler response classifies as `late`, not stale. */
    std::unordered_map<std::uint64_t, bool> expired_;
    std::deque<std::pair<std::uint64_t, sim::Tick>> expiry_;
    std::unique_ptr<sim::Gate> expiryGate_;
    /** The open sender drew its whole schedule (under backpressure
     *  this can be well after the window closes). */
    bool senderDone_ = false;

    sim::StatSet stats_;
    sim::Counter *cStaleResponses_;
};

} // namespace lynx::workload

#endif // LYNX_WORKLOAD_LOADGEN_HH

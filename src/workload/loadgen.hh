/**
 * @file
 * Load generation and latency measurement (the role sockperf plays
 * in the paper, §6: "a network load generator optimized for Mellanox
 * hardware ... each experiment 5 times, 20 seconds, with 2 seconds
 * warmup").
 *
 * Two modes:
 *  - closed loop: N workers, each with one outstanding request —
 *    measures unloaded/matched-load latency and natural throughput;
 *  - open loop: Poisson arrivals at a target rate — measures latency
 *    under a fixed offered load (and loss under overload).
 *
 * Latency is computed from the request timestamp echoed back in the
 * response (Message::sentAt), recorded into an HDR histogram inside
 * the measurement window only.
 */

#ifndef LYNX_WORKLOAD_LOADGEN_HH
#define LYNX_WORKLOAD_LOADGEN_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hh"
#include "net/nic.hh"
#include "sim/co.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace lynx::workload {

/** Await a message with a deadline; nullopt on timeout. */
sim::Co<std::optional<net::Message>>
recvTimeout(sim::Simulator &sim, net::Endpoint &ep, sim::Tick timeout,
            sim::Tick pollStep = sim::microseconds(20));

/** Configuration of one load generator. */
struct LoadGenConfig
{
    /** The client machine's NIC. */
    net::Nic *nic = nullptr;

    /** Service address under test. */
    net::Address target;
    net::Protocol proto = net::Protocol::Udp;

    /** Closed-loop worker count (ignored in open-loop mode). */
    int concurrency = 1;

    /** >0: open-loop Poisson offered load, requests/second. */
    double openRate = 0.0;

    /** Measurement window: samples in [warmup, warmup+duration). */
    sim::Tick warmup = sim::milliseconds(20);
    sim::Tick duration = sim::milliseconds(200);

    /** Stop issuing after the window closes (plus drain time). */
    sim::Tick drain = sim::milliseconds(5);

    /** Request payload builder. */
    std::function<std::vector<std::uint8_t>(std::uint64_t seq, sim::Rng &)>
        makeRequest = [](std::uint64_t, sim::Rng &) {
            return std::vector<std::uint8_t>(64, 0x42);
        };

    /** Optional response checker (counts failures). */
    std::function<bool(const net::Message &resp)> validate;

    /** First client port; worker i uses basePort + i. */
    std::uint16_t basePort = 40000;

    /** Closed-loop per-request timeout (lost-datagram recovery). */
    sim::Tick requestTimeout = sim::milliseconds(20);

    /** Mean exponential think time between closed-loop requests
     *  (0 = none). Decorrelates workers for latency measurements. */
    sim::Tick thinkTime = 0;

    /** Tenant id stamped on every request (lynx/tenant.hh); 0 =
     *  untenanted. Pure metadata unless the serving runtime has a
     *  TenantTable enabled. */
    std::uint16_t tenant = 0;

    std::uint64_t seed = 1;
};

/** A load generator bound to one client NIC. */
class LoadGen
{
  public:
    LoadGen(sim::Simulator &sim, LoadGenConfig cfg);
    ~LoadGen();

    LoadGen(const LoadGen &) = delete;
    LoadGen &operator=(const LoadGen &) = delete;

    /** Spawn the generator tasks. */
    void start();

    /** @return when the measurement window closes (run the simulator
     *  at least this far). */
    sim::Tick
    windowEnd() const
    {
        return cfg_.warmup + cfg_.duration + cfg_.drain;
    }

    /** @return response latency histogram (ns), window-only. */
    const sim::Histogram &latency() const { return latency_; }

    /** @return responses completed inside the window. */
    std::uint64_t completed() const { return completed_; }

    /** @return requests sent inside the window. */
    std::uint64_t sent() const { return sent_; }

    /** @return responses that failed validation. */
    std::uint64_t validationFailures() const { return failures_; }

    /** @return request timeouts observed (closed loop only). */
    std::uint64_t timeouts() const { return timeouts_; }

    /** @return closed-loop responses discarded because their echoed
     *  seq did not match the outstanding request (a reply outliving
     *  its requestTimeout must not be attributed to the *next*
     *  request's latency sample). */
    std::uint64_t
    staleResponses() const
    {
        return stats_.counterValue("stale_responses");
    }

    /** Counters ("stale_responses"), registered as
     *  "workload.loadgen" in the simulator's metrics registry. */
    sim::StatSet &stats() { return stats_; }

    /** @return completed-per-second over the window. */
    double
    throughputRps() const
    {
        return static_cast<double>(completed_) /
               sim::toSeconds(cfg_.duration);
    }

  private:
    bool
    inWindow(sim::Tick t) const
    {
        return t >= cfg_.warmup && t < cfg_.warmup + cfg_.duration;
    }

    bool issuing() const { return sim_.now() < cfg_.warmup + cfg_.duration; }

    void recordResponse(const net::Message &resp);

    sim::Task closedWorker(int idx);
    sim::Task openSender();
    sim::Task openReceiver(net::Endpoint &ep);

    sim::Simulator &sim_;
    LoadGenConfig cfg_;
    sim::Rng rng_;
    std::uint64_t nextSeq_ = 0;

    sim::Histogram latency_;
    std::uint64_t completed_ = 0;
    std::uint64_t sent_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t timeouts_ = 0;
    sim::StatSet stats_;
    sim::Counter *cStaleResponses_;
};

} // namespace lynx::workload

#endif // LYNX_WORKLOAD_LOADGEN_HH

/**
 * @file
 * Synthetic dataset generators.
 *
 * The paper evaluates with MNIST (28×28 grayscale digits) and the
 * color FERET face database (resized to 32×32). Neither dataset is
 * redistributable here, and none of the reproduced measurements
 * depend on pixel values — only on image dimensions and on responses
 * being checkable. These generators produce deterministic images of
 * the right shapes: digit-like stroke patterns for MNIST and
 * face-like blob patterns for FERET (see DESIGN.md substitutions).
 */

#ifndef LYNX_WORKLOAD_DATAGEN_HH
#define LYNX_WORKLOAD_DATAGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hh"

namespace lynx::workload {

/** A 28×28 grayscale image resembling handwritten digit @p digit,
 *  with stroke jitter driven by @p variant. */
std::vector<std::uint8_t> synthMnist(int digit, std::uint64_t variant);

/** A 32×32 grayscale face-like image for person @p personId;
 *  @p variant jitters pose/illumination. The same person with
 *  different variants stays LBP-similar; different persons differ. */
std::vector<std::uint8_t> synthFace(std::uint32_t personId,
                                    std::uint64_t variant);

/** The 12-byte random label strings used as FERET keys (§6.4). */
std::string faceLabel(std::uint32_t personId);

} // namespace lynx::workload

#endif // LYNX_WORKLOAD_DATAGEN_HH

#include "loadgen.hh"

#include "sim/span.hh"

namespace lynx::workload {

sim::Co<std::optional<net::Message>>
recvTimeout(sim::Simulator &sim, net::Endpoint &ep, sim::Tick timeout,
            sim::Tick)
{
    sim::Tick deadline = sim.now() + timeout;
    for (;;) {
        if (auto m = ep.tryRecv())
            co_return m;
        if (sim.now() >= deadline)
            co_return std::nullopt;
        // Event-driven wait: next arrival or the deadline.
        co_await ep.waitArrival(deadline - sim.now());
    }
}

LoadGen::LoadGen(sim::Simulator &sim, LoadGenConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), rng_(cfg_.seed),
      cStaleResponses_(&stats_.counter("stale_responses"))
{
    LYNX_FATAL_IF(!cfg_.nic, "load generator needs a client NIC");
    // A port pool that overflows 16 bits would wrap and silently
    // alias two workers (or two flows) onto one endpoint — their
    // responses would cross-match and corrupt every latency sample.
    if (cfg_.openRate > 0.0) {
        LYNX_FATAL_IF(cfg_.openPorts < 1,
                      "open-loop port pool must hold at least 1 port");
        LYNX_FATAL_IF(static_cast<int>(cfg_.basePort) + cfg_.openPorts -
                              1 >
                          0xffff,
                      "open-loop port pool [", cfg_.basePort, ", ",
                      static_cast<int>(cfg_.basePort) + cfg_.openPorts,
                      ") wraps past 65535");
    } else {
        LYNX_FATAL_IF(
            static_cast<int>(cfg_.basePort) + cfg_.concurrency - 1 >
                0xffff,
            "closed-loop port range [", cfg_.basePort, ", ",
            static_cast<int>(cfg_.basePort) + cfg_.concurrency,
            ") wraps past 65535 and would alias workers");
    }
    sim_.metrics().add(cfg_.metricsName, stats_);
}

LoadGen::~LoadGen()
{
    sim_.metrics().remove(stats_);
}

void
LoadGen::start()
{
    if (cfg_.openRate > 0.0) {
        for (int p = 0; p < cfg_.openPorts; ++p) {
            net::Endpoint &ep = cfg_.nic->bind(
                cfg_.proto,
                static_cast<std::uint16_t>(cfg_.basePort + p));
            sim::spawn(sim_, openReceiver(ep));
        }
        expiryGate_ = std::make_unique<sim::Gate>(sim_);
        sim::spawn(sim_, openExpiry());
        sim::spawn(sim_, openSender());
    } else {
        for (int i = 0; i < cfg_.concurrency; ++i)
            sim::spawn(sim_, closedWorker(i));
    }
}

void
LoadGen::recordResponse(const net::Message &resp)
{
    if (sim::SpanCollector *spans = sim_.spans())
        spans->finish(resp.traceId, sim_.now());
    bool inWin = inWindow(sim_.now()) && inWindow(resp.sentAt);
    if (cfg_.validate && !cfg_.validate(resp)) {
        // A failed response is evidence of corruption, not of
        // completed work: count it, but keep it out of completed_
        // and the latency sample.
        ++failures_;
        if (inWin)
            ++failuresWindow_;
        return;
    }
    if (inWin) {
        ++completed_;
        sim::Tick lat = sim_.now() - resp.sentAt;
        latency_.record(lat);
        if (cfg_.slo == 0 || lat <= cfg_.slo)
            ++goodput_;
    }
}

sim::Task
LoadGen::closedWorker(int idx)
{
    // The constructor rejected ranges that overflow 16 bits, so this
    // narrowing cannot wrap.
    std::uint16_t port =
        static_cast<std::uint16_t>(cfg_.basePort + idx);
    net::Endpoint &ep = cfg_.nic->bind(cfg_.proto, port);
    sim::Rng rng(cfg_.seed * 1315423911u + idx);

    // Stagger worker start-up so closed-loop clients do not fire in
    // lockstep bursts.
    if (cfg_.thinkTime)
        co_await sim::sleep(
            static_cast<sim::Tick>(rng.exponential(
                static_cast<double>(cfg_.thinkTime))));

    while (issuing()) {
        std::uint64_t seq = nextSeq_++;
        net::Message m;
        m.src = {cfg_.nic->node(), port};
        m.dst = cfg_.target;
        m.proto = cfg_.proto;
        m.payload = cfg_.makeRequest(seq, rng);
        m.seq = seq;
        m.sentAt = sim_.now();
        m.tenant = cfg_.tenant;
        if (sim::SpanCollector *spans = sim_.spans()) {
            m.traceId = spans->begin(sim_.now());
            if (cfg_.tenant != 0)
                spans->setTenant(m.traceId, cfg_.tenant);
        }
        if (inWindow(sim_.now()))
            ++sent_;
        co_await cfg_.nic->send(std::move(m));

        // Receive until the outstanding seq answers or the deadline
        // passes. A response whose echoed seq does not match is a
        // *stale* reply to an earlier, timed-out request: recording it
        // would attribute the old request's (long) round trip to this
        // request's latency sample, so it is discarded and counted.
        sim::Tick deadline = sim_.now() + cfg_.requestTimeout;
        bool matched = false;
        for (;;) {
            sim::Tick remaining =
                deadline > sim_.now() ? deadline - sim_.now() : 0;
            auto resp = co_await recvTimeout(sim_, ep, remaining);
            if (!resp)
                break;
            if (resp->seq != seq) {
                cStaleResponses_->add();
                continue;
            }
            recordResponse(*resp);
            matched = true;
            break;
        }
        if (!matched) {
            ++timeouts_;
            continue;
        }
        if (cfg_.thinkTime) {
            co_await sim::sleep(static_cast<sim::Tick>(
                rng.exponential(static_cast<double>(cfg_.thinkTime))));
        }
    }
}

sim::Task
LoadGen::openSender()
{
    double meanGapNs = 1e9 / cfg_.openRate;
    std::uint64_t clients =
        cfg_.logicalClients
            ? cfg_.logicalClients
            : static_cast<std::uint64_t>(cfg_.openPorts);
    std::uint64_t ports = static_cast<std::uint64_t>(cfg_.openPorts);
    sim::Tick close = cfg_.warmup + cfg_.duration;
    // The whole schedule is drawn on an absolute clock: each
    // request's intended send time advances by a Poisson gap drawn
    // *before* the send, and the request is stamped with (and
    // measured from) that intended time. If the NIC falls behind —
    // PFC pause, saturated link — the schedule does not stretch; the
    // slip lands in the recorded latency, where it belongs.
    sim::Tick intended = sim_.now();
    for (;;) {
        intended +=
            1 + static_cast<sim::Tick>(rng_.exponential(meanGapNs));
        if (intended >= close)
            break;
        std::uint64_t clientId = clients > 1 ? rng_.below(clients) : 0;
        if (sim_.now() < intended)
            co_await sim::sleep(intended - sim_.now());
        std::uint64_t seq = nextSeq_++;
        net::Message m;
        m.src = {cfg_.nic->node(),
                 static_cast<std::uint16_t>(cfg_.basePort +
                                            clientId % ports)};
        m.dst = cfg_.routeTarget ? cfg_.routeTarget(clientId)
                                 : cfg_.target;
        m.proto = cfg_.proto;
        m.payload = cfg_.makeRequest(seq, rng_);
        m.seq = seq;
        m.sentAt = intended;
        m.tenant = cfg_.tenantOf ? cfg_.tenantOf(clientId)
                                 : cfg_.tenant;
        if (sim::SpanCollector *spans = sim_.spans()) {
            m.traceId = spans->begin(intended);
            if (m.tenant != 0)
                spans->setTenant(m.traceId, m.tenant);
        }
        bool inWin = inWindow(intended);
        if (inWin)
            ++sent_;
        outstanding_.emplace(seq, OpenReq{intended, inWin});
        expiry_.emplace_back(seq, intended + cfg_.requestTimeout);
        expiryGate_->open();
        co_await cfg_.nic->send(std::move(m));
    }
    senderDone_ = true;
    expiryGate_->open();
}

void
LoadGen::recordOpenResponse(const net::Message &resp)
{
    if (sim::SpanCollector *spans = sim_.spans())
        spans->finish(resp.traceId, sim_.now());
    auto it = outstanding_.find(resp.seq);
    if (it != outstanding_.end()) {
        OpenReq req = it->second;
        outstanding_.erase(it);
        if (cfg_.validate && !cfg_.validate(resp)) {
            ++failures_;
            if (req.inWindow)
                ++failuresWindow_;
            return;
        }
        if (req.inWindow) {
            ++completed_;
            // Latency from the *intended* send time (the request
            // table is authoritative; a server need not echo it).
            sim::Tick lat = sim_.now() - req.intendedAt;
            latency_.record(lat);
            if (cfg_.slo == 0 || lat <= cfg_.slo)
                ++goodput_;
        }
        return;
    }
    auto ex = expired_.find(resp.seq);
    if (ex != expired_.end()) {
        // Answered after its deadline: the timeout stands, but the
        // request is late, not lost.
        if (ex->second) {
            ++late_;
            --lost_;
        }
        expired_.erase(ex);
        return;
    }
    cStaleResponses_->add();
}

sim::Task
LoadGen::openReceiver(net::Endpoint &ep)
{
    for (;;) {
        net::Message resp = co_await ep.recv();
        recordOpenResponse(resp);
    }
}

sim::Task
LoadGen::openExpiry()
{
    // Deadlines are monotonic (intended times are), so the front of
    // expiry_ is always the next one due. The sweeper sleeps until
    // it, parks on the gate when nothing is queued, and exits once
    // the run is over and the table has drained.
    for (;;) {
        if (expiry_.empty()) {
            if (senderDone_)
                co_return;
            expiryGate_->close();
            co_await expiryGate_->wait();
            continue;
        }
        auto [seq, deadline] = expiry_.front();
        if (sim_.now() < deadline) {
            co_await sim::sleep(deadline - sim_.now());
            continue;
        }
        expiry_.pop_front();
        auto it = outstanding_.find(seq);
        if (it == outstanding_.end())
            continue; // answered in time
        if (it->second.inWindow) {
            ++timeouts_;
            ++lost_;
        }
        expired_.emplace(seq, it->second.inWindow);
        outstanding_.erase(it);
    }
}

} // namespace lynx::workload

#include "loadgen.hh"

#include "sim/span.hh"

namespace lynx::workload {

sim::Co<std::optional<net::Message>>
recvTimeout(sim::Simulator &sim, net::Endpoint &ep, sim::Tick timeout,
            sim::Tick)
{
    sim::Tick deadline = sim.now() + timeout;
    for (;;) {
        if (auto m = ep.tryRecv())
            co_return m;
        if (sim.now() >= deadline)
            co_return std::nullopt;
        // Event-driven wait: next arrival or the deadline.
        co_await ep.waitArrival(deadline - sim.now());
    }
}

LoadGen::LoadGen(sim::Simulator &sim, LoadGenConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), rng_(cfg_.seed),
      cStaleResponses_(&stats_.counter("stale_responses"))
{
    LYNX_FATAL_IF(!cfg_.nic, "load generator needs a client NIC");
    sim_.metrics().add("workload.loadgen", stats_);
}

LoadGen::~LoadGen()
{
    sim_.metrics().remove(stats_);
}

void
LoadGen::start()
{
    if (cfg_.openRate > 0.0) {
        net::Endpoint &ep = cfg_.nic->bind(cfg_.proto, cfg_.basePort);
        sim::spawn(sim_, openReceiver(ep));
        sim::spawn(sim_, openSender());
    } else {
        for (int i = 0; i < cfg_.concurrency; ++i)
            sim::spawn(sim_, closedWorker(i));
    }
}

void
LoadGen::recordResponse(const net::Message &resp)
{
    if (sim::SpanCollector *spans = sim_.spans())
        spans->finish(resp.traceId, sim_.now());
    if (cfg_.validate && !cfg_.validate(resp))
        ++failures_;
    if (inWindow(sim_.now()) && inWindow(resp.sentAt)) {
        ++completed_;
        latency_.record(sim_.now() - resp.sentAt);
    }
}

sim::Task
LoadGen::closedWorker(int idx)
{
    std::uint16_t port =
        static_cast<std::uint16_t>(cfg_.basePort + idx);
    net::Endpoint &ep = cfg_.nic->bind(cfg_.proto, port);
    sim::Rng rng(cfg_.seed * 1315423911u + idx);

    // Stagger worker start-up so closed-loop clients do not fire in
    // lockstep bursts.
    if (cfg_.thinkTime)
        co_await sim::sleep(
            static_cast<sim::Tick>(rng.exponential(
                static_cast<double>(cfg_.thinkTime))));

    while (issuing()) {
        std::uint64_t seq = nextSeq_++;
        net::Message m;
        m.src = {cfg_.nic->node(), port};
        m.dst = cfg_.target;
        m.proto = cfg_.proto;
        m.payload = cfg_.makeRequest(seq, rng);
        m.seq = seq;
        m.sentAt = sim_.now();
        m.tenant = cfg_.tenant;
        if (sim::SpanCollector *spans = sim_.spans()) {
            m.traceId = spans->begin(sim_.now());
            if (cfg_.tenant != 0)
                spans->setTenant(m.traceId, cfg_.tenant);
        }
        if (inWindow(sim_.now()))
            ++sent_;
        co_await cfg_.nic->send(std::move(m));

        // Receive until the outstanding seq answers or the deadline
        // passes. A response whose echoed seq does not match is a
        // *stale* reply to an earlier, timed-out request: recording it
        // would attribute the old request's (long) round trip to this
        // request's latency sample, so it is discarded and counted.
        sim::Tick deadline = sim_.now() + cfg_.requestTimeout;
        bool matched = false;
        for (;;) {
            sim::Tick remaining =
                deadline > sim_.now() ? deadline - sim_.now() : 0;
            auto resp = co_await recvTimeout(sim_, ep, remaining);
            if (!resp)
                break;
            if (resp->seq != seq) {
                cStaleResponses_->add();
                continue;
            }
            recordResponse(*resp);
            matched = true;
            break;
        }
        if (!matched) {
            ++timeouts_;
            continue;
        }
        if (cfg_.thinkTime) {
            co_await sim::sleep(static_cast<sim::Tick>(
                rng.exponential(static_cast<double>(cfg_.thinkTime))));
        }
    }
}

sim::Task
LoadGen::openSender()
{
    double meanGapNs = 1e9 / cfg_.openRate;
    while (issuing()) {
        std::uint64_t seq = nextSeq_++;
        net::Message m;
        m.src = {cfg_.nic->node(), cfg_.basePort};
        m.dst = cfg_.target;
        m.proto = cfg_.proto;
        m.payload = cfg_.makeRequest(seq, rng_);
        m.seq = seq;
        m.sentAt = sim_.now();
        m.tenant = cfg_.tenant;
        if (sim::SpanCollector *spans = sim_.spans()) {
            m.traceId = spans->begin(sim_.now());
            if (cfg_.tenant != 0)
                spans->setTenant(m.traceId, cfg_.tenant);
        }
        if (inWindow(sim_.now()))
            ++sent_;
        co_await cfg_.nic->send(std::move(m));
        co_await sim::sleep(
            static_cast<sim::Tick>(rng_.exponential(meanGapNs)));
    }
}

sim::Task
LoadGen::openReceiver(net::Endpoint &ep)
{
    for (;;) {
        net::Message resp = co_await ep.recv();
        recordResponse(resp);
    }
}

} // namespace lynx::workload

#include "datagen.hh"

#include <algorithm>
#include <cmath>

namespace lynx::workload {

namespace {

constexpr int mnistDim = 28;
constexpr int faceDim = 32;

/** Draw an anti-aliased disc stroke into @p img. */
void
drawArc(std::vector<std::uint8_t> &img, int dim, double cx, double cy,
        double radius, double a0, double a1, double thickness)
{
    for (int y = 0; y < dim; ++y) {
        for (int x = 0; x < dim; ++x) {
            double dx = x - cx, dy = y - cy;
            double r = std::sqrt(dx * dx + dy * dy);
            double ang = std::atan2(dy, dx);
            if (ang < 0)
                ang += 2 * M_PI;
            bool inAngle = a0 <= a1 ? (ang >= a0 && ang <= a1)
                                    : (ang >= a0 || ang <= a1);
            double d = std::abs(r - radius);
            if (inAngle && d < thickness) {
                double v = 255.0 * (1.0 - d / thickness);
                auto &px = img[static_cast<std::size_t>(y) * dim + x];
                if (v > px)
                    px = static_cast<std::uint8_t>(v);
            }
        }
    }
}

/** Draw a line segment stroke. */
void
drawLine(std::vector<std::uint8_t> &img, int dim, double x0, double y0,
         double x1, double y1, double thickness)
{
    double len = std::hypot(x1 - x0, y1 - y0);
    int steps = static_cast<int>(len * 4) + 1;
    for (int i = 0; i <= steps; ++i) {
        double t = static_cast<double>(i) / steps;
        double px = x0 + t * (x1 - x0);
        double py = y0 + t * (y1 - y0);
        int xlo = std::max(0, static_cast<int>(px - thickness - 1));
        int xhi = std::min(dim - 1, static_cast<int>(px + thickness + 1));
        int ylo = std::max(0, static_cast<int>(py - thickness - 1));
        int yhi = std::min(dim - 1, static_cast<int>(py + thickness + 1));
        for (int y = ylo; y <= yhi; ++y) {
            for (int x = xlo; x <= xhi; ++x) {
                double d = std::hypot(x - px, y - py);
                if (d < thickness) {
                    double v = 255.0 * (1.0 - d / thickness);
                    auto &q = img[static_cast<std::size_t>(y) * dim + x];
                    if (v > q)
                        q = static_cast<std::uint8_t>(v);
                }
            }
        }
    }
}

} // namespace

std::vector<std::uint8_t>
synthMnist(int digit, std::uint64_t variant)
{
    sim::Rng rng(0x3a15 + static_cast<std::uint64_t>(digit) * 977 +
                 variant * 131071);
    std::vector<std::uint8_t> img(mnistDim * mnistDim, 0);
    auto j = [&] { return (rng.uniform() - 0.5) * 2.0; }; // jitter ±1

    const double cx = 14 + j(), cy = 14 + j();
    const double th = 1.6 + rng.uniform() * 0.6;
    switch (((digit % 10) + 10) % 10) {
      case 0:
        drawArc(img, mnistDim, cx, cy, 8 + j(), 0, 2 * M_PI, th);
        break;
      case 1:
        drawLine(img, mnistDim, cx + j(), 4, cx + j(), 24, th);
        break;
      case 2:
        drawArc(img, mnistDim, cx, cy - 4, 5, M_PI, 2 * M_PI, th);
        drawLine(img, mnistDim, cx + 5, cy - 3, cx - 6, cy + 9, th);
        drawLine(img, mnistDim, cx - 6, cy + 9, cx + 6, cy + 9, th);
        break;
      case 3:
        drawArc(img, mnistDim, cx, cy - 4, 4.5, M_PI * 1.1, M_PI * 0.4, th);
        drawArc(img, mnistDim, cx, cy + 5, 4.5, M_PI * 1.5, M_PI * 0.9, th);
        break;
      case 4:
        drawLine(img, mnistDim, cx - 5, 5, cx - 6, cy + 1, th);
        drawLine(img, mnistDim, cx - 6, cy + 1, cx + 6, cy + 1, th);
        drawLine(img, mnistDim, cx + 3, 5, cx + 3, 24, th);
        break;
      case 5:
        drawLine(img, mnistDim, cx + 5, 5, cx - 5, 5, th);
        drawLine(img, mnistDim, cx - 5, 5, cx - 5, cy - 1, th);
        drawArc(img, mnistDim, cx - 1, cy + 4, 5.5, M_PI * 1.4,
                M_PI * 0.8, th);
        break;
      case 6:
        drawArc(img, mnistDim, cx, cy + 4, 5, 0, 2 * M_PI, th);
        drawArc(img, mnistDim, cx + 2, cy - 4, 8, M_PI * 0.6,
                M_PI * 1.2, th);
        break;
      case 7:
        drawLine(img, mnistDim, cx - 6, 6, cx + 6, 6, th);
        drawLine(img, mnistDim, cx + 6, 6, cx - 2, 24, th);
        break;
      case 8:
        drawArc(img, mnistDim, cx, cy - 4, 4, 0, 2 * M_PI, th);
        drawArc(img, mnistDim, cx, cy + 5, 5, 0, 2 * M_PI, th);
        break;
      default: // 9
        drawArc(img, mnistDim, cx, cy - 4, 5, 0, 2 * M_PI, th);
        drawArc(img, mnistDim, cx - 2, cy + 4, 8, M_PI * 1.6,
                M_PI * 0.2, th);
        break;
    }
    // Sensor noise.
    for (auto &px : img) {
        int v = px + static_cast<int>(rng.below(12)) - 6;
        px = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
    }
    return img;
}

std::vector<std::uint8_t>
synthFace(std::uint32_t personId, std::uint64_t variant)
{
    // Person identity fixes the facial geometry; the variant only
    // adds noise/illumination so LBP keeps same-person images close.
    sim::Rng geo(0xface + static_cast<std::uint64_t>(personId) * 2654435761u);
    sim::Rng var(variant * 40503 + personId);
    std::vector<std::uint8_t> img(faceDim * faceDim, 0);

    const double headR = 11 + geo.uniform() * 3;
    const double eyeDx = 4 + geo.uniform() * 2.5;
    const double eyeY = 12 + geo.uniform() * 3;
    const double mouthY = 22 + geo.uniform() * 3;
    const double mouthW = 3 + geo.uniform() * 4;
    const double noseL = 3 + geo.uniform() * 3;
    const double illum = 0.88 + var.uniform() * 0.12;

    drawArc(img, faceDim, 16, 16, headR, 0, 2 * M_PI, 2.0);
    drawArc(img, faceDim, 16 - eyeDx, eyeY, 1.6, 0, 2 * M_PI, 1.4);
    drawArc(img, faceDim, 16 + eyeDx, eyeY, 1.6, 0, 2 * M_PI, 1.4);
    drawLine(img, faceDim, 16, eyeY + 2, 16, eyeY + 2 + noseL, 1.3);
    drawLine(img, faceDim, 16 - mouthW, mouthY, 16 + mouthW, mouthY, 1.4);

    for (auto &px : img) {
        int v = static_cast<int>(px * illum) +
                static_cast<int>(var.below(6)) - 3;
        px = static_cast<std::uint8_t>(std::clamp(v, 0, 255));
    }
    return img;
}

std::string
faceLabel(std::uint32_t personId)
{
    // 12-byte deterministic "random" label (§6.4).
    sim::Rng rng(0x1abe1 + personId);
    std::string s;
    for (int i = 0; i < 12; ++i)
        s.push_back(static_cast<char>('a' + rng.below(26)));
    return s;
}

} // namespace lynx::workload

/**
 * @file
 * Mellanox Innova Flex SNIC with a NICA-style AFU (paper §2 Fig. 2a,
 * §5.2): a bump-in-the-wire FPGA in front of the ConnectX-4 ASIC.
 * The Lynx network server is an Accelerated Function Unit behind the
 * on-FPGA UDP stack; it "listens on a given UDP port, appends the
 * metadata to each message, and places the payload onto the
 * available custom ring used as an mqueue".
 *
 * Two operating modes:
 *
 *  - attachReceiveService(): the paper's prototype — receive path
 *    only ("it does not yet support the send path"), 7.4 M pkt/s.
 *  - attachEchoService(): the paper's *stated future work* ("the
 *    requirement to use the CPU thread is not fundamental, and will
 *    be removed in the future with the NICA implementation of custom
 *    rings using one-sided RDMA"): full duplex — the AFU allocates
 *    response tags, polls TX doorbells, and sends responses, all in
 *    hardware (zero CPU anywhere).
 *
 * The AFU pipeline processes one message per `afuPerMessage` — the
 * specialized-hardware advantage the §6.2 "Bluefield vs Innova"
 * experiment measures (7.4 M vs 0.5 M pkt/s).
 */

#ifndef LYNX_SNIC_INNOVA_HH
#define LYNX_SNIC_INNOVA_HH

#include <memory>
#include <string>
#include <vector>

#include "lynx/calibration.hh"
#include "lynx/dispatcher.hh"
#include "lynx/forwarder.hh"
#include "lynx/snic_mqueue.hh"
#include "net/network.hh"
#include "net/nic.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace lynx::snic {

/** Static parameters of the Innova AFU. */
struct InnovaConfig
{
    /** AFU pipeline initiation interval per message. */
    sim::Tick afuPerMessage = calibration::innovaAfuPerMessage;

    /** 40 Gb/s ConnectX-4 Lx EN port (§6). */
    net::NicConfig nic{40.0, sim::nanoseconds(300), 65536};
};

/** An Innova Flex SNIC running the Lynx AFU. */
class InnovaAfu
{
  public:
    InnovaAfu(sim::Simulator &sim, net::Network &network,
              const std::string &name, InnovaConfig cfg = {})
        : sim_(sim), name_(name), cfg_(cfg),
          nic_(network.addNic(name + ".nic", cfg.nic)),
          afuEngine_(sim, name + ".afu", 0.0)
    {}

    InnovaAfu(const InnovaAfu &) = delete;
    InnovaAfu &operator=(const InnovaAfu &) = delete;

    const std::string &name() const { return name_; }
    net::Nic &nic() { return nic_; }
    std::uint32_t node() const { return nic_.node(); }

    /**
     * @return the AFU pseudo-core: QP posting from the FPGA pipeline
     * costs no CPU (speed factor 0), unlike the software runtimes.
     */
    sim::Core &afuCore() { return afuEngine_; }

    /**
     * Listen on UDP @p port and steer messages round-robin into
     * @p queues — the paper's receive-only prototype (responses are
     * never generated).
     */
    void
    attachReceiveService(std::uint16_t port,
                         std::vector<core::SnicMqueue *> queues)
    {
        LYNX_ASSERT(!queues.empty(), name_, ": no mqueues attached");
        net::Endpoint &ep = nic_.bind(net::Protocol::Udp, port);
        sim::spawn(sim_, afuRxLoop(ep, std::move(queues),
                                   /*allocTags=*/false, nullptr));
    }

    /**
     * Full-duplex hardware service (the §5.2 future-work variant):
     * ingress like attachReceiveService but with response-tag
     * allocation; egress through an all-hardware forwarding pipeline
     * over the same one-sided-RDMA rings.
     */
    void
    attachEchoService(std::uint16_t port,
                      std::vector<core::SnicMqueue *> queues)
    {
        LYNX_ASSERT(!queues.empty(), name_, ": no mqueues attached");
        // Hardware pipelines have no software stack cost; the AFU
        // pseudo-core makes every CPU charge free while the per-
        // message pipeline interval is enforced in the loops.
        net::StackProfile hw{};
        core::ForwarderConfig fcfg;
        fcfg.forwardCpu = 0;
        fcfg.pollDiscovery = cfg_.afuPerMessage;
        fcfg.scanPerQueue = 0;
        egress_ = std::make_unique<core::Forwarder>(
            sim_, name_ + ".egress", afuEngine_, nic_, hw, hw, fcfg);
        for (auto *mq : queues)
            egress_->addQueue(mq, port);
        egress_->start();

        net::Endpoint &ep = nic_.bind(net::Protocol::Udp, port);
        sim::spawn(sim_, afuRxLoop(ep, std::move(queues),
                                   /*allocTags=*/true, egress_.get()));
    }

    sim::StatSet &stats() { return stats_; }

  private:
    sim::Task
    afuRxLoop(net::Endpoint &ep, std::vector<core::SnicMqueue *> queues,
              bool allocTags, core::Forwarder *egress)
    {
        (void)egress;
        std::size_t rr = 0;
        for (;;) {
            net::Message msg = co_await ep.recv();
            // Fixed-rate pipeline: one message per initiation
            // interval, no CPU anywhere.
            co_await sim::sleep(cfg_.afuPerMessage);
            core::SnicMqueue &mq = *queues[rr++ % queues.size()];
            std::uint32_t tag = 0;
            if (allocTags) {
                core::ClientRef client;
                client.addr = msg.src;
                client.proto = msg.proto;
                client.seq = msg.seq;
                client.sentAt = msg.sentAt;
                auto t = mq.allocTag(client);
                if (!t) {
                    stats_.counter("afu_tag_full").add();
                    continue;
                }
                tag = *t;
            }
            bool ok = co_await mq.rxPush(afuEngine_, msg.payload, tag);
            if (!ok && allocTags)
                mq.releaseTag(tag);
            stats_.counter(ok ? "afu_delivered" : "afu_ring_full").add();
        }
    }

    sim::Simulator &sim_;
    std::string name_;
    InnovaConfig cfg_;
    net::Nic &nic_;
    /** Zero-cost executor: hardware posting, not software. */
    sim::Core afuEngine_;
    std::unique_ptr<core::Forwarder> egress_;
    sim::StatSet stats_;
};

} // namespace lynx::snic

#endif // LYNX_SNIC_INNOVA_HH

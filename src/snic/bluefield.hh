/**
 * @file
 * Mellanox Bluefield SmartNIC platform (paper §2, Fig. 2b): eight
 * 64-bit ARM A72 cores at 800 MHz behind the NIC ASIC and an
 * internal PCIe switch, running BlueOS Linux in multi-homed mode —
 * "the SNIC CPU runs as a separate machine with its own network
 * stack and IP address".
 *
 * In this reproduction the Bluefield is therefore its own network
 * node: it owns a NIC on the switch fabric plus a pool of worker
 * cores, and the Lynx runtime is *placed* on it by building the
 * RuntimeConfig from lynxRuntimeConfig(). The same Lynx code runs on
 * host Xeon cores with hostRuntimeConfig() — the paper's
 * source-compatibility claim (§5.1) holds by construction.
 */

#ifndef LYNX_SNIC_BLUEFIELD_HH
#define LYNX_SNIC_BLUEFIELD_HH

#include <string>

#include "lynx/calibration.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "net/nic.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"

namespace lynx::snic {

/** Static parameters of one Bluefield card. */
struct BluefieldConfig
{
    /** Worker cores available to Lynx ("We use 7 ARM cores (out of
     *  8)", §6.1). */
    int workerCores = calibration::bluefieldWorkerCores;

    /** Link rate: the testbed Bluefield is a 25 Gb/s part (§6). */
    net::NicConfig nic{calibration::bluefieldGbps,
                       sim::nanoseconds(300), 4096};
};

/** One Bluefield SmartNIC attached to the fabric. */
class Bluefield
{
  public:
    Bluefield(sim::Simulator &sim, net::Network &network,
              const std::string &name, BluefieldConfig cfg = {})
        : name_(name),
          cores_(sim, name + ".arm", static_cast<std::size_t>(
                                          cfg.workerCores)),
          nic_(network.addNic(name + ".nic", cfg.nic))
    {}

    Bluefield(const Bluefield &) = delete;
    Bluefield &operator=(const Bluefield &) = delete;

    const std::string &name() const { return name_; }
    sim::CorePool &cores() { return cores_; }
    net::Nic &nic() { return nic_; }

    /** @return network node id of the SNIC (its own IP, §2). */
    std::uint32_t node() const { return nic_.node(); }

    /**
     * @return a RuntimeConfig that places Lynx on this Bluefield:
     * ARM-calibrated VMA stack and dispatcher/forwarder costs.
     */
    core::RuntimeConfig
    lynxRuntimeConfig()
    {
        core::RuntimeConfig cfg;
        for (std::size_t i = 0; i < cores_.size(); ++i)
            cfg.cores.push_back(&cores_[i]);
        cfg.nic = &nic_;
        cfg.stack = calibration::vmaBluefield();
        cfg.backendStack = calibration::backendTcpBluefield();
        cfg.dispatchCpu = calibration::dispatchCpuArm;
        cfg.forwarder.forwardCpu = calibration::forwardCpuArm;
        cfg.forwarder.pollDiscovery = calibration::snicPollDiscovery;
        cfg.forwarder.scanPerQueue = sim::nanoseconds(35);
        cfg.gio.localLatency = calibration::gpuLocalMemLatency;
        cfg.gio.perByte = calibration::gpuLocalPerByte;
        return cfg;
    }

  private:
    std::string name_;
    sim::CorePool cores_;
    net::Nic &nic_;
};

/**
 * @return a RuntimeConfig that places the same Lynx code on host
 * Xeon @p cores behind @p nic ("Lynx on the host CPU: runs the same
 * code as on Bluefield", §6.1).
 */
inline core::RuntimeConfig
hostRuntimeConfig(std::vector<sim::Core *> cores, net::Nic &nic)
{
    core::RuntimeConfig cfg;
    cfg.cores = std::move(cores);
    cfg.nic = &nic;
    cfg.stack = calibration::vmaXeon();
    cfg.backendStack = calibration::backendTcpXeon();
    cfg.dispatchCpu = calibration::dispatchCpuXeon;
    cfg.forwarder.forwardCpu = calibration::forwardCpuXeon;
    cfg.forwarder.pollDiscovery = calibration::snicPollDiscovery;
    cfg.forwarder.scanPerQueue = sim::nanoseconds(15);
    cfg.gio.localLatency = calibration::gpuLocalMemLatency;
    cfg.gio.perByte = calibration::gpuLocalPerByte;
    return cfg;
}

} // namespace lynx::snic

#endif // LYNX_SNIC_BLUEFIELD_HH

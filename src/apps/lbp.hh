/**
 * @file
 * Local Binary Patterns face verification (Ahonen, Hadid,
 * Pietikäinen 2006) — the "well-known local binary patterns (LBP)
 * algorithm for Face Verification" the paper's §6.4 server runs on
 * the GPU: the server compares the picture received from the client
 * with the database picture for the claimed identity.
 *
 * Complete implementation: 8-neighbour LBP codes, per-cell 256-bin
 * histograms over a grid, chi-square histogram distance, and a
 * thresholded verify decision. Computed for real so the face
 * verification service returns checkable answers.
 */

#ifndef LYNX_APPS_LBP_HH
#define LYNX_APPS_LBP_HH

#include <cstdint>
#include <span>
#include <vector>

namespace lynx::apps {

/** @return the LBP code image of a @p w × @p h grayscale image
 *  (border pixels use clamped neighbours). */
std::vector<std::uint8_t> lbpCodes(std::span<const std::uint8_t> img,
                                   int w, int h);

/**
 * @return concatenated per-cell 256-bin histograms of the LBP codes,
 * over a @p cells × @p cells grid.
 */
std::vector<std::uint32_t> lbpHistogram(std::span<const std::uint8_t> img,
                                        int w, int h, int cells = 4);

/** Chi-square distance between two equal-length histograms. */
double lbpChiSquare(const std::vector<std::uint32_t> &a,
                    const std::vector<std::uint32_t> &b);

/** Full-pipeline distance between two images (0 = identical). */
double lbpDistance(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b, int w, int h,
                   int cells = 4);

/** @return whether the two images match under @p threshold. */
bool lbpVerify(std::span<const std::uint8_t> a,
               std::span<const std::uint8_t> b, int w, int h,
               double threshold = 50.0, int cells = 4);

/** One probe/reference image pair of a batched LBP compare. */
struct LbpPair
{
    std::span<const std::uint8_t> a;
    std::span<const std::uint8_t> b;
};

/**
 * Full-pipeline distances for a batch of pairs in one sweep,
 * reusing the code-image and histogram scratch buffers across the
 * batch (one batched kernel instead of 2B histogram kernels).
 * Element @p i is bit-identical to lbpDistance(pairs[i]...).
 */
std::vector<double> lbpDistanceBatch(std::span<const LbpPair> pairs,
                                     int w, int h, int cells = 4);

/** Batched lbpVerify(): element @p i is 1 iff pair @p i matches. */
std::vector<std::uint8_t> lbpVerifyBatch(std::span<const LbpPair> pairs,
                                         int w, int h,
                                         double threshold = 50.0,
                                         int cells = 4);

} // namespace lynx::apps

#endif // LYNX_APPS_LBP_HH

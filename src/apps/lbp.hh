/**
 * @file
 * Local Binary Patterns face verification (Ahonen, Hadid,
 * Pietikäinen 2006) — the "well-known local binary patterns (LBP)
 * algorithm for Face Verification" the paper's §6.4 server runs on
 * the GPU: the server compares the picture received from the client
 * with the database picture for the claimed identity.
 *
 * Complete implementation: 8-neighbour LBP codes, per-cell 256-bin
 * histograms over a grid, chi-square histogram distance, and a
 * thresholded verify decision. Computed for real so the face
 * verification service returns checkable answers.
 */

#ifndef LYNX_APPS_LBP_HH
#define LYNX_APPS_LBP_HH

#include <cstdint>
#include <span>
#include <vector>

namespace lynx::apps {

/** @return the LBP code image of a @p w × @p h grayscale image
 *  (border pixels use clamped neighbours). */
std::vector<std::uint8_t> lbpCodes(std::span<const std::uint8_t> img,
                                   int w, int h);

/**
 * @return concatenated per-cell 256-bin histograms of the LBP codes,
 * over a @p cells × @p cells grid.
 */
std::vector<std::uint32_t> lbpHistogram(std::span<const std::uint8_t> img,
                                        int w, int h, int cells = 4);

/** Chi-square distance between two equal-length histograms. */
double lbpChiSquare(const std::vector<std::uint32_t> &a,
                    const std::vector<std::uint32_t> &b);

/** Full-pipeline distance between two images (0 = identical). */
double lbpDistance(std::span<const std::uint8_t> a,
                   std::span<const std::uint8_t> b, int w, int h,
                   int cells = 4);

/** @return whether the two images match under @p threshold. */
bool lbpVerify(std::span<const std::uint8_t> a,
               std::span<const std::uint8_t> b, int w, int h,
               double threshold = 50.0, int cells = 4);

} // namespace lynx::apps

#endif // LYNX_APPS_LBP_HH

/**
 * @file
 * LeNet-5 convolutional network inference (LeCun et al. 1998), the
 * model the paper's §6.3 inference service runs: "A client sends
 * 28×28 grayscale images from the standard MNIST dataset, and the
 * server returns the recognized digit".
 *
 * This is a complete from-scratch forward pass (conv → pool → conv →
 * pool → three fully-connected layers → softmax) computing real
 * floating-point results, so the inference service's responses are
 * checkable end-to-end. Weights come either from a seed (untrained —
 * sufficient for all timing experiments, which don't depend on
 * weight values) or from LeNetTrainer (lenet_train.hh), which trains
 * the network on the synthetic digit set so the served
 * classifications are genuinely correct.
 *
 * The layer structure matches what the paper's TVM-compiled version
 * launches as separate GPU kernels; the persistent-kernel service in
 * the benchmarks charges one device kernel per layer.
 */

#ifndef LYNX_APPS_LENET_HH
#define LYNX_APPS_LENET_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace lynx::apps {

/** All learnable parameters of LeNet-5 (28×28 input variant). */
struct LeNetParams
{
    // conv1: 6 output channels, 5x5 kernels, pad 2 (28x28 -> 28x28),
    // then 2x2 average pool -> 14x14.
    std::vector<float> conv1W; // [6][1][5][5]
    std::vector<float> conv1B; // [6]
    // conv2: 16 channels, 5x5, no pad (14x14 -> 10x10), pool -> 5x5.
    std::vector<float> conv2W; // [16][6][5][5]
    std::vector<float> conv2B; // [16]
    // fc1: 400 -> 120, fc2: 120 -> 84, fc3: 84 -> 10.
    std::vector<float> fc1W, fc1B;
    std::vector<float> fc2W, fc2B;
    std::vector<float> fc3W, fc3B;

    /** @return parameters initialized from @p seed. */
    static LeNetParams random(std::uint64_t seed);
};

/** LeNet-5 digit classifier (28×28 grayscale input, 10 classes). */
class LeNet
{
  public:
    static constexpr int imageDim = 28;
    static constexpr int imageBytes = imageDim * imageDim;
    static constexpr int numClasses = 10;

    /** Build the network with weights derived from @p seed. */
    explicit LeNet(std::uint64_t seed = 0x1e4e7)
        : params_(LeNetParams::random(seed))
    {}

    /** Build the network from (e.g. trained) parameters. */
    explicit LeNet(LeNetParams params) : params_(std::move(params)) {}

    /**
     * Run the full forward pass.
     * @param image 784 grayscale bytes, row-major.
     * @return softmax probabilities over the 10 digit classes.
     */
    std::array<float, numClasses>
    forward(std::span<const std::uint8_t> image) const;

    /** @return the argmax class of forward(@p image). */
    int classify(std::span<const std::uint8_t> image) const;

    /**
     * Run the forward pass over a batch of images in one sweep: every
     * layer iterates its weights once and applies each weight to all
     * B images while it is hot (the batch dimension is the innermost
     * loop), the way one batched kernel replaces B per-image kernels.
     * Per-image accumulation order is unchanged, so element @p b of
     * the result is bit-identical to forward(@p images[b]).
     */
    std::vector<std::array<float, numClasses>>
    forwardBatch(std::span<const std::span<const std::uint8_t>> images)
        const;

    /** @return the per-image argmax classes of forwardBatch(). */
    std::vector<int>
    classifyBatch(std::span<const std::span<const std::uint8_t>> images)
        const;

    /** @return the parameters. */
    const LeNetParams &params() const { return params_; }

  private:
    LeNetParams params_;
};

} // namespace lynx::apps

#endif // LYNX_APPS_LENET_HH

/**
 * @file
 * memcached-like key-value store.
 *
 * Serves two roles from the paper:
 *  - §6.3 / Fig. 9: "a typical server workload, memcached" competing
 *    with Lynx for host cores vs. running on the Bluefield;
 *  - §6.4: the backend database tier of the Face Verification
 *    server ("we use a memcached server to store the image
 *    database", accessed over TCP via client mqueues).
 *
 * The store is a real hash map with a compact binary get/set wire
 * protocol; the server charges a per-operation CPU cost on its cores
 * (calibrated per platform in lynx/calibration.hh).
 */

#ifndef LYNX_APPS_KVSTORE_HH
#define LYNX_APPS_KVSTORE_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/message.hh"
#include "net/nic.hh"
#include "net/stack.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace lynx::apps {

/** In-memory key-value storage. */
class KvStore
{
  public:
    void
    set(const std::string &key, std::vector<std::uint8_t> value)
    {
        map_[key] = std::move(value);
    }

    std::optional<std::vector<std::uint8_t>>
    get(const std::string &key) const
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return std::nullopt;
        return it->second;
    }

    bool erase(const std::string &key) { return map_.erase(key) > 0; }

    std::size_t size() const { return map_.size(); }

  private:
    std::unordered_map<std::string, std::vector<std::uint8_t>> map_;
};

/**
 * @{
 * @name Wire protocol
 * Request:  [op u8 (0 = GET, 1 = SET)][keyLen u16][key bytes]
 *           [valLen u32][value bytes (SET only)]
 * Response: [status u8 (0 = OK, 1 = MISS)][valLen u32][value bytes]
 */
enum class KvOp : std::uint8_t { Get = 0, Set = 1 };
enum class KvStatus : std::uint8_t { Ok = 0, Miss = 1, Malformed = 2 };

std::vector<std::uint8_t> kvEncodeGet(const std::string &key);
std::vector<std::uint8_t> kvEncodeSet(const std::string &key,
                                      std::span<const std::uint8_t> value);

struct KvRequest
{
    KvOp op = KvOp::Get;
    std::string key;
    std::vector<std::uint8_t> value;
};

/** @return nullopt for malformed input. */
std::optional<KvRequest> kvDecodeRequest(std::span<const std::uint8_t> buf);

std::vector<std::uint8_t> kvEncodeResponse(KvStatus status,
                                           std::span<const std::uint8_t>
                                               value);

struct KvResponse
{
    KvStatus status = KvStatus::Malformed;
    std::vector<std::uint8_t> value;
};

KvResponse kvDecodeResponse(std::span<const std::uint8_t> buf);
/** @} */

/** Apply @p req to @p store. @return the encoded response. */
std::vector<std::uint8_t> kvApply(KvStore &store, const KvRequest &req);

/** Network frontend of a KvStore. */
struct KvServerConfig
{
    std::string name = "kv";
    net::Nic *nic = nullptr;
    std::uint16_t port = 11211;
    net::Protocol proto = net::Protocol::Tcp;
    net::StackProfile stack;
    std::vector<sim::Core *> cores;

    /** CPU cost per operation (hashing, LRU bookkeeping, ...). */
    sim::Tick opCost = sim::microseconds(4);
};

/** A memcached-style server: one listener task per core. */
class KvServer
{
  public:
    KvServer(sim::Simulator &sim, KvStore &store, KvServerConfig cfg)
        : sim_(sim), store_(store), cfg_(std::move(cfg))
    {
        LYNX_FATAL_IF(!cfg_.nic, cfg_.name, ": needs a NIC");
        LYNX_FATAL_IF(cfg_.cores.empty(), cfg_.name, ": needs cores");
    }

    KvServer(const KvServer &) = delete;
    KvServer &operator=(const KvServer &) = delete;

    void
    start()
    {
        net::Endpoint &ep = cfg_.nic->bind(cfg_.proto, cfg_.port);
        for (auto *core : cfg_.cores)
            sim::spawn(sim_, serveLoop(ep, *core));
    }

    sim::StatSet &stats() { return stats_; }

  private:
    sim::Task
    serveLoop(net::Endpoint &ep, sim::Core &core)
    {
        for (;;) {
            net::Message msg = co_await ep.recv();
            co_await core.exec(
                cfg_.stack.cost(cfg_.proto, net::Dir::Recv, msg.size()));

            std::vector<std::uint8_t> respBytes;
            auto req = kvDecodeRequest(msg.payload);
            if (!req) {
                respBytes = kvEncodeResponse(KvStatus::Malformed, {});
                stats_.counter("malformed").add();
            } else {
                co_await core.exec(cfg_.opCost);
                respBytes = kvApply(store_, *req);
                stats_.counter(req->op == KvOp::Get ? "gets" : "sets")
                    .add();
            }

            net::Message out;
            out.src = net::Address{cfg_.nic->node(), cfg_.port};
            out.dst = msg.src;
            out.proto = msg.proto;
            out.payload = std::move(respBytes);
            out.seq = msg.seq;
            out.sentAt = msg.sentAt;
            co_await core.exec(
                cfg_.stack.cost(out.proto, net::Dir::Send, out.size()));
            co_await cfg_.nic->send(std::move(out));
        }
    }

    sim::Simulator &sim_;
    KvStore &store_;
    KvServerConfig cfg_;
    sim::StatSet stats_;
};

} // namespace lynx::apps

#endif // LYNX_APPS_KVSTORE_HH

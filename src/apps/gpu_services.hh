/**
 * @file
 * The accelerated services evaluated in the paper, as reusable
 * building blocks shared by the examples and the benchmark harness:
 *
 *  - echo / emulated-processing persistent-kernel servers (§6.2
 *    microbenchmarks, Fig. 6/7 and the Fig. 8c projection method);
 *  - the LeNet inference server (§6.3): "a single GPU thread polls
 *    the server mqueue. Then, it invokes the GPU kernels that
 *    implement the actual neural network inference using ...
 *    dynamic parallelism";
 *  - the Face Verification server (§6.4): 28 server mqueues, each
 *    polled by one threadblock that fetches the enrolled image from
 *    memcached through a client mqueue and runs the LBP compare;
 *  - host-centric handler counterparts for the baseline server.
 *
 * All services compute real results (LeNet forward pass, LBP, byte
 * echoes) while charging calibrated GPU time, so benchmark clients
 * double as end-to-end correctness checks.
 */

#ifndef LYNX_APPS_GPU_SERVICES_HH
#define LYNX_APPS_GPU_SERVICES_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "accel/gpu.hh"
#include "apps/kvstore.hh"
#include "apps/lbp.hh"
#include "apps/lenet.hh"
#include "baseline/host_server.hh"
#include "lynx/calibration.hh"
#include "lynx/gio.hh"
#include "sim/task.hh"

namespace lynx::apps {

/*
 * ----- Persistent-kernel (Lynx) services -----
 */

/**
 * Dynamic request batching policy shared by the persistent-kernel
 * services. Off by default: maxBatch = 1 leaves the seed per-message
 * serve loop (and its exact timing) untouched.
 */
struct ServiceBatchConfig
{
    /** Serve up to this many requests per iteration; 1 = off. */
    int maxBatch = 1;

    /** Bounded wait to top up a partial batch under backlog. An idle
     *  ring (single ready request) is always served immediately, so
     *  low-load latency is unaffected; the linger applies once, only
     *  when 2..maxBatch-1 requests arrived together. 0 = never. */
    sim::Tick linger = 0;
};

/**
 * Echo server block: one persistent threadblock polls @p q, waits
 * @p procTime of emulated request processing on the GPU, and sends
 * the payload back ("1 thread which copies the input to the output,
 * and waits for a predefined period emulating request processing",
 * §6.2). Holds one threadblock slot forever.
 *
 * With @p batch enabled, requests are drained with recvBatch (one
 * poll + one consumer update per sweep), processed back-to-back, and
 * answered with sendBatch (one doorbell write per ring segment);
 * emulated processing stays serial per request.
 */
sim::Task runEchoBlock(accel::Gpu &gpu, core::AccelQueue &q,
                       sim::Tick procTime, std::size_t respBytes = 0,
                       ServiceBatchConfig batch = {});

/**
 * Vector-scale server block (§3.2 noisy-neighbor victim): requests
 * carry little-endian u32 vectors; the response is each element
 * multiplied by @p factor.
 */
sim::Task runVectorScaleBlock(accel::Gpu &gpu, core::AccelQueue &q,
                              std::uint32_t factor, sim::Tick procTime);

/** LeNet service knobs. */
struct LenetServiceConfig
{
    /** Blocks each per-layer child kernel occupies. LeNet kernels
     *  saturate the device, so inference is serial per GPU (the
     *  paper's single-GPU ceiling of ~3.6 Kreq/s). */
    int childBlocks = 200;

    /** Launch children with dynamic parallelism (true, §6.3) or
     *  charge one fused kernel (ablation). */
    bool dynamicParallelism = true;

    /** Relative kernel-duration jitter (uniform +-jitterPct), for
     *  realistic latency distributions; 0 = deterministic. */
    double jitterPct = 0.0;
    std::uint64_t jitterSeed = 99;

    /** Dynamic request batching: classify up to this many images per
     *  batched child-kernel sequence (one launch per layer for the
     *  whole batch, occupancy-aware duration). 1 = off (seed
     *  behaviour, bit-identical timing). */
    int maxBatch = 1;

    /** Bounded top-up wait for a partial batch under backlog (see
     *  ServiceBatchConfig::linger). */
    sim::Tick batchLinger = 0;
};

/**
 * LeNet inference server: persistent single-thread poller block that
 * spawns the per-layer child kernels and replies with
 * [digit u8][probabilities are not sent — matches the paper's
 * "returns the recognized digit"]. Requests are 784-byte images.
 */
sim::Task runLenetServer(accel::Gpu &gpu, core::AccelQueue &q,
                         const LeNet &net, LenetServiceConfig cfg = {});

/** Face-verification request: [12-byte label][1024-byte image]. */
constexpr std::size_t faceVerLabelBytes = 12;
constexpr std::size_t faceVerImageBytes = 32 * 32;
constexpr std::size_t faceVerRequestBytes =
    faceVerLabelBytes + faceVerImageBytes;

/** Response codes of the face verification service. */
enum class FaceVerResult : std::uint8_t
{
    NoMatch = 0,
    Match = 1,
    UnknownLabel = 2,
    Malformed = 3,
    /** The database tier did not answer (client-mqueue error status). */
    BackendError = 4,
};

/** LBP decision threshold used by the service (calibrated on the
 *  synthetic FERET-like set: same-person distances ≲400, different-
 *  person distances ≳400). */
constexpr double faceVerThreshold = 400.0;

/**
 * Face Verification worker: one persistent threadblock per server
 * mqueue. For each request it GETs the enrolled image for the label
 * from the KV backend through @p dbQ (client mqueue), runs the LBP
 * compare (≈50 us of GPU time, real LBP result), and replies with a
 * FaceVerResult byte.
 *
 * With @p batch enabled, a drained batch issues its backend GETs as
 * one sendBatch on @p dbQ, collects the replies, charges one
 * occupancy-aware batched LBP kernel for the whole batch, and
 * answers with one sendBatch on @p serverQ. Per-request answers are
 * bit-identical to the unbatched path.
 */
sim::Task runFaceVerWorker(accel::Gpu &gpu, core::AccelQueue &serverQ,
                           core::AccelQueue &dbQ,
                           ServiceBatchConfig batch = {});

/*
 * ----- Host-centric (baseline) handlers -----
 */

/** Echo pipeline: H2D, one kernel of @p procTime, D2H, sync. */
baseline::HostHandler hostEchoHandler(sim::Tick procTime,
                                      int blocks = 1);

/**
 * LeNet pipeline: H2D, the per-layer kernel sequence (one driver
 * launch each — what TVM-generated code does), D2H, sync; computes
 * the real classification.
 */
baseline::HostHandler hostLenetHandler(const LeNet &net,
                                       LenetServiceConfig cfg = {});

/**
 * Face-verification pipeline: asynchronously GET the enrolled image
 * from the KV backend at @p backend via @p backendNic, then H2D both
 * images, LBP compare kernel, D2H, sync ("The access to memcached is
 * asynchronous", §6.4).
 */
baseline::HostHandler
hostFaceVerHandler(sim::Simulator &sim, net::Nic &nic,
                   net::Address backend, net::StackProfile stack);

/** Compute the face-verification answer (shared by all versions). */
FaceVerResult faceVerDecide(std::span<const std::uint8_t> request,
                            const std::optional<std::vector<std::uint8_t>>
                                &enrolled);

} // namespace lynx::apps

#endif // LYNX_APPS_GPU_SERVICES_HH

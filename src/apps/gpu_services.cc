#include "gpu_services.hh"

#include <algorithm>
#include <string>

#include "sim/random.hh"
#include "workload/loadgen.hh"

namespace lynx::apps {

namespace {

using calibration::lenetKernelCount;

/** Per-layer kernel durations in TVM launch order. */
const sim::Tick lenetLayers[lenetKernelCount] = {
    calibration::lenetConv1, calibration::lenetPool1,
    calibration::lenetConv2, calibration::lenetPool2,
    calibration::lenetFc1,   calibration::lenetFc2,
    calibration::lenetSoftmax,
};

/** Apply uniform +-pct jitter to a duration. */
sim::Tick
jittered(sim::Tick d, double pct, sim::Rng &rng)
{
    if (pct <= 0.0)
        return d;
    double f = 1.0 + pct * (rng.uniform() * 2.0 - 1.0);
    return static_cast<sim::Tick>(static_cast<double>(d) * f);
}

/**
 * Drain one batch under the bounded-linger policy: a lone request
 * (idle ring) is served immediately; only a partial burst of 2+
 * requests that arrived together lingers once to top up.
 */
sim::Co<std::vector<core::GioMessage>>
drainBatch(core::AccelQueue &q, int maxBatch, sim::Tick linger)
{
    std::size_t maxN = static_cast<std::size_t>(maxBatch);
    std::vector<core::GioMessage> msgs = co_await q.recvBatch(maxN);
    if (linger > 0 && msgs.size() >= 2 && msgs.size() < maxN) {
        co_await sim::sleep(linger);
        std::vector<core::GioMessage> more =
            co_await q.tryRecvBatch(maxN - msgs.size());
        for (auto &m : more)
            msgs.push_back(std::move(m));
    }
    co_return msgs;
}

} // namespace

sim::Task
runEchoBlock(accel::Gpu &gpu, core::AccelQueue &q, sim::Tick procTime,
             std::size_t respBytes, ServiceBatchConfig batch)
{
    co_await gpu.slots().acquire(1); // persistent kernel block
    if (batch.maxBatch > 1) {
        std::vector<core::GioTxItem> items;
        items.reserve(static_cast<std::size_t>(batch.maxBatch));
        for (;;) {
            std::vector<core::GioMessage> msgs =
                co_await drainBatch(q, batch.maxBatch, batch.linger);
            // Emulated processing stays serial per request; batching
            // saves the per-message poll/doorbell I/O, not compute.
            if (procTime)
                co_await sim::sleep(
                    gpu.scaled(procTime) *
                    static_cast<sim::Tick>(msgs.size()));
            items.clear();
            for (const core::GioMessage &m : msgs) {
                std::span<const std::uint8_t> p = m.payload;
                if (respBytes != 0 && respBytes < p.size())
                    p = p.subspan(0, respBytes);
                items.push_back({m.tag, p, 0});
            }
            co_await q.sendBatch(items);
        }
    }
    for (;;) {
        core::GioMessage m = co_await q.recv();
        if (procTime)
            co_await sim::sleep(gpu.scaled(procTime));
        if (respBytes == 0 || respBytes >= m.payload.size()) {
            co_await q.send(m.tag, m.payload);
        } else {
            std::vector<std::uint8_t> r(m.payload.begin(),
                                        m.payload.begin() +
                                            static_cast<long>(respBytes));
            co_await q.send(m.tag, r);
        }
    }
}

sim::Task
runVectorScaleBlock(accel::Gpu &gpu, core::AccelQueue &q,
                    std::uint32_t factor, sim::Tick procTime)
{
    co_await gpu.slots().acquire(1);
    std::vector<std::uint8_t> out;
    for (;;) {
        core::GioMessage m = co_await q.recv();
        if (procTime)
            co_await sim::sleep(gpu.scaled(procTime));
        out.resize(m.payload.size());
        std::size_t i = 0;
        for (; i + 3 < m.payload.size(); i += 4) {
            std::uint32_t v =
                static_cast<std::uint32_t>(m.payload[i]) |
                (static_cast<std::uint32_t>(m.payload[i + 1]) << 8) |
                (static_cast<std::uint32_t>(m.payload[i + 2]) << 16) |
                (static_cast<std::uint32_t>(m.payload[i + 3]) << 24);
            v *= factor;
            out[i] = static_cast<std::uint8_t>(v);
            out[i + 1] = static_cast<std::uint8_t>(v >> 8);
            out[i + 2] = static_cast<std::uint8_t>(v >> 16);
            out[i + 3] = static_cast<std::uint8_t>(v >> 24);
        }
        // A payload that is not a multiple of 4 carries its trailing
        // 1-3 bytes through unchanged (they are not a full element).
        std::copy(m.payload.begin() + static_cast<long>(i),
                  m.payload.end(), out.begin() + static_cast<long>(i));
        co_await q.send(m.tag, out);
    }
}

sim::Task
runLenetServer(accel::Gpu &gpu, core::AccelQueue &q, const LeNet &net,
               LenetServiceConfig cfg)
{
    co_await gpu.slots().acquire(1); // the polling block
    sim::Rng rng(cfg.jitterSeed);
    if (cfg.maxBatch > 1) {
        std::size_t cap = static_cast<std::size_t>(cfg.maxBatch);
        std::vector<std::span<const std::uint8_t>> images;
        std::vector<std::size_t> imageIdx;
        std::vector<std::uint8_t> respB;
        std::vector<core::GioTxItem> items;
        images.reserve(cap);
        imageIdx.reserve(cap);
        respB.reserve(cap);
        items.reserve(cap);
        for (;;) {
            std::vector<core::GioMessage> msgs =
                co_await drainBatch(q, cfg.maxBatch, cfg.batchLinger);
            images.clear();
            imageIdx.clear();
            items.clear();
            respB.assign(msgs.size(), 0xff);
            for (std::size_t i = 0; i < msgs.size(); ++i) {
                if (msgs[i].payload.size() == LeNet::imageBytes) {
                    images.push_back(msgs[i].payload);
                    imageIdx.push_back(i);
                }
            }
            if (!images.empty()) {
                // One batched child kernel per layer classifies the
                // whole batch: the launch overhead is paid once and
                // the duration follows the occupancy model.
                int n = static_cast<int>(images.size());
                if (cfg.dynamicParallelism) {
                    for (sim::Tick layer : lenetLayers) {
                        co_await gpu.batchedLaunch(
                            cfg.childBlocks,
                            jittered(layer, cfg.jitterPct, rng), n);
                    }
                } else {
                    sim::Tick total = 0;
                    for (sim::Tick layer : lenetLayers)
                        total += layer;
                    co_await gpu.batchedLaunch(
                        cfg.childBlocks,
                        jittered(total, cfg.jitterPct, rng), n);
                }
                std::vector<int> digits = net.classifyBatch(images);
                for (std::size_t j = 0; j < digits.size(); ++j)
                    respB[imageIdx[j]] =
                        static_cast<std::uint8_t>(digits[j]);
            }
            for (std::size_t i = 0; i < msgs.size(); ++i) {
                // Malformed images (respB stays 0xff) are answered in
                // the same batch, per-message, with err = 1.
                bool bad =
                    msgs[i].payload.size() != LeNet::imageBytes;
                items.push_back({msgs[i].tag,
                                 std::span<const std::uint8_t>(
                                     &respB[i], 1),
                                 bad ? 1u : 0u});
            }
            co_await q.sendBatch(items);
        }
    }
    std::vector<std::uint8_t> resp(1);
    for (;;) {
        core::GioMessage m = co_await q.recv();
        if (m.payload.size() != LeNet::imageBytes) {
            resp[0] = 0xff;
            co_await q.send(m.tag, resp, /*err=*/1);
            continue;
        }
        if (cfg.dynamicParallelism) {
            for (sim::Tick layer : lenetLayers) {
                co_await gpu.deviceLaunch(
                    cfg.childBlocks,
                    jittered(layer, cfg.jitterPct, rng));
            }
        } else {
            sim::Tick total = 0;
            for (sim::Tick layer : lenetLayers)
                total += layer;
            co_await gpu.deviceLaunch(
                cfg.childBlocks, jittered(total, cfg.jitterPct, rng));
        }
        resp[0] = static_cast<std::uint8_t>(net.classify(m.payload));
        co_await q.send(m.tag, resp);
    }
}

FaceVerResult
faceVerDecide(std::span<const std::uint8_t> request,
              const std::optional<std::vector<std::uint8_t>> &enrolled)
{
    if (request.size() != faceVerRequestBytes)
        return FaceVerResult::Malformed;
    if (!enrolled || enrolled->size() != faceVerImageBytes)
        return FaceVerResult::UnknownLabel;
    auto image = request.subspan(faceVerLabelBytes);
    return lbpVerify(image, *enrolled, 32, 32, faceVerThreshold)
               ? FaceVerResult::Match
               : FaceVerResult::NoMatch;
}

sim::Task
runFaceVerWorker(accel::Gpu &gpu, core::AccelQueue &serverQ,
                 core::AccelQueue &dbQ, ServiceBatchConfig batch)
{
    co_await gpu.slots().acquire(1); // one persistent block (1024 thr)
    std::uint32_t nextDbTag = 1;
    if (batch.maxBatch > 1) {
        for (;;) {
            std::vector<core::GioMessage> msgs = co_await drainBatch(
                serverQ, batch.maxBatch, batch.linger);
            std::size_t n = msgs.size();
            std::vector<std::uint8_t> respB(
                n, static_cast<std::uint8_t>(FaceVerResult::Malformed));
            // Issue the backend GETs for all well-formed requests as
            // ONE batched send on the client mqueue.
            std::vector<std::vector<std::uint8_t>> getPayloads;
            std::vector<std::size_t> getIdx;
            getPayloads.reserve(n);
            getIdx.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                if (msgs[i].payload.size() != faceVerRequestBytes)
                    continue;
                std::string label(msgs[i].payload.begin(),
                                  msgs[i].payload.begin() +
                                      faceVerLabelBytes);
                getPayloads.push_back(kvEncodeGet(label));
                getIdx.push_back(i);
            }
            std::vector<core::GioTxItem> gets;
            std::vector<std::uint32_t> getTags;
            gets.reserve(getPayloads.size());
            getTags.reserve(getPayloads.size());
            for (const auto &p : getPayloads) {
                getTags.push_back(nextDbTag);
                gets.push_back({nextDbTag++, p, 0});
            }
            co_await dbQ.sendBatch(gets);
            // Collect the replies (tag-matched: the DB tier answers
            // in order, but correctness must not depend on it).
            std::vector<std::optional<std::vector<std::uint8_t>>>
                enrolled(n);
            std::vector<std::uint8_t> backendErr(n, 0);
            std::vector<std::uint8_t> reachedKernel(n, 0);
            for (std::size_t k = 0; k < gets.size(); ++k) {
                core::GioMessage dbResp = co_await dbQ.recv();
                std::size_t idx = n; // sentinel
                for (std::size_t g = 0; g < getTags.size(); ++g) {
                    if (getTags[g] == dbResp.tag) {
                        idx = getIdx[g];
                        break;
                    }
                }
                LYNX_ASSERT(idx < n, "unmatched DB response tag ",
                            dbResp.tag);
                if (dbResp.err != 0) {
                    backendErr[idx] = 1;
                    respB[idx] = static_cast<std::uint8_t>(
                        FaceVerResult::BackendError);
                    continue;
                }
                reachedKernel[idx] = 1;
                KvResponse kv = kvDecodeResponse(dbResp.payload);
                if (kv.status == KvStatus::Ok)
                    enrolled[idx] = std::move(kv.value);
            }
            // One occupancy-aware batched LBP kernel for every
            // request that reaches the compare stage.
            int kernelItems = 0;
            for (std::size_t i = 0; i < n; ++i)
                kernelItems += reachedKernel[i];
            if (kernelItems > 0)
                co_await sim::sleep(gpu.scaled(gpu.batchedDuration(
                    calibration::lbpKernelTime, kernelItems)));
            // Batched compare for the pairs with an enrolled image;
            // the rest resolve to UnknownLabel.
            std::vector<LbpPair> pairs;
            std::vector<std::size_t> pairIdx;
            for (std::size_t i = 0; i < n; ++i) {
                if (!reachedKernel[i])
                    continue;
                if (enrolled[i] &&
                    enrolled[i]->size() == faceVerImageBytes) {
                    pairs.push_back(
                        {std::span<const std::uint8_t>(msgs[i].payload)
                             .subspan(faceVerLabelBytes),
                         *enrolled[i]});
                    pairIdx.push_back(i);
                } else {
                    respB[i] = static_cast<std::uint8_t>(
                        FaceVerResult::UnknownLabel);
                }
            }
            std::vector<std::uint8_t> matched = lbpVerifyBatch(
                pairs, 32, 32, faceVerThreshold);
            for (std::size_t j = 0; j < matched.size(); ++j)
                respB[pairIdx[j]] = static_cast<std::uint8_t>(
                    matched[j] ? FaceVerResult::Match
                               : FaceVerResult::NoMatch);
            std::vector<core::GioTxItem> items;
            items.reserve(n);
            for (std::size_t i = 0; i < n; ++i)
                items.push_back({msgs[i].tag,
                                 std::span<const std::uint8_t>(
                                     &respB[i], 1),
                                 0});
            co_await serverQ.sendBatch(items);
        }
    }
    std::vector<std::uint8_t> resp(1);
    for (;;) {
        core::GioMessage m = co_await serverQ.recv();
        if (m.payload.size() != faceVerRequestBytes) {
            resp[0] = static_cast<std::uint8_t>(FaceVerResult::Malformed);
            co_await serverQ.send(m.tag, resp);
            continue;
        }
        std::string label(m.payload.begin(),
                          m.payload.begin() + faceVerLabelBytes);
        std::vector<std::uint8_t> getReq = kvEncodeGet(label);
        co_await dbQ.send(nextDbTag++, getReq);
        core::GioMessage dbResp = co_await dbQ.recv();
        if (dbResp.err != 0) {
            // Backend connection failure propagated through the
            // mqueue metadata error status (§5.1).
            resp[0] = static_cast<std::uint8_t>(
                FaceVerResult::BackendError);
            co_await serverQ.send(m.tag, resp);
            continue;
        }
        KvResponse kv = kvDecodeResponse(dbResp.payload);

        std::optional<std::vector<std::uint8_t>> enrolled;
        if (kv.status == KvStatus::Ok)
            enrolled = std::move(kv.value);
        // The LBP compare kernel runs inside the persistent block
        // ("a kernel executed by a single threadblock with 1024
        // threads", §6.4): charge its time, compute the real answer.
        co_await sim::sleep(gpu.scaled(calibration::lbpKernelTime));
        resp[0] = static_cast<std::uint8_t>(
            faceVerDecide(m.payload, enrolled));
        co_await serverQ.send(m.tag, resp);
    }
}

baseline::HostHandler
hostEchoHandler(sim::Tick procTime, int blocks)
{
    return [procTime, blocks](sim::Core &core, accel::Stream &st,
                              const net::Message &req)
               -> sim::Co<std::vector<std::uint8_t>> {
        co_await st.memcpyH2D(core, req.size());
        co_await st.launch(core, blocks, procTime);
        co_await st.memcpyD2H(core, req.size());
        co_await st.sync(core);
        co_return req.payload.toVector();
    };
}

baseline::HostHandler
hostLenetHandler(const LeNet &net, LenetServiceConfig cfg)
{
    auto rng = std::make_shared<sim::Rng>(cfg.jitterSeed);
    return [&net, cfg, rng](sim::Core &core, accel::Stream &st,
                            const net::Message &req)
               -> sim::Co<std::vector<std::uint8_t>> {
        if (req.size() != LeNet::imageBytes)
            co_return std::vector<std::uint8_t>{0xff};
        co_await st.memcpyH2D(core, req.size());
        // TVM emits one kernel per layer, and its generated runtime
        // synchronizes between layers: the CPU-GPU ping-pong that
        // §3.2 blames for the baseline's per-request overhead.
        for (sim::Tick layer : lenetLayers) {
            co_await st.launch(core, cfg.childBlocks,
                               jittered(layer, cfg.jitterPct, *rng));
            co_await st.sync(core);
        }
        co_await st.memcpyD2H(core, 4);
        co_await st.sync(core);
        co_return std::vector<std::uint8_t>{
            static_cast<std::uint8_t>(net.classify(req.payload))};
    };
}

baseline::HostHandler
hostFaceVerHandler(sim::Simulator &sim, net::Nic &nic,
                   net::Address backend, net::StackProfile stack)
{
    // Ephemeral ports for the asynchronous memcached connections.
    auto nextPort = std::make_shared<std::uint16_t>(30000);
    return [&sim, &nic, backend, stack, nextPort](
               sim::Core &core, accel::Stream &st,
               const net::Message &req)
               -> sim::Co<std::vector<std::uint8_t>> {
        if (req.size() != faceVerRequestBytes)
            co_return std::vector<std::uint8_t>{
                static_cast<std::uint8_t>(FaceVerResult::Malformed)};

        std::string label(req.payload.begin(),
                          req.payload.begin() + faceVerLabelBytes);

        // Asynchronous GET to the database tier (§6.4): the listener
        // keeps serving while this request waits.
        std::uint16_t port = (*nextPort)++;
        if (*nextPort >= 39000)
            *nextPort = 30000;
        net::Endpoint &ep = nic.bind(net::Protocol::Tcp, port);
        net::Message get;
        get.src = {nic.node(), port};
        get.dst = backend;
        get.proto = net::Protocol::Tcp;
        get.payload = kvEncodeGet(label);
        co_await core.exec(
            stack.cost(net::Protocol::Tcp, net::Dir::Send, get.size()));
        co_await nic.send(std::move(get));
        auto dbResp = co_await workload::recvTimeout(
            sim, ep, sim::milliseconds(50));
        nic.unbind(net::Protocol::Tcp, port);

        std::optional<std::vector<std::uint8_t>> enrolled;
        if (dbResp) {
            co_await core.exec(stack.cost(net::Protocol::Tcp,
                                          net::Dir::Recv,
                                          dbResp->size()));
            KvResponse kv = kvDecodeResponse(dbResp->payload);
            if (kv.status == KvStatus::Ok)
                enrolled = std::move(kv.value);
        }

        // Ship both images, run the compare kernel, read the result.
        co_await st.memcpyH2D(core, req.size() + faceVerImageBytes);
        co_await st.launch(core, 1, calibration::lbpKernelTime);
        co_await st.memcpyD2H(core, 4);
        co_await st.sync(core);
        co_return std::vector<std::uint8_t>{static_cast<std::uint8_t>(
            faceVerDecide(req.payload, enrolled))};
    };
}

} // namespace lynx::apps

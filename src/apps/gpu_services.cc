#include "gpu_services.hh"

#include <string>

#include "sim/random.hh"
#include "workload/loadgen.hh"

namespace lynx::apps {

namespace {

using calibration::lenetKernelCount;

/** Per-layer kernel durations in TVM launch order. */
const sim::Tick lenetLayers[lenetKernelCount] = {
    calibration::lenetConv1, calibration::lenetPool1,
    calibration::lenetConv2, calibration::lenetPool2,
    calibration::lenetFc1,   calibration::lenetFc2,
    calibration::lenetSoftmax,
};

/** Apply uniform +-pct jitter to a duration. */
sim::Tick
jittered(sim::Tick d, double pct, sim::Rng &rng)
{
    if (pct <= 0.0)
        return d;
    double f = 1.0 + pct * (rng.uniform() * 2.0 - 1.0);
    return static_cast<sim::Tick>(static_cast<double>(d) * f);
}

} // namespace

sim::Task
runEchoBlock(accel::Gpu &gpu, core::AccelQueue &q, sim::Tick procTime,
             std::size_t respBytes)
{
    co_await gpu.slots().acquire(1); // persistent kernel block
    for (;;) {
        core::GioMessage m = co_await q.recv();
        if (procTime)
            co_await sim::sleep(gpu.scaled(procTime));
        if (respBytes == 0 || respBytes >= m.payload.size()) {
            co_await q.send(m.tag, m.payload);
        } else {
            std::vector<std::uint8_t> r(m.payload.begin(),
                                        m.payload.begin() +
                                            static_cast<long>(respBytes));
            co_await q.send(m.tag, r);
        }
    }
}

sim::Task
runVectorScaleBlock(accel::Gpu &gpu, core::AccelQueue &q,
                    std::uint32_t factor, sim::Tick procTime)
{
    co_await gpu.slots().acquire(1);
    for (;;) {
        core::GioMessage m = co_await q.recv();
        if (procTime)
            co_await sim::sleep(gpu.scaled(procTime));
        std::vector<std::uint8_t> out(m.payload.size());
        for (std::size_t i = 0; i + 3 < m.payload.size(); i += 4) {
            std::uint32_t v =
                static_cast<std::uint32_t>(m.payload[i]) |
                (static_cast<std::uint32_t>(m.payload[i + 1]) << 8) |
                (static_cast<std::uint32_t>(m.payload[i + 2]) << 16) |
                (static_cast<std::uint32_t>(m.payload[i + 3]) << 24);
            v *= factor;
            out[i] = static_cast<std::uint8_t>(v);
            out[i + 1] = static_cast<std::uint8_t>(v >> 8);
            out[i + 2] = static_cast<std::uint8_t>(v >> 16);
            out[i + 3] = static_cast<std::uint8_t>(v >> 24);
        }
        co_await q.send(m.tag, out);
    }
}

sim::Task
runLenetServer(accel::Gpu &gpu, core::AccelQueue &q, const LeNet &net,
               LenetServiceConfig cfg)
{
    co_await gpu.slots().acquire(1); // the polling block
    sim::Rng rng(cfg.jitterSeed);
    for (;;) {
        core::GioMessage m = co_await q.recv();
        std::vector<std::uint8_t> resp(1);
        if (m.payload.size() != LeNet::imageBytes) {
            resp[0] = 0xff;
            co_await q.send(m.tag, resp, /*err=*/1);
            continue;
        }
        if (cfg.dynamicParallelism) {
            for (sim::Tick layer : lenetLayers) {
                co_await gpu.deviceLaunch(
                    cfg.childBlocks,
                    jittered(layer, cfg.jitterPct, rng));
            }
        } else {
            sim::Tick total = 0;
            for (sim::Tick layer : lenetLayers)
                total += layer;
            co_await gpu.deviceLaunch(
                cfg.childBlocks, jittered(total, cfg.jitterPct, rng));
        }
        resp[0] = static_cast<std::uint8_t>(net.classify(m.payload));
        co_await q.send(m.tag, resp);
    }
}

FaceVerResult
faceVerDecide(std::span<const std::uint8_t> request,
              const std::optional<std::vector<std::uint8_t>> &enrolled)
{
    if (request.size() != faceVerRequestBytes)
        return FaceVerResult::Malformed;
    if (!enrolled || enrolled->size() != faceVerImageBytes)
        return FaceVerResult::UnknownLabel;
    auto image = request.subspan(faceVerLabelBytes);
    return lbpVerify(image, *enrolled, 32, 32, faceVerThreshold)
               ? FaceVerResult::Match
               : FaceVerResult::NoMatch;
}

sim::Task
runFaceVerWorker(accel::Gpu &gpu, core::AccelQueue &serverQ,
                 core::AccelQueue &dbQ)
{
    co_await gpu.slots().acquire(1); // one persistent block (1024 thr)
    std::uint32_t nextDbTag = 1;
    for (;;) {
        core::GioMessage m = co_await serverQ.recv();
        std::vector<std::uint8_t> resp(1);
        if (m.payload.size() != faceVerRequestBytes) {
            resp[0] = static_cast<std::uint8_t>(FaceVerResult::Malformed);
            co_await serverQ.send(m.tag, resp);
            continue;
        }
        std::string label(m.payload.begin(),
                          m.payload.begin() + faceVerLabelBytes);
        std::vector<std::uint8_t> getReq = kvEncodeGet(label);
        co_await dbQ.send(nextDbTag++, getReq);
        core::GioMessage dbResp = co_await dbQ.recv();
        if (dbResp.err != 0) {
            // Backend connection failure propagated through the
            // mqueue metadata error status (§5.1).
            resp[0] = static_cast<std::uint8_t>(
                FaceVerResult::BackendError);
            co_await serverQ.send(m.tag, resp);
            continue;
        }
        KvResponse kv = kvDecodeResponse(dbResp.payload);

        std::optional<std::vector<std::uint8_t>> enrolled;
        if (kv.status == KvStatus::Ok)
            enrolled = std::move(kv.value);
        // The LBP compare kernel runs inside the persistent block
        // ("a kernel executed by a single threadblock with 1024
        // threads", §6.4): charge its time, compute the real answer.
        co_await sim::sleep(gpu.scaled(calibration::lbpKernelTime));
        resp[0] = static_cast<std::uint8_t>(
            faceVerDecide(m.payload, enrolled));
        co_await serverQ.send(m.tag, resp);
    }
}

baseline::HostHandler
hostEchoHandler(sim::Tick procTime, int blocks)
{
    return [procTime, blocks](sim::Core &core, accel::Stream &st,
                              const net::Message &req)
               -> sim::Co<std::vector<std::uint8_t>> {
        co_await st.memcpyH2D(core, req.size());
        co_await st.launch(core, blocks, procTime);
        co_await st.memcpyD2H(core, req.size());
        co_await st.sync(core);
        co_return req.payload;
    };
}

baseline::HostHandler
hostLenetHandler(const LeNet &net, LenetServiceConfig cfg)
{
    auto rng = std::make_shared<sim::Rng>(cfg.jitterSeed);
    return [&net, cfg, rng](sim::Core &core, accel::Stream &st,
                            const net::Message &req)
               -> sim::Co<std::vector<std::uint8_t>> {
        if (req.size() != LeNet::imageBytes)
            co_return std::vector<std::uint8_t>{0xff};
        co_await st.memcpyH2D(core, req.size());
        // TVM emits one kernel per layer, and its generated runtime
        // synchronizes between layers: the CPU-GPU ping-pong that
        // §3.2 blames for the baseline's per-request overhead.
        for (sim::Tick layer : lenetLayers) {
            co_await st.launch(core, cfg.childBlocks,
                               jittered(layer, cfg.jitterPct, *rng));
            co_await st.sync(core);
        }
        co_await st.memcpyD2H(core, 4);
        co_await st.sync(core);
        co_return std::vector<std::uint8_t>{
            static_cast<std::uint8_t>(net.classify(req.payload))};
    };
}

baseline::HostHandler
hostFaceVerHandler(sim::Simulator &sim, net::Nic &nic,
                   net::Address backend, net::StackProfile stack)
{
    // Ephemeral ports for the asynchronous memcached connections.
    auto nextPort = std::make_shared<std::uint16_t>(30000);
    return [&sim, &nic, backend, stack, nextPort](
               sim::Core &core, accel::Stream &st,
               const net::Message &req)
               -> sim::Co<std::vector<std::uint8_t>> {
        if (req.size() != faceVerRequestBytes)
            co_return std::vector<std::uint8_t>{
                static_cast<std::uint8_t>(FaceVerResult::Malformed)};

        std::string label(req.payload.begin(),
                          req.payload.begin() + faceVerLabelBytes);

        // Asynchronous GET to the database tier (§6.4): the listener
        // keeps serving while this request waits.
        std::uint16_t port = (*nextPort)++;
        if (*nextPort >= 39000)
            *nextPort = 30000;
        net::Endpoint &ep = nic.bind(net::Protocol::Tcp, port);
        net::Message get;
        get.src = {nic.node(), port};
        get.dst = backend;
        get.proto = net::Protocol::Tcp;
        get.payload = kvEncodeGet(label);
        co_await core.exec(
            stack.cost(net::Protocol::Tcp, net::Dir::Send, get.size()));
        co_await nic.send(std::move(get));
        auto dbResp = co_await workload::recvTimeout(
            sim, ep, sim::milliseconds(50));
        nic.unbind(net::Protocol::Tcp, port);

        std::optional<std::vector<std::uint8_t>> enrolled;
        if (dbResp) {
            co_await core.exec(stack.cost(net::Protocol::Tcp,
                                          net::Dir::Recv,
                                          dbResp->size()));
            KvResponse kv = kvDecodeResponse(dbResp->payload);
            if (kv.status == KvStatus::Ok)
                enrolled = std::move(kv.value);
        }

        // Ship both images, run the compare kernel, read the result.
        co_await st.memcpyH2D(core, req.size() + faceVerImageBytes);
        co_await st.launch(core, 1, calibration::lbpKernelTime);
        co_await st.memcpyD2H(core, 4);
        co_await st.sync(core);
        co_return std::vector<std::uint8_t>{static_cast<std::uint8_t>(
            faceVerDecide(req.payload, enrolled))};
    };
}

} // namespace lynx::apps

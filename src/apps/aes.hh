/**
 * @file
 * AES-128 block cipher (FIPS-197), implemented from scratch for the
 * Intel VCA / SGX secure-computing example (paper §6.2): "The server
 * receives an AES-encrypted message (4 bytes) via Lynx, decrypts it,
 * multiplies it by a constant, encrypts it and sends the result
 * back."
 *
 * ECB single-block and CTR-mode helpers are provided; the SGX
 * example uses single 16-byte blocks. Verified against the FIPS-197
 * appendix vectors in the tests.
 */

#ifndef LYNX_APPS_AES_HH
#define LYNX_APPS_AES_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace lynx::apps {

/** AES-128: one key, encrypt/decrypt 16-byte blocks. */
class Aes128
{
  public:
    using Block = std::array<std::uint8_t, 16>;
    using Key = std::array<std::uint8_t, 16>;

    explicit Aes128(const Key &key);

    /** Encrypt one 16-byte block (ECB). */
    Block encrypt(const Block &plain) const;

    /** Decrypt one 16-byte block (ECB). */
    Block decrypt(const Block &cipher) const;

    /** CTR-mode keystream XOR over an arbitrary-length buffer
     *  (encryption and decryption are the same operation). */
    std::vector<std::uint8_t> ctr(std::span<const std::uint8_t> data,
                                  const Block &iv) const;

  private:
    /** Round keys: 11 × 16 bytes. */
    std::array<std::uint8_t, 176> roundKeys_{};
};

} // namespace lynx::apps

#endif // LYNX_APPS_AES_HH

#include "lenet_train.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "workload/datagen.hh"

namespace lynx::apps {

namespace {

/** Zero-filled gradient buffers shaped like @p p. */
LeNetParams
zerosLike(const LeNetParams &p)
{
    LeNetParams g;
    g.conv1W.assign(p.conv1W.size(), 0.0f);
    g.conv1B.assign(p.conv1B.size(), 0.0f);
    g.conv2W.assign(p.conv2W.size(), 0.0f);
    g.conv2B.assign(p.conv2B.size(), 0.0f);
    g.fc1W.assign(p.fc1W.size(), 0.0f);
    g.fc1B.assign(p.fc1B.size(), 0.0f);
    g.fc2W.assign(p.fc2W.size(), 0.0f);
    g.fc2B.assign(p.fc2B.size(), 0.0f);
    g.fc3W.assign(p.fc3W.size(), 0.0f);
    g.fc3B.assign(p.fc3B.size(), 0.0f);
    return g;
}

void
axpy(std::vector<float> &x, const std::vector<float> &g, float a)
{
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] += a * g[i];
}

/** Forward conv + tanh, keeping the activated output. */
void
convForward(const std::vector<float> &in, int inCh, int inDim,
            const std::vector<float> &w, const std::vector<float> &b,
            int outCh, int k, int pad, std::vector<float> &out)
{
    const int outDim = inDim + 2 * pad - k + 1;
    out.assign(static_cast<std::size_t>(outCh) * outDim * outDim, 0.0f);
    for (int oc = 0; oc < outCh; ++oc) {
        for (int oy = 0; oy < outDim; ++oy) {
            for (int ox = 0; ox < outDim; ++ox) {
                float acc = b[static_cast<std::size_t>(oc)];
                for (int ic = 0; ic < inCh; ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = oy + ky - pad;
                        if (iy < 0 || iy >= inDim)
                            continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ox + kx - pad;
                            if (ix < 0 || ix >= inDim)
                                continue;
                            acc += in[static_cast<std::size_t>(
                                       (ic * inDim + iy) * inDim + ix)] *
                                   w[static_cast<std::size_t>(
                                       ((oc * inCh + ic) * k + ky) * k +
                                       kx)];
                        }
                    }
                }
                out[static_cast<std::size_t>(
                    (oc * outDim + oy) * outDim + ox)] = std::tanh(acc);
            }
        }
    }
}

/**
 * Backward through conv+tanh: given d(out) and the activated out,
 * accumulate dW/dB and produce d(in).
 */
void
convBackward(const std::vector<float> &in, int inCh, int inDim,
             const std::vector<float> &w, int outCh, int k, int pad,
             const std::vector<float> &out,
             const std::vector<float> &dOut, std::vector<float> &dW,
             std::vector<float> &dB, std::vector<float> &dIn)
{
    const int outDim = inDim + 2 * pad - k + 1;
    dIn.assign(in.size(), 0.0f);
    for (int oc = 0; oc < outCh; ++oc) {
        for (int oy = 0; oy < outDim; ++oy) {
            for (int ox = 0; ox < outDim; ++ox) {
                const std::size_t oi = static_cast<std::size_t>(
                    (oc * outDim + oy) * outDim + ox);
                const float a = out[oi];
                const float dz = dOut[oi] * (1.0f - a * a);
                if (dz == 0.0f)
                    continue;
                dB[static_cast<std::size_t>(oc)] += dz;
                for (int ic = 0; ic < inCh; ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = oy + ky - pad;
                        if (iy < 0 || iy >= inDim)
                            continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ox + kx - pad;
                            if (ix < 0 || ix >= inDim)
                                continue;
                            const std::size_t ii =
                                static_cast<std::size_t>(
                                    (ic * inDim + iy) * inDim + ix);
                            const std::size_t wi =
                                static_cast<std::size_t>(
                                    ((oc * inCh + ic) * k + ky) * k +
                                    kx);
                            dW[wi] += dz * in[ii];
                            dIn[ii] += dz * w[wi];
                        }
                    }
                }
            }
        }
    }
}

void
poolForward(const std::vector<float> &in, int ch, int dim,
            std::vector<float> &out)
{
    const int outDim = dim / 2;
    out.assign(static_cast<std::size_t>(ch) * outDim * outDim, 0.0f);
    for (int c = 0; c < ch; ++c)
        for (int y = 0; y < outDim; ++y)
            for (int x = 0; x < outDim; ++x) {
                float s = 0;
                for (int dy = 0; dy < 2; ++dy)
                    for (int dx = 0; dx < 2; ++dx)
                        s += in[static_cast<std::size_t>(
                            (c * dim + 2 * y + dy) * dim + 2 * x + dx)];
                out[static_cast<std::size_t>(
                    (c * outDim + y) * outDim + x)] = s * 0.25f;
            }
}

void
poolBackward(int ch, int dim, const std::vector<float> &dOut,
             std::vector<float> &dIn)
{
    const int outDim = dim / 2;
    dIn.assign(static_cast<std::size_t>(ch) * dim * dim, 0.0f);
    for (int c = 0; c < ch; ++c)
        for (int y = 0; y < outDim; ++y)
            for (int x = 0; x < outDim; ++x) {
                const float g =
                    dOut[static_cast<std::size_t>(
                        (c * outDim + y) * outDim + x)] *
                    0.25f;
                for (int dy = 0; dy < 2; ++dy)
                    for (int dx = 0; dx < 2; ++dx)
                        dIn[static_cast<std::size_t>(
                            (c * dim + 2 * y + dy) * dim + 2 * x +
                            dx)] = g;
            }
}

void
denseForward(const std::vector<float> &in, const std::vector<float> &w,
             const std::vector<float> &b, int outN, bool activate,
             std::vector<float> &out)
{
    const std::size_t inN = in.size();
    out.assign(static_cast<std::size_t>(outN), 0.0f);
    for (int o = 0; o < outN; ++o) {
        float acc = b[static_cast<std::size_t>(o)];
        for (std::size_t i = 0; i < inN; ++i)
            acc += in[i] * w[static_cast<std::size_t>(o) * inN + i];
        out[static_cast<std::size_t>(o)] =
            activate ? std::tanh(acc) : acc;
    }
}

/**
 * Backward through dense: @p dOut is d(activation); when the layer
 * had tanh, @p activated must be the activated output (else pass
 * nullptr for a linear layer, in which case dOut is d(z) directly).
 */
void
denseBackward(const std::vector<float> &in, const std::vector<float> &w,
              const std::vector<float> *activated,
              const std::vector<float> &dOut, std::vector<float> &dW,
              std::vector<float> &dB, std::vector<float> &dIn)
{
    const std::size_t inN = in.size();
    const std::size_t outN = dOut.size();
    dIn.assign(inN, 0.0f);
    for (std::size_t o = 0; o < outN; ++o) {
        float dz = dOut[o];
        if (activated) {
            const float a = (*activated)[o];
            dz *= (1.0f - a * a);
        }
        dB[o] += dz;
        for (std::size_t i = 0; i < inN; ++i) {
            dW[o * inN + i] += dz * in[i];
            dIn[i] += dz * w[o * inN + i];
        }
    }
}

} // namespace

double
LeNetTrainer::backprop(const LenetExample &ex, LeNetParams &g) const
{
    LYNX_ASSERT(ex.image.size() == LeNet::imageBytes &&
                    ex.label >= 0 && ex.label < 10,
                "bad training example");
    const LeNetParams &p = params_;

    // ---- forward with caches ----
    std::vector<float> x(LeNet::imageBytes);
    for (int i = 0; i < LeNet::imageBytes; ++i)
        x[static_cast<std::size_t>(i)] =
            static_cast<float>(ex.image[static_cast<std::size_t>(i)]) /
                255.0f -
            0.5f;

    std::vector<float> c1, p1, c2, p2, f1, f2, logits;
    convForward(x, 1, 28, p.conv1W, p.conv1B, 6, 5, 2, c1);
    poolForward(c1, 6, 28, p1);
    convForward(p1, 6, 14, p.conv2W, p.conv2B, 16, 5, 0, c2);
    poolForward(c2, 16, 10, p2);
    denseForward(p2, p.fc1W, p.fc1B, 120, true, f1);
    denseForward(f1, p.fc2W, p.fc2B, 84, true, f2);
    denseForward(f2, p.fc3W, p.fc3B, 10, false, logits);

    // Softmax + cross-entropy.
    float mx = *std::max_element(logits.begin(), logits.end());
    std::vector<float> probs(10);
    float sum = 0;
    for (int i = 0; i < 10; ++i) {
        probs[static_cast<std::size_t>(i)] =
            std::exp(logits[static_cast<std::size_t>(i)] - mx);
        sum += probs[static_cast<std::size_t>(i)];
    }
    for (auto &q : probs)
        q /= sum;
    double loss =
        -std::log(std::max(probs[static_cast<std::size_t>(ex.label)],
                           1e-12f));

    // ---- backward ----
    std::vector<float> dLogits = probs;
    dLogits[static_cast<std::size_t>(ex.label)] -= 1.0f;

    std::vector<float> dF2, dF1, dP2, dC2, dP1, dC1, dX;
    denseBackward(f2, p.fc3W, nullptr, dLogits, g.fc3W, g.fc3B, dF2);
    denseBackward(f1, p.fc2W, &f2, dF2, g.fc2W, g.fc2B, dF1);
    denseBackward(p2, p.fc1W, &f1, dF1, g.fc1W, g.fc1B, dP2);
    poolBackward(16, 10, dP2, dC2);
    convBackward(p1, 6, 14, p.conv2W, 16, 5, 0, c2, dC2, g.conv2W,
                 g.conv2B, dP1);
    poolBackward(6, 28, dP1, dC1);
    convBackward(x, 1, 28, p.conv1W, 6, 5, 2, c1, dC1, g.conv1W,
                 g.conv1B, dX);
    return loss;
}

double
LeNetTrainer::step(std::span<const LenetExample> batch, float lr)
{
    LYNX_ASSERT(!batch.empty(), "empty batch");
    LeNetParams g = zerosLike(params_);
    double loss = 0;
    for (const auto &ex : batch)
        loss += backprop(ex, g);
    const float scale = -lr / static_cast<float>(batch.size());
    axpy(params_.conv1W, g.conv1W, scale);
    axpy(params_.conv1B, g.conv1B, scale);
    axpy(params_.conv2W, g.conv2W, scale);
    axpy(params_.conv2B, g.conv2B, scale);
    axpy(params_.fc1W, g.fc1W, scale);
    axpy(params_.fc1B, g.fc1B, scale);
    axpy(params_.fc2W, g.fc2W, scale);
    axpy(params_.fc2B, g.fc2B, scale);
    axpy(params_.fc3W, g.fc3W, scale);
    axpy(params_.fc3B, g.fc3B, scale);
    return loss / static_cast<double>(batch.size());
}

double
LeNetTrainer::train(std::span<const LenetExample> data, int epochs,
                    int batchSize, float lr, std::uint64_t seed)
{
    LYNX_ASSERT(!data.empty() && batchSize > 0, "bad training config");
    std::vector<std::size_t> order(data.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    sim::Rng rng(seed);
    double epochLoss = 0;

    std::vector<LenetExample> batch;
    for (int e = 0; e < epochs; ++e) {
        // Fisher-Yates shuffle.
        for (std::size_t i = order.size() - 1; i > 0; --i)
            std::swap(order[i], order[rng.below(i + 1)]);
        epochLoss = 0;
        int batches = 0;
        for (std::size_t at = 0; at < order.size();
             at += static_cast<std::size_t>(batchSize)) {
            batch.clear();
            for (std::size_t j = at;
                 j < std::min(order.size(),
                              at + static_cast<std::size_t>(batchSize));
                 ++j)
                batch.push_back(data[order[j]]);
            epochLoss += step(batch, lr);
            ++batches;
        }
        epochLoss /= std::max(1, batches);
    }
    return epochLoss;
}

double
LeNetTrainer::accuracy(std::span<const LenetExample> data) const
{
    LeNet net(params_);
    int hits = 0;
    for (const auto &ex : data)
        hits += (net.classify(ex.image) == ex.label);
    return static_cast<double>(hits) /
           static_cast<double>(data.size());
}

std::vector<LenetExample>
synthTrainingSet(int variantsPerDigit, std::uint64_t firstVariant)
{
    std::vector<LenetExample> out;
    for (int d = 0; d < 10; ++d) {
        for (int v = 0; v < variantsPerDigit; ++v) {
            LenetExample ex;
            ex.image = workload::synthMnist(
                d, firstVariant + static_cast<std::uint64_t>(v));
            ex.label = d;
            out.push_back(std::move(ex));
        }
    }
    return out;
}

} // namespace lynx::apps

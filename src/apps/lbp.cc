#include "lbp.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace lynx::apps {

std::vector<std::uint8_t>
lbpCodes(std::span<const std::uint8_t> img, int w, int h)
{
    LYNX_ASSERT(img.size() == static_cast<std::size_t>(w) * h,
                "image size mismatch");
    auto at = [&](int x, int y) {
        x = std::clamp(x, 0, w - 1);
        y = std::clamp(y, 0, h - 1);
        return img[static_cast<std::size_t>(y) * w + x];
    };
    static constexpr int dx[8] = {-1, 0, 1, 1, 1, 0, -1, -1};
    static constexpr int dy[8] = {-1, -1, -1, 0, 1, 1, 1, 0};
    std::vector<std::uint8_t> codes(img.size());
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            std::uint8_t c = at(x, y);
            std::uint8_t code = 0;
            for (int i = 0; i < 8; ++i) {
                if (at(x + dx[i], y + dy[i]) >= c)
                    code = static_cast<std::uint8_t>(code | (1u << i));
            }
            codes[static_cast<std::size_t>(y) * w + x] = code;
        }
    }
    return codes;
}

std::vector<std::uint32_t>
lbpHistogram(std::span<const std::uint8_t> img, int w, int h, int cells)
{
    LYNX_ASSERT(cells > 0 && w >= cells && h >= cells,
                "bad LBP cell grid");
    auto codes = lbpCodes(img, w, h);
    std::vector<std::uint32_t> hist(
        static_cast<std::size_t>(cells) * cells * 256, 0);
    for (int y = 0; y < h; ++y) {
        const int cy = std::min(y * cells / h, cells - 1);
        for (int x = 0; x < w; ++x) {
            const int cx = std::min(x * cells / w, cells - 1);
            const std::size_t cell =
                static_cast<std::size_t>(cy) * cells + cx;
            ++hist[cell * 256 + codes[static_cast<std::size_t>(y) * w + x]];
        }
    }
    return hist;
}

double
lbpChiSquare(const std::vector<std::uint32_t> &a,
             const std::vector<std::uint32_t> &b)
{
    LYNX_ASSERT(a.size() == b.size(), "histogram size mismatch");
    double d = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double x = static_cast<double>(a[i]);
        const double y = static_cast<double>(b[i]);
        if (x + y > 0.0)
            d += (x - y) * (x - y) / (x + y);
    }
    return d;
}

double
lbpDistance(std::span<const std::uint8_t> a,
            std::span<const std::uint8_t> b, int w, int h, int cells)
{
    return lbpChiSquare(lbpHistogram(a, w, h, cells),
                        lbpHistogram(b, w, h, cells));
}

bool
lbpVerify(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b,
          int w, int h, double threshold, int cells)
{
    return lbpDistance(a, b, w, h, cells) <= threshold;
}

namespace {

/** lbpCodes + lbpHistogram fused into caller-owned scratch. The
 *  arithmetic is identical to the allocating functions above. */
void
lbpHistogramInto(std::span<const std::uint8_t> img, int w, int h,
                 int cells, std::vector<std::uint8_t> &codes,
                 std::vector<std::uint32_t> &hist)
{
    LYNX_ASSERT(img.size() == static_cast<std::size_t>(w) * h,
                "image size mismatch");
    LYNX_ASSERT(cells > 0 && w >= cells && h >= cells,
                "bad LBP cell grid");
    auto at = [&](int x, int y) {
        x = std::clamp(x, 0, w - 1);
        y = std::clamp(y, 0, h - 1);
        return img[static_cast<std::size_t>(y) * w + x];
    };
    static constexpr int dx[8] = {-1, 0, 1, 1, 1, 0, -1, -1};
    static constexpr int dy[8] = {-1, -1, -1, 0, 1, 1, 1, 0};
    codes.resize(img.size());
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            std::uint8_t c = at(x, y);
            std::uint8_t code = 0;
            for (int i = 0; i < 8; ++i) {
                if (at(x + dx[i], y + dy[i]) >= c)
                    code = static_cast<std::uint8_t>(code | (1u << i));
            }
            codes[static_cast<std::size_t>(y) * w + x] = code;
        }
    }
    hist.assign(static_cast<std::size_t>(cells) * cells * 256, 0);
    for (int y = 0; y < h; ++y) {
        const int cy = std::min(y * cells / h, cells - 1);
        for (int x = 0; x < w; ++x) {
            const int cx = std::min(x * cells / w, cells - 1);
            const std::size_t cell =
                static_cast<std::size_t>(cy) * cells + cx;
            ++hist[cell * 256 +
                   codes[static_cast<std::size_t>(y) * w + x]];
        }
    }
}

} // namespace

std::vector<double>
lbpDistanceBatch(std::span<const LbpPair> pairs, int w, int h, int cells)
{
    std::vector<double> out;
    out.reserve(pairs.size());
    std::vector<std::uint8_t> codes;
    std::vector<std::uint32_t> ha, hb;
    for (const LbpPair &p : pairs) {
        lbpHistogramInto(p.a, w, h, cells, codes, ha);
        lbpHistogramInto(p.b, w, h, cells, codes, hb);
        out.push_back(lbpChiSquare(ha, hb));
    }
    return out;
}

std::vector<std::uint8_t>
lbpVerifyBatch(std::span<const LbpPair> pairs, int w, int h,
               double threshold, int cells)
{
    auto dist = lbpDistanceBatch(pairs, w, h, cells);
    std::vector<std::uint8_t> out(dist.size());
    for (std::size_t i = 0; i < dist.size(); ++i)
        out[i] = dist[i] <= threshold ? 1 : 0;
    return out;
}

} // namespace lynx::apps

/**
 * @file
 * From-scratch LeNet-5 training (SGD with backpropagation).
 *
 * The paper's service uses a TensorFlow/TVM-trained model; this repo
 * cannot ship MNIST or pre-trained weights, so it trains the same
 * architecture on the synthetic digit set (workload::synthMnist)
 * instead. None of the reproduced measurements depend on the weight
 * values — training exists so the examples serve *correct* digit
 * classifications end-to-end rather than arbitrary (but consistent)
 * ones.
 *
 * Full backpropagation through conv → tanh → avgpool → conv → tanh →
 * avgpool → fc → tanh → fc → tanh → fc → softmax with cross-entropy
 * loss, plain mini-batch SGD.
 */

#ifndef LYNX_APPS_LENET_TRAIN_HH
#define LYNX_APPS_LENET_TRAIN_HH

#include <cstdint>
#include <span>
#include <vector>

#include "apps/lenet.hh"

namespace lynx::apps {

/** One labelled training example. */
struct LenetExample
{
    std::vector<std::uint8_t> image; ///< 784 grayscale bytes
    int label = 0;                   ///< 0-9
};

/** Trains LeNetParams with mini-batch SGD. */
class LeNetTrainer
{
  public:
    explicit LeNetTrainer(std::uint64_t seed = 0x1e4e7)
        : params_(LeNetParams::random(seed))
    {}

    explicit LeNetTrainer(LeNetParams start)
        : params_(std::move(start))
    {}

    /**
     * One SGD step on a mini-batch.
     * @return the batch's mean cross-entropy loss (before the step).
     */
    double step(std::span<const LenetExample> batch, float lr);

    /**
     * Train for @p epochs over @p data with mini-batches of
     * @p batchSize (order shuffled per epoch from @p seed).
     * @return the final epoch's mean loss.
     */
    double train(std::span<const LenetExample> data, int epochs,
                 int batchSize, float lr, std::uint64_t seed = 1);

    /** @return fraction of @p data classified correctly. */
    double accuracy(std::span<const LenetExample> data) const;

    /** @return current parameters (hand these to LeNet). */
    const LeNetParams &params() const { return params_; }

  private:
    /** Forward with caches + backward for one example; accumulates
     *  gradients into @p grads. @return the example's loss. */
    double backprop(const LenetExample &ex, LeNetParams &grads) const;

    LeNetParams params_;
};

/** @return a synthetic training set: @p variantsPerDigit variants of
 *  each digit (from workload::synthMnist). */
std::vector<LenetExample> synthTrainingSet(int variantsPerDigit,
                                           std::uint64_t firstVariant = 0);

} // namespace lynx::apps

#endif // LYNX_APPS_LENET_TRAIN_HH

#include "kvstore.hh"

namespace lynx::apps {

namespace {

void
putU16(std::vector<std::uint8_t> &buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
    buf.push_back(static_cast<std::uint8_t>(v >> 16));
    buf.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint16_t
getU16(std::span<const std::uint8_t> buf, std::size_t off)
{
    return static_cast<std::uint16_t>(buf[off] | (buf[off + 1] << 8));
}

std::uint32_t
getU32(std::span<const std::uint8_t> buf, std::size_t off)
{
    return static_cast<std::uint32_t>(buf[off]) |
           (static_cast<std::uint32_t>(buf[off + 1]) << 8) |
           (static_cast<std::uint32_t>(buf[off + 2]) << 16) |
           (static_cast<std::uint32_t>(buf[off + 3]) << 24);
}

} // namespace

std::vector<std::uint8_t>
kvEncodeGet(const std::string &key)
{
    std::vector<std::uint8_t> buf;
    buf.push_back(static_cast<std::uint8_t>(KvOp::Get));
    putU16(buf, static_cast<std::uint16_t>(key.size()));
    buf.insert(buf.end(), key.begin(), key.end());
    putU32(buf, 0);
    return buf;
}

std::vector<std::uint8_t>
kvEncodeSet(const std::string &key, std::span<const std::uint8_t> value)
{
    std::vector<std::uint8_t> buf;
    buf.push_back(static_cast<std::uint8_t>(KvOp::Set));
    putU16(buf, static_cast<std::uint16_t>(key.size()));
    buf.insert(buf.end(), key.begin(), key.end());
    putU32(buf, static_cast<std::uint32_t>(value.size()));
    buf.insert(buf.end(), value.begin(), value.end());
    return buf;
}

std::optional<KvRequest>
kvDecodeRequest(std::span<const std::uint8_t> buf)
{
    if (buf.size() < 7)
        return std::nullopt;
    KvRequest req;
    if (buf[0] > 1)
        return std::nullopt;
    req.op = static_cast<KvOp>(buf[0]);
    std::uint16_t keyLen = getU16(buf, 1);
    if (buf.size() < 3u + keyLen + 4u)
        return std::nullopt;
    req.key.assign(buf.begin() + 3, buf.begin() + 3 + keyLen);
    std::uint32_t valLen = getU32(buf, 3u + keyLen);
    if (buf.size() < 3u + keyLen + 4u + valLen)
        return std::nullopt;
    req.value.assign(buf.begin() + 3 + keyLen + 4,
                     buf.begin() + 3 + keyLen + 4 + valLen);
    return req;
}

std::vector<std::uint8_t>
kvEncodeResponse(KvStatus status, std::span<const std::uint8_t> value)
{
    std::vector<std::uint8_t> buf;
    buf.push_back(static_cast<std::uint8_t>(status));
    putU32(buf, static_cast<std::uint32_t>(value.size()));
    buf.insert(buf.end(), value.begin(), value.end());
    return buf;
}

KvResponse
kvDecodeResponse(std::span<const std::uint8_t> buf)
{
    KvResponse resp;
    if (buf.size() < 5)
        return resp;
    resp.status = static_cast<KvStatus>(buf[0]);
    std::uint32_t n = getU32(buf, 1);
    if (buf.size() < 5u + n) {
        resp.status = KvStatus::Malformed;
        return resp;
    }
    resp.value.assign(buf.begin() + 5, buf.begin() + 5 + n);
    return resp;
}

std::vector<std::uint8_t>
kvApply(KvStore &store, const KvRequest &req)
{
    if (req.op == KvOp::Set) {
        store.set(req.key, req.value);
        return kvEncodeResponse(KvStatus::Ok, {});
    }
    auto v = store.get(req.key);
    if (!v)
        return kvEncodeResponse(KvStatus::Miss, {});
    return kvEncodeResponse(KvStatus::Ok, *v);
}

} // namespace lynx::apps

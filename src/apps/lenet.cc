#include "lenet.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace lynx::apps {

namespace {

/** Fill @p w with small deterministic pseudo-random weights. */
void
initWeights(std::vector<float> &w, std::size_t n, sim::Rng &rng,
            double scale)
{
    w.resize(n);
    for (auto &x : w)
        x = static_cast<float>((rng.uniform() * 2.0 - 1.0) * scale);
}

} // namespace

LeNetParams
LeNetParams::random(std::uint64_t seed)
{
    LeNetParams p;
    sim::Rng rng(seed);
    initWeights(p.conv1W, 6 * 1 * 5 * 5, rng, 0.35);
    initWeights(p.conv1B, 6, rng, 0.1);
    initWeights(p.conv2W, 16 * 6 * 5 * 5, rng, 0.2);
    initWeights(p.conv2B, 16, rng, 0.1);
    initWeights(p.fc1W, 120 * 400, rng, 0.08);
    initWeights(p.fc1B, 120, rng, 0.05);
    initWeights(p.fc2W, 84 * 120, rng, 0.1);
    initWeights(p.fc2B, 84, rng, 0.05);
    initWeights(p.fc3W, 10 * 84, rng, 0.15);
    initWeights(p.fc3B, 10, rng, 0.05);
    return p;
}

namespace lenet_detail {

void
conv2d(const std::vector<float> &in, int inCh, int inDim,
       const std::vector<float> &w, const std::vector<float> &b,
       int outCh, int k, int pad, std::vector<float> &out)
{
    const int outDim = inDim + 2 * pad - k + 1;
    out.assign(static_cast<std::size_t>(outCh) * outDim * outDim, 0.0f);
    for (int oc = 0; oc < outCh; ++oc) {
        for (int oy = 0; oy < outDim; ++oy) {
            for (int ox = 0; ox < outDim; ++ox) {
                float acc = b[static_cast<std::size_t>(oc)];
                for (int ic = 0; ic < inCh; ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = oy + ky - pad;
                        if (iy < 0 || iy >= inDim)
                            continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ox + kx - pad;
                            if (ix < 0 || ix >= inDim)
                                continue;
                            acc += in[static_cast<std::size_t>(
                                       (ic * inDim + iy) * inDim + ix)] *
                                   w[static_cast<std::size_t>(
                                       ((oc * inCh + ic) * k + ky) * k +
                                       kx)];
                        }
                    }
                }
                // tanh activation, as in the classic LeNet.
                out[static_cast<std::size_t>(
                    (oc * outDim + oy) * outDim + ox)] = std::tanh(acc);
            }
        }
    }
}

void
avgPool2(const std::vector<float> &in, int ch, int dim,
         std::vector<float> &out)
{
    const int outDim = dim / 2;
    out.assign(static_cast<std::size_t>(ch) * outDim * outDim, 0.0f);
    for (int c = 0; c < ch; ++c) {
        for (int y = 0; y < outDim; ++y) {
            for (int x = 0; x < outDim; ++x) {
                float s =
                    in[static_cast<std::size_t>(
                        (c * dim + 2 * y) * dim + 2 * x)] +
                    in[static_cast<std::size_t>(
                        (c * dim + 2 * y) * dim + 2 * x + 1)] +
                    in[static_cast<std::size_t>(
                        (c * dim + 2 * y + 1) * dim + 2 * x)] +
                    in[static_cast<std::size_t>(
                        (c * dim + 2 * y + 1) * dim + 2 * x + 1)];
                out[static_cast<std::size_t>(
                    (c * outDim + y) * outDim + x)] = s * 0.25f;
            }
        }
    }
}

void
dense(const std::vector<float> &in, const std::vector<float> &w,
      const std::vector<float> &b, int outN, bool activate,
      std::vector<float> &out)
{
    const std::size_t inN = in.size();
    out.assign(static_cast<std::size_t>(outN), 0.0f);
    for (int o = 0; o < outN; ++o) {
        float acc = b[static_cast<std::size_t>(o)];
        for (std::size_t i = 0; i < inN; ++i)
            acc += in[i] * w[static_cast<std::size_t>(o) * inN + i];
        out[static_cast<std::size_t>(o)] =
            activate ? std::tanh(acc) : acc;
    }
}

void
normalize(std::span<const std::uint8_t> image, std::vector<float> &x)
{
    x.resize(image.size());
    for (std::size_t i = 0; i < image.size(); ++i)
        x[i] = static_cast<float>(image[i]) / 255.0f - 0.5f;
}

// Batched layer variants: activations are [B][ch*dim*dim] contiguous
// and the batch loop is innermost, so each weight element is read
// once and applied to all B images. The per-image accumulation order
// (bias, then ic -> ky -> kx, or ascending i) matches the scalar
// functions above exactly, which keeps float results bit-identical.

void
conv2dBatch(const std::vector<float> &in, int batch, int inCh,
            int inDim, const std::vector<float> &w,
            const std::vector<float> &b, int outCh, int k, int pad,
            std::vector<float> &out, std::vector<float> &acc)
{
    const int outDim = inDim + 2 * pad - k + 1;
    const std::size_t inSz = static_cast<std::size_t>(inCh) * inDim *
                             inDim;
    const std::size_t outSz = static_cast<std::size_t>(outCh) * outDim *
                              outDim;
    out.assign(static_cast<std::size_t>(batch) * outSz, 0.0f);
    acc.resize(static_cast<std::size_t>(batch));
    for (int oc = 0; oc < outCh; ++oc) {
        for (int oy = 0; oy < outDim; ++oy) {
            for (int ox = 0; ox < outDim; ++ox) {
                std::fill(acc.begin(), acc.end(),
                          b[static_cast<std::size_t>(oc)]);
                for (int ic = 0; ic < inCh; ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = oy + ky - pad;
                        if (iy < 0 || iy >= inDim)
                            continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ox + kx - pad;
                            if (ix < 0 || ix >= inDim)
                                continue;
                            const float wv = w[static_cast<std::size_t>(
                                ((oc * inCh + ic) * k + ky) * k + kx)];
                            const std::size_t at =
                                static_cast<std::size_t>(
                                    (ic * inDim + iy) * inDim + ix);
                            for (int bi = 0; bi < batch; ++bi)
                                acc[static_cast<std::size_t>(bi)] +=
                                    in[static_cast<std::size_t>(bi) *
                                           inSz +
                                       at] *
                                    wv;
                        }
                    }
                }
                const std::size_t at = static_cast<std::size_t>(
                    (oc * outDim + oy) * outDim + ox);
                for (int bi = 0; bi < batch; ++bi)
                    out[static_cast<std::size_t>(bi) * outSz + at] =
                        std::tanh(acc[static_cast<std::size_t>(bi)]);
            }
        }
    }
}

void
avgPool2Batch(const std::vector<float> &in, int batch, int ch, int dim,
              std::vector<float> &out)
{
    const int outDim = dim / 2;
    const std::size_t inSz = static_cast<std::size_t>(ch) * dim * dim;
    const std::size_t outSz = static_cast<std::size_t>(ch) * outDim *
                              outDim;
    out.assign(static_cast<std::size_t>(batch) * outSz, 0.0f);
    for (int c = 0; c < ch; ++c) {
        for (int y = 0; y < outDim; ++y) {
            for (int x = 0; x < outDim; ++x) {
                for (int bi = 0; bi < batch; ++bi) {
                    const float *img =
                        in.data() + static_cast<std::size_t>(bi) * inSz;
                    float s = img[static_cast<std::size_t>(
                                  (c * dim + 2 * y) * dim + 2 * x)] +
                              img[static_cast<std::size_t>(
                                  (c * dim + 2 * y) * dim + 2 * x + 1)] +
                              img[static_cast<std::size_t>(
                                  (c * dim + 2 * y + 1) * dim + 2 * x)] +
                              img[static_cast<std::size_t>(
                                  (c * dim + 2 * y + 1) * dim + 2 * x +
                                  1)];
                    out[static_cast<std::size_t>(bi) * outSz +
                        static_cast<std::size_t>(
                            (c * outDim + y) * outDim + x)] = s * 0.25f;
                }
            }
        }
    }
}

void
denseBatch(const std::vector<float> &in, int batch, std::size_t inN,
           const std::vector<float> &w, const std::vector<float> &b,
           int outN, bool activate, std::vector<float> &out,
           std::vector<float> &acc)
{
    out.assign(static_cast<std::size_t>(batch) * outN, 0.0f);
    acc.resize(static_cast<std::size_t>(batch));
    for (int o = 0; o < outN; ++o) {
        std::fill(acc.begin(), acc.end(),
                  b[static_cast<std::size_t>(o)]);
        for (std::size_t i = 0; i < inN; ++i) {
            const float wv = w[static_cast<std::size_t>(o) * inN + i];
            for (int bi = 0; bi < batch; ++bi)
                acc[static_cast<std::size_t>(bi)] +=
                    in[static_cast<std::size_t>(bi) * inN + i] * wv;
        }
        for (int bi = 0; bi < batch; ++bi)
            out[static_cast<std::size_t>(bi) * outN +
                static_cast<std::size_t>(o)] =
                activate ? std::tanh(acc[static_cast<std::size_t>(bi)])
                         : acc[static_cast<std::size_t>(bi)];
    }
}

} // namespace lenet_detail

std::array<float, LeNet::numClasses>
LeNet::forward(std::span<const std::uint8_t> image) const
{
    using namespace lenet_detail;
    LYNX_ASSERT(image.size() == imageBytes,
                "LeNet expects a 28x28 grayscale image, got ",
                image.size(), " bytes");
    std::vector<float> x;
    normalize(image, x);

    const LeNetParams &p = params_;
    std::vector<float> c1, p1, c2, p2, f1, f2, logits;
    conv2d(x, 1, 28, p.conv1W, p.conv1B, 6, 5, 2, c1);   // 6x28x28
    avgPool2(c1, 6, 28, p1);                             // 6x14x14
    conv2d(p1, 6, 14, p.conv2W, p.conv2B, 16, 5, 0, c2); // 16x10x10
    avgPool2(c2, 16, 10, p2);                            // 16x5x5
    dense(p2, p.fc1W, p.fc1B, 120, true, f1);
    dense(f1, p.fc2W, p.fc2B, 84, true, f2);
    dense(f2, p.fc3W, p.fc3B, 10, false, logits);

    // Softmax.
    float mx = *std::max_element(logits.begin(), logits.end());
    std::array<float, numClasses> probs{};
    float sum = 0.0f;
    for (int i = 0; i < numClasses; ++i) {
        probs[static_cast<std::size_t>(i)] =
            std::exp(logits[static_cast<std::size_t>(i)] - mx);
        sum += probs[static_cast<std::size_t>(i)];
    }
    for (auto &pr : probs)
        pr /= sum;
    return probs;
}

int
LeNet::classify(std::span<const std::uint8_t> image) const
{
    auto probs = forward(image);
    return static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<std::array<float, LeNet::numClasses>>
LeNet::forwardBatch(
    std::span<const std::span<const std::uint8_t>> images) const
{
    using namespace lenet_detail;
    const int batch = static_cast<int>(images.size());
    std::vector<float> x(static_cast<std::size_t>(batch) * imageBytes);
    for (int bi = 0; bi < batch; ++bi) {
        const auto &img = images[static_cast<std::size_t>(bi)];
        LYNX_ASSERT(img.size() == imageBytes,
                    "LeNet expects a 28x28 grayscale image, got ",
                    img.size(), " bytes");
        for (std::size_t i = 0; i < img.size(); ++i)
            x[static_cast<std::size_t>(bi) * imageBytes + i] =
                static_cast<float>(img[i]) / 255.0f - 0.5f;
    }

    const LeNetParams &p = params_;
    std::vector<float> c1, p1, c2, p2, f1, f2, logits, acc;
    conv2dBatch(x, batch, 1, 28, p.conv1W, p.conv1B, 6, 5, 2, c1, acc);
    avgPool2Batch(c1, batch, 6, 28, p1);
    conv2dBatch(p1, batch, 6, 14, p.conv2W, p.conv2B, 16, 5, 0, c2,
                acc);
    avgPool2Batch(c2, batch, 16, 10, p2);
    denseBatch(p2, batch, 400, p.fc1W, p.fc1B, 120, true, f1, acc);
    denseBatch(f1, batch, 120, p.fc2W, p.fc2B, 84, true, f2, acc);
    denseBatch(f2, batch, 84, p.fc3W, p.fc3B, 10, false, logits, acc);

    std::vector<std::array<float, numClasses>> out(
        static_cast<std::size_t>(batch));
    for (int bi = 0; bi < batch; ++bi) {
        const float *lg =
            logits.data() + static_cast<std::size_t>(bi) * numClasses;
        float mx = *std::max_element(lg, lg + numClasses);
        std::array<float, numClasses> &probs =
            out[static_cast<std::size_t>(bi)];
        float sum = 0.0f;
        for (int i = 0; i < numClasses; ++i) {
            probs[static_cast<std::size_t>(i)] =
                std::exp(lg[i] - mx);
            sum += probs[static_cast<std::size_t>(i)];
        }
        for (auto &pr : probs)
            pr /= sum;
    }
    return out;
}

std::vector<int>
LeNet::classifyBatch(
    std::span<const std::span<const std::uint8_t>> images) const
{
    auto probs = forwardBatch(images);
    std::vector<int> digits(probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i)
        digits[i] = static_cast<int>(
            std::max_element(probs[i].begin(), probs[i].end()) -
            probs[i].begin());
    return digits;
}

} // namespace lynx::apps

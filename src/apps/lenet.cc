#include "lenet.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace lynx::apps {

namespace {

/** Fill @p w with small deterministic pseudo-random weights. */
void
initWeights(std::vector<float> &w, std::size_t n, sim::Rng &rng,
            double scale)
{
    w.resize(n);
    for (auto &x : w)
        x = static_cast<float>((rng.uniform() * 2.0 - 1.0) * scale);
}

} // namespace

LeNetParams
LeNetParams::random(std::uint64_t seed)
{
    LeNetParams p;
    sim::Rng rng(seed);
    initWeights(p.conv1W, 6 * 1 * 5 * 5, rng, 0.35);
    initWeights(p.conv1B, 6, rng, 0.1);
    initWeights(p.conv2W, 16 * 6 * 5 * 5, rng, 0.2);
    initWeights(p.conv2B, 16, rng, 0.1);
    initWeights(p.fc1W, 120 * 400, rng, 0.08);
    initWeights(p.fc1B, 120, rng, 0.05);
    initWeights(p.fc2W, 84 * 120, rng, 0.1);
    initWeights(p.fc2B, 84, rng, 0.05);
    initWeights(p.fc3W, 10 * 84, rng, 0.15);
    initWeights(p.fc3B, 10, rng, 0.05);
    return p;
}

namespace lenet_detail {

void
conv2d(const std::vector<float> &in, int inCh, int inDim,
       const std::vector<float> &w, const std::vector<float> &b,
       int outCh, int k, int pad, std::vector<float> &out)
{
    const int outDim = inDim + 2 * pad - k + 1;
    out.assign(static_cast<std::size_t>(outCh) * outDim * outDim, 0.0f);
    for (int oc = 0; oc < outCh; ++oc) {
        for (int oy = 0; oy < outDim; ++oy) {
            for (int ox = 0; ox < outDim; ++ox) {
                float acc = b[static_cast<std::size_t>(oc)];
                for (int ic = 0; ic < inCh; ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = oy + ky - pad;
                        if (iy < 0 || iy >= inDim)
                            continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ox + kx - pad;
                            if (ix < 0 || ix >= inDim)
                                continue;
                            acc += in[static_cast<std::size_t>(
                                       (ic * inDim + iy) * inDim + ix)] *
                                   w[static_cast<std::size_t>(
                                       ((oc * inCh + ic) * k + ky) * k +
                                       kx)];
                        }
                    }
                }
                // tanh activation, as in the classic LeNet.
                out[static_cast<std::size_t>(
                    (oc * outDim + oy) * outDim + ox)] = std::tanh(acc);
            }
        }
    }
}

void
avgPool2(const std::vector<float> &in, int ch, int dim,
         std::vector<float> &out)
{
    const int outDim = dim / 2;
    out.assign(static_cast<std::size_t>(ch) * outDim * outDim, 0.0f);
    for (int c = 0; c < ch; ++c) {
        for (int y = 0; y < outDim; ++y) {
            for (int x = 0; x < outDim; ++x) {
                float s =
                    in[static_cast<std::size_t>(
                        (c * dim + 2 * y) * dim + 2 * x)] +
                    in[static_cast<std::size_t>(
                        (c * dim + 2 * y) * dim + 2 * x + 1)] +
                    in[static_cast<std::size_t>(
                        (c * dim + 2 * y + 1) * dim + 2 * x)] +
                    in[static_cast<std::size_t>(
                        (c * dim + 2 * y + 1) * dim + 2 * x + 1)];
                out[static_cast<std::size_t>(
                    (c * outDim + y) * outDim + x)] = s * 0.25f;
            }
        }
    }
}

void
dense(const std::vector<float> &in, const std::vector<float> &w,
      const std::vector<float> &b, int outN, bool activate,
      std::vector<float> &out)
{
    const std::size_t inN = in.size();
    out.assign(static_cast<std::size_t>(outN), 0.0f);
    for (int o = 0; o < outN; ++o) {
        float acc = b[static_cast<std::size_t>(o)];
        for (std::size_t i = 0; i < inN; ++i)
            acc += in[i] * w[static_cast<std::size_t>(o) * inN + i];
        out[static_cast<std::size_t>(o)] =
            activate ? std::tanh(acc) : acc;
    }
}

void
normalize(std::span<const std::uint8_t> image, std::vector<float> &x)
{
    x.resize(image.size());
    for (std::size_t i = 0; i < image.size(); ++i)
        x[i] = static_cast<float>(image[i]) / 255.0f - 0.5f;
}

} // namespace lenet_detail

std::array<float, LeNet::numClasses>
LeNet::forward(std::span<const std::uint8_t> image) const
{
    using namespace lenet_detail;
    LYNX_ASSERT(image.size() == imageBytes,
                "LeNet expects a 28x28 grayscale image, got ",
                image.size(), " bytes");
    std::vector<float> x;
    normalize(image, x);

    const LeNetParams &p = params_;
    std::vector<float> c1, p1, c2, p2, f1, f2, logits;
    conv2d(x, 1, 28, p.conv1W, p.conv1B, 6, 5, 2, c1);   // 6x28x28
    avgPool2(c1, 6, 28, p1);                             // 6x14x14
    conv2d(p1, 6, 14, p.conv2W, p.conv2B, 16, 5, 0, c2); // 16x10x10
    avgPool2(c2, 16, 10, p2);                            // 16x5x5
    dense(p2, p.fc1W, p.fc1B, 120, true, f1);
    dense(f1, p.fc2W, p.fc2B, 84, true, f2);
    dense(f2, p.fc3W, p.fc3B, 10, false, logits);

    // Softmax.
    float mx = *std::max_element(logits.begin(), logits.end());
    std::array<float, numClasses> probs{};
    float sum = 0.0f;
    for (int i = 0; i < numClasses; ++i) {
        probs[static_cast<std::size_t>(i)] =
            std::exp(logits[static_cast<std::size_t>(i)] - mx);
        sum += probs[static_cast<std::size_t>(i)];
    }
    for (auto &pr : probs)
        pr /= sum;
    return probs;
}

int
LeNet::classify(std::span<const std::uint8_t> image) const
{
    auto probs = forward(image);
    return static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
}

} // namespace lynx::apps

/**
 * @file
 * Size-classed slab allocator for data-plane hot paths.
 *
 * Steady-state simulation recycles the same handful of object shapes
 * millions of times: message payload buffers, coroutine frames, and
 * oversize event callables. Routing those through the global heap
 * costs a malloc/free pair per object and scatters them across the
 * address space. The Pool instead carves large slabs into fixed-size
 * blocks per size class and keeps freed blocks on intrusive
 * free lists, so a steady-state allocate/deallocate pair is two
 * pointer moves and never touches the system allocator.
 *
 * Every block is preceded by a 16-byte header recording its size
 * class and owning pool, so deallocate(p) needs no size argument —
 * which is what lets pooled coroutine frames use it from
 * `operator delete(void*)`.
 *
 * Threading model (sharded simulation, see shard.hh): each shard owns
 * a private Pool arena, and the shard's worker thread installs it as
 * the thread-current pool while the shard runs, so allocations are
 * lock-free by construction. A block freed away from its owning
 * arena (a cross-shard message payload released by the receiver) is
 * parked on the owner's lock-free remote stack and absorbed the next
 * time the owner runs; such cross frees are only legal between pools
 * of one sharded group (remoteAllowed()), which LYNX_DEBUG_ASSERT
 * enforces — in plain serial runs a foreign owner means corruption.
 *
 * In the sanitizer lanes (LYNX_POOL_PASSTHROUGH) every allocation
 * goes straight to the system allocator so ASan keeps seeing
 * use-after-free and leaks at full fidelity (and TSan sees only the
 * already-thread-safe global allocator).
 */

#ifndef LYNX_SIM_POOL_HH
#define LYNX_SIM_POOL_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace lynx::sim {

/** Size-classed slab arena. One process-wide instance serves serial
 *  runs; sharded runs install one arena per shard as the
 *  thread-current pool (see instance()). */
class Pool
{
  public:
    /** Largest request served from a size class; bigger requests fall
     *  through to the system allocator (still header-tagged, so
     *  deallocate() stays uniform). */
    static constexpr std::size_t kMaxBlockSize = 64 * 1024;

    /** Bytes of bookkeeping in front of every returned block. */
    static constexpr std::size_t kHeaderSize = 16;

    /** Allocation/reuse counters, exposed for tests and reports. */
    struct Stats
    {
        std::uint64_t freelistHits = 0;  ///< recycled-block allocations
        std::uint64_t freshBlocks = 0;   ///< blocks carved from slabs
        std::uint64_t oversize = 0;      ///< requests > kMaxBlockSize
        std::uint64_t slabs = 0;         ///< slabs requested from the OS
        std::size_t bytesReserved = 0;   ///< total slab bytes held
        std::uint64_t remoteFrees = 0;   ///< blocks absorbed from the
                                         ///< remote stack
    };

    /** @return the thread-current pool: the shard arena installed by
     *  PoolScope while a shard runs (or is being built/torn down),
     *  otherwise the process-wide pool. */
    static Pool &instance() noexcept;

    /** Construct a private arena (a shard's slab pool). The
     *  process-wide pool is just the one instance() falls back to. */
    Pool() = default;

    /** @return a block of at least @p n bytes, 16-byte aligned. */
    void *allocate(std::size_t n);

    /** Return @p p (a pointer from allocate()) to its owner's free
     *  list. A free away from the owning pool parks the block on the
     *  owner's remote stack (sharded groups only). */
    void deallocate(void *p) noexcept;

    /** Drain the remote-free stack onto the free lists. Called by the
     *  owning shard's thread at window starts, on an allocation miss,
     *  and at destruction — never concurrently with itself. */
    void absorbRemote() noexcept;

    /** Mark this pool as part of a sharded arena group: blocks may
     *  legally be freed from other shards/threads (via the remote
     *  stack). Off by default — serial runs treat a cross free as
     *  corruption. */
    void setRemoteAllowed(bool allowed) { remoteAllowed_ = allowed; }
    bool remoteAllowed() const { return remoteAllowed_; }

    const Stats &stats() const { return stats_; }

    ~Pool();

    Pool(const Pool &) = delete;
    Pool &operator=(const Pool &) = delete;

  private:
    friend class PoolScope;

    /** Free-list node, stored in the (dead) block body. */
    struct FreeNode
    {
        FreeNode *next;
    };

    struct Header
    {
        std::uint32_t cls;   ///< size-class index, or kOversizeClass
        std::uint32_t magic; ///< corruption / double-free canary
        std::uint64_t owner; ///< owning Pool (for cross-shard frees);
                             ///< doubles as 16-byte alignment padding
    };
    static_assert(sizeof(Header) == kHeaderSize);

    static constexpr std::uint32_t kMagic = 0x504f4f4cu; // "POOL"
    static constexpr std::uint32_t kOversizeClass = 0xffffffffu;

    /** Size classes: powers of two plus halfway points, 32..64K. */
    static constexpr std::size_t kClassSizes[] = {
        32,    48,    64,    96,    128,   192,   256,  384,
        512,   768,   1024,  1536,  2048,  3072,  4096, 6144,
        8192,  12288, 16384, 24576, 32768, 49152, 65536};
    static constexpr std::size_t kClasses = std::size(kClassSizes);

    /** @return the index of the smallest class holding @p n bytes. */
    static std::size_t
    classIndex(std::size_t n) noexcept
    {
        if (n <= 32)
            return 0;
        // 2^p < n <= 2^(p+1); classes sit at 1.5*2^p and 2^(p+1).
        const unsigned p = std::bit_width(n - 1) - 1;
        const std::size_t half = std::size_t(3) << (p - 1);
        return 2 * (p - 5) + (n > half ? 2 : 1);
    }

    void *carveSlab(std::size_t cls);

    /** Park @p node (an already-retired block body) on the remote
     *  stack. Lock-free MPSC push; any thread may call it. */
    void remoteFree(FreeNode *node) noexcept;

    /** Exchange the thread-current pool (PoolScope). */
    static Pool *exchangeCurrent(Pool *next) noexcept;

    FreeNode *freeLists_[kClasses] = {};
    std::vector<void *> slabs_;
    Stats stats_;
    bool remoteAllowed_ = false;

    /** Treiber stack of blocks freed by other threads; pushed with
     *  CAS, drained wholesale by the owner (exchange(nullptr)). */
    std::atomic<FreeNode *> remote_{nullptr};
};

/**
 * RAII: install @p pool as the thread-current pool (what instance()
 * returns on this thread) for the scope's lifetime. Used around shard
 * construction, each shard's share of a window, and teardown.
 */
class PoolScope
{
  public:
    explicit PoolScope(Pool &pool) : prev_(Pool::exchangeCurrent(&pool)) {}
    ~PoolScope() { Pool::exchangeCurrent(prev_); }

    PoolScope(const PoolScope &) = delete;
    PoolScope &operator=(const PoolScope &) = delete;

  private:
    Pool *prev_;
};

/**
 * Minimal std::allocator replacement routing container storage
 * through the Pool. Used for long-lived hot-path containers (timing
 * wheel buckets) whose occasional growth must recycle pool blocks
 * instead of hitting the heap mid-run.
 */
template <typename T>
struct PoolAllocator
{
    using value_type = T;

    PoolAllocator() noexcept = default;

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &) noexcept
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(Pool::instance().allocate(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        Pool::instance().deallocate(p);
    }

    friend bool
    operator==(const PoolAllocator &, const PoolAllocator &) noexcept
    {
        return true;
    }
};

} // namespace lynx::sim

#endif // LYNX_SIM_POOL_HH

/**
 * @file
 * The discrete-event simulation core.
 *
 * A Simulator owns the event calendar and the simulated clock. Model
 * code schedules plain callbacks (schedule()) or, more commonly, runs
 * as coroutine tasks (see task.hh) that suspend on awaitables built on
 * top of the calendar.
 *
 * Determinism: events with equal timestamps fire in scheduling
 * (FIFO) order, and all randomness flows through seeded Rng instances,
 * so a scenario replays identically run-to-run.
 *
 * The calendar is a hierarchical timing wheel (see docs/INTERNALS.md):
 * five levels of 64 buckets each, covering ~1.07 simulated seconds of
 * horizon at nanosecond resolution, with a (when, seq) min-heap
 * catching farther-future events. Schedule and fire are O(1) on the
 * hot path, zero-delay wakeups bypass the wheel through a ready ring,
 * and callbacks are EventFn (inline small-buffer storage) so the
 * common event never heap-allocates. The execution order is exactly
 * the documented contract: globally ascending (when, scheduling seq).
 */

#ifndef LYNX_SIM_SIMULATOR_HH
#define LYNX_SIM_SIMULATOR_HH

#include <bit>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "event.hh"
#include "logging.hh"
#include "metrics.hh"
#include "pool.hh"
#include "ring.hh"
#include "time.hh"

namespace lynx::sim {

class SpanCollector;

/**
 * Discrete-event simulator: clock + event calendar + coroutine
 * registry.
 */
class Simulator
{
  public:
    Simulator() = default;
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule callable @p fn to run at absolute time @p when.
     * @pre when >= now(). (Debug/sanitizer builds panic on violation;
     * release builds clamp to now() so the clock never runs backwards.)
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        LYNX_DEBUG_ASSERT(when >= now_, "scheduling into the past");
        if (when <= now_) {
            // Zero-delay fast path: build the callable directly in
            // the ready-ring slot, skipping one EventFn relocation.
            ready_.emplace_back(now_, nextSeq_++, std::forward<F>(fn));
            ++pendingCount_;
        } else {
            scheduleEvent(when, EventFn(std::forward<F>(fn)));
        }
    }

    /** Coroutine fast path: resume @p h at time @p when, no lambda. */
    template <typename P>
    void
    schedule(Tick when, std::coroutine_handle<P> h)
    {
        scheduleEvent(when, EventFn::resume(h));
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Coroutine fast path: resume @p h @p delay ticks from now. */
    template <typename P>
    void
    scheduleIn(Tick delay, std::coroutine_handle<P> h)
    {
        scheduleEvent(now_ + delay, EventFn::resume(h));
    }

    /**
     * Schedule @p fn on the *pre lane*: it fires at @p when strictly
     * before every normally-scheduled event of that tick, regardless
     * of when either was scheduled. The sharded engine (shard.hh)
     * uses this for inbound staging drains, so canonically-ordered
     * cross-shard deliveries land before the tick's local events no
     * matter how the world is partitioned. Pre events draw from a
     * separate seq range below kNormalSeqBase, so the wheel's
     * per-bucket seq sort keeps the contract with zero hot-path cost.
     * @pre when > now() (a drain is always armed for a future tick).
     */
    template <typename F>
    void
    schedulePre(Tick when, F &&fn)
    {
        LYNX_ASSERT(when > now_, "pre-lane event must be in the future");
        LYNX_DEBUG_ASSERT(preSeq_ + 1 < kNormalSeqBase,
                          "pre-lane seq range exhausted");
        place(PendingEvent{when, preSeq_++, EventFn(std::forward<F>(fn))});
        ++pendingCount_;
    }

    /**
     * Run until the calendar drains or stop() is called.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Run until simulated time reaches @p deadline (events at exactly
     * @p deadline still fire), the calendar drains, or stop() is
     * called. The clock is advanced to @p deadline if the calendar
     * drained earlier.
     */
    Tick runUntil(Tick deadline);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopped_ = true; }

    /** @return whether stop() was requested. */
    bool stopped() const { return stopped_; }

    /** Re-arm a stopped simulator so it can run again. */
    void reset_stop() { stopped_ = false; }

    /** Number of events executed so far (for tests/benchmarks). */
    std::uint64_t eventsExecuted() const { return eventsExecuted_; }

    /** Events currently scheduled but not yet fired. */
    std::uint64_t pendingEvents() const { return pendingCount_; }

    /**
     * @return a lower bound on the timestamp of the earliest pending
     * event (maxTick when the calendar is empty). Exact for level-0
     * wheel buckets and the overflow heap; for a higher wheel level
     * the first occupied bucket is scanned for its true minimum when
     * its block base could improve the bound (later buckets at the
     * same level are strictly later, so one bucket suffices). The
     * sharded engine's barrier uses this to skip idle windows; a
     * conservative bound only costs an extra (empty) window, never
     * correctness.
     */
    Tick nextPendingLowerBound() const;

    /**
     * @{
     * @name Observability
     * The metrics registry is always present (registration happens at
     * component construction, so it is free on hot paths). The span
     * collector is optional: models stamp only when spans() is
     * non-null, making per-request tracing one pointer compare when
     * disabled. See span.hh / metrics.hh.
     */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    SpanCollector *spans() const { return spans_; }
    void setSpanCollector(SpanCollector *collector) { spans_ = collector; }
    /** @} */

    /**
     * @{
     * @name Coroutine registry
     * Live task coroutines register here so that a simulator torn down
     * mid-scenario (e.g. servers still parked on channels) can destroy
     * them and avoid leaks. Registration hands the simulator a slot to
     * write the entry's index back into, making unregister O(1).
     * See task.hh.
     */
    void
    registerCoroutine(std::coroutine_handle<> h, std::size_t &idxSlot)
    {
        idxSlot = liveCoroutines_.size();
        liveCoroutines_.push_back(CoroEntry{h, &idxSlot});
    }

    void
    unregisterCoroutine(std::size_t idx)
    {
        if (tearingDown_)
            return;
        LYNX_DEBUG_ASSERT(idx < liveCoroutines_.size(),
                          "bad coroutine registry index");
        liveCoroutines_[idx] = liveCoroutines_.back();
        *liveCoroutines_[idx].idxSlot = idx;
        liveCoroutines_.pop_back();
    }

    std::size_t liveCoroutines() const { return liveCoroutines_.size(); }
    /** @} */

  private:
    struct PendingEvent
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    /**
     * Timing-wheel geometry: kLevels levels of 64 buckets; a level-L
     * bucket spans 2^(6L) ticks. An event lives at the lowest level
     * whose bucket span still distinguishes it from now(): the level
     * of the highest bit in which `when` and `now` differ. Beyond the
     * wheel horizon (2^30 ticks, ~1.07 s) events wait in a (when, seq)
     * min-heap and cascade in when their top-level block arrives.
     */
    static constexpr int kLevelBits = 6;
    static constexpr int kLevels = 5;
    static constexpr std::size_t kBuckets = std::size_t(1) << kLevelBits;
    static constexpr int kTopBits = kLevelBits * kLevels;

    /** Bucket storage comes from the slab pool: a rarely-touched
     *  high-level bucket growing mid-run recycles a warm pool block
     *  instead of calling the heap from the event hot loop. */
    using Bucket = std::vector<PendingEvent, PoolAllocator<PendingEvent>>;

    void
    scheduleEvent(Tick when, EventFn fn)
    {
        LYNX_DEBUG_ASSERT(when >= now_, "scheduling into the past");
        if (when <= now_) {
            // Zero-delay wakeups (channel handoffs, doorbells) skip
            // the wheel: FIFO ring, fired before the clock advances.
            ready_.emplace_back(now_, nextSeq_++, std::move(fn));
        } else {
            place(PendingEvent{when, nextSeq_++, std::move(fn)});
        }
        ++pendingCount_;
    }

    /** File a future event into its wheel bucket (or the overflow). */
    void
    place(PendingEvent ev)
    {
        const Tick x = ev.when ^ now_;
        // Highest differing bit picks the level; x == 0 only happens
        // for cascaded events landing at exactly now().
        const int hb = x ? 63 - std::countl_zero(x) : 0;
        const int level = hb / kLevelBits;
        if (level >= kLevels) {
            pushOverflow(std::move(ev));
            return;
        }
        const std::size_t idx =
            (ev.when >> (kLevelBits * level)) & (kBuckets - 1);
        wheel_[level][idx].push_back(std::move(ev));
        occupied_[level] |= std::uint64_t(1) << idx;
    }

    void pushOverflow(PendingEvent ev);
    bool advance(Tick deadline);
    void collectBucket(std::size_t idx);
    void cascade(int level, std::size_t idx);
    void drainOverflow();
    void runLoop(Tick deadline);

    void
    fire(PendingEvent &e)
    {
        ++eventsExecuted_;
        --pendingCount_;
        e.fn.invokeAndReset();
    }

    struct CoroEntry
    {
        std::coroutine_handle<> h;
        std::size_t *idxSlot; ///< promise-side back-reference
    };

    /** Normal events draw seqs from kNormalSeqBase upward; pre-lane
     *  events (schedulePre) draw below it, so the per-bucket seq sort
     *  fires every pre event of a tick before the tick's normal
     *  events. 2^32 pre seqs is far beyond any real run (one per
     *  armed staging tick). */
    static constexpr std::uint64_t kNormalSeqBase = std::uint64_t(1) << 32;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = kNormalSeqBase;
    std::uint64_t preSeq_ = 0;
    std::uint64_t eventsExecuted_ = 0;
    std::uint64_t pendingCount_ = 0;
    bool stopped_ = false;
    bool tearingDown_ = false;

    Bucket wheel_[kLevels][kBuckets];
    std::uint64_t occupied_[kLevels] = {};
    Bucket overflow_; ///< (when, seq) min-heap
    RingDeque<PendingEvent> ready_;      ///< events due at now()
    Bucket exec_;                        ///< bucket being fired
    std::size_t execPos_ = 0;
    Bucket cascadeBuf_; ///< scratch for redistributing a bucket

    std::vector<CoroEntry> liveCoroutines_;
    MetricsRegistry metrics_;
    SpanCollector *spans_ = nullptr;
};

} // namespace lynx::sim

#endif // LYNX_SIM_SIMULATOR_HH

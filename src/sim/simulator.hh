/**
 * @file
 * The discrete-event simulation core.
 *
 * A Simulator owns the event calendar and the simulated clock. Model
 * code schedules plain callbacks (schedule()) or, more commonly, runs
 * as coroutine tasks (see task.hh) that suspend on awaitables built on
 * top of the calendar.
 *
 * Determinism: events with equal timestamps fire in scheduling
 * (FIFO) order, and all randomness flows through seeded Rng instances,
 * so a scenario replays identically run-to-run.
 */

#ifndef LYNX_SIM_SIMULATOR_HH
#define LYNX_SIM_SIMULATOR_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "logging.hh"
#include "metrics.hh"
#include "time.hh"

namespace lynx::sim {

class SpanCollector;

/**
 * Discrete-event simulator: clock + event calendar + coroutine
 * registry.
 */
class Simulator
{
  public:
    Simulator() = default;
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** @return the current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @pre when >= now().
     */
    void
    schedule(Tick when, std::function<void()> fn)
    {
        LYNX_ASSERT(when >= now_, "scheduling into the past");
        calendar_.push(PendingEvent{when, nextSeq_++, std::move(fn)});
    }

    /** Schedule @p fn to run @p delay ticks from now. */
    void
    scheduleIn(Tick delay, std::function<void()> fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /**
     * Run until the calendar drains or stop() is called.
     * @return the final simulated time.
     */
    Tick run();

    /**
     * Run until simulated time reaches @p deadline (events at exactly
     * @p deadline still fire), the calendar drains, or stop() is
     * called. The clock is advanced to @p deadline if the calendar
     * drained earlier.
     */
    Tick runUntil(Tick deadline);

    /** Request that run()/runUntil() return after the current event. */
    void stop() { stopped_ = true; }

    /** @return whether stop() was requested. */
    bool stopped() const { return stopped_; }

    /** Re-arm a stopped simulator so it can run again. */
    void reset_stop() { stopped_ = false; }

    /** Number of events executed so far (for tests/benchmarks). */
    std::uint64_t eventsExecuted() const { return eventsExecuted_; }

    /**
     * @{
     * @name Observability
     * The metrics registry is always present (registration happens at
     * component construction, so it is free on hot paths). The span
     * collector is optional: models stamp only when spans() is
     * non-null, making per-request tracing one pointer compare when
     * disabled. See span.hh / metrics.hh.
     */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    SpanCollector *spans() const { return spans_; }
    void setSpanCollector(SpanCollector *collector) { spans_ = collector; }
    /** @} */

    /**
     * @{
     * @name Coroutine registry
     * Live task coroutines register here so that a simulator torn down
     * mid-scenario (e.g. servers still parked on channels) can destroy
     * them and avoid leaks. See task.hh.
     */
    void registerCoroutine(std::coroutine_handle<> h);
    void unregisterCoroutine(std::coroutine_handle<> h);
    std::size_t liveCoroutines() const { return liveCoroutines_.size(); }
    /** @} */

  private:
    struct PendingEvent
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const PendingEvent &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    bool step();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsExecuted_ = 0;
    bool stopped_ = false;
    bool tearingDown_ = false;
    std::priority_queue<PendingEvent, std::vector<PendingEvent>,
                        std::greater<PendingEvent>> calendar_;
    std::vector<std::coroutine_handle<>> liveCoroutines_;
    MetricsRegistry metrics_;
    SpanCollector *spans_ = nullptr;
};

} // namespace lynx::sim

#endif // LYNX_SIM_SIMULATOR_HH

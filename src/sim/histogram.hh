/**
 * @file
 * HDR-style log-linear histogram for latency recording.
 *
 * Values are bucketed into powers of two, each split into 32 linear
 * sub-buckets, giving a worst-case quantization error of ~3% across
 * the full 64-bit range while using a few KiB of memory. This is the
 * same recording approach high-resolution latency tools (HdrHistogram,
 * sockperf) use, and it lets benchmarks report p50/p90/p99 over
 * millions of samples without storing them.
 */

#ifndef LYNX_SIM_HISTOGRAM_HH
#define LYNX_SIM_HISTOGRAM_HH

#include <bit>
#include <cstdint>
#include <vector>

namespace lynx::sim {

/** Log-linear histogram of non-negative 64-bit samples. */
class Histogram
{
  public:
    Histogram();

    /** Add one sample. */
    void record(std::uint64_t value);

    /** Add @p n identical samples. */
    void record(std::uint64_t value, std::uint64_t n);

    /** Merge the samples of @p other into this histogram. */
    void merge(const Histogram &other);

    /** Remove all samples. */
    void reset();

    /** @return number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** @return exact smallest recorded sample (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }

    /** @return exact largest recorded sample (0 when empty). */
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /** @return exact arithmetic mean (0 when empty). */
    double mean() const;

    /** @return sum of recorded samples (exact while below 2^53). */
    double sum() const { return sum_; }

    /**
     * @return value at percentile @p p in [0, 100]; an upper bound of
     * the bucket containing that rank, clamped to the exact recorded
     * [min(), max()] range so percentile(0) == min() and
     * percentile(100) == max() (0 when empty).
     */
    std::uint64_t percentile(double p) const;

    /** Shorthand for percentile(50). */
    std::uint64_t median() const { return percentile(50.0); }

  private:
    static constexpr int subBucketBits = 5;
    static constexpr std::uint64_t subBuckets = 1ull << subBucketBits;

    /** Map @p value to its bucket index. */
    static std::size_t indexOf(std::uint64_t value);

    /** @return the largest value mapping to bucket @p index. */
    static std::uint64_t upperEdge(std::size_t index);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

} // namespace lynx::sim

#endif // LYNX_SIM_HISTOGRAM_HH

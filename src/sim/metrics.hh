/**
 * @file
 * Unified metrics registry (gem5's stats registry, in spirit).
 *
 * Every component already owns a StatSet; before this layer each one
 * was an ad-hoc bag its owner had to know about and print by hand.
 * The registry gives them hierarchical dotted names — "net.nic.cli0",
 * "rdma.qp.mq0", "lynx.mq.svc#0", "gio.svc#0", "lynx.fwd.echo",
 * "workload.loadgen" — so one dump()/json() call snapshots the whole
 * deployment.
 *
 * Components register in their constructor through the simulator they
 * already hold (sim.metrics().add(...)) and deregister in their
 * destructor; the registry stores non-owning pointers and must never
 * outlive a registrant, which the usual declaration order (Simulator
 * first) guarantees. Registration is construction-time only, so the
 * registry costs nothing on hot paths.
 */

#ifndef LYNX_SIM_METRICS_HH
#define LYNX_SIM_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "stats.hh"

namespace lynx::sim {

/** Hierarchically-named collection of component StatSets. */
class MetricsRegistry
{
  public:
    /**
     * Register @p stats under dotted @p path. Paths are unique: a
     * duplicate gets "#2", "#3", ... appended. @return the final path.
     */
    std::string add(const std::string &path, const StatSet &stats);

    /** Remove a registration (match by StatSet address). */
    void remove(const StatSet &stats);

    /** @return registered (path, StatSet) entries, sorted by path. */
    std::vector<std::pair<std::string, const StatSet *>> entries() const;

    /** @return number of registered StatSets. */
    std::size_t size() const { return entries_.size(); }

    /** @return sum of counter @p name over entries whose path starts
     *  with @p prefix. */
    std::uint64_t aggregateCounter(const std::string &prefix,
                                   const std::string &name) const;

    /** Human-readable hierarchical dump of every registered set. */
    void dump(std::ostream &os) const;

    /** JSON snapshot: {"path":{"counters":{...},"histograms":{...}}}. */
    void json(std::ostream &os) const;

  private:
    struct Entry
    {
        std::string path;
        const StatSet *stats;
    };

    std::vector<Entry> entries_;
};

/**
 * Merge several registries into one path-keyed snapshot: counters
 * sum, histograms merge. This is the dump shape of a sharded run
 * (sim::ShardedSim), where each shard registers the same component
 * paths — "net.fabric", "net.ecn" — in its own registry. Duplicate
 * suffixes ("lynx.runtime#2") are canonicalized back to their base
 * path before merging, so the snapshot does not depend on which
 * registry each duplicate happened to land in — a 4-machine cluster
 * merges to the same map whether it ran on 1 shard or 4. Paths
 * starting with @p excludePrefix are skipped; sharded dumps exclude
 * "sim.shard", whose execution telemetry (windows, barrier stalls)
 * legitimately varies with shard/thread count while everything else
 * must stay bit-identical.
 */
std::map<std::string, StatSet>
mergeRegistries(const std::vector<const MetricsRegistry *> &regs,
                const std::string &excludePrefix = {});

/** JSON snapshot of a merged map, byte-compatible with
 *  MetricsRegistry::json() — golden tests diff the two directly. */
void mergedJson(std::ostream &os,
                const std::map<std::string, StatSet> &merged);

} // namespace lynx::sim

#endif // LYNX_SIM_METRICS_HH

#include "trace.hh"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

namespace lynx::sim {

namespace {

struct State
{
    std::set<std::string> categories;
    bool all = false;

    State()
    {
        const char *env = std::getenv("LYNX_TRACE");
        if (!env)
            return;
        for (const std::string &item : TraceControl::parseCategories(env)) {
            if (item == "all")
                all = true;
            else
                categories.insert(item);
        }
    }
};

State &
state()
{
    static State s;
    return s;
}

State
envOnly()
{
    return State();
}

} // namespace

std::vector<std::string>
TraceControl::parseCategories(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        // "mqueue, rdma" must enable both: strip surrounding blanks
        // before matching (an untrimmed " rdma" never matches "rdma").
        const auto from = item.find_first_not_of(" \t");
        if (from == std::string::npos)
            continue;
        const auto to = item.find_last_not_of(" \t");
        out.push_back(item.substr(from, to - from + 1));
    }
    return out;
}

bool
TraceControl::enabled(const std::string &category)
{
    const State &s = state();
    return s.all || s.categories.contains(category);
}

void
TraceControl::enable(const std::string &category)
{
    if (category == "all")
        state().all = true;
    else
        state().categories.insert(category);
}

void
TraceControl::disable(const std::string &category)
{
    if (category == "all")
        state().all = false;
    else
        state().categories.erase(category);
}

void
TraceControl::reset()
{
    state() = envOnly();
}

void
TraceControl::emit(Tick now, const std::string &category,
                   const std::string &message)
{
    std::fprintf(stderr, "[%10lluns] %s: %s\n",
                 static_cast<unsigned long long>(now), category.c_str(),
                 message.c_str());
}

} // namespace lynx::sim

/**
 * @file
 * Deterministic random number generation for workloads.
 *
 * Wraps xoshiro256** (public-domain algorithm by Blackman & Vigna)
 * with the distributions the workload generators need. Every Rng is
 * explicitly seeded; nothing in the simulator draws from global
 * state, keeping runs reproducible.
 */

#ifndef LYNX_SIM_RANDOM_HH
#define LYNX_SIM_RANDOM_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "logging.hh"

namespace lynx::sim {

/** Seeded pseudo-random generator (xoshiro256**). */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_)
            word = splitmix64(x);
    }

    /** @return next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        LYNX_ASSERT(bound > 0, "empty range");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        LYNX_ASSERT(lo <= hi, "inverted range");
        return lo + below(hi - lo + 1);
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * @return exponentially distributed value with mean @p mean
     * (inter-arrival times of a Poisson process).
     */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard the log against u == 0.
        return -mean * std::log(1.0 - u + 1e-18);
    }

  private:
    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Keyed (stateless) generator: a splitmix64 stream seeded by hashing
 * explicit key words together. Where an Rng's draws depend on global
 * call order, a KeyedRng's depend only on its keys — the property the
 * sharded engine needs so that a per-transfer verdict (loss, fault,
 * delay) is identical no matter how the world is partitioned or which
 * thread judges it. Typical keys: (seed, srcNode, dstNode, per-pair
 * transfer seq).
 */
class KeyedRng
{
  public:
    KeyedRng(std::uint64_t k0, std::uint64_t k1 = 0, std::uint64_t k2 = 0,
             std::uint64_t k3 = 0)
        : x_(k0)
    {
        // Absorb each key word through one splitmix64 step so nearby
        // keys (consecutive seqs) land in unrelated streams.
        x_ = step(x_ ^ (k1 + 0x9e3779b97f4a7c15ull));
        x_ = step(x_ ^ (k2 + 0xbf58476d1ce4e5b9ull));
        x_ = step(x_ ^ (k3 + 0x94d049bb133111ebull));
    }

    std::uint64_t
    next()
    {
        x_ += 0x9e3779b97f4a7c15ull;
        return step(x_);
    }

    /** @return uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        LYNX_ASSERT(bound > 0, "empty range");
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** @return uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        LYNX_ASSERT(lo <= hi, "inverted range");
        return lo + below(hi - lo + 1);
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    step(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t x_;
};

/**
 * Zipf(s) distribution over ranks [0, n): rank k is drawn with
 * probability proportional to 1/(k+1)^s — the skewed-popularity
 * shape of real multi-tenant traffic (a few hot tenants, a long
 * cold tail). CDF precomputed at construction; each draw is one
 * uniform + a binary search, allocation-free.
 */
class ZipfDist
{
  public:
    explicit ZipfDist(std::size_t n, double s = 1.0) : cdf_(n)
    {
        LYNX_ASSERT(n > 0, "empty zipf support");
        double sum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
            cdf_[i] = sum;
        }
        for (double &c : cdf_)
            c /= sum;
    }

    /** @return a rank in [0, n). */
    std::size_t
    operator()(Rng &rng) const
    {
        double u = rng.uniform();
        auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        if (it == cdf_.end())
            return cdf_.size() - 1;
        return static_cast<std::size_t>(it - cdf_.begin());
    }

    /** @return rank @p i's probability mass (load planning). */
    double
    share(std::size_t i) const
    {
        return cdf_[i] - (i == 0 ? 0.0 : cdf_[i - 1]);
    }

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace lynx::sim

#endif // LYNX_SIM_RANDOM_HH

#include "simulator.hh"

#include <algorithm>

namespace lynx::sim {

Simulator::~Simulator()
{
    // Drop pending events without firing them, then destroy any task
    // coroutines that are still suspended (e.g. server loops parked on
    // a channel). Destruction order matters: no coroutine may be
    // resumed past this point, only destroyed.
    tearingDown_ = true;
    while (!calendar_.empty())
        calendar_.pop();
    // Destroying one coroutine can unregister others (a coroutine's
    // locals may own Tasks), so iterate defensively.
    while (!liveCoroutines_.empty()) {
        auto h = liveCoroutines_.back();
        liveCoroutines_.pop_back();
        h.destroy();
    }
}

bool
Simulator::step()
{
    if (calendar_.empty())
        return false;
    // Move the event out before popping so that handlers may schedule
    // new events (which mutates the calendar).
    auto &top = calendar_.top();
    Tick when = top.when;
    auto fn = std::move(const_cast<PendingEvent &>(top).fn);
    calendar_.pop();
    LYNX_ASSERT(when >= now_, "calendar went backwards");
    now_ = when;
    ++eventsExecuted_;
    fn();
    return true;
}

Tick
Simulator::run()
{
    while (!stopped_ && step()) {
    }
    return now_;
}

Tick
Simulator::runUntil(Tick deadline)
{
    while (!stopped_ && !calendar_.empty() &&
           calendar_.top().when <= deadline) {
        step();
    }
    if (!stopped_ && now_ < deadline)
        now_ = deadline;
    return now_;
}

void
Simulator::registerCoroutine(std::coroutine_handle<> h)
{
    liveCoroutines_.push_back(h);
}

void
Simulator::unregisterCoroutine(std::coroutine_handle<> h)
{
    if (tearingDown_)
        return;
    auto it = std::find(liveCoroutines_.begin(), liveCoroutines_.end(), h);
    if (it != liveCoroutines_.end()) {
        *it = liveCoroutines_.back();
        liveCoroutines_.pop_back();
    }
}

} // namespace lynx::sim

#include "simulator.hh"

#include <algorithm>
#include <bit>

namespace lynx::sim {

Simulator::~Simulator()
{
    // Drop pending events without firing them, then destroy any task
    // coroutines that are still suspended (e.g. server loops parked on
    // a channel). Destruction order matters: no coroutine may be
    // resumed past this point, only destroyed.
    tearingDown_ = true;
    exec_.clear();
    ready_.clear();
    for (auto &level : wheel_)
        for (auto &bucket : level)
            bucket.clear();
    overflow_.clear();
    // Destroying one coroutine can unregister others (a coroutine's
    // locals may own Tasks), so iterate defensively.
    while (!liveCoroutines_.empty()) {
        auto h = liveCoroutines_.back().h;
        liveCoroutines_.pop_back();
        h.destroy();
    }
}

void
Simulator::pushOverflow(PendingEvent ev)
{
    auto later = [](const PendingEvent &a, const PendingEvent &b) {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    };
    overflow_.push_back(std::move(ev));
    std::push_heap(overflow_.begin(), overflow_.end(), later);
}

/**
 * Move the calendar forward to the next pending timestamp <= deadline
 * and load that timestamp's events into exec_ (sorted by scheduling
 * seq). @return false when no such event exists; the clock may still
 * have moved forward (to a bucket block start), but never past the
 * earliest pending event or the deadline.
 */
bool
Simulator::advance(Tick deadline)
{
    LYNX_DEBUG_ASSERT(ready_.empty() && execPos_ >= exec_.size(),
                      "advance() with undrained events");
    for (;;) {
        // Express lane for sparse calendars (a lone timer, an idle
        // link): with exactly one event in the wheel, jump straight
        // to it instead of cascading it down level by level. All
        // overflow events are later than any wheel event (they are
        // outside now()'s top-level block), so this is order-exact.
        const std::size_t inWheel = pendingCount_ - overflow_.size();
        if (inWheel == 1) {
            for (int level = 0; level < kLevels; ++level) {
                if (!occupied_[level])
                    continue;
                const std::size_t idx = static_cast<std::size_t>(
                    std::countr_zero(occupied_[level]));
                Bucket &b = wheel_[level][idx];
                if (b.front().when > deadline)
                    return false;
                now_ = b.front().when;
                exec_.push_back(std::move(b.front()));
                b.clear();
                execPos_ = 0;
                occupied_[level] = 0;
                return true;
            }
        }
        // Level 0: an event within the current 64-tick block. Each L0
        // bucket holds exactly one timestamp.
        const std::size_t cur0 = now_ & (kBuckets - 1);
        const std::uint64_t m0 =
            occupied_[0] & (~std::uint64_t(0) << cur0);
        if (m0) {
            const std::size_t idx =
                static_cast<std::size_t>(std::countr_zero(m0));
            const Tick t = (now_ & ~Tick(kBuckets - 1)) | idx;
            if (t > deadline)
                return false;
            now_ = t;
            collectBucket(idx);
            return true;
        }
        // Higher levels: cascade the next occupied bucket down. The
        // scan is inclusive of the current index — a bucket at the
        // current index can be non-empty right after a parent cascade,
        // and then holds events >= now() with now() at the block base.
        // runUntil()'s park repair (below) keeps that the *only* way:
        // without it a mid-block park after the express lane would
        // leave a stale current-index bucket whose raw base is behind
        // now_ and whose events an occupied lower level could shadow
        // past a deadline.
        bool cascaded = false;
        for (int level = 1; level < kLevels; ++level) {
            const int shift = kLevelBits * level;
            const std::size_t cur = (now_ >> shift) & (kBuckets - 1);
            const std::uint64_t m =
                occupied_[level] & (~std::uint64_t(0) << cur);
            if (!m)
                continue;
            const std::size_t idx =
                static_cast<std::size_t>(std::countr_zero(m));
            const Tick blockMask =
                (Tick(1) << (shift + kLevelBits)) - 1;
            const Tick rawBase =
                (now_ & ~blockMask) | (Tick(idx) << shift);
            LYNX_DEBUG_ASSERT(rawBase >= now_,
                              "stale wheel bucket escaped the park repair");
            const Tick base = std::max(now_, rawBase);
            if (base > deadline)
                return false;
            now_ = base;
            cascade(level, idx);
            cascaded = true;
            break;
        }
        if (cascaded)
            continue;
        // Overflow: jump to the start of the earliest far-future
        // event's top-level block and cascade that block in.
        if (!overflow_.empty()) {
            const Tick w = overflow_.front().when;
            if (w > deadline)
                return false;
            const Tick blockMask = (Tick(1) << kTopBits) - 1;
            now_ = std::max(now_, w & ~blockMask);
            drainOverflow();
            continue;
        }
        return false; // calendar is empty
    }
}

void
Simulator::collectBucket(std::size_t idx)
{
    Bucket &b = wheel_[0][idx];
    exec_.swap(b);
    execPos_ = 0;
    occupied_[0] &= ~(std::uint64_t(1) << idx);
    // Direct placement appends in seq order; a cascade arriving later
    // can interleave, so restore FIFO order when (rarely) needed.
    const auto seqLess = [](const PendingEvent &a, const PendingEvent &b) {
        return a.seq < b.seq;
    };
    if (!std::is_sorted(exec_.begin(), exec_.end(), seqLess))
        std::sort(exec_.begin(), exec_.end(), seqLess);
#if LYNX_DEBUG_ASSERTS_ENABLED
    for (const PendingEvent &e : exec_)
        LYNX_ASSERT(e.when == now_, "L0 bucket holds a foreign timestamp");
#endif
}

void
Simulator::cascade(int level, std::size_t idx)
{
    cascadeBuf_.swap(wheel_[level][idx]);
    occupied_[level] &= ~(std::uint64_t(1) << idx);
    for (PendingEvent &ev : cascadeBuf_)
        place(std::move(ev));
    cascadeBuf_.clear();
}

void
Simulator::drainOverflow()
{
    const auto later = [](const PendingEvent &a, const PendingEvent &b) {
        return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    };
    while (!overflow_.empty() &&
           (overflow_.front().when >> kTopBits) == (now_ >> kTopBits)) {
        std::pop_heap(overflow_.begin(), overflow_.end(), later);
        PendingEvent ev = std::move(overflow_.back());
        overflow_.pop_back();
        place(std::move(ev));
    }
}

Tick
Simulator::nextPendingLowerBound() const
{
    if (!ready_.empty() || execPos_ < exec_.size())
        return now_;
    if (pendingCount_ == 0)
        return maxTick;
    Tick best = maxTick;
    // Level 0 buckets hold exact timestamps within now()'s 64-tick
    // block; higher levels contribute their bucket's block base (a
    // valid lower bound for everything filed inside).
    const std::size_t cur0 = now_ & (kBuckets - 1);
    if (const std::uint64_t m0 =
            occupied_[0] & (~std::uint64_t(0) << cur0)) {
        const std::size_t idx =
            static_cast<std::size_t>(std::countr_zero(m0));
        best = (now_ & ~Tick(kBuckets - 1)) | idx;
    }
    for (int level = 1; level < kLevels; ++level) {
        const int shift = kLevelBits * level;
        const std::size_t cur = (now_ >> shift) & (kBuckets - 1);
        const std::uint64_t m =
            occupied_[level] & (~std::uint64_t(0) << cur);
        if (!m)
            continue;
        const std::size_t idx =
            static_cast<std::size_t>(std::countr_zero(m));
        const Tick blockMask = (Tick(1) << (shift + kLevelBits)) - 1;
        const Tick base = (now_ & ~blockMask) | (Tick(idx) << shift);
        // The block base alone is a valid bound, but a coarse one: a
        // sharded run skipping idle stretches would crawl across a
        // high-level block in lookahead-sized windows. The level's
        // true minimum lives in its first occupied bucket (later
        // buckets have strictly larger bases than this bucket's last
        // tick), so scan it — unless the base already can't beat
        // `best`.
        if (std::max(base, now_) >= best)
            continue;
        Tick levelMin = maxTick;
        for (const PendingEvent &e : wheel_[level][idx])
            levelMin = std::min(levelMin, e.when);
        best = std::min(best, std::max(levelMin, now_));
    }
    if (!overflow_.empty())
        best = std::min(best, overflow_.front().when);
    return best;
}

void
Simulator::runLoop(Tick deadline)
{
    while (!stopped_) {
        if (execPos_ < exec_.size()) {
            fire(exec_[execPos_++]);
            continue;
        }
        if (!exec_.empty()) {
            exec_.clear(); // keeps capacity for the next bucket swap
            execPos_ = 0;
        }
        if (!ready_.empty()) {
            PendingEvent e = ready_.pop_front();
            fire(e);
            continue;
        }
        if (!advance(deadline))
            return;
    }
}

Tick
Simulator::run()
{
    runLoop(maxTick);
    return now_;
}

Tick
Simulator::runUntil(Tick deadline)
{
    runLoop(deadline);
    if (!stopped_ && now_ < deadline) {
        now_ = deadline;
        // The jump can land inside a block whose wheel bucket still
        // holds events filed relative to the old clock — advance()'s
        // express lane leaves a lone beyond-deadline event at a high
        // level, and the park then enters its block. Re-file those
        // current-index buckets against the new clock: every pending
        // event is > deadline (advance() just said so), so this only
        // rearranges the calendar — no event fires or moves in time.
        // Without the repair, advance()'s level scan could read a
        // block base behind now_ or shadow the stale bucket's events
        // behind an occupied lower level until a later deadline.
        for (int level = kLevels - 1; level >= 1; --level) {
            const std::size_t cur =
                (now_ >> (kLevelBits * level)) & (kBuckets - 1);
            if (occupied_[level] & (std::uint64_t(1) << cur))
                cascade(level, cur);
        }
    }
    return now_;
}

} // namespace lynx::sim

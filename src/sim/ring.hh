/**
 * @file
 * RingDeque<T>: a power-of-two ring buffer with deque semantics.
 *
 * std::deque allocates and frees fixed-size node blocks as its ends
 * move, which shows up as steady-state heap traffic in channel and
 * waiter queues. RingDeque keeps one contiguous power-of-two buffer,
 * doubles it on overflow, and thereafter push/pop are index
 * arithmetic — zero allocations once warm. Supports push at both
 * ends' worth of use here: push_back / pop_front (FIFO) plus indexed
 * iteration for "wake everyone" loops.
 */

#ifndef LYNX_SIM_RING_HH
#define LYNX_SIM_RING_HH

#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace lynx::sim {

/** FIFO ring buffer; grows by doubling, never shrinks. */
template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;

    RingDeque(const RingDeque &) = delete;
    RingDeque &operator=(const RingDeque &) = delete;

    RingDeque(RingDeque &&o) noexcept
        : buf_(std::exchange(o.buf_, nullptr)), cap_(std::exchange(o.cap_, 0)),
          head_(std::exchange(o.head_, 0)), size_(std::exchange(o.size_, 0))
    {}

    RingDeque &
    operator=(RingDeque &&o) noexcept
    {
        if (this != &o) {
            destroyAll();
            buf_ = std::exchange(o.buf_, nullptr);
            cap_ = std::exchange(o.cap_, 0);
            head_ = std::exchange(o.head_, 0);
            size_ = std::exchange(o.size_, 0);
        }
        return *this;
    }

    ~RingDeque() { destroyAll(); }

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /** @return element @p i positions behind the front. */
    T &operator[](std::size_t i) { return *slot(head_ + i); }
    const T &operator[](std::size_t i) const { return *slot(head_ + i); }

    T &front() { return *slot(head_); }

    void
    push_back(T v)
    {
        if (size_ == cap_)
            grow();
        ::new (static_cast<void *>(slot(head_ + size_))) T(std::move(v));
        ++size_;
    }

    template <typename... Args>
    void
    emplace_back(Args &&...args)
    {
        if (size_ == cap_)
            grow();
        ::new (static_cast<void *>(slot(head_ + size_)))
            T(std::forward<Args>(args)...);
        ++size_;
    }

    /** Remove and return the front element. @pre !empty(). */
    T
    pop_front()
    {
        T *p = slot(head_);
        T v = std::move(*p);
        p->~T();
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
        return v;
    }

    /** Destroy all elements; keeps the buffer. */
    void
    clear() noexcept
    {
        while (size_)
            slot(head_ + --size_)->~T();
        head_ = 0;
    }

  private:
    T *
    slot(std::size_t logical) const noexcept
    {
        return buf_ + (logical & (cap_ - 1));
    }

    void
    grow()
    {
        const std::size_t newCap = cap_ ? cap_ * 2 : 8;
        T *nbuf = static_cast<T *>(
            ::operator new(newCap * sizeof(T), std::align_val_t(alignof(T))));
        for (std::size_t i = 0; i < size_; ++i) {
            T *src = slot(head_ + i);
            ::new (static_cast<void *>(nbuf + i)) T(std::move(*src));
            src->~T();
        }
        if (buf_)
            ::operator delete(buf_, std::align_val_t(alignof(T)));
        buf_ = nbuf;
        cap_ = newCap;
        head_ = 0;
    }

    void
    destroyAll() noexcept
    {
        clear();
        if (buf_) {
            ::operator delete(buf_, std::align_val_t(alignof(T)));
            buf_ = nullptr;
            cap_ = 0;
        }
    }

    T *buf_ = nullptr;
    std::size_t cap_ = 0;  ///< always a power of two (or zero)
    std::size_t head_ = 0; ///< physical index of the front element
    std::size_t size_ = 0;
};

} // namespace lynx::sim

#endif // LYNX_SIM_RING_HH

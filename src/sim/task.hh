/**
 * @file
 * Coroutine tasks for the simulator.
 *
 * Model code is written as C++20 coroutines returning sim::Task.
 * A task is started with spawn(sim, fn(...)); it then runs until its
 * first suspension point and continues whenever the awaited condition
 * (a delay, a channel item, a semaphore, ...) is satisfied.
 *
 * Ownership: coroutine frames are owned by the simulator. A frame
 * destroys itself when the coroutine finishes; frames still suspended
 * when the Simulator is destroyed are destroyed by the simulator's
 * registry. The Task object returned by spawn() is a lightweight
 * join handle — co_await it to wait for completion — and may be
 * freely dropped for fire-and-forget tasks.
 */

#ifndef LYNX_SIM_TASK_HH
#define LYNX_SIM_TASK_HH

#include <coroutine>
#include <cstddef>
#include <memory>
#include <utility>

#include "logging.hh"
#include "pool.hh"
#include "simulator.hh"
#include "time.hh"

namespace lynx::sim {

/**
 * Base class for all simulator coroutine promises (Task and Co<T>).
 * Awaitables reach the owning simulator through it.
 *
 * Frames allocate through the slab Pool (promise-scoped operator
 * new/delete apply to the whole coroutine frame), so steady-state
 * coroutine churn — e.g. a Co<> per request — recycles instead of
 * hitting the heap.
 */
struct PromiseBase
{
    Simulator *sim = nullptr;

    /** Registry index; maintained by the simulator (see
     *  Simulator::registerCoroutine). Only spawned Tasks register. */
    std::size_t regIdx = 0;

    static void *
    operator new(std::size_t n)
    {
        return Pool::instance().allocate(n);
    }

    static void
    operator delete(void *p) noexcept
    {
        Pool::instance().deallocate(p);
    }

    static void
    operator delete(void *p, std::size_t) noexcept
    {
        Pool::instance().deallocate(p);
    }
};

/** Constrains awaitables to coroutines whose promise knows its sim. */
template <typename P>
concept SimPromise = std::derived_from<P, PromiseBase>;

/** Join handle for a spawned coroutine task. */
class Task
{
  public:
    /** Completion state shared between the frame and join handles. */
    struct JoinState
    {
        bool done = false;
        std::coroutine_handle<> continuation;
    };

    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct promise_type : PromiseBase
    {
        std::shared_ptr<JoinState> join = std::make_shared<JoinState>();

        ~promise_type()
        {
            if (sim)
                sim->unregisterCoroutine(regIdx);
        }

        Task get_return_object() { return Task(Handle::from_promise(*this)); }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(Handle h) noexcept
            {
                auto join = h.promise().join;
                join->done = true;
                auto cont = join->continuation ? join->continuation
                                               : std::noop_coroutine();
                // The frame self-destructs here; anything reachable
                // only through it is gone before the joiner resumes.
                h.destroy();
                return cont;
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_void() {}

        void
        unhandled_exception()
        {
            LYNX_PANIC("unhandled exception escaped a sim::Task");
        }
    };

    Task() = default;

    Task(Task &&o) noexcept
        : handle_(std::exchange(o.handle_, nullptr)),
          join_(std::move(o.join_)), started_(o.started_)
    {}

    Task &
    operator=(Task &&o) noexcept
    {
        handle_ = std::exchange(o.handle_, nullptr);
        join_ = std::move(o.join_);
        started_ = o.started_;
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task()
    {
        // A task that was never spawned owns its (suspended) frame.
        if (handle_ && !started_)
            handle_.destroy();
    }

    /** @return whether the coroutine has run to completion. */
    bool done() const { return join_ && join_->done; }

    /** @return whether this handle refers to a coroutine at all. */
    bool valid() const { return join_ != nullptr; }

    /**
     * Begin execution on @p sim: the coroutine runs synchronously up
     * to its first suspension point. Called by spawn().
     */
    void
    start(Simulator &sim)
    {
        LYNX_ASSERT(handle_ && !started_, "task already started or empty");
        started_ = true;
        handle_.promise().sim = &sim;
        sim.registerCoroutine(handle_, handle_.promise().regIdx);
        auto h = std::exchange(handle_, nullptr);
        h.resume();
    }

    /** Awaiter for joining a task: co_await task. */
    struct JoinAwaiter
    {
        std::shared_ptr<JoinState> join;

        bool await_ready() const noexcept { return !join || join->done; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            LYNX_ASSERT(!join->continuation, "task joined twice");
            join->continuation = h;
        }

        void await_resume() const noexcept {}
    };

    JoinAwaiter operator co_await() const { return JoinAwaiter{join_}; }

  private:
    explicit Task(Handle h) : handle_(h), join_(h.promise().join) {}

    Handle handle_{};
    std::shared_ptr<JoinState> join_;
    bool started_ = false;
};

/**
 * Start coroutine task @p t on @p sim.
 * @return a join handle; drop it for fire-and-forget tasks.
 */
inline Task
spawn(Simulator &sim, Task t)
{
    t.start(sim);
    return t;
}

/**
 * Awaitable that suspends the current task for a fixed duration:
 * co_await sleep(30_us).
 */
struct SleepAwaiter
{
    Tick delay;

    bool await_ready() const noexcept { return false; }

    template <SimPromise P>
    void
    await_suspend(std::coroutine_handle<P> h) const
    {
        // Coroutine fast path: the handle goes straight into the
        // calendar, no lambda wrapper and no allocation.
        h.promise().sim->scheduleIn(delay, h);
    }

    void await_resume() const noexcept {}
};

/** @return an awaitable that delays the current task by @p d ticks. */
inline SleepAwaiter
sleep(Tick d)
{
    return SleepAwaiter{d};
}

/**
 * Awaitable exposing the owning simulator to the current task:
 * Simulator &sim = co_await currentSimulator().
 */
struct CurrentSimulatorAwaiter
{
    Simulator *sim = nullptr;

    bool await_ready() const noexcept { return false; }

    template <SimPromise P>
    bool
    await_suspend(std::coroutine_handle<P> h)
    {
        sim = h.promise().sim;
        return false; // resume immediately
    }

    Simulator &await_resume() const noexcept { return *sim; }
};

/** @return an awaitable yielding the simulator running this task. */
inline CurrentSimulatorAwaiter
currentSimulator()
{
    return {};
}

} // namespace lynx::sim

#endif // LYNX_SIM_TASK_HH

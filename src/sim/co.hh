/**
 * @file
 * Co<T>: a lazy awaitable coroutine, the building block for async
 * model methods.
 *
 * Where Task is a top-level, fire-and-forget activity owned by the
 * simulator, Co<T> is a *subroutine*: it starts only when awaited,
 * transfers control back to its awaiter when done, and its frame is
 * owned by the Co object (usually a temporary inside the awaiting
 * coroutine's frame), so teardown recurses naturally.
 *
 *     sim::Co<int> Nic::transmit(Message m) { ... co_return n; }
 *     ...
 *     int n = co_await nic.transmit(std::move(m));
 */

#ifndef LYNX_SIM_CO_HH
#define LYNX_SIM_CO_HH

#include <coroutine>
#include <optional>
#include <utility>

#include "logging.hh"
#include "task.hh"

namespace lynx::sim {

namespace detail {

/** Shared promise behaviour for Co<T> and Co<void>. */
template <typename Promise>
struct CoPromiseBase : PromiseBase
{
    std::coroutine_handle<> continuation;

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            // Control returns to the awaiter; the frame itself is
            // destroyed later by the owning Co object.
            return h.promise().continuation;
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        LYNX_PANIC("unhandled exception escaped a sim::Co");
    }
};

} // namespace detail

/**
 * Lazy awaitable coroutine returning T (or void).
 *
 * @tparam T result type; must be movable (or void).
 */
template <typename T>
class [[nodiscard]] Co
{
  public:
    struct promise_type : detail::CoPromiseBase<promise_type>
    {
        std::optional<T> value;

        Co
        get_return_object()
        {
            return Co(std::coroutine_handle<promise_type>::from_promise(*this));
        }

        template <typename U>
        void
        return_value(U &&v)
        {
            value.emplace(std::forward<U>(v));
        }
    };

    using Handle = std::coroutine_handle<promise_type>;

    Co() = default;
    explicit Co(Handle h) : handle_(h) {}

    Co(Co &&o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Co &
    operator=(Co &&o) noexcept
    {
        if (handle_)
            handle_.destroy();
        handle_ = std::exchange(o.handle_, nullptr);
        return *this;
    }

    Co(const Co &) = delete;
    Co &operator=(const Co &) = delete;

    ~Co()
    {
        if (handle_)
            handle_.destroy();
    }

    /** Awaiter that starts the child and resumes the parent at end. */
    struct Awaiter
    {
        Handle handle;

        bool await_ready() const noexcept { return false; }

        template <SimPromise P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> parent)
        {
            handle.promise().sim = parent.promise().sim;
            handle.promise().continuation = parent;
            return handle; // symmetric transfer: start the child
        }

        T
        await_resume()
        {
            LYNX_ASSERT(handle.promise().value.has_value(),
                        "Co finished without a value");
            return std::move(*handle.promise().value);
        }
    };

    Awaiter operator co_await() { return Awaiter{handle_}; }

  private:
    Handle handle_{};
};

/** Specialization for coroutines that produce no value. */
template <>
class [[nodiscard]] Co<void>
{
  public:
    struct promise_type : detail::CoPromiseBase<promise_type>
    {
        Co
        get_return_object()
        {
            return Co(std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    using Handle = std::coroutine_handle<promise_type>;

    Co() = default;
    explicit Co(Handle h) : handle_(h) {}

    Co(Co &&o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}

    Co &
    operator=(Co &&o) noexcept
    {
        if (handle_)
            handle_.destroy();
        handle_ = std::exchange(o.handle_, nullptr);
        return *this;
    }

    Co(const Co &) = delete;
    Co &operator=(const Co &) = delete;

    ~Co()
    {
        if (handle_)
            handle_.destroy();
    }

    struct Awaiter
    {
        Handle handle;

        bool await_ready() const noexcept { return false; }

        template <SimPromise P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> parent)
        {
            handle.promise().sim = parent.promise().sim;
            handle.promise().continuation = parent;
            return handle;
        }

        void await_resume() {}
    };

    Awaiter operator co_await() { return Awaiter{handle_}; }

  private:
    Handle handle_{};
};

} // namespace lynx::sim

#endif // LYNX_SIM_CO_HH

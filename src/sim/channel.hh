/**
 * @file
 * Producer/consumer channel for coroutine tasks.
 *
 * A Channel<T> is a FIFO of values with optional bounded capacity.
 * pop() suspends the consumer until an item is available; push()
 * suspends the producer while the channel is full. Wakeups are
 * scheduled as zero-delay events so that control flow stays flat and
 * FIFO-ordered rather than nesting resumes inside resumes.
 */

#ifndef LYNX_SIM_CHANNEL_HH
#define LYNX_SIM_CHANNEL_HH

#include <cstddef>
#include <limits>
#include <optional>
#include <utility>

#include "ring.hh"
#include "simulator.hh"
#include "task.hh"

namespace lynx::sim {

/** Unbounded-capacity marker for Channel. */
constexpr std::size_t unbounded = std::numeric_limits<std::size_t>::max();

/**
 * FIFO channel connecting producer and consumer tasks.
 *
 * @tparam T item type; must be movable.
 */
template <typename T>
class Channel
{
  public:
    /**
     * @param sim owning simulator (used to schedule wakeups).
     * @param capacity maximum buffered items; sim::unbounded for no
     *                 limit. A capacity of 0 is bumped to 1.
     */
    explicit Channel(Simulator &sim, std::size_t capacity = unbounded)
        : sim_(sim), capacity_(capacity == 0 ? 1 : capacity)
    {}

    Channel(const Channel &) = delete;
    Channel &operator=(const Channel &) = delete;

    /** @return number of buffered items. */
    std::size_t size() const { return items_.size(); }

    /** @return whether no items are buffered. */
    bool empty() const { return items_.empty(); }

    /** @return number of consumers currently suspended in pop(). */
    std::size_t waitingConsumers() const { return poppers_.size(); }

    /**
     * Non-blocking push.
     * @return false if the channel is full and no consumer waits.
     */
    bool
    tryPush(T v)
    {
        if (deliverToWaiter(v))
            return true;
        if (items_.size() >= capacity_)
            return false;
        items_.push_back(std::move(v));
        return true;
    }

    /** Non-blocking pop. @return nullopt if no item is buffered. */
    std::optional<T>
    tryPop()
    {
        if (items_.empty())
            return std::nullopt;
        T v = items_.pop_front();
        admitPusher();
        return v;
    }

    /** Awaiter returned by pop(). */
    struct PopAwaiter
    {
        Channel &ch;
        std::optional<T> value;

        bool
        await_ready()
        {
            auto v = ch.tryPop();
            if (!v)
                return false;
            value = std::move(v);
            return true;
        }

        template <SimPromise P>
        void
        await_suspend(std::coroutine_handle<P> h)
        {
            ch.poppers_.push_back(Popper{h, &value});
        }

        T await_resume() { return std::move(*value); }
    };

    /** Awaiter returned by push(). */
    struct PushAwaiter
    {
        Channel &ch;
        std::optional<T> value;

        bool
        await_ready()
        {
            if (ch.tryPush(std::move(*value)))
                return true;
            return false;
        }

        template <SimPromise P>
        void
        await_suspend(std::coroutine_handle<P> h)
        {
            ch.pushers_.push_back(Pusher{h, &value});
        }

        void await_resume() {}
    };

    /** @return awaitable yielding the next item (FIFO). */
    PopAwaiter pop() { return PopAwaiter{*this, std::nullopt}; }

    /** @return awaitable that enqueues @p v, suspending while full. */
    PushAwaiter push(T v) { return PushAwaiter{*this, std::move(v)}; }

  private:
    struct Popper
    {
        std::coroutine_handle<> h;
        std::optional<T> *slot;
    };

    struct Pusher
    {
        std::coroutine_handle<> h;
        std::optional<T> *slot;
    };

    /** Hand @p v directly to a suspended consumer, if any. */
    bool
    deliverToWaiter(T &v)
    {
        if (poppers_.empty())
            return false;
        Popper p = poppers_.pop_front();
        *p.slot = std::move(v);
        sim_.scheduleIn(Tick(0), p.h);
        return true;
    }

    /** Move a suspended producer's item into freed buffer space. */
    void
    admitPusher()
    {
        if (pushers_.empty() || items_.size() >= capacity_)
            return;
        Pusher p = pushers_.pop_front();
        items_.push_back(std::move(**p.slot));
        sim_.scheduleIn(Tick(0), p.h);
    }

    Simulator &sim_;
    std::size_t capacity_;
    RingDeque<T> items_;
    RingDeque<Popper> poppers_;
    RingDeque<Pusher> pushers_;
};

} // namespace lynx::sim

#endif // LYNX_SIM_CHANNEL_HH

/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() flags an internal simulator
 * bug and aborts; fatal() flags a user/configuration error and exits
 * cleanly with an error code; warn() and inform() report conditions
 * without stopping the simulation.
 */

#ifndef LYNX_SIM_LOGGING_HH
#define LYNX_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace lynx::sim {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Emit @p msg at @p level; Fatal exits(1), Panic aborts. */
[[noreturn]] void terminate(LogLevel level, const std::string &msg,
                            const char *file, int line);

void emit(LogLevel level, const std::string &msg);

/** Concatenate a variadic pack through an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report a condition of interest that is not a problem. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Inform, detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious condition the simulation can survive. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort due to an internal invariant violation (a simulator bug).
 * Use for conditions that should never happen regardless of input.
 */
#define LYNX_PANIC(...)                                                       \
    ::lynx::sim::detail::terminate(                                          \
        ::lynx::sim::LogLevel::Panic,                                        \
        ::lynx::sim::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/**
 * Exit due to a configuration or usage error (the user's fault).
 */
#define LYNX_FATAL(...)                                                       \
    ::lynx::sim::detail::terminate(                                          \
        ::lynx::sim::LogLevel::Fatal,                                        \
        ::lynx::sim::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Panic unless @p cond holds. */
#define LYNX_ASSERT(cond, ...)                                                \
    do {                                                                      \
        if (!(cond)) {                                                        \
            LYNX_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);        \
        }                                                                     \
    } while (0)

/**
 * Hot-path assertion: active in debug builds and in the sanitizer
 * lane (-DLYNX_SANITIZE=ON defines LYNX_ENABLE_DEBUG_ASSERTS), and
 * compiles to nothing in release builds so per-event invariants cost
 * zero on the schedule/run/deliver fast paths. Use LYNX_ASSERT for
 * cold-path invariants that should always be checked.
 */
#if !defined(NDEBUG) || defined(LYNX_ENABLE_DEBUG_ASSERTS)
#define LYNX_DEBUG_ASSERTS_ENABLED 1
#define LYNX_DEBUG_ASSERT(cond, ...) LYNX_ASSERT(cond, ##__VA_ARGS__)
#else
#define LYNX_DEBUG_ASSERTS_ENABLED 0
// The statically-dead branch keeps the condition and message
// type-checked (and their operands "used") in every lane; the
// optimizer deletes it, so release codegen is still empty.
#define LYNX_DEBUG_ASSERT(cond, ...)                                          \
    do {                                                                      \
        if (false) {                                                          \
            LYNX_ASSERT(cond, ##__VA_ARGS__);                                 \
        }                                                                     \
    } while (0)
#endif

/** Exit with a configuration error when @p cond holds. */
#define LYNX_FATAL_IF(cond, ...)                                              \
    do {                                                                      \
        if (cond) {                                                           \
            LYNX_FATAL(__VA_ARGS__);                                          \
        }                                                                     \
    } while (0)

} // namespace lynx::sim

#endif // LYNX_SIM_LOGGING_HH

#include "span.hh"

#include <fstream>
#include <ostream>

#include "logging.hh"
#include "simulator.hh"

namespace lynx::sim {

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::ClientTx: return "client_tx";
    case Stage::NicTx: return "nic_tx";
    case Stage::SnicIngress: return "snic_ingress";
    case Stage::DispatchEnqueue: return "dispatch_enqueue";
    case Stage::MqueueWrite: return "mqueue_write";
    case Stage::GioPop: return "gio_pop";
    case Stage::AppStart: return "app_start";
    case Stage::AppEnd: return "app_end";
    case Stage::ForwarderTx: return "forwarder_tx";
    case Stage::ClientRx: return "client_rx";
    }
    return "?";
}

SpanCollector::SpanCollector(Simulator &sim) : sim_(sim)
{
    sim_.setSpanCollector(this);
}

SpanCollector::~SpanCollector()
{
    if (sim_.spans() == this)
        sim_.setSpanCollector(nullptr);
}

RequestSpan *
SpanCollector::findLive(std::uint64_t id)
{
    if (id == 0 || live_.empty())
        return nullptr;
    RequestSpan &slot = live_[id & (live_.size() - 1)];
    return slot.id == id ? &slot : nullptr;
}

void
SpanCollector::growLive()
{
    // Two open spans always differ in their low log2(capacity) bits
    // (they occupied distinct slots), so re-placing into the doubled
    // ring cannot collide.
    std::vector<RequestSpan, PoolAllocator<RequestSpan>> bigger(
        live_.size() * 2);
    for (RequestSpan &s : live_)
        if (s.id != 0)
            bigger[s.id & (bigger.size() - 1)] = s;
    live_ = std::move(bigger);
}

std::uint64_t
SpanCollector::begin(Tick now)
{
    if (live_.empty())
        live_.resize(kLiveInitial);
    const std::uint64_t id = nextId_++;
    RequestSpan *slot = &live_[id & (live_.size() - 1)];
    while (slot->id != 0 && live_.size() < kLiveLimit) {
        growLive();
        slot = &live_[id & (live_.size() - 1)];
    }
    // Still occupied at the cap: the occupant is kLiveLimit ids older
    // and never came back (drops, dead queues) — forget it, bounding
    // memory exactly like the old map's drop-the-oldest policy.
    *slot = RequestSpan{};
    slot->id = id;
    slot->stamp[static_cast<std::size_t>(Stage::ClientTx)] = now;
    return id;
}

void
SpanCollector::setTenant(std::uint64_t id, std::uint16_t tenant)
{
    if (RequestSpan *span = findLive(id))
        span->tenant = tenant;
}

void
SpanCollector::stamp(std::uint64_t id, Stage stage, Tick now)
{
    RequestSpan *span = findLive(id);
    if (!span)
        return;
    Tick &slot = span->stamp[static_cast<std::size_t>(stage)];
    if (slot == maxTick)
        slot = now;
}

std::size_t
SpanCollector::tagHash(const void *mem, std::uint64_t base, std::uint32_t tag)
{
    std::uint64_t h = reinterpret_cast<std::uintptr_t>(mem);
    h ^= base + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= tag + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    // splitmix64 finalizer: full avalanche so linear probing sees
    // uniform home slots even for pointer-aligned keys.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
}

std::size_t
SpanCollector::findTag(const void *mem, std::uint64_t base,
                       std::uint32_t tag) const
{
    if (tags_.empty())
        return 0;
    const std::size_t mask = tags_.size() - 1;
    for (std::size_t i = tagHash(mem, base, tag) & mask;;
         i = (i + 1) & mask) {
        const TagEntry &e = tags_[i];
        if (e.mem == nullptr)
            return tags_.size();
        if (e.mem == mem && e.base == base && e.tag == tag)
            return i;
    }
}

void
SpanCollector::eraseTag(std::size_t i)
{
    // Backward-shift deletion: pull every displaced follower of the
    // probe chain into the hole so lookups never need tombstones.
    const std::size_t mask = tags_.size() - 1;
    std::size_t j = i;
    for (;;) {
        tags_[i] = TagEntry{};
        for (;;) {
            j = (j + 1) & mask;
            if (tags_[j].mem == nullptr)
                return;
            std::size_t home =
                tagHash(tags_[j].mem, tags_[j].base, tags_[j].tag) & mask;
            // Movable into the hole iff the hole lies on the entry's
            // probe path: probe distance to j >= distance from i to j.
            if (((j - home) & mask) >= ((j - i) & mask))
                break;
        }
        tags_[i] = tags_[j];
        i = j;
    }
}

void
SpanCollector::growTags()
{
    std::vector<TagEntry, PoolAllocator<TagEntry>> old = std::move(tags_);
    tags_.assign(old.empty() ? kTagInitial : old.size() * 2, TagEntry{});
    const std::size_t mask = tags_.size() - 1;
    for (const TagEntry &e : old) {
        if (e.mem == nullptr)
            continue;
        std::size_t i = tagHash(e.mem, e.base, e.tag) & mask;
        while (tags_[i].mem != nullptr)
            i = (i + 1) & mask;
        tags_[i] = e;
    }
}

void
SpanCollector::bindTag(const void *mem, std::uint64_t base, std::uint32_t tag,
                       std::uint64_t id)
{
    if (id == 0)
        return;
    if (tags_.empty() || tagCount_ * 4 >= tags_.size() * 3)
        growTags();
    const std::size_t mask = tags_.size() - 1;
    std::size_t i = tagHash(mem, base, tag) & mask;
    while (tags_[i].mem != nullptr) {
        if (tags_[i].mem == mem && tags_[i].base == base &&
            tags_[i].tag == tag) {
            tags_[i].id = id; // rebinding an in-use tag: latest wins
            return;
        }
        i = (i + 1) & mask;
    }
    tags_[i] = TagEntry{mem, base, tag, id};
    ++tagCount_;
}

void
SpanCollector::stampTag(const void *mem, std::uint64_t base, std::uint32_t tag,
                        Stage stage, Tick now)
{
    std::size_t i = findTag(mem, base, tag);
    if (i < tags_.size())
        stamp(tags_[i].id, stage, now);
}

void
SpanCollector::unbindTag(const void *mem, std::uint64_t base,
                         std::uint32_t tag)
{
    std::size_t i = findTag(mem, base, tag);
    if (i < tags_.size()) {
        eraseTag(i);
        --tagCount_;
    }
}

void
SpanCollector::finish(std::uint64_t id, Tick now)
{
    RequestSpan *slot = findLive(id);
    if (!slot)
        return;
    RequestSpan span = *slot;
    slot->id = 0; // free the ring slot
    span.stamp[static_cast<std::size_t>(Stage::ClientRx)] = now;

    // Fold: each stamped stage records its delta to the previous
    // stamped stage, so the per-request deltas sum exactly to the
    // end-to-end latency no matter which hops a deployment has.
    Tick prev = span.at(Stage::ClientTx);
    for (std::size_t i = 1; i < kNumStages; ++i) {
        if (span.stamp[i] == maxTick)
            continue;
        LYNX_ASSERT(span.stamp[i] >= prev, "span stamps not monotone");
        stageHist_[i].record(span.stamp[i] - prev);
        prev = span.stamp[i];
    }
    totalHist_.record(now - span.at(Stage::ClientTx));
    ++finished_;

    if (done_.size() < retainLimit_)
        done_.push_back(span);
    else
        ++dropped_;
}

void
SpanCollector::writeChromeTrace(std::ostream &os) const
{
    const auto oldPrecision = os.precision(15);
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const RequestSpan &span : done_) {
        Tick prev = span.at(Stage::ClientTx);
        for (std::size_t i = 1; i < kNumStages; ++i) {
            if (span.stamp[i] == maxTick)
                continue;
            if (!first)
                os << ",";
            first = false;
            // Complete event covering [prev, stamp): ts/dur in us.
            os << "{\"name\":\"" << stageName(static_cast<Stage>(i))
               << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.id
               << ",\"ts\":" << toMicroseconds(prev)
               << ",\"dur\":" << toMicroseconds(span.stamp[i] - prev)
               << ",\"args\":{\"trace_id\":" << span.id;
            if (span.tenant != 0)
                os << ",\"tenant\":" << span.tenant;
            os << "}}";
            prev = span.stamp[i];
        }
    }
    os << "]}\n";
    os.precision(oldPrecision);
}

bool
SpanCollector::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return out.good();
}

} // namespace lynx::sim

#include "span.hh"

#include <fstream>
#include <ostream>

#include "logging.hh"
#include "simulator.hh"

namespace lynx::sim {

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::ClientTx: return "client_tx";
    case Stage::NicTx: return "nic_tx";
    case Stage::SnicIngress: return "snic_ingress";
    case Stage::DispatchEnqueue: return "dispatch_enqueue";
    case Stage::MqueueWrite: return "mqueue_write";
    case Stage::GioPop: return "gio_pop";
    case Stage::AppStart: return "app_start";
    case Stage::AppEnd: return "app_end";
    case Stage::ForwarderTx: return "forwarder_tx";
    case Stage::ClientRx: return "client_rx";
    }
    return "?";
}

SpanCollector::SpanCollector(Simulator &sim) : sim_(sim)
{
    sim_.setSpanCollector(this);
}

SpanCollector::~SpanCollector()
{
    if (sim_.spans() == this)
        sim_.setSpanCollector(nullptr);
}

std::uint64_t
SpanCollector::begin(Tick now)
{
    // Bound memory if requests never come back (drops, dead queues):
    // forget the oldest still-open span.
    if (live_.size() >= kLiveLimit)
        live_.erase(live_.begin());
    const std::uint64_t id = nextId_++;
    RequestSpan &span = live_[id];
    span.id = id;
    span.stamp[static_cast<std::size_t>(Stage::ClientTx)] = now;
    return span.id;
}

void
SpanCollector::stamp(std::uint64_t id, Stage stage, Tick now)
{
    if (id == 0)
        return;
    auto it = live_.find(id);
    if (it == live_.end())
        return;
    Tick &slot = it->second.stamp[static_cast<std::size_t>(stage)];
    if (slot == maxTick)
        slot = now;
}

void
SpanCollector::bindTag(const void *mem, std::uint64_t base, std::uint32_t tag,
                       std::uint64_t id)
{
    if (id == 0)
        return;
    tagBindings_[TagKey{mem, base, tag}] = id;
}

void
SpanCollector::stampTag(const void *mem, std::uint64_t base, std::uint32_t tag,
                        Stage stage, Tick now)
{
    auto it = tagBindings_.find(TagKey{mem, base, tag});
    if (it != tagBindings_.end())
        stamp(it->second, stage, now);
}

void
SpanCollector::unbindTag(const void *mem, std::uint64_t base,
                         std::uint32_t tag)
{
    tagBindings_.erase(TagKey{mem, base, tag});
}

void
SpanCollector::finish(std::uint64_t id, Tick now)
{
    if (id == 0)
        return;
    auto it = live_.find(id);
    if (it == live_.end())
        return;
    RequestSpan span = it->second;
    live_.erase(it);
    span.stamp[static_cast<std::size_t>(Stage::ClientRx)] = now;

    // Fold: each stamped stage records its delta to the previous
    // stamped stage, so the per-request deltas sum exactly to the
    // end-to-end latency no matter which hops a deployment has.
    Tick prev = span.at(Stage::ClientTx);
    for (std::size_t i = 1; i < kNumStages; ++i) {
        if (span.stamp[i] == maxTick)
            continue;
        LYNX_ASSERT(span.stamp[i] >= prev, "span stamps not monotone");
        stageHist_[i].record(span.stamp[i] - prev);
        prev = span.stamp[i];
    }
    totalHist_.record(now - span.at(Stage::ClientTx));
    ++finished_;

    if (done_.size() < retainLimit_)
        done_.push_back(span);
    else
        ++dropped_;
}

void
SpanCollector::writeChromeTrace(std::ostream &os) const
{
    const auto oldPrecision = os.precision(15);
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const RequestSpan &span : done_) {
        Tick prev = span.at(Stage::ClientTx);
        for (std::size_t i = 1; i < kNumStages; ++i) {
            if (span.stamp[i] == maxTick)
                continue;
            if (!first)
                os << ",";
            first = false;
            // Complete event covering [prev, stamp): ts/dur in us.
            os << "{\"name\":\"" << stageName(static_cast<Stage>(i))
               << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.id
               << ",\"ts\":" << toMicroseconds(prev)
               << ",\"dur\":" << toMicroseconds(span.stamp[i] - prev)
               << ",\"args\":{\"trace_id\":" << span.id << "}}";
            prev = span.stamp[i];
        }
    }
    os << "]}\n";
    os.precision(oldPrecision);
}

bool
SpanCollector::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return out.good();
}

} // namespace lynx::sim

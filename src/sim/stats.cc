#include "stats.hh"

namespace lynx::sim {

void
StatSet::dump(std::ostream &os, const std::string &prefix) const
{
    for (const auto &kv : counters_)
        os << prefix << kv.first << " = " << kv.second.value() << "\n";
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        os << prefix << kv.first << ": n=" << h.count()
           << " mean=" << h.mean() << " p50=" << h.percentile(50)
           << " p90=" << h.percentile(90) << " p99=" << h.percentile(99)
           << " max=" << h.max() << "\n";
    }
}

} // namespace lynx::sim

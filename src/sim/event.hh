/**
 * @file
 * EventFn: the simulator's event callback type.
 *
 * A move-only callable wrapper sized for the event calendar's hot
 * path. Unlike std::function it (a) stores any callable up to
 * kInlineSize bytes inline — large enough for a routed net::Message
 * plus a destination pointer — so scheduling a typical event never
 * heap-allocates, and (b) spills oversize callables into the slab
 * Pool rather than the system allocator, so even those recycle.
 *
 * Dispatch goes through a per-type ops table (invoke / relocate /
 * destroy) instead of a virtual object, which keeps the wrapper
 * trivially movable when the payload is (relocate == memcpy).
 */

#ifndef LYNX_SIM_EVENT_HH
#define LYNX_SIM_EVENT_HH

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "pool.hh"

namespace lynx::sim {

/** Move-only small-buffer-optimized event callback. */
class EventFn
{
  public:
    /** Inline payload capacity. 72 bytes fits the common delivery
     *  lambda: a 64-byte net::Message by value plus one pointer. */
    static constexpr std::size_t kInlineSize = 72;
    static constexpr std::size_t kAlign = 16;

    /** True when callables of type F are stored inline (no pool trip).
     *  Asserted by tests for the hot-path lambda shapes. */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(F) <= kInlineSize && alignof(F) <= kAlign;

    EventFn() = default;

    template <typename F>
        requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                 std::is_invocable_r_v<void, std::remove_cvref_t<F> &>)
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using D = std::remove_cvref_t<F>;
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            void *mem = Pool::instance().allocate(sizeof(D));
            ::new (mem) D(std::forward<F>(f));
            ::new (static_cast<void *>(buf_)) void *(mem);
            ops_ = &heapOps<D>;
        }
    }

    /** Fast path for coroutine wakeups: no lambda, no capture. */
    static EventFn
    resume(std::coroutine_handle<> h)
    {
        EventFn fn;
        ::new (static_cast<void *>(fn.buf_)) std::coroutine_handle<>(h);
        fn.ops_ = &resumeOps;
        return fn;
    }

    EventFn(EventFn &&o) noexcept { moveFrom(o); }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    void operator()() { ops_->invoke(buf_); }

    /** Invoke, then destroy the callable — one dispatch instead of
     *  two on the calendar's fire path. Leaves *this empty. */
    void
    invokeAndReset()
    {
        const Ops *ops = ops_;
        ops_ = nullptr;
        ops->invokeDestroy(buf_);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Destroy the stored callable (no-op when empty). */
    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *self);
        /** Invoke + destroy fused (fire path). */
        void (*invokeDestroy)(void *self);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *self) noexcept;
    };

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void *self) { (*std::launder(reinterpret_cast<D *>(self)))(); },
        [](void *self) {
            D *p = std::launder(reinterpret_cast<D *>(self));
            (*p)();
            p->~D();
        },
        [](void *src, void *dst) noexcept {
            if constexpr (std::is_trivially_copyable_v<D>) {
                std::memcpy(dst, src, sizeof(D));
            } else {
                D *s = std::launder(reinterpret_cast<D *>(src));
                ::new (dst) D(std::move(*s));
                s->~D();
            }
        },
        [](void *self) noexcept {
            std::launder(reinterpret_cast<D *>(self))->~D();
        },
    };

    template <typename D>
    static constexpr Ops heapOps = {
        [](void *self) { (**static_cast<D **>(self))(); },
        [](void *self) {
            D *p = *static_cast<D **>(self);
            (*p)();
            p->~D();
            Pool::instance().deallocate(p);
        },
        [](void *src, void *dst) noexcept {
            std::memcpy(dst, src, sizeof(void *));
        },
        [](void *self) noexcept {
            D *p = *static_cast<D **>(self);
            p->~D();
            Pool::instance().deallocate(p);
        },
    };

    static constexpr Ops resumeOps = {
        [](void *self) {
            static_cast<std::coroutine_handle<> *>(self)->resume();
        },
        [](void *self) {
            static_cast<std::coroutine_handle<> *>(self)->resume();
        },
        [](void *src, void *dst) noexcept {
            std::memcpy(dst, src, sizeof(std::coroutine_handle<>));
        },
        [](void *) noexcept {},
    };

    void
    moveFrom(EventFn &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_) {
            ops_->relocate(o.buf_, buf_);
            o.ops_ = nullptr;
        }
    }

    alignas(kAlign) unsigned char buf_[kInlineSize];
    const Ops *ops_ = nullptr;
};

} // namespace lynx::sim

#endif // LYNX_SIM_EVENT_HH

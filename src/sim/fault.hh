/**
 * @file
 * Seeded, deterministic fault injection for link and RDMA transfers.
 *
 * A FaultPlan is a stochastic adversary shared by the network fabric
 * (net::Network) and the RDMA queue pairs (rdma::QueuePair). Each
 * transfer is judged once per transmission attempt and can be
 * dropped, corrupted, or delayed; scheduled partitions make every
 * transfer between two nodes fail for a time window and then heal.
 *
 * Determinism: all randomness comes from one seeded Rng, and the
 * simulator's event calendar is itself deterministic, so a given
 * (scenario, FaultConfig) replays bit-identically — the property the
 * chaos suite relies on to sweep seeds. Delayed transfers overtake
 * later undelayed ones, so `delayRate` doubles as the reordering
 * fault: per-(src,dst) FIFO delivery only holds when latency is
 * uniform.
 *
 * A plan whose rates are all zero and whose partition schedule is
 * empty reports enabled() == false, and every consumer short-circuits
 * before drawing randomness — attaching such a plan leaves timing
 * bit-identical to not attaching one (the golden-timestamp
 * discipline).
 */

#ifndef LYNX_SIM_FAULT_HH
#define LYNX_SIM_FAULT_HH

#include <cstdint>
#include <span>
#include <vector>

#include "logging.hh"
#include "random.hh"
#include "stats.hh"
#include "time.hh"

namespace lynx::sim {

/** Per-transfer fault probabilities and delay bounds. */
struct FaultConfig
{
    /** Probability a transfer attempt is silently lost. */
    double dropRate = 0.0;

    /** Probability a transfer attempt has payload bytes flipped in
     *  flight. Receivers detect this via frame/ICRC checksums, so
     *  corruption surfaces as drops and retransmits — never as a
     *  corrupt payload delivered upward. */
    double corruptRate = 0.0;

    /** Probability a transfer is held back by a uniform random delay
     *  in [delayMin, delayMax] (doubles as reordering). */
    double delayRate = 0.0;
    Tick delayMin = microseconds(5);
    Tick delayMax = microseconds(80);

    /** Seed of the fault process (deterministic replay). */
    std::uint64_t seed = 0xfa0175;
};

/** Deterministic fault adversary for link/RDMA transfers. */
class FaultPlan
{
  public:
    /** Wildcard node id: a partition endpoint matching any node. */
    static constexpr std::uint32_t kAnyNode = 0xffffffffu;

    explicit FaultPlan(FaultConfig cfg = {})
        : cfg_(cfg), rng_(cfg.seed),
          cPartitionDrops_(&stats_.counter("partition_drops")),
          cDrops_(&stats_.counter("drops")),
          cCorruptions_(&stats_.counter("corruptions")),
          cDelays_(&stats_.counter("delays"))
    {}

    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    /** What happens to one transfer attempt. */
    struct Verdict
    {
        bool drop = false;
        bool partition = false; ///< drop was a partition hit (set by
                                ///< judgeKeyed; callers own counters)
        bool corrupt = false;
        Tick delay = 0;
    };

    /** @return whether any fault could ever fire. Consumers check
     *  this before judge() so an all-zero plan costs nothing and
     *  draws no randomness (timing stays bit-identical). */
    bool
    enabled() const
    {
        return cfg_.dropRate > 0.0 || cfg_.corruptRate > 0.0 ||
               cfg_.delayRate > 0.0 || !partitions_.empty();
    }

    /** Current fault rates. */
    const FaultConfig &config() const { return cfg_; }

    /** Replace the stochastic rates (the Rng stream continues; used
     *  by convergence tests to heal a lossy phase mid-run). */
    void setConfig(const FaultConfig &cfg) { cfg_ = cfg; }

    /** Zero every rate and forget the partition schedule: the fabric
     *  is healthy from now on. */
    void
    heal()
    {
        cfg_.dropRate = 0.0;
        cfg_.corruptRate = 0.0;
        cfg_.delayRate = 0.0;
        partitions_.clear();
    }

    /**
     * Schedule a bidirectional partition between nodes @p a and @p b
     * (kAnyNode matches every node) for sim-time [@p from, @p until):
     * every transfer attempt between them in the window is dropped.
     */
    void
    partition(std::uint32_t a, std::uint32_t b, Tick from, Tick until)
    {
        LYNX_ASSERT(from < until, "empty partition window");
        partitions_.push_back(Partition{a, b, from, until});
    }

    /** @return whether (src, dst) is partitioned at time @p now. */
    bool
    partitioned(std::uint32_t src, std::uint32_t dst, Tick now) const
    {
        for (const Partition &p : partitions_) {
            if (now < p.from || now >= p.until)
                continue;
            bool fwd = matches(p.a, src) && matches(p.b, dst);
            bool rev = matches(p.a, dst) && matches(p.b, src);
            if (fwd || rev)
                return true;
        }
        return false;
    }

    /**
     * Judge one transfer attempt from @p src to @p dst at time
     * @p now. Draws from the seeded Rng (call order is deterministic
     * because the simulator is).
     */
    Verdict
    judge(std::uint32_t src, std::uint32_t dst, Tick now)
    {
        Verdict v;
        if (partitioned(src, dst, now)) {
            v.drop = true;
            cPartitionDrops_->add();
            return v;
        }
        if (cfg_.dropRate > 0.0 && rng_.chance(cfg_.dropRate)) {
            v.drop = true;
            cDrops_->add();
            return v;
        }
        if (cfg_.corruptRate > 0.0 && rng_.chance(cfg_.corruptRate)) {
            v.corrupt = true;
            cCorruptions_->add();
        }
        if (cfg_.delayRate > 0.0 && rng_.chance(cfg_.delayRate)) {
            v.delay = static_cast<Tick>(rng_.between(
                static_cast<std::uint64_t>(cfg_.delayMin),
                static_cast<std::uint64_t>(cfg_.delayMax)));
            cDelays_->add();
        }
        return v;
    }

    /**
     * Order-free variant of judge() for the sharded engine: the
     * verdict is a pure function of (plan seed, src, dst, @p key) —
     * @p key is the caller's per-(src,dst) transfer sequence number —
     * so it is identical for any partitioning, thread count, or
     * judging order. Const and counter-free (different shards judge
     * concurrently); callers account drops/corruptions/delays in
     * their own per-shard stats, using Verdict::partition to split
     * partition hits from stochastic drops. The stochastic process is
     * a different (but equally deterministic) sample path than the
     * sequential judge() stream — serial and sharded runs of the same
     * FaultConfig are each bit-reproducible, but not against each
     * other; golden cross-checks therefore always compare sharded vs
     * sharded (shards=1 included).
     */
    Verdict
    judgeKeyed(std::uint32_t src, std::uint32_t dst, Tick now,
               std::uint64_t key) const
    {
        Verdict v;
        if (partitioned(src, dst, now)) {
            v.drop = true;
            v.partition = true;
            return v;
        }
        KeyedRng rng(cfg_.seed, src, dst, key);
        if (cfg_.dropRate > 0.0 && rng.chance(cfg_.dropRate)) {
            v.drop = true;
            return v;
        }
        if (cfg_.corruptRate > 0.0 && rng.chance(cfg_.corruptRate))
            v.corrupt = true;
        if (cfg_.delayRate > 0.0 && rng.chance(cfg_.delayRate))
            v.delay = static_cast<Tick>(rng.between(
                static_cast<std::uint64_t>(cfg_.delayMin),
                static_cast<std::uint64_t>(cfg_.delayMax)));
        return v;
    }

    /** Order-free corruptInPlace (see judgeKeyed): byte flips are a
     *  pure function of (plan seed, @p key). */
    void
    corruptKeyed(std::span<std::uint8_t> data, std::uint64_t key) const
    {
        if (data.empty())
            return;
        KeyedRng rng(cfg_.seed ^ 0xc0ffeeull, key);
        std::uint64_t flips = 1 + rng.below(4);
        for (std::uint64_t i = 0; i < flips; ++i) {
            std::uint64_t pos = rng.below(data.size());
            data[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
        }
    }

    /** Flip 1–4 random bytes of @p data in place (deterministic, from
     *  the plan's Rng; XOR with a non-zero mask guarantees a change). */
    void
    corruptInPlace(std::span<std::uint8_t> data)
    {
        if (data.empty())
            return;
        std::uint64_t flips = 1 + rng_.below(4);
        for (std::uint64_t i = 0; i < flips; ++i) {
            std::uint64_t pos = rng_.below(data.size());
            data[pos] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
        }
    }

    /** Injection counters (drops / corruptions / delays /
     *  partition_drops). */
    sim::StatSet &stats() { return stats_; }

  private:
    struct Partition
    {
        std::uint32_t a;
        std::uint32_t b;
        Tick from;
        Tick until;
    };

    static bool
    matches(std::uint32_t pattern, std::uint32_t node)
    {
        return pattern == kAnyNode || pattern == node;
    }

    FaultConfig cfg_;
    Rng rng_;
    std::vector<Partition> partitions_;
    StatSet stats_;

    /** Per-judged-transfer counters, resolved once at
     *  construction (declared after stats_). */
    Counter *cPartitionDrops_;
    Counter *cDrops_;
    Counter *cCorruptions_;
    Counter *cDelays_;
};

} // namespace lynx::sim

#endif // LYNX_SIM_FAULT_HH

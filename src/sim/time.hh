/**
 * @file
 * Simulated-time primitives.
 *
 * The simulator counts time in integer nanosecond ticks. All model
 * code expresses durations through the helpers below so that the
 * underlying resolution can be changed in one place.
 */

#ifndef LYNX_SIM_TIME_HH
#define LYNX_SIM_TIME_HH

#include <cstdint>

namespace lynx::sim {

/** Simulated time, in nanoseconds since simulation start. */
using Tick = std::uint64_t;

/** A duration that never elapses; used as an "infinity" sentinel. */
constexpr Tick maxTick = ~Tick(0);

/** @return @p n nanoseconds expressed in ticks. */
constexpr Tick
nanoseconds(std::uint64_t n)
{
    return n;
}

/** @return @p n microseconds expressed in ticks. */
constexpr Tick
microseconds(std::uint64_t n)
{
    return n * 1000;
}

/** @return @p n milliseconds expressed in ticks. */
constexpr Tick
milliseconds(std::uint64_t n)
{
    return n * 1000 * 1000;
}

/** @return @p n seconds expressed in ticks. */
constexpr Tick
seconds(std::uint64_t n)
{
    return n * 1000 * 1000 * 1000;
}

/** @return tick count @p t converted to (fractional) microseconds. */
constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / 1000.0;
}

/** @return tick count @p t converted to (fractional) milliseconds. */
constexpr double
toMilliseconds(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

/** @return tick count @p t converted to (fractional) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

namespace literals {

/** Nanosecond literal: 500_ns. */
constexpr Tick operator""_ns(unsigned long long n) { return nanoseconds(n); }
/** Microsecond literal: 30_us. */
constexpr Tick operator""_us(unsigned long long n) { return microseconds(n); }
/** Millisecond literal: 2_ms. */
constexpr Tick operator""_ms(unsigned long long n) { return milliseconds(n); }
/** Second literal: 20_s. */
constexpr Tick operator""_s(unsigned long long n) { return seconds(n); }

} // namespace literals

} // namespace lynx::sim

#endif // LYNX_SIM_TIME_HH

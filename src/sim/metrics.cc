#include "metrics.hh"

#include <algorithm>
#include <ostream>

namespace lynx::sim {

std::string
MetricsRegistry::add(const std::string &path, const StatSet &stats)
{
    std::string unique = path;
    int suffix = 2;
    auto taken = [&](const std::string &p) {
        return std::any_of(entries_.begin(), entries_.end(),
                           [&](const Entry &e) { return e.path == p; });
    };
    while (taken(unique))
        unique = path + "#" + std::to_string(suffix++);
    entries_.push_back(Entry{unique, &stats});
    return unique;
}

void
MetricsRegistry::remove(const StatSet &stats)
{
    std::erase_if(entries_,
                  [&](const Entry &e) { return e.stats == &stats; });
}

std::vector<std::pair<std::string, const StatSet *>>
MetricsRegistry::entries() const
{
    std::vector<std::pair<std::string, const StatSet *>> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.emplace_back(e.path, e.stats);
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    return out;
}

std::uint64_t
MetricsRegistry::aggregateCounter(const std::string &prefix,
                                  const std::string &name) const
{
    std::uint64_t total = 0;
    for (const Entry &e : entries_)
        if (e.path.starts_with(prefix))
            total += e.stats->counterValue(name);
    return total;
}

void
MetricsRegistry::dump(std::ostream &os) const
{
    for (const auto &[path, stats] : entries())
        stats->dump(os, path + ".");
}

namespace {

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Emit one "path":{counters, histograms} JSON object member. */
void
jsonStatSet(std::ostream &os, const std::string &path, const StatSet &stats)
{
    os << "\"" << jsonEscape(path) << "\":{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : stats.counters()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":" << counter.value();
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, hist] : stats.histograms()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(name) << "\":{\"count\":" << hist.count()
           << ",\"min\":" << hist.min() << ",\"max\":" << hist.max()
           << ",\"mean\":" << hist.mean()
           << ",\"p50\":" << hist.percentile(50)
           << ",\"p99\":" << hist.percentile(99) << "}";
    }
    os << "}}";
}

} // namespace

void
MetricsRegistry::json(std::ostream &os) const
{
    os << "{";
    bool firstSet = true;
    for (const auto &[path, stats] : entries()) {
        if (!firstSet)
            os << ",";
        firstSet = false;
        jsonStatSet(os, path, *stats);
    }
    os << "}\n";
}

namespace {

/** Strip a registry-generated duplicate suffix ("#2", "#3", ...) so
 *  the merged snapshot is independent of *which* registry a fixed
 *  path's duplicates landed in. Two machines both registering
 *  "lynx.runtime" produce {"lynx.runtime", "lynx.runtime#2"} when
 *  they share a registry but {"lynx.runtime", "lynx.runtime"} across
 *  two shards — canonicalizing makes both merge to one summed set. */
std::string
canonicalPath(const std::string &path)
{
    const std::size_t hash = path.rfind('#');
    if (hash == std::string::npos || hash + 1 >= path.size())
        return path;
    for (std::size_t i = hash + 1; i < path.size(); ++i)
        if (path[i] < '0' || path[i] > '9')
            return path;
    return path.substr(0, hash);
}

} // namespace

std::map<std::string, StatSet>
mergeRegistries(const std::vector<const MetricsRegistry *> &regs,
                const std::string &excludePrefix)
{
    std::map<std::string, StatSet> out;
    for (const MetricsRegistry *reg : regs) {
        for (const auto &[rawPath, stats] : reg->entries()) {
            const std::string path = canonicalPath(rawPath);
            if (!excludePrefix.empty() && path.starts_with(excludePrefix))
                continue;
            StatSet &dst = out[path];
            for (const auto &[name, c] : stats->counters())
                dst.counter(name).add(c.value());
            for (const auto &[name, h] : stats->histograms())
                dst.histogram(name).merge(h);
        }
    }
    return out;
}

void
mergedJson(std::ostream &os, const std::map<std::string, StatSet> &merged)
{
    os << "{";
    bool firstSet = true;
    for (const auto &[path, stats] : merged) {
        if (!firstSet)
            os << ",";
        firstSet = false;
        jsonStatSet(os, path, stats);
    }
    os << "}\n";
}

} // namespace lynx::sim

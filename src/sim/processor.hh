/**
 * @file
 * A CPU core as a serially-shared simulation resource.
 *
 * Model code charges work to a core with co_await core.exec(cost):
 * the task queues FIFO for the core, holds it for the scaled cost,
 * and releases it. Costs are expressed in *reference* nanoseconds
 * (time the work takes on a baseline Xeon core); slower processors
 * (e.g. Bluefield's ARM A72) scale them with speedFactor, and
 * cache-contention models scale them dynamically with contention().
 */

#ifndef LYNX_SIM_PROCESSOR_HH
#define LYNX_SIM_PROCESSOR_HH

#include <memory>
#include <string>
#include <vector>

#include "co.hh"
#include "simulator.hh"
#include "sync.hh"
#include "time.hh"

namespace lynx::sim {

/** One CPU core: runs at most one piece of work at a time. */
class Core
{
  public:
    /**
     * @param sim owning simulator.
     * @param name diagnostic name, e.g. "bluefield.arm3".
     * @param speedFactor multiplier applied to reference costs
     *        (>1 means slower than the reference Xeon core).
     */
    Core(Simulator &sim, std::string name, double speedFactor = 1.0)
        : sim_(sim), name_(std::move(name)), speedFactor_(speedFactor),
          busy_(sim, 1)
    {}

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return static speed multiplier. */
    double speedFactor() const { return speedFactor_; }

    /** @return dynamic contention multiplier (≥1). */
    double contention() const { return contention_; }

    /** Set the dynamic contention multiplier (LLC model hook). */
    void
    setContention(double factor)
    {
        LYNX_ASSERT(factor >= 1.0, "contention factor below 1");
        contention_ = factor;
    }

    /** @return total ticks this core has spent executing work. */
    Tick busyTime() const { return busyTime_; }

    /** @return fraction of [0, elapsed] spent busy. */
    double
    utilization(Tick elapsed) const
    {
        return elapsed ? static_cast<double>(busyTime_) /
                             static_cast<double>(elapsed)
                       : 0.0;
    }

    /** @return ticks that @p referenceCost takes on this core now. */
    Tick
    scaledCost(Tick referenceCost) const
    {
        return static_cast<Tick>(static_cast<double>(referenceCost) *
                                 speedFactor_ * contention_);
    }

    /**
     * Execute @p referenceCost worth of work on this core: queue FIFO
     * behind earlier work, occupy the core for the scaled duration.
     */
    Co<void>
    exec(Tick referenceCost)
    {
        co_await busy_.acquire();
        Tick cost = scaledCost(referenceCost);
        busyTime_ += cost;
        co_await sleep(cost);
        busy_.release();
    }

    /**
     * Execute work and then run @p fn while still holding the core
     * (for operations whose effect must be atomic with the charge).
     */
    template <typename Fn>
    Co<void>
    execThen(Tick referenceCost, Fn fn)
    {
        co_await busy_.acquire();
        Tick cost = scaledCost(referenceCost);
        busyTime_ += cost;
        co_await sleep(cost);
        fn();
        busy_.release();
    }

  private:
    Simulator &sim_;
    std::string name_;
    double speedFactor_;
    double contention_ = 1.0;
    Tick busyTime_ = 0;
    Semaphore busy_;
};

/** A named group of identical cores (a socket or an SNIC complex). */
class CorePool
{
  public:
    /** Create @p n cores named "<prefix>.<i>". */
    CorePool(Simulator &sim, const std::string &prefix, std::size_t n,
             double speedFactor = 1.0)
    {
        for (std::size_t i = 0; i < n; ++i) {
            cores_.push_back(std::make_unique<Core>(
                sim, prefix + "." + std::to_string(i), speedFactor));
        }
    }

    /** @return number of cores. */
    std::size_t size() const { return cores_.size(); }

    /** @return core @p i. */
    Core &operator[](std::size_t i) { return *cores_.at(i); }
    const Core &operator[](std::size_t i) const { return *cores_.at(i); }

    /** Set the contention multiplier on every core. */
    void
    setContention(double factor)
    {
        for (auto &c : cores_)
            c->setContention(factor);
    }

  private:
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace lynx::sim

#endif // LYNX_SIM_PROCESSOR_HH

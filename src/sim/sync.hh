/**
 * @file
 * Synchronization primitives for coroutine tasks: counting semaphore,
 * countdown latch, and a level-triggered gate.
 */

#ifndef LYNX_SIM_SYNC_HH
#define LYNX_SIM_SYNC_HH

#include <cstddef>

#include "ring.hh"
#include "simulator.hh"
#include "task.hh"

namespace lynx::sim {

/**
 * Counting semaphore with FIFO handoff. A released permit goes to the
 * longest-waiting task, so acquisition order is fair and
 * deterministic.
 */
class Semaphore
{
  public:
    Semaphore(Simulator &sim, std::size_t initial)
        : sim_(sim), count_(initial)
    {}

    Semaphore(const Semaphore &) = delete;
    Semaphore &operator=(const Semaphore &) = delete;

    /** @return currently available permits. */
    std::size_t available() const { return count_; }

    /** @return number of tasks suspended in acquire(). */
    std::size_t waiters() const { return waiters_.size(); }

    /** Awaiter returned by acquire(). */
    struct AcquireAwaiter
    {
        Semaphore &sem;

        bool
        await_ready()
        {
            if (sem.count_ == 0)
                return false;
            --sem.count_;
            return true;
        }

        template <SimPromise P>
        void
        await_suspend(std::coroutine_handle<P> h)
        {
            sem.waiters_.push_back(h);
        }

        void await_resume() {}
    };

    /** @return awaitable taking one permit, suspending if none left. */
    AcquireAwaiter acquire() { return AcquireAwaiter{*this}; }

    /** Non-blocking acquire. */
    bool
    tryAcquire()
    {
        if (count_ == 0)
            return false;
        --count_;
        return true;
    }

    /** Return one permit, waking the longest waiter if any. */
    void
    release()
    {
        if (!waiters_.empty()) {
            // Permit is handed directly to the waiter; count stays 0.
            sim_.scheduleIn(Tick(0), waiters_.pop_front());
            return;
        }
        ++count_;
    }

  private:
    Simulator &sim_;
    std::size_t count_;
    RingDeque<std::coroutine_handle<>> waiters_;
};

/**
 * Single-use countdown latch: tasks block in wait() until the counter
 * reaches zero; afterwards wait() completes immediately.
 */
class Latch
{
  public:
    Latch(Simulator &sim, std::size_t count) : sim_(sim), count_(count) {}

    Latch(const Latch &) = delete;
    Latch &operator=(const Latch &) = delete;

    /** @return remaining count. */
    std::size_t count() const { return count_; }

    /** Decrement; wakes all waiters when the count hits zero. */
    void
    countDown(std::size_t n = 1)
    {
        LYNX_ASSERT(count_ >= n, "latch counted below zero");
        count_ -= n;
        if (count_ == 0) {
            while (!waiters_.empty())
                sim_.scheduleIn(Tick(0), waiters_.pop_front());
        }
    }

    struct WaitAwaiter
    {
        Latch &latch;
        bool await_ready() const { return latch.count_ == 0; }
        template <SimPromise P>
        void await_suspend(std::coroutine_handle<P> h)
        {
            latch.waiters_.push_back(h);
        }
        void await_resume() const {}
    };

    /** @return awaitable that completes once the count reaches zero. */
    WaitAwaiter wait() { return WaitAwaiter{*this}; }

  private:
    Simulator &sim_;
    std::size_t count_;
    RingDeque<std::coroutine_handle<>> waiters_;
};

/**
 * Level-triggered gate. While closed, waiters suspend; open() releases
 * all of them and lets subsequent waits pass through until close() is
 * called again. Useful for modelling doorbells and "data ready" flags.
 */
class Gate
{
  public:
    explicit Gate(Simulator &sim, bool open = false)
        : sim_(sim), open_(open)
    {}

    Gate(const Gate &) = delete;
    Gate &operator=(const Gate &) = delete;

    /** @return whether the gate is currently open. */
    bool isOpen() const { return open_; }

    /** Open the gate, waking every waiter. */
    void
    open()
    {
        if (open_)
            return;
        open_ = true;
        while (!waiters_.empty())
            sim_.scheduleIn(Tick(0), waiters_.pop_front());
    }

    /** Close the gate; subsequent waits suspend again. */
    void close() { open_ = false; }

    struct WaitAwaiter
    {
        Gate &gate;
        bool await_ready() const { return gate.open_; }
        template <SimPromise P>
        void await_suspend(std::coroutine_handle<P> h)
        {
            gate.waiters_.push_back(h);
        }
        void await_resume() const {}
    };

    /** @return awaitable that completes while the gate is open. */
    WaitAwaiter wait() { return WaitAwaiter{*this}; }

  private:
    Simulator &sim_;
    bool open_;
    RingDeque<std::coroutine_handle<>> waiters_;
};

} // namespace lynx::sim

#endif // LYNX_SIM_SYNC_HH

#include "shard.hh"

#include <algorithm>
#include <barrier>
#include <thread>
#include <tuple>

#include "logging.hh"
#include "metrics.hh"

namespace lynx::sim {

namespace {

/** The shard entered on this thread via ShardedSim::Scope, else -1. */
thread_local int tlsShard = -1;

} // namespace

ShardedSim::ShardedSim(unsigned shards, unsigned threads)
{
    LYNX_ASSERT(shards >= 1, "need at least one shard");
    if (threads == 0) {
        const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
        threads = std::min(shards, hw);
    }
    threads_ = std::min(threads, shards);
    shards_.reserve(shards);
    for (unsigned s = 0; s < shards; ++s) {
        shards_.push_back(std::make_unique<ShardState>());
        shards_.back()->pool.setRemoteAllowed(true);
    }
    cWindows_ = &shardStats_.counter("windows");
    cBarrierStalls_ = &shardStats_.counter("barrier_stalls");
    cCrossMsgs_ = &shardStats_.counter("cross_msgs");
    cStagedRecords_ = &shardStats_.counter("staged_records");
    shards_[0]->sim.metrics().add("sim.shard", shardStats_);
}

ShardedSim::~ShardedSim()
{
    shards_[0]->sim.metrics().remove(shardStats_);
    // Staged/mailboxed records still hold EventFns (payload pointers,
    // spilled captures); destroy them while every arena is alive so
    // owner-routed frees resolve. Simulator teardown (coroutine frame
    // frees, possibly cross-arena) runs next via shards_'s dtor, and
    // each Pool absorbs its remote stack last, in its own dtor.
    for (auto &st : shards_) {
        st->staged.clear();
        st->mailbox.clear();
    }
}

ShardedSim::Scope::Scope(ShardedSim &ss, unsigned s)
    : prevShard_(tlsShard), pool_(ss.pool(s))
{
    tlsShard = static_cast<int>(s);
}

ShardedSim::Scope::~Scope()
{
    tlsShard = prevShard_;
}

int
ShardedSim::currentShard()
{
    return tlsShard;
}

void
ShardedSim::constrainLookahead(Tick wire)
{
    LYNX_ASSERT(!running_, "lookahead is fixed while a run is in flight");
    LYNX_ASSERT(wire > 0, "zero lookahead would serialize every tick");
    lookahead_ = std::min(lookahead_, wire);
}

void
ShardedSim::post(unsigned dstShard, Tick due, std::uint64_t a,
                 std::uint64_t b, std::uint64_t c, EventFn fn)
{
    Record r{due, a, b, c, std::move(fn)};
    if (static_cast<int>(dstShard) == tlsShard) {
        // Same-shard post: stage directly — same bucket, same sorted
        // drain as a cross-thread arrival, so ordering at the
        // destination tick is partition-invariant.
        stage(dstShard, std::move(r));
        return;
    }
    LYNX_DEBUG_ASSERT(tlsShard >= 0,
                      "post() from outside any shard scope");
    LYNX_DEBUG_ASSERT(due >=
                          state(static_cast<unsigned>(tlsShard)).sim.now() +
                              lookahead_,
                      "post() inside the lookahead horizon");
    crossMsgs_.fetch_add(1, std::memory_order_relaxed);
    ShardState &dst = state(dstShard);
    std::lock_guard<std::mutex> g(dst.mailboxMu);
    dst.mailbox.push_back(std::move(r));
}

void
ShardedSim::stage(unsigned s, Record r)
{
    ShardState &st = state(s);
    LYNX_DEBUG_ASSERT(r.due > st.sim.now(),
                      "staged record due at or before the shard clock");
    auto [it, fresh] = st.staged.try_emplace(r.due);
    if (fresh) {
        // First record for this tick: arm the pre-lane drain that
        // fires before any normal event of the tick.
        const Tick due = r.due;
        st.sim.schedulePre(due, [this, s] { drain(s); });
    }
    it->second.push_back(std::move(r));
}

void
ShardedSim::drain(unsigned s)
{
    ShardState &st = state(s);
    auto it = st.staged.begin();
    LYNX_ASSERT(it != st.staged.end() && it->first == st.sim.now(),
                "staging drain fired at the wrong tick");
    // Detach the bucket before executing: a record's callback may
    // stage new (strictly later) ticks, which must not invalidate it.
    std::vector<Record> recs = std::move(it->second);
    st.staged.erase(it);
    std::sort(recs.begin(), recs.end(),
              [](const Record &x, const Record &y) {
                  return std::tie(x.a, x.b, x.c) < std::tie(y.a, y.b, y.c);
              });
#if LYNX_DEBUG_ASSERTS_ENABLED
    for (std::size_t i = 1; i < recs.size(); ++i)
        LYNX_ASSERT(std::tie(recs[i - 1].a, recs[i - 1].b, recs[i - 1].c) !=
                        std::tie(recs[i].a, recs[i].b, recs[i].c),
                    "duplicate staging key — ordering would depend on "
                    "arrival order");
#endif
    stagedRecords_.fetch_add(recs.size(), std::memory_order_relaxed);
    for (Record &r : recs)
        r.fn.invokeAndReset();
}

void
ShardedSim::mergeMailbox(unsigned s)
{
    ShardState &st = state(s);
    std::vector<Record> posts;
    {
        std::lock_guard<std::mutex> g(st.mailboxMu);
        posts.swap(st.mailbox);
    }
    for (Record &r : posts)
        stage(s, std::move(r));
}

Tick
ShardedSim::windowEndFrom(Tick start) const
{
    const Tick end = (lookahead_ >= maxTick - start) ? maxTick
                                                     : start + lookahead_;
    return std::min(end, deadline_ + 1);
}

Tick
ShardedSim::runUntil(Tick deadline)
{
    LYNX_ASSERT(!running_, "runUntil() is not reentrant");
    LYNX_ASSERT(deadline < maxTick, "deadline must leave headroom");
    const Tick now0 = shards_[0]->sim.now();
#if LYNX_DEBUG_ASSERTS_ENABLED
    for (auto &st : shards_)
        LYNX_ASSERT(st->sim.now() == now0, "shard clocks diverged");
#endif
    LYNX_ASSERT(deadline >= now0, "deadline is in the past");
    running_ = true;
    deadline_ = deadline;
    windowEnd_ = windowEndFrom(now0);
    done_ = false;

    const unsigned T = threads_;
    const unsigned K = shards();

    // The completion step runs on exactly one thread while every other
    // worker is parked in the barrier, and the barrier orders it
    // against all window work — plain members are safe here.
    auto onWindow = [this, K]() noexcept {
        ++windows_;
        arrived_.store(0, std::memory_order_relaxed);
        Tick lb = maxTick;
        for (unsigned s = 0; s < K; ++s) {
            ShardState &st = *shards_[s];
            lb = std::min(lb, st.sim.nextPendingLowerBound());
            std::lock_guard<std::mutex> g(st.mailboxMu);
            for (const Record &r : st.mailbox)
                lb = std::min(lb, r.due);
        }
        if (lb > deadline_) {
            // Drained. One final catch-up window advances every clock
            // to the deadline (runUntil semantics), then we are done.
            if (windowEnd_ == deadline_ + 1) {
                done_ = true;
                return;
            }
            windowEnd_ = deadline_ + 1;
            return;
        }
        // Skip idle stretches: the next window starts where work
        // actually exists, never earlier than the last window's end.
        windowEnd_ = windowEndFrom(std::max(windowEnd_, lb));
    };
    std::barrier bar(static_cast<std::ptrdiff_t>(T), onWindow);

    auto worker = [this, &bar, T, K](unsigned tid) {
        for (;;) {
            // windowEnd_ is exclusive: runUntil is inclusive of its
            // deadline, so each shard executes [.., windowEnd_ - 1].
            const Tick end = windowEnd_;
            for (unsigned s = tid; s < K; s += T) {
                Scope scope(*this, s);
                ShardState &st = *shards_[s];
                st.pool.absorbRemote();
                mergeMailbox(s);
                st.sim.runUntil(end - 1);
            }
            if (arrived_.fetch_add(1, std::memory_order_relaxed) + 1 < T)
                barrierStalls_.fetch_add(1, std::memory_order_relaxed);
            bar.arrive_and_wait();
            if (done_)
                return;
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(T - 1);
    for (unsigned t = 1; t < T; ++t)
        pool.emplace_back(worker, t);
    worker(0);
    for (std::thread &t : pool)
        t.join();

    running_ = false;
    flushStats();
    return shards_[0]->sim.now();
}

void
ShardedSim::flushStats()
{
    cWindows_->add(windows_ - flushedWindows_);
    flushedWindows_ = windows_;
    const std::uint64_t stalls =
        barrierStalls_.load(std::memory_order_relaxed);
    cBarrierStalls_->add(stalls - flushedStalls_);
    flushedStalls_ = stalls;
    const std::uint64_t cross = crossMsgs_.load(std::memory_order_relaxed);
    cCrossMsgs_->add(cross - flushedCross_);
    flushedCross_ = cross;
    const std::uint64_t staged =
        stagedRecords_.load(std::memory_order_relaxed);
    cStagedRecords_->add(staged - flushedStaged_);
    flushedStaged_ = staged;
}

std::vector<const MetricsRegistry *>
ShardedSim::registries() const
{
    std::vector<const MetricsRegistry *> out;
    out.reserve(shards_.size());
    for (const auto &st : shards_)
        out.push_back(&st->sim.metrics());
    return out;
}

} // namespace lynx::sim

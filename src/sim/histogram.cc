#include "histogram.hh"

#include "logging.hh"

namespace lynx::sim {

namespace {

// 64 - subBucketBits doubling ranges on top of the linear range.
constexpr std::size_t bucketCount = (64 - 5) * 32 + 32;

} // namespace

Histogram::Histogram() : buckets_(bucketCount, 0) {}

std::size_t
Histogram::indexOf(std::uint64_t value)
{
    if (value < subBuckets)
        return static_cast<std::size_t>(value);
    // value lies in [2^h, 2^(h+1)) with h >= subBucketBits. The top
    // subBucketBits+1 bits select the linear sub-bucket.
    const int h = std::bit_width(value) - 1;
    const int shift = h - subBucketBits;
    const std::uint64_t sub = (value >> shift) - subBuckets;
    return subBuckets + static_cast<std::size_t>(shift) * subBuckets +
           static_cast<std::size_t>(sub);
}

std::uint64_t
Histogram::upperEdge(std::size_t index)
{
    if (index < subBuckets)
        return index;
    const std::size_t shift = (index - subBuckets) / subBuckets;
    const std::uint64_t sub = (index - subBuckets) % subBuckets;
    return ((subBuckets + sub + 1) << shift) - 1;
}

void
Histogram::record(std::uint64_t value)
{
    record(value, 1);
}

void
Histogram::record(std::uint64_t value, std::uint64_t n)
{
    if (n == 0)
        return;
    const std::size_t idx = indexOf(value);
    LYNX_ASSERT(idx < buckets_.size(), "histogram index out of range");
    buckets_[idx] += n;
    if (count_ == 0 || value < min_)
        min_ = value;
    if (count_ == 0 || value > max_)
        max_ = value;
    count_ += n;
    sum_ += static_cast<double>(value) * static_cast<double>(n);
}

void
Histogram::merge(const Histogram &other)
{
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (other.count_) {
        if (count_ == 0 || other.min_ < min_)
            min_ = other.min_;
        if (count_ == 0 || other.max_ > max_)
            max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    buckets_.assign(buckets_.size(), 0);
    count_ = 0;
    min_ = 0;
    max_ = 0;
    sum_ = 0.0;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    // The lowest rank lands in the bucket containing min_, whose upper
    // edge can exceed the exact recorded minimum by the ~3% bucket
    // width; answer p=0 exactly and clamp everything to [min_, max_].
    if (p <= 0.0)
        return min_;
    if (p > 100.0)
        p = 100.0;
    // Rank of the requested percentile, at least 1.
    std::uint64_t rank =
        static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank) {
            std::uint64_t edge = upperEdge(i);
            return edge > max_ ? max_ : edge < min_ ? min_ : edge;
        }
    }
    return max_;
}

} // namespace lynx::sim

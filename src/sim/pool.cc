#include "pool.hh"

#include <algorithm>

#include "logging.hh"

namespace lynx::sim {

namespace {

/** The thread-current pool; instance() falls back to the process-wide
 *  pool when no PoolScope is active on this thread. */
thread_local Pool *tlsPool = nullptr;

} // namespace

Pool &
Pool::instance() noexcept
{
    if (tlsPool)
        return *tlsPool;
    // Leak-free: function-local static is destroyed at exit, after
    // (namespace-scope) simulators, and returns every slab.
    static Pool pool;
    return pool;
}

Pool *
Pool::exchangeCurrent(Pool *next) noexcept
{
    Pool *prev = tlsPool;
    tlsPool = next;
    return prev;
}

Pool::~Pool()
{
    absorbRemote();
    for (void *slab : slabs_)
        ::operator delete(slab);
}

void *
Pool::allocate(std::size_t n)
{
    if (n == 0)
        n = 1;
#if defined(LYNX_POOL_PASSTHROUGH)
    // Sanitizer lane: no recycling, so ASan sees every lifetime (and
    // TSan only ever sees the thread-safe system allocator).
    auto *h = static_cast<Header *>(::operator new(n + kHeaderSize));
    h->cls = kOversizeClass;
    h->magic = kMagic;
    h->owner = 0;
    ++stats_.oversize;
    return h + 1;
#else
    if (n > kMaxBlockSize) {
        auto *h = static_cast<Header *>(::operator new(n + kHeaderSize));
        h->cls = kOversizeClass;
        h->magic = kMagic;
        h->owner = 0;
        ++stats_.oversize;
        return h + 1;
    }
    const std::size_t cls = classIndex(n);
    void *body;
    if (FreeNode *node = freeLists_[cls]) {
        freeLists_[cls] = node->next;
        ++stats_.freelistHits;
        body = node;
    } else {
        // Before carving a fresh slab, reclaim blocks other shards
        // freed back to us since the last window.
        absorbRemote();
        if (FreeNode *node = freeLists_[cls]) {
            freeLists_[cls] = node->next;
            ++stats_.freelistHits;
            body = node;
        } else {
            body = carveSlab(cls);
            ++stats_.freshBlocks;
        }
    }
    auto *h = static_cast<Header *>(body) - 1;
    h->cls = static_cast<std::uint32_t>(cls);
    h->magic = kMagic;
    h->owner = reinterpret_cast<std::uint64_t>(this);
    return body;
#endif
}

void
Pool::deallocate(void *p) noexcept
{
    if (!p)
        return;
    auto *h = static_cast<Header *>(p) - 1;
    LYNX_DEBUG_ASSERT(h->magic == kMagic,
                      "Pool::deallocate: bad block (double free or "
                      "foreign pointer)");
    h->magic = 0;
    if (h->cls == kOversizeClass) {
        ::operator delete(h);
        return;
    }
    auto *owner = reinterpret_cast<Pool *>(h->owner);
    auto *node = static_cast<FreeNode *>(p);
    if (owner == this) {
        node->next = freeLists_[h->cls];
        freeLists_[h->cls] = node;
        return;
    }
    // Cross-pool free (a message payload crossing shards): park the
    // block on the owner's remote stack. Only legal between pools of
    // one sharded arena group — in a serial run a foreign owner means
    // a corrupted header or a stray pointer.
    LYNX_DEBUG_ASSERT(owner && owner->remoteAllowed(),
                      "Pool::deallocate: cross-pool free outside a "
                      "sharded arena group");
    owner->remoteFree(node);
}

void
Pool::remoteFree(FreeNode *node) noexcept
{
    node->next = remote_.load(std::memory_order_relaxed);
    while (!remote_.compare_exchange_weak(node->next, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
    }
}

void
Pool::absorbRemote() noexcept
{
    FreeNode *node = remote_.exchange(nullptr, std::memory_order_acquire);
    while (node) {
        FreeNode *next = node->next;
        auto *h = reinterpret_cast<Header *>(node) - 1;
        LYNX_DEBUG_ASSERT(h->cls < kClasses,
                          "Pool::absorbRemote: corrupt remote block");
        node->next = freeLists_[h->cls];
        freeLists_[h->cls] = node;
        ++stats_.remoteFrees;
        node = next;
    }
}

void *
Pool::carveSlab(std::size_t cls)
{
    const std::size_t stride = kClassSizes[cls] + kHeaderSize;
    // At least 64 KiB per slab, and at least 8 blocks of the class.
    const std::size_t count = std::max<std::size_t>(8, (64 * 1024) / stride);
    const std::size_t bytes = count * stride;
    auto *base = static_cast<unsigned char *>(::operator new(bytes));
    slabs_.push_back(base);
    ++stats_.slabs;
    stats_.bytesReserved += bytes;
    // Block 0 is returned to the caller; the rest go onto the free
    // list in address order.
    for (std::size_t i = 1; i < count; ++i) {
        auto *node = reinterpret_cast<FreeNode *>(base + i * stride +
                                                  kHeaderSize);
        node->next = freeLists_[cls];
        freeLists_[cls] = node;
    }
    return base + kHeaderSize;
}

} // namespace lynx::sim

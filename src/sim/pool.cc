#include "pool.hh"

#include <algorithm>

#include "logging.hh"

namespace lynx::sim {

Pool &
Pool::instance() noexcept
{
    // Leak-free: function-local static is destroyed at exit, after
    // (namespace-scope) simulators, and returns every slab.
    static Pool pool;
    return pool;
}

Pool::~Pool()
{
    for (void *slab : slabs_)
        ::operator delete(slab);
}

void *
Pool::allocate(std::size_t n)
{
    if (n == 0)
        n = 1;
#if defined(LYNX_POOL_PASSTHROUGH)
    // Sanitizer lane: no recycling, so ASan sees every lifetime.
    auto *h = static_cast<Header *>(::operator new(n + kHeaderSize));
    h->cls = kOversizeClass;
    h->magic = kMagic;
    ++stats_.oversize;
    return h + 1;
#else
    if (n > kMaxBlockSize) {
        auto *h = static_cast<Header *>(::operator new(n + kHeaderSize));
        h->cls = kOversizeClass;
        h->magic = kMagic;
        ++stats_.oversize;
        return h + 1;
    }
    const std::size_t cls = classIndex(n);
    void *body;
    if (FreeNode *node = freeLists_[cls]) {
        freeLists_[cls] = node->next;
        ++stats_.freelistHits;
        body = node;
    } else {
        body = carveSlab(cls);
        ++stats_.freshBlocks;
    }
    auto *h = static_cast<Header *>(body) - 1;
    h->cls = static_cast<std::uint32_t>(cls);
    h->magic = kMagic;
    return body;
#endif
}

void
Pool::deallocate(void *p) noexcept
{
    if (!p)
        return;
    auto *h = static_cast<Header *>(p) - 1;
    LYNX_DEBUG_ASSERT(h->magic == kMagic,
                      "Pool::deallocate: bad block (double free or "
                      "foreign pointer)");
    h->magic = 0;
    if (h->cls == kOversizeClass) {
        ::operator delete(h);
        return;
    }
    auto *node = static_cast<FreeNode *>(p);
    node->next = freeLists_[h->cls];
    freeLists_[h->cls] = node;
}

void *
Pool::carveSlab(std::size_t cls)
{
    const std::size_t stride = kClassSizes[cls] + kHeaderSize;
    // At least 64 KiB per slab, and at least 8 blocks of the class.
    const std::size_t count = std::max<std::size_t>(8, (64 * 1024) / stride);
    const std::size_t bytes = count * stride;
    auto *base = static_cast<unsigned char *>(::operator new(bytes));
    slabs_.push_back(base);
    ++stats_.slabs;
    stats_.bytesReserved += bytes;
    // Block 0 is returned to the caller; the rest go onto the free
    // list in address order.
    for (std::size_t i = 1; i < count; ++i) {
        auto *node = reinterpret_cast<FreeNode *>(base + i * stride +
                                                  kHeaderSize);
        node->next = freeLists_[cls];
        freeLists_[cls] = node;
    }
    return base + kHeaderSize;
}

} // namespace lynx::sim

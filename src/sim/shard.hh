/**
 * @file
 * Deterministic parallel sharded simulation (conservative PDES).
 *
 * A ShardedSim partitions the world by machine: each shard owns a
 * full Simulator (timing wheel, ready ring, clock, metrics registry)
 * plus a private slab Pool, and shards execute on a small worker
 * thread pool in barrier-synchronized time windows of width
 *
 *     lookahead = min cross-shard wire latency
 *
 * (reported by the network layer via constrainLookahead()). Within a
 * window every shard runs its own event loop with zero added
 * synchronization; interactions between shards travel as *posted
 * records* — (dueTick, key, callback) tuples — through per-shard
 * staging queues. A record posted at time t is due no earlier than
 * t + lookahead, i.e. never inside the window that produced it, so a
 * single barrier per window suffices.
 *
 * Determinism argument (results are bit-identical for any shard or
 * thread count):
 *  - every record carries a topology-derived ordering key
 *    (srcNode, dstNode, per-pair seq) assigned by its producing
 *    shard's deterministic event loop — never an executor id;
 *  - all records due at tick T on a shard are collected into one
 *    staging bucket (whether they arrived through the cross-thread
 *    mailbox or from a same-shard post) and executed in sorted key
 *    order by a *pre-lane* drain event (Simulator::schedulePre) that
 *    fires before every normal event of tick T;
 *  - same-tick events of different machines inside one shard touch
 *    disjoint model state (machines only interact through posted
 *    records), so their interleaving is unobservable.
 *
 * The barrier's completion step also computes the next window from
 * min(nextPendingLowerBound) over all shards, so idle stretches cost
 * one empty window instead of ceil(idle/lookahead) of them.
 *
 * See DESIGN.md §11 for the full protocol and proof sketch.
 */

#ifndef LYNX_SIM_SHARD_HH
#define LYNX_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "event.hh"
#include "pool.hh"
#include "simulator.hh"
#include "stats.hh"
#include "time.hh"

namespace lynx::sim {

class MetricsRegistry;

/** K Simulators + K slab arenas, run in lockstep lookahead windows. */
class ShardedSim
{
  public:
    /**
     * @param shards number of shards (>= 1).
     * @param threads worker threads; 0 = min(shards, hardware
     *        concurrency). The mapping shard -> thread (s % threads)
     *        is static, so a shard's events always execute on the
     *        same thread. Thread count never affects results, only
     *        wall-clock.
     */
    explicit ShardedSim(unsigned shards, unsigned threads = 0);
    ~ShardedSim();

    ShardedSim(const ShardedSim &) = delete;
    ShardedSim &operator=(const ShardedSim &) = delete;

    unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
    unsigned threads() const { return threads_; }

    /** @return shard @p s's simulator (its components' event loop). */
    Simulator &shard(unsigned s) { return state(s).sim; }

    /** @return shard @p s's slab arena. */
    Pool &pool(unsigned s) { return state(s).pool; }

    /**
     * RAII: enter shard @p s on this thread — installs the shard's
     * pool as thread-current and makes post() treat @p s as the local
     * shard. Scenario code wraps each shard's component construction
     * (and start()) in a Scope so coroutine frames and payloads land
     * in the owning arena; the run loop enters it automatically for
     * each window.
     */
    class Scope
    {
      public:
        Scope(ShardedSim &ss, unsigned s);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        int prevShard_;
        PoolScope pool_;
    };

    /** @return the shard entered on this thread, or -1. */
    static int currentShard();

    /**
     * Tighten the lookahead: no post() may be due sooner than
     * @p wire ticks after the simulated time it is made at. Called at
     * topology construction (e.g. net::Network reports its minimum
     * cross-machine wire latency, and the CNP control delay when
     * congestion control is on). @pre not inside runUntil().
     */
    void constrainLookahead(Tick wire);

    Tick lookahead() const { return lookahead_; }

    /**
     * Execute @p fn on shard @p dstShard at exactly tick @p due,
     * ordered among all records due that tick on that shard by the
     * key (a, b, c) — which must be derived from topology + the
     * producer's deterministic state (e.g. srcNode, dstNode, per-pair
     * sequence number), never from shard/thread ids, and must be
     * unique per (shard, due). Callable from the posting shard's own
     * event loop only. @pre due >= now + lookahead().
     */
    void post(unsigned dstShard, Tick due, std::uint64_t a,
              std::uint64_t b, std::uint64_t c, EventFn fn);

    /**
     * Run every shard to @p deadline inclusive (events at exactly
     * @p deadline still fire; every clock ends at @p deadline), in
     * barrier-synchronized lookahead windows on the worker pool.
     * @return the final simulated time (== @p deadline).
     */
    Tick runUntil(Tick deadline);

    /**
     * Execution telemetry, registered as "sim.shard" on shard 0's
     * metrics registry: windows, barrier_stalls, cross_msgs,
     * staged_records. Wall-clock facts, not model state — they vary
     * with shard/thread count and are excluded from bit-exactness
     * comparisons.
     */
    StatSet &stats() { return shardStats_; }

    /** All shards' metrics registries (merge-on-dump input). */
    std::vector<const MetricsRegistry *> registries() const;

  private:
    /** One staged cross-shard (or canonicalized same-shard) action. */
    struct Record
    {
        Tick due;
        std::uint64_t a, b, c; ///< deterministic ordering key
        EventFn fn;
    };

    struct ShardState
    {
        Pool pool; ///< declared first: outlives sim + staged records
        Simulator sim;
        /** Records awaiting their due tick, drained by pre-lane
         *  events; a non-empty bucket implies an armed drain. */
        std::map<Tick, std::vector<Record>> staged;
        std::mutex mailboxMu;
        std::vector<Record> mailbox; ///< posts from other threads
    };

    ShardState &
    state(unsigned s)
    {
        LYNX_ASSERT(s < shards_.size(), "unknown shard ", s);
        return *shards_[s];
    }

    void stage(unsigned s, Record r);
    void drain(unsigned s);
    void mergeMailbox(unsigned s);
    Tick windowEndFrom(Tick start) const;
    void flushStats();

    std::vector<std::unique_ptr<ShardState>> shards_;
    unsigned threads_ = 1;
    Tick lookahead_ = maxTick;
    bool running_ = false;

    /** Window state, written only by the barrier completion step
     *  (or before threads launch) — the barrier orders every access. */
    Tick deadline_ = 0;
    Tick windowEnd_ = 0;
    bool done_ = false;
    std::uint64_t windows_ = 0;

    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<std::uint64_t> barrierStalls_{0};
    std::atomic<std::uint64_t> crossMsgs_{0};
    std::atomic<std::uint64_t> stagedRecords_{0};

    StatSet shardStats_;
    Counter *cWindows_;
    Counter *cBarrierStalls_;
    Counter *cCrossMsgs_;
    Counter *cStagedRecords_;
    std::uint64_t flushedWindows_ = 0;
    std::uint64_t flushedStalls_ = 0;
    std::uint64_t flushedCross_ = 0;
    std::uint64_t flushedStaged_ = 0;
};

} // namespace lynx::sim

#endif // LYNX_SIM_SHARD_HH

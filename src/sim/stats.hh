/**
 * @file
 * Lightweight named statistics for models and benchmarks.
 *
 * A StatSet is a string-keyed bag of counters and histograms that a
 * model exposes for its owner to read; benchmark harnesses print them
 * as the rows of the paper's tables.
 */

#ifndef LYNX_SIM_STATS_HH
#define LYNX_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "histogram.hh"

namespace lynx::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    /** Increase by @p n. */
    void add(std::uint64_t n = 1) { value_ += n; }

    /** @return current value. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Named collection of counters and histograms. */
class StatSet
{
  public:
    /** @return the counter called @p name, creating it on first use. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** @return the histogram called @p name, creating it on first use. */
    Histogram &histogram(const std::string &name) { return histograms_[name]; }

    /** @return counter value, or 0 when absent. */
    std::uint64_t
    counterValue(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** Reset every counter and histogram. */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : histograms_)
            kv.second.reset();
    }

    /** Dump a human-readable summary to @p os. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** @{
     *  @name Read-only iteration (metrics registry snapshots). */
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    /** @} */

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace lynx::sim

#endif // LYNX_SIM_STATS_HH

/**
 * @file
 * Category-gated debug tracing (gem5's DPRINTF, in spirit).
 *
 * Models call LYNX_TRACE(sim, "mqueue", "pushed seq ", seq); nothing
 * is formatted or printed unless the category was enabled, either
 * programmatically (sim::TraceControl::enable) or via the
 * LYNX_TRACE environment variable:
 *
 *     LYNX_TRACE=mqueue,rdma ./build/examples/quickstart
 *     LYNX_TRACE=all         ctest ...
 *
 * Lines carry the simulated timestamp:  [  123456ns] mqueue: ...
 */

#ifndef LYNX_SIM_TRACE_HH
#define LYNX_SIM_TRACE_HH

#include <string>
#include <vector>

#include "logging.hh"
#include "simulator.hh"

namespace lynx::sim {

/** Global trace-category switchboard. */
class TraceControl
{
  public:
    /** @return whether @p category is enabled. */
    static bool enabled(const std::string &category);

    /** Enable/disable @p category at runtime (tests). */
    static void enable(const std::string &category);
    static void disable(const std::string &category);

    /** Drop every programmatic enable (environment settings stay). */
    static void reset();

    /**
     * Parse a comma-separated category list as the LYNX_TRACE
     * environment variable does: whitespace around tokens is ignored
     * ("mqueue, rdma" enables both) and empty tokens are dropped.
     * Exposed so the env-parsing path is unit-testable.
     */
    static std::vector<std::string> parseCategories(const std::string &list);

    /** Emit one trace line (used by the macro; category pre-checked). */
    static void emit(Tick now, const std::string &category,
                     const std::string &message);
};

/** Trace @p ... under @p category with @p simulator's timestamp. */
#define LYNX_TRACE(simulator, category, ...)                                 \
    do {                                                                     \
        if (::lynx::sim::TraceControl::enabled(category)) {                  \
            ::lynx::sim::TraceControl::emit(                                 \
                (simulator).now(), category,                                 \
                ::lynx::sim::detail::concat(__VA_ARGS__));                   \
        }                                                                    \
    } while (0)

} // namespace lynx::sim

#endif // LYNX_SIM_TRACE_HH

/**
 * @file
 * Per-request span tracing (Dapper-style distributed tracing).
 *
 * A SpanCollector assigns each request a trace id that rides in
 * net::Message::traceId and gets *stamped* — never slept on — at each
 * pipeline hop: client NIC TX, SmartNIC ingress, dispatcher enqueue,
 * RDMA mqueue write, accelerator gio pop, app compute start/end,
 * forwarder TX and client RX. On finish() the stamps are folded into
 * per-stage Histograms (delta to the previous stamped stage), so the
 * stage deltas of one request sum exactly to its end-to-end latency
 * and benchmarks can print the paper's §6.2-style breakdown tables.
 *
 * Zero-cost discipline: the collector only records metadata. It never
 * schedules events, charges CPU, or changes message sizes, so enabling
 * it cannot move a single simulated timestamp — the golden-timestamp
 * tests assert this with stamping both off and on. Hot paths guard
 * every stamp behind one null-pointer check (Simulator::spans()).
 *
 * The RDMA slot format carries a 32-bit tag, not the 64-bit trace id,
 * and widening a slot would change serialization timing; stages on the
 * accelerator side of the mqueue therefore resolve the id through a
 * (ring identity, tag) side table maintained by bindTag()/unbindTag()
 * around the tag's allocate/release lifecycle.
 */

#ifndef LYNX_SIM_SPAN_HH
#define LYNX_SIM_SPAN_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "histogram.hh"
#include "pool.hh"
#include "time.hh"

namespace lynx::sim {

class Simulator;

/** Pipeline hops a request is stamped at, in pipeline order. */
enum class Stage : unsigned {
    ClientTx = 0,    ///< load generator hands the request to its NIC
    NicTx,           ///< client NIC done serializing, on the wire
    SnicIngress,     ///< SmartNIC runtime received it off the stack
    DispatchEnqueue, ///< dispatcher picked an mqueue and allocated a tag
    MqueueWrite,     ///< RDMA write into accelerator ring completed
    GioPop,          ///< accelerator-side gio observed the doorbell
    AppStart,        ///< app handler began computing
    AppEnd,          ///< app handler produced the response
    ForwarderTx,     ///< forwarder handed the response to the NIC
    ClientRx,        ///< load generator received the response
};

constexpr std::size_t kNumStages = 10;

/** @return short lower-case name of @p s ("nic_tx", "gio_pop", ...). */
const char *stageName(Stage s);

/** One request's stamps; maxTick marks a stage that never happened. */
struct RequestSpan
{
    std::uint64_t id = 0;

    /** Owning tenant (lynx/tenant.hh), 0 = untenanted. Tagged by
     *  the load generator right after begin(); exported in the
     *  Chrome trace args so per-tenant filtering works in
     *  Perfetto. Pure metadata, like everything span-side. */
    std::uint16_t tenant = 0;

    std::array<Tick, kNumStages> stamp;

    RequestSpan() { stamp.fill(maxTick); }

    bool stamped(Stage s) const
    {
        return stamp[static_cast<std::size_t>(s)] != maxTick;
    }
    Tick at(Stage s) const { return stamp[static_cast<std::size_t>(s)]; }
};

/**
 * Collects RequestSpans and aggregates them into per-stage latency
 * histograms. Construction installs the collector on the simulator
 * (Simulator::spans()); destruction uninstalls it.
 */
class SpanCollector
{
  public:
    explicit SpanCollector(Simulator &sim);
    ~SpanCollector();

    SpanCollector(const SpanCollector &) = delete;
    SpanCollector &operator=(const SpanCollector &) = delete;

    /** Open a span for a new request; stamps ClientTx. @return its id. */
    std::uint64_t begin(Tick now);

    /** Stamp @p stage of span @p id; first stamp wins (a response
     *  re-traversing the NIC must not overwrite the request's TX). */
    void stamp(std::uint64_t id, Stage stage, Tick now);

    /** Tag the live span @p id with its owning tenant (metadata
     *  only — never affects timing). */
    void setTenant(std::uint64_t id, std::uint16_t tenant);

    /**
     * @{
     * @name Tag side table
     * Accelerator-side hops only see the 32-bit slot tag; the ring is
     * identified by (memory object, ring base) so tags of different
     * mqueues never collide.
     */
    void bindTag(const void *mem, std::uint64_t base, std::uint32_t tag,
                 std::uint64_t id);
    void stampTag(const void *mem, std::uint64_t base, std::uint32_t tag,
                  Stage stage, Tick now);
    void unbindTag(const void *mem, std::uint64_t base, std::uint32_t tag);
    /** @} */

    /** Close span @p id: stamps ClientRx, folds the stage deltas into
     *  the histograms and retains the span for export. */
    void finish(std::uint64_t id, Tick now);

    /** @return spans opened / closed so far. */
    std::uint64_t started() const { return nextId_ - 1; }
    std::uint64_t finished() const { return finished_; }

    /** Delta from the previous *stamped* stage to @p s, over all
     *  finished spans (empty for Stage::ClientTx). */
    const Histogram &stageHistogram(Stage s) const
    {
        return stageHist_[static_cast<std::size_t>(s)];
    }

    /** End-to-end ClientTx -> ClientRx latency of finished spans. */
    const Histogram &totalHistogram() const { return totalHist_; }

    /** Finished spans retained for export (retention stops at the
     *  limit; overflow counted in droppedSpans()). */
    const std::vector<RequestSpan> &spans() const { return done_; }

    /** Cap on retained finished spans (default 100000). */
    void setRetainLimit(std::size_t n) { retainLimit_ = n; }
    std::uint64_t droppedSpans() const { return dropped_; }

    /**
     * @{
     * @name Chrome trace-event export
     * Writes {"traceEvents":[...]} with one complete ("ph":"X") event
     * per stage delta, ts/dur in microseconds, tid = request id —
     * loadable in Perfetto / chrome://tracing.
     */
    void writeChromeTrace(std::ostream &os) const;
    bool writeChromeTrace(const std::string &path) const;
    /** @} */

  private:
    /** One (ring identity, tag) -> trace id binding in the
     *  open-addressed table; mem == nullptr marks a free slot. */
    struct TagEntry
    {
        const void *mem = nullptr;
        std::uint64_t base = 0;
        std::uint32_t tag = 0;
        std::uint64_t id = 0;
    };

    /** Bound on spans begun but never finished (drops, timeouts). */
    static constexpr std::size_t kLiveLimit = 1 << 16;

    /** Initial live-slot ring capacity (doubles up to kLiveLimit). */
    static constexpr std::size_t kLiveInitial = 1 << 10;

    /** Initial tag-table capacity (doubles at 3/4 load). */
    static constexpr std::size_t kTagInitial = 64;

    /** @return the slot of live span @p id, or nullptr if it was
     *  never begun, already finished, or evicted. */
    RequestSpan *findLive(std::uint64_t id);

    /** Double the live ring and re-place open spans by id. */
    void growLive();

    static std::size_t tagHash(const void *mem, std::uint64_t base,
                               std::uint32_t tag);

    /** @return index of the tag entry, or the table size if absent. */
    std::size_t findTag(const void *mem, std::uint64_t base,
                        std::uint32_t tag) const;

    /** Backward-shift deletion of tag slot @p i (no tombstones). */
    void eraseTag(std::size_t i);

    void growTags();

    Simulator &sim_;
    std::uint64_t nextId_ = 1;
    std::uint64_t finished_ = 0;
    std::uint64_t dropped_ = 0;
    std::size_t retainLimit_ = 100000;

    /** Open spans, slotted by (id & capacity-1). Ids are sequential,
     *  so the ring is collision-free until more than capacity spans
     *  are open at once; it doubles up to kLiveLimit, after which a
     *  colliding begin() evicts the kLiveLimit-older span — the same
     *  memory bound the previous std::map kept by dropping its oldest
     *  entry, without a tree node allocation per request. id == 0
     *  marks a free slot. */
    std::vector<RequestSpan, PoolAllocator<RequestSpan>> live_;

    /** (ring identity, tag) -> id, linear-probed; sized power of 2. */
    std::vector<TagEntry, PoolAllocator<TagEntry>> tags_;
    std::size_t tagCount_ = 0;

    std::vector<RequestSpan> done_;
    std::array<Histogram, kNumStages> stageHist_;
    Histogram totalHist_;
};

} // namespace lynx::sim

#endif // LYNX_SIM_SPAN_HH

/**
 * @file
 * Message queue (mqueue) memory layout.
 *
 * An mqueue (paper §4.2–§4.3) is a pair of producer/consumer ring
 * buffers — RX (SNIC → accelerator) and TX (accelerator → SNIC) —
 * living in the *accelerator's* memory, plus two status registers:
 *
 *   [ RX ring: slots × slotBytes ]
 *   [ TX ring: slots × slotBytes ]
 *   [ rxCons u32 ]  written locally by the accelerator,
 *                   read by the SNIC via RDMA (lazy flow control)
 *   [ txCons u32 ]  written by the SNIC via RDMA after forwarding,
 *                   read locally by the accelerator
 *
 * Each slot carries its payload flush against a 16-byte metadata
 * trailer so that one contiguous, low-to-high RDMA write covers
 * payload + metadata + doorbell, with the doorbell bytes last — the
 * §5.1 "metadata and data coalescing" optimization, which is only
 * correct because the NIC DMA writes lower addresses first:
 *
 *   slot:  [ ...unused... | payload (len) | len u32 | tag u32 |
 *            err u32 | seq u32 ]                      ^doorbell
 *
 * The doorbell value is the 1-based running message count, so a
 * reused slot's stale doorbell (seq - slots) can never be confused
 * with a fresh one.
 */

#ifndef LYNX_LYNX_MQUEUE_HH
#define LYNX_LYNX_MQUEUE_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "pcie/memory.hh"
#include "sim/logging.hh"

namespace lynx::core {

/**
 * Reserved slot error status marking a repaired gap: when failover
 * re-routes a dead mqueue's traffic, RX slots whose RDMA write was
 * lost in a partition are rewritten on revival as zero-length
 * messages with this error code so the accelerator's strict-seq
 * consumption can advance past them. gio consumes such slots
 * internally (no application delivery, no response).
 */
constexpr std::uint32_t kSlotSkipErr = 0xDEAD5C1Bu;

/** Per-message metadata trailer (paper §5.1: "The metadata ...
 *  includes total message size, error status ... and notification
 *  register (doorbell) for the queue"). */
struct SlotMeta
{
    std::uint32_t len = 0;
    std::uint32_t tag = 0;
    std::uint32_t err = 0;
    /** Doorbell: 1-based message sequence number. */
    std::uint32_t seq = 0;

    static constexpr std::uint64_t bytes = 16;
};

/** Geometry of one mqueue inside a DeviceMemory region. */
struct MqueueLayout
{
    /** Offset of the mqueue region within the device memory. */
    std::uint64_t base = 0;

    /** Ring capacity in messages (each ring). */
    std::uint32_t slots = 16;

    /** Bytes per slot, metadata included. */
    std::uint32_t slotBytes = 2048;

    /** @return maximum payload per message. */
    std::uint32_t maxPayload() const { return slotBytes - SlotMeta::bytes; }

    /** @return total region footprint. */
    std::uint64_t
    totalBytes() const
    {
        return 2ull * slots * slotBytes + 8;
    }

    /** @return offset of RX slot @p i (i taken modulo the ring). */
    std::uint64_t
    rxSlot(std::uint64_t i) const
    {
        return base + (i % slots) * slotBytes;
    }

    /** @return offset of TX slot @p i. */
    std::uint64_t
    txSlot(std::uint64_t i) const
    {
        return base + (static_cast<std::uint64_t>(slots) + i % slots) *
                          slotBytes;
    }

    /** @return offset one past the end of RX slot @p i. */
    std::uint64_t rxSlotEnd(std::uint64_t i) const
    {
        return rxSlot(i) + slotBytes;
    }

    /** @return offset one past the end of TX slot @p i. */
    std::uint64_t txSlotEnd(std::uint64_t i) const
    {
        return txSlot(i) + slotBytes;
    }

    /** @return offset of the doorbell word of RX slot @p i. */
    std::uint64_t rxDoorbell(std::uint64_t i) const
    {
        return rxSlotEnd(i) - 4;
    }

    /** @return offset of the doorbell word of TX slot @p i. */
    std::uint64_t txDoorbell(std::uint64_t i) const
    {
        return txSlotEnd(i) - 4;
    }

    /** @return offset of the rxCons status register. */
    std::uint64_t
    rxConsOff() const
    {
        return base + 2ull * slots * slotBytes;
    }

    /** @return offset of the txCons status register. */
    std::uint64_t txConsOff() const { return rxConsOff() + 4; }

    /** @return offset of the whole RX ring (for watchpoints). */
    std::uint64_t rxRingOff() const { return base; }

    /** @return offset of the whole TX ring (for watchpoints). */
    std::uint64_t
    txRingOff() const
    {
        return base + static_cast<std::uint64_t>(slots) * slotBytes;
    }

    /** @return byte size of one ring. */
    std::uint64_t
    ringBytes() const
    {
        return static_cast<std::uint64_t>(slots) * slotBytes;
    }
};

/**
 * Serialize @p payload + @p meta as one contiguous buffer, metadata
 * (doorbell last) trailing the payload.
 */
inline std::vector<std::uint8_t>
encodeSlotWrite(std::span<const std::uint8_t> payload, SlotMeta meta)
{
    LYNX_DEBUG_ASSERT(payload.size() == meta.len,
                      "metadata length mismatch");
    std::vector<std::uint8_t> buf(payload.size() + SlotMeta::bytes);
    std::copy(payload.begin(), payload.end(), buf.begin());
    auto putU32 = [&](std::size_t off, std::uint32_t v) {
        buf[off] = static_cast<std::uint8_t>(v);
        buf[off + 1] = static_cast<std::uint8_t>(v >> 8);
        buf[off + 2] = static_cast<std::uint8_t>(v >> 16);
        buf[off + 3] = static_cast<std::uint8_t>(v >> 24);
    };
    std::size_t m = payload.size();
    putU32(m + 0, meta.len);
    putU32(m + 4, meta.tag);
    putU32(m + 8, meta.err);
    putU32(m + 12, meta.seq);
    return buf;
}

/** @return the in-memory start offset of a slot write for @p len
 *  bytes of payload ending at @p slotEnd. */
inline std::uint64_t
slotWriteOffset(std::uint64_t slotEnd, std::uint32_t len)
{
    return slotEnd - SlotMeta::bytes - len;
}

/** Read the metadata trailer of the slot ending at @p slotEnd. */
inline SlotMeta
readSlotMeta(const pcie::DeviceMemory &mem, std::uint64_t slotEnd)
{
    SlotMeta meta;
    meta.len = mem.readU32(slotEnd - 16);
    meta.tag = mem.readU32(slotEnd - 12);
    meta.err = mem.readU32(slotEnd - 8);
    meta.seq = mem.readU32(slotEnd - 4);
    return meta;
}

/** Read the payload of a slot whose metadata is @p meta. */
inline std::vector<std::uint8_t>
readSlotPayload(const pcie::DeviceMemory &mem, std::uint64_t slotEnd,
                const SlotMeta &meta)
{
    std::vector<std::uint8_t> out(meta.len);
    mem.read(slotWriteOffset(slotEnd, meta.len),
             std::span<std::uint8_t>(out));
    return out;
}

/** One message of a multi-slot batch write. */
struct SlotRecord
{
    std::span<const std::uint8_t> payload;
    SlotMeta meta;
};

namespace detail {

/** Shared body of encodeRxBatchSegment/encodeTxBatchSegment:
 *  serialize @p recs against the slot geometry returned by
 *  @p slotEndOf (absolute end offset of slot i). */
template <typename SlotEndFn>
inline std::pair<std::uint64_t, std::vector<std::uint8_t>>
encodeBatchSegment(const MqueueLayout &l, std::uint64_t firstSlot,
                   std::span<const SlotRecord> recs, SlotEndFn slotEndOf)
{
    LYNX_DEBUG_ASSERT(!recs.empty(), "empty batch segment");
    LYNX_DEBUG_ASSERT(firstSlot % l.slots + recs.size() <= l.slots,
                      "batch segment wraps the ring");
    std::uint64_t begin =
        slotWriteOffset(slotEndOf(firstSlot), recs[0].meta.len);
    std::uint64_t end = slotEndOf(firstSlot + recs.size() - 1);
    std::vector<std::uint8_t> buf(end - begin, 0);
    for (std::size_t j = 0; j < recs.size(); ++j) {
        const SlotRecord &r = recs[j];
        LYNX_DEBUG_ASSERT(r.payload.size() == r.meta.len,
                          "metadata length mismatch");
        std::uint64_t slotEnd = slotEndOf(firstSlot + j);
        std::size_t at = static_cast<std::size_t>(
            slotWriteOffset(slotEnd, r.meta.len) - begin);
        std::copy(r.payload.begin(), r.payload.end(), buf.begin() + at);
        auto putU32 = [&](std::size_t off, std::uint32_t v) {
            buf[off] = static_cast<std::uint8_t>(v);
            buf[off + 1] = static_cast<std::uint8_t>(v >> 8);
            buf[off + 2] = static_cast<std::uint8_t>(v >> 16);
            buf[off + 3] = static_cast<std::uint8_t>(v >> 24);
        };
        std::size_t m = at + r.payload.size();
        putU32(m + 0, r.meta.len);
        putU32(m + 4, r.meta.tag);
        putU32(m + 8, r.meta.err);
        putU32(m + 12, r.meta.seq);
    }
    return {begin, std::move(buf)};
}

} // namespace detail

/**
 * Serialize @p recs into ONE contiguous buffer covering RX slots
 * [firstSlot, firstSlot + recs.size()) — the batched variant of
 * encodeSlotWrite(). The buffer starts at the first record's payload
 * and ends at the last slot's doorbell, so a single low-to-high RDMA
 * write lands every payload, every metadata trailer, and finally the
 * trailing doorbell (the highest seq, covering the whole batch).
 * Inter-slot dead space (the unused head of slots 2..N) is
 * zero-filled; its serialization cost is the price of coalescing.
 *
 * @pre the segment does not wrap the ring:
 *      (firstSlot % slots) + recs.size() <= slots.
 * @return {target offset of the write, buffer}.
 */
inline std::pair<std::uint64_t, std::vector<std::uint8_t>>
encodeRxBatchSegment(const MqueueLayout &l, std::uint64_t firstSlot,
                     std::span<const SlotRecord> recs)
{
    return detail::encodeBatchSegment(
        l, firstSlot, recs,
        [&l](std::uint64_t i) { return l.rxSlotEnd(i); });
}

/**
 * TX-side twin of encodeRxBatchSegment: serialize @p recs into one
 * contiguous buffer covering TX slots [firstSlot, firstSlot +
 * recs.size()). Used by gio's sendBatch so one low-to-high local
 * write commits a whole run of response slots, every doorbell
 * landing after its payload and the batch's highest doorbell last —
 * the accelerator-side mirror of the §5.1 coalescing rule.
 *
 * @pre the segment does not wrap the ring.
 * @return {target offset of the write, buffer}.
 */
inline std::pair<std::uint64_t, std::vector<std::uint8_t>>
encodeTxBatchSegment(const MqueueLayout &l, std::uint64_t firstSlot,
                     std::span<const SlotRecord> recs)
{
    return detail::encodeBatchSegment(
        l, firstSlot, recs,
        [&l](std::uint64_t i) { return l.txSlotEnd(i); });
}

/** Parse the metadata trailer from a full-slot snapshot buffer. */
inline SlotMeta
parseSlotMeta(std::span<const std::uint8_t> slotBuf)
{
    auto getU32 = [&](std::size_t off) {
        return static_cast<std::uint32_t>(slotBuf[off]) |
               (static_cast<std::uint32_t>(slotBuf[off + 1]) << 8) |
               (static_cast<std::uint32_t>(slotBuf[off + 2]) << 16) |
               (static_cast<std::uint32_t>(slotBuf[off + 3]) << 24);
    };
    std::size_t end = slotBuf.size();
    SlotMeta meta;
    meta.len = getU32(end - 16);
    meta.tag = getU32(end - 12);
    meta.err = getU32(end - 8);
    meta.seq = getU32(end - 4);
    return meta;
}

/** Extract the payload from a full-slot snapshot buffer. */
inline std::vector<std::uint8_t>
parseSlotPayload(std::span<const std::uint8_t> slotBuf, const SlotMeta &meta)
{
    std::size_t start = slotBuf.size() - SlotMeta::bytes - meta.len;
    return {slotBuf.begin() + start,
            slotBuf.begin() + start + meta.len};
}

} // namespace lynx::core

#endif // LYNX_LYNX_MQUEUE_HH

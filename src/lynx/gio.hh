/**
 * @file
 * gio — the accelerator-side I/O library.
 *
 * This is the "lightweight I/O layer on top of mqueues" of paper
 * §4.3/§5.3: a few wrappers over the producer/consumer rings that
 * provide familiar recv/send calls with zero copy. It needs nothing
 * from the accelerator beyond local memory access (plus the ordering
 * guarantees discussed in §4.4), which is what makes Lynx portable:
 * the same class serves the GPU persistent kernels and the Intel VCA
 * integration (where the paper quotes "20 Lines of Code").
 *
 * Timing: every local poll/access costs `localLatency`; payload
 * construction costs `perByte`. Polling is "virtualized": instead of
 * spinning, the task parks on a Gate that a DeviceMemory watchpoint
 * opens when the SNIC's RDMA write lands, then pays the poll latency
 * it would have spent observing the doorbell.
 */

#ifndef LYNX_LYNX_GIO_HH
#define LYNX_LYNX_GIO_HH

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "lynx/mqueue.hh"
#include "pcie/memory.hh"
#include "sim/co.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/time.hh"

namespace lynx::core {

/** Accelerator-side timing parameters. */
struct GioConfig
{
    /** Local memory access/poll latency. */
    sim::Tick localLatency = sim::nanoseconds(200);

    /** Per-byte cost of reading/writing payload in local memory. */
    double perByte = 0.15;

    /** Consume multi-slot doorbells: when the SNIC lands a batched
     *  RX write, one doorbell poll discovers the whole run of ready
     *  slots; recv() drains them in one sweep (one poll latency, one
     *  consumer-register update) and serves the surplus from a local
     *  staging queue. Off (default) = one poll + one register write
     *  per message, exactly the unbatched behaviour. */
    bool rxBurst = false;
};

/** A message as seen by accelerator code. */
struct GioMessage
{
    std::vector<std::uint8_t> payload;

    /** Correlation tag; a response must echo the request's tag. */
    std::uint32_t tag = 0;

    /** Error status propagated by the SNIC (0 = none). */
    std::uint32_t err = 0;
};

/** One outgoing response of a sendBatch() call. */
struct GioTxItem
{
    /** Correlation tag echoed from the request. */
    std::uint32_t tag = 0;

    /** Response payload (referenced, not copied; must stay alive
     *  across the sendBatch await). */
    std::span<const std::uint8_t> payload;

    /** Error status to propagate (0 = none). */
    std::uint32_t err = 0;
};

/** Accelerator-side handle of one mqueue. */
class AccelQueue
{
  public:
    AccelQueue(sim::Simulator &sim, std::string name,
               pcie::DeviceMemory &mem, MqueueLayout layout,
               GioConfig cfg = {});

    AccelQueue(const AccelQueue &) = delete;
    AccelQueue &operator=(const AccelQueue &) = delete;

    ~AccelQueue();

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return the queue geometry. */
    const MqueueLayout &layout() const { return layout_; }

    /** Await the next request from the RX ring (zero-copy read of
     *  accelerator-local memory). */
    sim::Co<GioMessage> recv();

    /** Non-blocking probe: @return whether recv() would not park. */
    bool rxReady() const;

    /**
     * Await at least one request, then drain up to @p maxN ready RX
     * slots in one sweep: one doorbell poll discovers the run of
     * consecutive ready slots, and one consumer-register update
     * acknowledges all of them (dynamic request batching, the
     * accelerator-side consumer of the SNIC's batched RDMA pushes).
     * Surplus ready slots beyond @p maxN stay staged for the next
     * call. Always returns 1..maxN messages.
     */
    sim::Co<std::vector<GioMessage>> recvBatch(std::size_t maxN);

    /**
     * Non-blocking variant of recvBatch(): pays one doorbell poll and
     * returns whatever is ready *now* (possibly nothing). Used by the
     * services' bounded-linger policy to top up a partial batch.
     */
    sim::Co<std::vector<GioMessage>> tryRecvBatch(std::size_t maxN);

    /**
     * Write a message into the TX ring and ring its doorbell.
     * Suspends while the TX ring is full (SNIC not yet forwarded).
     */
    sim::Co<void> send(std::uint32_t tag,
                       std::span<const std::uint8_t> payload,
                       std::uint32_t err = 0);

    /**
     * Commit @p items into consecutive TX slots under a single
     * contiguous low-to-high write per ring segment — payloads first,
     * each doorbell after its payload, the batch's highest doorbell
     * last — so the SNIC forwarder's batched TX drain observes the
     * whole run at once. Splits only at ring wrap or when flow
     * control runs out of credit (then stalls like send() until the
     * SNIC returns credit). Equivalent to send() per item, minus the
     * per-item poll and doorbell costs.
     */
    sim::Co<void> sendBatch(std::span<const GioTxItem> items);

    /** Messages received / sent counters. */
    sim::StatSet &stats() { return stats_; }

  private:
    /** Sweep the run of consecutive ready RX slots — at most
     *  @p maxSlots of them — into burst_ (@pre slot rxConsumed_ is
     *  ready and its poll latency has been paid). Repaired-gap skip
     *  slots are consumed without staging, so burst_ may stay empty. */
    sim::Co<void> sweepReady(std::uint64_t maxSlots);

    /** Pop up to @p maxN staged messages out of burst_, stamping
     *  AppStart on each (costs were paid at sweep time). */
    std::vector<GioMessage> popBurst(std::size_t maxN);

    /** Extend 32-bit register value @p observed onto 64-bit @p cache. */
    static std::uint64_t
    advance(std::uint64_t cache, std::uint32_t observed)
    {
        return cache + static_cast<std::uint32_t>(
                           observed - static_cast<std::uint32_t>(cache));
    }

    sim::Simulator &sim_;
    std::string name_;
    pcie::DeviceMemory &mem_;
    MqueueLayout layout_;
    GioConfig cfg_;

    std::uint64_t rxConsumed_ = 0;
    std::uint64_t txProduced_ = 0;
    std::uint64_t txConsCache_ = 0;

    /** Messages drained by a burst sweep but not yet recv()ed (their
     *  poll + copy costs were paid at sweep time). */
    std::deque<GioMessage> burst_;

    sim::Gate rxActivity_;
    sim::Gate txConsActivity_;
    std::uint64_t rxWatchId_ = 0;
    std::uint64_t txConsWatchId_ = 0;

    sim::StatSet stats_;

    /** Hot-path counters, resolved once at construction. */
    sim::Counter *cRxMsgs_;
    sim::Counter *cRxBytes_;
    sim::Counter *cRxBursts_;
    sim::Counter *cRxSkipped_;
    sim::Counter *cTxMsgs_;
    sim::Counter *cTxBytes_;
    sim::Counter *cTxStalls_;
    sim::Counter *cBatchRecvs_;
    sim::Counter *cBatchRecvMsgs_;
    sim::Counter *cBatchSends_;
    sim::Counter *cBatchSendMsgs_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_GIO_HH

/**
 * @file
 * The Message Forwarder / egress half of the Remote Message Queue
 * Manager (paper Fig. 4): "fetches the outgoing messages from the
 * message queues, and sends them to respective destinations" (§4.2).
 *
 * One Forwarder drives all the mqueues of one accelerator (they
 * share one RC QP, §5.1) on one SNIC core, round-robin. For server
 * mqueues the destination is the client recorded in the tag table;
 * for client mqueues it is the queue's fixed backend (§4.3).
 */

#ifndef LYNX_LYNX_FORWARDER_HH
#define LYNX_LYNX_FORWARDER_HH

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lynx/snic_mqueue.hh"
#include "lynx/tenant.hh"
#include "net/nic.hh"
#include "net/stack.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/span.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace lynx::core {

/** Where a client mqueue's outgoing messages go. */
struct BackendRoute
{
    net::Address dst;
    net::Protocol proto = net::Protocol::Tcp;

    /** SNIC-local port the backend's responses come back to. */
    std::uint16_t srcPort = 0;

    /** Deadline for the backend's response; expiry surfaces as a
     *  message with a non-zero error status in the client mqueue. */
    sim::Tick responseTimeout = sim::milliseconds(50);
};

/** Timing knobs of the forwarding loop. */
struct ForwarderConfig
{
    /** CPU per forwarded message (ring bookkeeping, tag lookup). */
    sim::Tick forwardCpu = sim::nanoseconds(500);

    /** Mean delay between a doorbell and the polling loop seeing it. */
    sim::Tick pollDiscovery = sim::nanoseconds(1000);

    /** CPU per managed queue per polling sweep (round-robin scan). */
    sim::Tick scanPerQueue = sim::nanoseconds(15);

    /** TX slots fetched per pipelined RDMA read
     *  (SnicMqueue::pollTxBatch); 1 = one post + fetch round per
     *  slot, exactly the unbatched behaviour. */
    int maxBatch = 1;

    /** Scale the discovery delay with observed idleness instead of
     *  the fixed pollDiscovery: a queue that just went quiet is
     *  re-polled after pollBackoffMin, a long-idle one after
     *  pollBackoffMax (delay = clamp(idle/2, min, max)). */
    bool adaptivePoll = false;
    sim::Tick pollBackoffMin = sim::nanoseconds(100);
    sim::Tick pollBackoffMax = sim::nanoseconds(1000);

    /** Drop (and count) responses whose tag no longer matches a
     *  live allocation instead of treating them as a fatal protocol
     *  violation. Required under failover: a revived accelerator may
     *  answer requests whose tags were drained and re-queued. Off
     *  (default) keeps the seed's strict assert. */
    bool tolerateStaleTags = false;

    /** Tenant table (lynx/tenant.hh). Non-null adds the forward-path
     *  half of the virtualization: batched TX drains are re-ordered
     *  into weighted-round-robin traffic classes, responses record
     *  per-tenant latency, and a retired tenant's responses are
     *  dropped-and-counted (tag-namespace generation check) instead
     *  of delivered stale. Null (default) = seed behaviour. */
    TenantTable *tenants = nullptr;
};

/** Egress pump for one accelerator's mqueues. */
class Forwarder
{
  public:
    /**
     * @param stack transport costs for client-facing responses.
     * @param backendStack transport costs for the persistent backend
     *        connections of client mqueues (§4.3).
     */
    Forwarder(sim::Simulator &sim, std::string name, sim::Core &core,
              net::Nic &nic, net::StackProfile stack,
              net::StackProfile backendStack, ForwarderConfig cfg)
        : sim_(sim), name_(std::move(name)), core_(core), nic_(nic),
          stack_(stack), backendStack_(backendStack), cfg_(cfg),
          activity_(sim),
          cResponses_(&stats_.counter("responses")),
          cBackendRequests_(&stats_.counter("backend_requests")),
          cBatchFetches_(&stats_.counter("batch_fetches")),
          cStaleResponses_(&stats_.counter("stale_responses")),
          cTenantStale_(&stats_.counter("tenant_stale_drops"))
    {
        queues_.reserve(8);
        sim_.metrics().add("lynx.fwd." + name_, stats_);
    }

    ~Forwarder() { sim_.metrics().remove(stats_); }

    Forwarder(const Forwarder &) = delete;
    Forwarder &operator=(const Forwarder &) = delete;

    /**
     * Manage @p mq. Server queues need @p servicePort (the response's
     * source port); client queues need @p route.
     */
    void
    addQueue(SnicMqueue *mq, std::uint16_t servicePort,
             std::optional<BackendRoute> route = std::nullopt)
    {
        LYNX_ASSERT((mq->kind() == MqueueKind::Client) == route.has_value(),
                    name_, ": route must be given iff queue is client kind");
        queues_.push_back(Entry{mq, servicePort, route, false});
        std::size_t idx = queues_.size() - 1;
        mq->setTxActivityHandler([this, idx] {
            queues_[idx].pendingTx = true;
            activity_.open();
        });
    }

    /** Spawn the forwarding loop. */
    void
    start()
    {
        LYNX_ASSERT(!started_, name_, ": started twice");
        started_ = true;
        sim::spawn(sim_, run());
    }

    sim::StatSet &stats() { return stats_; }

  private:
    struct Entry
    {
        SnicMqueue *mq;
        std::uint16_t servicePort;
        std::optional<BackendRoute> route;
        bool pendingTx;
    };

    sim::Task
    run()
    {
        sim::Tick lastProgress = sim_.now();
        for (;;) {
            activity_.close();
            bool progress = false;
            // Round-robin scan cost over every managed queue.
            co_await core_.exec(cfg_.scanPerQueue * queues_.size());
            for (auto &e : queues_) {
                if (!e.pendingTx)
                    continue;
                if (e.mq->transportDead()) {
                    // Leave the flag armed and skip: polling a dead
                    // transport would burn a retry budget per sweep.
                    // The monitor's revival nudgeTx() reopens the
                    // gate once the queue is reachable again.
                    continue;
                }
                e.pendingTx = false;
                if (cfg_.maxBatch > 1) {
                    // Drain in pipelined batches: one RDMA fetch per
                    // group of ready slots, one credit commit per
                    // drain (instead of post+fetch rounds per slot).
                    for (;;) {
                        auto batch = co_await e.mq->pollTxBatch(
                            core_,
                            static_cast<std::size_t>(cfg_.maxBatch));
                        if (batch.empty())
                            break;
                        progress = true;
                        cBatchFetches_->add();
                        if (cfg_.tenants && batch.size() > 1 &&
                            e.mq->kind() == MqueueKind::Server)
                            orderByTenantClass(*e.mq, batch);
                        for (auto &txm : batch)
                            co_await forwardOne(e, std::move(txm));
                    }
                } else {
                    for (;;) {
                        auto txm = co_await e.mq->pollTx(core_);
                        if (!txm)
                            break;
                        progress = true;
                        co_await forwardOne(e, std::move(*txm));
                    }
                }
                if (e.mq->txCommitPending())
                    co_await e.mq->commitTxCons(core_);
                if (e.mq->transportDead()) {
                    // The drain aborted on a dead transport, so the
                    // ring may still hold rung doorbells. Re-arm the
                    // pending flag; the health monitor's revival
                    // nudgeTx() reopens the activity gate, and the
                    // loop parks (not spins) until then.
                    e.pendingTx = true;
                }
            }
            if (progress) {
                lastProgress = sim_.now();
            } else {
                co_await activity_.wait();
                co_await sim::sleep(discoveryDelay(lastProgress));
            }
        }
    }

    /**
     * Re-order a fetched TX batch into WRR traffic classes: pick
     * tenants by weight (credit carried across batches in fwdWrr_,
     * so fairness holds over time, not just within one fetch) and
     * take each tenant's slots in their original FIFO order.
     * Untenanted slots ride in class 0 with weight 1. Pure
     * re-ordering — every slot is still forwarded (work-conserving),
     * only the egress order changes.
     */
    void
    orderByTenantClass(SnicMqueue &mq, std::vector<TxMessage> &batch)
    {
        scratchTenant_.clear();
        bool mixed = false;
        for (const TxMessage &txm : batch) {
            const ClientRef *c = mq.peekTag(txm.tag);
            TenantId t = c ? c->tenant : 0;
            if (!scratchTenant_.empty() && t != scratchTenant_.back())
                mixed = true;
            scratchTenant_.push_back(t);
        }
        if (!mixed)
            return; // single class: order already correct
        std::size_t span = 0;
        for (TenantId t : scratchTenant_)
            span = std::max<std::size_t>(span, t + 1);
        scratchOrder_.clear();
        scratchTaken_.assign(batch.size(), 0);
        for (std::size_t n = 0; n < batch.size(); ++n) {
            std::size_t t = fwdWrr_.pick(
                span, [&](std::size_t cls) -> std::int64_t {
                    for (std::size_t i = 0; i < batch.size(); ++i)
                        if (!scratchTaken_[i] &&
                            scratchTenant_[i] == cls)
                            return cfg_.tenants->weight(
                                static_cast<TenantId>(cls));
                    return 0;
                });
            for (std::size_t i = 0; i < batch.size(); ++i) {
                if (!scratchTaken_[i] && scratchTenant_[i] == t) {
                    scratchTaken_[i] = 1;
                    scratchOrder_.push_back(i);
                    break;
                }
            }
        }
        std::vector<TxMessage> reordered;
        reordered.reserve(batch.size());
        for (std::size_t i : scratchOrder_)
            reordered.push_back(std::move(batch[i]));
        batch = std::move(reordered);
    }

    /** Doorbell-to-discovery delay for the next poll round. */
    sim::Tick
    discoveryDelay(sim::Tick lastProgress) const
    {
        if (!cfg_.adaptivePoll)
            return cfg_.pollDiscovery;
        sim::Tick idle = sim_.now() - lastProgress;
        return std::clamp(idle / 2, cfg_.pollBackoffMin,
                          cfg_.pollBackoffMax);
    }

    sim::Co<void>
    forwardOne(Entry &e, TxMessage txm)
    {
        co_await core_.exec(cfg_.forwardCpu);
        net::Message out;
        out.payload = std::move(txm.payload);
        if (e.mq->kind() == MqueueKind::Server) {
            ClientRef client;
            if (cfg_.tolerateStaleTags) {
                auto c = e.mq->tryReleaseTag(txm.tag);
                if (!c) {
                    // A drained-and-re-queued request's original
                    // answer, arriving after failover: the client
                    // already gets (or got) the re-queued copy's
                    // response, so this one is dropped — duplicates
                    // and misdeliveries are both impossible.
                    cStaleResponses_->add();
                    co_return;
                }
                client = std::move(*c);
            } else {
                client = e.mq->releaseTag(txm.tag);
            }
            if (cfg_.tenants && client.tenant != 0) {
                if (!cfg_.tenants->finish(client.tenant,
                                          client.tenantGen,
                                          sim_.now() - client.sentAt)) {
                    // The tenant was retired while this request was
                    // in flight: its slot drained (counted in the
                    // table) but the response itself must never be
                    // delivered stale.
                    cTenantStale_->add();
                    co_return;
                }
            }
            out.tenant = client.tenant;
            out.src = net::Address{nic_.node(), e.servicePort};
            out.dst = client.addr;
            out.proto = client.proto;
            out.seq = client.seq;
            out.sentAt = client.sentAt;
            out.traceId = client.traceId;
            if (sim::SpanCollector *spans = sim_.spans())
                spans->stamp(out.traceId, sim::Stage::ForwarderTx,
                             sim_.now());
            cResponses_->add();
        } else {
            // Client mqueue: fixed backend destination; remember the
            // tag so the (in-order) response can be matched.
            e.mq->notePending(txm.tag,
                              sim_.now() + e.route->responseTimeout);
            out.src = net::Address{nic_.node(), e.route->srcPort};
            out.dst = e.route->dst;
            out.proto = e.route->proto;
            out.sentAt = sim_.now();
            cBackendRequests_->add();
        }
        const net::StackProfile &prof =
            e.mq->kind() == MqueueKind::Server ? stack_ : backendStack_;
        co_await core_.exec(
            prof.cost(out.proto, net::Dir::Send, out.size()));
        co_await nic_.send(std::move(out));
    }

    sim::Simulator &sim_;
    std::string name_;
    sim::Core &core_;
    net::Nic &nic_;
    net::StackProfile stack_;
    net::StackProfile backendStack_;
    ForwarderConfig cfg_;
    sim::Gate activity_;
    std::vector<Entry> queues_;
    bool started_ = false;

    /** Forward-path WRR state + scratch (reused across batches). */
    WrrPicker fwdWrr_;
    std::vector<TenantId> scratchTenant_;
    std::vector<std::size_t> scratchOrder_;
    std::vector<char> scratchTaken_;

    sim::StatSet stats_;

    /** Hot-path counters, resolved once at construction. */
    sim::Counter *cResponses_;
    sim::Counter *cBackendRequests_;
    sim::Counter *cBatchFetches_;
    sim::Counter *cStaleResponses_;
    sim::Counter *cTenantStale_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_FORWARDER_HH

#include "gio.hh"

#include <algorithm>

#include "sim/span.hh"

namespace lynx::core {

AccelQueue::AccelQueue(sim::Simulator &sim, std::string name,
                       pcie::DeviceMemory &mem, MqueueLayout layout,
                       GioConfig cfg)
    : sim_(sim), name_(std::move(name)), mem_(mem), layout_(layout),
      cfg_(cfg), rxActivity_(sim), txConsActivity_(sim)
{
    // Doorbells arrive via the SNIC's RDMA writes into the RX ring;
    // TX-ring credit returns arrive as RDMA writes to txCons.
    rxWatchId_ = mem_.watch(layout_.rxRingOff(), layout_.ringBytes(),
                            [this](auto, auto) { rxActivity_.open(); });
    txConsWatchId_ = mem_.watch(layout_.txConsOff(), 4,
                                [this](auto, auto) {
                                    txConsActivity_.open();
                                });

    cRxMsgs_ = &stats_.counter("rx_msgs");
    cRxBytes_ = &stats_.counter("rx_bytes");
    cRxBursts_ = &stats_.counter("rx_bursts");
    cRxSkipped_ = &stats_.counter("rx_skipped");
    cTxMsgs_ = &stats_.counter("tx_msgs");
    cTxBytes_ = &stats_.counter("tx_bytes");
    cTxStalls_ = &stats_.counter("tx_stalls");
    cBatchRecvs_ = &stats_.counter("batch.recvs");
    cBatchRecvMsgs_ = &stats_.counter("batch.recv_msgs");
    cBatchSends_ = &stats_.counter("batch.sends");
    cBatchSendMsgs_ = &stats_.counter("batch.send_msgs");

    sim_.metrics().add("gio." + name_, stats_);
}

AccelQueue::~AccelQueue()
{
    sim_.metrics().remove(stats_);
    mem_.unwatch(rxWatchId_);
    mem_.unwatch(txConsWatchId_);
}

bool
AccelQueue::rxReady() const
{
    if (!burst_.empty())
        return true;
    SlotMeta meta = readSlotMeta(mem_, layout_.rxSlotEnd(rxConsumed_));
    return meta.seq == static_cast<std::uint32_t>(rxConsumed_ + 1);
}

sim::Co<GioMessage>
AccelQueue::recv()
{
    // Burst-drained messages were fully paid for (poll, copy, register
    // update) at sweep time; handing one out is a register move.
    if (!burst_.empty()) {
        GioMessage msg = std::move(burst_.front());
        burst_.pop_front();
        if (sim::SpanCollector *spans = sim_.spans())
            spans->stampTag(&mem_, layout_.base, msg.tag,
                            sim::Stage::AppStart, sim_.now());
        co_return msg;
    }
    for (;;) {
        rxActivity_.close();
        // One poll of the doorbell word in local memory.
        co_await sim::sleep(cfg_.localLatency);
        std::uint64_t slotEnd = layout_.rxSlotEnd(rxConsumed_);
        SlotMeta meta = readSlotMeta(mem_, slotEnd);
        if (meta.seq == static_cast<std::uint32_t>(rxConsumed_ + 1)) {
            if (cfg_.rxBurst) {
                co_await sweepReady(layout_.slots);
                if (!burst_.empty()) {
                    GioMessage msg = std::move(burst_.front());
                    burst_.pop_front();
                    co_return msg;
                }
                // Every swept slot was a repaired-gap marker; keep
                // waiting for a real message.
                continue;
            }
            if (meta.err == kSlotSkipErr) {
                // Repaired failover gap (zero-length skip slot):
                // consume it internally — no application delivery,
                // no response — and advance the consumer register so
                // the SNIC's flow control sees the credit.
                ++rxConsumed_;
                mem_.writeU32(layout_.rxConsOff(),
                              static_cast<std::uint32_t>(rxConsumed_));
                co_await sim::sleep(cfg_.localLatency);
                cRxSkipped_->add();
                continue;
            }
            GioMessage msg;
            msg.tag = meta.tag;
            msg.err = meta.err;
            msg.payload = readSlotPayload(mem_, slotEnd, meta);
            if (sim::SpanCollector *spans = sim_.spans())
                spans->stampTag(&mem_, layout_.base, meta.tag,
                                sim::Stage::GioPop, sim_.now());
            co_await sim::sleep(static_cast<sim::Tick>(
                cfg_.perByte * static_cast<double>(meta.len)));
            ++rxConsumed_;
            // Update the consumer register (local write; the SNIC
            // reads it lazily over RDMA for flow control).
            mem_.writeU32(layout_.rxConsOff(),
                          static_cast<std::uint32_t>(rxConsumed_));
            co_await sim::sleep(cfg_.localLatency);
            cRxMsgs_->add();
            cRxBytes_->add(meta.len);
            if (sim::SpanCollector *spans = sim_.spans())
                spans->stampTag(&mem_, layout_.base, meta.tag,
                                sim::Stage::AppStart, sim_.now());
            co_return msg;
        }
        co_await rxActivity_.wait();
    }
}

std::vector<GioMessage>
AccelQueue::popBurst(std::size_t maxN)
{
    std::vector<GioMessage> out;
    out.reserve(std::min(maxN, burst_.size()));
    sim::SpanCollector *spans = sim_.spans();
    while (out.size() < maxN && !burst_.empty()) {
        GioMessage msg = std::move(burst_.front());
        burst_.pop_front();
        if (spans)
            spans->stampTag(&mem_, layout_.base, msg.tag,
                            sim::Stage::AppStart, sim_.now());
        out.push_back(std::move(msg));
    }
    return out;
}

sim::Co<std::vector<GioMessage>>
AccelQueue::recvBatch(std::size_t maxN)
{
    LYNX_ASSERT(maxN >= 1, name_, ": recvBatch of ", maxN, " messages");
    for (;;) {
        // Earlier sweeps may have staged more than their caller took.
        if (!burst_.empty())
            break;
        rxActivity_.close();
        // One doorbell poll discovers the whole run of ready slots.
        co_await sim::sleep(cfg_.localLatency);
        SlotMeta meta = readSlotMeta(mem_, layout_.rxSlotEnd(rxConsumed_));
        if (meta.seq == static_cast<std::uint32_t>(rxConsumed_ + 1)) {
            co_await sweepReady(maxN);
            if (!burst_.empty())
                break;
            // Every swept slot was a repaired-gap marker.
            continue;
        }
        co_await rxActivity_.wait();
    }
    std::vector<GioMessage> out = popBurst(maxN);
    cBatchRecvs_->add();
    cBatchRecvMsgs_->add(out.size());
    stats_.histogram("batch.recv_size").record(out.size());
    co_return out;
}

sim::Co<std::vector<GioMessage>>
AccelQueue::tryRecvBatch(std::size_t maxN)
{
    LYNX_ASSERT(maxN >= 1, name_, ": tryRecvBatch of ", maxN,
                " messages");
    if (burst_.empty()) {
        // One probe of the doorbell word; no parking.
        co_await sim::sleep(cfg_.localLatency);
        SlotMeta meta = readSlotMeta(mem_, layout_.rxSlotEnd(rxConsumed_));
        if (meta.seq == static_cast<std::uint32_t>(rxConsumed_ + 1))
            co_await sweepReady(maxN);
    }
    std::vector<GioMessage> out = popBurst(maxN);
    if (!out.empty()) {
        cBatchRecvs_->add();
        cBatchRecvMsgs_->add(out.size());
        stats_.histogram("batch.recv_size").record(out.size());
    }
    co_return out;
}

sim::Co<void>
AccelQueue::sweepReady(std::uint64_t maxSlots)
{
    // Multi-slot doorbell consumption: a batched SNIC write lands all
    // its doorbells atomically, so the run of consecutive ready slots
    // from rxConsumed_ is exactly the (tail of the) batch. The one
    // doorbell poll already paid by recv() discovered the whole run;
    // the sweep pays the payload copies and a single consumer-register
    // update for all of it. Repaired-gap markers (kSlotSkipErr) are
    // consumed but never staged for delivery.
    std::uint64_t drained = 0;
    std::uint64_t skipped = 0;
    std::uint64_t sweptBytes = 0;
    for (;;) {
        std::uint64_t slotEnd = layout_.rxSlotEnd(rxConsumed_ + drained);
        SlotMeta meta = readSlotMeta(mem_, slotEnd);
        if (meta.seq !=
            static_cast<std::uint32_t>(rxConsumed_ + drained + 1))
            break;
        if (meta.err == kSlotSkipErr) {
            ++skipped;
        } else {
            GioMessage msg;
            msg.tag = meta.tag;
            msg.err = meta.err;
            msg.payload = readSlotPayload(mem_, slotEnd, meta);
            if (sim::SpanCollector *spans = sim_.spans())
                spans->stampTag(&mem_, layout_.base, meta.tag,
                                sim::Stage::GioPop, sim_.now());
            sweptBytes += meta.len;
            burst_.push_back(std::move(msg));
        }
        if (++drained == std::min<std::uint64_t>(maxSlots, layout_.slots))
            break;
    }
    LYNX_ASSERT(drained > 0, name_, ": burst sweep found no doorbell");
    co_await sim::sleep(static_cast<sim::Tick>(
        cfg_.perByte * static_cast<double>(sweptBytes)));
    rxConsumed_ += drained;
    mem_.writeU32(layout_.rxConsOff(),
                  static_cast<std::uint32_t>(rxConsumed_));
    co_await sim::sleep(cfg_.localLatency);
    cRxMsgs_->add(drained - skipped);
    cRxBytes_->add(sweptBytes);
    cRxBursts_->add();
    if (skipped > 0)
        cRxSkipped_->add(skipped);
}

sim::Co<void>
AccelQueue::send(std::uint32_t tag, std::span<const std::uint8_t> payload,
                 std::uint32_t err)
{
    LYNX_ASSERT(payload.size() <= layout_.maxPayload(), name_,
                ": payload of ", payload.size(), " bytes exceeds slot");
    // The app hands over its response here: compute ends now (any
    // flow-control stall below is queueing, not compute).
    if (sim::SpanCollector *spans = sim_.spans())
        spans->stampTag(&mem_, layout_.base, tag, sim::Stage::AppEnd,
                        sim_.now());
    // Flow control: wait for TX-ring space (SNIC returns credit by
    // writing txCons after forwarding).
    for (;;) {
        txConsActivity_.close();
        co_await sim::sleep(cfg_.localLatency);
        txConsCache_ =
            advance(txConsCache_, mem_.readU32(layout_.txConsOff()));
        if (txProduced_ - txConsCache_ < layout_.slots)
            break;
        cTxStalls_->add();
        co_await txConsActivity_.wait();
    }

    SlotMeta meta;
    meta.len = static_cast<std::uint32_t>(payload.size());
    meta.tag = tag;
    meta.err = err;
    meta.seq = static_cast<std::uint32_t>(txProduced_ + 1);
    auto buf = encodeSlotWrite(payload, meta);

    co_await sim::sleep(
        cfg_.localLatency +
        static_cast<sim::Tick>(cfg_.perByte *
                               static_cast<double>(payload.size())));
    // One contiguous low-to-high write, doorbell bytes last; the
    // SNIC-side watchpoint on the TX ring wakes the forwarder.
    std::uint64_t slotEnd = layout_.txSlotEnd(txProduced_);
    mem_.write(slotWriteOffset(slotEnd, meta.len), buf);
    ++txProduced_;
    cTxMsgs_->add();
    cTxBytes_->add(meta.len);
}

sim::Co<void>
AccelQueue::sendBatch(std::span<const GioTxItem> items)
{
    if (items.empty())
        co_return;
    // The app hands over every response here: compute for the whole
    // batch ends now; what follows is commit cost and queueing.
    sim::SpanCollector *spans = sim_.spans();
    for (const GioTxItem &it : items) {
        LYNX_ASSERT(it.payload.size() <= layout_.maxPayload(), name_,
                    ": payload of ", it.payload.size(),
                    " bytes exceeds slot");
        if (spans)
            spans->stampTag(&mem_, layout_.base, it.tag,
                            sim::Stage::AppEnd, sim_.now());
    }
    std::vector<SlotRecord> recs;
    recs.reserve(items.size());
    std::size_t sent = 0;
    while (sent < items.size()) {
        // Flow control: wait for at least one TX-ring credit.
        for (;;) {
            txConsActivity_.close();
            co_await sim::sleep(cfg_.localLatency);
            txConsCache_ =
                advance(txConsCache_, mem_.readU32(layout_.txConsOff()));
            if (txProduced_ - txConsCache_ < layout_.slots)
                break;
            cTxStalls_->add();
            co_await txConsActivity_.wait();
        }
        // Take as many items as credit allows without wrapping the
        // ring: one contiguous write commits the whole segment.
        std::uint64_t credit =
            layout_.slots - (txProduced_ - txConsCache_);
        std::uint64_t untilWrap =
            layout_.slots - txProduced_ % layout_.slots;
        std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
            {items.size() - sent, credit, untilWrap}));
        recs.clear();
        std::uint64_t segBytes = 0;
        for (std::size_t j = 0; j < n; ++j) {
            const GioTxItem &it = items[sent + j];
            SlotMeta meta;
            meta.len = static_cast<std::uint32_t>(it.payload.size());
            meta.tag = it.tag;
            meta.err = it.err;
            meta.seq = static_cast<std::uint32_t>(txProduced_ + j + 1);
            recs.push_back({it.payload, meta});
            segBytes += it.payload.size();
        }
        auto [off, buf] =
            encodeTxBatchSegment(layout_, txProduced_, recs);
        co_await sim::sleep(
            cfg_.localLatency +
            static_cast<sim::Tick>(cfg_.perByte *
                                   static_cast<double>(segBytes)));
        // One contiguous low-to-high write: every payload, every
        // doorbell after its payload, the segment's highest doorbell
        // last. The SNIC-side TX-ring watchpoint wakes the forwarder
        // once for the whole segment.
        mem_.write(off, buf);
        txProduced_ += n;
        sent += n;
        cTxMsgs_->add(n);
        cTxBytes_->add(segBytes);
    }
    cBatchSends_->add();
    cBatchSendMsgs_->add(items.size());
    stats_.histogram("batch.send_size").record(items.size());
}

} // namespace lynx::core

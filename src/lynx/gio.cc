#include "gio.hh"

#include "sim/span.hh"

namespace lynx::core {

AccelQueue::AccelQueue(sim::Simulator &sim, std::string name,
                       pcie::DeviceMemory &mem, MqueueLayout layout,
                       GioConfig cfg)
    : sim_(sim), name_(std::move(name)), mem_(mem), layout_(layout),
      cfg_(cfg), rxActivity_(sim), txConsActivity_(sim)
{
    // Doorbells arrive via the SNIC's RDMA writes into the RX ring;
    // TX-ring credit returns arrive as RDMA writes to txCons.
    rxWatchId_ = mem_.watch(layout_.rxRingOff(), layout_.ringBytes(),
                            [this](auto, auto) { rxActivity_.open(); });
    txConsWatchId_ = mem_.watch(layout_.txConsOff(), 4,
                                [this](auto, auto) {
                                    txConsActivity_.open();
                                });

    cRxMsgs_ = &stats_.counter("rx_msgs");
    cRxBytes_ = &stats_.counter("rx_bytes");
    cRxBursts_ = &stats_.counter("rx_bursts");
    cTxMsgs_ = &stats_.counter("tx_msgs");
    cTxBytes_ = &stats_.counter("tx_bytes");
    cTxStalls_ = &stats_.counter("tx_stalls");

    sim_.metrics().add("gio." + name_, stats_);
}

AccelQueue::~AccelQueue()
{
    sim_.metrics().remove(stats_);
    mem_.unwatch(rxWatchId_);
    mem_.unwatch(txConsWatchId_);
}

bool
AccelQueue::rxReady() const
{
    if (!burst_.empty())
        return true;
    SlotMeta meta = readSlotMeta(mem_, layout_.rxSlotEnd(rxConsumed_));
    return meta.seq == static_cast<std::uint32_t>(rxConsumed_ + 1);
}

sim::Co<GioMessage>
AccelQueue::recv()
{
    // Burst-drained messages were fully paid for (poll, copy, register
    // update) at sweep time; handing one out is a register move.
    if (!burst_.empty()) {
        GioMessage msg = std::move(burst_.front());
        burst_.pop_front();
        if (sim::SpanCollector *spans = sim_.spans())
            spans->stampTag(&mem_, layout_.base, msg.tag,
                            sim::Stage::AppStart, sim_.now());
        co_return msg;
    }
    for (;;) {
        rxActivity_.close();
        // One poll of the doorbell word in local memory.
        co_await sim::sleep(cfg_.localLatency);
        std::uint64_t slotEnd = layout_.rxSlotEnd(rxConsumed_);
        SlotMeta meta = readSlotMeta(mem_, slotEnd);
        if (meta.seq == static_cast<std::uint32_t>(rxConsumed_ + 1)) {
            if (cfg_.rxBurst) {
                co_await sweepReady();
                if (!burst_.empty()) {
                    GioMessage msg = std::move(burst_.front());
                    burst_.pop_front();
                    co_return msg;
                }
                // Every swept slot was a repaired-gap marker; keep
                // waiting for a real message.
                continue;
            }
            if (meta.err == kSlotSkipErr) {
                // Repaired failover gap (zero-length skip slot):
                // consume it internally — no application delivery,
                // no response — and advance the consumer register so
                // the SNIC's flow control sees the credit.
                ++rxConsumed_;
                mem_.writeU32(layout_.rxConsOff(),
                              static_cast<std::uint32_t>(rxConsumed_));
                co_await sim::sleep(cfg_.localLatency);
                stats_.counter("rx_skipped").add();
                continue;
            }
            GioMessage msg;
            msg.tag = meta.tag;
            msg.err = meta.err;
            msg.payload = readSlotPayload(mem_, slotEnd, meta);
            if (sim::SpanCollector *spans = sim_.spans())
                spans->stampTag(&mem_, layout_.base, meta.tag,
                                sim::Stage::GioPop, sim_.now());
            co_await sim::sleep(static_cast<sim::Tick>(
                cfg_.perByte * static_cast<double>(meta.len)));
            ++rxConsumed_;
            // Update the consumer register (local write; the SNIC
            // reads it lazily over RDMA for flow control).
            mem_.writeU32(layout_.rxConsOff(),
                          static_cast<std::uint32_t>(rxConsumed_));
            co_await sim::sleep(cfg_.localLatency);
            cRxMsgs_->add();
            cRxBytes_->add(meta.len);
            if (sim::SpanCollector *spans = sim_.spans())
                spans->stampTag(&mem_, layout_.base, meta.tag,
                                sim::Stage::AppStart, sim_.now());
            co_return msg;
        }
        co_await rxActivity_.wait();
    }
}

sim::Co<void>
AccelQueue::sweepReady()
{
    // Multi-slot doorbell consumption: a batched SNIC write lands all
    // its doorbells atomically, so the run of consecutive ready slots
    // from rxConsumed_ is exactly the (tail of the) batch. The one
    // doorbell poll already paid by recv() discovered the whole run;
    // the sweep pays the payload copies and a single consumer-register
    // update for all of it. Repaired-gap markers (kSlotSkipErr) are
    // consumed but never staged for delivery.
    std::uint64_t drained = 0;
    std::uint64_t skipped = 0;
    std::uint64_t sweptBytes = 0;
    for (;;) {
        std::uint64_t slotEnd = layout_.rxSlotEnd(rxConsumed_ + drained);
        SlotMeta meta = readSlotMeta(mem_, slotEnd);
        if (meta.seq !=
            static_cast<std::uint32_t>(rxConsumed_ + drained + 1))
            break;
        if (meta.err == kSlotSkipErr) {
            ++skipped;
        } else {
            GioMessage msg;
            msg.tag = meta.tag;
            msg.err = meta.err;
            msg.payload = readSlotPayload(mem_, slotEnd, meta);
            if (sim::SpanCollector *spans = sim_.spans())
                spans->stampTag(&mem_, layout_.base, meta.tag,
                                sim::Stage::GioPop, sim_.now());
            sweptBytes += meta.len;
            burst_.push_back(std::move(msg));
        }
        if (++drained == layout_.slots)
            break;
    }
    LYNX_ASSERT(drained > 0, name_, ": burst sweep found no doorbell");
    co_await sim::sleep(static_cast<sim::Tick>(
        cfg_.perByte * static_cast<double>(sweptBytes)));
    rxConsumed_ += drained;
    mem_.writeU32(layout_.rxConsOff(),
                  static_cast<std::uint32_t>(rxConsumed_));
    co_await sim::sleep(cfg_.localLatency);
    cRxMsgs_->add(drained - skipped);
    cRxBytes_->add(sweptBytes);
    cRxBursts_->add();
    if (skipped > 0)
        stats_.counter("rx_skipped").add(skipped);
}

sim::Co<void>
AccelQueue::send(std::uint32_t tag, std::span<const std::uint8_t> payload,
                 std::uint32_t err)
{
    LYNX_ASSERT(payload.size() <= layout_.maxPayload(), name_,
                ": payload of ", payload.size(), " bytes exceeds slot");
    // The app hands over its response here: compute ends now (any
    // flow-control stall below is queueing, not compute).
    if (sim::SpanCollector *spans = sim_.spans())
        spans->stampTag(&mem_, layout_.base, tag, sim::Stage::AppEnd,
                        sim_.now());
    // Flow control: wait for TX-ring space (SNIC returns credit by
    // writing txCons after forwarding).
    for (;;) {
        txConsActivity_.close();
        co_await sim::sleep(cfg_.localLatency);
        txConsCache_ =
            advance(txConsCache_, mem_.readU32(layout_.txConsOff()));
        if (txProduced_ - txConsCache_ < layout_.slots)
            break;
        cTxStalls_->add();
        co_await txConsActivity_.wait();
    }

    SlotMeta meta;
    meta.len = static_cast<std::uint32_t>(payload.size());
    meta.tag = tag;
    meta.err = err;
    meta.seq = static_cast<std::uint32_t>(txProduced_ + 1);
    auto buf = encodeSlotWrite(payload, meta);

    co_await sim::sleep(
        cfg_.localLatency +
        static_cast<sim::Tick>(cfg_.perByte *
                               static_cast<double>(payload.size())));
    // One contiguous low-to-high write, doorbell bytes last; the
    // SNIC-side watchpoint on the TX ring wakes the forwarder.
    std::uint64_t slotEnd = layout_.txSlotEnd(txProduced_);
    mem_.write(slotWriteOffset(slotEnd, meta.len), buf);
    ++txProduced_;
    cTxMsgs_->add();
    cTxBytes_->add(meta.len);
}

} // namespace lynx::core

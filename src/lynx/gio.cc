#include "gio.hh"

namespace lynx::core {

AccelQueue::AccelQueue(sim::Simulator &sim, std::string name,
                       pcie::DeviceMemory &mem, MqueueLayout layout,
                       GioConfig cfg)
    : sim_(sim), name_(std::move(name)), mem_(mem), layout_(layout),
      cfg_(cfg), rxActivity_(sim), txConsActivity_(sim)
{
    // Doorbells arrive via the SNIC's RDMA writes into the RX ring;
    // TX-ring credit returns arrive as RDMA writes to txCons.
    rxWatchId_ = mem_.watch(layout_.rxRingOff(), layout_.ringBytes(),
                            [this](auto, auto) { rxActivity_.open(); });
    txConsWatchId_ = mem_.watch(layout_.txConsOff(), 4,
                                [this](auto, auto) {
                                    txConsActivity_.open();
                                });
}

AccelQueue::~AccelQueue()
{
    mem_.unwatch(rxWatchId_);
    mem_.unwatch(txConsWatchId_);
}

bool
AccelQueue::rxReady() const
{
    SlotMeta meta = readSlotMeta(mem_, layout_.rxSlotEnd(rxConsumed_));
    return meta.seq == static_cast<std::uint32_t>(rxConsumed_ + 1);
}

sim::Co<GioMessage>
AccelQueue::recv()
{
    for (;;) {
        rxActivity_.close();
        // One poll of the doorbell word in local memory.
        co_await sim::sleep(cfg_.localLatency);
        std::uint64_t slotEnd = layout_.rxSlotEnd(rxConsumed_);
        SlotMeta meta = readSlotMeta(mem_, slotEnd);
        if (meta.seq == static_cast<std::uint32_t>(rxConsumed_ + 1)) {
            GioMessage msg;
            msg.tag = meta.tag;
            msg.err = meta.err;
            msg.payload = readSlotPayload(mem_, slotEnd, meta);
            co_await sim::sleep(static_cast<sim::Tick>(
                cfg_.perByte * static_cast<double>(meta.len)));
            ++rxConsumed_;
            // Update the consumer register (local write; the SNIC
            // reads it lazily over RDMA for flow control).
            mem_.writeU32(layout_.rxConsOff(),
                          static_cast<std::uint32_t>(rxConsumed_));
            co_await sim::sleep(cfg_.localLatency);
            stats_.counter("rx_msgs").add();
            stats_.counter("rx_bytes").add(meta.len);
            co_return msg;
        }
        co_await rxActivity_.wait();
    }
}

sim::Co<void>
AccelQueue::send(std::uint32_t tag, std::span<const std::uint8_t> payload,
                 std::uint32_t err)
{
    LYNX_ASSERT(payload.size() <= layout_.maxPayload(), name_,
                ": payload of ", payload.size(), " bytes exceeds slot");
    // Flow control: wait for TX-ring space (SNIC returns credit by
    // writing txCons after forwarding).
    for (;;) {
        txConsActivity_.close();
        co_await sim::sleep(cfg_.localLatency);
        txConsCache_ =
            advance(txConsCache_, mem_.readU32(layout_.txConsOff()));
        if (txProduced_ - txConsCache_ < layout_.slots)
            break;
        stats_.counter("tx_stalls").add();
        co_await txConsActivity_.wait();
    }

    SlotMeta meta;
    meta.len = static_cast<std::uint32_t>(payload.size());
    meta.tag = tag;
    meta.err = err;
    meta.seq = static_cast<std::uint32_t>(txProduced_ + 1);
    auto buf = encodeSlotWrite(payload, meta);

    co_await sim::sleep(
        cfg_.localLatency +
        static_cast<sim::Tick>(cfg_.perByte *
                               static_cast<double>(payload.size())));
    // One contiguous low-to-high write, doorbell bytes last; the
    // SNIC-side watchpoint on the TX ring wakes the forwarder.
    std::uint64_t slotEnd = layout_.txSlotEnd(txProduced_);
    mem_.write(slotWriteOffset(slotEnd, meta.len), buf);
    ++txProduced_;
    stats_.counter("tx_msgs").add();
    stats_.counter("tx_bytes").add(meta.len);
}

} // namespace lynx::core

/**
 * @file
 * Calibration constants: every timing parameter of the reproduction
 * lives here, each justified by a measurement the paper itself
 * reports. Benchmarks and scenario builders reference these
 * constants; model code receives them through config structs and
 * never hard-codes timing.
 *
 * The reproduction targets the paper's *shape* (who wins, by what
 * factor, where crossovers fall) rather than absolute testbed
 * numbers; EXPERIMENTS.md records paper-vs-measured per figure.
 */

#ifndef LYNX_LYNX_CALIBRATION_HH
#define LYNX_LYNX_CALIBRATION_HH

#include "net/stack.hh"
#include "sim/time.hh"

namespace lynx::calibration {

using sim::microseconds;
using sim::nanoseconds;
using sim::Tick;

/*
 * ----- Network stacks (paper §5.1.1, §6.2, §6.3) -----
 *
 * "We employ VMA, a user-level networking library ... For
 * minimum-size UDP packets VMA reduces the processing latency by a
 * factor of 4 [on Bluefield]. The library is also efficient on the
 * host CPU resulting in 2x UDP latency reduction."
 *
 * Absolute levels are anchored on two paper numbers:
 *  - Fig. 8c: one Xeon core running Lynx saturates at 74 GPUs x
 *    3.5 Kreq/s = 259 Kreq/s  =>  ~3.9 us of CPU per request
 *    (stack rx+tx plus dispatch/forward overheads below);
 *  - Fig. 8c TCP: one Xeon core saturates at 7 GPUs = 24.5 Kreq/s
 *    =>  ~40 us of TCP stack work per request.
 */

/** VMA (kernel-bypass) stack on a Xeon core. */
inline net::StackProfile
vmaXeon()
{
    net::StackProfile p;
    p.udpRecv = nanoseconds(900);
    p.udpSend = nanoseconds(700);
    p.tcpRecv = microseconds(22);
    p.tcpSend = microseconds(18);
    p.perByte = 0.65;
    return p;
}

/** Linux kernel stack on a Xeon core (2x slower for UDP, §5.1.1). */
inline net::StackProfile
kernelXeon()
{
    net::StackProfile p = vmaXeon();
    p.udpRecv *= 2;
    p.udpSend *= 2;
    p.tcpRecv = static_cast<Tick>(p.tcpRecv * 1.5);
    p.tcpSend = static_cast<Tick>(p.tcpSend * 1.5);
    p.perByte = 2.0;
    return p;
}

/**
 * VMA stack on a Bluefield ARM A72 core.
 *
 * Anchors: Fig. 6 ("one needs 4 host CPU cores to match the
 * Bluefield performance" for 64 B requests => 7 ARM cores ~ 4 Xeon
 * cores => per-core base cost ~1.75x Xeon) and Fig. 8c (Bluefield
 * saturates at 102 GPUs x 3.5 K = 357 Kreq/s on ~800 B LeNet
 * requests => ~19.6 us/request across 7 cores; the difference to the
 * 64 B anchor is carried by the ARM's much slower per-byte copy
 * path). TCP: 15 GPUs => ~133 us/request across 7 cores (§6.3:
 * "ARM cores suffer from higher impact" under TCP).
 */
inline net::StackProfile
vmaBluefield()
{
    net::StackProfile p;
    p.udpRecv = nanoseconds(2400);
    p.udpSend = nanoseconds(1900);
    p.tcpRecv = microseconds(68);
    p.tcpSend = microseconds(60);
    p.perByte = 15.3;
    return p;
}

/** Kernel stack on Bluefield (4x slower UDP than VMA, §5.1.1). */
inline net::StackProfile
kernelBluefield()
{
    net::StackProfile p = vmaBluefield();
    p.udpRecv *= 4;
    p.udpSend *= 4;
    p.tcpRecv *= 2;
    p.tcpSend *= 2;
    p.perByte = 30.0;
    return p;
}

/*
 * ----- RDMA paths (paper §5.1) -----
 *
 * "enqueuing a single RDMA send request requires at least 4.8 usec
 * [from a GPU]" vs "IB RDMA requires less than 1 usec to invoke by
 * the CPU" — Lynx posts from the SNIC/CPU side, so the post cost is
 * the sub-microsecond one.
 */

/** CPU cost of posting one work request (ibv_post_send). */
constexpr Tick rdmaPostCost = nanoseconds(300);

/** Initiator NIC processing per RDMA op. */
constexpr Tick rdmaNicLatency = nanoseconds(600);

/** One-way PCIe peer-to-peer latency to a local accelerator. */
constexpr Tick rdmaLocalOneWay = nanoseconds(900);

/** Completion (ack) delay after delivery. */
constexpr Tick rdmaCompletionDelay = nanoseconds(900);

/** RDMA payload bandwidth, Gbit/s. */
constexpr double rdmaGbps = 50.0;

/**
 * Extra one-way latency to a *remote* accelerator through the
 * switch. Paper §6.3: "Using remote GPUs adds about 8 usec" of
 * end-to-end latency => ~4 us each way.
 */
constexpr Tick rdmaRemoteExtraOneWay = microseconds(4);

/*
 * ----- SNIC-side Lynx runtime costs -----
 *
 * Anchor (Fig. 7 discussion): with a zero-time GPU kernel the request
 * spends 14 us inside Lynx-on-Bluefield (UDP processing done ->
 * response ready) vs 11 us on the host CPU.
 */

/** Dispatcher CPU per message (tag alloc, ring mgmt) on Xeon. */
constexpr Tick dispatchCpuXeon = nanoseconds(300);

/** Dispatcher CPU per message on a Bluefield ARM core. */
constexpr Tick dispatchCpuArm = nanoseconds(1200);

/** Forwarder CPU per message (ring scan, tag lookup) on Xeon. */
constexpr Tick forwardCpuXeon = nanoseconds(300);

/** Forwarder CPU per message on ARM. */
constexpr Tick forwardCpuArm = nanoseconds(1200);

/**
 * Virtual-polling discovery latency: mean extra delay between an
 * accelerator raising a TX doorbell and the SNIC's polling loop
 * observing it (half a poll round).
 */
constexpr Tick snicPollDiscovery = nanoseconds(1000);

/*
 * ----- Batched dispatch & forwarding (extension) -----
 *
 * The paper's per-message RDMA pattern (§5.1: one coalesced write
 * per RX message; one read per TX slot) leaves doorbell-batching on
 * the table. These knobs cap the extension's batch sizes and the
 * adaptive poll backoff; defaults are deliberately modest — a batch
 * never spans a ring wrap, and the dominant saving is the per-op
 * post cost (rdmaPostCost + rdmaNicLatency), so returns diminish
 * well before ring capacity.
 */

/** Max RX messages coalesced into one RDMA write + doorbell. */
constexpr int snicRxMaxBatch = 16;

/** Max TX slots fetched per pipelined RDMA read. */
constexpr int snicTxMaxBatch = 16;

/** Dispatcher flush linger: how long a partial staged batch waits
 *  for company once the ingress backlog is empty. Only applied when
 *  the target queue is deeply backlogged with earlier in-flight
 *  requests (Dispatcher::stagedBehindBusyRing), so it adds no delay
 *  to idle or lightly-loaded queues; sized to roughly the drain time
 *  of a backlogged 16-slot ring of small messages. */
constexpr Tick snicDispatchFlushLinger = microseconds(30);

/** Adaptive poll backoff bounds: a just-idle queue is re-polled
 *  after the min, a long-idle one after the max (the max matches
 *  snicPollDiscovery, so the idle-state cost never exceeds the
 *  fixed-poll model it replaces). */
constexpr Tick snicPollBackoffMin = nanoseconds(100);
constexpr Tick snicPollBackoffMax = nanoseconds(1000);

/*
 * ----- Fault tolerance: RDMA retries & mqueue failover (extension) -----
 *
 * The paper's prototype assumes a healthy fabric; this reproduction
 * adds a calibrated recovery stack so the chaos suite can exercise
 * loss, corruption, delay and partitions without ever corrupting a
 * payload. Transport-level numbers follow InfiniBand RC practice
 * (retry_cnt = 3 is the canonical default; the retransmit timeout is
 * a few RTTs of the 4 us-each-way remote path). Software-level
 * numbers are sized so a transient fault burst is ridden out in
 * < 1 ms while a genuine partition is declared dead after ~2 ms of
 * consecutive failures — small against the 50 ms backend response
 * timeout already in BackendRoute.
 */

/** Hardware retransmissions per work request (IB retry_cnt). */
constexpr int rdmaHwRetries = 3;

/** Transport retransmission timeout per lost/corrupted attempt:
 *  roughly 2x the remote round trip (2 x 2 x 4 us). */
constexpr Tick rdmaRetransmitDelay = microseconds(16);

/** Software re-attempts after a completion error. Four attempts on
 *  top of the hardware budget mean a drop burst must survive
 *  (1 + hwRetries) x (1 + swRetries) = 20 consecutive judgements to
 *  kill a queue — vanishingly unlikely under transient loss, certain
 *  under a partition. */
constexpr int rdmaSwRetryLimit = 4;

/** Exponential software backoff: 2, 4, 8, ... us, capped at 64 us
 *  (past the cap a partition is better handled by failover than by
 *  waiting). */
constexpr Tick rdmaSwBackoffBase = microseconds(2);
constexpr Tick rdmaSwBackoffMax = microseconds(64);

/** Health-monitor sweep period. 1 ms resolves a dead accelerator
 *  ~50x faster than the backend response timeout while adding only
 *  a handful of events per simulated millisecond. */
constexpr Tick failoverCheckInterval = sim::milliseconds(1);

/** Consecutive no-progress sweeps (with work in flight) before a
 *  queue is declared dead: 3 sweeps = 3 ms, an order of magnitude
 *  above the worst-case healthy service time of the LeNet kernel
 *  (~278 us), so a merely-slow accelerator is never killed. */
constexpr int failoverDeadStrikes = 3;

/** Revival probe period for dead queues. 5x the check interval:
 *  probing is cheap (one RDMA read) but each failed probe burns the
 *  hardware retransmit budget, so probing slower than detection
 *  keeps the dead path quiet. */
constexpr Tick failoverProbeInterval = sim::milliseconds(5);

/*
 * ----- Accelerator-side I/O (gio) -----
 */

/** Device-local memory poll/access latency (GPU L2/DRAM). */
constexpr Tick gpuLocalMemLatency = nanoseconds(200);

/** Device-side per-byte cost of building a message in local memory. */
constexpr double gpuLocalPerByte = 0.15;

/**
 * The §5.1 GPU consistency workaround (RDMA write + RDMA read
 * barrier + doorbell write instead of one coalesced write) "incurs
 * extra latency of 5 useconds to each message". The barrier mode of
 * SnicMqueue reproduces it from first principles (3 QP ops); this
 * constant is only the paper's reference value for EXPERIMENTS.md.
 */
constexpr Tick paperBarrierExtra = microseconds(5);

/*
 * ----- Batched GPU launches (extension) -----
 *
 * Dynamic request batching runs ONE kernel (sequence) over B inputs
 * instead of B kernel sequences. The per-launch residual is paid once
 * per batch; the compute side scales sublinearly because a
 * single-request LeNet layer leaves most SMs idle (28x28 feature maps
 * expose little parallelism even at the nominal 200-block grid), so
 * additional batched items largely fill holes the first item left.
 * Model: duration(B) = perItem * (1 + (min(B, sat) - 1) * marginal
 *                                   + max(B - sat, 0)),
 * i.e. each extra item up to the saturation point costs `marginal`
 * of the first, and past saturation the device is full and batching
 * degenerates to serial (marginal cost 1). B = 1 reproduces the
 * unbatched duration *exactly* — the golden-timestamp discipline.
 *
 * `accel::GpuConfig` carries these as numeric defaults (accel/ sits
 * below lynx/ in the layering); test_calibration pins them equal.
 */

/** Marginal duration of each additional batched item relative to the
 *  first, below the saturation point. 0.35 lands LeNet batch-8 at
 *  ~2.4x the unbatched throughput — the occupancy headroom a tiny
 *  per-layer kernel realistically leaves on a K40m. */
constexpr double gpuBatchMarginalItemCost = 0.35;

/** Batched items beyond which extra items cost full serial time
 *  (device saturated). */
constexpr int gpuBatchOccupancySaturation = 32;

/*
 * ----- Bluefield platform (paper §2, §6.3) -----
 */

/** Worker cores used for Lynx on Bluefield ("7 ARM cores out of 8"). */
constexpr int bluefieldWorkerCores = 7;

/**
 * Generic-compute slowdown of an 800 MHz A72 vs the Xeon reference
 * core. Anchor (Fig. 9): memcached does 400 Ktps on the whole
 * Bluefield vs 250 Ktps on one Xeon core => 7 ARM cores ~ 1.6 Xeon
 * cores => ~4.4x per core.
 */
constexpr double bluefieldCoreSlowdown = 4.4;

/** Bluefield link rate (25 Gb/s model vs 40 Gb/s elsewhere, §6). */
constexpr double bluefieldGbps = 25.0;

/*
 * ----- Innova / NICA AFU (paper §5.2, §6.2) -----
 *
 * "Innova achieves 7.4M packets/sec" receiving 64 B UDP messages
 * into 240 mqueues => ~135 ns per message through the AFU pipeline.
 */
constexpr Tick innovaAfuPerMessage = nanoseconds(135);

/** AFU-to-accelerator-memory write latency (UC custom ring). */
constexpr Tick innovaRingWriteLatency = microseconds(1);

/*
 * ----- GPU kernels of the evaluated applications -----
 */

/**
 * LeNet inference on K40m: Lynx reaches 3.5 Kreq/s with a single
 * server mqueue and the theoretical max is 3.6 Kreq/s (§6.3)
 * => ~278 us of pure GPU compute per request. Split across the
 * TVM-style per-layer child kernels launched with dynamic
 * parallelism.
 */
constexpr Tick lenetConv1 = microseconds(82);
constexpr Tick lenetPool1 = microseconds(15);
constexpr Tick lenetConv2 = microseconds(95);
constexpr Tick lenetPool2 = microseconds(12);
constexpr Tick lenetFc1 = microseconds(45);
constexpr Tick lenetFc2 = microseconds(16);
constexpr Tick lenetSoftmax = microseconds(8);
constexpr int lenetKernelCount = 7;

/** Total LeNet GPU time (sum of the layer kernels). */
constexpr Tick
lenetTotal()
{
    return lenetConv1 + lenetPool1 + lenetConv2 + lenetPool2 + lenetFc1 +
           lenetFc2 + lenetSoftmax;
}

/** K80 runs LeNet at 3300 req/s vs 3500 on K40m (§6.3 footnote). */
constexpr double k80ClockScale = 3500.0 / 3300.0;

/** LBP face-verification compare kernel: "about 50 us" (§6.4). */
constexpr Tick lbpKernelTime = microseconds(50);

/*
 * ----- memcached (paper §6.3, Fig. 9) -----
 *
 * "memcached on Bluefield achieves ... 400 Ktps vs 250 Ktps/core
 * [Xeon] ... at the expense of a dramatic latency increase (160 usec
 * vs 15 usec)".
 */

/** Per-op service cost of memcached on a Xeon core. */
constexpr Tick memcachedOpCostXeon = microseconds(2);

/** Per-op cost on a Bluefield ARM core (anchored on the whole-card
 *  400 Ktps of Fig. 9; general-purpose code pays the full ~4-6x A72
 *  penalty plus its cache disadvantage). */
constexpr Tick memcachedOpCostArm = microseconds(13);

/*
 * ----- Client-mqueue (backend) TCP costs -----
 *
 * Client mqueues talk to a fixed backend over one persistent TCP
 * connection (§4.3: "static connections ... to support a common
 * communication pattern for servers to access other back-end
 * services"), which is much cheaper per message than terminating
 * many short-lived client connections (the fig. 8c TCP numbers).
 */

/** Per-message backend-TCP costs on Xeon. */
inline net::StackProfile
backendTcpXeon()
{
    net::StackProfile p = vmaXeon();
    p.tcpRecv = microseconds(5);
    p.tcpSend = microseconds(4);
    return p;
}

/** Per-message backend-TCP costs on Bluefield ARM. The wimpy cores
 *  barely benefit from the persistent connection (§6.4: Lynx on
 *  Bluefield trails the Xeon core by ~5% "due to the slower TCP
 *  stack processing on Bluefield when accessing memcached"). */
inline net::StackProfile
backendTcpBluefield()
{
    net::StackProfile p = vmaBluefield();
    p.tcpRecv = microseconds(52);
    p.tcpSend = microseconds(46);
    return p;
}

/*
 * ----- Intel VCA (paper §5.4, §6.2) -----
 */

/** E3 core speed vs reference Xeon. */
constexpr double vcaCoreSlowdown = 1.3;

/** SGX enclave entry+exit cost per request. */
constexpr Tick sgxTransitionCost = microseconds(4);

/** AES decrypt+multiply+encrypt of the 4-byte secure server. */
constexpr Tick vcaComputeCost = microseconds(2);

/** IP-over-PCIe bridge hop (baseline path), each direction. Chosen
 *  so the baseline's 90th percentile is ~4.3x Lynx's 56 us (§6.2). */
constexpr Tick vcaBridgeLatency = microseconds(80);

/** VCA mqueue access latency (mqueues live in *host* memory due to
 *  the RDMA bug workaround, §5.4: "sub-optimal configuration"). */
constexpr Tick vcaQueueAccessLatency = microseconds(7);

} // namespace lynx::calibration

#endif // LYNX_LYNX_CALIBRATION_HH

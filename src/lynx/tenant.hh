/**
 * @file
 * SR-IOV-style virtualization of the dispatch plane (paper §4.5,
 * ROADMAP item 2): per-tenant *virtual functions* over one physical
 * Lynx port, so hundreds of tenants can share the SNIC dispatcher
 * without moving each other's tail latency.
 *
 * A TenantTable is the PF-side manager: it owns one Vf record per
 * tenant with
 *  - an SLA admission cap (max in-flight requests; excess arrivals
 *    are rejected with a counted drop reason — never silently),
 *  - an mqueue quota (ring tags a tenant may hold concurrently, so a
 *    burst cannot monopolize the RX rings),
 *  - a WRR weight consumed by the dispatch- and forward-path
 *    traffic classes, and
 *  - a tag-namespace generation: retiring a tenant bumps it, so
 *    responses to the retired generation's requests are dropped and
 *    counted instead of delivered stale.
 *
 * Per-tenant metrics register under `tenant.<id>` in the simulator's
 * MetricsRegistry; every hot-path handle (counters, histograms) is
 * resolved once at tenant registration — the per-message path does
 * no string building and no registry lookups.
 *
 * Everything is off by default behind TenantConfig: a Runtime with a
 * disabled config (or messages with tenant id 0) takes the exact
 * seed code path, bit-identical timestamps included
 * (tests/test_engine_golden.cc).
 */

#ifndef LYNX_LYNX_TENANT_HH
#define LYNX_LYNX_TENANT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/stats.hh"
#include "sim/time.hh"

namespace lynx::sim {
class Simulator;
}

namespace lynx::core {

/** Tenant identity carried in net::Message::tenant; 0 = untenanted
 *  traffic, which always takes the unvirtualized path. */
using TenantId = std::uint16_t;

/** Per-tenant resource envelope (the SLA knob). */
struct TenantQuota
{
    /** WRR weight of the tenant's traffic class (dispatch and
     *  forward paths). Weights are relative shares — only ratios
     *  matter, so the same config is valid at any link rate
     *  (DESIGN.md §9 on normalization). Must be >= 1. */
    int weight = 1;

    /** Admission cap: requests admitted but not yet answered (or
     *  otherwise accounted). An arrival beyond the cap is rejected
     *  and counted under `tenant.<id>.rejected` plus the
     *  dispatcher's `dropped_tenant_reject`. 0 = unlimited. */
    std::uint32_t maxInFlight = 0;

    /** Mqueue quota: ring tags (RX slots + tag-table entries) the
     *  tenant may hold concurrently across the service's mqueues.
     *  Work beyond the quota waits in the tenant's class queue —
     *  deferred, not dropped. 0 = unlimited. */
    std::uint32_t mqueueQuota = 0;
};

/** Master switch + defaults for the multi-tenant dispatch plane. */
struct TenantConfig
{
    /** Master switch. Off (default): no TenantTable is built and
     *  every message — whatever its tenant id — takes the seed
     *  dispatch path, bit-identical timing included. */
    bool enabled = false;

    /** Register unknown tenant ids on first sight with `defaults`
     *  (SR-IOV "VF pops into existence"). Off: unknown ids are
     *  rejected at admission. */
    bool autoRegister = true;

    /** Quota template for auto-registered tenants. */
    TenantQuota defaults;

    /** Hysteresis before a parked class queue is re-pumped after
     *  capacity frees (batches several completions into one pump). */
    sim::Tick drainDelay = sim::microseconds(2);
};

/**
 * Deterministic smooth weighted round-robin over a dense index
 * space (the nginx algorithm): each pick adds every eligible entry's
 * weight to its credit, selects the highest credit (lowest index on
 * ties), and charges the winner the total. Over any window of
 * `sum(weights)` consecutive picks with stable eligibility, entry i
 * is picked exactly `weight(i)` times — the bounded-window
 * proportionality invariant tests/test_tenant_properties.cc sweeps.
 */
class WrrPicker
{
  public:
    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

    /**
     * Pick among indices [0, n). @p eligible returns the entry's
     * weight, or 0/negative to skip it.
     * @return the winning index, or kNone if nothing is eligible.
     */
    template <typename WeightFn>
    std::size_t
    pick(std::size_t n, WeightFn &&eligible)
    {
        if (credit_.size() < n)
            credit_.resize(n, 0);
        lastAdds_.clear();
        std::int64_t total = 0;
        std::size_t best = kNone;
        for (std::size_t i = 0; i < n; ++i) {
            std::int64_t w = eligible(i);
            if (w <= 0)
                continue;
            credit_[i] += w;
            lastAdds_.push_back({i, w});
            total += w;
            if (best == kNone || credit_[i] > credit_[best])
                best = i;
        }
        if (best != kNone)
            credit_[best] -= total;
        lastBest_ = best;
        lastTotal_ = total;
        return best;
    }

    /**
     * Exactly undo the most recent pick(), as if it never happened.
     * A caller whose winner could not actually be served (ring or tag
     * table full — the message is parked, not placed) MUST refund the
     * pick: a consumed-but-unserved turn otherwise deterministically
     * aliases against the pick-retry cadence. Concretely, a pump that
     * places one message then fails on the next pick does two picks
     * per freed slot; with a period-4 weight pattern (3:1) the light
     * class's turn lands on the doomed pick every time and it starves
     * until the heavy class drains.
     */
    void
    unpick()
    {
        if (lastBest_ == kNone)
            return;
        credit_[lastBest_] += lastTotal_;
        for (const auto &[i, w] : lastAdds_)
            credit_[i] -= w;
        lastBest_ = kNone;
        lastAdds_.clear();
    }

    /** Forget accumulated credit (tests). */
    void
    reset()
    {
        credit_.assign(credit_.size(), 0);
        lastBest_ = kNone;
        lastAdds_.clear();
    }

  private:
    std::vector<std::int64_t> credit_;
    /** (index, weight) additions of the last pick, for unpick(); the
     *  vector's capacity is sticky, so the steady state allocates
     *  nothing (tests/test_sim_alloc.cc). */
    std::vector<std::pair<std::size_t, std::int64_t>> lastAdds_;
    std::size_t lastBest_ = kNone;
    std::int64_t lastTotal_ = 0;
};

/**
 * The PF-side tenant manager: registration/retirement, admission,
 * quota accounting and per-tenant metrics. One per Runtime, shared
 * by its dispatchers, mqueues and forwarders.
 */
class TenantTable
{
  public:
    TenantTable(sim::Simulator &sim, TenantConfig cfg);
    ~TenantTable();

    TenantTable(const TenantTable &) = delete;
    TenantTable &operator=(const TenantTable &) = delete;

    const TenantConfig &config() const { return cfg_; }

    /** Register the next tenant id with quota @p q.
     *  @return the new id (sequential from 1). */
    TenantId add(const TenantQuota &q);

    /** Register with the config's default quota. */
    TenantId add() { return add(cfg_.defaults); }

    /** Retire @p id: new arrivals are rejected, the tag-namespace
     *  generation is bumped so in-flight responses of the old
     *  generation are dropped-and-counted, never delivered. */
    void retire(TenantId id);

    /** @return one past the highest registered id (dense tables in
     *  the dispatcher size themselves off this). */
    std::size_t idSpan() const { return vfs_.size() + 1; }

    bool known(TenantId id) const { return id >= 1 && id <= vfs_.size(); }
    bool active(TenantId id) const { return known(id) && vf(id).active; }

    /** @return the current tag-namespace generation of @p id. */
    std::uint16_t
    generation(TenantId id) const
    {
        return known(id) ? vf(id).gen : 0;
    }

    /** @return whether (@p id, @p gen) names the current generation
     *  (a retired generation's work must never reach a client). */
    bool
    current(TenantId id, std::uint16_t gen) const
    {
        return known(id) && vf(id).gen == gen;
    }

    /**
     * Admission decision for one arrival of @p id. Auto-registers
     * unknown ids when configured. Accepts (and counts the request
     * in flight) unless the tenant is unknown/retired or at its
     * maxInFlight cap — then rejects, counted.
     */
    bool admit(TenantId id);

    /** The request was answered to a live generation: record its
     *  latency, release its in-flight slot. */
    void completed(TenantId id, sim::Tick latency);

    /**
     * A response resolved at the forwarder: deliver or drop?
     * Current generation -> completed(), returns true. Stale
     * generation (tenant retired since dispatch) -> counted under
     * `stale_dropped`, in-flight slot released, returns false — the
     * caller must NOT send the response.
     */
    bool finish(TenantId id, std::uint16_t gen, sim::Tick latency);

    /** The request died on the dispatch path after admission (no
     *  live queue, dead transport): release its in-flight slot,
     *  counted under `lost` — never silent. */
    void abandoned(TenantId id);

    /** @return whether @p id may claim another ring tag (mqueue
     *  quota; the WRR eligibility predicate). */
    bool
    belowTagQuota(TenantId id) const
    {
        if (!known(id))
            return true;
        const Vf &v = vf(id);
        return v.quota.mqueueQuota == 0 ||
               v.tagsHeld < v.quota.mqueueQuota;
    }

    /** Ring-tag accounting, driven by SnicMqueue::allocTag and the
     *  tag release paths so failover requeues stay balanced. */
    void noteTagAlloc(TenantId id);
    void noteTagRelease(TenantId id);

    /** @return the tenant's WRR weight (1 for unknown ids). */
    int
    weight(TenantId id) const
    {
        return known(id) ? vf(id).quota.weight : 1;
    }

    std::uint32_t
    inFlight(TenantId id) const
    {
        return known(id) ? vf(id).inFlight : 0;
    }

    std::uint32_t
    tagsHeld(TenantId id) const
    {
        return known(id) ? vf(id).tagsHeld : 0;
    }

    /** Per-tenant stat set (tests; metrics register as
     *  `tenant.<id>`). */
    sim::StatSet &statsOf(TenantId id) { return vf(id).stats; }

    /** Table-wide stats (`tenant.table`). */
    sim::StatSet &stats() { return stats_; }

    /** Counted reject of an *untenanted* arrival shed by dispatch-
     *  plane admission control — the same no-silent-loss ledger the
     *  per-tenant SLA rejects live in, reused for the tenantless
     *  path (`tenant.table.untenanted_rejected`). */
    void rejectedUntenanted() { cUntenantedRejected_->add(); }

    /** Register a capacity-freed hook, fired whenever an in-flight
     *  slot or ring tag is released — the Runtime uses it to reopen
     *  parked class queues (event-driven, no polling). */
    void
    onCapacityFreed(std::function<void()> fn)
    {
        hooks_.push_back(std::move(fn));
    }

  private:
    /** One virtual function. Heap-pinned: the metrics registry and
     *  the pre-resolved handles hold addresses into it. */
    struct Vf
    {
        bool active = true;
        std::uint16_t gen = 0;
        TenantQuota quota;
        std::uint32_t inFlight = 0;
        std::uint32_t tagsHeld = 0;

        sim::StatSet stats;
        /** Hot-path handles, resolved once at registration — the
         *  per-message path never concatenates a `tenant.<id>.*`
         *  string or walks the registry (test_sim_alloc.cc locks
         *  this down). */
        sim::Counter *cAdmitted = nullptr;
        sim::Counter *cRejected = nullptr;
        sim::Counter *cStaleDropped = nullptr;
        sim::Counter *cLost = nullptr;
        sim::Histogram *hInflight = nullptr;
        sim::Histogram *hLatency = nullptr;
    };

    Vf &vf(TenantId id) { return *vfs_[id - 1]; }
    const Vf &vf(TenantId id) const { return *vfs_[id - 1]; }

    void fireCapacityFreed();

    sim::Simulator &sim_;
    TenantConfig cfg_;
    std::vector<std::unique_ptr<Vf>> vfs_;
    std::vector<std::function<void()>> hooks_;

    sim::StatSet stats_;
    sim::Counter *cAdded_;
    sim::Counter *cRetired_;
    sim::Counter *cAutoRegistered_;
    sim::Counter *cUntenantedRejected_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_TENANT_HH

/**
 * @file
 * The Message Dispatcher (paper Fig. 4): routes messages received by
 * the SNIC network server into server-mqueue RX rings "according to
 * the dispatching policy, e.g. load balancing for stateless services,
 * or steering messages to specific queues for stateful ones" (§4.2).
 *
 * With `maxBatch > 1` the dispatcher stages messages per target
 * mqueue and hands them to SnicMqueue::rxPushBatch() in groups, so
 * back-to-back arrivals for the same queue share one coalesced RDMA
 * write and one doorbell. A staged batch is flushed either when it
 * reaches `maxBatch` or when the caller observes the ingress going
 * idle (Runtime::listenLoop flushes when the endpoint backlog drains),
 * so batching never adds latency to an isolated message.
 */

#ifndef LYNX_LYNX_DISPATCHER_HH
#define LYNX_LYNX_DISPATCHER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "lynx/snic_mqueue.hh"
#include "lynx/tenant.hh"
#include "net/message.hh"
#include "net/steering.hh"
#include "sim/co.hh"
#include "sim/processor.hh"
#include "sim/stats.hh"

namespace lynx::core {

/** Queue-selection policy of one service. */
enum class DispatchPolicy
{
    /** Rotate across mqueues (stateless load balancing). */
    RoundRobin,

    /** Steer by client address hash (stateful services: one client
     *  always lands on the same mqueue). */
    SourceHash,

    /** Toeplitz-hash RSS over the (src, dst, ports) flow tuple
     *  through an indirection table (net/steering.hh) — the steering
     *  decision commodity NIC hardware makes, so per-flow affinity
     *  here matches what a real deployment would see. */
    Rss,
};

/** Dispatch-plane admission control (the untenanted path; tenants
 *  carry their own SLA caps in the TenantTable). */
struct AdmissionConfig
{
    /** Master switch. Off (default): the seed path, bit-identical —
     *  overload is absorbed by ring overflow / PFC alone. */
    bool enabled = false;

    /** Shed an arrival when in-flight ring tags across the service's
     *  usable mqueues have reached this fraction of their total tag
     *  capacity. Sheds are counted (`admission.<svc>.shed_ring_full`
     *  plus `tenant.table.untenanted_rejected` when a TenantTable
     *  exists) — never silent. */
    double shedOccupancy = 0.9;
};

/** Dispatcher behaviour switches. */
struct DispatcherConfig
{
    /** CPU charged per dispatched message. */
    sim::Tick dispatchCpu = 0;

    /** Messages staged per mqueue before a batched RX push; 1 =
     *  immediate per-message rxPush, exactly the unbatched path. */
    int maxBatch = 1;

    /** Keep a copy of each request payload in its ClientRef while
     *  the request is in flight, so failover can re-queue the work
     *  of a dead mqueue to a surviving one. Off (default) = no copy,
     *  the seed's zero-retention behaviour. */
    bool retainPayloads = false;

    /** Tenant table (lynx/tenant.hh). Non-null virtualizes the
     *  dispatch path for messages with a tenant id: SLA admission,
     *  per-tenant class queues drained by weighted round-robin
     *  under the mqueue quota. Null (default) = the seed path,
     *  bit-identical timing; messages with tenant id 0 always take
     *  the seed path either way. */
    TenantTable *tenants = nullptr;

    /** RSS indirection-table shape for DispatchPolicy::Rss. */
    net::steer::RssConfig rss = {};

    /** Dispatch-plane admission control (untenanted path). */
    AdmissionConfig admission = {};
};

/** Dispatches one service's ingress traffic to its mqueues. */
class Dispatcher
{
  public:
    Dispatcher(std::string name, DispatchPolicy policy,
               DispatcherConfig cfg)
        : name_(std::move(name)), policy_(policy), cfg_(cfg),
          cDroppedOversized_(&stats_.counter("dropped_oversized")),
          cDroppedNoTag_(&stats_.counter("dropped_no_tag")),
          cDroppedRingFull_(&stats_.counter("dropped_ring_full")),
          cDroppedTransport_(&stats_.counter("dropped_transport")),
          cDroppedNoLive_(&stats_.counter("dropped_no_live_queue")),
          cDispatched_(&stats_.counter("dispatched")),
          cBatchFlushes_(&stats_.counter("batch_flushes")),
          cRequeued_(&stats_.counter("requeued")),
          cDroppedTenantReject_(
              &stats_.counter("dropped_tenant_reject")),
          rss_(cfg_.rss),
          cSteerPicks_(&steerStats_.counter("rss_picks")),
          cSteerFallbacks_(&steerStats_.counter("rss_fallbacks")),
          cAdmitted_(&admissionStats_.counter("admitted")),
          cShed_(&admissionStats_.counter("shed_ring_full"))
    {}

    Dispatcher(std::string name, DispatchPolicy policy,
               sim::Tick dispatchCpu)
        : Dispatcher(std::move(name), policy,
                     DispatcherConfig{.dispatchCpu = dispatchCpu})
    {}

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /** Register a server mqueue as a dispatch target. */
    void
    addQueue(SnicMqueue *mq)
    {
        LYNX_ASSERT(mq->kind() == MqueueKind::Server,
                    "dispatcher targets must be server mqueues");
        queues_.push_back(mq);
        dead_.push_back(0);
        staged_.emplace_back();
        staged_.back().reserve(
            cfg_.maxBatch > 1 ? static_cast<std::size_t>(cfg_.maxBatch)
                              : 0);
    }

    /** @return registered queue count. */
    std::size_t queueCount() const { return queues_.size(); }

    /** @return queue @p qi (health monitor / test access). */
    SnicMqueue &queueAt(std::size_t qi) { return *queues_[qi]; }

    /** Exclude (or re-admit) queue @p qi from dispatch decisions.
     *  Set by the health monitor around failover; all-alive routing
     *  is bit-identical to the seed's. */
    void
    setQueueDead(std::size_t qi, bool dead)
    {
        dead_[qi] = dead ? 1 : 0;
    }

    /** @return whether @p qi is excluded from dispatch. */
    bool queueDead(std::size_t qi) const { return dead_[qi] != 0; }

    /** @return whether in-flight payloads are retained (failover). */
    bool retainsPayloads() const { return cfg_.retainPayloads; }

    /**
     * Dispatch @p msg: pick an mqueue, allocate a response tag for
     * the client, push into the RX ring. Charges CPU on @p core.
     * Full rings / tag tables drop the message (UDP semantics).
     * With batching on, the message may instead be staged; callers
     * must eventually flush() (see hasStaged()).
     */
    sim::Co<void>
    dispatch(sim::Core &core, net::Message msg)
    {
        LYNX_ASSERT(!queues_.empty(), name_, ": no mqueues registered");
        co_await core.exec(cfg_.dispatchCpu);
        if (cfg_.tenants && msg.tenant != 0) {
            // Virtualized path: admission + class queues + WRR. One
            // branch on a null pointer is all the untenanted world
            // pays for it.
            co_await dispatchTenant(core, std::move(msg));
            co_return;
        }
        if (cfg_.admission.enabled) {
            if (!admitUntenanted()) {
                // Shed at the dispatch plane instead of letting the
                // overload deepen the rings: counted here and, when
                // the runtime is tenant-aware, in the TenantTable's
                // reject ledger — the client sees a timeout, the
                // operator sees a number (never a silent loss).
                cShed_->add();
                if (cfg_.tenants)
                    cfg_.tenants->rejectedUntenanted();
                co_return;
            }
            cAdmitted_->add();
        }
        std::size_t qi = pickIndex(msg);
        if (qi == kNoQueue) {
            // Every mqueue is dead or transport-failed: the sentinel
            // drop keeps "no silent loss" — the request is reported,
            // not forgotten.
            cDroppedNoLive_->add();
            co_return;
        }
        SnicMqueue &mq = *queues_[qi];
        if (msg.size() > mq.layout().maxPayload()) {
            // Larger than a ring slot: drop like an oversized
            // datagram instead of corrupting the ring.
            cDroppedOversized_->add();
            co_return;
        }
        ClientRef client;
        client.addr = msg.src;
        client.proto = msg.proto;
        client.seq = msg.seq;
        client.sentAt = msg.sentAt;
        client.traceId = msg.traceId;
        // Metadata copy only — without a TenantTable nobody ever
        // reads it, so the seed path stays bit-identical.
        client.tenant = msg.tenant;
        if (cfg_.retainPayloads)
            client.payload = msg.payload.toVector();
        auto tag = mq.allocTag(client);
        if (!tag) {
            cDroppedNoTag_->add();
            co_return;
        }
        if (cfg_.maxBatch <= 1) {
            bool ok = co_await mq.rxPush(core, msg.payload, *tag);
            if (!ok) {
                auto c = mq.tryReleaseTag(*tag);
                if (mq.transportDead() && c) {
                    // The push died on the wire, not on a full ring:
                    // try a surviving queue right away.
                    if (co_await redispatch(core, std::move(msg.payload),
                                            std::move(*c)))
                        co_return;
                    cDroppedTransport_->add();
                    co_return;
                }
                cDroppedRingFull_->add();
                co_return;
            }
            cDispatched_->add();
            co_return;
        }
        staged_[qi].push_back({std::move(msg.payload), *tag});
        ++stagedCount_;
        if (staged_[qi].size() >=
            static_cast<std::size_t>(cfg_.maxBatch))
            co_await flushQueue(core, qi);
    }

    /** @return whether staged messages await a flush(). */
    bool hasStaged() const { return stagedCount_ != 0; }

    /** @return whether some staged batch targets a queue deep enough
     *  in earlier in-flight requests (tags allocated beyond the
     *  staged ones) that lingering for more company is (nearly)
     *  free: the accelerator would not reach the staged message
     *  immediately anyway. The depth threshold scales with the batch
     *  size — deep batches are only worth waiting for behind a deep
     *  backlog. An idle queue returns false, so an isolated message
     *  is flushed without delay. */
    bool
    stagedBehindBusyRing() const
    {
        std::size_t minExcess =
            static_cast<std::size_t>(cfg_.maxBatch) / 4 + 1;
        for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
            if (!staged_[qi].empty() &&
                queues_[qi]->tagsInFlight() >=
                    staged_[qi].size() + minExcess)
                return true;
        }
        return false;
    }

    /** Push every staged batch out (idle-ingress flush point). */
    sim::Co<void>
    flush(sim::Core &core)
    {
        for (std::size_t qi = 0; qi < queues_.size(); ++qi)
            if (!staged_[qi].empty())
                co_await flushQueue(core, qi);
    }

    /**
     * Failover drain of queue @p qi (health monitor, after
     * setQueueDead): release every in-flight tag — staged and already
     * pushed — and re-queue the retained request payloads to
     * surviving mqueues. Requests without a retained payload (or with
     * no live queue left) are dropped and counted.
     * @return how many requests were successfully re-queued.
     */
    sim::Co<std::size_t>
    evacuate(sim::Core &core, std::size_t qi)
    {
        SnicMqueue &mq = *queues_[qi];
        std::size_t moved = 0;

        // Staged but never pushed: their payloads are at hand
        // regardless of the retention knob.
        std::vector<Staged> batch = std::move(staged_[qi]);
        staged_[qi].clear();
        stagedCount_ -= batch.size();
        for (Staged &s : batch) {
            auto c = mq.tryReleaseTag(s.tag);
            if (!c) {
                cDroppedTransport_->add();
                continue;
            }
            if (co_await redispatch(core, std::move(s.payload),
                                    std::move(*c)))
                ++moved;
        }

        // Pushed and unanswered: only re-queueable with retention.
        for (std::uint32_t tag : mq.allocatedTags()) {
            auto c = mq.tryReleaseTag(tag);
            if (!c)
                continue;
            if (c->payload.empty() && !cfg_.retainPayloads) {
                cDroppedTransport_->add();
                if (cfg_.tenants && c->tenant != 0)
                    cfg_.tenants->abandoned(c->tenant);
                continue;
            }
            net::Payload payload = c->payload;
            if (co_await redispatch(core, std::move(payload),
                                    std::move(*c)))
                ++moved;
        }
        cRequeued_->add(moved);
        co_return moved;
    }

    /**
     * Route one request (an evacuated in-flight one, or a push whose
     * transport just died) to a live, transport-healthy mqueue with
     * an immediate (unstaged) push.
     * @return whether some queue accepted it; false = dropped and
     * counted under dropped_no_live_queue.
     */
    sim::Co<bool>
    redispatch(sim::Core &core, net::Payload payload, ClientRef client)
    {
        for (std::size_t tries = queues_.size(); tries > 0; --tries) {
            std::size_t qi = pickLive(client);
            if (qi == kNoQueue)
                break;
            SnicMqueue &mq = *queues_[qi];
            ClientRef c = client;
            if (cfg_.retainPayloads)
                c.payload = payload.toVector();
            auto tag = mq.allocTag(c);
            if (!tag)
                continue;
            if (co_await mq.rxPush(core, payload, *tag)) {
                cDispatched_->add();
                co_return true;
            }
            mq.tryReleaseTag(*tag);
            // That queue just failed too; the next iteration skips it
            // (transportDead) or gives up.
        }
        cDroppedNoLive_->add();
        if (cfg_.tenants && client.tenant != 0)
            cfg_.tenants->abandoned(client.tenant);
        co_return false;
    }

    sim::StatSet &stats() { return stats_; }

    /** RSS steering stats (`steer.<svc>`): picks and dead-home
     *  fallbacks. All zero unless the policy is Rss. */
    sim::StatSet &steerStats() { return steerStats_; }

    /** Admission stats (`admission.<svc>`): admitted vs shed. All
     *  zero unless AdmissionConfig::enabled. */
    sim::StatSet &admissionStats() { return admissionStats_; }

    /** @{ @name Tenant traffic classes (lynx/tenant.hh)
     *
     *  With a TenantTable configured, tenanted messages go through
     *  admission (SLA cap) into a per-tenant class queue; the pump
     *  places queued work onto the mqueues in smooth-WRR order,
     *  subject to each tenant's mqueue quota. The pump is
     *  work-conserving: any tenant with queued work and quota
     *  headroom keeps the rings busy, whatever the others do. */

    /** @return whether any class queue holds deferred work. */
    bool hasTenantPending() const { return tenantPendingTotal_ != 0; }

    /** @return total messages across all class queues. */
    std::size_t tenantPending() const { return tenantPendingTotal_; }

    /** @return queued messages of one tenant's class. */
    std::size_t
    tenantPendingOf(TenantId t) const
    {
        return t < classes_.size() ? classes_[t].size() : 0;
    }

    /** Called (if set) whenever the dispatcher leaves work deferred
     *  in a class queue — the Runtime's drain task wakes on it. */
    void
    setTenantBacklogHook(std::function<void()> fn)
    {
        backlogHook_ = std::move(fn);
    }

    /**
     * Drain the class queues: repeatedly WRR-pick an eligible
     * tenant (non-empty class, below its mqueue quota), place its
     * oldest message. Stops when nothing is eligible, the tag table
     * fills, or a ring rejects the push (the message returns to the
     * head of its class; freed capacity re-triggers via the
     * backlog hook / TenantTable capacity hooks).
     */
    sim::Co<void>
    pumpTenants(sim::Core &core)
    {
        if (!cfg_.tenants || tenantPendingTotal_ == 0)
            co_return;
        for (;;) {
            std::size_t t = wrr_.pick(
                classes_.size(), [&](std::size_t i) -> std::int64_t {
                    if (classes_[i].empty())
                        return 0;
                    TenantId id = static_cast<TenantId>(i);
                    if (!cfg_.tenants->belowTagQuota(id))
                        return 0;
                    return cfg_.tenants->weight(id);
                });
            if (t == WrrPicker::kNone)
                co_return;
            Pending p = std::move(classes_[t].front());
            classes_[t].pop_front();
            --tenantPendingTotal_;
            std::size_t qi = pickLive(p.client);
            if (qi == kNoQueue) {
                cDroppedNoLive_->add();
                cfg_.tenants->abandoned(p.client.tenant);
                continue;
            }
            SnicMqueue &mq = *queues_[qi];
            auto tag = mq.allocTag(p.client);
            if (!tag) {
                // Tag table full: park at the head of the class (its
                // FIFO order is preserved) until a release frees one.
                // The turn served nothing — refund it, or the retry
                // cadence aliases against the weight pattern and can
                // starve a class (WrrPicker::unpick).
                classes_[t].push_front(std::move(p));
                ++tenantPendingTotal_;
                wrr_.unpick();
                co_return;
            }
            bool ok = co_await mq.rxPush(core, p.payload, *tag);
            if (!ok) {
                auto c = mq.tryReleaseTag(*tag);
                if (mq.transportDead() && c) {
                    // redispatch() itself abandons the tenant's
                    // in-flight slot on final failure.
                    if (co_await redispatch(core, std::move(p.payload),
                                            std::move(*c)))
                        continue;
                    cDroppedTransport_->add();
                    continue;
                }
                // Ring genuinely full: park; consumption + tag
                // release will reopen capacity. Unserved turn —
                // refund it (see the allocTag park above).
                classes_[t].push_front(std::move(p));
                ++tenantPendingTotal_;
                wrr_.unpick();
                co_return;
            }
            cDispatched_->add();
        }
    }
    /** @} */

  private:
    struct Staged
    {
        net::Payload payload;
        std::uint32_t tag;
    };

    /** One admitted-but-not-yet-placed tenant request. */
    struct Pending
    {
        net::Payload payload;
        ClientRef client;
    };

    sim::Co<void>
    dispatchTenant(sim::Core &core, net::Message msg)
    {
        if (msg.size() > queues_[0]->layout().maxPayload()) {
            cDroppedOversized_->add();
            co_return;
        }
        TenantId t = msg.tenant;
        if (!cfg_.tenants->admit(t)) {
            // Admission reject IS the SLA knob: an over-cap (or
            // retired/unknown) tenant's arrival is refused with a
            // counted drop reason, keeping "no silent loss".
            cDroppedTenantReject_->add();
            co_return;
        }
        if (classes_.size() < cfg_.tenants->idSpan())
            classes_.resize(cfg_.tenants->idSpan());
        Pending p;
        p.payload = std::move(msg.payload);
        p.client.addr = msg.src;
        p.client.proto = msg.proto;
        p.client.seq = msg.seq;
        p.client.sentAt = msg.sentAt;
        p.client.traceId = msg.traceId;
        p.client.tenant = t;
        p.client.tenantGen = cfg_.tenants->generation(t);
        if (cfg_.retainPayloads)
            p.client.payload = p.payload.toVector();
        classes_[t].push_back(std::move(p));
        ++tenantPendingTotal_;
        co_await pumpTenants(core);
        if (tenantPendingTotal_ != 0 && backlogHook_)
            backlogHook_();
    }

    sim::Co<void>
    flushQueue(sim::Core &core, std::size_t qi)
    {
        // Move the batch out before any suspension so a concurrent
        // dispatch() can stage into a fresh vector.
        std::vector<Staged> batch = std::move(staged_[qi]);
        staged_[qi].clear();
        stagedCount_ -= batch.size();
        SnicMqueue &mq = *queues_[qi];
        std::vector<SnicMqueue::RxItem> items;
        items.reserve(batch.size());
        for (const Staged &s : batch)
            items.push_back({s.payload, s.tag, 0});
        std::size_t accepted = co_await mq.rxPushBatch(core, items);
        bool transport = mq.transportDead();
        for (std::size_t j = accepted; j < batch.size(); ++j) {
            auto c = mq.tryReleaseTag(batch[j].tag);
            if (transport && c) {
                if (co_await redispatch(core,
                                        std::move(batch[j].payload),
                                        std::move(*c)))
                    continue;
                cDroppedTransport_->add();
                continue;
            }
            cDroppedRingFull_->add();
        }
        cDispatched_->add(accepted);
        cBatchFlushes_->add();
    }

    static constexpr std::size_t kNoQueue =
        static_cast<std::size_t>(-1);

    /** @return whether @p qi can take new work right now. */
    bool
    usable(std::size_t qi) const
    {
        return dead_[qi] == 0 && !queues_[qi]->transportDead();
    }

    std::size_t
    pickIndex(const net::Message &msg)
    {
        // All-alive fast paths are bit-identical to the seed policy:
        // RoundRobin advances rr_ exactly once, SourceHash probes its
        // home index first.
        switch (policy_) {
          case DispatchPolicy::RoundRobin:
            for (std::size_t i = 0; i < queues_.size(); ++i) {
                std::size_t qi = rr_++ % queues_.size();
                if (usable(qi))
                    return qi;
            }
            return kNoQueue;
          case DispatchPolicy::SourceHash: {
            std::uint64_t h = msg.src.node * 0x9e3779b97f4a7c15ull +
                              msg.src.port * 0x85ebca6bull;
            // Linear probe from the home queue: a client keeps its
            // queue while it is alive and lands on a stable fallback
            // while it is not.
            for (std::size_t i = 0; i < queues_.size(); ++i) {
                std::size_t qi = (h + i) % queues_.size();
                if (usable(qi))
                    return qi;
            }
            return kNoQueue;
          }
          case DispatchPolicy::Rss:
            // pickLive re-routes on failover with the same hash; the
            // cached dst makes the tuple identical so a surviving
            // flow keeps one home across both paths.
            rssDst_ = msg.dst;
            return probeRss(msg.src, msg.dst);
        }
        return 0;
    }

    /** pickIndex for requests without an ingress message (failover
     *  re-queueing): same policies keyed on the stored client. */
    std::size_t
    pickLive(const ClientRef &client)
    {
        switch (policy_) {
          case DispatchPolicy::RoundRobin:
            for (std::size_t i = 0; i < queues_.size(); ++i) {
                std::size_t qi = rr_++ % queues_.size();
                if (usable(qi))
                    return qi;
            }
            return kNoQueue;
          case DispatchPolicy::SourceHash: {
            std::uint64_t h = client.addr.node * 0x9e3779b97f4a7c15ull +
                              client.addr.port * 0x85ebca6bull;
            for (std::size_t i = 0; i < queues_.size(); ++i) {
                std::size_t qi = (h + i) % queues_.size();
                if (usable(qi))
                    return qi;
            }
            return kNoQueue;
          }
          case DispatchPolicy::Rss:
            return probeRss(client.addr, rssDst_);
        }
        return kNoQueue;
    }

    /** RSS home queue + linear probe over usable queues. The hash is
     *  the real Toeplitz over the flow tuple (net/steering.hh), so a
     *  flow's mqueue matches what RSS hardware would pick; every
     *  steering decision is counted, fallbacks (home dead) too. */
    std::size_t
    probeRss(const net::Address &src, const net::Address &dst)
    {
        std::size_t home = rss_.pick(src, dst, queues_.size());
        for (std::size_t i = 0; i < queues_.size(); ++i) {
            std::size_t qi = (home + i) % queues_.size();
            if (!usable(qi))
                continue;
            cSteerPicks_->add();
            if (i != 0)
                cSteerFallbacks_->add();
            return qi;
        }
        return kNoQueue;
    }

    /** Occupancy gate of the untenanted admission path: sum in-flight
     *  ring tags over the usable mqueues against their tag capacity.
     *  Pure arithmetic — no suspension — so enabling admission under
     *  uncongested load perturbs no timestamps. */
    bool
    admitUntenanted() const
    {
        std::size_t used = 0;
        std::size_t cap = 0;
        for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
            if (!usable(qi))
                continue;
            used += queues_[qi]->tagsInFlight();
            cap += queues_[qi]->tagCapacity();
        }
        if (cap == 0)
            return false; // nothing usable: shed, counted
        return static_cast<double>(used) <
               cfg_.admission.shedOccupancy * static_cast<double>(cap);
    }

    std::string name_;
    DispatchPolicy policy_;
    DispatcherConfig cfg_;
    std::vector<SnicMqueue *> queues_;
    /** Failover exclusion flags (parallel to queues_). */
    std::vector<char> dead_;
    /** Per-queue staged batches (parallel to queues_). */
    std::vector<std::vector<Staged>> staged_;
    std::size_t stagedCount_ = 0;
    std::size_t rr_ = 0;

    /** Per-tenant class queues, indexed by tenant id (slot 0
     *  unused); sized lazily against the TenantTable's id span. */
    std::vector<std::deque<Pending>> classes_;
    std::size_t tenantPendingTotal_ = 0;
    WrrPicker wrr_;
    std::function<void()> backlogHook_;

    sim::StatSet stats_;

    /** Hot-path counters, resolved once at construction. */
    sim::Counter *cDroppedOversized_;
    sim::Counter *cDroppedNoTag_;
    sim::Counter *cDroppedRingFull_;
    sim::Counter *cDroppedTransport_;
    sim::Counter *cDroppedNoLive_;
    sim::Counter *cDispatched_;
    sim::Counter *cBatchFlushes_;
    sim::Counter *cRequeued_;
    sim::Counter *cDroppedTenantReject_;

    /** RSS steering state (policy Rss only; the table itself is
     *  cheap enough to sit here unconditionally). */
    net::steer::RssSteering rss_;
    /** Destination of the most recent RSS dispatch, so failover
     *  re-routing (pickLive has no ingress message) hashes the same
     *  flow tuple the original decision did. */
    net::Address rssDst_{};

    sim::StatSet steerStats_;
    sim::StatSet admissionStats_;
    sim::Counter *cSteerPicks_;
    sim::Counter *cSteerFallbacks_;
    sim::Counter *cAdmitted_;
    sim::Counter *cShed_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_DISPATCHER_HH

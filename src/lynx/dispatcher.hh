/**
 * @file
 * The Message Dispatcher (paper Fig. 4): routes messages received by
 * the SNIC network server into server-mqueue RX rings "according to
 * the dispatching policy, e.g. load balancing for stateless services,
 * or steering messages to specific queues for stateful ones" (§4.2).
 */

#ifndef LYNX_LYNX_DISPATCHER_HH
#define LYNX_LYNX_DISPATCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lynx/snic_mqueue.hh"
#include "net/message.hh"
#include "sim/co.hh"
#include "sim/processor.hh"
#include "sim/stats.hh"

namespace lynx::core {

/** Queue-selection policy of one service. */
enum class DispatchPolicy
{
    /** Rotate across mqueues (stateless load balancing). */
    RoundRobin,

    /** Steer by client address hash (stateful services: one client
     *  always lands on the same mqueue). */
    SourceHash,
};

/** Dispatches one service's ingress traffic to its mqueues. */
class Dispatcher
{
  public:
    Dispatcher(std::string name, DispatchPolicy policy,
               sim::Tick dispatchCpu)
        : name_(std::move(name)), policy_(policy), dispatchCpu_(dispatchCpu)
    {}

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /** Register a server mqueue as a dispatch target. */
    void
    addQueue(SnicMqueue *mq)
    {
        LYNX_ASSERT(mq->kind() == MqueueKind::Server,
                    "dispatcher targets must be server mqueues");
        queues_.push_back(mq);
    }

    /** @return registered queue count. */
    std::size_t queueCount() const { return queues_.size(); }

    /**
     * Dispatch @p msg: pick an mqueue, allocate a response tag for
     * the client, push into the RX ring. Charges CPU on @p core.
     * Full rings / tag tables drop the message (UDP semantics).
     */
    sim::Co<void>
    dispatch(sim::Core &core, net::Message msg)
    {
        LYNX_ASSERT(!queues_.empty(), name_, ": no mqueues registered");
        co_await core.exec(dispatchCpu_);
        SnicMqueue &mq = *pick(msg);
        if (msg.size() > mq.layout().maxPayload()) {
            // Larger than a ring slot: drop like an oversized
            // datagram instead of corrupting the ring.
            stats_.counter("dropped_oversized").add();
            co_return;
        }
        ClientRef client{msg.src, msg.proto};
        client.seq = msg.seq;
        client.sentAt = msg.sentAt;
        auto tag = mq.allocTag(client);
        if (!tag) {
            stats_.counter("dropped_no_tag").add();
            co_return;
        }
        bool ok = co_await mq.rxPush(core, msg.payload, *tag);
        if (!ok) {
            mq.releaseTag(*tag);
            stats_.counter("dropped_ring_full").add();
            co_return;
        }
        stats_.counter("dispatched").add();
    }

    sim::StatSet &stats() { return stats_; }

  private:
    SnicMqueue *
    pick(const net::Message &msg)
    {
        switch (policy_) {
          case DispatchPolicy::RoundRobin:
            return queues_[rr_++ % queues_.size()];
          case DispatchPolicy::SourceHash: {
            std::uint64_t h = msg.src.node * 0x9e3779b97f4a7c15ull +
                              msg.src.port * 0x85ebca6bull;
            return queues_[h % queues_.size()];
          }
        }
        return queues_[0];
    }

    std::string name_;
    DispatchPolicy policy_;
    sim::Tick dispatchCpu_;
    std::vector<SnicMqueue *> queues_;
    std::size_t rr_ = 0;
    sim::StatSet stats_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_DISPATCHER_HH

/**
 * @file
 * The Message Dispatcher (paper Fig. 4): routes messages received by
 * the SNIC network server into server-mqueue RX rings "according to
 * the dispatching policy, e.g. load balancing for stateless services,
 * or steering messages to specific queues for stateful ones" (§4.2).
 *
 * With `maxBatch > 1` the dispatcher stages messages per target
 * mqueue and hands them to SnicMqueue::rxPushBatch() in groups, so
 * back-to-back arrivals for the same queue share one coalesced RDMA
 * write and one doorbell. A staged batch is flushed either when it
 * reaches `maxBatch` or when the caller observes the ingress going
 * idle (Runtime::listenLoop flushes when the endpoint backlog drains),
 * so batching never adds latency to an isolated message.
 */

#ifndef LYNX_LYNX_DISPATCHER_HH
#define LYNX_LYNX_DISPATCHER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lynx/snic_mqueue.hh"
#include "net/message.hh"
#include "sim/co.hh"
#include "sim/processor.hh"
#include "sim/stats.hh"

namespace lynx::core {

/** Queue-selection policy of one service. */
enum class DispatchPolicy
{
    /** Rotate across mqueues (stateless load balancing). */
    RoundRobin,

    /** Steer by client address hash (stateful services: one client
     *  always lands on the same mqueue). */
    SourceHash,
};

/** Dispatcher behaviour switches. */
struct DispatcherConfig
{
    /** CPU charged per dispatched message. */
    sim::Tick dispatchCpu = 0;

    /** Messages staged per mqueue before a batched RX push; 1 =
     *  immediate per-message rxPush, exactly the unbatched path. */
    int maxBatch = 1;
};

/** Dispatches one service's ingress traffic to its mqueues. */
class Dispatcher
{
  public:
    Dispatcher(std::string name, DispatchPolicy policy,
               DispatcherConfig cfg)
        : name_(std::move(name)), policy_(policy), cfg_(cfg),
          cDroppedOversized_(&stats_.counter("dropped_oversized")),
          cDroppedNoTag_(&stats_.counter("dropped_no_tag")),
          cDroppedRingFull_(&stats_.counter("dropped_ring_full")),
          cDispatched_(&stats_.counter("dispatched")),
          cBatchFlushes_(&stats_.counter("batch_flushes"))
    {}

    Dispatcher(std::string name, DispatchPolicy policy,
               sim::Tick dispatchCpu)
        : Dispatcher(std::move(name), policy,
                     DispatcherConfig{dispatchCpu, 1})
    {}

    Dispatcher(const Dispatcher &) = delete;
    Dispatcher &operator=(const Dispatcher &) = delete;

    /** Register a server mqueue as a dispatch target. */
    void
    addQueue(SnicMqueue *mq)
    {
        LYNX_ASSERT(mq->kind() == MqueueKind::Server,
                    "dispatcher targets must be server mqueues");
        queues_.push_back(mq);
        staged_.emplace_back();
        staged_.back().reserve(
            cfg_.maxBatch > 1 ? static_cast<std::size_t>(cfg_.maxBatch)
                              : 0);
    }

    /** @return registered queue count. */
    std::size_t queueCount() const { return queues_.size(); }

    /**
     * Dispatch @p msg: pick an mqueue, allocate a response tag for
     * the client, push into the RX ring. Charges CPU on @p core.
     * Full rings / tag tables drop the message (UDP semantics).
     * With batching on, the message may instead be staged; callers
     * must eventually flush() (see hasStaged()).
     */
    sim::Co<void>
    dispatch(sim::Core &core, net::Message msg)
    {
        LYNX_ASSERT(!queues_.empty(), name_, ": no mqueues registered");
        co_await core.exec(cfg_.dispatchCpu);
        std::size_t qi = pickIndex(msg);
        SnicMqueue &mq = *queues_[qi];
        if (msg.size() > mq.layout().maxPayload()) {
            // Larger than a ring slot: drop like an oversized
            // datagram instead of corrupting the ring.
            cDroppedOversized_->add();
            co_return;
        }
        ClientRef client{msg.src, msg.proto};
        client.seq = msg.seq;
        client.sentAt = msg.sentAt;
        auto tag = mq.allocTag(client);
        if (!tag) {
            cDroppedNoTag_->add();
            co_return;
        }
        if (cfg_.maxBatch <= 1) {
            bool ok = co_await mq.rxPush(core, msg.payload, *tag);
            if (!ok) {
                mq.releaseTag(*tag);
                cDroppedRingFull_->add();
                co_return;
            }
            cDispatched_->add();
            co_return;
        }
        staged_[qi].push_back({std::move(msg.payload), *tag});
        ++stagedCount_;
        if (staged_[qi].size() >=
            static_cast<std::size_t>(cfg_.maxBatch))
            co_await flushQueue(core, qi);
    }

    /** @return whether staged messages await a flush(). */
    bool hasStaged() const { return stagedCount_ != 0; }

    /** @return whether some staged batch targets a queue deep enough
     *  in earlier in-flight requests (tags allocated beyond the
     *  staged ones) that lingering for more company is (nearly)
     *  free: the accelerator would not reach the staged message
     *  immediately anyway. The depth threshold scales with the batch
     *  size — deep batches are only worth waiting for behind a deep
     *  backlog. An idle queue returns false, so an isolated message
     *  is flushed without delay. */
    bool
    stagedBehindBusyRing() const
    {
        std::size_t minExcess =
            static_cast<std::size_t>(cfg_.maxBatch) / 4 + 1;
        for (std::size_t qi = 0; qi < queues_.size(); ++qi) {
            if (!staged_[qi].empty() &&
                queues_[qi]->tagsInFlight() >=
                    staged_[qi].size() + minExcess)
                return true;
        }
        return false;
    }

    /** Push every staged batch out (idle-ingress flush point). */
    sim::Co<void>
    flush(sim::Core &core)
    {
        for (std::size_t qi = 0; qi < queues_.size(); ++qi)
            if (!staged_[qi].empty())
                co_await flushQueue(core, qi);
    }

    sim::StatSet &stats() { return stats_; }

  private:
    struct Staged
    {
        std::vector<std::uint8_t> payload;
        std::uint32_t tag;
    };

    sim::Co<void>
    flushQueue(sim::Core &core, std::size_t qi)
    {
        // Move the batch out before any suspension so a concurrent
        // dispatch() can stage into a fresh vector.
        std::vector<Staged> batch = std::move(staged_[qi]);
        staged_[qi].clear();
        stagedCount_ -= batch.size();
        SnicMqueue &mq = *queues_[qi];
        std::vector<SnicMqueue::RxItem> items;
        items.reserve(batch.size());
        for (const Staged &s : batch)
            items.push_back({s.payload, s.tag, 0});
        std::size_t accepted = co_await mq.rxPushBatch(core, items);
        for (std::size_t j = accepted; j < batch.size(); ++j) {
            mq.releaseTag(batch[j].tag);
            cDroppedRingFull_->add();
        }
        cDispatched_->add(accepted);
        cBatchFlushes_->add();
    }

    std::size_t
    pickIndex(const net::Message &msg)
    {
        switch (policy_) {
          case DispatchPolicy::RoundRobin:
            return rr_++ % queues_.size();
          case DispatchPolicy::SourceHash: {
            std::uint64_t h = msg.src.node * 0x9e3779b97f4a7c15ull +
                              msg.src.port * 0x85ebca6bull;
            return h % queues_.size();
          }
        }
        return 0;
    }

    std::string name_;
    DispatchPolicy policy_;
    DispatcherConfig cfg_;
    std::vector<SnicMqueue *> queues_;
    /** Per-queue staged batches (parallel to queues_). */
    std::vector<std::vector<Staged>> staged_;
    std::size_t stagedCount_ = 0;
    std::size_t rr_ = 0;
    sim::StatSet stats_;

    /** Hot-path counters, resolved once at construction. */
    sim::Counter *cDroppedOversized_;
    sim::Counter *cDroppedNoTag_;
    sim::Counter *cDroppedRingFull_;
    sim::Counter *cDispatched_;
    sim::Counter *cBatchFlushes_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_DISPATCHER_HH

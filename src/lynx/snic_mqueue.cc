#include "snic_mqueue.hh"

#include <algorithm>

#include "lynx/tenant.hh"
#include "sim/span.hh"
#include "sim/task.hh"
#include "sim/trace.hh"

namespace lynx::core {

SnicMqueue::SnicMqueue(sim::Simulator &sim, std::string name,
                       rdma::QueuePair &qp, MqueueLayout layout,
                       MqueueKind kind, SnicMqueueConfig cfg)
    : sim_(sim), name_(std::move(name)), qp_(qp), layout_(layout),
      kind_(kind), cfg_(cfg)
{
    // Tag table sized to cover every in-flight request: the RX ring
    // bounds them, with slack for responses not yet forwarded. Tag
    // values carry the index in the low 16 bits and a generation in
    // the high 16 (stale-response rejection after failover drains).
    std::uint32_t tableSize = layout_.slots * 2;
    LYNX_ASSERT(tableSize <= 0x10000, name_,
                ": tag table exceeds the 16-bit index space");
    tags_.resize(tableSize);
    tagGen_.resize(tableSize, 0);
    for (std::uint32_t i = 0; i < tableSize; ++i)
        freeTags_.push_back(tableSize - 1 - i);
    pendingActivity_ = std::make_unique<sim::Gate>(sim);

    cRxPushed_ = &stats_.counter("rx_pushed");
    cRxBytes_ = &stats_.counter("rx_bytes");
    cRxWriteOps_ = &stats_.counter("rx_write_ops");
    cRxCoalesced_ = &stats_.counter("rx_coalesced");
    cRxFull_ = &stats_.counter("rx_full");
    cRxConsRefreshes_ = &stats_.counter("rx_cons_refreshes");
    cTxPolls_ = &stats_.counter("tx_polls");
    cTxFetchOps_ = &stats_.counter("tx_fetch_ops");
    cTxPopped_ = &stats_.counter("tx_popped");
    cTxBytes_ = &stats_.counter("tx_bytes");
    cTxConsCommits_ = &stats_.counter("tx_cons_commits");
    cRdmaErrors_ = &stats_.counter("rdma_errors");
    cRdmaRetries_ = &stats_.counter("rdma_retries");
    cSlotsLost_ = &stats_.counter("slots_lost");
    cOverflow_ = &stats_.counter("overflow");
    cPfcPauses_ = &stats_.counter("pfc_pauses");
    cPfcResumes_ = &stats_.counter("pfc_resumes");
    cPfcStormBreaks_ = &stats_.counter("pfc_storm_breaks");
    hPauseTicks_ = &stats_.histogram("pfc_pause_ticks");

    sim_.metrics().add("lynx.mq." + name_, stats_);
}

void
SnicMqueue::notePending(std::uint32_t tag, sim::Tick deadline)
{
    pending_.push_back(Pending{tag, deadline});
    pendingActivity_->open();
}

SnicMqueue::~SnicMqueue()
{
    sim_.metrics().remove(stats_);
    if (txWatchInstalled_)
        qp_.target().unwatch(txWatchId_);
}

void
SnicMqueue::setTxActivityHandler(std::function<void()> fn)
{
    if (txWatchInstalled_)
        qp_.target().unwatch(txWatchId_);
    txActivityFn_ = std::move(fn);
    txWatchId_ = qp_.target().watch(layout_.txRingOff(),
                                    layout_.ringBytes(),
                                    [this](auto, auto) {
                                        txActivityFn_();
                                    });
    txWatchInstalled_ = true;
}

sim::Co<bool>
SnicMqueue::pushWrite(sim::Core &core, std::uint64_t off,
                      std::vector<std::uint8_t> buf)
{
    if (!cfg_.retry.enabled()) {
        co_await core.exec(qp_.path().postCost);
        qp_.postWrite(off, std::move(buf));
        co_return true;
    }
    // Signalled write: completion errors (fault injection) surface
    // here and are re-attempted under an exponential-backoff budget.
    for (int attempt = 0;; ++attempt) {
        co_await core.exec(qp_.path().postCost);
        rdma::WcStatus st = co_await qp_.write(off, buf);
        if (st == rdma::WcStatus::Ok)
            co_return true;
        cRdmaErrors_->add();
        if (attempt >= cfg_.retry.maxRetries) {
            transportDead_ = true;
            co_return false;
        }
        cRdmaRetries_->add();
        co_await sim::sleep(cfg_.retry.backoff(attempt));
    }
}

sim::Co<bool>
SnicMqueue::txFetch(sim::Core &core, std::uint64_t bytes)
{
    for (int attempt = 0;; ++attempt) {
        co_await core.exec(qp_.path().postCost);
        rdma::WcStatus st = co_await qp_.fetch(bytes);
        if (st == rdma::WcStatus::Ok)
            co_return true;
        if (!cfg_.retry.enabled()) {
            // Seed semantics: without the retry machinery the model
            // reads target memory directly, so the data is usable
            // even when the wire-level fetch was judged lost.
            co_return true;
        }
        cRdmaErrors_->add();
        if (attempt >= cfg_.retry.maxRetries) {
            transportDead_ = true;
            co_return false;
        }
        cRdmaRetries_->add();
        co_await sim::sleep(cfg_.retry.backoff(attempt));
    }
}

sim::Co<void>
SnicMqueue::refreshRxCons(sim::Core &core)
{
    co_await core.exec(qp_.path().postCost);
    std::uint8_t buf[4];
    rdma::WcStatus st = co_await qp_.read(layout_.rxConsOff(), buf);
    if (st != rdma::WcStatus::Ok) {
        // The refresh is advisory (flow control): a failed read just
        // leaves the cache stale and conservative. No retry here —
        // a full-looking ring re-refreshes on the next push.
        cRdmaErrors_->add();
        co_return;
    }
    std::uint32_t observed = static_cast<std::uint32_t>(buf[0]) |
                             (static_cast<std::uint32_t>(buf[1]) << 8) |
                             (static_cast<std::uint32_t>(buf[2]) << 16) |
                             (static_cast<std::uint32_t>(buf[3]) << 24);
    rxConsCache_ = advance(rxConsCache_, observed);
    cRxConsRefreshes_->add();
}

sim::Task
SnicMqueue::asyncRefresh(sim::Core &core)
{
    refreshInFlight_ = true;
    co_await refreshRxCons(core);
    refreshInFlight_ = false;
}

sim::Co<bool>
SnicMqueue::pfcWaitForSpace(sim::Core &core)
{
    if (!rxPaused_) {
        rxPaused_ = true;
        pauseStart_ = sim_.now();
        cPfcPauses_->add();
        LYNX_TRACE(sim_, "mqueue", name_, ": pfc pause (occupancy ",
                   rxProduced_ - rxConsCache_, "/", layout_.slots, ")");
    }
    std::uint64_t xon = static_cast<std::uint64_t>(
        cfg_.pfc.xonFrac * static_cast<double>(layout_.slots));
    for (;;) {
        if (sim_.now() - pauseStart_ >= cfg_.pfc.pauseTimeout) {
            // Pause-storm guard: a drain that never comes (dead or
            // wedged accelerator) must not park the dispatcher
            // forever behind this queue — break the episode and let
            // the push fail over to the counted drop path.
            cPfcStormBreaks_->add();
            pfcResume();
            co_return false;
        }
        co_await sim::sleep(cfg_.pfc.pollInterval);
        co_await refreshRxCons(core);
        if (rxProduced_ - rxConsCache_ <= xon) {
            pfcResume();
            co_return true;
        }
    }
}

void
SnicMqueue::pfcResume()
{
    if (!rxPaused_)
        return;
    rxPaused_ = false;
    cPfcResumes_->add();
    hPauseTicks_->record(sim_.now() - pauseStart_);
    LYNX_TRACE(sim_, "mqueue", name_, ": pfc resume after ",
               sim_.now() - pauseStart_, " ticks");
}

sim::Co<bool>
SnicMqueue::rxPush(sim::Core &core, std::span<const std::uint8_t> payload,
                   std::uint32_t tag, std::uint32_t err)
{
    LYNX_ASSERT(payload.size() <= layout_.maxPayload(), name_,
                ": payload exceeds slot capacity");
    for (;;) {
        // Credit prefetch: once the ring looks half full, refresh the
        // consumer cache in the background so steady-state pushes
        // never block on the read round trip.
        if (!refreshInFlight_ &&
            rxProduced_ - rxConsCache_ >= layout_.slots / 2) {
            sim::spawn(sim_, asyncRefresh(core));
        }
        if (rxProduced_ - rxConsCache_ < layout_.slots)
            break;
        co_await refreshRxCons(core);
        if (rxProduced_ - rxConsCache_ < layout_.slots)
            break;
        // Genuinely full. Without PFC this is an overflow: the push
        // fails (UDP semantics — the caller drops), now *counted*
        // instead of vanishing into a generic failure. With PFC the
        // pusher pauses until the accelerator drains, then loops back
        // to re-validate (a concurrently resumed pusher may have
        // claimed the freed slots first).
        if (!cfg_.pfc.enabled || !co_await pfcWaitForSpace(core)) {
            cRxFull_->add();
            cOverflow_->add();
            co_return false;
        }
    }

    // Claim the slot *before* any suspension point: several listener
    // tasks may push into the same mqueue concurrently, and two
    // writers must never pick the same slot. Claim order equals seq
    // order; the accelerator consumes strictly by seq, so slightly
    // out-of-order deliveries on the QP are harmless.
    std::uint64_t mySlot = rxProduced_++;

    SlotMeta meta;
    meta.len = static_cast<std::uint32_t>(payload.size());
    meta.tag = tag;
    meta.err = err;
    meta.seq = static_cast<std::uint32_t>(mySlot + 1);
    std::uint64_t slotEnd = layout_.rxSlotEnd(mySlot);

    // A write whose retry budget is exhausted leaves a permanent gap
    // at mySlot: the accelerator's strict-seq consumption would wedge
    // on it. Record the slot so failover/revival can repair it with a
    // kSlotSkipErr marker, and report failure to the caller.
    auto lose = [&] {
        lostSlots_.push_back(mySlot);
        cSlotsLost_->add();
    };

    if (cfg_.writeBarrier) {
        // §5.1 GPU consistency workaround: RDMA write of the data,
        // blocking RDMA read as a write barrier, RDMA write of the
        // doorbell. Three ops, one of them blocking.
        SlotMeta noBell = meta;
        noBell.seq = 0;
        auto buf = encodeSlotWrite(payload, noBell);
        buf.resize(buf.size() - 4); // everything but the doorbell
        cRxWriteOps_->add(3);
        if (!co_await pushWrite(core, slotWriteOffset(slotEnd, meta.len),
                                std::move(buf))) {
            lose();
            co_return false;
        }
        bool barrierOk = false;
        for (int attempt = 0;; ++attempt) {
            co_await core.exec(qp_.path().postCost);
            if (co_await qp_.readBarrier() == rdma::WcStatus::Ok) {
                barrierOk = true;
                break;
            }
            if (!cfg_.retry.enabled())
                break; // seed semantics: barrier errors are invisible
            cRdmaErrors_->add();
            if (attempt >= cfg_.retry.maxRetries) {
                transportDead_ = true;
                break;
            }
            cRdmaRetries_->add();
            co_await sim::sleep(cfg_.retry.backoff(attempt));
        }
        if (cfg_.retry.enabled() && !barrierOk) {
            lose();
            co_return false;
        }
        std::uint32_t s = meta.seq;
        std::vector<std::uint8_t> bell{static_cast<std::uint8_t>(s),
                                       static_cast<std::uint8_t>(s >> 8),
                                       static_cast<std::uint8_t>(s >> 16),
                                       static_cast<std::uint8_t>(s >> 24)};
        if (!co_await pushWrite(core, slotEnd - 4, std::move(bell))) {
            lose();
            co_return false;
        }
    } else if (cfg_.coalesceMetadata) {
        // One contiguous low-to-high write; doorbell bytes land last.
        cRxWriteOps_->add();
        if (!co_await pushWrite(core, slotWriteOffset(slotEnd, meta.len),
                                encodeSlotWrite(payload, meta))) {
            lose();
            co_return false;
        }
    } else {
        // Separate data and metadata writes (2 ops; RC keeps order).
        cRxWriteOps_->add(2);
        if (!co_await pushWrite(core, slotWriteOffset(slotEnd, meta.len),
                                {payload.begin(), payload.end()})) {
            lose();
            co_return false;
        }
        std::vector<std::uint8_t> metaBuf(SlotMeta::bytes);
        auto putU32 = [&](std::size_t off, std::uint32_t v) {
            metaBuf[off] = static_cast<std::uint8_t>(v);
            metaBuf[off + 1] = static_cast<std::uint8_t>(v >> 8);
            metaBuf[off + 2] = static_cast<std::uint8_t>(v >> 16);
            metaBuf[off + 3] = static_cast<std::uint8_t>(v >> 24);
        };
        putU32(0, meta.len);
        putU32(4, meta.tag);
        putU32(8, meta.err);
        putU32(12, meta.seq);
        if (!co_await pushWrite(core, slotEnd - SlotMeta::bytes,
                                std::move(metaBuf))) {
            lose();
            co_return false;
        }
    }

    LYNX_TRACE(sim_, "mqueue", name_, ": rx push seq ", meta.seq,
               " len ", meta.len, " tag ", meta.tag);
    if (sim::SpanCollector *spans = sim_.spans())
        spans->stampTag(&qp_.target(), layout_.base, tag,
                        sim::Stage::MqueueWrite, sim_.now());
    cRxPushed_->add();
    cRxBytes_->add(meta.len);
    co_return true;
}

sim::Co<std::size_t>
SnicMqueue::rxPushBatch(sim::Core &core, std::span<const RxItem> items)
{
    // Modes that cannot coalesce across slots (the §5.1 barrier
    // sequence is strictly per-message; split-write mode has no
    // single contiguous image to emit) degrade to sequential pushes
    // with identical per-message timing — as does maxBatch = 1.
    if (cfg_.maxBatch <= 1 || cfg_.writeBarrier ||
        !cfg_.coalesceMetadata) {
        std::size_t n = 0;
        for (const RxItem &it : items) {
            bool ok = co_await rxPush(core, it.payload, it.tag, it.err);
            if (!ok)
                break;
            ++n;
        }
        co_return n;
    }

    for (const RxItem &it : items) {
        LYNX_ASSERT(it.payload.size() <= layout_.maxPayload(), name_,
                    ": payload exceeds slot capacity");
    }

    std::size_t accepted = 0;
    std::vector<SlotRecord> recs;
    recs.reserve(std::min<std::size_t>(
        items.size(), static_cast<std::size_t>(cfg_.maxBatch)));
    while (accepted < items.size()) {
        // Same credit prefetch / lazy refresh discipline as rxPush,
        // applied once per segment instead of once per message.
        if (!refreshInFlight_ &&
            rxProduced_ - rxConsCache_ >= layout_.slots / 2) {
            sim::spawn(sim_, asyncRefresh(core));
        }
        if (rxProduced_ - rxConsCache_ >= layout_.slots) {
            co_await refreshRxCons(core);
            if (rxProduced_ - rxConsCache_ >= layout_.slots) {
                if (cfg_.pfc.enabled &&
                    co_await pfcWaitForSpace(core)) {
                    continue; // drained: re-validate from the top
                }
                cRxFull_->add();
                cOverflow_->add(items.size() - accepted);
                break;
            }
        }
        std::uint64_t avail =
            layout_.slots - (rxProduced_ - rxConsCache_);
        std::size_t k = items.size() - accepted;
        k = std::min<std::size_t>(k, avail);
        k = std::min<std::size_t>(
            k, static_cast<std::size_t>(cfg_.maxBatch));
        // One segment must stay contiguous in the ring: stop at the
        // wrap boundary and emit the remainder as the next segment.
        k = std::min<std::size_t>(
            k, layout_.slots - rxProduced_ % layout_.slots);

        // Claim the whole segment before any suspension point so
        // concurrent pushers never pick overlapping slots.
        std::uint64_t firstSlot = rxProduced_;
        rxProduced_ += k;

        recs.clear();
        std::uint64_t segBytes = 0;
        for (std::size_t j = 0; j < k; ++j) {
            const RxItem &it = items[accepted + j];
            SlotMeta meta;
            meta.len = static_cast<std::uint32_t>(it.payload.size());
            meta.tag = it.tag;
            meta.err = it.err;
            meta.seq = static_cast<std::uint32_t>(firstSlot + j + 1);
            recs.push_back(SlotRecord{it.payload, meta});
            segBytes += meta.len;
        }
        auto [off, buf] = encodeRxBatchSegment(layout_, firstSlot, recs);
        // One post, one RDMA write, one trailing doorbell for the
        // whole segment.
        if (!co_await pushWrite(core, off, std::move(buf))) {
            // Retry budget exhausted: the whole claimed segment is a
            // sequence gap for the repair pass; the unaccepted suffix
            // is reported back to the caller.
            for (std::size_t j = 0; j < k; ++j)
                lostSlots_.push_back(firstSlot + j);
            cSlotsLost_->add(k);
            cRxWriteOps_->add();
            break;
        }
        LYNX_TRACE(sim_, "mqueue", name_, ": rx batch seq ",
                   firstSlot + 1, "..", firstSlot + k, " (", segBytes,
                   " B payload)");
        if (sim::SpanCollector *spans = sim_.spans()) {
            for (std::size_t j = 0; j < k; ++j)
                spans->stampTag(&qp_.target(), layout_.base,
                                items[accepted + j].tag,
                                sim::Stage::MqueueWrite, sim_.now());
        }
        cRxWriteOps_->add();
        cRxCoalesced_->add(k - 1);
        cRxPushed_->add(k);
        cRxBytes_->add(segBytes);
        accepted += k;
    }
    co_return accepted;
}

sim::Co<std::optional<TxMessage>>
SnicMqueue::pollTx(sim::Core &core)
{
    // The forwarder issues a stream of pipelined RDMA reads over the
    // TX doorbells and slots; modelling each read as a full blocking
    // round trip would serialize what the NIC overlaps. We therefore
    // check the doorbell against current memory (exact, because a
    // slot is never rewritten before its credit returns) and charge
    // the post cost plus the one-way fetch latency of the slot for a
    // hit. Misses are free: the forwarder only polls queues whose
    // doorbell watchpoint fired, and pays the round-robin scan cost
    // separately.
    cTxPolls_->add();
    std::uint64_t slotEnd = layout_.txSlotEnd(txConsumed_);
    SlotMeta meta = readSlotMeta(qp_.target(), slotEnd);
    if (meta.seq != static_cast<std::uint32_t>(txConsumed_ + 1))
        co_return std::nullopt;

    if (!co_await txFetch(core, meta.len + SlotMeta::bytes))
        co_return std::nullopt;

    TxMessage msg;
    msg.payload = readSlotPayload(qp_.target(), slotEnd, meta);
    msg.tag = meta.tag;
    msg.err = meta.err;
    ++txConsumed_;
    LYNX_TRACE(sim_, "mqueue", name_, ": tx pop seq ", meta.seq,
               " len ", meta.len, " tag ", meta.tag);
    cTxFetchOps_->add();
    cTxPopped_->add();
    cTxBytes_->add(meta.len);
    co_return msg;
}

sim::Co<std::vector<TxMessage>>
SnicMqueue::pollTxBatch(sim::Core &core, std::size_t maxN)
{
    // Doorbell scan against current memory — exact for the same
    // reason pollTx's check is (a slot is never rewritten before its
    // credit returns), so every slot ready now is still intact when
    // the pipelined fetch lands.
    cTxPolls_->add();
    std::size_t k = 0;
    std::uint64_t fetchBytes = 0;
    std::vector<SlotMeta> metas;
    while (k < maxN && k < layout_.slots) {
        SlotMeta meta =
            readSlotMeta(qp_.target(), layout_.txSlotEnd(txConsumed_ + k));
        if (meta.seq !=
            static_cast<std::uint32_t>(txConsumed_ + k + 1))
            break;
        fetchBytes += meta.len + SlotMeta::bytes;
        metas.push_back(meta);
        ++k;
    }
    if (k == 0)
        co_return std::vector<TxMessage>{};

    // One pipelined fetch for the whole run: a single post cost, the
    // fixed fetch latency once, and the serialization of every slot.
    if (!co_await txFetch(core, fetchBytes))
        co_return std::vector<TxMessage>{};

    std::vector<TxMessage> out;
    out.reserve(k);
    std::uint64_t payloadBytes = 0;
    for (std::size_t j = 0; j < k; ++j) {
        TxMessage msg;
        msg.payload = readSlotPayload(
            qp_.target(), layout_.txSlotEnd(txConsumed_ + j), metas[j]);
        msg.tag = metas[j].tag;
        msg.err = metas[j].err;
        payloadBytes += metas[j].len;
        out.push_back(std::move(msg));
    }
    txConsumed_ += k;
    LYNX_TRACE(sim_, "mqueue", name_, ": tx batch pop seq ",
               txConsumed_ - k + 1, "..", txConsumed_, " (",
               payloadBytes, " B payload)");
    cTxFetchOps_->add();
    cTxPopped_->add(k);
    cTxBytes_->add(payloadBytes);
    stats_.histogram("tx_batch_size").record(k);
    co_return out;
}

sim::Co<void>
SnicMqueue::commitTxCons(sim::Core &core)
{
    if (txCommitted_ == txConsumed_)
        co_return;
    std::uint64_t target = txConsumed_;
    if (!cfg_.retry.enabled()) {
        // Mark committed before suspending so a concurrent commit
        // does not double-post (the seed's discipline).
        txCommitted_ = target;
    }
    std::uint32_t v = static_cast<std::uint32_t>(target);
    std::vector<std::uint8_t> reg{static_cast<std::uint8_t>(v),
                                  static_cast<std::uint8_t>(v >> 8),
                                  static_cast<std::uint8_t>(v >> 16),
                                  static_cast<std::uint8_t>(v >> 24)};
    bool ok = co_await pushWrite(core, layout_.txConsOff(),
                                 std::move(reg));
    if (!ok)
        co_return; // credit still owed; recommitted after revival
    txCommitted_ = std::max(txCommitted_, target);
    cTxConsCommits_->add();
}

std::optional<std::uint32_t>
SnicMqueue::allocTag(const ClientRef &client)
{
    LYNX_ASSERT(kind_ == MqueueKind::Server,
                "tag table is a server-queue facility");
    if (freeTags_.empty()) {
        stats_.counter("tag_table_full").add();
        return std::nullopt;
    }
    std::uint32_t idx = freeTags_.back();
    freeTags_.pop_back();
    tags_[idx] = client;
    std::uint32_t tag = idx | (tagGen_[idx] << 16);
    if (cfg_.tenants && client.tenant != 0)
        cfg_.tenants->noteTagAlloc(client.tenant);
    // Dispatcher picked this queue and claimed the tag: that is the
    // dispatch-enqueue hop. The accelerator side only sees the 32-bit
    // tag, so bind tag -> trace id for the downstream stamps; the
    // binding dies with the tag in tryReleaseTag.
    if (sim::SpanCollector *spans = sim_.spans()) {
        if (client.traceId != 0) {
            spans->stamp(client.traceId, sim::Stage::DispatchEnqueue,
                         sim_.now());
            spans->bindTag(&qp_.target(), layout_.base, tag,
                           client.traceId);
        }
    }
    return tag;
}

ClientRef
SnicMqueue::releaseTag(std::uint32_t tag)
{
    std::optional<ClientRef> c = tryReleaseTag(tag);
    LYNX_ASSERT(c.has_value(), name_, ": response with unknown tag ",
                tag);
    return *c;
}

std::optional<ClientRef>
SnicMqueue::tryReleaseTag(std::uint32_t tag)
{
    std::uint32_t idx = tag & 0xffffu;
    std::uint32_t gen = tag >> 16;
    if (idx >= tags_.size() || !tags_[idx].has_value() ||
        tagGen_[idx] != gen)
        return std::nullopt;
    ClientRef c = std::move(*tags_[idx]);
    tags_[idx].reset();
    // Bump the generation so a duplicate/stale response carrying this
    // tag value can never match a future allocation of the index.
    tagGen_[idx] = (tagGen_[idx] + 1) & 0xffffu;
    freeTags_.push_back(idx);
    if (sim::SpanCollector *spans = sim_.spans())
        spans->unbindTag(&qp_.target(), layout_.base, tag);
    if (cfg_.tenants && c.tenant != 0)
        cfg_.tenants->noteTagRelease(c.tenant);
    return c;
}

const ClientRef *
SnicMqueue::peekTag(std::uint32_t tag) const
{
    std::uint32_t idx = tag & 0xffffu;
    std::uint32_t gen = tag >> 16;
    if (idx >= tags_.size() || !tags_[idx].has_value() ||
        tagGen_[idx] != gen)
        return nullptr;
    return &*tags_[idx];
}

std::vector<std::uint32_t>
SnicMqueue::allocatedTags() const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < tags_.size(); ++i)
        if (tags_[i].has_value())
            out.push_back(i | (tagGen_[i] << 16));
    return out;
}

sim::Co<bool>
SnicMqueue::repairGaps(sim::Core &core)
{
    std::sort(lostSlots_.begin(), lostSlots_.end());
    bool repaired = false;
    while (!lostSlots_.empty()) {
        std::uint64_t slot = lostSlots_.front();
        SlotMeta meta;
        meta.len = 0;
        meta.tag = 0;
        meta.err = kSlotSkipErr;
        meta.seq = static_cast<std::uint32_t>(slot + 1);
        std::uint64_t slotEnd = layout_.rxSlotEnd(slot);
        bool ok = co_await pushWrite(core, slotWriteOffset(slotEnd, 0),
                                     encodeSlotWrite({}, meta));
        if (!ok)
            co_return false; // still partitioned; next probe retries
        lostSlots_.erase(lostSlots_.begin());
        stats_.counter("slots_repaired").add();
        repaired = true;
        LYNX_TRACE(sim_, "mqueue", name_, ": repaired gap at seq ",
                   meta.seq);
    }
    if (repaired)
        transportDead_ = false;
    co_return true;
}

sim::Co<bool>
SnicMqueue::probeAlive(sim::Core &core)
{
    stats_.counter("probes").add();
    co_await core.exec(qp_.path().postCost);
    std::uint8_t buf[4];
    rdma::WcStatus st = co_await qp_.read(layout_.rxConsOff(), buf);
    if (st != rdma::WcStatus::Ok)
        co_return false;
    std::uint32_t observed = static_cast<std::uint32_t>(buf[0]) |
                             (static_cast<std::uint32_t>(buf[1]) << 8) |
                             (static_cast<std::uint32_t>(buf[2]) << 16) |
                             (static_cast<std::uint32_t>(buf[3]) << 24);
    rxConsCache_ = advance(rxConsCache_, observed);
    if (lostSlots_.empty())
        transportDead_ = false;
    co_return true;
}

std::optional<SnicMqueue::Pending>
SnicMqueue::popPending()
{
    if (pending_.empty())
        return std::nullopt;
    Pending p = pending_.front();
    pending_.pop_front();
    return p;
}

} // namespace lynx::core

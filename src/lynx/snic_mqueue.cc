#include "snic_mqueue.hh"

#include <algorithm>

#include "sim/task.hh"
#include "sim/trace.hh"

namespace lynx::core {

SnicMqueue::SnicMqueue(sim::Simulator &sim, std::string name,
                       rdma::QueuePair &qp, MqueueLayout layout,
                       MqueueKind kind, SnicMqueueConfig cfg)
    : sim_(sim), name_(std::move(name)), qp_(qp), layout_(layout),
      kind_(kind), cfg_(cfg)
{
    // Tag table sized to cover every in-flight request: the RX ring
    // bounds them, with slack for responses not yet forwarded.
    std::uint32_t tableSize = layout_.slots * 2;
    tags_.resize(tableSize);
    for (std::uint32_t i = 0; i < tableSize; ++i)
        freeTags_.push_back(tableSize - 1 - i);
    pendingActivity_ = std::make_unique<sim::Gate>(sim);

    cRxPushed_ = &stats_.counter("rx_pushed");
    cRxBytes_ = &stats_.counter("rx_bytes");
    cRxWriteOps_ = &stats_.counter("rx_write_ops");
    cRxCoalesced_ = &stats_.counter("rx_coalesced");
    cRxFull_ = &stats_.counter("rx_full");
    cRxConsRefreshes_ = &stats_.counter("rx_cons_refreshes");
    cTxPolls_ = &stats_.counter("tx_polls");
    cTxFetchOps_ = &stats_.counter("tx_fetch_ops");
    cTxPopped_ = &stats_.counter("tx_popped");
    cTxBytes_ = &stats_.counter("tx_bytes");
    cTxConsCommits_ = &stats_.counter("tx_cons_commits");
}

void
SnicMqueue::notePending(std::uint32_t tag, sim::Tick deadline)
{
    pending_.push_back(Pending{tag, deadline});
    pendingActivity_->open();
}

SnicMqueue::~SnicMqueue()
{
    if (txWatchInstalled_)
        qp_.target().unwatch(txWatchId_);
}

void
SnicMqueue::setTxActivityHandler(std::function<void()> fn)
{
    if (txWatchInstalled_)
        qp_.target().unwatch(txWatchId_);
    txWatchId_ = qp_.target().watch(layout_.txRingOff(),
                                    layout_.ringBytes(),
                                    [fn = std::move(fn)](auto, auto) {
                                        fn();
                                    });
    txWatchInstalled_ = true;
}

sim::Co<void>
SnicMqueue::refreshRxCons(sim::Core &core)
{
    co_await core.exec(qp_.path().postCost);
    std::uint8_t buf[4];
    co_await qp_.read(layout_.rxConsOff(), buf);
    std::uint32_t observed = static_cast<std::uint32_t>(buf[0]) |
                             (static_cast<std::uint32_t>(buf[1]) << 8) |
                             (static_cast<std::uint32_t>(buf[2]) << 16) |
                             (static_cast<std::uint32_t>(buf[3]) << 24);
    rxConsCache_ = advance(rxConsCache_, observed);
    cRxConsRefreshes_->add();
}

sim::Task
SnicMqueue::asyncRefresh(sim::Core &core)
{
    refreshInFlight_ = true;
    co_await refreshRxCons(core);
    refreshInFlight_ = false;
}

sim::Co<bool>
SnicMqueue::rxPush(sim::Core &core, std::span<const std::uint8_t> payload,
                   std::uint32_t tag, std::uint32_t err)
{
    LYNX_ASSERT(payload.size() <= layout_.maxPayload(), name_,
                ": payload exceeds slot capacity");
    // Credit prefetch: once the ring looks half full, refresh the
    // consumer cache in the background so steady-state pushes never
    // block on the read round trip.
    if (!refreshInFlight_ &&
        rxProduced_ - rxConsCache_ >= layout_.slots / 2) {
        sim::spawn(sim_, asyncRefresh(core));
    }
    if (rxProduced_ - rxConsCache_ >= layout_.slots) {
        co_await refreshRxCons(core);
        if (rxProduced_ - rxConsCache_ >= layout_.slots) {
            cRxFull_->add();
            co_return false;
        }
    }

    // Claim the slot *before* any suspension point: several listener
    // tasks may push into the same mqueue concurrently, and two
    // writers must never pick the same slot. Claim order equals seq
    // order; the accelerator consumes strictly by seq, so slightly
    // out-of-order deliveries on the QP are harmless.
    std::uint64_t mySlot = rxProduced_++;

    SlotMeta meta;
    meta.len = static_cast<std::uint32_t>(payload.size());
    meta.tag = tag;
    meta.err = err;
    meta.seq = static_cast<std::uint32_t>(mySlot + 1);
    std::uint64_t slotEnd = layout_.rxSlotEnd(mySlot);

    if (cfg_.writeBarrier) {
        // §5.1 GPU consistency workaround: RDMA write of the data,
        // blocking RDMA read as a write barrier, RDMA write of the
        // doorbell. Three posted ops, one of them blocking.
        SlotMeta noBell = meta;
        noBell.seq = 0;
        auto buf = encodeSlotWrite(payload, noBell);
        buf.resize(buf.size() - 4); // everything but the doorbell
        co_await core.exec(qp_.path().postCost);
        qp_.postWrite(slotWriteOffset(slotEnd, meta.len), std::move(buf));
        co_await core.exec(qp_.path().postCost);
        co_await qp_.readBarrier();
        co_await core.exec(qp_.path().postCost);
        std::uint32_t s = meta.seq;
        qp_.postWrite(slotEnd - 4,
                      {static_cast<std::uint8_t>(s),
                       static_cast<std::uint8_t>(s >> 8),
                       static_cast<std::uint8_t>(s >> 16),
                       static_cast<std::uint8_t>(s >> 24)});
        cRxWriteOps_->add(3);
    } else if (cfg_.coalesceMetadata) {
        // One contiguous low-to-high write; doorbell bytes land last.
        co_await core.exec(qp_.path().postCost);
        qp_.postWrite(slotWriteOffset(slotEnd, meta.len),
                      encodeSlotWrite(payload, meta));
        cRxWriteOps_->add();
    } else {
        // Separate data and metadata writes (2 ops; RC keeps order).
        co_await core.exec(qp_.path().postCost);
        qp_.postWrite(slotWriteOffset(slotEnd, meta.len),
                      {payload.begin(), payload.end()});
        std::vector<std::uint8_t> metaBuf(SlotMeta::bytes);
        auto putU32 = [&](std::size_t off, std::uint32_t v) {
            metaBuf[off] = static_cast<std::uint8_t>(v);
            metaBuf[off + 1] = static_cast<std::uint8_t>(v >> 8);
            metaBuf[off + 2] = static_cast<std::uint8_t>(v >> 16);
            metaBuf[off + 3] = static_cast<std::uint8_t>(v >> 24);
        };
        putU32(0, meta.len);
        putU32(4, meta.tag);
        putU32(8, meta.err);
        putU32(12, meta.seq);
        co_await core.exec(qp_.path().postCost);
        qp_.postWrite(slotEnd - SlotMeta::bytes, std::move(metaBuf));
        cRxWriteOps_->add(2);
    }

    LYNX_TRACE(sim_, "mqueue", name_, ": rx push seq ", meta.seq,
               " len ", meta.len, " tag ", meta.tag);
    cRxPushed_->add();
    cRxBytes_->add(meta.len);
    co_return true;
}

sim::Co<std::size_t>
SnicMqueue::rxPushBatch(sim::Core &core, std::span<const RxItem> items)
{
    // Modes that cannot coalesce across slots (the §5.1 barrier
    // sequence is strictly per-message; split-write mode has no
    // single contiguous image to emit) degrade to sequential pushes
    // with identical per-message timing — as does maxBatch = 1.
    if (cfg_.maxBatch <= 1 || cfg_.writeBarrier ||
        !cfg_.coalesceMetadata) {
        std::size_t n = 0;
        for (const RxItem &it : items) {
            bool ok = co_await rxPush(core, it.payload, it.tag, it.err);
            if (!ok)
                break;
            ++n;
        }
        co_return n;
    }

    for (const RxItem &it : items) {
        LYNX_ASSERT(it.payload.size() <= layout_.maxPayload(), name_,
                    ": payload exceeds slot capacity");
    }

    std::size_t accepted = 0;
    std::vector<SlotRecord> recs;
    recs.reserve(std::min<std::size_t>(
        items.size(), static_cast<std::size_t>(cfg_.maxBatch)));
    while (accepted < items.size()) {
        // Same credit prefetch / lazy refresh discipline as rxPush,
        // applied once per segment instead of once per message.
        if (!refreshInFlight_ &&
            rxProduced_ - rxConsCache_ >= layout_.slots / 2) {
            sim::spawn(sim_, asyncRefresh(core));
        }
        if (rxProduced_ - rxConsCache_ >= layout_.slots) {
            co_await refreshRxCons(core);
            if (rxProduced_ - rxConsCache_ >= layout_.slots) {
                cRxFull_->add();
                break;
            }
        }
        std::uint64_t avail =
            layout_.slots - (rxProduced_ - rxConsCache_);
        std::size_t k = items.size() - accepted;
        k = std::min<std::size_t>(k, avail);
        k = std::min<std::size_t>(
            k, static_cast<std::size_t>(cfg_.maxBatch));
        // One segment must stay contiguous in the ring: stop at the
        // wrap boundary and emit the remainder as the next segment.
        k = std::min<std::size_t>(
            k, layout_.slots - rxProduced_ % layout_.slots);

        // Claim the whole segment before any suspension point so
        // concurrent pushers never pick overlapping slots.
        std::uint64_t firstSlot = rxProduced_;
        rxProduced_ += k;

        recs.clear();
        std::uint64_t segBytes = 0;
        for (std::size_t j = 0; j < k; ++j) {
            const RxItem &it = items[accepted + j];
            SlotMeta meta;
            meta.len = static_cast<std::uint32_t>(it.payload.size());
            meta.tag = it.tag;
            meta.err = it.err;
            meta.seq = static_cast<std::uint32_t>(firstSlot + j + 1);
            recs.push_back(SlotRecord{it.payload, meta});
            segBytes += meta.len;
        }
        auto [off, buf] = encodeRxBatchSegment(layout_, firstSlot, recs);
        // One post, one RDMA write, one trailing doorbell for the
        // whole segment.
        co_await core.exec(qp_.path().postCost);
        qp_.postWrite(off, std::move(buf));
        LYNX_TRACE(sim_, "mqueue", name_, ": rx batch seq ",
                   firstSlot + 1, "..", firstSlot + k, " (", segBytes,
                   " B payload)");
        cRxWriteOps_->add();
        cRxCoalesced_->add(k - 1);
        cRxPushed_->add(k);
        cRxBytes_->add(segBytes);
        accepted += k;
    }
    co_return accepted;
}

sim::Co<std::optional<TxMessage>>
SnicMqueue::pollTx(sim::Core &core)
{
    // The forwarder issues a stream of pipelined RDMA reads over the
    // TX doorbells and slots; modelling each read as a full blocking
    // round trip would serialize what the NIC overlaps. We therefore
    // check the doorbell against current memory (exact, because a
    // slot is never rewritten before its credit returns) and charge
    // the post cost plus the one-way fetch latency of the slot for a
    // hit. Misses are free: the forwarder only polls queues whose
    // doorbell watchpoint fired, and pays the round-robin scan cost
    // separately.
    cTxPolls_->add();
    std::uint64_t slotEnd = layout_.txSlotEnd(txConsumed_);
    SlotMeta meta = readSlotMeta(qp_.target(), slotEnd);
    if (meta.seq != static_cast<std::uint32_t>(txConsumed_ + 1))
        co_return std::nullopt;

    co_await core.exec(qp_.path().postCost);
    co_await sim::sleep(qp_.path().nicLatency + qp_.path().oneWay +
                        qp_.path().serialization(meta.len +
                                                 SlotMeta::bytes));

    TxMessage msg;
    msg.payload = readSlotPayload(qp_.target(), slotEnd, meta);
    msg.tag = meta.tag;
    msg.err = meta.err;
    ++txConsumed_;
    LYNX_TRACE(sim_, "mqueue", name_, ": tx pop seq ", meta.seq,
               " len ", meta.len, " tag ", meta.tag);
    cTxFetchOps_->add();
    cTxPopped_->add();
    cTxBytes_->add(meta.len);
    co_return msg;
}

sim::Co<std::vector<TxMessage>>
SnicMqueue::pollTxBatch(sim::Core &core, std::size_t maxN)
{
    // Doorbell scan against current memory — exact for the same
    // reason pollTx's check is (a slot is never rewritten before its
    // credit returns), so every slot ready now is still intact when
    // the pipelined fetch lands.
    cTxPolls_->add();
    std::size_t k = 0;
    std::uint64_t fetchBytes = 0;
    std::vector<SlotMeta> metas;
    while (k < maxN && k < layout_.slots) {
        SlotMeta meta =
            readSlotMeta(qp_.target(), layout_.txSlotEnd(txConsumed_ + k));
        if (meta.seq !=
            static_cast<std::uint32_t>(txConsumed_ + k + 1))
            break;
        fetchBytes += meta.len + SlotMeta::bytes;
        metas.push_back(meta);
        ++k;
    }
    if (k == 0)
        co_return std::vector<TxMessage>{};

    // One pipelined fetch for the whole run: a single post cost, the
    // fixed fetch latency once, and the serialization of every slot.
    co_await core.exec(qp_.path().postCost);
    co_await sim::sleep(qp_.path().nicLatency + qp_.path().oneWay +
                        qp_.path().serialization(fetchBytes));

    std::vector<TxMessage> out;
    out.reserve(k);
    std::uint64_t payloadBytes = 0;
    for (std::size_t j = 0; j < k; ++j) {
        TxMessage msg;
        msg.payload = readSlotPayload(
            qp_.target(), layout_.txSlotEnd(txConsumed_ + j), metas[j]);
        msg.tag = metas[j].tag;
        msg.err = metas[j].err;
        payloadBytes += metas[j].len;
        out.push_back(std::move(msg));
    }
    txConsumed_ += k;
    LYNX_TRACE(sim_, "mqueue", name_, ": tx batch pop seq ",
               txConsumed_ - k + 1, "..", txConsumed_, " (",
               payloadBytes, " B payload)");
    cTxFetchOps_->add();
    cTxPopped_->add(k);
    cTxBytes_->add(payloadBytes);
    co_return out;
}

sim::Co<void>
SnicMqueue::commitTxCons(sim::Core &core)
{
    if (txCommitted_ == txConsumed_)
        co_return;
    txCommitted_ = txConsumed_;
    std::uint32_t v = static_cast<std::uint32_t>(txConsumed_);
    co_await core.exec(qp_.path().postCost);
    qp_.postWrite(layout_.txConsOff(),
                  {static_cast<std::uint8_t>(v),
                   static_cast<std::uint8_t>(v >> 8),
                   static_cast<std::uint8_t>(v >> 16),
                   static_cast<std::uint8_t>(v >> 24)});
    cTxConsCommits_->add();
}

std::optional<std::uint32_t>
SnicMqueue::allocTag(const ClientRef &client)
{
    LYNX_ASSERT(kind_ == MqueueKind::Server,
                "tag table is a server-queue facility");
    if (freeTags_.empty()) {
        stats_.counter("tag_table_full").add();
        return std::nullopt;
    }
    std::uint32_t tag = freeTags_.back();
    freeTags_.pop_back();
    tags_[tag] = client;
    return tag;
}

ClientRef
SnicMqueue::releaseTag(std::uint32_t tag)
{
    LYNX_ASSERT(tag < tags_.size() && tags_[tag].has_value(),
                name_, ": response with unknown tag ", tag);
    ClientRef c = *tags_[tag];
    tags_[tag].reset();
    freeTags_.push_back(tag);
    return c;
}

std::optional<SnicMqueue::Pending>
SnicMqueue::popPending()
{
    if (pending_.empty())
        return std::nullopt;
    Pending p = pending_.front();
    pending_.pop_front();
    return p;
}

} // namespace lynx::core

#include "runtime.hh"

#include <algorithm>

#include "lynx/calibration.hh"
#include "sim/span.hh"
#include "sim/trace.hh"
#include "workload/loadgen.hh"

namespace lynx::core {

Runtime::Runtime(sim::Simulator &sim, RuntimeConfig cfg)
    : sim_(sim), cfg_(std::move(cfg))
{
    LYNX_FATAL_IF(cfg_.cores.empty(), "Lynx runtime needs worker cores");
    LYNX_FATAL_IF(!cfg_.nic, "Lynx runtime needs a NIC");
    if (cfg_.failover.enabled) {
        // Failover implies the signalled-write/retry machinery (dead
        // transports must be *detected*) and stale-tag tolerance (a
        // revived accelerator may answer drained requests). Respect
        // an explicitly configured retry budget, otherwise install
        // the calibrated one.
        if (!cfg_.mq.retry.enabled()) {
            cfg_.mq.retry.maxRetries = calibration::rdmaSwRetryLimit;
            cfg_.mq.retry.backoffBase = calibration::rdmaSwBackoffBase;
            cfg_.mq.retry.backoffMax = calibration::rdmaSwBackoffMax;
        }
        cfg_.forwarder.tolerateStaleTags = true;
    }
    if (cfg_.congestion.enabled && cfg_.congestion.pfc.enabled &&
        !cfg_.mq.pfc.enabled) {
        // The congestion plane's PFC knobs propagate onto every
        // mqueue: a full RX ring pauses its pusher (backpressure into
        // the listeners/backend loops) instead of overflowing. An
        // explicitly configured mq.pfc wins.
        cfg_.mq.pfc = cfg_.congestion.pfc;
    }
    if (cfg_.tenancy.enabled) {
        // One PF-side tenant table, shared by every dispatcher
        // (admission + WRR classes), mqueue (ring-tag accounting)
        // and forwarder (generation check, per-tenant latency).
        tenants_ = std::make_unique<TenantTable>(sim_, cfg_.tenancy);
        cfg_.mq.tenants = tenants_.get();
        cfg_.forwarder.tenants = tenants_.get();
    }
    sim_.metrics().add("lynx.runtime", stats_);
}

Runtime::~Runtime()
{
    sim_.metrics().remove(stats_);
    for (auto &svc : services_) {
        sim_.metrics().remove(svc->dispatcher().stats());
        sim_.metrics().remove(svc->dispatcher().steerStats());
        sim_.metrics().remove(svc->dispatcher().admissionStats());
    }
}

AccelHandle &
Runtime::addAccelerator(const std::string &name, pcie::DeviceMemory &mem,
                        rdma::RdmaPathModel path)
{
    LYNX_ASSERT(services_.empty(),
                "register all accelerators before adding services");
    std::size_t nfwd = cfg_.forwardersPerAccel
                           ? static_cast<std::size_t>(
                                 cfg_.forwardersPerAccel)
                           : cfg_.cores.size();
    std::vector<sim::Core *> fwdCores;
    for (std::size_t i = 0; i < nfwd; ++i)
        fwdCores.push_back(&nextCore());
    // Rotate per accelerator: otherwise every accelerator's first
    // mqueue lands on the same worker core (single-queue-per-GPU
    // deployments would bottleneck one core).
    std::rotate(fwdCores.begin(),
                fwdCores.begin() +
                    static_cast<long>(accels_.size() % nfwd),
                fwdCores.end());
    accels_.push_back(std::make_unique<AccelHandle>(
        sim_, name, mem, path, fwdCores, *cfg_.nic, cfg_.stack,
        cfg_.backendStack.value_or(cfg_.stack), cfg_.forwarder));
    return *accels_.back();
}

Service &
Runtime::addService(ServiceConfig scfg)
{
    LYNX_ASSERT(!accels_.empty(), "no accelerators registered");
    net::Endpoint &ep = cfg_.nic->bind(scfg.proto, scfg.port);
    services_.push_back(std::make_unique<Service>(
        scfg, ep,
        DispatcherConfig{cfg_.dispatchCpu, cfg_.dispatchMaxBatch,
                         cfg_.failover.enabled, tenants_.get(),
                         cfg_.rss, cfg_.admission}));
    Service &svc = *services_.back();
    // The Dispatcher itself carries no Simulator reference; its owner
    // registers the stats on its behalf (removed in ~Runtime).
    sim_.metrics().add("lynx.dispatch." + scfg.name,
                       svc.dispatcher().stats());
    sim_.metrics().add("steer." + scfg.name,
                       svc.dispatcher().steerStats());
    sim_.metrics().add("admission." + scfg.name,
                       svc.dispatcher().admissionStats());

    for (auto &accel : accels_) {
        if (!scfg.accels.empty() &&
            std::find(scfg.accels.begin(), scfg.accels.end(),
                      accel.get()) == scfg.accels.end()) {
            continue;
        }
        Service::PerAccel pa;
        pa.accel = accel.get();
        for (int q = 0; q < scfg.queuesPerAccel; ++q) {
            MqueueLayout layout =
                accel->allocQueue(scfg.ringSlots, scfg.slotBytes);
            pa.layouts.push_back(layout);
            mqueues_.push_back(std::make_unique<SnicMqueue>(
                sim_,
                scfg.name + "." + accel->name() + ".mq" +
                    std::to_string(q),
                accel->qp(), layout, MqueueKind::Server, cfg_.mq));
            SnicMqueue *mq = mqueues_.back().get();
            svc.dispatcher().addQueue(mq);
            accel->addQueue(mq, scfg.port);
        }
        svc.perAccel_.push_back(std::move(pa));
    }
    return svc;
}

ClientQueueRef
Runtime::addClientQueue(AccelHandle &accel, const std::string &name,
                        net::Address backend, net::Protocol proto,
                        std::uint32_t ringSlots, std::uint32_t slotBytes)
{
    MqueueLayout layout = accel.allocQueue(ringSlots, slotBytes);
    mqueues_.push_back(std::make_unique<SnicMqueue>(
        sim_, name, accel.qp(), layout, MqueueKind::Client, cfg_.mq));
    SnicMqueue *mq = mqueues_.back().get();

    BackendRoute route;
    route.dst = backend;
    route.proto = proto;
    route.srcPort = nextEphemeralPort_++;
    accel.addQueue(mq, 0, route);

    net::Endpoint &ep = cfg_.nic->bind(proto, route.srcPort);
    ClientQueueRef ref{&accel, layout, mq};
    backendBindings_.push_back(BackendBinding{ref, &ep, proto});
    return ref;
}

void
Runtime::start()
{
    LYNX_ASSERT(!started_, "runtime started twice");
    started_ = true;

    int listeners = cfg_.listenersPerService
                        ? cfg_.listenersPerService
                        : static_cast<int>(cfg_.cores.size());
    for (auto &svc : services_) {
        for (int i = 0; i < listeners; ++i)
            sim::spawn(sim_, listenLoop(*svc, nextCore()));
    }
    for (auto &b : backendBindings_)
        sim::spawn(sim_, backendLoop(b.ref, *b.ep, b.proto, nextCore()));
    for (auto &accel : accels_)
        accel->startForwarders();
    if (cfg_.failover.enabled) {
        for (auto &svc : services_) {
            monitors_.push_back(std::make_unique<HealthMonitor>(
                sim_, svc->config().name + ".monitor",
                svc->dispatcher(), nextCore(), cfg_.failover));
            monitors_.back()->start();
        }
    }
    if (tenants_) {
        for (auto &svc : services_) {
            tenantGates_.push_back(
                std::make_unique<sim::Gate>(sim_));
            sim::Gate *gate = tenantGates_.back().get();
            Dispatcher *d = &svc->dispatcher();
            // Deferred work reopens the gate from two directions:
            // the dispatcher left a backlog (couldn't place it), or
            // table capacity freed (a completion/abandon/tag
            // release) while a backlog exists.
            d->setTenantBacklogHook([gate] { gate->open(); });
            tenants_->onCapacityFreed([d, gate] {
                if (d->hasTenantPending())
                    gate->open();
            });
            sim::spawn(sim_,
                       tenantDrainLoop(*svc, nextCore(), *gate));
        }
    }
}

sim::Task
Runtime::tenantDrainLoop(Service &svc, sim::Core &core,
                         sim::Gate &gate)
{
    for (;;) {
        co_await gate.wait();
        gate.close();
        // Small hysteresis: batch several completions (or a burst of
        // deferred arrivals) into one pump sweep.
        if (cfg_.tenancy.drainDelay > 0)
            co_await sim::sleep(cfg_.tenancy.drainDelay);
        co_await svc.dispatcher().pumpTenants(core);
        // Whatever is still deferred waits for the next capacity
        // hook; parking on the closed gate keeps the idle world
        // event-free (sim.run() terminates).
    }
}

sim::Task
Runtime::listenLoop(Service &svc, sim::Core &core)
{
    net::Protocol proto = svc.config().proto;
    sim::Counter &rxMsgs = stats_.counter("rx_msgs");
    for (;;) {
        net::Message msg = co_await svc.endpoint().recv();
        LYNX_TRACE(sim_, "lynx", svc.config().name, ": rx from ",
                   msg.src, " (", msg.size(), " B)");
        if (sim::SpanCollector *spans = sim_.spans())
            spans->stamp(msg.traceId, sim::Stage::SnicIngress,
                         sim_.now());
        rxMsgs.add();
        co_await core.exec(
            cfg_.stack.cost(proto, net::Dir::Recv, msg.size()));
        co_await svc.dispatcher().dispatch(core, std::move(msg));
        // Batching flush point: once the ingress backlog drains,
        // push the staged batches out. When a staged batch targets a
        // ring that is already backlogged, linger first — the
        // accelerator would not reach the message immediately anyway,
        // so waiting for company costs (nearly) nothing and lets
        // in-flight arrivals join the same coalesced write. An empty
        // ring flushes immediately: an isolated message on an idle
        // system is never delayed.
        if (svc.dispatcher().hasStaged() &&
            svc.endpoint().backlog() == 0) {
            if (cfg_.dispatchFlushLinger > 0 &&
                svc.dispatcher().stagedBehindBusyRing())
                co_await sim::sleep(cfg_.dispatchFlushLinger);
            if (svc.dispatcher().hasStaged() &&
                svc.endpoint().backlog() == 0) {
                co_await svc.dispatcher().flush(core);
            }
        }
    }
}

sim::Task
Runtime::backendLoop(ClientQueueRef ref, net::Endpoint &ep,
                     net::Protocol proto, sim::Core &core)
{
    // Push into the client mqueue's RX ring; responses must not be
    // dropped (TCP semantics), so retry while the accelerator drains.
    // Each failed attempt is an mqueue `overflow` plus a retry here
    // (with PFC enabled rxPush parks inside the mqueue instead, so
    // this loop rarely spins).
    sim::Counter &pushRetries = stats_.counter("backend_push_retries");
    auto push = [&](std::span<const std::uint8_t> payload,
                    std::uint32_t tag,
                    std::uint32_t err) -> sim::Co<void> {
        for (;;) {
            bool ok = co_await ref.mq->rxPush(core, payload, tag, err);
            if (ok)
                co_return;
            pushRetries.add();
            co_await sim::sleep(sim::microseconds(1));
        }
    };

    sim::Counter &timeouts = stats_.counter("backend_timeouts");
    sim::Counter &responses = stats_.counter("backend_responses");

    for (;;) {
        // Wait until at least one backend request is in flight.
        while (!ref.mq->hasPending()) {
            ref.mq->pendingActivity().close();
            co_await ref.mq->pendingActivity().wait();
        }
        // Wait for the response, bounded by the oldest deadline; an
        // expiry becomes an empty message with a non-zero error
        // status — the §5.1 metadata error channel.
        sim::Tick deadline = ref.mq->oldestPending()->deadline;
        sim::Tick wait = deadline > sim_.now() ? deadline - sim_.now()
                                               : 1;
        auto msg = co_await workload::recvTimeout(sim_, ep, wait);
        if (!msg) {
            auto expired = ref.mq->popPending();
            timeouts.add();
            co_await push({}, expired->tag, /*err=*/1);
            continue;
        }
        responses.add();
        co_await core.exec(cfg_.backendStack.value_or(cfg_.stack)
                               .cost(proto, net::Dir::Recv,
                                     msg->size()));
        auto pending = ref.mq->popPending();
        if (!pending) {
            sim::warn(ref.mq->name(),
                      ": backend response with no pending request");
            continue;
        }
        co_await push(msg->payload, pending->tag, /*err=*/0);
    }
}

std::vector<std::unique_ptr<AccelQueue>>
Runtime::makeAccelQueues(const Service &svc, const AccelHandle &accel)
{
    std::vector<std::unique_ptr<AccelQueue>> out;
    const auto &layouts = svc.layoutsFor(accel);
    for (std::size_t i = 0; i < layouts.size(); ++i) {
        out.push_back(std::make_unique<AccelQueue>(
            sim_,
            accel.name() + ".gio" + std::to_string(i),
            const_cast<AccelHandle &>(accel).memory(), layouts[i],
            cfg_.gio));
    }
    return out;
}

std::unique_ptr<AccelQueue>
Runtime::makeAccelQueue(const ClientQueueRef &ref)
{
    return std::make_unique<AccelQueue>(sim_, ref.mq->name() + ".gio",
                                        ref.accel->memory(), ref.layout,
                                        cfg_.gio);
}

} // namespace lynx::core

/**
 * @file
 * The SNIC-side view of an mqueue: the Remote Message Queue Manager
 * of paper §4.2/§5.1.
 *
 * All access to the rings in accelerator memory goes through the
 * accelerator's RC queue pair:
 *
 *  - RX push: one coalesced RDMA write of payload+metadata+doorbell
 *    (the §5.1 optimization), or the 3-op consistency-barrier
 *    sequence (data write, blocking RDMA read, doorbell write) when
 *    `writeBarrier` is set;
 *  - flow control: the SNIC tracks its own producer count and a
 *    *cached* copy of the accelerator's consumer register, refreshed
 *    by an RDMA read only when the ring looks full;
 *  - TX pop: an RDMA read snapshots the next TX slot; a doorbell
 *    match yields a message. Credit is returned by writing txCons.
 *
 * Server mqueues own a tag table mapping in-flight requests to the
 * client they came from ("the response will be sent to the client
 * from which the request was originally received", §4.3); client
 * mqueues keep a FIFO of pending request tags for matching backend
 * responses.
 */

#ifndef LYNX_LYNX_SNIC_MQUEUE_HH
#define LYNX_LYNX_SNIC_MQUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "lynx/mqueue.hh"
#include "net/congestion.hh"
#include "net/message.hh"
#include "rdma/qp.hh"
#include "sim/co.hh"
#include "sim/processor.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"

namespace lynx::core {

class TenantTable;

/** Server mqueues serve a listening port; client mqueues reach a
 *  fixed backend destination (§4.3). */
enum class MqueueKind { Server, Client };

/** SNIC-side behaviour switches. */
struct SnicMqueueConfig
{
    /** Coalesce payload, metadata and doorbell into one RDMA write
     *  (§5.1). Off = separate data and doorbell writes. */
    bool coalesceMetadata = true;

    /** Use the GPU consistency workaround: data write + blocking
     *  RDMA read barrier + doorbell write (§5.1; adds ~5 us and
     *  disables coalescing). */
    bool writeBarrier = false;

    /** Maximum messages rxPushBatch() emits as ONE coalesced RDMA
     *  write (one post cost, one trailing doorbell). 1 = per-message
     *  writes, exactly the unbatched behaviour. Batch writes fall
     *  back to per-slot pushes at a ring-wrap boundary (each segment
     *  stays contiguous) and under `writeBarrier`/split-write modes
     *  (see docs/INTERNALS.md §5). */
    int maxBatch = 1;

    /** Surface RDMA completion errors on ring accesses and retry
     *  them with exponential backoff. Off (maxRetries = 0, the
     *  default) keeps the seed's posted, fire-and-forget writes with
     *  bit-identical timing; required when a fault plan is bound to
     *  the QP and recovery matters (docs/INTERNALS.md §7). */
    rdma::RdmaRetryPolicy retry;

    /** 802.1Qbb-style PFC on the RX ring: a push that finds the ring
     *  full pauses (parking the pushing task — backpressure into the
     *  dispatcher/forwarder) instead of failing, polling the consumer
     *  register until occupancy drains to the XON threshold or the
     *  pause-storm guard breaks the episode. Off by default: a full
     *  ring fails the push immediately (seed timing), counted in the
     *  `overflow` counter. Usually copied from
     *  net::CongestionConfig::pfc by the Runtime. */
    net::PfcConfig pfc;

    /** Tenant table for per-tenant ring-tag accounting (mqueue
     *  quotas, lynx/tenant.hh): the allocTag/release paths notify it
     *  so quotas stay balanced across failover requeues too. Null
     *  (default) = untenanted, zero overhead. Set by the Runtime
     *  when its TenantConfig is enabled. */
    TenantTable *tenants = nullptr;
};

/** A message popped from an mqueue's TX ring. */
struct TxMessage
{
    std::vector<std::uint8_t> payload;
    std::uint32_t tag = 0;
    std::uint32_t err = 0;
};

/** Identity of the client an in-flight request came from, plus the
 *  request's generator bookkeeping echoed back on the response. */
struct ClientRef
{
    net::Address addr;
    net::Protocol proto = net::Protocol::Udp;
    std::uint64_t seq = 0;
    sim::Tick sentAt = 0;

    /** Span-tracing id of the request (0 when tracing is off); the
     *  forwarder copies it onto the response so the client can close
     *  the span. */
    std::uint64_t traceId = 0;

    /** Owning tenant (0 = untenanted) and the tenant's tag-namespace
     *  generation at dispatch time. The forwarder checks the
     *  generation against the TenantTable before answering: a
     *  retired tenant's responses are dropped-and-counted, never
     *  delivered stale (lynx/tenant.hh). */
    std::uint16_t tenant = 0;
    std::uint16_t tenantGen = 0;

    /** Copy of the request payload, kept only when the dispatcher
     *  runs with payload retention (failover): it is what health
     *  draining re-queues to a surviving mqueue. Empty otherwise. */
    std::vector<std::uint8_t> payload;
};

/** SNIC-side manager of one mqueue. */
class SnicMqueue
{
  public:
    SnicMqueue(sim::Simulator &sim, std::string name, rdma::QueuePair &qp,
               MqueueLayout layout, MqueueKind kind,
               SnicMqueueConfig cfg = {});

    SnicMqueue(const SnicMqueue &) = delete;
    SnicMqueue &operator=(const SnicMqueue &) = delete;

    ~SnicMqueue();

    const std::string &name() const { return name_; }
    MqueueKind kind() const { return kind_; }
    const MqueueLayout &layout() const { return layout_; }

    /**
     * Push one message into the RX ring. Charges post cost(s) on
     * @p core, refreshes the consumer cache over RDMA if the ring
     * looks full.
     * @return false if the ring is genuinely full (caller drops —
     * UDP semantics — or retries).
     */
    sim::Co<bool> rxPush(sim::Core &core,
                         std::span<const std::uint8_t> payload,
                         std::uint32_t tag, std::uint32_t err = 0);

    /** One message of an rxPushBatch() call. */
    struct RxItem
    {
        std::span<const std::uint8_t> payload;
        std::uint32_t tag = 0;
        std::uint32_t err = 0;
    };

    /**
     * Push @p items into the RX ring, coalescing up to
     * `cfg.maxBatch` contiguous slots per RDMA write: one post cost
     * and one trailing doorbell cover the whole segment. Segments
     * split at ring-wrap boundaries; with `maxBatch` 1, write-barrier
     * or split-write modes this degrades to sequential rxPush()
     * calls with identical timing.
     * @return how many messages were accepted (a prefix of @p items;
     * fewer than items.size() means the ring filled up).
     */
    sim::Co<std::size_t> rxPushBatch(sim::Core &core,
                                     std::span<const RxItem> items);

    /**
     * Try to pop the next TX-ring message: one RDMA slot read.
     * @return the message if its doorbell had been rung.
     */
    sim::Co<std::optional<TxMessage>> pollTx(sim::Core &core);

    /**
     * Pop every ready TX-ring message (up to @p maxN) in ONE
     * pipelined RDMA fetch: a single post cost plus the serialization
     * of all ready slots, instead of a post + fetch round per slot.
     * @return the popped messages, in seq order (empty if none ready).
     */
    sim::Co<std::vector<TxMessage>> pollTxBatch(sim::Core &core,
                                                std::size_t maxN);

    /** @return RX messages pushed but (as far as the cached consumer
     *  register shows) not yet consumed by the accelerator. Free —
     *  no RDMA; may over-estimate until the next cache refresh. */
    std::uint64_t
    rxBacklogEstimate() const
    {
        return rxProduced_ - rxConsCache_;
    }

    /** @return whether an RX-ring PFC pause episode is in progress
     *  (some pusher is parked waiting for the accelerator to drain). */
    bool rxPaused() const { return rxPaused_; }

    /** @return whether TX credit must be committed (pending pops). */
    bool txCommitPending() const { return txCommitted_ != txConsumed_; }

    /** Write the txCons credit register back to the accelerator. */
    sim::Co<void> commitTxCons(sim::Core &core);

    /**
     * Install @p fn to run whenever the accelerator writes into this
     * queue's TX ring (the forwarder's wakeup hook).
     */
    void setTxActivityHandler(std::function<void()> fn);

    /** @{ Server-queue tag table.
     *
     *  A tag value encodes (table index | generation << 16). The
     *  generation bumps on every release, so a *stale* response —
     *  e.g. from a revived accelerator answering a request whose tag
     *  was drained and since re-allocated by failover — can never be
     *  mis-matched to a new client (tryReleaseTag rejects it). */
    std::optional<std::uint32_t> allocTag(const ClientRef &client);

    /** Release @p tag; panics on an unknown/stale tag (the seed's
     *  strict behaviour — a stale tag without failover is a bug). */
    ClientRef releaseTag(std::uint32_t tag);

    /** Release @p tag if it is currently allocated with a matching
     *  generation; @return nullopt for unknown/stale tags (failover
     *  drains and duplicate responses after revival land here). */
    std::optional<ClientRef> tryReleaseTag(std::uint32_t tag);

    /** @return every currently allocated tag (generation-encoded),
     *  i.e. the in-flight requests a health drain must re-queue. */
    std::vector<std::uint32_t> allocatedTags() const;

    /** Non-destructive tag lookup: @return the ClientRef @p tag is
     *  currently allocated to, or null for unknown/stale tags. The
     *  forwarder's WRR traffic classes use it to learn a fetched TX
     *  slot's tenant before releasing the tag. */
    const ClientRef *peekTag(std::uint32_t tag) const;

    /** @return requests with an allocated tag, i.e. dispatched but
     *  not yet answered. Exact and SNIC-local (no RDMA), unlike
     *  rxBacklogEstimate()'s stale consumer cache. */
    std::size_t
    tagsInFlight() const
    {
        return tags_.size() - freeTags_.size();
    }

    /** @return total tag-table capacity — the denominator of the
     *  occupancy fraction admission control sheds on. */
    std::size_t tagCapacity() const { return tags_.size(); }
    /** @} */

    /** @{ Transport health (fault injection + failover).
     *
     *  When a ring access exhausts its software retry budget the
     *  mqueue marks itself transport-dead; the health monitor reacts
     *  by failing the queue over. RX slots whose write was lost are
     *  remembered so revival can repair the sequence-number gap. */

    /** @return whether a ring access exhausted its retry budget and
     *  the queue needs failover + repair. */
    bool transportDead() const { return transportDead_; }

    /** RX slots claimed but never landed (retry budget exhausted). */
    std::size_t lostSlotCount() const { return lostSlots_.size(); }

    /**
     * Rewrite every lost RX slot as a zero-length kSlotSkipErr
     * message so the accelerator's strict-seq consumption can pass
     * the gap; clears the transport-dead flag when all repairs land.
     * @return false while the transport still fails (try again at
     * the next probe).
     */
    sim::Co<bool> repairGaps(sim::Core &core);

    /**
     * Revival probe: one signalled RDMA read of the rxCons register.
     * On success refreshes the consumer cache and clears the
     * transport-dead flag (if no gaps remain un-repaired).
     * @return whether the read completed Ok.
     */
    sim::Co<bool> probeAlive(sim::Core &core);

    /** Re-fire the TX activity handler (health monitor revival hook:
     *  wakes the forwarder to re-poll doorbells that rang while the
     *  queue was dead or its transport was failing). */
    void
    nudgeTx()
    {
        if (txActivityFn_)
            txActivityFn_();
    }
    /** @} */

    /** @{ Client-queue pending-request FIFO.
     *  Each in-flight backend request carries the deadline by which
     *  its response must arrive; the backend listener turns expired
     *  entries into error responses (the mqueue metadata's "error
     *  status from the Bluefield if a connection error is detected",
     *  §5.1). */
    struct Pending
    {
        std::uint32_t tag;
        sim::Tick deadline;
    };

    void notePending(std::uint32_t tag, sim::Tick deadline);
    std::optional<Pending> popPending();
    bool hasPending() const { return !pending_.empty(); }
    const Pending *oldestPending() const
    {
        return pending_.empty() ? nullptr : &pending_.front();
    }
    /** Opened whenever notePending() runs (backend-listener wakeup). */
    sim::Gate &pendingActivity() { return *pendingActivity_; }
    /** @} */

    sim::StatSet &stats() { return stats_; }

  private:
    /**
     * Emit one RX-ring write: posted fire-and-forget when the retry
     * policy is off (the seed fast path, bit-identical), otherwise
     * signalled with software retries + exponential backoff.
     * @return false when the retry budget is exhausted (the caller
     * records the lost slot; transportDead() is set).
     */
    sim::Co<bool> pushWrite(sim::Core &core, std::uint64_t off,
                            std::vector<std::uint8_t> buf);

    /** Emit one pipelined TX fetch of @p bytes, with software retries
     *  under the retry policy (when enabled). @return whether a fetch
     *  ultimately succeeded; false sets transportDead(). */
    sim::Co<bool> txFetch(sim::Core &core, std::uint64_t bytes);

    /** Refresh the cached rxCons register over RDMA. */
    sim::Co<void> refreshRxCons(sim::Core &core);

    /**
     * PFC pause: park the pushing task, polling the consumer register
     * every `pfc.pollInterval` until ring occupancy drains to the XON
     * threshold (@return true — the caller re-validates and retries)
     * or the episode exceeds `pfc.pauseTimeout` (storm guard;
     * @return false — the caller falls back to the counted drop
     * path). Only called on a genuinely full ring with PFC enabled.
     */
    sim::Co<bool> pfcWaitForSpace(sim::Core &core);

    /** End the current pause episode (counts the resume and records
     *  the pause duration; pause/resume always pair). */
    void pfcResume();

    /** Background credit prefetch: refresh the consumer cache before
     *  the ring *looks* full, so the push path rarely blocks on the
     *  read round trip. */
    sim::Task asyncRefresh(sim::Core &core);

    static std::uint64_t
    advance(std::uint64_t cache, std::uint32_t observed)
    {
        return cache + static_cast<std::uint32_t>(
                           observed - static_cast<std::uint32_t>(cache));
    }

    sim::Simulator &sim_;
    std::string name_;
    rdma::QueuePair &qp_;
    MqueueLayout layout_;
    MqueueKind kind_;
    SnicMqueueConfig cfg_;

    std::uint64_t rxProduced_ = 0;
    std::uint64_t rxConsCache_ = 0;
    bool refreshInFlight_ = false;
    std::uint64_t txConsumed_ = 0;
    std::uint64_t txCommitted_ = 0;

    /** Tag table (server queues): index -> client, with freelist and
     *  per-index generation (stale-tag detection, see allocTag). */
    std::vector<std::optional<ClientRef>> tags_;
    std::vector<std::uint32_t> freeTags_;
    std::vector<std::uint32_t> tagGen_;

    /** Transport health (fault injection). */
    bool transportDead_ = false;
    std::vector<std::uint64_t> lostSlots_;

    /** PFC pause episode state (cfg_.pfc). */
    bool rxPaused_ = false;
    sim::Tick pauseStart_ = 0;

    /** Pending backend requests (client queues), FIFO. */
    std::deque<Pending> pending_;
    std::unique_ptr<sim::Gate> pendingActivity_;

    std::uint64_t txWatchId_ = 0;
    bool txWatchInstalled_ = false;
    /** Copy of the TX activity handler, for nudgeTx(). */
    std::function<void()> txActivityFn_;

    sim::StatSet stats_;

    /** Hot-path counters, resolved once at construction (a string
     *  lookup per message would dominate the simulator hot loop). */
    sim::Counter *cRxPushed_;
    sim::Counter *cRxBytes_;
    sim::Counter *cRxWriteOps_;
    sim::Counter *cRxCoalesced_;
    sim::Counter *cRxFull_;
    sim::Counter *cRxConsRefreshes_;
    sim::Counter *cTxPolls_;
    sim::Counter *cTxFetchOps_;
    sim::Counter *cTxPopped_;
    sim::Counter *cTxBytes_;
    sim::Counter *cTxConsCommits_;
    sim::Counter *cRdmaErrors_;
    sim::Counter *cRdmaRetries_;
    sim::Counter *cSlotsLost_;
    sim::Counter *cOverflow_;
    sim::Counter *cPfcPauses_;
    sim::Counter *cPfcResumes_;
    sim::Counter *cPfcStormBreaks_;
    sim::Histogram *hPauseTicks_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_SNIC_MQUEUE_HH

/**
 * @file
 * The Lynx runtime: the generic, application-agnostic network server
 * that runs on the SNIC (or, source-compatibly, on host CPU cores —
 * paper §5.1: "the Bluefield version of Lynx is source-compatible to
 * run on X86").
 *
 * A Runtime owns, per paper Fig. 4:
 *  - the Network Server: listener tasks that perform transport
 *    processing on the SNIC cores and feed the Message Dispatcher;
 *  - one Dispatcher per service (listening port);
 *  - one Forwarder + RC QueuePair per managed accelerator (local or
 *    remote — only the RdmaPathModel differs, §5.5);
 *  - backend listeners that steer responses of client mqueues back
 *    into their RX rings.
 *
 * The host CPU's only role is setup: scenario code creates the
 * runtime, registers accelerators and services, hands the resulting
 * mqueue layouts to accelerator-side code (gio), and calls start().
 * From then on no host core is involved ("remains idle from that
 * point", §4.3).
 *
 * Lifetime: the Runtime installs watchpoints on the accelerators'
 * DeviceMemory regions, so it must be destroyed *before* them —
 * declare accelerators (and their memories) before the Runtime.
 */

#ifndef LYNX_LYNX_RUNTIME_HH
#define LYNX_LYNX_RUNTIME_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lynx/dispatcher.hh"
#include "lynx/failover.hh"
#include "lynx/forwarder.hh"
#include "lynx/gio.hh"
#include "lynx/snic_mqueue.hh"
#include "lynx/tenant.hh"
#include "net/network.hh"
#include "net/nic.hh"
#include "net/stack.hh"
#include "rdma/qp.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"

namespace lynx::core {

class Runtime;

/** One managed accelerator: its memory, QP, forwarders, allocator.
 *
 * All the accelerator's mqueues share one RC QP (§5.1), but their
 * egress is pumped by several forwarding loops so that a single
 * accelerator with many mqueues exploits every SNIC worker core.
 */
class AccelHandle
{
  public:
    AccelHandle(sim::Simulator &sim, std::string name,
                pcie::DeviceMemory &mem, rdma::RdmaPathModel path,
                const std::vector<sim::Core *> &fwdCores, net::Nic &nic,
                net::StackProfile stack, net::StackProfile backendStack,
                ForwarderConfig fwdCfg)
        : name_(std::move(name)), mem_(mem),
          qp_(sim, name_ + ".qp", mem, path)
    {
        LYNX_ASSERT(!fwdCores.empty(), name_, ": needs forwarder cores");
        for (std::size_t i = 0; i < fwdCores.size(); ++i) {
            forwarders_.push_back(std::make_unique<Forwarder>(
                sim, name_ + ".fwd" + std::to_string(i), *fwdCores[i],
                nic, stack, backendStack, fwdCfg));
        }
    }

    const std::string &name() const { return name_; }
    pcie::DeviceMemory &memory() { return mem_; }
    rdma::QueuePair &qp() { return qp_; }

    /** Assign @p mq to the next forwarding loop round-robin. */
    void
    addQueue(SnicMqueue *mq, std::uint16_t servicePort,
             std::optional<BackendRoute> route = std::nullopt)
    {
        forwarders_[fwdRr_++ % forwarders_.size()]->addQueue(
            mq, servicePort, std::move(route));
    }

    /** Spawn every forwarding loop. */
    void
    startForwarders()
    {
        for (auto &f : forwarders_)
            f->start();
    }

    /** Carve an mqueue region out of the accelerator's memory. */
    MqueueLayout
    allocQueue(std::uint32_t slots, std::uint32_t slotBytes)
    {
        MqueueLayout l;
        l.base = allocOff_;
        l.slots = slots;
        l.slotBytes = slotBytes;
        allocOff_ += (l.totalBytes() + 63) / 64 * 64;
        LYNX_ASSERT(allocOff_ <= mem_.size(), name_,
                    ": out of device memory for mqueues");
        return l;
    }

  private:
    std::string name_;
    pcie::DeviceMemory &mem_;
    rdma::QueuePair qp_;
    std::vector<std::unique_ptr<Forwarder>> forwarders_;
    std::size_t fwdRr_ = 0;
    std::uint64_t allocOff_ = 0;
};

/** Parameters of one network-facing service. */
struct ServiceConfig
{
    std::string name = "svc";
    std::uint16_t port = 7000;
    net::Protocol proto = net::Protocol::Udp;

    /** Server mqueues created on each accelerator ("Each accelerator
     *  may have more than one server mqueue associated with the same
     *  port, e.g., to allow higher parallelism", §4.3). */
    int queuesPerAccel = 1;

    std::uint32_t ringSlots = 16;
    std::uint32_t slotBytes = 2048;
    DispatchPolicy policy = DispatchPolicy::RoundRobin;

    /** Restrict the service to these accelerators (empty = all),
     *  e.g. to give tenants disjoint accelerators (§4.5). */
    std::vector<AccelHandle *> accels;
};

/** One listening port with its dispatcher and mqueues. */
class Service
{
  public:
    Service(ServiceConfig cfg, net::Endpoint &ep, DispatcherConfig dcfg)
        : cfg_(cfg), ep_(ep),
          dispatcher_(cfg.name + ".dispatch", cfg.policy, dcfg)
    {}

    const ServiceConfig &config() const { return cfg_; }
    Dispatcher &dispatcher() { return dispatcher_; }
    net::Endpoint &endpoint() { return ep_; }

    /** @return layouts of this service's mqueues on @p accel (for
     *  handing to accelerator-side gio code). */
    const std::vector<MqueueLayout> &
    layoutsFor(const AccelHandle &accel) const
    {
        for (const auto &pa : perAccel_) {
            if (pa.accel == &accel)
                return pa.layouts;
        }
        LYNX_PANIC("service ", cfg_.name, " has no queues on ",
                   accel.name());
    }

  private:
    friend class Runtime;

    struct PerAccel
    {
        AccelHandle *accel;
        std::vector<MqueueLayout> layouts;
    };

    ServiceConfig cfg_;
    net::Endpoint &ep_;
    Dispatcher dispatcher_;
    std::vector<PerAccel> perAccel_;
};

/** Handle to a client mqueue (accelerator-to-backend channel). */
struct ClientQueueRef
{
    AccelHandle *accel = nullptr;
    MqueueLayout layout;
    SnicMqueue *mq = nullptr;
};

/** Runtime-wide configuration. */
struct RuntimeConfig
{
    /** Worker cores of the platform Lynx runs on (7 ARM cores on
     *  Bluefield; 1 or 6 Xeon cores for the host variants). */
    std::vector<sim::Core *> cores;

    /** The frontend NIC (the SNIC's own network identity). */
    net::Nic *nic = nullptr;

    /** Transport stack cost profile of this platform. */
    net::StackProfile stack;

    /** Cost profile of persistent backend connections (client
     *  mqueues); defaults to `stack` when unset. */
    std::optional<net::StackProfile> backendStack;

    /** Forwarding loops per accelerator (0 = one per worker core). */
    int forwardersPerAccel = 0;

    /** Dispatcher CPU per message. */
    sim::Tick dispatchCpu = sim::nanoseconds(500);

    /** Messages the dispatcher stages per mqueue for one coalesced
     *  RX write (1 = per-message pushes, the unbatched behaviour).
     *  Staged batches flush when full or when the ingress endpoint's
     *  backlog drains (after the linger below). */
    int dispatchMaxBatch = 1;

    /** How long a listener lingers before flushing a partial batch
     *  once the ingress backlog is empty — the window in which
     *  concurrent arrivals can join the same coalesced write. Only
     *  consulted when dispatchMaxBatch > 1; bounds the extra latency
     *  batching can ever add to a message. */
    sim::Tick dispatchFlushLinger = sim::microseconds(2);

    /** Forwarding loop knobs. */
    ForwarderConfig forwarder;

    /** mqueue write behaviour (coalescing / §5.1 barrier). */
    SnicMqueueConfig mq;

    /** Accelerator-side gio timing used by makeAccelQueues(). */
    GioConfig gio;

    /** Listener tasks per service (0 = one per worker core). */
    int listenersPerService = 0;

    /** Fault-tolerance knobs. Enabling spawns a HealthMonitor per
     *  service and switches on payload retention, stale-tag
     *  tolerance and (unless already configured) the calibrated
     *  software RDMA retry policy. Off (default) = seed behaviour,
     *  bit-identical. */
    FailoverConfig failover;

    /** Congestion plane (should match the Network's config; scenario
     *  helpers copy one into both). The Runtime consumes the PFC
     *  knobs: when `congestion.enabled && congestion.pfc.enabled` and
     *  `mq.pfc` was not configured explicitly, the PFC config is
     *  copied onto every mqueue so full RX rings pause their pushers
     *  instead of overflowing. Off (default) = seed behaviour. */
    net::CongestionConfig congestion;

    /** Multi-tenant virtualization of the dispatch plane
     *  (lynx/tenant.hh). Enabling builds a TenantTable, wires it
     *  into every dispatcher/mqueue/forwarder and spawns one
     *  event-driven class-queue drain task per service. Off
     *  (default) = seed behaviour, bit-identical. */
    TenantConfig tenancy;

    /** RSS indirection-table shape shared by every service running
     *  DispatchPolicy::Rss (net/steering.hh). Inert — a pure config
     *  copy — for other policies. */
    net::steer::RssConfig rss;

    /** Dispatch-plane admission control for untenanted traffic:
     *  when enabled, arrivals beyond the ring-tag occupancy
     *  threshold are shed with counted rejects
     *  (`admission.<svc>.shed_ring_full`) instead of deepening the
     *  rings until PFC or overflow bites. Off (default) = seed
     *  behaviour, bit-identical. */
    AdmissionConfig admission;
};

/** The SNIC-resident Lynx runtime. */
class Runtime
{
  public:
    Runtime(sim::Simulator &sim, RuntimeConfig cfg);
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    /**
     * Manage an accelerator whose BAR-exposed memory is @p mem,
     * reachable over @p path (local PCIe p2p, or remote via
     * RdmaPathModel::viaNetwork — "all what is required ... is to
     * change the accelerator's host IP", §5.5).
     * @pre no services have been added yet.
     */
    AccelHandle &addAccelerator(const std::string &name,
                                pcie::DeviceMemory &mem,
                                rdma::RdmaPathModel path);

    /** Create a service and its mqueues on every accelerator. */
    Service &addService(ServiceConfig cfg);

    /**
     * Create a client mqueue on @p accel whose messages go to
     * @p backend ("the destination address is assigned when the
     * server is initialized", §4.3).
     */
    ClientQueueRef addClientQueue(AccelHandle &accel,
                                  const std::string &name,
                                  net::Address backend,
                                  net::Protocol proto,
                                  std::uint32_t ringSlots = 16,
                                  std::uint32_t slotBytes = 2048);

    /** Spawn all listener and forwarder tasks. */
    void start();

    /** Build accelerator-side gio views of @p svc's queues on
     *  @p accel (the "pointers passed to the accelerator", §4.3). */
    std::vector<std::unique_ptr<AccelQueue>>
    makeAccelQueues(const Service &svc, const AccelHandle &accel);

    /** Build the accelerator-side gio view of a client queue. */
    std::unique_ptr<AccelQueue> makeAccelQueue(const ClientQueueRef &ref);

    /** @return the managed accelerators. */
    std::vector<std::unique_ptr<AccelHandle>> &accelerators()
    {
        return accels_;
    }

    /** @return every SNIC-side mqueue (benchmarks aggregate their
     *  per-queue RDMA op counters from here). */
    const std::vector<std::unique_ptr<SnicMqueue>> &mqueues() const
    {
        return mqueues_;
    }

    /** @return the per-service health monitors (empty unless
     *  failover is enabled; populated by start()). */
    const std::vector<std::unique_ptr<HealthMonitor>> &monitors() const
    {
        return monitors_;
    }

    /** @return the runtime's NIC. */
    net::Nic &nic() { return *cfg_.nic; }

    /** @return the tenant table (null unless tenancy is enabled).
     *  Scenario code registers/retires tenants through it. */
    TenantTable *tenants() { return tenants_.get(); }

    sim::StatSet &stats() { return stats_; }

  private:
    /** Pick the next worker core round-robin. */
    sim::Core &nextCore() { return *cfg_.cores[coreRr_++ % cfg_.cores.size()]; }

    /** Listener task body: transport processing + dispatch. */
    sim::Task listenLoop(Service &svc, sim::Core &core);

    /** Backend-response listener of one client queue. */
    sim::Task backendLoop(ClientQueueRef ref, net::Endpoint &ep,
                          net::Protocol proto, sim::Core &core);

    /** Event-driven drain of one service's tenant class queues:
     *  parks on @p gate (opened by the dispatcher's backlog hook and
     *  the table's capacity-freed hooks) — never polls, so an idle
     *  world schedules no events and sim.run() still terminates. */
    sim::Task tenantDrainLoop(Service &svc, sim::Core &core,
                              sim::Gate &gate);

    sim::Simulator &sim_;
    RuntimeConfig cfg_;
    std::size_t coreRr_ = 0;
    std::uint16_t nextEphemeralPort_ = 20000;
    bool started_ = false;

    std::vector<std::unique_ptr<AccelHandle>> accels_;
    std::vector<std::unique_ptr<Service>> services_;
    std::vector<std::unique_ptr<SnicMqueue>> mqueues_;
    std::vector<std::unique_ptr<HealthMonitor>> monitors_;
    std::unique_ptr<TenantTable> tenants_;
    std::vector<std::unique_ptr<sim::Gate>> tenantGates_;

    struct BackendBinding
    {
        ClientQueueRef ref;
        net::Endpoint *ep;
        net::Protocol proto;
    };
    std::vector<BackendBinding> backendBindings_;

    sim::StatSet stats_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_RUNTIME_HH

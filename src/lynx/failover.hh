/**
 * @file
 * Remote-mqueue failover (extension; see docs/INTERNALS.md §7).
 *
 * The paper's prototype assumes accelerators and the fabric stay
 * healthy. This module adds the recovery half of the fault-injection
 * extension: a HealthMonitor per service that
 *
 *  - sweeps every dispatch target each `checkInterval`, counting a
 *    *strike* whenever a queue has requests in flight but its TX ring
 *    made no progress since the previous sweep;
 *  - declares a queue dead after `deadStrikes` consecutive strikes —
 *    or immediately when a ring access exhausted its software retry
 *    budget (SnicMqueue::transportDead) — and fails it over: the
 *    dispatcher stops routing to it and its in-flight requests are
 *    drained and re-queued to surviving mqueues (payload retention);
 *  - probes dead queues every `probeInterval`: first repairing the
 *    sequence gaps left by lost RX writes (kSlotSkipErr markers),
 *    then reading the consumer register, and reviving the queue once
 *    it is reachable again and has drained its backlog.
 *
 * State machine per queue:
 *
 *   healthy --(strikes==deadStrikes | transportDead)--> dead
 *   dead    --(repairGaps ok && probeAlive ok && backlog==0)--> healthy
 *
 * Clients never see a corrupt payload from any of this: re-queued
 * requests are re-executed from their retained byte-exact payloads,
 * and the tag-generation check drops the stale duplicate response if
 * the original accelerator answers after all (forwarder
 * `stale_responses`). Failover degrades throughput, not correctness.
 */

#ifndef LYNX_LYNX_FAILOVER_HH
#define LYNX_LYNX_FAILOVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lynx/dispatcher.hh"
#include "lynx/snic_mqueue.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace lynx::core {

/** Failover knobs. Disabled by default: the seed configuration runs
 *  no monitor task and is bit-identical. Calibrated values live in
 *  lynx/calibration.hh. */
struct FailoverConfig
{
    /** Master switch: spawn a HealthMonitor per service, retain
     *  in-flight payloads, tolerate stale tags. */
    bool enabled = false;

    /** Sweep period of the health check. */
    sim::Tick checkInterval = sim::milliseconds(1);

    /** Consecutive no-progress sweeps (with work in flight) before a
     *  queue is declared dead. */
    int deadStrikes = 3;

    /** Probe period for dead queues (gap repair + liveness read). */
    sim::Tick probeInterval = sim::milliseconds(5);
};

/** Watches one service's mqueues; kills, drains and revives them. */
class HealthMonitor
{
  public:
    HealthMonitor(sim::Simulator &sim, std::string name,
                  Dispatcher &dispatcher, sim::Core &core,
                  FailoverConfig cfg)
        : sim_(sim), name_(std::move(name)), dispatcher_(dispatcher),
          core_(core), cfg_(cfg),
          cDied_(&stats_.counter("mqueues_died")),
          cRevived_(&stats_.counter("mqueues_revived")),
          cRequeued_(&stats_.counter("requests_requeued")),
          cProbes_(&stats_.counter("probes")),
          cStrikes_(&stats_.counter("strikes"))
    {}

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /** Spawn the sweep loop. */
    void
    start()
    {
        LYNX_ASSERT(!started_, name_, ": started twice");
        started_ = true;
        sim::spawn(sim_, run());
    }

    sim::StatSet &stats() { return stats_; }

  private:
    /** Per-queue health bookkeeping (parallel to the dispatcher's
     *  queue list). */
    struct QState
    {
        std::uint64_t lastTxPopped = 0;
        int strikes = 0;
        sim::Tick lastProbe = 0;
    };

    sim::Task
    run()
    {
        for (;;) {
            co_await sim::sleep(cfg_.checkInterval);
            // The dispatcher's queue list only grows (setup-time
            // registration); late services are picked up lazily.
            while (states_.size() < dispatcher_.queueCount())
                states_.push_back(QState{});
            for (std::size_t qi = 0; qi < states_.size(); ++qi) {
                if (dispatcher_.queueDead(qi))
                    co_await probe(qi);
                else
                    co_await check(qi);
            }
        }
    }

    static std::uint64_t
    txPopped(SnicMqueue &mq)
    {
        return mq.stats().counterValue("tx_popped");
    }

    /** Healthy-queue sweep: strike accounting + transport check. */
    sim::Co<void>
    check(std::size_t qi)
    {
        SnicMqueue &mq = dispatcher_.queueAt(qi);
        QState &st = states_[qi];
        if (mq.transportDead()) {
            // A ring access exhausted its retry budget: no need to
            // wait for strikes, the wire itself reported the death.
            co_await kill(qi);
            co_return;
        }
        std::uint64_t popped = txPopped(mq);
        if (mq.tagsInFlight() > 0 && popped == st.lastTxPopped) {
            ++st.strikes;
            cStrikes_->add();
            if (st.strikes >= cfg_.deadStrikes)
                co_await kill(qi);
        } else {
            st.strikes = 0;
        }
        st.lastTxPopped = popped;
    }

    /** healthy -> dead: exclude from dispatch, drain + re-queue. */
    sim::Co<void>
    kill(std::size_t qi)
    {
        dispatcher_.setQueueDead(qi, true);
        states_[qi].strikes = 0;
        states_[qi].lastProbe = sim_.now();
        cDied_->add();
        sim::warn(name_, ": mqueue ",
                  dispatcher_.queueAt(qi).name(), " declared dead");
        std::size_t moved = co_await dispatcher_.evacuate(core_, qi);
        cRequeued_->add(moved);
    }

    /** dead -> healthy?: repair gaps, read liveness, require the
     *  drained backlog before re-admitting the queue. */
    sim::Co<void>
    probe(std::size_t qi)
    {
        QState &st = states_[qi];
        if (sim_.now() - st.lastProbe < cfg_.probeInterval)
            co_return;
        st.lastProbe = sim_.now();
        cProbes_->add();
        SnicMqueue &mq = dispatcher_.queueAt(qi);
        // Gap repair doubles as the reachability test: its signalled
        // writes only complete once the path is healthy again.
        if (!co_await mq.repairGaps(core_))
            co_return;
        if (!co_await mq.probeAlive(core_))
            co_return;
        if (mq.transportDead())
            co_return;
        // Let the accelerator finish (or skip) everything that was in
        // its ring before the failure: reviving into a backlog would
        // mix drained-and-requeued work with fresh dispatches.
        if (mq.rxBacklogEstimate() != 0)
            co_return;
        dispatcher_.setQueueDead(qi, false);
        st.strikes = 0;
        st.lastTxPopped = txPopped(mq);
        cRevived_->add();
        sim::warn(name_, ": mqueue ", mq.name(), " revived");
        // Wake the forwarder: doorbells may have rung while the
        // queue's transport was down.
        mq.nudgeTx();
    }

    sim::Simulator &sim_;
    std::string name_;
    Dispatcher &dispatcher_;
    sim::Core &core_;
    FailoverConfig cfg_;
    std::vector<QState> states_;
    bool started_ = false;
    sim::StatSet stats_;

    sim::Counter *cDied_;
    sim::Counter *cRevived_;
    sim::Counter *cRequeued_;
    sim::Counter *cProbes_;
    sim::Counter *cStrikes_;
};

} // namespace lynx::core

#endif // LYNX_LYNX_FAILOVER_HH

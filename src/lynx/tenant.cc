#include "tenant.hh"

#include <string>

#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace lynx::core {

TenantTable::TenantTable(sim::Simulator &sim, TenantConfig cfg)
    : sim_(sim), cfg_(cfg),
      cAdded_(&stats_.counter("added")),
      cRetired_(&stats_.counter("retired")),
      cAutoRegistered_(&stats_.counter("auto_registered")),
      cUntenantedRejected_(&stats_.counter("untenanted_rejected"))
{
    sim_.metrics().add("tenant.table", stats_);
}

TenantTable::~TenantTable()
{
    for (auto &v : vfs_)
        sim_.metrics().remove(v->stats);
    sim_.metrics().remove(stats_);
}

TenantId
TenantTable::add(const TenantQuota &q)
{
    LYNX_ASSERT(q.weight >= 1, "tenant weight must be >= 1");
    LYNX_ASSERT(vfs_.size() < 0xfffe, "tenant id space exhausted");
    auto v = std::make_unique<Vf>();
    v->quota = q;
    // Resolve every hot-path handle now; admissions and completions
    // must never build a "tenant.<id>.x" string or probe the
    // registry per message.
    v->cAdmitted = &v->stats.counter("admitted");
    v->cRejected = &v->stats.counter("rejected");
    v->cStaleDropped = &v->stats.counter("stale_dropped");
    v->cLost = &v->stats.counter("lost");
    v->hInflight = &v->stats.histogram("inflight");
    v->hLatency = &v->stats.histogram("latency");
    vfs_.push_back(std::move(v));
    TenantId id = static_cast<TenantId>(vfs_.size());
    sim_.metrics().add("tenant." + std::to_string(id),
                       vfs_.back()->stats);
    cAdded_->add();
    return id;
}

void
TenantTable::retire(TenantId id)
{
    if (!known(id) || !vf(id).active)
        return;
    Vf &v = vf(id);
    v.active = false;
    // Bump the tag-namespace generation: every ClientRef dispatched
    // so far carries the old one, so its response fails the
    // current() check at the forwarder and is dropped-and-counted
    // instead of delivered to a client that no longer exists.
    v.gen = static_cast<std::uint16_t>(v.gen + 1);
    cRetired_->add();
}

bool
TenantTable::admit(TenantId id)
{
    if (!known(id)) {
        if (!cfg_.autoRegister || id == 0)
            return false; // nothing to count against: unknown VF
        // Ids arrive in arbitrary order; materialize the gap so the
        // id space stays dense (dispatcher class queues index by id).
        while (vfs_.size() < id) {
            add(cfg_.defaults);
            cAutoRegistered_->add();
        }
    }
    Vf &v = vf(id);
    if (!v.active) {
        v.cRejected->add();
        return false;
    }
    if (v.quota.maxInFlight != 0 && v.inFlight >= v.quota.maxInFlight) {
        v.cRejected->add();
        return false;
    }
    ++v.inFlight;
    v.cAdmitted->add();
    v.hInflight->record(v.inFlight);
    return true;
}

void
TenantTable::completed(TenantId id, sim::Tick latency)
{
    if (!known(id))
        return;
    Vf &v = vf(id);
    LYNX_ASSERT(v.inFlight > 0, "tenant completion without admission");
    --v.inFlight;
    v.hLatency->record(latency);
    fireCapacityFreed();
}

bool
TenantTable::finish(TenantId id, std::uint16_t gen, sim::Tick latency)
{
    if (!known(id))
        return true; // untracked: deliver, nothing to account
    Vf &v = vf(id);
    if (v.gen == gen) {
        completed(id, latency);
        return true;
    }
    // Retired generation: the in-flight slot drains here, counted —
    // the response itself must never reach the wire.
    LYNX_ASSERT(v.inFlight > 0, "stale drain without admission");
    --v.inFlight;
    v.cStaleDropped->add();
    fireCapacityFreed();
    return false;
}

void
TenantTable::abandoned(TenantId id)
{
    if (!known(id))
        return;
    Vf &v = vf(id);
    LYNX_ASSERT(v.inFlight > 0, "tenant abandon without admission");
    --v.inFlight;
    v.cLost->add();
    fireCapacityFreed();
}

void
TenantTable::noteTagAlloc(TenantId id)
{
    if (known(id))
        ++vf(id).tagsHeld;
}

void
TenantTable::noteTagRelease(TenantId id)
{
    if (!known(id))
        return;
    Vf &v = vf(id);
    LYNX_ASSERT(v.tagsHeld > 0, "tenant tag release without alloc");
    --v.tagsHeld;
    fireCapacityFreed();
}

void
TenantTable::fireCapacityFreed()
{
    for (auto &fn : hooks_)
        fn();
}

} // namespace lynx::core

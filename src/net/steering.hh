/**
 * @file
 * Flow steering primitives for cluster-scale serving (ROADMAP item 1):
 *
 *  - Toeplitz-hash RSS (receive-side scaling), the hash every
 *    commodity NIC — Bluefield included — computes over the flow
 *    tuple to spread ingress flows across RX queues. Implemented
 *    bit-exactly against Microsoft's published verification suite
 *    ("Verifying the RSS Hash Calculation"), so the steering decision
 *    here is the one the real hardware would make.
 *
 *  - RssSteering: hash -> indirection-table slot -> worker mqueue,
 *    the per-service policy the dispatcher consults when a service
 *    runs with DispatchPolicy::Rss.
 *
 *  - ConsistentHashRing: virtual-node consistent hashing, the
 *    client/router-side companion that spreads keys (logical client
 *    ids, KV shards) across *machines* such that membership changes
 *    move only the departed node's arc.
 *
 * Everything here is pure computation — no simulator state, no
 * events — so enabling it never moves unrelated timestamps.
 */

#ifndef LYNX_NET_STEERING_HH
#define LYNX_NET_STEERING_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "net/message.hh"
#include "sim/logging.hh"

namespace lynx::net::steer {

/** Microsoft's default 40-byte RSS secret key (the one the published
 *  known-answer vectors are computed with). */
inline constexpr std::array<std::uint8_t, 40> kDefaultRssKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

/**
 * The Toeplitz hash: for every set bit (MSB first) of @p input at bit
 * position p, XOR in the 32-bit window of @p key starting at bit p.
 * @p key must be long enough to supply input-bits + 32 key bits.
 */
inline std::uint32_t
toeplitzHash(std::span<const std::uint8_t> key,
             std::span<const std::uint8_t> input)
{
    LYNX_ASSERT(key.size() * 8 >= input.size() * 8 + 32,
                "Toeplitz key too short for input");
    std::uint32_t hash = 0;
    // 64-bit sliding window over the key: the top 32 bits are always
    // the key window of the input bit currently being consumed.
    std::uint64_t window = 0;
    for (std::size_t i = 0; i < 8; ++i)
        window = (window << 8) | key[i];
    std::size_t keyIdx = 8;
    for (std::uint8_t byte : input) {
        for (int b = 0; b < 8; ++b) {
            if (byte & 0x80)
                hash ^= static_cast<std::uint32_t>(window >> 32);
            window <<= 1;
            byte = static_cast<std::uint8_t>(byte << 1);
        }
        // Refill the 8 bits the shifts vacated with the next key byte.
        if (keyIdx < key.size())
            window |= key[keyIdx++];
    }
    return hash;
}

/**
 * RSS hash of an IPv4-style 4-tuple, using the canonical input layout
 * (src addr, dst addr, src port, dst port — each big-endian), so the
 * published test vectors apply directly. In this simulation the
 * 32-bit node id plays the role of the IPv4 address.
 *
 * Both UDP and TCP hash the same 4-tuple here (real NICs do this for
 * TCP always, and for UDP when UDP-RSS hashing is enabled — the
 * deployment mode that makes sense for a UDP request/response
 * server).
 */
inline std::uint32_t
rssHash(std::uint32_t srcAddr, std::uint16_t srcPort,
        std::uint32_t dstAddr, std::uint16_t dstPort,
        std::span<const std::uint8_t> key = kDefaultRssKey)
{
    std::array<std::uint8_t, 12> in = {
        static_cast<std::uint8_t>(srcAddr >> 24),
        static_cast<std::uint8_t>(srcAddr >> 16),
        static_cast<std::uint8_t>(srcAddr >> 8),
        static_cast<std::uint8_t>(srcAddr),
        static_cast<std::uint8_t>(dstAddr >> 24),
        static_cast<std::uint8_t>(dstAddr >> 16),
        static_cast<std::uint8_t>(dstAddr >> 8),
        static_cast<std::uint8_t>(dstAddr),
        static_cast<std::uint8_t>(srcPort >> 8),
        static_cast<std::uint8_t>(srcPort),
        static_cast<std::uint8_t>(dstPort >> 8),
        static_cast<std::uint8_t>(dstPort),
    };
    return toeplitzHash(key, in);
}

/** 2-tuple (addresses only) variant — what NICs fall back to for
 *  non-TCP traffic without UDP hashing; exposed for the published
 *  IPv4-only test vectors. */
inline std::uint32_t
rssHash2(std::uint32_t srcAddr, std::uint32_t dstAddr,
         std::span<const std::uint8_t> key = kDefaultRssKey)
{
    std::array<std::uint8_t, 8> in = {
        static_cast<std::uint8_t>(srcAddr >> 24),
        static_cast<std::uint8_t>(srcAddr >> 16),
        static_cast<std::uint8_t>(srcAddr >> 8),
        static_cast<std::uint8_t>(srcAddr),
        static_cast<std::uint8_t>(dstAddr >> 24),
        static_cast<std::uint8_t>(dstAddr >> 16),
        static_cast<std::uint8_t>(dstAddr >> 8),
        static_cast<std::uint8_t>(dstAddr),
    };
    return toeplitzHash(key, in);
}

/** RSS steering knobs of one service. */
struct RssConfig
{
    /** Indirection-table entries (a power of two; 128 is the
     *  ubiquitous hardware default). The hash's low bits select an
     *  entry; the default table maps entry i to queue i % nQueues —
     *  exactly the round-robin-filled table drivers program. */
    std::uint32_t indirectionSize = 128;
};

/**
 * Hash -> indirection-table -> queue, per service. Stateless beyond
 * its config: the same tuple always lands on the same queue for a
 * given queue count, which is what makes the mapping stable across
 * the dispatcher's ingress and failover-requeue paths.
 */
class RssSteering
{
  public:
    explicit RssSteering(RssConfig cfg = {}) : cfg_(cfg)
    {
        LYNX_ASSERT(cfg_.indirectionSize > 0 &&
                        (cfg_.indirectionSize &
                         (cfg_.indirectionSize - 1)) == 0,
                    "RSS indirection table size must be a power of two");
    }

    /** @return the steered queue index in [0, nQueues). */
    std::size_t
    pick(const Address &src, const Address &dst,
         std::size_t nQueues) const
    {
        LYNX_ASSERT(nQueues > 0, "RSS pick over zero queues");
        std::uint32_t h = rssHash(src.node, src.port, dst.node,
                                  dst.port);
        std::uint32_t slot = h & (cfg_.indirectionSize - 1);
        return slot % nQueues;
    }

    const RssConfig &config() const { return cfg_; }

  private:
    RssConfig cfg_;
};

/**
 * Consistent hashing with virtual nodes: each member id is placed at
 * `vnodes` pseudo-random points on a 64-bit ring; a key routes to the
 * first point clockwise. Removing a member moves only the keys that
 * routed to it — the property the cluster bench leans on to reshard
 * backends without a thundering herd.
 */
class ConsistentHashRing
{
  public:
    explicit ConsistentHashRing(int vnodes = 128) : vnodes_(vnodes)
    {
        LYNX_ASSERT(vnodes_ > 0, "ring needs at least one vnode");
    }

    /** Add member @p id (must not already be present). */
    void
    add(std::uint64_t id)
    {
        for (int r = 0; r < vnodes_; ++r)
            ring_.push_back({point(id, r), id});
        std::sort(ring_.begin(), ring_.end());
        ++members_;
    }

    /** Remove member @p id (all its arcs). */
    void
    remove(std::uint64_t id)
    {
        auto end = std::remove_if(
            ring_.begin(), ring_.end(),
            [id](const auto &p) { return p.second == id; });
        LYNX_ASSERT(end != ring_.end(), "removing unknown ring member");
        ring_.erase(end, ring_.end());
        --members_;
    }

    /** @return the member owning @p key. */
    std::uint64_t
    route(std::uint64_t key) const
    {
        LYNX_ASSERT(!ring_.empty(), "routing on an empty ring");
        std::uint64_t h = mix(key);
        auto it = std::lower_bound(
            ring_.begin(), ring_.end(),
            std::pair<std::uint64_t, std::uint64_t>{h, 0});
        if (it == ring_.end())
            it = ring_.begin(); // wrap past the top of the ring
        return it->second;
    }

    /** @return current member count. */
    std::size_t size() const { return members_; }

  private:
    /** splitmix64 finalizer: cheap, well-distributed, deterministic. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    static std::uint64_t
    point(std::uint64_t id, int replica)
    {
        return mix(mix(id) ^
                   mix(static_cast<std::uint64_t>(replica) + 1));
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> ring_;
    int vnodes_;
    std::size_t members_ = 0;
};

} // namespace lynx::net::steer

#endif // LYNX_NET_STEERING_HH

/**
 * @file
 * Application-level network messages.
 *
 * The network substrate is message-granular: a Message is one
 * application datagram / one TCP application record. Transport
 * behaviour is expressed as CPU stack costs (net/stack.hh) and wire
 * time, which is the level of detail the paper's experiments resolve
 * (requests/sec and request latency, not packet traces).
 */

#ifndef LYNX_NET_MESSAGE_HH
#define LYNX_NET_MESSAGE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "payload.hh"
#include "sim/time.hh"

namespace lynx::net {

/** Transport protocol of a message. */
enum class Protocol : std::uint8_t { Udp, Tcp };

/** @return protocol name for diagnostics. */
inline const char *
protocolName(Protocol p)
{
    return p == Protocol::Udp ? "udp" : "tcp";
}

/** Network endpoint address: (node id, port). */
struct Address
{
    std::uint32_t node = 0;
    std::uint16_t port = 0;

    auto operator<=>(const Address &) const = default;
};

inline std::ostream &
operator<<(std::ostream &os, const Address &a)
{
    return os << "n" << a.node << ":" << a.port;
}

/**
 * One application message in flight.
 *
 * Deliberately 64 bytes: payload bytes live in a pooled Payload
 * (16-byte handle), so a Message moves by value through the event
 * calendar and still fits — together with a destination pointer —
 * inside the simulator's inline event storage (sim::EventFn). A
 * routed message therefore costs zero heap allocations.
 */
struct Message
{
    Address src;
    Address dst;
    Payload payload;

    /** Stamped by the sending application; carried end-to-end so the
     *  receiver (or the echoed-back client) can compute latency. */
    sim::Tick sentAt = 0;

    /** Generator sequence tag for request/response matching. */
    std::uint64_t seq = 0;

    /** Span-tracing id (sim/span.hh); 0 when tracing is off. Pure
     *  metadata: not part of size(), so it never affects wire or
     *  serialization timing. */
    std::uint64_t traceId = 0;

    /** Tenant id (lynx/tenant.hh); 0 = untenanted. Like `ce` this
     *  lives in padding: not part of size(), never affects wire or
     *  serialization time, and is ignored unless the receiving
     *  runtime has a TenantTable enabled. */
    std::uint16_t tenant = 0;

    Protocol proto = Protocol::Udp;

    /** Set by fault injection when payload bytes were flipped in the
     *  fabric. The receiving NIC's checksum verification drops such
     *  frames (net::Nic::deliver), so corruption never propagates
     *  above the NIC — it surfaces as loss. */
    bool corrupted = false;

    /** ECN Congestion Experienced: set by a congested egress port
     *  (net/congestion.hh) on the way through the fabric; the
     *  receiving NIC answers with a CNP to the source. Pure metadata
     *  (lives in padding): never affects wire or serialization time,
     *  and stays false while congestion control is disabled. */
    bool ce = false;

    /** @return payload size in bytes. */
    std::uint64_t size() const { return payload.size(); }
};

static_assert(sizeof(Message) == 64, "Message must stay event-inline");

} // namespace lynx::net

#endif // LYNX_NET_MESSAGE_HH

/**
 * @file
 * Software network-stack cost profiles.
 *
 * The per-message CPU cost of transport processing depends on the
 * stack implementation (kernel sockets vs. the VMA user-level,
 * kernel-bypass library, paper §5.1.1) and on the protocol (TCP
 * costs several times more than UDP, §6.3). Costs are in *reference*
 * nanoseconds (baseline Xeon); slower cores scale them through
 * sim::Core's speedFactor.
 */

#ifndef LYNX_NET_STACK_HH
#define LYNX_NET_STACK_HH

#include "message.hh"
#include "sim/time.hh"

namespace lynx::net {

/** Direction of a stack traversal. */
enum class Dir : std::uint8_t { Recv, Send };

/** Per-message CPU costs of one stack implementation. */
struct StackProfile
{
    sim::Tick udpRecv = 0;
    sim::Tick udpSend = 0;
    sim::Tick tcpRecv = 0;
    sim::Tick tcpSend = 0;

    /** Extra cost per payload byte (copies, checksums). */
    double perByte = 0.0;

    /** @return CPU cost for one @p proto message in direction @p d
     *  with @p bytes of payload. */
    sim::Tick
    cost(Protocol proto, Dir d, std::uint64_t bytes) const
    {
        sim::Tick base;
        if (proto == Protocol::Udp)
            base = d == Dir::Recv ? udpRecv : udpSend;
        else
            base = d == Dir::Recv ? tcpRecv : tcpSend;
        return base +
               static_cast<sim::Tick>(perByte * static_cast<double>(bytes));
    }
};

} // namespace lynx::net

#endif // LYNX_NET_STACK_HH

/**
 * @file
 * NIC and bound endpoints.
 *
 * A Nic attaches one node to the Network. Applications bind()
 * (protocol, port) pairs to obtain Endpoints with a receive queue;
 * the NIC demultiplexes arriving messages by destination port.
 * Receive queues are finite: UDP overflow drops the message (counted
 * in stats), TCP overflow backpressures the network task.
 */

#ifndef LYNX_NET_NIC_HH
#define LYNX_NET_NIC_HH

#include <coroutine>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "congestion.hh"
#include "message.hh"
#include "sim/channel.hh"
#include "sim/co.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace lynx::net {

class Network;
class Nic;

/** A bound (protocol, port): the application's receive side. */
class Endpoint
{
  public:
    Endpoint(sim::Simulator &sim, Protocol proto, std::uint16_t port,
             std::size_t queueDepth)
        : sim_(sim), proto_(proto), port_(port), rx_(sim, queueDepth)
    {}

    Endpoint(const Endpoint &) = delete;
    Endpoint &operator=(const Endpoint &) = delete;

    /** @return bound protocol. */
    Protocol proto() const { return proto_; }

    /** @return bound port. */
    std::uint16_t port() const { return port_; }

    /** Await the next received message. */
    sim::Co<Message>
    recv()
    {
        Message m = co_await rx_.pop();
        co_return m;
    }

    /** Non-blocking receive. */
    std::optional<Message> tryRecv() { return rx_.tryPop(); }

    /** @return messages waiting in the receive queue. */
    std::size_t backlog() const { return rx_.size(); }

    /** @return messages dropped due to queue overflow (UDP only). */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Awaitable that completes on the next message arrival or after
     * @p maxWait, whichever is first (completes immediately if a
     * message is already queued). Used to build receive-with-timeout
     * without polling; the caller re-checks tryRecv() afterwards.
     */
    struct ArrivalState
    {
        std::coroutine_handle<> h;
        bool fired = false;
    };

    struct WaitArrivalAwaiter
    {
        Endpoint &ep;
        sim::Tick maxWait;

        bool await_ready() const { return !ep.rx_.empty(); }

        template <sim::SimPromise P>
        void
        await_suspend(std::coroutine_handle<P> h)
        {
            auto st = std::make_shared<ArrivalState>();
            st->h = h;
            ep.arrivalWaiters_.push_back(st);
            ep.sim_.scheduleIn(maxWait, [st] {
                if (!st->fired) {
                    st->fired = true;
                    st->h.resume();
                }
            });
        }

        void await_resume() const {}
    };

    /** @return awaitable for the next arrival, capped at @p maxWait. */
    WaitArrivalAwaiter waitArrival(sim::Tick maxWait)
    {
        return WaitArrivalAwaiter{*this, maxWait};
    }

  private:
    friend class Nic;

    /** Wake everything parked in waitArrival(). */
    void
    signalArrival()
    {
        for (auto &st : arrivalWaiters_) {
            if (!st->fired) {
                st->fired = true;
                auto h = st->h;
                sim_.scheduleIn(0, [h] { h.resume(); });
            }
        }
        arrivalWaiters_.clear();
    }

    sim::Simulator &sim_;
    Protocol proto_;
    std::uint16_t port_;
    sim::Channel<Message> rx_;
    std::vector<std::shared_ptr<ArrivalState>> arrivalWaiters_;
    std::uint64_t dropped_ = 0;
};

/** Physical port configuration of a NIC. */
struct NicConfig
{
    /** Link rate in Gbit/s. */
    double gbps = 40.0;

    /** Fixed NIC hardware traversal latency (each direction). */
    sim::Tick hwLatency = sim::nanoseconds(300);

    /** Endpoint receive-queue depth, in messages. */
    std::size_t queueDepth = 4096;
};

/** One network adapter attached to the switch fabric. */
class Nic
{
  public:
    Nic(sim::Simulator &sim, Network &network, std::string name,
        std::uint32_t node, NicConfig cfg);
    ~Nic();

    Nic(const Nic &) = delete;
    Nic &operator=(const Nic &) = delete;

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return node id this NIC gives network presence to. */
    std::uint32_t node() const { return node_; }

    /** @return link configuration. */
    const NicConfig &config() const { return cfg_; }

    /** @return the simulator this NIC lives on (in sharded mode: its
     *  home shard's event loop). */
    sim::Simulator &simulator() { return sim_; }

    /**
     * Bind (@p proto, @p port) and return its endpoint.
     * @pre the pair is not yet bound.
     */
    Endpoint &bind(Protocol proto, std::uint16_t port);

    /** Release a binding. */
    void unbind(Protocol proto, std::uint16_t port);

    /**
     * Transmit @p m into the fabric. Serializes at link rate (the
     * sending task is held for the serialization time, modelling a
     * busy TX queue) and delivers asynchronously.
     */
    sim::Co<void> send(Message m);

    /** Called by the Network when a message arrives for this node. */
    void deliver(Message m);

    /**
     * Called by the Network when a CNP arrives: the receiver at
     * @p congestedNode saw a CE mark on one of our frames. Applies a
     * DCQCN rate cut to the flow toward that node.
     */
    void handleCnp(std::uint32_t congestedNode);

    /** @return the DCQCN state of the flow toward @p dstNode, or
     *  nullptr if that flow has never been rate-limited (test/debug
     *  introspection). */
    const Dcqcn *
    dcqcnFor(std::uint32_t dstNode) const
    {
        auto it = flows_.find(dstNode);
        return it == flows_.end() ? nullptr : &it->second.dcqcn;
    }

    /** TX/RX counters and drop statistics. */
    sim::StatSet &stats() { return stats_; }

    /** @return serialization time of @p bytes at link rate. */
    sim::Tick
    serialization(std::uint64_t bytes) const
    {
        return static_cast<sim::Tick>(static_cast<double>(bytes) * 8.0 /
                                      cfg_.gbps);
    }

  private:
    using Key = std::pair<Protocol, std::uint16_t>;

    /** Sender-side congestion state of one flow (one destination). */
    struct FlowCc
    {
        Dcqcn dcqcn;

        /** Earliest time the next frame of this flow may start
         *  serializing (DCQCN rate-limiter pacing). */
        sim::Tick nextAt = 0;

        explicit FlowCc(const DcqcnConfig &cfg, sim::Tick now)
            : dcqcn(cfg, now)
        {}
    };

    /** The rate limiter of the flow toward @p dstNode, created on
     *  first transmission (only while DCQCN is enabled). */
    FlowCc &flowTo(std::uint32_t dstNode);

    sim::Simulator &sim_;
    Network &network_;
    std::string name_;
    std::uint32_t node_;
    NicConfig cfg_;
    sim::Tick txBusyUntil_ = 0;
    std::map<Key, std::unique_ptr<Endpoint>> endpoints_;
    std::map<std::uint32_t, FlowCc> flows_;

    /** Receiver role: last CNP emission time per flow source, for
     *  CNP pacing (at most one per `cnpMinInterval`). */
    std::map<std::uint32_t, sim::Tick> lastCnpTo_;

    sim::StatSet stats_;

    /** Per-message counters, resolved once at construction: the data
     *  plane must not do string map lookups per packet. */
    sim::Counter *cTxMsgs_;
    sim::Counter *cTxBytes_;
    sim::Counter *cRxMsgs_;
    sim::Counter *cRxBytes_;
    sim::Counter *cRxDropCorrupt_;
    sim::Counter *cRxNoEndpoint_;
    sim::Counter *cRxDropUdp_;
    sim::Counter *cRxDropTcp_;
    sim::Counter *cCeRx_;
    sim::Counter *cCnpTx_;
    sim::Counter *cCnpRx_;
    sim::Histogram *hFlowRateMbps_;
};

} // namespace lynx::net

#endif // LYNX_NET_NIC_HH

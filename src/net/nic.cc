#include "nic.hh"

#include "network.hh"
#include "sim/span.hh"

namespace lynx::net {

Nic::Nic(sim::Simulator &sim, Network &network, std::string name,
         std::uint32_t node, NicConfig cfg)
    : sim_(sim), network_(network), name_(std::move(name)), node_(node),
      cfg_(cfg), cTxMsgs_(&stats_.counter("tx_msgs")),
      cTxBytes_(&stats_.counter("tx_bytes")),
      cRxMsgs_(&stats_.counter("rx_msgs")),
      cRxBytes_(&stats_.counter("rx_bytes")),
      cRxDropCorrupt_(&stats_.counter("rx_drop_corrupt")),
      cRxNoEndpoint_(&stats_.counter("rx_no_endpoint")),
      cRxDropUdp_(&stats_.counter("rx_drop_udp")),
      cRxDropTcp_(&stats_.counter("rx_drop_tcp")),
      cCeRx_(&stats_.counter("ce_rx")),
      cCnpTx_(&stats_.counter("cnp_tx")),
      cCnpRx_(&stats_.counter("cnp_rx")),
      hFlowRateMbps_(&stats_.histogram("flow_rate_mbps"))
{
    sim_.metrics().add("net.nic." + name_, stats_);
}

Nic::~Nic()
{
    sim_.metrics().remove(stats_);
}

Endpoint &
Nic::bind(Protocol proto, std::uint16_t port)
{
    Key key{proto, port};
    LYNX_ASSERT(!endpoints_.contains(key), name_, ": port ", port, "/",
                protocolName(proto), " already bound");
    auto ep = std::make_unique<Endpoint>(sim_, proto, port, cfg_.queueDepth);
    Endpoint &ref = *ep;
    endpoints_[key] = std::move(ep);
    return ref;
}

void
Nic::unbind(Protocol proto, std::uint16_t port)
{
    endpoints_.erase(Key{proto, port});
}

Nic::FlowCc &
Nic::flowTo(std::uint32_t dstNode)
{
    auto it = flows_.find(dstNode);
    if (it == flows_.end()) {
        it = flows_
                 .try_emplace(dstNode,
                              network_.congestionConfig().dcqcn,
                              sim_.now())
                 .first;
    }
    return it->second;
}

sim::Co<void>
Nic::send(Message m)
{
    LYNX_DEBUG_ASSERT(m.src.node == node_, name_,
                      ": spoofed source node");
    cTxMsgs_->add();
    cTxBytes_->add(m.size());

    const CongestionConfig &cc = network_.congestionConfig();
    if (cc.enabled && cc.dcqcnEnabled && m.dst.node != node_) {
        // DCQCN rate limiter: hold the sender until the flow's paced
        // slot. Pacing is per destination; the TX-queue serialization
        // below still applies on top (the link is shared).
        FlowCc &fc = flowTo(m.dst.node);
        sim::Tick pace = fc.dcqcn.paceTime(m.size(), sim_.now());
        sim::Tick start = std::max(sim_.now(), fc.nextAt);
        fc.nextAt = start + pace;
        if (start > sim_.now())
            co_await sim::sleep(start - sim_.now());
    }

    // Occupy the TX queue for the serialization time: a sender that
    // outpaces the link sees back-pressure.
    sim::Tick ser = serialization(m.size());
    sim::Tick start = std::max(sim_.now(), txBusyUntil_);
    txBusyUntil_ = start + ser;
    co_await sim::sleep(txBusyUntil_ - sim_.now());

    // Request on the wire. First-stamp-wins keeps the response's trip
    // through the server NIC from overwriting the client-side TX.
    if (sim::SpanCollector *spans = sim_.spans())
        spans->stamp(m.traceId, sim::Stage::NicTx, sim_.now());

    // Hardware egress latency happens off the sender's back.
    Network &net = network_;
    sim_.scheduleIn(cfg_.hwLatency, [&net, m = std::move(m)]() mutable {
        net.route(std::move(m));
    });
}

void
Nic::deliver(Message m)
{
    cRxMsgs_->add();
    cRxBytes_->add(m.size());

    if (m.corrupted) {
        // Checksum verification (Ethernet CRC / UDP checksum): a
        // frame corrupted in the fabric is dropped here, so no
        // corrupt payload is ever delivered to an endpoint.
        cRxDropCorrupt_->add();
        return;
    }

    if (m.ce) {
        // Congestion Experienced: notify the sender with a CNP, paced
        // per flow so a marking burst costs one notification.
        cCeRx_->add();
        const CongestionConfig &cc = network_.congestionConfig();
        if (cc.enabled && cc.dcqcnEnabled && m.src.node != node_) {
            sim::Tick &last = lastCnpTo_[m.src.node];
            if (last == 0 || sim_.now() - last >= cc.cnpMinInterval) {
                last = sim_.now();
                cCnpTx_->add();
                network_.sendCnp(node_, m.src.node);
            }
        }
    }

    auto it = endpoints_.find(Key{m.proto, m.dst.port});
    if (it == endpoints_.end()) {
        cRxNoEndpoint_->add();
        return;
    }
    Endpoint &ep = *it->second;
    bool pushed = ep.rx_.tryPush(std::move(m));
    ep.signalArrival();
    if (!pushed) {
        // Queue overflow. UDP drops; for TCP this models a zero
        // receive window, which we approximate by also dropping but
        // counting separately (the load generators never overrun a
        // TCP endpoint in the reproduced experiments).
        ++ep.dropped_;
        (ep.proto() == Protocol::Udp ? cRxDropUdp_ : cRxDropTcp_)->add();
    }
}

void
Nic::handleCnp(std::uint32_t congestedNode)
{
    cCnpRx_->add();
    FlowCc &fc = flowTo(congestedNode);
    fc.dcqcn.onCnp(sim_.now());
    hFlowRateMbps_->record(
        static_cast<std::uint64_t>(fc.dcqcn.rateGbps() * 1000.0));
}

} // namespace lynx::net

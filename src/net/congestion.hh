/**
 * @file
 * RoCEv2-style congestion control for the fabric model (extension —
 * ROADMAP item 3): per-port egress queues with RED-style ECN marking,
 * DCQCN rate control (the reaction-point algorithm of Zhu et al.,
 * SIGCOMM'15, timer-driven variant), and the PFC pause/resume knobs
 * consumed by the SNIC mqueue layer.
 *
 * Everything here is header-only and depends only on sim/: it is
 * shared by net::Network / net::Nic (datagram flows through the
 * switch) and rdma::QueuePair (RDMA flows into accelerator memory),
 * which sit in libraries that do not link each other.
 *
 * Determinism contract: a default CongestionConfig (enabled == false)
 * must leave every consumer on its exact seed code path — no state,
 * no Rng draws, no extra events — so seed timestamps replay
 * bit-identically (the golden-timestamp discipline). All marking
 * randomness comes from one seeded Rng per CongestionPoint.
 */

#ifndef LYNX_NET_CONGESTION_HH
#define LYNX_NET_CONGESTION_HH

#include <algorithm>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace lynx::net {

/** DCQCN reaction-point parameters (per flow / per QP). */
struct DcqcnConfig
{
    /** Full rate the flow starts at and can never exceed, Gbit/s
     *  (the bottleneck link rate, not necessarily the local port). */
    double lineRateGbps = 25.0;

    /** Rate floor: repeated CNPs can never starve a flow below this
     *  (a flow that reaches zero could never probe for recovery). */
    double minRateGbps = 0.05;

    /** Alpha gain g: on CNP alpha <- (1-g)*alpha + g; per decay
     *  epoch without CNPs alpha <- (1-g)*alpha. */
    double g = 1.0 / 16.0;

    /** Alpha decay epoch (DCQCN's alpha-update timer, 55 us). */
    sim::Tick alphaTimer = sim::microseconds(55);

    /** Rate-recovery epoch. Each elapsed epoch since the last CNP is
     *  one recovery step (timer-driven: no byte counter). */
    sim::Tick rateTimer = sim::microseconds(100);

    /** Additive increase of the target rate per active-increase
     *  epoch, Gbit/s. */
    double aiGbps = 0.1;

    /** Hyper increase per epoch once the flow has been CNP-free for
     *  2*fastRecovery epochs, Gbit/s. */
    double haiGbps = 0.5;

    /** Fast-recovery steps F: the first F epochs after a CNP only
     *  halve the distance back to the target rate. */
    int fastRecovery = 5;
};

/**
 * DCQCN reaction point: one sender-side rate limiter.
 *
 * State advances *lazily* — advance(now) replays the alpha-decay and
 * rate-recovery epochs elapsed since the last event — so an idle flow
 * costs no simulator events and the machine stays deterministic (it
 * is driven purely by send and CNP times).
 *
 * Invariants (property-tested): rate ∈ [minRateGbps, lineRateGbps]
 * and alpha ∈ [0, 1] after every transition.
 */
class Dcqcn
{
  public:
    explicit Dcqcn(DcqcnConfig cfg = {}, sim::Tick now = 0)
        : cfg_(cfg), rate_(cfg.lineRateGbps), target_(cfg.lineRateGbps),
          lastAlpha_(now), lastEpoch_(now)
    {
        LYNX_ASSERT(cfg_.minRateGbps > 0.0 &&
                        cfg_.minRateGbps <= cfg_.lineRateGbps,
                    "DCQCN rate floor outside (0, lineRate]");
    }

    /** A CNP arrived at @p now: cut the rate by alpha/2, remember the
     *  pre-cut rate as the recovery target, bump alpha. */
    void
    onCnp(sim::Tick now)
    {
        advance(now);
        target_ = rate_;
        rate_ = std::max(cfg_.minRateGbps,
                         rate_ * (1.0 - alpha_ / 2.0));
        alpha_ = std::min(1.0, (1.0 - cfg_.g) * alpha_ + cfg_.g);
        stage_ = 0;
        lastAlpha_ = lastEpoch_ = now;
        ++cuts_;
    }

    /** @return the allowed sending rate at @p now (Gbit/s), after
     *  applying any recovery epochs elapsed since the last event. */
    double
    rateAt(sim::Tick now)
    {
        advance(now);
        return rate_;
    }

    /** @return pacing delay for @p bytes at the current rate. */
    sim::Tick
    paceTime(std::uint64_t bytes, sim::Tick now)
    {
        return static_cast<sim::Tick>(static_cast<double>(bytes) * 8.0 /
                                      rateAt(now));
    }

    double rateGbps() const { return rate_; }
    double targetGbps() const { return target_; }
    double alpha() const { return alpha_; }
    std::uint64_t cuts() const { return cuts_; }
    std::uint64_t increases() const { return increases_; }
    const DcqcnConfig &config() const { return cfg_; }

  private:
    /** Replay the epochs in (lastEvent, now]. Amortized O(1): each
     *  epoch is consumed exactly once across the flow's lifetime. */
    void
    advance(sim::Tick now)
    {
        while (lastAlpha_ + cfg_.alphaTimer <= now) {
            lastAlpha_ += cfg_.alphaTimer;
            alpha_ *= 1.0 - cfg_.g;
        }
        while (lastEpoch_ + cfg_.rateTimer <= now) {
            lastEpoch_ += cfg_.rateTimer;
            ++stage_;
            if (rate_ >= cfg_.lineRateGbps)
                continue; // already at line rate: nothing to recover
            // Fast recovery halves the distance to the target; after
            // F epochs the target itself starts rising (additive,
            // then hyper after 2F CNP-free epochs).
            if (stage_ > cfg_.fastRecovery) {
                double inc = stage_ > 2 * cfg_.fastRecovery
                                 ? cfg_.haiGbps
                                 : cfg_.aiGbps;
                target_ = std::min(cfg_.lineRateGbps, target_ + inc);
            }
            rate_ = std::min(cfg_.lineRateGbps,
                             0.5 * (rate_ + target_));
            ++increases_;
        }
    }

    DcqcnConfig cfg_;
    double rate_;
    double target_;
    double alpha_ = 1.0;
    int stage_ = 0;
    sim::Tick lastAlpha_;
    sim::Tick lastEpoch_;
    std::uint64_t cuts_ = 0;
    std::uint64_t increases_ = 0;
};

/**
 * One congested egress port: a finite FIFO queue draining at link
 * rate, with RED-style ECN marking between Kmin and Kmax.
 *
 * The queue is modelled implicitly by its busy horizon: the bytes
 * ahead of an arrival are (busyUntil - arrival) * rate. admit() never
 * suspends and draws randomness only inside the marking band, so a
 * port that stays uncongested is deterministic regardless of seed.
 *
 * Shared by the switch (lossy datagram traffic: tail-drop past the
 * queue capacity) and by RDMA flows (lossless=true: RoCE traffic
 * rides the PFC-protected priority, so it queues without bound and is
 * only ever *marked* — backpressure, not loss). A message is never
 * both marked and dropped by the same queue (property-tested): the
 * tail-drop check precedes and short-circuits the marking draw.
 */
class CongestionPoint
{
  public:
    struct Config
    {
        /** Drain rate of the port, Gbit/s. */
        double gbps = 25.0;

        /** Queue capacity in bytes (tail-drop threshold for lossy
         *  traffic). */
        std::uint64_t queueBytes = 256 * 1024;

        /** RED/ECN marking band: mark with probability 0 at kminBytes
         *  ramping to pmax at kmaxBytes, and always above kmaxBytes. */
        std::uint64_t kminBytes = 32 * 1024;
        std::uint64_t kmaxBytes = 128 * 1024;
        double pmax = 0.2;

        /** Marking-process seed (deterministic replay). */
        std::uint64_t seed = 0xecb1;
    };

    struct Verdict
    {
        /** When the frame starts transmitting (>= arrival; the gap is
         *  its queueing delay). Meaningless when dropped. */
        sim::Tick start = 0;

        /** Queue depth in bytes seen on arrival (diagnostics). */
        std::uint64_t depthBytes = 0;

        bool marked = false;
        bool dropped = false;
    };

    explicit CongestionPoint(const Config &cfg)
        : cfg_(cfg), rng_(cfg.seed)
    {
        LYNX_ASSERT(cfg_.kminBytes <= cfg_.kmaxBytes,
                    "ECN band inverted (Kmin > Kmax)");
    }

    CongestionPoint(const CongestionPoint &) = delete;
    CongestionPoint &operator=(const CongestionPoint &) = delete;

    /**
     * Admit @p bytes arriving at @p arrival. Lossy traffic that finds
     * the queue full is dropped (and does not occupy the wire);
     * @p lossless traffic always queues. Marking is judged against
     * the depth *ahead of* the arrival.
     */
    Verdict
    admit(std::uint64_t bytes, sim::Tick arrival, bool lossless = false)
    {
        Verdict v;
        v.start = std::max(arrival, busyUntil_);
        v.depthBytes = bytesIn(v.start - arrival);
        if (!lossless && v.depthBytes + bytes > cfg_.queueBytes) {
            v.dropped = true;
            ++drops_;
            return v;
        }
        if (v.depthBytes >= cfg_.kminBytes) {
            double p = 1.0;
            if (v.depthBytes < cfg_.kmaxBytes) {
                p = cfg_.pmax *
                    static_cast<double>(v.depthBytes - cfg_.kminBytes) /
                    static_cast<double>(cfg_.kmaxBytes - cfg_.kminBytes);
            }
            if (rng_.chance(p)) {
                v.marked = true;
                ++marks_;
            }
        }
        busyUntil_ = v.start + serialization(bytes);
        ++admitted_;
        return v;
    }

    /** @return serialization time of @p bytes at the port rate. */
    sim::Tick
    serialization(std::uint64_t bytes) const
    {
        return static_cast<sim::Tick>(static_cast<double>(bytes) * 8.0 /
                                      cfg_.gbps);
    }

    /** @return queued bytes implied by @p wait of queueing delay. */
    std::uint64_t
    bytesIn(sim::Tick wait) const
    {
        return static_cast<std::uint64_t>(static_cast<double>(wait) *
                                          cfg_.gbps / 8.0);
    }

    /** @return current queue depth in bytes at @p now. */
    std::uint64_t
    depthAt(sim::Tick now) const
    {
        return busyUntil_ > now ? bytesIn(busyUntil_ - now) : 0;
    }

    const Config &config() const { return cfg_; }
    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t marks() const { return marks_; }
    std::uint64_t drops() const { return drops_; }

  private:
    Config cfg_;
    sim::Rng rng_;
    sim::Tick busyUntil_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t marks_ = 0;
    std::uint64_t drops_ = 0;
};

/** 802.1Qbb-style PFC knobs, consumed by the SNIC mqueue layer: a
 *  full RX ring pauses the pusher (backpressure into the dispatcher /
 *  backend listeners) instead of dropping, until the accelerator
 *  drains below the resume threshold or the storm guard fires. */
struct PfcConfig
{
    bool enabled = false;

    /** Resume (XON) threshold as a fraction of the ring: a paused
     *  pusher resumes once occupancy <= xonFrac * slots. */
    double xonFrac = 0.5;

    /** How often a paused pusher re-reads the consumer register over
     *  RDMA (the pause is lifted by observed drain, not by magic). */
    sim::Tick pollInterval = sim::microseconds(2);

    /** Pause-storm guard: a pause episode longer than this breaks —
     *  the push fails over to the drop path (counted) rather than
     *  wedging the dispatcher behind a dead accelerator. */
    sim::Tick pauseTimeout = sim::microseconds(500);
};

/** Master switch + parameters of the whole congestion plane. Default
 *  constructed = everything off = seed timing, bit-identical. */
struct CongestionConfig
{
    /** Master switch: when false the Network/Nic keep their exact
     *  seed code paths (no ports, no state, no Rng draws). */
    bool enabled = false;

    /** Per-egress-port queue model (depth, rate, ECN band). The
     *  port rate defaults to the destination NIC's link rate; set
     *  `portGbps` > 0 to override (bench bottleneck shaping). */
    std::uint64_t egressQueueBytes = 256 * 1024;
    double portGbps = 0.0;

    /** RED/ECN marking (needs `enabled`). */
    bool ecnEnabled = false;
    std::uint64_t ecnKminBytes = 32 * 1024;
    std::uint64_t ecnKmaxBytes = 128 * 1024;
    double ecnPmax = 0.2;
    std::uint64_t ecnSeed = 0xecb1;

    /** DCQCN reaction at sender NICs: CE-marked deliveries generate
     *  CNPs back to the source, which paces each (source, dest) flow
     *  by a Dcqcn rate limiter. */
    bool dcqcnEnabled = false;
    DcqcnConfig dcqcn;

    /** Notification-point pacing: at most one CNP per flow per this
     *  interval (DCQCN's 50 us CNP timer). */
    sim::Tick cnpMinInterval = sim::microseconds(50);

    /** Control-path latency of a CNP back to the sender (bypasses
     *  the congested egress queues — CNPs ride the highest priority). */
    sim::Tick cnpDelay = sim::microseconds(2);

    /** PFC pause/resume on SNIC mqueue RX rings. Copied into
     *  SnicMqueueConfig::pfc by the Runtime. */
    PfcConfig pfc;
};

} // namespace lynx::net

#endif // LYNX_NET_CONGESTION_HH

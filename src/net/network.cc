/**
 * @file
 * Sharded-mode fabric paths (serial routing stays header-inline in
 * network.hh; see DESIGN.md §11 for the partitioning protocol).
 *
 * In sharded mode the switch is the inter-shard boundary: route()
 * stamps each message with a per-(src,dst) sequence number and posts
 * it — through sim::ShardedSim's deterministic staging — to the
 * destination node's home shard, due one wire latency later. All
 * stochastic judging (loss, fault verdicts, congestion admission)
 * happens at the destination drain with order-free keyed randomness,
 * so the outcome for a given transfer depends only on (seed, src,
 * dst, seq) — never on which shard ran first or how machines were
 * partitioned.
 */

#include "network.hh"

#include "sim/shard.hh"

namespace lynx::net {

Network::Network(sim::ShardedSim &ss, NetworkConfig cfg)
    : sim_(ss.shard(0)), cfg_(cfg), lossRng_(cfg.lossSeed), ss_(&ss),
      cRouted_(&stats_.counter("routed")),
      cDroppedInFabric_(&stats_.counter("dropped_in_fabric")),
      cDroppedByFault_(&stats_.counter("dropped_by_fault")),
      cCorruptedInFabric_(&stats_.counter("corrupted_in_fabric")),
      cEcnMarked_(&ecnStats_.counter("marked")),
      cEgressDrops_(&ecnStats_.counter("egress_drops")),
      cCnpSent_(&ecnStats_.counter("cnp_sent")),
      hQueueBytes_(&ecnStats_.histogram("queue_bytes"))
{
    // The base stats_/ecnStats_ stay unregistered: every shard gets
    // its own "net.fabric"/"net.ecn" set in its own registry, so a
    // merged snapshot sums them under one clean path instead of
    // growing "#2"-suffixed duplicates.
    shardStats_.reserve(ss.shards());
    for (unsigned s = 0; s < ss.shards(); ++s) {
        auto st = std::make_unique<ShardNetStats>();
        st->routed = &st->fabric.counter("routed");
        st->droppedInFabric = &st->fabric.counter("dropped_in_fabric");
        st->droppedByFault = &st->fabric.counter("dropped_by_fault");
        st->partitionDrops = &st->fabric.counter("partition_drops");
        st->corruptedInFabric = &st->fabric.counter("corrupted_in_fabric");
        st->ecnMarked = &st->ecn.counter("marked");
        st->egressDrops = &st->ecn.counter("egress_drops");
        st->cnpSent = &st->ecn.counter("cnp_sent");
        st->queueBytes = &st->ecn.histogram("queue_bytes");
        ss.shard(s).metrics().add("net.fabric", st->fabric);
        ss.shard(s).metrics().add("net.ecn", st->ecn);
        shardStats_.push_back(std::move(st));
    }
    // Every cross-shard record rides the wire (switch + propagation)
    // — except CNPs, which ride the shorter control-path delay.
    ss.constrainLookahead(cfg_.switchLatency + cfg_.propagation);
    if (cfg_.congestion.enabled && cfg_.congestion.dcqcnEnabled)
        ss.constrainLookahead(cfg_.congestion.cnpDelay);
}

Network::~Network()
{
    if (ss_) {
        for (unsigned s = 0; s < shardStats_.size(); ++s) {
            ss_->shard(s).metrics().remove(shardStats_[s]->fabric);
            ss_->shard(s).metrics().remove(shardStats_[s]->ecn);
        }
        return;
    }
    sim_.metrics().remove(stats_);
    sim_.metrics().remove(ecnStats_);
}

Nic &
Network::addNicSharded(const std::string &name, NicConfig cfg)
{
    const int s = sim::ShardedSim::currentShard();
    LYNX_ASSERT(s >= 0 && static_cast<unsigned>(s) < ss_->shards(),
                "addNic in sharded mode requires an active "
                "ShardedSim::Scope (to home the node)");
    auto node = static_cast<std::uint32_t>(nics_.size());
    nics_.push_back(std::make_unique<Nic>(
        ss_->shard(static_cast<unsigned>(s)), *this, name, node, cfg));
    shardOf_.push_back(static_cast<unsigned>(s));
    // Topology construction is single-threaded and pre-run, so
    // resizing the seq matrix (and the port table) here is safe; at
    // run time both have fixed addresses.
    pairSeq_.assign(nics_.size() * nics_.size(), 0);
    if (cfg_.congestion.enabled) {
        ports_.resize(nics_.size());
        makePort(node);
    }
    return *nics_.back();
}

void
Network::routeSharded(Message m)
{
    const std::uint32_t src = m.src.node;
    const std::uint32_t dst = m.dst.node;
    const unsigned srcShard = shardOf_[src];
    LYNX_DEBUG_ASSERT(sim::ShardedSim::currentShard() ==
                          static_cast<int>(srcShard),
                      "route() off the sender's home shard");
    sim::Simulator &ssim = ss_->shard(srcShard);
    const sim::Tick drainAt =
        ssim.now() + cfg_.switchLatency + cfg_.propagation;
    const std::uint64_t seq = nextPairSeq(src, dst);
    // Same-shard destinations take the identical staged path: the
    // arrival order at the destination tick must not depend on how
    // nodes were partitioned.
    ss_->post(shardOf_[dst], drainAt, src, dst, seq,
              [this, seq, m = std::move(m)]() mutable {
                  stagedArrival(std::move(m), seq);
              });
}

void
Network::stagedArrival(Message m, std::uint64_t pairSeq)
{
    const std::uint32_t src = m.src.node;
    const std::uint32_t dst = m.dst.node;
    const unsigned ds = shardOf_[dst];
    ShardNetStats &st = *shardStats_[ds];
    sim::Simulator &dsim = ss_->shard(ds);
    const sim::Tick now = dsim.now();
    // The serial path judges at send time; reconstruct it so keyed
    // verdicts (partition windows especially) see the same clock.
    const sim::Tick sendNow = now - cfg_.switchLatency - cfg_.propagation;
    if (cfg_.lossRate > 0.0 &&
        sim::KeyedRng(cfg_.lossSeed, src, dst, pairSeq)
            .chance(cfg_.lossRate)) {
        st.droppedInFabric->add();
        return;
    }
    Nic &dstNic = *nics_[dst];
    const sim::Tick hw = dstNic.config().hwLatency;
    sim::Tick faultDelay = 0;
    if (faults_ && faults_->enabled()) {
        auto v = faults_->judgeKeyed(src, dst, sendNow, pairSeq);
        if (v.drop) {
            (v.partition ? st.partitionDrops : st.droppedByFault)->add();
            return;
        }
        if (v.corrupt) {
            faults_->corruptKeyed(m.payload,
                                  (static_cast<std::uint64_t>(src) << 48) ^
                                      (static_cast<std::uint64_t>(dst)
                                       << 32) ^
                                      pairSeq);
            m.corrupted = true;
            st.corruptedInFabric->add();
        }
        faultDelay = v.delay;
    }
    sim::Tick deliverAt;
    if (cfg_.congestion.enabled) {
        // Admission replays the serial model's arrival time (send +
        // switch latency). Drains hit each port in due-tick order
        // with per-tick (src, dst, seq) tie-breaks, so the port's
        // internal marking Rng needs no keying: its draw order is
        // already partition-invariant.
        CongestionPoint &port = egressPort(dst);
        const sim::Tick arrival = now - cfg_.propagation;
        CongestionPoint::Verdict v =
            port.admit(m.size(), arrival, /*lossless=*/false);
        st.queueBytes->record(v.depthBytes);
        if (v.dropped) {
            st.egressDrops->add();
            return;
        }
        if (v.marked) {
            m.ce = true;
            st.ecnMarked->add();
        }
        deliverAt = v.start + port.serialization(m.size()) +
                    cfg_.propagation + hw + faultDelay;
    } else {
        deliverAt = now + hw + faultDelay;
    }
    st.routed->add();
    dsim.schedule(deliverAt, [&dstNic, m = std::move(m)]() mutable {
        dstNic.deliver(std::move(m));
    });
}

void
Network::sendCnpSharded(std::uint32_t congestedNode, std::uint32_t flowSrc)
{
    const unsigned cs = shardOf_[congestedNode];
    LYNX_DEBUG_ASSERT(sim::ShardedSim::currentShard() ==
                          static_cast<int>(cs),
                      "sendCnp() off the congested node's home shard");
    shardStats_[cs]->cnpSent->add();
    sim::Simulator &csim = ss_->shard(cs);
    const sim::Tick due = csim.now() + cfg_.congestion.cnpDelay;
    Nic &srcNic = *nics_[flowSrc];
    // Shares the (congestedNode, flowSrc) seq cell with data records,
    // so a CNP and a reverse-direction message due the same tick can
    // never collide on a staging key.
    ss_->post(shardOf_[flowSrc], due, congestedNode, flowSrc,
              nextPairSeq(congestedNode, flowSrc),
              [&srcNic, congestedNode] { srcNic.handleCnp(congestedNode); });
}

} // namespace lynx::net

/**
 * @file
 * The switched network connecting all nodes.
 *
 * Star topology through one switch (the paper's testbed: a Mellanox
 * SN2100 connecting 6 machines). Message flight time is
 *
 *     tx NIC hw + serialization(src link) + switch latency +
 *     propagation + rx NIC hw
 *
 * Delivery preserves per-(src,dst) FIFO order because latency is
 * deterministic for a given size and events tie-break FIFO.
 */

#ifndef LYNX_NET_NETWORK_HH
#define LYNX_NET_NETWORK_HH

#include <memory>
#include <string>
#include <vector>

#include "message.hh"
#include "nic.hh"
#include "sim/fault.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace lynx::net {

/** Fabric-wide timing parameters. */
struct NetworkConfig
{
    /** Store-and-forward latency of the switch. */
    sim::Tick switchLatency = sim::nanoseconds(600);

    /** Cable propagation (total, both hops). */
    sim::Tick propagation = sim::nanoseconds(400);

    /** Probability of dropping a message in the fabric (failure
     *  injection; 0 in the calibrated experiments — the testbed is a
     *  single lossless switch). */
    double lossRate = 0.0;

    /** Seed of the loss process (deterministic replay). */
    std::uint64_t lossSeed = 0x10ef;
};

/** The data-center network: a set of NICs behind one switch. */
class Network
{
  public:
    explicit Network(sim::Simulator &sim, NetworkConfig cfg = {})
        : sim_(sim), cfg_(cfg), lossRng_(cfg.lossSeed),
          cRouted_(&stats_.counter("routed")),
          cDroppedInFabric_(&stats_.counter("dropped_in_fabric")),
          cDroppedByFault_(&stats_.counter("dropped_by_fault")),
          cCorruptedInFabric_(&stats_.counter("corrupted_in_fabric"))
    {
        sim_.metrics().add("net.fabric", stats_);
    }

    ~Network() { sim_.metrics().remove(stats_); }

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /**
     * Attach a new node to the fabric.
     * @return its NIC; the node id is the attach order.
     */
    Nic &
    addNic(const std::string &name, NicConfig cfg = {})
    {
        auto node = static_cast<std::uint32_t>(nics_.size());
        nics_.push_back(std::make_unique<Nic>(sim_, *this, name, node, cfg));
        return *nics_.back();
    }

    /** @return the NIC of @p node. */
    Nic &
    nicOf(std::uint32_t node)
    {
        LYNX_ASSERT(node < nics_.size(), "unknown node ", node);
        return *nics_[node];
    }

    /** @return number of attached nodes. */
    std::size_t nodeCount() const { return nics_.size(); }

    /**
     * Route @p m from the wire to its destination NIC. Called by
     * Nic::send after serialization; adds switch + propagation +
     * receive-side latencies.
     */
    void
    route(Message m)
    {
        LYNX_DEBUG_ASSERT(m.dst.node < nics_.size(),
                          "message to unknown node ", m.dst.node);
        if (cfg_.lossRate > 0.0 && lossRng_.chance(cfg_.lossRate)) {
            cDroppedInFabric_->add();
            return;
        }
        Nic &dst = *nics_[m.dst.node];
        sim::Tick flight = cfg_.switchLatency + cfg_.propagation +
                           dst.config().hwLatency;
        if (faults_ && faults_->enabled()) {
            auto v = faults_->judge(m.src.node, m.dst.node, sim_.now());
            if (v.drop) {
                cDroppedByFault_->add();
                return;
            }
            if (v.corrupt) {
                faults_->corruptInPlace(m.payload);
                m.corrupted = true;
                cCorruptedInFabric_->add();
            }
            // A delayed frame lets later ones overtake it: the delay
            // fault doubles as the reordering fault.
            flight += v.delay;
        }
        cRouted_->add();
        sim_.scheduleIn(flight, [&dst, m = std::move(m)]() mutable {
            dst.deliver(std::move(m));
        });
    }

    /** Attach (or detach with nullptr) a fault-injection plan. The
     *  plan is consulted per routed message; an all-zero plan is
     *  short-circuited, leaving timing bit-identical. Not owned. */
    void setFaultPlan(sim::FaultPlan *plan) { faults_ = plan; }

    /** @return the attached fault plan (nullptr when none). */
    sim::FaultPlan *faultPlan() { return faults_; }

    /** Fabric-wide statistics. */
    sim::StatSet &stats() { return stats_; }

    sim::Simulator &sim() { return sim_; }

  private:
    sim::Simulator &sim_;
    NetworkConfig cfg_;
    sim::FaultPlan *faults_ = nullptr;
    sim::Rng lossRng_;
    std::vector<std::unique_ptr<Nic>> nics_;
    sim::StatSet stats_;

    /** Per-message counters, resolved once at construction. */
    sim::Counter *cRouted_;
    sim::Counter *cDroppedInFabric_;
    sim::Counter *cDroppedByFault_;
    sim::Counter *cCorruptedInFabric_;
};

} // namespace lynx::net

#endif // LYNX_NET_NETWORK_HH

/**
 * @file
 * The switched network connecting all nodes.
 *
 * Star topology through one switch (the paper's testbed: a Mellanox
 * SN2100 connecting 6 machines). Message flight time is
 *
 *     tx NIC hw + serialization(src link) + switch latency +
 *     propagation + rx NIC hw
 *
 * Delivery preserves per-(src,dst) FIFO order because latency is
 * deterministic for a given size and events tie-break FIFO.
 *
 * Sharded mode (DESIGN.md §11): constructed over a sim::ShardedSim,
 * the fabric is the inter-shard boundary. Every cross-machine message
 * — even between machines that happen to share a shard — travels as a
 * posted record keyed by (srcNode, dstNode, per-pair seq) and is
 * judged (loss, faults, congestion admission) at the *destination*
 * shard's staging drain with order-free keyed randomness, so results
 * are bit-identical for any shard/thread count. The serial path above
 * is untouched (golden-timestamp discipline); serial and sharded are
 * each deterministic but sample different fault/loss paths, so golden
 * cross-checks compare sharded runs against sharded (shards=1
 * included), never against serial.
 */

#ifndef LYNX_NET_NETWORK_HH
#define LYNX_NET_NETWORK_HH

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "congestion.hh"
#include "message.hh"
#include "nic.hh"
#include "sim/fault.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace lynx::sim {
class ShardedSim;
}

namespace lynx::net {

/** Fabric-wide timing parameters. */
struct NetworkConfig
{
    /** Store-and-forward latency of the switch. */
    sim::Tick switchLatency = sim::nanoseconds(600);

    /** Cable propagation (total, both hops). */
    sim::Tick propagation = sim::nanoseconds(400);

    /** Probability of dropping a message in the fabric (failure
     *  injection; 0 in the calibrated experiments — the testbed is a
     *  single lossless switch). */
    double lossRate = 0.0;

    /** Seed of the loss process (deterministic replay). */
    std::uint64_t lossSeed = 0x10ef;

    /** Congestion plane (egress queues / ECN / DCQCN / PFC). Default
     *  constructed = disabled = the exact seed routing path, with no
     *  per-port state and no Rng draws (bit-identical timing). */
    CongestionConfig congestion;
};

/** The data-center network: a set of NICs behind one switch. */
class Network
{
  public:
    explicit Network(sim::Simulator &sim, NetworkConfig cfg = {})
        : sim_(sim), cfg_(cfg), lossRng_(cfg.lossSeed),
          cRouted_(&stats_.counter("routed")),
          cDroppedInFabric_(&stats_.counter("dropped_in_fabric")),
          cDroppedByFault_(&stats_.counter("dropped_by_fault")),
          cCorruptedInFabric_(&stats_.counter("corrupted_in_fabric")),
          cEcnMarked_(&ecnStats_.counter("marked")),
          cEgressDrops_(&ecnStats_.counter("egress_drops")),
          cCnpSent_(&ecnStats_.counter("cnp_sent")),
          hQueueBytes_(&ecnStats_.histogram("queue_bytes"))
    {
        sim_.metrics().add("net.fabric", stats_);
        sim_.metrics().add("net.ecn", ecnStats_);
    }

    /**
     * Sharded fabric over @p ss (defined in network.cc): registers
     * per-shard "net.fabric"/"net.ecn" StatSets — the base sets stay
     * unregistered so merged snapshots see one clean path each — and
     * reports the fabric's wire latency (and the CNP control delay
     * when DCQCN is on) as lookahead constraints.
     */
    explicit Network(sim::ShardedSim &ss, NetworkConfig cfg = {});

    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /**
     * Attach a new node to the fabric.
     * @return its NIC; the node id is the attach order. In sharded
     * mode the node is homed to the shard entered on this thread
     * (ShardedSim::Scope): its NIC, endpoints, and metrics live on
     * that shard's simulator.
     */
    Nic &
    addNic(const std::string &name, NicConfig cfg = {})
    {
        if (ss_)
            return addNicSharded(name, cfg);
        auto node = static_cast<std::uint32_t>(nics_.size());
        nics_.push_back(std::make_unique<Nic>(sim_, *this, name, node, cfg));
        return *nics_.back();
    }

    /** @return the NIC of @p node. */
    Nic &
    nicOf(std::uint32_t node)
    {
        LYNX_ASSERT(node < nics_.size(), "unknown node ", node);
        return *nics_[node];
    }

    /** @return number of attached nodes. */
    std::size_t nodeCount() const { return nics_.size(); }

    /**
     * Route @p m from the wire to its destination NIC. Called by
     * Nic::send after serialization; adds switch + propagation +
     * receive-side latencies.
     */
    void
    route(Message m)
    {
        LYNX_DEBUG_ASSERT(m.dst.node < nics_.size(),
                          "message to unknown node ", m.dst.node);
        if (ss_) {
            routeSharded(std::move(m));
            return;
        }
        if (cfg_.lossRate > 0.0 && lossRng_.chance(cfg_.lossRate)) {
            cDroppedInFabric_->add();
            return;
        }
        Nic &dst = *nics_[m.dst.node];
        sim::Tick flight = cfg_.switchLatency + cfg_.propagation +
                           dst.config().hwLatency;
        if (faults_ && faults_->enabled()) {
            auto v = faults_->judge(m.src.node, m.dst.node, sim_.now());
            if (v.drop) {
                cDroppedByFault_->add();
                return;
            }
            if (v.corrupt) {
                faults_->corruptInPlace(m.payload);
                m.corrupted = true;
                cCorruptedInFabric_->add();
            }
            // A delayed frame lets later ones overtake it: the delay
            // fault doubles as the reordering fault.
            flight += v.delay;
        }
        if (cfg_.congestion.enabled) {
            // Store-and-forward through a finite egress queue: the
            // frame reaches the port after the switch latency, queues
            // behind earlier traffic to the same destination, may be
            // ECN-marked in the RED band, and tail-drops past the
            // queue capacity. Everything up to here (loss + fault
            // draws) is unchanged from the seed path.
            CongestionPoint &port = egressPort(m.dst.node);
            sim::Tick arrival = sim_.now() + cfg_.switchLatency;
            CongestionPoint::Verdict v =
                port.admit(m.size(), arrival, /*lossless=*/false);
            hQueueBytes_->record(v.depthBytes);
            if (v.dropped) {
                cEgressDrops_->add();
                return;
            }
            if (v.marked) {
                m.ce = true;
                cEcnMarked_->add();
            }
            flight = v.start + port.serialization(m.size()) +
                     cfg_.propagation + dst.config().hwLatency +
                     (flight - (cfg_.switchLatency + cfg_.propagation +
                                dst.config().hwLatency)) -
                     sim_.now();
        }
        cRouted_->add();
        sim_.scheduleIn(flight, [&dst, m = std::move(m)]() mutable {
            dst.deliver(std::move(m));
        });
    }

    /**
     * Control-path CNP from @p congestedNode (the receiver that saw a
     * CE mark) back to @p flowSrc: rides the highest priority, so it
     * bypasses the egress queues and arrives after the fixed
     * `cnpDelay` regardless of data-plane congestion.
     */
    void
    sendCnp(std::uint32_t congestedNode, std::uint32_t flowSrc)
    {
        LYNX_DEBUG_ASSERT(flowSrc < nics_.size(),
                          "CNP to unknown node ", flowSrc);
        if (ss_) {
            sendCnpSharded(congestedNode, flowSrc);
            return;
        }
        cCnpSent_->add();
        Nic &src = *nics_[flowSrc];
        sim_.scheduleIn(cfg_.congestion.cnpDelay,
                        [&src, congestedNode] {
                            src.handleCnp(congestedNode);
                        });
    }

    /** @return the congestion plane's configuration. */
    const CongestionConfig &congestionConfig() const
    {
        return cfg_.congestion;
    }

    /**
     * The egress port feeding @p node, created on first use (never
     * while the plane is disabled). Port rate = the destination
     * NIC's link rate unless `portGbps` overrides it; RDMA flows can
     * bind the same port (rdma::QpCongestionBinding) so datagram and
     * RDMA traffic contend for one bottleneck.
     */
    CongestionPoint &
    egressPort(std::uint32_t node)
    {
        LYNX_ASSERT(cfg_.congestion.enabled,
                    "egress ports exist only with congestion enabled");
        LYNX_ASSERT(node < nics_.size(), "unknown node ", node);
        if (ports_.size() < nics_.size())
            ports_.resize(nics_.size());
        if (!ports_[node])
            makePort(node);
        return *ports_[node];
    }

    /** Attach (or detach with nullptr) a fault-injection plan. The
     *  plan is consulted per routed message; an all-zero plan is
     *  short-circuited, leaving timing bit-identical. Not owned. */
    void setFaultPlan(sim::FaultPlan *plan) { faults_ = plan; }

    /** @return the attached fault plan (nullptr when none). */
    sim::FaultPlan *faultPlan() { return faults_; }

    /** Fabric-wide statistics. */
    sim::StatSet &stats() { return stats_; }

    /** Congestion-plane statistics (`net.ecn.*`: marked,
     *  egress_drops, cnp_sent, queue_bytes). All zero while the
     *  plane is disabled. */
    sim::StatSet &ecnStats() { return ecnStats_; }

    sim::Simulator &sim() { return sim_; }

    /** @return whether this fabric runs over a ShardedSim. */
    bool sharded() const { return ss_ != nullptr; }

    /** @return the sharded engine (nullptr in serial mode). */
    sim::ShardedSim *shardedSim() { return ss_; }

    /** @return the shard that homes @p node (sharded mode only). */
    unsigned
    shardOf(std::uint32_t node) const
    {
        LYNX_ASSERT(ss_ && node < shardOf_.size(), "unknown node ", node);
        return shardOf_[node];
    }

  private:
    /** Per-shard fabric/ECN counters: every shard judges its own
     *  inbound traffic, so counters shard with the data they count
     *  and merge by path at dump time. */
    struct ShardNetStats
    {
        sim::StatSet fabric;
        sim::StatSet ecn;
        sim::Counter *routed = nullptr;
        sim::Counter *droppedInFabric = nullptr;
        sim::Counter *droppedByFault = nullptr;
        sim::Counter *partitionDrops = nullptr;
        sim::Counter *corruptedInFabric = nullptr;
        sim::Counter *ecnMarked = nullptr;
        sim::Counter *egressDrops = nullptr;
        sim::Counter *cnpSent = nullptr;
        sim::Histogram *queueBytes = nullptr;
    };

    Nic &addNicSharded(const std::string &name, NicConfig cfg);
    void routeSharded(Message m);
    void stagedArrival(Message m, std::uint64_t pairSeq);
    void sendCnpSharded(std::uint32_t congestedNode, std::uint32_t flowSrc);

    /** Next per-(a, b) record sequence number. The cell is only ever
     *  advanced by node @p a's home shard (data: the sender; CNPs:
     *  the congested receiver), so no lock is needed, and sharing one
     *  counter between both record kinds keeps staging keys unique. */
    std::uint64_t
    nextPairSeq(std::uint32_t a, std::uint32_t b)
    {
        return pairSeq_[a * nics_.size() + b]++;
    }

    /** Create the egress port feeding @p node (ports_ presized). */
    void
    makePort(std::uint32_t node)
    {
        const CongestionConfig &cc = cfg_.congestion;
        CongestionPoint::Config pc;
        pc.gbps = cc.portGbps > 0.0 ? cc.portGbps
                                    : nics_[node]->config().gbps;
        pc.queueBytes = cc.egressQueueBytes;
        if (cc.ecnEnabled) {
            pc.kminBytes = cc.ecnKminBytes;
            pc.kmaxBytes = cc.ecnKmaxBytes;
            pc.pmax = cc.ecnPmax;
        } else {
            // Marking band pushed past any reachable depth: the
            // port still queues and tail-drops, but never marks
            // (and never draws randomness) — the uncontrolled
            // baseline of the incast bench.
            pc.kminBytes = pc.kmaxBytes =
                std::numeric_limits<std::uint64_t>::max();
            pc.pmax = 0.0;
        }
        pc.seed = cc.ecnSeed + node * 0x9e3779b9ull;
        ports_[node] = std::make_unique<CongestionPoint>(pc);
    }

    sim::Simulator &sim_;
    NetworkConfig cfg_;
    sim::FaultPlan *faults_ = nullptr;
    sim::Rng lossRng_;
    std::vector<std::unique_ptr<Nic>> nics_;

    /** Sharded-mode state (all empty/null in serial mode). */
    sim::ShardedSim *ss_ = nullptr;
    std::vector<unsigned> shardOf_;       ///< node -> home shard
    std::vector<std::uint64_t> pairSeq_;  ///< N*N record seq counters
    std::vector<std::unique_ptr<ShardNetStats>> shardStats_;

    /** Per-destination egress ports, lazily created (only while the
     *  congestion plane is enabled; empty otherwise). */
    std::vector<std::unique_ptr<CongestionPoint>> ports_;

    sim::StatSet stats_;
    sim::StatSet ecnStats_;

    /** Per-message counters, resolved once at construction. */
    sim::Counter *cRouted_;
    sim::Counter *cDroppedInFabric_;
    sim::Counter *cDroppedByFault_;
    sim::Counter *cCorruptedInFabric_;
    sim::Counter *cEcnMarked_;
    sim::Counter *cEgressDrops_;
    sim::Counter *cCnpSent_;
    sim::Histogram *hQueueBytes_;
};

} // namespace lynx::net

#endif // LYNX_NET_NETWORK_HH

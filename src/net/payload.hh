/**
 * @file
 * Pooled message payload buffer.
 *
 * Payload replaces std::vector<uint8_t> inside net::Message. The
 * bytes live in blocks from the sim::Pool slab allocator, so the
 * steady-state data plane — a NIC delivering millions of requests —
 * recycles a fixed set of buffers instead of hitting the heap once
 * (or twice) per message. The handle itself is 16 bytes, which is
 * what keeps a by-value Message small enough for the simulator's
 * inline event storage (see sim/event.hh).
 *
 * The API mirrors the vector operations the code base actually uses;
 * reader functions should take std::span<const uint8_t> (both Payload
 * and vector convert implicitly).
 */

#ifndef LYNX_NET_PAYLOAD_HH
#define LYNX_NET_PAYLOAD_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/pool.hh"

namespace lynx::net {

/** Byte buffer backed by the slab pool. */
class Payload
{
  public:
    using value_type = std::uint8_t;
    using iterator = std::uint8_t *;
    using const_iterator = const std::uint8_t *;
    using reverse_iterator = std::reverse_iterator<iterator>;
    using const_reverse_iterator = std::reverse_iterator<const_iterator>;

    Payload() = default;

    explicit Payload(std::size_t n, std::uint8_t fill = 0)
    {
        resize(n);
        if (n)
            std::memset(data_, fill, n);
    }

    Payload(std::initializer_list<std::uint8_t> init)
    {
        assignBytes(init.begin(), init.size());
    }

    /** Implicit on purpose: producers build vectors, messages carry
     *  Payloads; `m.payload = makeRequest(...)` keeps working. */
    Payload(const std::vector<std::uint8_t> &v)
    {
        assignBytes(v.data(), v.size());
    }

    Payload(std::span<const std::uint8_t> s)
    {
        assignBytes(s.data(), s.size());
    }

    Payload(const Payload &o) { assignBytes(o.data_, o.size_); }

    Payload(Payload &&o) noexcept
        : data_(std::exchange(o.data_, nullptr)),
          size_(std::exchange(o.size_, 0)), cap_(std::exchange(o.cap_, 0))
    {}

    Payload &
    operator=(const Payload &o)
    {
        if (this != &o)
            assignBytes(o.data_, o.size_);
        return *this;
    }

    Payload &
    operator=(Payload &&o) noexcept
    {
        if (this != &o) {
            release();
            data_ = std::exchange(o.data_, nullptr);
            size_ = std::exchange(o.size_, 0);
            cap_ = std::exchange(o.cap_, 0);
        }
        return *this;
    }

    Payload &
    operator=(const std::vector<std::uint8_t> &v)
    {
        assignBytes(v.data(), v.size());
        return *this;
    }

    Payload &
    operator=(std::initializer_list<std::uint8_t> init)
    {
        assignBytes(init.begin(), init.size());
        return *this;
    }

    ~Payload() { release(); }

    std::uint8_t *data() noexcept { return data_; }
    const std::uint8_t *data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    iterator begin() noexcept { return data_; }
    iterator end() noexcept { return data_ + size_; }
    const_iterator begin() const noexcept { return data_; }
    const_iterator end() const noexcept { return data_ + size_; }
    const_iterator cbegin() const noexcept { return data_; }
    const_iterator cend() const noexcept { return data_ + size_; }
    reverse_iterator rbegin() noexcept { return reverse_iterator(end()); }
    reverse_iterator rend() noexcept { return reverse_iterator(begin()); }
    const_reverse_iterator
    rbegin() const noexcept
    {
        return const_reverse_iterator(end());
    }
    const_reverse_iterator
    rend() const noexcept
    {
        return const_reverse_iterator(begin());
    }

    std::uint8_t &operator[](std::size_t i) { return data_[i]; }
    const std::uint8_t &operator[](std::size_t i) const { return data_[i]; }

    std::uint8_t &
    at(std::size_t i)
    {
        LYNX_ASSERT(i < size_, "Payload::at out of range");
        return data_[i];
    }

    const std::uint8_t &
    at(std::size_t i) const
    {
        LYNX_ASSERT(i < size_, "Payload::at out of range");
        return data_[i];
    }

    operator std::span<const std::uint8_t>() const noexcept
    {
        return {data_, size_};
    }

    operator std::span<std::uint8_t>() noexcept { return {data_, size_}; }

    /** Explicit copy out, for code that genuinely needs a vector. */
    std::vector<std::uint8_t>
    toVector() const
    {
        return std::vector<std::uint8_t>(data_, data_ + size_);
    }

    void clear() noexcept { size_ = 0; }

    /** Grow or shrink; new bytes are zero. */
    void
    resize(std::size_t n)
    {
        if (n > cap_)
            regrow(n, /*keep=*/size_);
        if (n > size_)
            std::memset(data_ + size_, 0, n - size_);
        size_ = static_cast<std::uint32_t>(n);
    }

    void
    push_back(std::uint8_t b)
    {
        if (size_ == cap_)
            regrow(size_ + 1, size_);
        data_[size_++] = b;
    }

    void
    assign(std::size_t n, std::uint8_t fill)
    {
        if (n > cap_)
            regrow(n, 0);
        if (n)
            std::memset(data_, fill, n);
        size_ = static_cast<std::uint32_t>(n);
    }

    template <typename It>
        requires(!std::is_integral_v<It>)
    void
    assign(It first, It last)
    {
        const std::size_t n =
            static_cast<std::size_t>(std::distance(first, last));
        if (n > cap_)
            regrow(n, 0);
        size_ = static_cast<std::uint32_t>(n);
        std::uint8_t *out = data_;
        for (It it = first; it != last; ++it)
            *out++ = static_cast<std::uint8_t>(*it);
    }

    /** Append-only insert (the only form the code base uses). */
    template <typename It>
    void
    insert(iterator pos, It first, It last)
    {
        LYNX_ASSERT(pos == end(), "Payload::insert supports append only");
        const std::size_t n =
            static_cast<std::size_t>(std::distance(first, last));
        if (size_ + n > cap_)
            regrow(size_ + n, size_);
        std::uint8_t *out = data_ + size_;
        for (It it = first; it != last; ++it)
            *out++ = static_cast<std::uint8_t>(*it);
        size_ += static_cast<std::uint32_t>(n);
    }

    friend bool
    operator==(const Payload &a, const Payload &b) noexcept
    {
        return a.size_ == b.size_ &&
               (a.size_ == 0 ||
                std::memcmp(a.data_, b.data_, a.size_) == 0);
    }

    friend bool
    operator==(const Payload &a, const std::vector<std::uint8_t> &b) noexcept
    {
        return a.size_ == b.size() &&
               (a.size_ == 0 ||
                std::memcmp(a.data_, b.data(), a.size_) == 0);
    }

    friend bool
    operator==(const std::vector<std::uint8_t> &a, const Payload &b) noexcept
    {
        return b == a;
    }

  private:
    void
    assignBytes(const std::uint8_t *src, std::size_t n)
    {
        if (n > cap_)
            regrow(n, 0);
        if (n)
            std::memmove(data_, src, n); // allows self-assign slices
        size_ = static_cast<std::uint32_t>(n);
    }

    /** Switch to a pool block of >= @p need bytes, preserving the
     *  first @p keep bytes. The request is rounded up to the pool's
     *  size class so the stated capacity is honestly allocated and
     *  repeated small growth re-uses the same class. */
    void
    regrow(std::size_t need, std::size_t keep)
    {
        const std::size_t newCap = roundCap(need);
        auto *nbuf = static_cast<std::uint8_t *>(
            sim::Pool::instance().allocate(newCap));
        if (keep)
            std::memcpy(nbuf, data_, keep);
        if (data_)
            sim::Pool::instance().deallocate(data_);
        data_ = nbuf;
        cap_ = static_cast<std::uint32_t>(newCap);
    }

    /** Pool size classes: 2^k and 1.5*2^k, floor 32; exact beyond the
     *  largest class (the pool passes those through). */
    static std::size_t
    roundCap(std::size_t n)
    {
        if (n <= 32)
            return 32;
        if (n > sim::Pool::kMaxBlockSize)
            return n;
        const unsigned p = std::bit_width(n - 1) - 1;
        const std::size_t half = std::size_t(3) << (p - 1);
        return n > half ? std::size_t(1) << (p + 1) : half;
    }

    void
    release() noexcept
    {
        if (data_) {
            sim::Pool::instance().deallocate(data_);
            data_ = nullptr;
        }
        size_ = 0;
        cap_ = 0;
    }

    std::uint8_t *data_ = nullptr;
    std::uint32_t size_ = 0;
    std::uint32_t cap_ = 0;
};

} // namespace lynx::net

#endif // LYNX_NET_PAYLOAD_HH

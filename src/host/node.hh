/**
 * @file
 * A physical machine: CPU cores, PCIe fabric, and a NIC.
 *
 * The paper's testbed (§6): Xeon E5-2620 v2 servers (6 cores,
 * hyper-threading disabled) behind a 40 Gb/s switch; accelerators
 * (GPUs, VCA) hang off each machine's PCIe fabric.
 */

#ifndef LYNX_HOST_NODE_HH
#define LYNX_HOST_NODE_HH

#include <string>

#include "net/network.hh"
#include "net/nic.hh"
#include "pcie/fabric.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"

namespace lynx::host {

/** Static parameters of one machine. */
struct NodeConfig
{
    /** Number of CPU cores (Xeon E5-2620 v2: 6). */
    std::size_t cores = 6;

    /** Core speed factor relative to the reference Xeon (1.0). */
    double coreSpeed = 1.0;

    /** NIC link parameters. */
    net::NicConfig nic{};

    /** PCIe fabric parameters. */
    pcie::FabricConfig fabric{};
};

/** One machine attached to the network. */
class Node
{
  public:
    Node(sim::Simulator &sim, net::Network &network, const std::string &name,
         NodeConfig cfg = {})
        : name_(name), cores_(sim, name + ".cpu", cfg.cores, cfg.coreSpeed),
          fabric_(sim, name + ".pcie", cfg.fabric),
          nic_(network.addNic(name + ".nic", cfg.nic))
    {}

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    /** @return machine name. */
    const std::string &name() const { return name_; }

    /** @return network node id (assigned by the network). */
    std::uint32_t id() const { return nic_.node(); }

    /** @return CPU cores. */
    sim::CorePool &cores() { return cores_; }

    /** @return PCIe fabric. */
    pcie::Fabric &fabric() { return fabric_; }

    /** @return NIC. */
    net::Nic &nic() { return nic_; }

  private:
    std::string name_;
    sim::CorePool cores_;
    pcie::Fabric fabric_;
    net::Nic &nic_;
};

} // namespace lynx::host

#endif // LYNX_HOST_NODE_HH

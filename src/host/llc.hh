/**
 * @file
 * Last-level-cache interference ("noisy neighbor") model.
 *
 * Paper §3.2: a matrix-product neighbor that fills the shared LLC
 * inflates a co-located GPU-server's 99th-percentile response latency
 * 13× (0.13 ms → 1.7 ms) while itself slowing 21%; the Xeon E5-2620
 * v2 has no Cache Allocation Technology to mitigate it. §6.2 repeats
 * the experiment with Lynx on Bluefield and observes no interference.
 *
 * Model: when a neighbor saturating the LLC is active, a victim's
 * CPU work suffers (a) a steady slowdown from its now-missing working
 * set and (b) occasional bursts (prefetcher/DRAM-bank interference)
 * that create the heavy tail; the neighbor itself runs at a steady
 * slowdown. Both effects are sampled from a seeded RNG so runs are
 * reproducible. The parameters are calibrated in
 * lynx/calibration.hh against the paper's two numbers.
 */

#ifndef LYNX_HOST_LLC_HH
#define LYNX_HOST_LLC_HH

#include "sim/random.hh"
#include "sim/time.hh"

namespace lynx::host {

/** Interference parameters of one LLC domain. */
struct LlcConfig
{
    /** Steady-state slowdown of a cache-sensitive victim while the
     *  neighbor runs (applies to every victim operation). */
    double victimSteady = 1.35;

    /** Probability that a victim operation hits an interference
     *  burst. */
    double burstProbability = 0.02;

    /** Mean extra slowdown multiplier of a burst (exponentially
     *  distributed on top of victimSteady). */
    double burstScale = 12.0;

    /** Slowdown of the neighbor itself (§3.2: 21% ⇒ 1.27× time). */
    double neighborSlowdown = 1.27;
};

/** The shared last-level cache of one socket. */
class LlcModel
{
  public:
    explicit LlcModel(LlcConfig cfg = {}, std::uint64_t seed = 0x11cc)
        : cfg_(cfg), rng_(seed)
    {}

    /** @return whether a cache-filling neighbor is running. */
    bool noisy() const { return noisy_; }

    /** Start/stop the cache-filling neighbor. */
    void setNoisy(bool on) { noisy_ = on; }

    /** @return the neighbor's own slowdown factor (≥1). */
    double
    neighborFactor() const
    {
        return noisy_ ? cfg_.neighborSlowdown : 1.0;
    }

    /**
     * Sample the slowdown multiplier for one victim operation.
     * Without a neighbor this is exactly 1.
     */
    double
    sampleVictimFactor()
    {
        if (!noisy_)
            return 1.0;
        double f = cfg_.victimSteady;
        if (rng_.chance(cfg_.burstProbability))
            f += rng_.exponential(cfg_.burstScale);
        return f;
    }

    /** Apply sampleVictimFactor() to a duration. */
    sim::Tick
    perturb(sim::Tick cost)
    {
        return static_cast<sim::Tick>(static_cast<double>(cost) *
                                      sampleVictimFactor());
    }

  private:
    LlcConfig cfg_;
    sim::Rng rng_;
    bool noisy_ = false;
};

} // namespace lynx::host

#endif // LYNX_HOST_LLC_HH

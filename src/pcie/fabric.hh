/**
 * @file
 * PCIe fabric cost model.
 *
 * Models the latency and bandwidth of transfers crossing a machine's
 * PCIe hierarchy: host-to-device copies, peer-to-peer DMA between a
 * NIC and an accelerator, and MMIO register accesses. Small-message
 * server workloads are latency- rather than bandwidth-bound, so links
 * are not modelled as contended resources; serialization time is
 * still charged per transfer.
 */

#ifndef LYNX_PCIE_FABRIC_HH
#define LYNX_PCIE_FABRIC_HH

#include <cstdint>
#include <string>

#include "sim/co.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace lynx::pcie {

/** Timing parameters of one machine's PCIe hierarchy. */
struct FabricConfig
{
    /** One-way latency of a DMA crossing the fabric (root complex or
     *  PCIe switch hop included). */
    sim::Tick dmaLatency = sim::nanoseconds(900);

    /** Effective payload bandwidth in Gbit/s (PCIe gen3 x8-ish after
     *  TLP overheads). */
    double gbps = 50.0;

    /** Latency of a single MMIO register read/write over the bus. */
    sim::Tick mmioLatency = sim::nanoseconds(800);
};

/** A machine's PCIe interconnect. */
class Fabric
{
  public:
    Fabric(sim::Simulator &sim, std::string name, FabricConfig cfg = {})
        : sim_(sim), name_(std::move(name)), cfg_(cfg)
    {}

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return the config this fabric was built with. */
    const FabricConfig &config() const { return cfg_; }

    /** @return time for a DMA of @p bytes to traverse the fabric. */
    sim::Tick
    dmaTime(std::uint64_t bytes) const
    {
        return cfg_.dmaLatency + serialization(bytes);
    }

    /** @return pure serialization time of @p bytes at fabric rate. */
    sim::Tick
    serialization(std::uint64_t bytes) const
    {
        return static_cast<sim::Tick>(static_cast<double>(bytes) * 8.0 /
                                      cfg_.gbps);
    }

    /** Await a DMA transfer of @p bytes across the fabric. */
    sim::Co<void>
    dma(std::uint64_t bytes)
    {
        co_await sim::sleep(dmaTime(bytes));
    }

    /** Await one MMIO register access (blocking PCIe round trip). */
    sim::Co<void>
    mmio()
    {
        co_await sim::sleep(cfg_.mmioLatency);
    }

    sim::Simulator &sim() { return sim_; }

  private:
    sim::Simulator &sim_;
    std::string name_;
    FabricConfig cfg_;
};

} // namespace lynx::pcie

#endif // LYNX_PCIE_FABRIC_HH

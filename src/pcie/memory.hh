/**
 * @file
 * BAR-exposed device memory.
 *
 * A DeviceMemory is a byte array standing in for the part of an
 * accelerator's memory that the device exposes on the PCIe bus via
 * its Base Address Register (the mechanism GPUDirect RDMA relies on,
 * paper §4.4). Message queues live here as real bytes: the SmartNIC
 * writes them remotely via RDMA, and the accelerator-side I/O library
 * reads them locally.
 *
 * Watchpoints let simulated pollers sleep instead of busy-spinning:
 * a write overlapping a watched range fires its callback, which wakes
 * the poller; the poller then charges itself the discovery latency
 * real polling would have cost. (Real hardware polls; the simulation
 * is event-driven. This "virtual polling" keeps timing faithful
 * without generating unbounded idle events; see DESIGN.md.)
 */

#ifndef LYNX_PCIE_MEMORY_HH
#define LYNX_PCIE_MEMORY_HH

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace lynx::pcie {

/** A contiguous, bounds-checked device memory region. */
class DeviceMemory
{
  public:
    /** Callback invoked after a write overlapping its watched range. */
    using WriteWatcher = std::function<void(std::uint64_t off,
                                            std::uint64_t len)>;

    DeviceMemory(std::string name, std::uint64_t size)
        : name_(std::move(name)), bytes_(size, 0)
    {}

    DeviceMemory(const DeviceMemory &) = delete;
    DeviceMemory &operator=(const DeviceMemory &) = delete;

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return region size in bytes. */
    std::uint64_t size() const { return bytes_.size(); }

    /** Copy @p data into the region at @p off; fires watchpoints. */
    void
    write(std::uint64_t off, std::span<const std::uint8_t> data)
    {
        checkRange(off, data.size());
        std::copy(data.begin(), data.end(), bytes_.begin() + off);
        notify(off, data.size());
    }

    /** Copy @p out.size() bytes starting at @p off into @p out. */
    void
    read(std::uint64_t off, std::span<std::uint8_t> out) const
    {
        checkRange(off, out.size());
        std::copy_n(bytes_.begin() + off, out.size(), out.begin());
    }

    /** Write a little-endian 32-bit word. */
    void
    writeU32(std::uint64_t off, std::uint32_t v)
    {
        std::uint8_t b[4] = {
            static_cast<std::uint8_t>(v),
            static_cast<std::uint8_t>(v >> 8),
            static_cast<std::uint8_t>(v >> 16),
            static_cast<std::uint8_t>(v >> 24),
        };
        write(off, b);
    }

    /** Read a little-endian 32-bit word. */
    std::uint32_t
    readU32(std::uint64_t off) const
    {
        std::uint8_t b[4];
        read(off, b);
        return static_cast<std::uint32_t>(b[0]) |
               (static_cast<std::uint32_t>(b[1]) << 8) |
               (static_cast<std::uint32_t>(b[2]) << 16) |
               (static_cast<std::uint32_t>(b[3]) << 24);
    }

    /** Write a little-endian 64-bit word. */
    void
    writeU64(std::uint64_t off, std::uint64_t v)
    {
        writeU32(off, static_cast<std::uint32_t>(v));
        writeU32(off + 4, static_cast<std::uint32_t>(v >> 32));
    }

    /** Read a little-endian 64-bit word. */
    std::uint64_t
    readU64(std::uint64_t off) const
    {
        return static_cast<std::uint64_t>(readU32(off)) |
               (static_cast<std::uint64_t>(readU32(off + 4)) << 32);
    }

    /** @return a read-only view of [off, off+len). */
    std::span<const std::uint8_t>
    view(std::uint64_t off, std::uint64_t len) const
    {
        checkRange(off, len);
        return {bytes_.data() + off, len};
    }

    /**
     * Watch writes overlapping [off, off+len).
     * @return an id usable with unwatch().
     */
    std::uint64_t
    watch(std::uint64_t off, std::uint64_t len, WriteWatcher fn)
    {
        checkRange(off, len);
        watchers_.push_back({nextWatchId_, off, len, std::move(fn)});
        return nextWatchId_++;
    }

    /** Remove the watchpoint @p id. */
    void
    unwatch(std::uint64_t id)
    {
        std::erase_if(watchers_, [id](const Watcher &w) {
            return w.id == id;
        });
    }

  private:
    struct Watcher
    {
        std::uint64_t id;
        std::uint64_t off;
        std::uint64_t len;
        WriteWatcher fn;
    };

    void
    checkRange(std::uint64_t off, std::uint64_t len) const
    {
        LYNX_ASSERT(off + len <= bytes_.size(),
                    "access [", off, ", ", off + len, ") out of bounds of ",
                    name_, " (size ", bytes_.size(), ")");
    }

    void
    notify(std::uint64_t off, std::uint64_t len)
    {
        // Copy the list first: a watcher may add/remove watchpoints.
        for (const auto &w : std::vector<Watcher>(watchers_)) {
            if (off < w.off + w.len && w.off < off + len)
                w.fn(off, len);
        }
    }

    std::string name_;
    std::vector<std::uint8_t> bytes_;
    std::vector<Watcher> watchers_;
    std::uint64_t nextWatchId_ = 0;
};

} // namespace lynx::pcie

#endif // LYNX_PCIE_MEMORY_HH

/**
 * @file
 * Intel Visual Compute Accelerator model (paper §5.4, §6.2).
 *
 * "Intel VCA packs three independent Intel E3 processors each with
 * its own memory. These CPUs are interconnected via a PCIe switch
 * ... From the software perspective VCA appears as three independent
 * machines running Linux ... It supports secure computations via x86
 * Software Guarded Extensions."
 *
 * Two I/O paths matter for the §6.2 experiment:
 *  - the *native* path: clients reach a VCA processor through the
 *    host's IP-over-PCIe network bridge ("the Intel preferred way"),
 *    paying the bridge latency in both directions;
 *  - the *Lynx* path: mqueues in a host-memory window the VCA maps
 *    (the paper's workaround for the VCA RDMA bug — "a sub-optimal
 *    configuration"), each access costing a PCIe round trip.
 *
 * SgxEnclave wraps a computation with the enclave entry/exit cost;
 * the gio I/O layer is small enough to live inside the TCB ("20
 * Lines of Code ... statically linked with the enclave code").
 */

#ifndef LYNX_ACCEL_VCA_HH
#define LYNX_ACCEL_VCA_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pcie/memory.hh"
#include "sim/co.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/time.hh"

namespace lynx::accel {

/** Static parameters of one VCA card. */
struct VcaConfig
{
    /** Independent E3 processors on the card. */
    int processors = 3;

    /** E3 core speed vs the reference Xeon. */
    double coreSlowdown = 1.3;

    /** SGX enclave entry+exit cost per call. */
    sim::Tick sgxTransitionCost = sim::microseconds(4);

    /** IP-over-PCIe bridge latency, each direction (native path). */
    sim::Tick bridgeLatency = sim::microseconds(80);

    /** Latency of one VCA access to the host-memory mqueue window
     *  (Lynx path; a PCIe round trip per access). */
    sim::Tick queueAccessLatency = sim::microseconds(7);

    /** Host-memory window size for the Lynx mqueues. */
    std::uint64_t windowBytes = 1 << 20;
};

/** One Intel VCA card. */
class Vca
{
  public:
    Vca(sim::Simulator &sim, const std::string &name, VcaConfig cfg = {})
        : name_(name), cfg_(cfg),
          window_(name + ".hostmem", cfg.windowBytes)
    {
        for (int i = 0; i < cfg.processors; ++i) {
            cores_.push_back(std::make_unique<sim::Core>(
                sim, name + ".e3-" + std::to_string(i),
                cfg.coreSlowdown));
        }
    }

    Vca(const Vca &) = delete;
    Vca &operator=(const Vca &) = delete;

    const std::string &name() const { return name_; }
    const VcaConfig &config() const { return cfg_; }

    /** @return E3 processor @p i. */
    sim::Core &processor(std::size_t i) { return *cores_.at(i); }
    std::size_t processorCount() const { return cores_.size(); }

    /**
     * @return the host-memory window holding the Lynx mqueues (the
     * §5.4 workaround: "we used CPU memory to store the mqueues but
     * mapped this memory into VCA").
     */
    pcie::DeviceMemory &hostWindow() { return window_; }

  private:
    std::string name_;
    VcaConfig cfg_;
    pcie::DeviceMemory window_;
    std::vector<std::unique_ptr<sim::Core>> cores_;
};

/** An SGX enclave hosting a computation on one VCA processor. */
class SgxEnclave
{
  public:
    using ComputeFn = std::function<std::vector<std::uint8_t>(
        std::span<const std::uint8_t>)>;

    /**
     * @param computeCost CPU time of the enclave computation itself
     *        (on the reference core; scaled by the E3's slowdown).
     * @param compute the real computation (e.g. AES decrypt/encrypt).
     */
    SgxEnclave(Vca &vca, sim::Tick computeCost, ComputeFn compute)
        : vca_(vca), computeCost_(computeCost),
          compute_(std::move(compute))
    {}

    /**
     * Execute one enclave call on @p core: entry/exit transitions
     * plus the computation, returning its real result.
     */
    sim::Co<std::vector<std::uint8_t>>
    call(sim::Core &core, std::span<const std::uint8_t> input)
    {
        co_await core.exec(vca_.config().sgxTransitionCost +
                           computeCost_);
        co_return compute_(input);
    }

  private:
    Vca &vca_;
    sim::Tick computeCost_;
    ComputeFn compute_;
};

} // namespace lynx::accel

#endif // LYNX_ACCEL_VCA_HH

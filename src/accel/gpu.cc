#include "gpu.hh"

#include "sim/task.hh"

namespace lynx::accel {

sim::Co<void>
SlotPool::acquire(int n)
{
    if (waiters_.empty() && free_ >= n) {
        free_ -= n;
        co_return;
    }
    auto w = std::make_shared<Waiter>(sim_, n);
    waiters_.push_back(w);
    admit();
    co_await w->gate.wait();
}

void
SlotPool::release(int n)
{
    free_ += n;
    admit();
}

void
SlotPool::admit()
{
    while (!waiters_.empty() && free_ >= waiters_.front()->n) {
        free_ -= waiters_.front()->n;
        waiters_.front()->gate.open();
        waiters_.pop_front();
    }
}

Gpu::Gpu(sim::Simulator &sim, std::string name, pcie::Fabric &fabric,
         GpuConfig cfg)
    : sim_(sim), name_(std::move(name)), fabric_(fabric), cfg_(cfg),
      mem_(name_ + ".mem", cfg.memBytes), slots_(sim, cfg.blockSlots),
      cKernels_(&stats_.counter("kernels")),
      cDeviceLaunches_(&stats_.counter("device_launches")),
      cBatchedItems_(&stats_.counter("batched_items")),
      hBatchSize_(&stats_.histogram("batch_size"))
{}

sim::Co<void>
Gpu::execKernel(int blocks, sim::Tick duration, std::function<void()> body)
{
    LYNX_ASSERT(blocks > 0 && blocks <= cfg_.blockSlots, name_,
                ": kernel of ", blocks, " blocks exceeds device capacity");
    co_await slots_.acquire(blocks);
    cKernels_->add();
    co_await sim::sleep(scaled(duration));
    if (body)
        body();
    slots_.release(blocks);
}

sim::Co<void>
Gpu::deviceLaunch(int blocks, sim::Tick duration, std::function<void()> body)
{
    cDeviceLaunches_->add();
    co_await sim::sleep(cfg_.deviceLaunchOverhead);
    co_await execKernel(blocks, duration, std::move(body));
}

sim::Co<void>
Gpu::batchedLaunch(int blocks, sim::Tick perItem, int n,
                   std::function<void()> body)
{
    cDeviceLaunches_->add();
    cBatchedItems_->add(static_cast<std::uint64_t>(n));
    hBatchSize_->record(n);
    co_await sim::sleep(cfg_.deviceLaunchOverhead);
    co_await execKernel(blocks, batchedDuration(perItem, n),
                        std::move(body));
}

GpuDriver::GpuDriver(sim::Simulator &sim, Gpu &gpu, GpuDriverConfig cfg)
    : sim_(sim), gpu_(gpu), cfg_(cfg), lock_(sim, 1),
      cDriverCalls_(&stats_.counter("driver_calls")),
      cContendedCalls_(&stats_.counter("contended_calls")),
      cGdrAccesses_(&stats_.counter("gdr_accesses"))
{}

sim::Co<void>
GpuDriver::driverCall(sim::Core &core)
{
    bool contended = lock_.available() == 0;
    co_await lock_.acquire();
    sim::Tick cost = cfg_.submitCost + (contended ? cfg_.contendedExtra : 0);
    cDriverCalls_->add();
    if (contended)
        cContendedCalls_->add();
    co_await core.exec(cost);
    lock_.release();
}

sim::Co<void>
GpuDriver::gdrAccess(sim::Core &core, std::uint64_t bytes)
{
    cGdrAccesses_->add();
    sim::Tick cost =
        cfg_.gdrBase + static_cast<sim::Tick>(cfg_.gdrPerByte *
                                              static_cast<double>(bytes));
    co_await core.exec(cost);
}

Stream::Stream(sim::Simulator &sim, GpuDriver &driver)
    : sim_(sim), driver_(driver), devQueue_(sim), idle_(sim, true)
{
    sim::spawn(sim_, run());
}

sim::Task
Stream::run()
{
    for (;;) {
        DeviceOp op = co_await devQueue_.pop();
        co_await op();
        if (--inflight_ == 0)
            idle_.open();
    }
}

sim::Co<void>
Stream::submit(sim::Core &core, DeviceOp deviceWork)
{
    co_await driver_.driverCall(core);
    ++inflight_;
    idle_.close();
    bool ok = devQueue_.tryPush(std::move(deviceWork));
    LYNX_ASSERT(ok, "stream device queue overflow");
}

sim::Co<void>
Stream::memcpyH2D(sim::Core &core, std::uint64_t bytes)
{
    co_await submit(core, [this, bytes]() -> sim::Co<void> {
        co_await sim::sleep(driver_.config().memcpyResidual);
        co_await driver_.gpu().fabric().dma(bytes);
    });
}

sim::Co<void>
Stream::memcpyD2H(sim::Core &core, std::uint64_t bytes)
{
    // Same path cost in either direction at this level of detail.
    co_await memcpyH2D(core, bytes);
}

sim::Co<void>
Stream::launch(sim::Core &core, int blocks, sim::Tick duration,
               std::function<void()> body)
{
    co_await submit(
        core, [this, blocks, duration,
               body = std::move(body)]() -> sim::Co<void> {
            co_await sim::sleep(driver_.config().launchResidual);
            co_await driver_.gpu().execKernel(blocks, duration,
                                              std::move(body));
        });
}

sim::Co<void>
Stream::sync(sim::Core &core)
{
    co_await idle_.wait();
    co_await core.exec(driver_.config().syncCost);
}

} // namespace lynx::accel

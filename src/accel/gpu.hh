/**
 * @file
 * GPU accelerator model.
 *
 * The paper uses NVIDIA K40m/K80 GPUs in two roles:
 *
 *  - *host-centric baseline*: the CPU launches one short kernel per
 *    request through CUDA streams; the closed-source driver
 *    serializes submissions (a single lock) and each call costs host
 *    CPU time — the "accelerator invocation overhead" of §3.2;
 *  - *Lynx / persistent kernels*: a kernel occupying up to
 *    `blockSlots` threadblocks runs forever, polls mqueues in device
 *    memory, and (for LeNet) spawns child kernels with dynamic
 *    parallelism, never involving the host.
 *
 * The model captures what those experiments resolve: threadblock
 * occupancy, ordered streams, the driver lock and per-call CPU costs,
 * cudaMemcpyAsync's fixed overhead, gdrcopy-style BAR access, and
 * device-local memory polling latency. Kernels carry an optional
 * `body` closure so application kernels compute *real results*
 * (LeNet, LBP) that flow back to clients byte-for-byte.
 */

#ifndef LYNX_ACCEL_GPU_HH
#define LYNX_ACCEL_GPU_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "pcie/fabric.hh"
#include "pcie/memory.hh"
#include "sim/channel.hh"
#include "sim/co.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"
#include "sim/time.hh"

namespace lynx::accel {

/** Static parameters of one GPU. */
struct GpuConfig
{
    /** Maximum concurrently resident threadblocks (240 on K40m). */
    int blockSlots = 240;

    /** Kernel-duration multiplier relative to K40m (K80 ≈ 1.06:
     *  paper footnote: K80 reaches 3300 req/s where K40m does 3500). */
    double clockScale = 1.0;

    /** BAR-exposed device memory size. */
    std::uint64_t memBytes = 16ull << 20;

    /** Device-side local memory access latency (mqueue polling). */
    sim::Tick localMemLatency = sim::nanoseconds(200);

    /** Per-child overhead of a device-side (dynamic parallelism)
     *  kernel launch. */
    sim::Tick deviceLaunchOverhead = sim::nanoseconds(1500);

    /** Occupancy-aware batched-launch model (dynamic request
     *  batching): marginal duration of each additional batched item
     *  relative to the first, below the saturation point. Canonical
     *  values live in lynx/calibration.hh (gpuBatch*); accel/ sits
     *  below lynx/, so the defaults here are numeric copies that
     *  test_calibration pins equal. */
    double batchMarginalItemCost = 0.35;

    /** Batched items beyond which each extra item costs full serial
     *  time (the device is saturated). */
    int batchOccupancySaturation = 32;
};

/** Host-driver timing parameters (shared by all streams of a GPU). */
struct GpuDriverConfig
{
    /** Host CPU time per driver call (memcpy/launch submission),
     *  spent holding the global driver lock. */
    sim::Tick submitCost = sim::microseconds(4);

    /** Extra CPU time per call when the lock is contended (many
     *  streams/threads — §3.2's "NVIDIA driver bottleneck"). */
    sim::Tick contendedExtra = sim::nanoseconds(2500);

    /** Host CPU time to observe a stream completion
     *  (cudaStreamSynchronize-style polling). */
    sim::Tick syncCost = sim::microseconds(3);

    /** Residual device-side latency of a kernel launch after the
     *  submission returns (command fetch, block scheduling). */
    sim::Tick launchResidual = sim::microseconds(7);

    /** Residual latency of an async memcpy after submission (DMA
     *  engine start-up; the "7-8 us constant overhead" of §5.1 is
     *  submitCost + this + fabric DMA latency). */
    sim::Tick memcpyResidual = sim::microseconds(7);

    /** gdrcopy: host CPU store/load to BAR-mapped device memory —
     *  fixed MMIO cost plus per-byte write-combining cost. Blocking
     *  (§5.1: "gdrcopy blocks until the transfer is completed"). */
    sim::Tick gdrBase = sim::nanoseconds(900);
    double gdrPerByte = 2.2;
};

/**
 * FIFO threadblock slot pool. Kernels are admitted in launch order:
 * a big kernel at the head blocks later small ones (hardware work
 * scheduler behaviour), which keeps admission deterministic.
 */
class SlotPool
{
  public:
    SlotPool(sim::Simulator &sim, int slots) : sim_(sim), free_(slots) {}

    /** @return currently free slots. */
    int free() const { return free_; }

    /** Await @p n slots. */
    sim::Co<void> acquire(int n);

    /** Return @p n slots and admit waiting kernels. */
    void release(int n);

  private:
    struct Waiter
    {
        Waiter(sim::Simulator &sim, int n_) : n(n_), gate(sim) {}

        int n;
        sim::Gate gate;
    };

    void admit();

    sim::Simulator &sim_;
    int free_;
    std::deque<std::shared_ptr<Waiter>> waiters_;
};

/** One GPU: device memory, threadblock slots, kernel execution. */
class Gpu
{
  public:
    Gpu(sim::Simulator &sim, std::string name, pcie::Fabric &fabric,
        GpuConfig cfg = {});

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return configuration. */
    const GpuConfig &config() const { return cfg_; }

    /** @return the PCIe fabric this GPU sits on. */
    pcie::Fabric &fabric() { return fabric_; }

    /** @return BAR-exposed device memory. */
    pcie::DeviceMemory &memory() { return mem_; }

    /** @return threadblock slot pool. */
    SlotPool &slots() { return slots_; }

    /** @return duration @p d scaled by this GPU's clock. */
    sim::Tick
    scaled(sim::Tick d) const
    {
        return static_cast<sim::Tick>(static_cast<double>(d) *
                                      cfg_.clockScale);
    }

    /**
     * Execute a kernel: wait for @p blocks slots, run for @p duration
     * (clock-scaled), then invoke @p body (the kernel's real
     * computation takes effect at completion) and free the slots.
     */
    sim::Co<void> execKernel(int blocks, sim::Tick duration,
                             std::function<void()> body = {});

    /**
     * Device-side (dynamic parallelism) launch: adds the device
     * launch overhead, then behaves like execKernel. Used by
     * persistent kernels (LeNet inference, §6.3) without any host
     * involvement.
     */
    sim::Co<void> deviceLaunch(int blocks, sim::Tick duration,
                               std::function<void()> body = {});

    /**
     * Duration of one kernel that processes @p n batched items of
     * @p perItem compute each (unscaled). The occupancy-aware model:
     * each extra item up to `batchOccupancySaturation` costs
     * `batchMarginalItemCost` of the first (it fills SMs the first
     * item left idle); past saturation extra items serialize.
     * @p n = 1 returns @p perItem exactly.
     */
    sim::Tick
    batchedDuration(sim::Tick perItem, int n) const
    {
        LYNX_ASSERT(n >= 1, name_, ": batched duration of ", n, " items");
        int occ = std::min(n, cfg_.batchOccupancySaturation);
        double factor = 1.0 +
                        static_cast<double>(occ - 1) *
                            cfg_.batchMarginalItemCost +
                        static_cast<double>(n - occ);
        return static_cast<sim::Tick>(static_cast<double>(perItem) *
                                      factor);
    }

    /**
     * Device-side launch of one kernel over @p n batched items: the
     * launch overhead is paid ONCE for the batch and the kernel runs
     * for batchedDuration(@p perItem, @p n). @p n = 1 is tick-exact
     * with deviceLaunch(blocks, perItem).
     */
    sim::Co<void> batchedLaunch(int blocks, sim::Tick perItem, int n,
                                std::function<void()> body = {});

    /** Await one device-local memory access (poll latency). */
    sim::Co<void>
    localMemAccess()
    {
        co_await sim::sleep(cfg_.localMemLatency);
    }

    /** Kernel/occupancy statistics. */
    sim::StatSet &stats() { return stats_; }

    sim::Simulator &sim() { return sim_; }

  private:
    sim::Simulator &sim_;
    std::string name_;
    pcie::Fabric &fabric_;
    GpuConfig cfg_;
    pcie::DeviceMemory mem_;
    SlotPool slots_;
    sim::StatSet stats_;

    /** Per-launch metrics handles, resolved once at construction. */
    sim::Counter *cKernels_;
    sim::Counter *cDeviceLaunches_;
    sim::Counter *cBatchedItems_;
    sim::Histogram *hBatchSize_;
};

/**
 * The host-side CUDA driver of one GPU: a global submission lock and
 * per-call CPU costs. All streams of the GPU share one driver.
 */
class GpuDriver
{
  public:
    GpuDriver(sim::Simulator &sim, Gpu &gpu, GpuDriverConfig cfg = {});

    GpuDriver(const GpuDriver &) = delete;
    GpuDriver &operator=(const GpuDriver &) = delete;

    /** @return the managed GPU. */
    Gpu &gpu() { return gpu_; }

    /** @return driver configuration. */
    const GpuDriverConfig &config() const { return cfg_; }

    /**
     * Charge one driver call on @p core while holding the global
     * driver lock; contended calls cost extra.
     */
    sim::Co<void> driverCall(sim::Core &core);

    /**
     * gdrcopy-style blocking BAR write/read of @p bytes from @p core
     * (no driver lock: it is a plain mapped-memory access).
     */
    sim::Co<void> gdrAccess(sim::Core &core, std::uint64_t bytes);

    /** @return the lock-holder count (for tests). */
    bool lockBusy() const { return lock_.available() == 0; }

    sim::StatSet &stats() { return stats_; }

  private:
    friend class Stream;

    sim::Simulator &sim_;
    Gpu &gpu_;
    GpuDriverConfig cfg_;
    sim::Semaphore lock_;
    sim::StatSet stats_;

    /** Per-call metrics handles, resolved once at construction. */
    sim::Counter *cDriverCalls_;
    sim::Counter *cContendedCalls_;
    sim::Counter *cGdrAccesses_;
};

/**
 * A CUDA stream: an ordered queue of device operations. Submissions
 * charge host CPU through the driver; completions are awaited with
 * sync(). Matches the baseline server's "pool of concurrent CUDA
 * streams, each handling one network request" (§6.2).
 */
class Stream
{
  public:
    Stream(sim::Simulator &sim, GpuDriver &driver);

    Stream(const Stream &) = delete;
    Stream &operator=(const Stream &) = delete;

    /**
     * Async host-to-device copy of @p bytes, submitted from @p core.
     * Returns when the submission returns; the copy itself completes
     * in stream order.
     */
    sim::Co<void> memcpyH2D(sim::Core &core, std::uint64_t bytes);

    /** Async device-to-host copy (same shape as memcpyH2D). */
    sim::Co<void> memcpyD2H(sim::Core &core, std::uint64_t bytes);

    /**
     * Async kernel launch of @p blocks × @p duration with optional
     * completion @p body.
     */
    sim::Co<void> launch(sim::Core &core, int blocks, sim::Tick duration,
                         std::function<void()> body = {});

    /** Block on @p core until all queued work completed. */
    sim::Co<void> sync(sim::Core &core);

  private:
    /** Device-side op: runs in stream order on the device. */
    using DeviceOp = std::function<sim::Co<void>()>;

    /** Charge the driver call and enqueue @p deviceWork in order. */
    sim::Co<void> submit(sim::Core &core, DeviceOp deviceWork);

    /** Per-stream device executor task body. */
    sim::Task run();

    sim::Simulator &sim_;
    GpuDriver &driver_;
    sim::Channel<DeviceOp> devQueue_;
    /** In-flight op count + idle gate for sync(). */
    int inflight_ = 0;
    sim::Gate idle_;
};

} // namespace lynx::accel

#endif // LYNX_ACCEL_GPU_HH

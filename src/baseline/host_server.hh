/**
 * @file
 * The host-centric baseline server (paper §6.1: "network messages
 * are received by the CPU, which then invokes a GPU kernel for each
 * request" via "a pool of concurrent CUDA streams, each handling one
 * network request").
 *
 * The server runs its listener(s) on host cores; each request takes
 * a stream from the pool and runs a user-supplied handler coroutine
 * that drives the GPU (H2D copy, kernel launch(es), D2H copy, sync)
 * and/or talks to backends, then the response is sent back. All CPU
 * work — network stack, driver calls, synchronization — is charged
 * to the host cores, which is precisely the inefficiency Lynx
 * removes.
 */

#ifndef LYNX_BASELINE_HOST_SERVER_HH
#define LYNX_BASELINE_HOST_SERVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "accel/gpu.hh"
#include "net/message.hh"
#include "net/nic.hh"
#include "net/stack.hh"
#include "sim/channel.hh"
#include "sim/co.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace lynx::baseline {

/** A pool of CUDA streams handed out to in-flight requests. */
class StreamPool
{
  public:
    StreamPool(sim::Simulator &sim, accel::GpuDriver &driver, int n)
        : free_(sim)
    {
        for (int i = 0; i < n; ++i) {
            streams_.push_back(
                std::make_unique<accel::Stream>(sim, driver));
            free_.tryPush(streams_.back().get());
        }
    }

    /** Await a free stream. */
    sim::Co<accel::Stream *>
    acquire()
    {
        accel::Stream *s = co_await free_.pop();
        co_return s;
    }

    /** Return @p s to the pool. */
    void release(accel::Stream *s) { free_.tryPush(s); }

    /** @return pool size. */
    std::size_t size() const { return streams_.size(); }

  private:
    std::vector<std::unique_ptr<accel::Stream>> streams_;
    sim::Channel<accel::Stream *> free_;
};

/**
 * Per-request application logic. Runs on @p core with exclusive use
 * of @p stream; returns the response payload.
 */
using HostHandler = std::function<sim::Co<std::vector<std::uint8_t>>(
    sim::Core &core, accel::Stream &stream, const net::Message &req)>;

/** Configuration of the host-centric server. */
struct HostServerConfig
{
    std::string name = "host-server";
    net::Nic *nic = nullptr;
    std::uint16_t port = 7000;
    net::Protocol proto = net::Protocol::Udp;
    net::StackProfile stack;

    /** Host cores running the server ("We run on one CPU core
     *  because more threads result in a slowdown due to an NVIDIA
     *  driver bottleneck", §6.2). */
    std::vector<sim::Core *> cores;

    /** CUDA stream pool size (bounds in-flight requests). */
    int streams = 32;
};

/** The baseline CPU-driven accelerated network server. */
class HostCentricServer
{
  public:
    HostCentricServer(sim::Simulator &sim, accel::GpuDriver &driver,
                      HostServerConfig cfg, HostHandler handler)
        : sim_(sim), cfg_(std::move(cfg)), handler_(std::move(handler)),
          pool_(sim, driver, cfg_.streams),
          cRxMsgs_(&stats_.counter("rx_msgs")),
          cResponses_(&stats_.counter("responses"))
    {
        LYNX_FATAL_IF(!cfg_.nic, cfg_.name, ": needs a NIC");
        LYNX_FATAL_IF(cfg_.cores.empty(), cfg_.name, ": needs cores");
    }

    HostCentricServer(const HostCentricServer &) = delete;
    HostCentricServer &operator=(const HostCentricServer &) = delete;

    /** Bind the port and spawn one listener per configured core. */
    void
    start()
    {
        net::Endpoint &ep = cfg_.nic->bind(cfg_.proto, cfg_.port);
        for (auto *core : cfg_.cores)
            sim::spawn(sim_, listenLoop(ep, *core));
    }

    sim::StatSet &stats() { return stats_; }

  private:
    sim::Task
    listenLoop(net::Endpoint &ep, sim::Core &core)
    {
        for (;;) {
            net::Message msg = co_await ep.recv();
            co_await core.exec(
                cfg_.stack.cost(cfg_.proto, net::Dir::Recv, msg.size()));
            cRxMsgs_->add();
            // One stream per in-flight request; the handler runs as
            // its own task so the listener keeps receiving.
            accel::Stream *stream = co_await pool_.acquire();
            sim::spawn(sim_, handleRequest(std::move(msg), core, stream));
        }
    }

    sim::Task
    handleRequest(net::Message msg, sim::Core &core,
                  accel::Stream *stream)
    {
        std::vector<std::uint8_t> resp =
            co_await handler_(core, *stream, msg);
        pool_.release(stream);

        net::Message out;
        out.src = net::Address{cfg_.nic->node(), cfg_.port};
        out.dst = msg.src;
        out.proto = msg.proto;
        out.payload = std::move(resp);
        out.seq = msg.seq;
        out.sentAt = msg.sentAt;
        co_await core.exec(
            cfg_.stack.cost(out.proto, net::Dir::Send, out.size()));
        co_await cfg_.nic->send(std::move(out));
        cResponses_->add();
    }

    sim::Simulator &sim_;
    HostServerConfig cfg_;
    HostHandler handler_;
    StreamPool pool_;
    sim::StatSet stats_;

    /** Per-message counters, resolved once at construction. */
    sim::Counter *cRxMsgs_;
    sim::Counter *cResponses_;
};

} // namespace lynx::baseline

#endif // LYNX_BASELINE_HOST_SERVER_HH

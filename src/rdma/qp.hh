/**
 * @file
 * One-sided RDMA over a Reliable Connection queue pair.
 *
 * Lynx's Remote Message Queue Manager accesses mqueues in accelerator
 * memory exclusively through one-sided RDMA reads/writes on an RC QP
 * (paper §4.2, §5.1: "One RC QP per accelerator"). This module models
 * that primitive:
 *
 *  - ordered execution: work requests on one QP complete in post
 *    order (RC semantics), modelled by a per-QP serialization chain;
 *  - a write's bytes land in the target DeviceMemory at delivery
 *    time, firing its watchpoints (that is how doorbells ring);
 *  - a read snapshots target memory when the request reaches it,
 *    not when the caller resumes;
 *  - local (PCIe peer-to-peer) vs. remote (through the fabric)
 *    targets differ only in the RdmaPathModel timing parameters,
 *    mirroring the paper's "a remote accelerator is indistinguishable
 *    from a local one" design (§5.5).
 *
 * Fault model (extension): with a sim::FaultPlan bound, each work
 * request is judged per transmission attempt. RC transport retries a
 * lost or ICRC-corrupted packet in hardware up to `hwRetries` times
 * (each costing `retransmitDelay` and occupying the QP channel —
 * retransmits delay everything behind them, as RC ordering demands);
 * an exhausted budget surfaces as WcStatus::Error with the data never
 * landing. Corruption is *always* caught by the ICRC check, so a
 * fault plan can flip bits without a corrupt byte ever reaching
 * accelerator memory — it costs retransmits instead. A failed op
 * does not wedge the QP: the model treats the runtime as resetting
 * the QP transparently, so later ops proceed (software-level
 * recovery is the caller's job, via RdmaRetryPolicy and the mqueue
 * health machinery).
 */

#ifndef LYNX_RDMA_QP_HH
#define LYNX_RDMA_QP_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/congestion.hh"
#include "pcie/memory.hh"
#include "sim/co.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace lynx::rdma {

/** Timing of the path from an initiator NIC to target memory. */
struct RdmaPathModel
{
    /** CPU cost of posting one work request (ibv_post_send; paper
     *  §5.1 cites <1 µs on the host). Charged by the *caller* on its
     *  core; the QP itself models only NIC-side time. */
    sim::Tick postCost = sim::nanoseconds(700);

    /** Initiator NIC processing per work request. */
    sim::Tick nicLatency = sim::nanoseconds(600);

    /** One-way latency from initiator NIC to target memory (PCIe
     *  peer-to-peer DMA for a local accelerator; + switch/wire for a
     *  remote one). */
    sim::Tick oneWay = sim::nanoseconds(900);

    /** Payload bandwidth in Gbit/s. */
    double gbps = 50.0;

    /** Delay from delivery to initiator-visible completion (ack). */
    sim::Tick completionDelay = sim::nanoseconds(900);

    /** @return serialization time of @p bytes. */
    sim::Tick
    serialization(std::uint64_t bytes) const
    {
        return static_cast<sim::Tick>(static_cast<double>(bytes) * 8.0 /
                                      gbps);
    }

    /** A path model for a target behind the network fabric: adds the
     *  extra one-way wire latency @p extra on top of this path. */
    RdmaPathModel
    viaNetwork(sim::Tick extra) const
    {
        RdmaPathModel p = *this;
        p.oneWay += extra;
        p.completionDelay += extra;
        return p;
    }
};

/** Outcome of a signalled work request, as the completion queue
 *  reports it. Error means the transport exhausted its retransmit
 *  budget: the data did not land (write) or was not fetched (read). */
enum class WcStatus : std::uint8_t { Ok, Error };

/** Software retry budget for callers that must survive completion
 *  errors (the dispatcher's RX pushes, the forwarder's TX fetches).
 *  maxRetries = 0 disables the machinery entirely: callers keep the
 *  seed's posted-write fast path, bit-identical in timing. Defaults
 *  are generic; calibrated values live in lynx/calibration.hh and
 *  are applied by the Runtime when failover is enabled. */
struct RdmaRetryPolicy
{
    /** Software re-attempts after a completion error (on top of the
     *  transport's own hardware retransmits). 0 = off. */
    int maxRetries = 0;

    /** Exponential backoff: attempt k sleeps min(base << k, max). */
    sim::Tick backoffBase = sim::microseconds(2);
    sim::Tick backoffMax = sim::microseconds(64);

    bool enabled() const { return maxRetries > 0; }

    /** @return backoff before re-attempt @p attempt (0-based). */
    sim::Tick
    backoff(int attempt) const
    {
        int shift = std::min(attempt, 20);
        return std::min(backoffBase << shift, backoffMax);
    }
};

/** Binding of a QP to a fault plan: which (initiator, target) node
 *  pair its transfers are judged as, and the transport-level
 *  retransmit budget. */
struct QpFaultBinding
{
    sim::FaultPlan *plan = nullptr;

    /** Node ids used for FaultPlan::judge / partitions. */
    std::uint32_t initiator = 0;
    std::uint32_t target = 0;

    /** Hardware retransmissions per work request before the QP
     *  reports a completion error (IB retry_cnt). */
    int hwRetries = 3;

    /** Retransmission timeout per lost/corrupted attempt. */
    sim::Tick retransmitDelay = sim::microseconds(16);
};

/**
 * Binding of a QP to the congestion plane: RoCE traffic rides the
 * lossless (PFC-protected) priority of a shared egress port, gets
 * ECN-marked in its RED band, and reacts to the resulting CNPs with a
 * per-QP DCQCN rate limiter. The port is typically
 * Network::egressPort(targetNode), so RDMA and datagram flows contend
 * for the same bottleneck.
 */
struct QpCongestionBinding
{
    /** Shared egress queue this QP's transfers pass through; nullptr
     *  = rate-limit only (no shared queue, no marking). */
    net::CongestionPoint *port = nullptr;

    /** Reaction-point parameters of this QP's rate limiter. */
    net::DcqcnConfig dcqcn;

    /** Control-path latency of a CNP back to the initiator. */
    sim::Tick cnpDelay = sim::microseconds(2);

    /** At most one CNP per this interval (notification pacing). */
    sim::Tick cnpMinInterval = sim::microseconds(50);
};

/** A Reliable Connection QP bound to one target memory region. */
class QueuePair
{
  public:
    /**
     * @param sim owning simulator.
     * @param name diagnostic name.
     * @param target the DeviceMemory this QP is registered against.
     * @param path timing of the initiator→target path.
     */
    QueuePair(sim::Simulator &sim, std::string name,
              pcie::DeviceMemory &target, RdmaPathModel path)
        : sim_(sim), name_(std::move(name)), target_(target), path_(path),
          cWriteOps_(&stats_.counter("write_ops")),
          cWriteBytes_(&stats_.counter("write_bytes")),
          cReadOps_(&stats_.counter("read_ops")),
          cReadBytes_(&stats_.counter("read_bytes")),
          cBarrierOps_(&stats_.counter("barrier_ops")),
          cPostedWriteLost_(&stats_.counter("posted_write_lost")),
          cFetchErrors_(&stats_.counter("fetch_errors")),
          cHwRetransmits_(&stats_.counter("hw_retransmits")),
          cWcErrors_(&stats_.counter("wc_errors"))
    {
        sim_.metrics().add("rdma.qp." + name_, stats_);
    }

    ~QueuePair() { sim_.metrics().remove(stats_); }

    QueuePair(const QueuePair &) = delete;
    QueuePair &operator=(const QueuePair &) = delete;

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return the path model (callers charge postCost from it). */
    const RdmaPathModel &path() const { return path_; }

    /** @return target memory region. */
    pcie::DeviceMemory &target() { return target_; }

    /** Bind this QP's transfers to a fault plan (nullptr plan
     *  detaches). Off by default; an unbound or all-zero plan leaves
     *  every op on the exact seed timing path. */
    void bindFaults(QpFaultBinding binding) { faults_ = binding; }

    /** @return whether fault injection is live on this QP. */
    bool
    faultsEnabled() const
    {
        return faults_.plan != nullptr && faults_.plan->enabled();
    }

    /**
     * Attach this QP to the congestion plane (off by default; an
     * unbound QP keeps the exact seed timing path). Ops then queue
     * through the bound egress port (lossless: marked, never
     * dropped), serialize at min(path rate, DCQCN rate), and CE marks
     * come back as CNPs after `cnpDelay`, cutting the rate.
     */
    void
    bindCongestion(QpCongestionBinding binding)
    {
        cc_ = std::make_unique<CcState>(CcState{
            binding,
            net::Dcqcn(binding.dcqcn, sim_.now()),
            /*lastCnpAt=*/0,
            /*cnpEver=*/false,
            &stats_.counter("cnp_rx"),
            &stats_.counter("ecn_marked"),
            &stats_.histogram("rate_mbps"),
            &stats_.histogram("alpha_x1000"),
        });
    }

    /** Detach from the congestion plane. */
    void unbindCongestion() { cc_.reset(); }

    /** @return this QP's DCQCN state, or nullptr when unbound
     *  (test/debug introspection). */
    const net::Dcqcn *dcqcn() const { return cc_ ? &cc_->dcqcn : nullptr; }

    /**
     * One-sided RDMA write: place @p data at @p off in target memory.
     * Returns when the initiator sees the completion; the data is
     * visible at the target earlier (at delivery). On WcStatus::Error
     * (fault injection only) the data never lands.
     */
    sim::Co<WcStatus>
    write(std::uint64_t off, std::span<const std::uint8_t> data)
    {
        OpFate fate = judgeOp();
        if (fate.fail) {
            co_await sim::sleep(failTime(data.size(), fate) - sim_.now());
            co_return WcStatus::Error;
        }
        sim::Tick deliverAt = scheduleDelivery(
            off, {data.begin(), data.end()}, fate.extra);
        co_await sim::sleep(deliverAt + path_.completionDelay - sim_.now());
        co_return WcStatus::Ok;
    }

    /**
     * Posted (unsignalled) write: returns immediately; delivery is
     * scheduled and remains ordered after earlier operations. A
     * transport failure under fault injection is invisible to the
     * caller (there is no completion to report it on) — it only
     * shows in the `posted_write_lost` counter. Callers that must
     * know use write() with an RdmaRetryPolicy.
     */
    void
    postWrite(std::uint64_t off, std::vector<std::uint8_t> data)
    {
        OpFate fate = judgeOp();
        if (fate.fail) {
            failTime(data.size(), fate); // occupy the channel anyway
            cPostedWriteLost_->add();
            return;
        }
        scheduleDelivery(off, std::move(data), fate.extra);
    }

    /**
     * One-sided RDMA read of @p out.size() bytes at @p off. The
     * snapshot is taken when the request reaches the target; the
     * caller resumes one `oneWay` later with @p out filled. On
     * WcStatus::Error @p out is untouched.
     */
    sim::Co<WcStatus>
    read(std::uint64_t off, std::span<std::uint8_t> out)
    {
        OpFate fate = judgeOp();
        if (fate.fail) {
            co_await sim::sleep(failTime(0, fate) - sim_.now());
            co_return WcStatus::Error;
        }
        sim::Tick arriveAt = nextOpTime(0, fate.extra);
        auto snapshot =
            std::make_shared<std::vector<std::uint8_t>>(out.size());
        pcie::DeviceMemory &target = target_;
        sim_.schedule(arriveAt, [&target, off, snapshot] {
            target.read(off, *snapshot);
        });
        // Response serializes at path rate and flies back.
        sim::Tick respTime =
            arriveAt + path_.serialization(out.size()) + path_.oneWay;
        cReadOps_->add();
        cReadBytes_->add(out.size());
        co_await sim::sleep(respTime - sim_.now());
        std::copy(snapshot->begin(), snapshot->end(), out.begin());
        co_return WcStatus::Ok;
    }

    /**
     * Zero-byte RDMA read used as a write barrier (the GPU
     * consistency workaround, paper §5.1): completes after a full
     * round trip, ordered behind earlier writes.
     */
    sim::Co<WcStatus>
    readBarrier()
    {
        OpFate fate = judgeOp();
        if (fate.fail) {
            co_await sim::sleep(failTime(0, fate) - sim_.now());
            co_return WcStatus::Error;
        }
        sim::Tick arriveAt = nextOpTime(0, fate.extra);
        sim::Tick respTime = arriveAt + path_.oneWay;
        cBarrierOps_->add();
        co_await sim::sleep(respTime - sim_.now());
        co_return WcStatus::Ok;
    }

    /**
     * Latency model of one *pipelined* fetch of @p bytes from target
     * memory (the forwarder's TX-slot reads, which stream without
     * holding the QP channel — see SnicMqueue::pollTx). Without
     * faults this is exactly nicLatency + oneWay + serialization;
     * with faults, retransmits add their delays and an exhausted
     * budget returns Error (the fetched data must not be used).
     */
    sim::Co<WcStatus>
    fetch(std::uint64_t bytes)
    {
        OpFate fate = judgeOp();
        co_await sim::sleep(path_.nicLatency + path_.oneWay +
                            path_.serialization(bytes) + fate.extra);
        if (fate.fail) {
            cFetchErrors_->add();
            co_return WcStatus::Error;
        }
        co_return WcStatus::Ok;
    }

    /** Operation/byte counters. */
    sim::StatSet &stats() { return stats_; }

  private:
    /** Congestion-plane state (only allocated while bound). */
    struct CcState
    {
        QpCongestionBinding b;
        net::Dcqcn dcqcn;
        sim::Tick lastCnpAt = 0;
        bool cnpEver = false;
        sim::Counter *cCnpRx;
        sim::Counter *cEcnMarked;
        sim::Histogram *hRateMbps;
        sim::Histogram *hAlphaX1000;
    };

    /** Transport-level outcome of one work request: the summed
     *  retransmit/injected delay, and whether the retry budget was
     *  exhausted (completion error). */
    struct OpFate
    {
        bool fail = false;
        sim::Tick extra = 0;
    };

    /** Judge one work request against the bound fault plan: each
     *  transmission attempt can be lost or ICRC-corrupted (both cost
     *  a retransmit) or delayed; hwRetries exhausted => fail. */
    OpFate
    judgeOp()
    {
        OpFate fate;
        if (!faultsEnabled())
            return fate;
        sim::FaultPlan &plan = *faults_.plan;
        for (int attempt = 0; attempt <= faults_.hwRetries; ++attempt) {
            auto v = plan.judge(faults_.initiator, faults_.target,
                                sim_.now());
            fate.extra += v.delay;
            if (!v.drop && !v.corrupt)
                return fate;
            // Lost, or corrupted and caught by the ICRC check:
            // the transport retransmits after a timeout.
            fate.extra += faults_.retransmitDelay;
            cHwRetransmits_->add();
        }
        fate.fail = true;
        cWcErrors_->add();
        return fate;
    }

    /** Serialization time of @p bytes at the effective rate:
     *  min(path rate, DCQCN rate) when congestion-bound, path rate
     *  otherwise (the seed path — bit-identical when unbound). */
    sim::Tick
    serTime(std::uint64_t bytes)
    {
        if (!cc_)
            return path_.serialization(bytes);
        double r = std::min(path_.gbps, cc_->dcqcn.rateAt(sim_.now()));
        return static_cast<sim::Tick>(static_cast<double>(bytes) * 8.0 /
                                      r);
    }

    /** Account a failed op's channel occupancy (its attempts still
     *  serialize and delay later ops, per RC ordering) and @return
     *  the initiator-visible error-completion time. */
    sim::Tick
    failTime(std::uint64_t bytes, const OpFate &fate)
    {
        sim::Tick start =
            std::max(sim_.now() + path_.nicLatency, busyUntil_);
        busyUntil_ = start + serTime(bytes) + fate.extra;
        return busyUntil_ + path_.completionDelay;
    }

    /**
     * @return time the next op (payload @p bytes) reaches the target.
     * Ops occupy the QP's channel for their serialization time only
     * (they pipeline through the one-way latency); deliveries stay
     * ordered because the start times are monotonic. @p extra models
     * retransmit/injected delay and occupies the channel too. With a
     * congestion binding, the op additionally queues through the
     * shared egress port (lossless: RoCE rides the PFC-protected
     * priority, so it is marked, never dropped) and serializes at the
     * DCQCN-limited rate.
     */
    sim::Tick
    nextOpTime(std::uint64_t bytes, sim::Tick extra = 0)
    {
        sim::Tick start =
            std::max(sim_.now() + path_.nicLatency, busyUntil_);
        if (cc_ && cc_->b.port) {
            auto v = cc_->b.port->admit(bytes, start, /*lossless=*/true);
            start = std::max(start, v.start);
            if (v.marked)
                noteMark(v.start);
        }
        busyUntil_ = start + serTime(bytes) + extra;
        return busyUntil_ + path_.oneWay;
    }

    /** A frame of this QP was CE-marked at @p markAt: the target's
     *  notification point answers with a (paced) CNP that cuts our
     *  rate `cnpDelay` later. */
    void
    noteMark(sim::Tick markAt)
    {
        cc_->cEcnMarked->add();
        if (cc_->cnpEver && markAt - cc_->lastCnpAt < cc_->b.cnpMinInterval)
            return;
        cc_->cnpEver = true;
        cc_->lastCnpAt = markAt;
        sim_.schedule(markAt + cc_->b.cnpDelay, [this] {
            cc_->cCnpRx->add();
            cc_->dcqcn.onCnp(sim_.now());
            cc_->hRateMbps->record(static_cast<std::uint64_t>(
                cc_->dcqcn.rateGbps() * 1000.0));
            cc_->hAlphaX1000->record(static_cast<std::uint64_t>(
                cc_->dcqcn.alpha() * 1000.0));
        });
    }

    /** Schedule an ordered write delivery; @return delivery time. */
    sim::Tick
    scheduleDelivery(std::uint64_t off, std::vector<std::uint8_t> data,
                     sim::Tick extra = 0)
    {
        std::uint64_t n = data.size();
        sim::Tick deliverAt = nextOpTime(n, extra);
        pcie::DeviceMemory &target = target_;
        sim_.schedule(deliverAt, [&target, off, d = std::move(data)] {
            target.write(off, d);
        });
        cWriteOps_->add();
        cWriteBytes_->add(n);
        return deliverAt;
    }

    sim::Simulator &sim_;
    std::string name_;
    pcie::DeviceMemory &target_;
    RdmaPathModel path_;
    QpFaultBinding faults_;
    std::unique_ptr<CcState> cc_;
    sim::Tick busyUntil_ = 0;
    sim::StatSet stats_;

    /** Per-op counters, resolved once at construction. */
    sim::Counter *cWriteOps_;
    sim::Counter *cWriteBytes_;
    sim::Counter *cReadOps_;
    sim::Counter *cReadBytes_;
    sim::Counter *cBarrierOps_;
    sim::Counter *cPostedWriteLost_;
    sim::Counter *cFetchErrors_;
    sim::Counter *cHwRetransmits_;
    sim::Counter *cWcErrors_;
};

} // namespace lynx::rdma

#endif // LYNX_RDMA_QP_HH

/**
 * @file
 * One-sided RDMA over a Reliable Connection queue pair.
 *
 * Lynx's Remote Message Queue Manager accesses mqueues in accelerator
 * memory exclusively through one-sided RDMA reads/writes on an RC QP
 * (paper §4.2, §5.1: "One RC QP per accelerator"). This module models
 * that primitive:
 *
 *  - ordered execution: work requests on one QP complete in post
 *    order (RC semantics), modelled by a per-QP serialization chain;
 *  - a write's bytes land in the target DeviceMemory at delivery
 *    time, firing its watchpoints (that is how doorbells ring);
 *  - a read snapshots target memory when the request reaches it,
 *    not when the caller resumes;
 *  - local (PCIe peer-to-peer) vs. remote (through the fabric)
 *    targets differ only in the RdmaPathModel timing parameters,
 *    mirroring the paper's "a remote accelerator is indistinguishable
 *    from a local one" design (§5.5).
 */

#ifndef LYNX_RDMA_QP_HH
#define LYNX_RDMA_QP_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pcie/memory.hh"
#include "sim/co.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/time.hh"

namespace lynx::rdma {

/** Timing of the path from an initiator NIC to target memory. */
struct RdmaPathModel
{
    /** CPU cost of posting one work request (ibv_post_send; paper
     *  §5.1 cites <1 µs on the host). Charged by the *caller* on its
     *  core; the QP itself models only NIC-side time. */
    sim::Tick postCost = sim::nanoseconds(700);

    /** Initiator NIC processing per work request. */
    sim::Tick nicLatency = sim::nanoseconds(600);

    /** One-way latency from initiator NIC to target memory (PCIe
     *  peer-to-peer DMA for a local accelerator; + switch/wire for a
     *  remote one). */
    sim::Tick oneWay = sim::nanoseconds(900);

    /** Payload bandwidth in Gbit/s. */
    double gbps = 50.0;

    /** Delay from delivery to initiator-visible completion (ack). */
    sim::Tick completionDelay = sim::nanoseconds(900);

    /** @return serialization time of @p bytes. */
    sim::Tick
    serialization(std::uint64_t bytes) const
    {
        return static_cast<sim::Tick>(static_cast<double>(bytes) * 8.0 /
                                      gbps);
    }

    /** A path model for a target behind the network fabric: adds the
     *  extra one-way wire latency @p extra on top of this path. */
    RdmaPathModel
    viaNetwork(sim::Tick extra) const
    {
        RdmaPathModel p = *this;
        p.oneWay += extra;
        p.completionDelay += extra;
        return p;
    }
};

/** A Reliable Connection QP bound to one target memory region. */
class QueuePair
{
  public:
    /**
     * @param sim owning simulator.
     * @param name diagnostic name.
     * @param target the DeviceMemory this QP is registered against.
     * @param path timing of the initiator→target path.
     */
    QueuePair(sim::Simulator &sim, std::string name,
              pcie::DeviceMemory &target, RdmaPathModel path)
        : sim_(sim), name_(std::move(name)), target_(target), path_(path)
    {}

    QueuePair(const QueuePair &) = delete;
    QueuePair &operator=(const QueuePair &) = delete;

    /** @return diagnostic name. */
    const std::string &name() const { return name_; }

    /** @return the path model (callers charge postCost from it). */
    const RdmaPathModel &path() const { return path_; }

    /** @return target memory region. */
    pcie::DeviceMemory &target() { return target_; }

    /**
     * One-sided RDMA write: place @p data at @p off in target memory.
     * Returns when the initiator sees the completion; the data is
     * visible at the target earlier (at delivery).
     */
    sim::Co<void>
    write(std::uint64_t off, std::span<const std::uint8_t> data)
    {
        sim::Tick deliverAt =
            scheduleDelivery(off, {data.begin(), data.end()});
        co_await sim::sleep(deliverAt + path_.completionDelay - sim_.now());
    }

    /**
     * Posted (unsignalled) write: returns immediately; delivery is
     * scheduled and remains ordered after earlier operations.
     */
    void
    postWrite(std::uint64_t off, std::vector<std::uint8_t> data)
    {
        scheduleDelivery(off, std::move(data));
    }

    /**
     * One-sided RDMA read of @p out.size() bytes at @p off. The
     * snapshot is taken when the request reaches the target; the
     * caller resumes one `oneWay` later with @p out filled.
     */
    sim::Co<void>
    read(std::uint64_t off, std::span<std::uint8_t> out)
    {
        sim::Tick arriveAt = nextOpTime(0);
        auto snapshot =
            std::make_shared<std::vector<std::uint8_t>>(out.size());
        pcie::DeviceMemory &target = target_;
        sim_.schedule(arriveAt, [&target, off, snapshot] {
            target.read(off, *snapshot);
        });
        // Response serializes at path rate and flies back.
        sim::Tick respTime =
            arriveAt + path_.serialization(out.size()) + path_.oneWay;
        stats_.counter("read_ops").add();
        stats_.counter("read_bytes").add(out.size());
        co_await sim::sleep(respTime - sim_.now());
        std::copy(snapshot->begin(), snapshot->end(), out.begin());
    }

    /**
     * Zero-byte RDMA read used as a write barrier (the GPU
     * consistency workaround, paper §5.1): completes after a full
     * round trip, ordered behind earlier writes.
     */
    sim::Co<void>
    readBarrier()
    {
        sim::Tick arriveAt = nextOpTime(0);
        sim::Tick respTime = arriveAt + path_.oneWay;
        stats_.counter("barrier_ops").add();
        co_await sim::sleep(respTime - sim_.now());
    }

    /** Operation/byte counters. */
    sim::StatSet &stats() { return stats_; }

  private:
    /**
     * @return time the next op (payload @p bytes) reaches the target.
     * Ops occupy the QP's channel for their serialization time only
     * (they pipeline through the one-way latency); deliveries stay
     * ordered because the start times are monotonic.
     */
    sim::Tick
    nextOpTime(std::uint64_t bytes)
    {
        sim::Tick start =
            std::max(sim_.now() + path_.nicLatency, busyUntil_);
        busyUntil_ = start + path_.serialization(bytes);
        return busyUntil_ + path_.oneWay;
    }

    /** Schedule an ordered write delivery; @return delivery time. */
    sim::Tick
    scheduleDelivery(std::uint64_t off, std::vector<std::uint8_t> data)
    {
        std::uint64_t n = data.size();
        sim::Tick deliverAt = nextOpTime(n);
        pcie::DeviceMemory &target = target_;
        sim_.schedule(deliverAt, [&target, off, d = std::move(data)] {
            target.write(off, d);
        });
        stats_.counter("write_ops").add();
        stats_.counter("write_bytes").add(n);
        return deliverAt;
    }

    sim::Simulator &sim_;
    std::string name_;
    pcie::DeviceMemory &target_;
    RdmaPathModel path_;
    sim::Tick busyUntil_ = 0;
    sim::StatSet stats_;
};

} // namespace lynx::rdma

#endif // LYNX_RDMA_QP_HH

/**
 * @file
 * §6.4 — the Face Verification multi-tier server: GPU frontend + a
 * memcached image database reached over TCP.
 *
 * "Lynx achieves over 4.4x and 4.6x higher throughput for Bluefield
 * and Xeon core respectively compared to the host-centric design,
 * because the overhead of kernel invocation and GPU data transfers
 * are relatively high vs the kernel execution time (about 50 us)."
 * The host-centric version peaks at 2 CPU cores; Lynx on Bluefield is
 * ~5% slower than on a Xeon core (TCP stack on ARM).
 */

#include "common.hh"

#include "apps/kvstore.hh"
#include "workload/datagen.hh"

using namespace lynxbench;

namespace {

constexpr int kWorkers = 28; // paper: 28 server mqueues
constexpr int kPersons = 64;

struct FvResult
{
    double rps = 0;
    double p90us = 0;
    std::uint64_t failures = 0;
};

FvResult
measure(Platform platform)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    host::Node server(s, nw, "server0");
    host::Node dbHost(s, nw, "db-host");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    // Database tier.
    apps::KvStore kv;
    for (std::uint32_t p = 0; p < kPersons; ++p)
        kv.set(workload::faceLabel(p), workload::synthFace(p, 0));
    apps::KvServerConfig kcfg;
    kcfg.nic = &dbHost.nic();
    kcfg.proto = net::Protocol::Tcp;
    kcfg.stack = calibration::backendTcpXeon();
    kcfg.cores = {&dbHost.cores()[0], &dbHost.cores()[1]};
    kcfg.opCost = calibration::memcachedOpCostXeon;
    apps::KvServer kvServer(s, kv, kcfg);
    kvServer.start();
    net::Address backend{dbHost.id(), kcfg.port};

    std::unique_ptr<accel::GpuDriver> driver;
    std::unique_ptr<baseline::HostCentricServer> hostServer;
    std::unique_ptr<core::Runtime> rt;
    std::vector<std::unique_ptr<core::AccelQueue>> serverQs, dbQs;
    std::uint32_t serverNode = server.id();

    if (platform == Platform::HostCentric) {
        driver = std::make_unique<accel::GpuDriver>(s, gpu);
        baseline::HostServerConfig cfg;
        cfg.nic = &server.nic();
        cfg.port = 7100;
        cfg.stack = calibration::vmaXeon();
        // "The host-centric implementation uses two CPU cores to
        // achieve its highest throughput." Kernels go through the
        // default stream, so GPU work serializes per request — the
        // §6.4 explanation: "the overhead of kernel invocation and
        // GPU data transfers are relatively high vs the kernel
        // execution time (about 50 us)".
        cfg.cores = {&server.cores()[0], &server.cores()[1]};
        cfg.streams = 1;
        hostServer = std::make_unique<baseline::HostCentricServer>(
            s, *driver, cfg,
            apps::hostFaceVerHandler(s, server.nic(), backend,
                                     calibration::backendTcpXeon()));
        hostServer->start();
    } else {
        core::RuntimeConfig cfg;
        if (platform == Platform::LynxBluefield) {
            cfg = bf.lynxRuntimeConfig();
            serverNode = bf.node();
        } else {
            cfg = snic::hostRuntimeConfig({&server.cores()[0]},
                                          server.nic());
        }
        rt = std::make_unique<core::Runtime>(s, cfg);
        auto &accel = rt->addAccelerator("k40m", gpu.memory(),
                                         rdma::RdmaPathModel{});
        core::ServiceConfig scfg;
        scfg.name = "facever";
        scfg.port = 7100;
        scfg.queuesPerAccel = kWorkers;
        auto &svc = rt->addService(scfg);
        serverQs = rt->makeAccelQueues(svc, accel);
        for (int i = 0; i < kWorkers; ++i) {
            auto ref = rt->addClientQueue(
                accel, "db.cq" + std::to_string(i), backend,
                net::Protocol::Tcp);
            dbQs.push_back(rt->makeAccelQueue(ref));
            sim::spawn(s, apps::runFaceVerWorker(gpu, *serverQs[
                              static_cast<std::size_t>(i)],
                              *dbQs.back()));
        }
        rt->start();
    }

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {serverNode, 7100};
    lg.concurrency = 2 * kWorkers;
    lg.warmup = 10_ms;
    lg.duration = 100_ms;
    lg.requestTimeout = 400_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &rng) {
        std::uint32_t claim =
            static_cast<std::uint32_t>(rng.below(kPersons));
        std::uint32_t probe = rng.chance(0.5)
                                  ? claim
                                  : static_cast<std::uint32_t>(
                                        rng.below(kPersons));
        std::string label = workload::faceLabel(claim);
        auto img = workload::synthFace(probe, seq);
        std::vector<std::uint8_t> req(label.begin(), label.end());
        req.insert(req.end(), img.begin(), img.end());
        return req;
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload.size() == 1 && resp.payload[0] <= 3;
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 20_ms);

    FvResult r;
    r.rps = gen.throughputRps();
    r.p90us = sim::toMicroseconds(gen.latency().percentile(90));
    r.failures = gen.validationFailures();
    return r;
}

} // namespace

int
main()
{
    banner("tab_face_verification",
           "multi-tier face verification server (GPU + memcached over "
           "TCP client mqueues)",
           "Lynx over 4.4x (Bluefield) / 4.6x (Xeon core) higher "
           "throughput than host-centric; Bluefield ~5% below Xeon "
           "due to ARM TCP processing");

    FvResult host = measure(Platform::HostCentric);
    FvResult xeon = measure(Platform::LynxXeon1);
    FvResult bfr = measure(Platform::LynxBluefield);

    std::printf("%15s | %10s | %8s | %8s\n", "server", "req/s",
                "p90 [us]", "speedup");
    std::printf("%15s | %10.0f | %8.0f | %8s\n", "host-centric",
                host.rps, host.p90us, "1.0x");
    std::printf("%15s | %10.0f | %8.0f | %7.1fx\n", "lynx-xeon1",
                xeon.rps, xeon.p90us, xeon.rps / host.rps);
    std::printf("%15s | %10.0f | %8.0f | %7.1fx\n", "lynx-bluefield",
                bfr.rps, bfr.p90us, bfr.rps / host.rps);
    std::printf("\nbluefield vs xeon: %+0.1f%% (paper: ~-5%%); "
                "validation failures: %llu/%llu/%llu\n",
                (bfr.rps / xeon.rps - 1) * 100,
                static_cast<unsigned long long>(host.failures),
                static_cast<unsigned long long>(xeon.failures),
                static_cast<unsigned long long>(bfr.failures));
    return 0;
}

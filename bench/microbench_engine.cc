/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine and the
 * compute kernels: these bound how much simulated traffic the
 * reproduction can push per wall-clock second, and how expensive the
 * real application compute (LeNet/LBP/AES) is.
 */

#include <benchmark/benchmark.h>

#include "apps/aes.hh"
#include "apps/lbp.hh"
#include "apps/lenet.hh"
#include "lynx/mqueue.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/channel.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "workload/datagen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            s.schedule(static_cast<sim::Tick>(i), [&] { ++sink; });
        s.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CoroutineSleepLoop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        auto body = [&]() -> sim::Task {
            for (int i = 0; i < 1000; ++i)
                co_await sim::sleep(1_us);
        };
        sim::spawn(s, body());
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineSleepLoop);

void
BM_ChannelPingPong(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        sim::Channel<int> a(s), b(s);
        auto left = [&]() -> sim::Task {
            for (int i = 0; i < 500; ++i) {
                co_await a.push(i);
                (void)co_await b.pop();
            }
        };
        auto right = [&]() -> sim::Task {
            for (int i = 0; i < 500; ++i) {
                int v = co_await a.pop();
                co_await b.push(v);
            }
        };
        sim::spawn(s, left());
        sim::spawn(s, right());
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelPingPong);

void
BM_HistogramRecord(benchmark::State &state)
{
    sim::Histogram h;
    sim::Rng rng(1);
    for (auto _ : state)
        h.record(rng.below(10'000'000));
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/** The per-message stats pattern the model code moved away from: a
 *  string-keyed map lookup on every event. */
void
BM_StatCounterLookup(benchmark::State &state)
{
    sim::StatSet stats;
    for (auto _ : state)
        stats.counter("rx_pushed").add();
    benchmark::DoNotOptimize(stats.counterValue("rx_pushed"));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterLookup);

/** The hot-path pattern now used by dispatch/rxPush/forwardOne:
 *  resolve the counter once, bump through the cached pointer. */
void
BM_StatCounterCached(benchmark::State &state)
{
    sim::StatSet stats;
    sim::Counter *c = &stats.counter("rx_pushed");
    for (auto _ : state)
        c->add();
    benchmark::DoNotOptimize(stats.counterValue("rx_pushed"));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterCached);

/** Multi-slot batch segment encode (the rxPushBatch hot path). */
void
BM_MqueueBatchEncode(benchmark::State &state)
{
    core::MqueueLayout l;
    l.slots = 16;
    l.slotBytes = 2048;
    std::vector<std::uint8_t> payload(64, 0x5a);
    std::vector<core::SlotRecord> recs(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t j = 0; j < recs.size(); ++j) {
        recs[j].payload = payload;
        recs[j].meta.len = 64;
        recs[j].meta.seq = static_cast<std::uint32_t>(j + 1);
    }
    for (auto _ : state) {
        auto [off, buf] = core::encodeRxBatchSegment(l, 0, recs);
        benchmark::DoNotOptimize(buf.data());
        benchmark::DoNotOptimize(off);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MqueueBatchEncode)->Arg(4)->Arg(16);

void
BM_RdmaWriteDeliver(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        pcie::DeviceMemory mem("m", 1 << 16);
        rdma::QueuePair qp(s, "qp", mem, rdma::RdmaPathModel{});
        for (int i = 0; i < 200; ++i)
            qp.postWrite(static_cast<std::uint64_t>((i % 16) * 256),
                         std::vector<std::uint8_t>(64, 1));
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_RdmaWriteDeliver);

void
BM_MqueueCodecRoundTrip(benchmark::State &state)
{
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(state.range(0)), 0x5a);
    core::SlotMeta meta;
    meta.len = static_cast<std::uint32_t>(payload.size());
    meta.seq = 7;
    for (auto _ : state) {
        auto buf = core::encodeSlotWrite(payload, meta);
        auto got = core::parseSlotMeta(buf);
        benchmark::DoNotOptimize(got.seq);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MqueueCodecRoundTrip)->Arg(64)->Arg(784)->Arg(1416);

void
BM_LenetForward(benchmark::State &state)
{
    apps::LeNet net;
    auto img = workload::synthMnist(3, 1);
    for (auto _ : state) {
        auto probs = net.forward(img);
        benchmark::DoNotOptimize(probs[0]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LenetForward);

void
BM_LbpDistance(benchmark::State &state)
{
    auto a = workload::synthFace(1, 0);
    auto b = workload::synthFace(2, 0);
    for (auto _ : state) {
        double d = apps::lbpDistance(a, b, 32, 32);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LbpDistance);

void
BM_Aes128Block(benchmark::State &state)
{
    apps::Aes128 aes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                      15, 16});
    apps::Aes128::Block blk{};
    for (auto _ : state) {
        blk = aes.encrypt(blk);
        benchmark::DoNotOptimize(blk[0]);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Aes128Block);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * google-benchmark microbenchmarks of the simulation engine and the
 * compute kernels: these bound how much simulated traffic the
 * reproduction can push per wall-clock second, and how expensive the
 * real application compute (LeNet/LBP/AES) is.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <queue>
#include <thread>

#include "common.hh"

#include "sim/shard.hh"

#include "apps/aes.hh"
#include "apps/lbp.hh"
#include "apps/lenet.hh"
#include "lynx/mqueue.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/channel.hh"
#include "sim/histogram.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "workload/datagen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        int sink = 0;
        for (int i = 0; i < 1000; ++i)
            s.schedule(static_cast<sim::Tick>(i), [&] { ++sink; });
        s.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_CoroutineSleepLoop(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        auto body = [&]() -> sim::Task {
            for (int i = 0; i < 1000; ++i)
                co_await sim::sleep(1_us);
        };
        sim::spawn(s, body());
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutineSleepLoop);

void
BM_ChannelPingPong(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        sim::Channel<int> a(s), b(s);
        auto left = [&]() -> sim::Task {
            for (int i = 0; i < 500; ++i) {
                co_await a.push(i);
                (void)co_await b.pop();
            }
        };
        auto right = [&]() -> sim::Task {
            for (int i = 0; i < 500; ++i) {
                int v = co_await a.pop();
                co_await b.push(v);
            }
        };
        sim::spawn(s, left());
        sim::spawn(s, right());
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelPingPong);

void
BM_HistogramRecord(benchmark::State &state)
{
    sim::Histogram h;
    sim::Rng rng(1);
    for (auto _ : state)
        h.record(rng.below(10'000'000));
    benchmark::DoNotOptimize(h.count());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

/** The per-message stats pattern the model code moved away from: a
 *  string-keyed map lookup on every event. */
void
BM_StatCounterLookup(benchmark::State &state)
{
    sim::StatSet stats;
    for (auto _ : state)
        stats.counter("rx_pushed").add();
    benchmark::DoNotOptimize(stats.counterValue("rx_pushed"));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterLookup);

/** The hot-path pattern now used by dispatch/rxPush/forwardOne:
 *  resolve the counter once, bump through the cached pointer. */
void
BM_StatCounterCached(benchmark::State &state)
{
    sim::StatSet stats;
    sim::Counter *c = &stats.counter("rx_pushed");
    for (auto _ : state)
        c->add();
    benchmark::DoNotOptimize(stats.counterValue("rx_pushed"));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StatCounterCached);

/** Multi-slot batch segment encode (the rxPushBatch hot path). */
void
BM_MqueueBatchEncode(benchmark::State &state)
{
    core::MqueueLayout l;
    l.slots = 16;
    l.slotBytes = 2048;
    std::vector<std::uint8_t> payload(64, 0x5a);
    std::vector<core::SlotRecord> recs(
        static_cast<std::size_t>(state.range(0)));
    for (std::size_t j = 0; j < recs.size(); ++j) {
        recs[j].payload = payload;
        recs[j].meta.len = 64;
        recs[j].meta.seq = static_cast<std::uint32_t>(j + 1);
    }
    for (auto _ : state) {
        auto [off, buf] = core::encodeRxBatchSegment(l, 0, recs);
        benchmark::DoNotOptimize(buf.data());
        benchmark::DoNotOptimize(off);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MqueueBatchEncode)->Arg(4)->Arg(16);

void
BM_RdmaWriteDeliver(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator s;
        pcie::DeviceMemory mem("m", 1 << 16);
        rdma::QueuePair qp(s, "qp", mem, rdma::RdmaPathModel{});
        for (int i = 0; i < 200; ++i)
            qp.postWrite(static_cast<std::uint64_t>((i % 16) * 256),
                         std::vector<std::uint8_t>(64, 1));
        s.run();
    }
    state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_RdmaWriteDeliver);

void
BM_MqueueCodecRoundTrip(benchmark::State &state)
{
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(state.range(0)), 0x5a);
    core::SlotMeta meta;
    meta.len = static_cast<std::uint32_t>(payload.size());
    meta.seq = 7;
    for (auto _ : state) {
        auto buf = core::encodeSlotWrite(payload, meta);
        auto got = core::parseSlotMeta(buf);
        benchmark::DoNotOptimize(got.seq);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MqueueCodecRoundTrip)->Arg(64)->Arg(784)->Arg(1416);

void
BM_LenetForward(benchmark::State &state)
{
    apps::LeNet net;
    auto img = workload::synthMnist(3, 1);
    for (auto _ : state) {
        auto probs = net.forward(img);
        benchmark::DoNotOptimize(probs[0]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LenetForward);

void
BM_LbpDistance(benchmark::State &state)
{
    auto a = workload::synthFace(1, 0);
    auto b = workload::synthFace(2, 0);
    for (auto _ : state) {
        double d = apps::lbpDistance(a, b, 32, 32);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LbpDistance);

void
BM_Aes128Block(benchmark::State &state)
{
    apps::Aes128 aes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                      15, 16});
    apps::Aes128::Block blk{};
    for (auto _ : state) {
        blk = aes.encrypt(blk);
        benchmark::DoNotOptimize(blk[0]);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Aes128Block);

// ---------------------------------------------------------------------
// Headline: steady-state message-hop events/sec — the overhauled
// engine versus an in-binary replica of the event path this PR
// replaced. Both sides run the identical workload: kDepth in-flight
// messages, each hop bumping rx/tx counters and forwarding the
// message through kBurst zero-delay wakeups (the channel-push /
// endpoint-signal / coroutine-resume pattern that dominates the
// simulator's event mix) followed by one timed hop with a
// deterministic 1 ns..100 us delay. The replica reproduces the seed
// engine cost-for-cost: (when, seq) binary heap of std::function
// events (72-byte captures — a forced heap allocation each), a
// std::vector payload inside every message, and string-keyed
// stats.counter() lookups per hop. The ratio is machine-independent:
// both sides run in the same process on the same box.
// ---------------------------------------------------------------------

constexpr std::size_t kHopDepth = 4096;    ///< in-flight messages
constexpr std::uint64_t kHopBurst = 3;     ///< zero-delay hops/timed hop
constexpr std::size_t kHopPayload = 64;    ///< payload bytes

std::uint64_t
hopLcg(std::uint64_t x)
{
    return x * 6364136223846793005ull + 1442695040888963407ull;
}

sim::Tick
hopDelay(std::uint64_t rng)
{
    // 1 ns .. ~8 us: NIC/PCIe-scale latencies (levels 0-2 of the
    // wheel), with enough spread to keep the replica's heap
    // kHopDepth deep.
    return 1 + static_cast<sim::Tick>((rng >> 33) % 8'192);
}

/** The seed engine, faithfully: a (when, seq)-ordered binary heap of
 *  type-erased std::function callbacks. Message-sized captures
 *  exceed libstdc++'s small-object buffer, so every scheduled hop
 *  heap-allocates — the cost inline EventFn removed. Zero-delay
 *  wakeups are this heap's worst case (full-depth sift both ways)
 *  and the wheel's best (ready ring). */
class LegacyCalendar
{
  public:
    sim::Tick now() const { return now_; }

    template <typename F>
    void
    scheduleIn(sim::Tick delay, F &&fn)
    {
        q_.push(Ev{now_ + delay, seq_++, std::forward<F>(fn)});
    }

    void
    run()
    {
        while (!q_.empty()) {
            Ev ev = std::move(const_cast<Ev &>(q_.top()));
            q_.pop();
            now_ = ev.when;
            ev.fn();
        }
    }

  private:
    struct Ev
    {
        sim::Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct After
    {
        bool
        operator()(const Ev &a, const Ev &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq; // FIFO among equal timestamps
        }
    };

    sim::Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::priority_queue<Ev, std::vector<Ev>, After> q_;
};

/** What net::Message was before payload pooling: header fields plus
 *  a std::vector that owns its bytes on the general heap. */
struct LegacyMsg
{
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    std::vector<std::uint8_t> payload;
    std::uint64_t seq = 0;     ///< per-chain delay rng stream
    std::uint64_t traceId = 0; ///< zero-delay burst countdown
};

/** One hop server on the overhauled engine: timing wheel + ready
 *  ring, net::Message with pooled Payload moved hop to hop inside an
 *  inline EventFn capture, counters bumped through pointers resolved
 *  once — the nic.cc deliver/send idiom. Each delivery forwards the
 *  message through kHopBurst zero-delay hops (dispatcher staging /
 *  forwarder handoff shape) and then one timed hop. */
class WheelHopServer
{
  public:
    explicit WheelHopServer(std::uint64_t budget) : budget_(budget) {}

    void
    step(net::Message msg)
    {
        cRxMsgs_->add();
        cRxBytes_->add(msg.size());
        if (++executed_ >= budget_)
            return; // stop forwarding; in-flight chains drain
        cTxMsgs_->add();
        cTxBytes_->add(msg.size());
        sim::Tick d = 0;
        if (msg.traceId > 0) {
            --msg.traceId; // one more zero-delay handoff in the burst
        } else {
            msg.traceId = kHopBurst;
            msg.seq = hopLcg(msg.seq);
            d = hopDelay(msg.seq);
        }
        auto ev = [this, m = std::move(msg)]() mutable {
            step(std::move(m));
        };
        static_assert(sim::EventFn::fitsInline<decltype(ev)>,
                      "hop capture must stay on the alloc-free path");
        eng_.scheduleIn(d, std::move(ev));
    }

    double
    run()
    {
        std::vector<std::uint8_t> bytes(kHopPayload, 0x5a);
        for (std::size_t i = 0; i < kHopDepth; ++i) {
            net::Message m;
            m.payload = bytes;
            m.seq = 0x9e3779b97f4a7c15ull * (i + 1) | 1;
            m.traceId = i % (kHopBurst + 1);
            eng_.scheduleIn(
                1 + static_cast<sim::Tick>((i * 257) % 100'000),
                [this, mm = std::move(m)]() mutable {
                    step(std::move(mm));
                });
        }
        auto t0 = std::chrono::steady_clock::now();
        eng_.run();
        auto t1 = std::chrono::steady_clock::now();
        return static_cast<double>(executed_) /
               std::chrono::duration<double>(t1 - t0).count();
    }

  private:
    sim::Simulator eng_;
    sim::StatSet stats_;
    std::uint64_t budget_;
    std::uint64_t executed_ = 0;
    sim::Counter *cRxMsgs_ = &stats_.counter("rx_msgs");
    sim::Counter *cRxBytes_ = &stats_.counter("rx_bytes");
    sim::Counter *cTxMsgs_ = &stats_.counter("tx_msgs");
    sim::Counter *cTxBytes_ = &stats_.counter("tx_bytes");
};

/** The same hop server on the seed-era event path: every scheduled
 *  hop constructs a message-sized std::function (a forced heap
 *  allocation), the payload lives in a heap std::vector, counters go
 *  through string-keyed map lookups, and the calendar is a binary
 *  heap — a zero-delay push is its full-depth worst case. */
class LegacyHopServer
{
  public:
    explicit LegacyHopServer(std::uint64_t budget) : budget_(budget) {}

    void
    step(LegacyMsg msg)
    {
        stats_.counter("rx_msgs").add();
        stats_.counter("rx_bytes").add(msg.payload.size());
        if (++executed_ >= budget_)
            return;
        stats_.counter("tx_msgs").add();
        stats_.counter("tx_bytes").add(msg.payload.size());
        sim::Tick d = 0;
        if (msg.traceId > 0) {
            --msg.traceId;
        } else {
            msg.traceId = kHopBurst;
            msg.seq = hopLcg(msg.seq);
            d = hopDelay(msg.seq);
        }
        eng_.scheduleIn(d, [this, m = std::move(msg)]() mutable {
            step(std::move(m));
        });
    }

    double
    run()
    {
        for (std::size_t i = 0; i < kHopDepth; ++i) {
            LegacyMsg m;
            m.payload.assign(kHopPayload, 0x5a);
            m.seq = 0x9e3779b97f4a7c15ull * (i + 1) | 1;
            m.traceId = i % (kHopBurst + 1);
            eng_.scheduleIn(
                1 + static_cast<sim::Tick>((i * 257) % 100'000),
                [this, mm = std::move(m)]() mutable {
                    step(std::move(mm));
                });
        }
        auto t0 = std::chrono::steady_clock::now();
        eng_.run();
        auto t1 = std::chrono::steady_clock::now();
        return static_cast<double>(executed_) /
               std::chrono::duration<double>(t1 - t0).count();
    }

  private:
    LegacyCalendar eng_;
    sim::StatSet stats_;
    std::uint64_t budget_;
    std::uint64_t executed_ = 0;
};

template <typename Server>
double
bestOf(int reps, std::uint64_t budget)
{
    double best = 0.0;
    for (int i = 0; i < reps; ++i) {
        Server srv(budget);
        best = std::max(best, srv.run());
    }
    return best;
}

/** Minimum accepted wheel/legacy speedup: the self-check fails the
 *  bench (and the ctest smoke) when a regression eats the engine
 *  overhaul's headline gain. */
constexpr double kMinSpeedup = 5.0;

int
runHeadline(bool fast, lynxbench::BenchJson &json)
{
    const std::uint64_t budget = fast ? 300'000 : 3'000'000;
    const int reps = fast ? 2 : 3;

    // Warm the payload/slab pools once so the measured runs see the
    // steady state (a long simulation's, not a cold process's).
    {
        WheelHopServer warm(budget / 10);
        warm.run();
    }

    double wheel = bestOf<WheelHopServer>(reps, budget);
    double legacy = bestOf<LegacyHopServer>(reps, budget);
    double ratio = wheel / legacy;

    std::printf("engine headline: steady-state message hops "
                "(depth %zu, %llu events)\n",
                kHopDepth, static_cast<unsigned long long>(budget));
    std::printf("  %-22s %12.0f events/s\n", "timing wheel", wheel);
    std::printf("  %-22s %12.0f events/s\n", "legacy heap+function",
                legacy);
    std::printf("  %-22s %12.2fx\n", "speedup", ratio);

    json.addRow({{"metric", "events_per_sec"},
                 {"engine", "timing_wheel"},
                 {"value", wheel},
                 {"depth", static_cast<std::uint64_t>(kHopDepth)},
                 {"events", budget}});
    json.addRow({{"metric", "events_per_sec"},
                 {"engine", "legacy_heap_function"},
                 {"value", legacy},
                 {"depth", static_cast<std::uint64_t>(kHopDepth)},
                 {"events", budget}});
    json.addRow({{"metric", "speedup"},
                 {"value", ratio},
                 {"min_accepted", kMinSpeedup}});

    if (ratio < kMinSpeedup) {
        std::fprintf(stderr,
                     "FAIL: wheel/legacy speedup %.2fx below the "
                     "%.1fx floor\n",
                     ratio, kMinSpeedup);
        return 1;
    }
    return 0;
}

// ---------------------------------------------------------------------
// Sharded headline: the same hop workload partitioned over a
// ShardedSim — 4 machine shards with no cross-shard traffic, so the
// lookahead never constrains the window and the run measures pure
// event-loop scaling across worker threads (the per-shard wheels,
// pools, and counters must not share anything that serializes them).
// The 1/2/4-worker sweep self-checks a scaling floor when the host
// actually has the cores, and only a no-collapse floor when it does
// not (CI containers are often single-core).
// ---------------------------------------------------------------------

/** One shard's self-contained hop loop (the WheelHopServer workload
 *  against a ShardedSim shard's simulator). */
class ShardHopLoop
{
  public:
    ShardHopLoop(sim::Simulator &eng, std::uint64_t budget,
                 std::uint64_t salt)
        : eng_(eng), budget_(budget), salt_(salt)
    {}

    /** Schedule the initial in-flight chains. Call under the owning
     *  shard's Scope so payloads come from its arena. */
    void
    seed(std::size_t depth)
    {
        std::vector<std::uint8_t> bytes(kHopPayload, 0x5a);
        for (std::size_t i = 0; i < depth; ++i) {
            net::Message m;
            m.payload = bytes;
            m.seq = 0x9e3779b97f4a7c15ull * (salt_ * depth + i + 1) | 1;
            m.traceId = i % (kHopBurst + 1);
            eng_.scheduleIn(
                1 + static_cast<sim::Tick>((i * 257) % 100'000),
                [this, mm = std::move(m)]() mutable {
                    step(std::move(mm));
                });
        }
    }

    std::uint64_t executed() const { return executed_; }

  private:
    void
    step(net::Message msg)
    {
        cRxMsgs_->add();
        cRxBytes_->add(msg.size());
        if (++executed_ >= budget_)
            return;
        cTxMsgs_->add();
        cTxBytes_->add(msg.size());
        sim::Tick d = 0;
        if (msg.traceId > 0) {
            --msg.traceId;
        } else {
            msg.traceId = kHopBurst;
            msg.seq = hopLcg(msg.seq);
            d = hopDelay(msg.seq);
        }
        eng_.scheduleIn(d, [this, m = std::move(msg)]() mutable {
            step(std::move(m));
        });
    }

    sim::Simulator &eng_;
    sim::StatSet stats_;
    std::uint64_t budget_;
    std::uint64_t salt_;
    std::uint64_t executed_ = 0;
    sim::Counter *cRxMsgs_ = &stats_.counter("rx_msgs");
    sim::Counter *cRxBytes_ = &stats_.counter("rx_bytes");
    sim::Counter *cTxMsgs_ = &stats_.counter("tx_msgs");
    sim::Counter *cTxBytes_ = &stats_.counter("tx_bytes");
};

constexpr unsigned kShardCount = 4;

/** @return (events/s, events executed) for the sharded hop workload
 *  on @p workers threads. */
std::pair<double, std::uint64_t>
shardedHopRate(unsigned workers, std::uint64_t budgetPerShard)
{
    sim::ShardedSim ss(kShardCount, workers);
    std::vector<std::unique_ptr<ShardHopLoop>> loops;
    for (unsigned s = 0; s < kShardCount; ++s) {
        sim::ShardedSim::Scope scope(ss, s);
        loops.push_back(std::make_unique<ShardHopLoop>(
            ss.shard(s), budgetPerShard, s));
        loops.back()->seed(kHopDepth / kShardCount);
    }
    auto t0 = std::chrono::steady_clock::now();
    // Far beyond the workload's worst-case span: every chain drains
    // long before this, and the empty remainder is skipped window-
    // by-lower-bound, not tick by tick.
    ss.runUntil(100_ms);
    auto t1 = std::chrono::steady_clock::now();
    std::uint64_t executed = 0;
    for (auto &l : loops)
        executed += l->executed();
    return {static_cast<double>(executed) /
                std::chrono::duration<double>(t1 - t0).count(),
            executed};
}

int
runShardedHeadline(bool fast, lynxbench::BenchJson &json)
{
    const std::uint64_t budget = fast ? 150'000 : 1'000'000;
    const int reps = fast ? 2 : 3;
    const unsigned cores = std::max(
        1u, std::thread::hardware_concurrency());

    std::printf("\nsharded headline: %u-shard hop workload, no "
                "cross-shard traffic (%u cores)\n",
                kShardCount, cores);

    double base = 0.0;
    int rc = 0;
    for (unsigned workers : {1u, 2u, 4u}) {
        double best = 0.0;
        std::uint64_t executed = 0;
        for (int r = 0; r < reps; ++r) {
            auto [rate, n] = shardedHopRate(workers, budget);
            best = std::max(best, rate);
            executed = n;
        }
        if (workers == 1)
            base = best;
        double speedup = best / base;
        // With enough physical cores a worker is a real core and the
        // floor is a scaling claim; oversubscribed, all workers share
        // one core and the only claim is that the barrier + mailbox
        // machinery does not collapse throughput.
        double floor = cores >= workers ? 0.6 * workers : 0.4;
        bool ok = speedup >= floor;
        if (!ok)
            rc = 1;
        std::printf("  workers %u: %12.0f events/s  (%.2fx vs 1, "
                    "floor %.2fx%s)%s\n",
                    workers, best, speedup, floor,
                    cores >= workers ? "" : " [oversubscribed]",
                    ok ? "" : "  FAIL");
        json.addRow({{"metric", "sharded_events_per_sec"},
                     {"shards", static_cast<int>(kShardCount)},
                     {"workers", static_cast<int>(workers)},
                     {"value", best},
                     {"events", executed},
                     {"speedup_vs_1", speedup},
                     {"min_accepted", floor},
                     {"cores", static_cast<int>(cores)}});
    }
    if (rc)
        std::fprintf(stderr, "FAIL: sharded engine scaling below "
                             "floor (see rows above)\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    int outc = 0;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0) {
            fast = true;
            continue; // strip: google-benchmark rejects unknown flags
        }
        argv[outc++] = argv[i];
    }
    argc = outc;

    int rc;
    {
        lynxbench::BenchJson json("engine");
        rc = runHeadline(fast, json);
        rc |= runShardedHeadline(fast, json);
        json.write();
    }
    if (fast)
        return rc; // ctest smoke: headlines + self-checks only

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return rc;
}

/**
 * @file
 * Shared scaffolding for the paper-reproduction benchmark binaries:
 * platform deployments (host-centric baseline, Lynx on 1/6 Xeon
 * cores, Lynx on Bluefield), load running, and table printing.
 *
 * Each bench binary regenerates one table or figure of the paper and
 * prints the same rows/series the paper reports, plus the paper's
 * reference values where it states them. See EXPERIMENTS.md.
 */

#ifndef LYNX_BENCH_COMMON_HH
#define LYNX_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "baseline/host_server.hh"
#include "host/node.hh"
#include "lynx/calibration.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/loadgen.hh"

namespace lynxbench {

using namespace lynx;
using namespace lynx::sim::literals;

/** Server architecture under test. */
enum class Platform
{
    HostCentric,   ///< CPU-driven baseline (paper §6.1)
    LynxXeon1,     ///< Lynx on a single host Xeon core
    LynxXeon4,     ///< Lynx on 4 host Xeon cores
    LynxXeon6,     ///< Lynx on 6 host Xeon cores
    LynxBluefield, ///< Lynx on the Bluefield SNIC
};

inline const char *
platformName(Platform p)
{
    switch (p) {
      case Platform::HostCentric: return "host-centric";
      case Platform::LynxXeon1: return "lynx-xeon1";
      case Platform::LynxXeon4: return "lynx-xeon4";
      case Platform::LynxXeon6: return "lynx-xeon6";
      case Platform::LynxBluefield: return "lynx-bluefield";
    }
    return "?";
}

/** Condensed measurement of one run. */
struct RunResult
{
    double rps = 0;
    double meanUs = 0;
    double p50us = 0;
    double p90us = 0;
    double p99us = 0;
    std::uint64_t completed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;
};

inline RunResult
collect(const workload::LoadGen &gen)
{
    RunResult r;
    r.rps = gen.throughputRps();
    r.meanUs = gen.latency().mean() / 1000.0;
    r.p50us = sim::toMicroseconds(gen.latency().percentile(50));
    r.p90us = sim::toMicroseconds(gen.latency().percentile(90));
    r.p99us = sim::toMicroseconds(gen.latency().percentile(99));
    r.completed = gen.completed();
    r.timeouts = gen.timeouts();
    r.failures = gen.validationFailures();
    return r;
}

/** Print the standard bench banner. */
inline void
banner(const char *id, const char *title, const char *paperClaim)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s: %s\n", id, title);
    std::printf("paper: %s\n", paperClaim);
    std::printf("---------------------------------------------------"
                "-------------------------\n");
}

/**
 * Host wall-clock stopwatch (monotonic). Simulated results are
 * wall-clock-free by design, but the *cost* of producing them is the
 * whole point of the sharded-engine work — every bench records how
 * long the host spent next to what the simulation measured.
 */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** @return seconds elapsed since construction or reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** One JSON-encodable cell of a BenchJson row. */
struct JsonValue
{
    std::string enc;

    JsonValue(const char *s) : enc(quote(s)) {}
    JsonValue(const std::string &s) : enc(quote(s)) {}
    JsonValue(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.4f", v);
        enc = buf;
    }
    JsonValue(std::uint64_t v) : enc(std::to_string(v)) {}
    JsonValue(int v) : enc(std::to_string(v)) {}
    JsonValue(bool v) : enc(v ? "true" : "false") {}

    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        out += '"';
        return out;
    }
};

/**
 * Machine-readable companion of a bench's printed table: accumulates
 * rows and writes `BENCH_<id>.json` ({"bench": id, "wall_s": host
 * seconds since construction, "rows": [...]}) into the working
 * directory on destruction or write(). The top-level "wall_s" stamps
 * every bench with the host cost of its whole sweep; rows that time
 * individual runs add their own per-row fields from a WallTimer.
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string id) : id_(std::move(id)) {}

    BenchJson(const BenchJson &) = delete;
    BenchJson &operator=(const BenchJson &) = delete;

    ~BenchJson() { write(); }

    void
    addRow(std::initializer_list<std::pair<const char *, JsonValue>>
               fields)
    {
        std::string row = "{";
        bool first = true;
        for (const auto &[key, val] : fields) {
            if (!first)
                row += ",";
            first = false;
            row += JsonValue::quote(key) + ":" + val.enc;
        }
        row += "}";
        rows_.push_back(std::move(row));
    }

    void
    write()
    {
        if (written_)
            return;
        written_ = true;
        std::string path = "BENCH_" + id_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return;
        }
        std::fprintf(f, "{\"bench\":%s,\"wall_s\":%.3f,\"rows\":[",
                     JsonValue::quote(id_).c_str(), wall_.seconds());
        for (std::size_t i = 0; i < rows_.size(); ++i)
            std::fprintf(f, "%s%s", i ? "," : "", rows_[i].c_str());
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::printf("[json] wrote %s (%zu rows)\n", path.c_str(),
                    rows_.size());
    }

  private:
    std::string id_;
    std::vector<std::string> rows_;
    WallTimer wall_;
    bool written_ = false;
};

/**
 * A complete single-server echo deployment of one platform: used by
 * the Fig. 6 throughput and Fig. 7 latency microbenchmarks.
 *
 * GPU side: one persistent echo block per mqueue, each emulating
 * `procTime` of request processing (§6.2 microbenchmark kernel).
 */
/** Deployment knobs of an EchoWorld beyond platform/queues. */
struct EchoOptions
{
    /** mqueue write behaviour (coalescing / barrier / RX batching). */
    core::SnicMqueueConfig mq;

    /** Dispatcher-side staging batch (1 = per-message pushes). */
    int dispatchMaxBatch = 1;

    /** Partial-batch flush linger (see RuntimeConfig). */
    sim::Tick dispatchFlushLinger =
        calibration::snicDispatchFlushLinger;

    /** Forwarder-side TX fetch batch (1 = per-slot fetches). */
    int forwardMaxBatch = 1;

    /** Idle-scaled forwarder poll backoff. */
    bool adaptivePoll = false;

    /** Accelerator-side multi-slot doorbell consumption. */
    bool gioBurst = false;

    /** Request payload size sent by the load generators. */
    std::size_t payloadBytes = 64;
};

class EchoWorld
{
  public:
    EchoWorld(Platform platform, int mqueues, sim::Tick procTime,
              core::SnicMqueueConfig mqCfg = {})
        : EchoWorld(platform, mqueues, procTime,
                    EchoOptions{.mq = mqCfg})
    {}

    EchoWorld(Platform platform, int mqueues, sim::Tick procTime,
              EchoOptions opts)
        : platform_(platform), opts_(opts)
    {
        clientNic_ = &network_.addNic("client0");
        clientNic2_ = &network_.addNic("client1");
        serverHost_ = std::make_unique<host::Node>(s_, network_,
                                                   "server0");
        fabric_ = std::make_unique<pcie::Fabric>(s_, "server0.pcie");
        gpu_ = std::make_unique<accel::Gpu>(s_, "k40m", *fabric_);

        if (platform == Platform::HostCentric) {
            driver_ = std::make_unique<accel::GpuDriver>(s_, *gpu_);
            baseline::HostServerConfig cfg;
            cfg.nic = &serverHost_->nic();
            cfg.port = port_;
            cfg.stack = calibration::vmaXeon();
            cfg.cores = {&serverHost_->cores()[0]};
            cfg.streams = mqueues;
            hostServer_ = std::make_unique<baseline::HostCentricServer>(
                s_, *driver_, cfg, apps::hostEchoHandler(procTime));
            hostServer_->start();
            serverNode_ = serverHost_->id();
            return;
        }

        core::RuntimeConfig cfg;
        if (platform == Platform::LynxBluefield) {
            bluefield_ = std::make_unique<snic::Bluefield>(s_, network_,
                                                           "bf0");
            cfg = bluefield_->lynxRuntimeConfig();
            serverNode_ = bluefield_->node();
        } else {
            int ncores = platform == Platform::LynxXeon1   ? 1
                         : platform == Platform::LynxXeon4 ? 4
                                                           : 6;
            std::vector<sim::Core *> cores;
            for (int i = 0; i < ncores; ++i)
                cores.push_back(&serverHost_->cores()[
                    static_cast<std::size_t>(i)]);
            cfg = snic::hostRuntimeConfig(cores, serverHost_->nic());
            serverNode_ = serverHost_->id();
        }
        cfg.mq = opts_.mq;
        cfg.dispatchMaxBatch = opts_.dispatchMaxBatch;
        cfg.dispatchFlushLinger = opts_.dispatchFlushLinger;
        cfg.forwarder.maxBatch = opts_.forwardMaxBatch;
        cfg.forwarder.adaptivePoll = opts_.adaptivePoll;
        cfg.gio.rxBurst = opts_.gioBurst;
        runtime_ = std::make_unique<core::Runtime>(s_, cfg);
        auto &accel = runtime_->addAccelerator("k40m", gpu_->memory(),
                                               rdma::RdmaPathModel{});
        core::ServiceConfig scfg;
        scfg.name = "echo";
        scfg.port = port_;
        scfg.queuesPerAccel = mqueues;
        auto &svc = runtime_->addService(scfg);
        queues_ = runtime_->makeAccelQueues(svc, accel);
        for (auto &q : queues_)
            sim::spawn(s_, apps::runEchoBlock(*gpu_, *q, procTime));
        runtime_->start();
    }

    /** Run a closed-loop load (split over two client machines). */
    RunResult
    run(int concurrency, sim::Tick warmup = 5_ms,
        sim::Tick duration = 60_ms, sim::Tick thinkTime = 0)
    {
        auto makeGen = [&](net::Nic *nic, int conc, std::uint16_t base,
                           std::uint64_t seed) {
            workload::LoadGenConfig lg;
            lg.nic = nic;
            lg.target = {serverNode_, port_};
            lg.concurrency = conc;
            lg.warmup = warmup;
            lg.duration = duration;
            lg.basePort = base;
            lg.seed = seed;
            lg.thinkTime = thinkTime;
            lg.requestTimeout = 200_ms;
            std::size_t payloadBytes = opts_.payloadBytes;
            lg.makeRequest = [payloadBytes](std::uint64_t, sim::Rng &) {
                return std::vector<std::uint8_t>(payloadBytes, 0x42);
            };
            return std::make_unique<workload::LoadGen>(s_, lg);
        };
        int c1 = concurrency / 2, c2 = concurrency - c1;
        std::vector<std::unique_ptr<workload::LoadGen>> gens;
        if (c1 > 0)
            gens.push_back(makeGen(clientNic_, c1, 40000, 11));
        if (c2 > 0)
            gens.push_back(makeGen(clientNic2_, c2, 40000, 23));
        for (auto &g : gens)
            g->start();
        s_.runUntil(s_.now() + warmup + duration + 10_ms);

        RunResult sum;
        sim::Histogram merged;
        for (auto &g : gens) {
            sum.rps += g->throughputRps();
            sum.completed += g->completed();
            sum.timeouts += g->timeouts();
            sum.failures += g->validationFailures();
            merged.merge(g->latency());
        }
        sum.meanUs = merged.mean() / 1000.0;
        sum.p50us = sim::toMicroseconds(merged.percentile(50));
        sum.p90us = sim::toMicroseconds(merged.percentile(90));
        sum.p99us = sim::toMicroseconds(merged.percentile(99));
        return sum;
    }

    sim::Simulator &sim() { return s_; }
    net::Network &network() { return network_; }
    accel::Gpu &gpu() { return *gpu_; }

    /** @return the Lynx runtime (null on the host-centric baseline). */
    core::Runtime *runtime() { return runtime_.get(); }

  private:
    Platform platform_;
    EchoOptions opts_;
    std::uint16_t port_ = 7000;
    std::uint32_t serverNode_ = 0;

    sim::Simulator s_;
    net::Network network_{s_};
    net::Nic *clientNic_ = nullptr;
    net::Nic *clientNic2_ = nullptr;
    std::unique_ptr<host::Node> serverHost_;
    std::unique_ptr<pcie::Fabric> fabric_;
    std::unique_ptr<accel::Gpu> gpu_;
    std::unique_ptr<snic::Bluefield> bluefield_;
    std::unique_ptr<accel::GpuDriver> driver_;
    std::unique_ptr<baseline::HostCentricServer> hostServer_;
    std::unique_ptr<core::Runtime> runtime_;
    std::vector<std::unique_ptr<core::AccelQueue>> queues_;
};

} // namespace lynxbench

#endif // LYNX_BENCH_COMMON_HH

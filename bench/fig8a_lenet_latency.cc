/**
 * @file
 * §6.3 LeNet end-to-end performance + Figure 8a — "Latency
 * distribution at maximum throughput" for the LeNet inference
 * service: host-centric baseline vs Lynx on a Xeon core vs Lynx on
 * Bluefield, single K40m GPU, UDP requests (plus the TCP variant the
 * text reports).
 */

#include "common.hh"

#include "workload/datagen.hh"

using namespace lynxbench;

namespace {

struct LenetRun
{
    RunResult result;
    std::vector<double> quantiles; // latency CDF samples, us
};

const double quantilePoints[] = {10, 25, 50, 75, 90, 95, 99, 99.9};

LenetRun
measure(Platform platform, net::Protocol proto)
{
    sim::Simulator s;
    net::Network network(s);
    auto &clientNic = network.addNic("client");
    host::Node serverHost(s, network, "server0");
    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    apps::LeNet model;

    std::unique_ptr<snic::Bluefield> bf;
    std::unique_ptr<accel::GpuDriver> driver;
    std::unique_ptr<baseline::HostCentricServer> hostServer;
    std::unique_ptr<core::Runtime> runtime;
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    std::uint32_t serverNode = serverHost.id();

    if (platform == Platform::HostCentric) {
        driver = std::make_unique<accel::GpuDriver>(s, gpu);
        baseline::HostServerConfig cfg;
        cfg.nic = &serverHost.nic();
        cfg.port = 7000;
        cfg.proto = proto;
        cfg.stack = calibration::vmaXeon();
        cfg.cores = {&serverHost.cores()[0]};
        cfg.streams = 8;
        apps::LenetServiceConfig lcfg;
        lcfg.jitterPct = 0.08;
        hostServer = std::make_unique<baseline::HostCentricServer>(
            s, *driver, cfg, apps::hostLenetHandler(model, lcfg));
        hostServer->start();
    } else {
        core::RuntimeConfig cfg;
        if (platform == Platform::LynxBluefield) {
            bf = std::make_unique<snic::Bluefield>(s, network, "bf0");
            cfg = bf->lynxRuntimeConfig();
            serverNode = bf->node();
        } else {
            cfg = snic::hostRuntimeConfig({&serverHost.cores()[0]},
                                          serverHost.nic());
        }
        runtime = std::make_unique<core::Runtime>(s, cfg);
        auto &accel = runtime->addAccelerator("k40m", gpu.memory(),
                                              rdma::RdmaPathModel{});
        core::ServiceConfig scfg;
        scfg.name = "lenet";
        scfg.port = 7000;
        scfg.proto = proto;
        auto &svc = runtime->addService(scfg);
        queues = runtime->makeAccelQueues(svc, accel);
        apps::LenetServiceConfig lcfg;
        lcfg.jitterPct = 0.08;
        sim::spawn(s, apps::runLenetServer(gpu, *queues[0], model,
                                           lcfg));
        runtime->start();
    }

    // The paper's "maximum throughput" for this service is the
    // single-outstanding closed loop: latency ~= 1/throughput holds
    // in its numbers (3.5 K <-> ~290 us).
    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {serverNode, 7000};
    lg.proto = proto;
    lg.concurrency = 1;
    lg.warmup = 20_ms;
    lg.duration = 400_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return workload::synthMnist(static_cast<int>(seq % 10), seq);
    };
    lg.validate = [&model](const net::Message &resp) {
        return resp.payload.size() == 1 && resp.payload[0] < 10;
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 10_ms);

    LenetRun run;
    run.result = collect(gen);
    for (double q : quantilePoints)
        run.quantiles.push_back(
            sim::toMicroseconds(gen.latency().percentile(q)));
    return run;
}

} // namespace

int
main()
{
    banner("fig8a", "LeNet inference service: throughput and latency "
                    "distribution at max throughput",
           "UDP: Lynx 3.5 Kreq/s on both Bluefield and Xeon vs "
           "2.8 Kreq/s host-centric (+25%); p90 295/300 us, "
           "host-centric 14% slower; GPU ceiling 3.6 Kreq/s; "
           "TCP costs ~10% (BF) / ~5% (Xeon) of throughput");

    const Platform platforms[] = {Platform::HostCentric,
                                  Platform::LynxXeon1,
                                  Platform::LynxBluefield};

    std::printf("--- UDP ---\n");
    std::printf("%15s | %10s | %8s %8s %8s\n", "server", "req/s",
                "p50[us]", "p90[us]", "p99[us]");
    LenetRun udp[3];
    for (int i = 0; i < 3; ++i) {
        udp[i] = measure(platforms[i], net::Protocol::Udp);
        std::printf("%15s | %10.0f | %8.0f %8.0f %8.0f\n",
                    platformName(platforms[i]), udp[i].result.rps,
                    udp[i].result.p50us, udp[i].result.p90us,
                    udp[i].result.p99us);
    }
    std::printf("lynx-bluefield vs host-centric: %+0.0f%% throughput "
                "(paper: +25%%)\n",
                (udp[2].result.rps / udp[0].result.rps - 1) * 100);

    std::printf("\nlatency CDF at max throughput [us]:\n%10s |", "pct");
    for (double q : quantilePoints)
        std::printf(" %7.1f", q);
    std::printf("\n");
    for (int i = 0; i < 3; ++i) {
        std::printf("%10s |", platformName(platforms[i]));
        for (double v : udp[i].quantiles)
            std::printf(" %7.0f", v);
        std::printf("\n");
    }

    std::printf("\n--- TCP ---\n");
    std::printf("%15s | %10s | %8s  (vs UDP)\n", "server", "req/s",
                "p90[us]");
    for (int i = 1; i < 3; ++i) {
        LenetRun tcp = measure(platforms[i], net::Protocol::Tcp);
        std::printf("%15s | %10.0f | %8.0f  (%+0.1f%%)\n",
                    platformName(platforms[i]), tcp.result.rps,
                    tcp.result.p90us,
                    (tcp.result.rps / udp[i].result.rps - 1) * 100);
    }
    return 0;
}

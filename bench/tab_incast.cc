/**
 * @file
 * Incast congestion table (extension — see DESIGN.md §8): N senders
 * converge on the Bluefield's ingress link while one closed-loop
 * victim flow shares the bottleneck. Sweeps fan-in × offered load
 * over two fabric modes:
 *
 *  - baseline: finite egress queue, tail-drop only (no ECN, no
 *    DCQCN, no PFC) — the queue pins full, the victim eats ~1 ms of
 *    standing queue and a drop-proportional timeout rate;
 *
 *  - dcqcn: RED-style ECN marking on the congested port + DCQCN rate
 *    control on every sender + PFC on the mqueue rings — senders
 *    back off to their fair share, the queue sits in the ECN band,
 *    and the victim's tail and drop rate both collapse.
 *
 * Self-check (non-zero exit on violation): at 16-to-1 fan-in and
 * 1.5x the measured saturation load, the dcqcn mode must beat the
 * baseline on BOTH victim p99 and victim drop rate (and the baseline
 * must actually be dropping — otherwise the sweep is not exercising
 * congestion at all). Byte-validation failures must stay 0 in every
 * cell: congestion may delay or drop, never corrupt.
 *
 * Writes BENCH_incast.json; `--fast` shrinks to the self-check cell
 * for CI smoke use.
 */

#include <cstring>

#include "common.hh"

#include "pcie/fabric.hh"

using namespace lynxbench;

namespace {

/** The deliberately narrow server ingress link, Gb/s. Slower than
 *  every client NIC (40 Gb/s default), so the switch egress port in
 *  front of the server is the shared bottleneck — the classic incast
 *  topology. Narrow enough (~61 Krps at 1 KiB) that the wire, not
 *  the SNIC's ARM cores (~120 Krps echo ceiling), saturates first:
 *  the congestion under test must live in the fabric. */
constexpr double kBottleneckGbps = 0.5;

/** Request/response payload size. Large enough that serialization
 *  (16.4 us at 0.5 Gb/s) dominates fixed per-hop latencies. */
constexpr std::size_t kPayloadBytes = 1024;

/** Request payload as a pure function of the sequence number, so the
 *  validator can recompute the expected bytes from the response. */
std::vector<std::uint8_t>
payloadFor(std::uint64_t seq)
{
    std::vector<std::uint8_t> p(kPayloadBytes);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 197 + b * 31 + 5);
    return p;
}

/** Fabric-mode knobs under test. */
enum class Mode { Baseline, Dcqcn };

const char *
modeName(Mode m)
{
    return m == Mode::Baseline ? "baseline" : "dcqcn";
}

net::CongestionConfig
congestionFor(Mode m)
{
    net::CongestionConfig cc;
    cc.enabled = true; // finite egress queue + tail-drop in both modes
    // Scale the queue to the narrow link: 128 KiB drains in ~2.1 ms
    // at 0.5 Gb/s (a full tail-drop queue costs the victim ~2 ms of
    // standing delay, well inside its 5 ms timeout), with the ECN
    // band at 4-16 KiB (~65-260 us).
    cc.egressQueueBytes = 128 * 1024;
    cc.ecnKminBytes = 4 * 1024;
    cc.ecnKmaxBytes = 16 * 1024;
    if (m == Mode::Dcqcn) {
        cc.ecnEnabled = true;
        cc.dcqcnEnabled = true;
        // DCQCN constants scale with the link: the rate floor must
        // sit well below the 16-flow fair share (0.031 Gb/s here) or
        // the aggregate can never drop under capacity, and the
        // additive-increase step must be a small fraction of that
        // share or recovery instantly overshoots it.
        cc.dcqcn.lineRateGbps = kBottleneckGbps;
        cc.dcqcn.minRateGbps = kBottleneckGbps / 50;
        cc.dcqcn.aiGbps = kBottleneckGbps / 100;
        cc.dcqcn.haiGbps = kBottleneckGbps / 20;
        // The stock 55/100 us timers are tuned for 10-40 Gb/s
        // fabrics; at 0.5 Gb/s a flow's packet interval exceeds the
        // rate timer, so recovery outruns the CNP feedback and the
        // queue oscillates into tail-drop. Stretch both 5x.
        cc.dcqcn.alphaTimer = 275_us;
        cc.dcqcn.rateTimer = 500_us;
        cc.pfc.enabled = true;
    }
    return cc;
}

/** One victim-flow measurement plus fabric-side congestion counters. */
struct IncastRun
{
    RunResult victim;
    double dropRate = 0; ///< victim timeouts / (completed + timeouts)
    std::uint64_t ecnMarked = 0;
    std::uint64_t egressDrops = 0;
    std::uint64_t cnpSent = 0;
    std::uint64_t mqOverflow = 0;
    std::uint64_t pfcPauses = 0;
};

/**
 * One echo deployment behind the narrow link: a Bluefield whose NIC
 * is the kBottleneckGbps bottleneck, one local GPU running 4 echo
 * rings.
 * `aggressors` open-loop senders push `offeredRps` in aggregate while
 * one closed-loop victim (4 workers) measures what the fabric does
 * to an innocent flow. `offeredRps` 0 = calibration (victim only,
 * closed loop at high concurrency, measuring the saturation rate).
 */
IncastRun
measure(Mode mode, int aggressors, double offeredRps,
        int victimConcurrency, bool fast)
{
    sim::Simulator s;

    net::NetworkConfig ncfg;
    ncfg.congestion = congestionFor(mode);
    net::Network nw(s, ncfg);

    snic::BluefieldConfig bfc;
    bfc.nic.gbps = kBottleneckGbps;
    snic::Bluefield bf(s, nw, "bf0", bfc);

    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpu(s, "gpu0", fabric);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.congestion = ncfg.congestion; // PFC knobs for the mqueues
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("gpu0", gpu.memory(), {});

    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 4;
    scfg.ringSlots = 32;
    auto &svc = rt.addService(scfg);
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    for (auto &q : rt.makeAccelQueues(svc, accel)) {
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 2_us));
        queues.push_back(std::move(q));
    }
    rt.start();

    sim::Tick warmup = fast ? 10_ms : 20_ms;
    sim::Tick duration = fast ? 40_ms : 100_ms;

    // Open-loop aggressors: each on its own NIC, together offering
    // `offeredRps` into the shared bottleneck regardless of how the
    // fabric treats them.
    std::vector<std::unique_ptr<workload::LoadGen>> agg;
    for (int a = 0; a < aggressors; ++a) {
        auto &nic = nw.addNic("agg" + std::to_string(a));
        workload::LoadGenConfig lg;
        lg.nic = &nic;
        lg.target = {bf.node(), 7000};
        lg.openRate = offeredRps / aggressors;
        lg.warmup = warmup;
        lg.duration = duration;
        lg.makeRequest = [](std::uint64_t, sim::Rng &) {
            return std::vector<std::uint8_t>(kPayloadBytes, 0xa5);
        };
        lg.seed = 100 + static_cast<std::uint64_t>(a);
        agg.push_back(std::make_unique<workload::LoadGen>(s, lg));
    }

    // The victim: closed loop, byte-validated responses, a timeout
    // budget generous enough that only real congestion loss fires it.
    auto &victimNic = nw.addNic("victim");
    workload::LoadGenConfig lg;
    lg.nic = &victimNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = victimConcurrency;
    lg.warmup = warmup;
    lg.duration = duration;
    lg.requestTimeout = 5_ms;
    // Under incast the victim is a mouse flow: think time keeps its
    // demand under the 16-flow fair share, so a well-behaved fabric
    // owes it full service — any p99 inflation or drop is pure
    // collateral damage from the aggressors. The calibration run
    // (no aggressors) instead hammers at full closed-loop speed.
    if (aggressors > 0)
        lg.thinkTime = 1_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return payloadFor(seq);
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload == payloadFor(resp.seq);
    };
    workload::LoadGen victim(s, lg);

    for (auto &g : agg)
        g->start();
    victim.start();
    s.runUntil(victim.windowEnd() + 10_ms);

    IncastRun out;
    out.victim = collect(victim);
    double finished = static_cast<double>(out.victim.completed +
                                          out.victim.timeouts);
    out.dropRate = finished > 0
                       ? static_cast<double>(out.victim.timeouts) /
                             finished
                       : 0.0;
    out.ecnMarked = nw.ecnStats().counterValue("marked");
    out.egressDrops = nw.ecnStats().counterValue("egress_drops");
    out.cnpSent = nw.ecnStats().counterValue("cnp_sent");
    for (const auto &mq : rt.mqueues()) {
        out.mqOverflow += mq->stats().counterValue("overflow");
        out.pfcPauses += mq->stats().counterValue("pfc_pauses");
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
    banner("tab_incast",
           "incast congestion: ECN/DCQCN + PFC vs tail-drop "
           "(extension)",
           "not reported in the paper — RoCEv2-style congestion "
           "control (DCQCN, SIGCOMM'15) must protect a victim flow "
           "under N-to-1 incast: with it on, victim p99 and drop "
           "rate both beat the uncontrolled tail-drop fabric");
    BenchJson json("incast");

    // Calibrate the bottleneck's saturation throughput: a closed
    // loop deep enough to keep the narrow wire busy, but shallow
    // enough (32 KiB in flight < 64 KiB queue) never to overflow the
    // egress queue — no drops, pure capacity.
    IncastRun cal = measure(Mode::Baseline, 0, 0.0, 32, fast);
    double satRps = cal.victim.rps;
    std::printf("saturation (closed-loop, no incast): %.1f Krps\n\n",
                satRps / 1e3);

    std::vector<int> fans = fast ? std::vector<int>{16}
                                 : std::vector<int>{4, 8, 16};
    std::vector<double> loads = fast ? std::vector<double>{1.5}
                                     : std::vector<double>{0.8, 1.5,
                                                           2.0};

    std::printf("%6s | %5s | %9s | %9s | %9s | %7s | %9s | %8s | %8s\n",
                "fan-in", "load", "mode", "vict p50", "vict p99",
                "drop%", "ecn marks", "q drops", "pfc");
    double basP99 = 0, basDrop = 0, dcqP99 = 0, dcqDrop = 0;
    std::uint64_t failures = 0;
    for (int fan : fans) {
        for (double load : loads) {
            for (Mode mode : {Mode::Baseline, Mode::Dcqcn}) {
                IncastRun r =
                    measure(mode, fan, load * satRps, 4, fast);
                failures += r.victim.failures;
                std::printf("%6d | %5.1f | %9s | %7.1fus | %7.1fus | "
                            "%6.2f%% | %9llu | %8llu | %8llu\n",
                            fan, load, modeName(mode),
                            r.victim.p50us, r.victim.p99us,
                            r.dropRate * 100,
                            static_cast<unsigned long long>(
                                r.ecnMarked),
                            static_cast<unsigned long long>(
                                r.egressDrops),
                            static_cast<unsigned long long>(
                                r.pfcPauses));
                json.addRow(
                    {{"fan_in", fan},
                     {"load", load},
                     {"mode", modeName(mode)},
                     {"victim_p50us", r.victim.p50us},
                     {"victim_p99us", r.victim.p99us},
                     {"victim_drop_rate", r.dropRate},
                     {"victim_ktps", r.victim.rps / 1e3},
                     {"ecn_marked", r.ecnMarked},
                     {"egress_drops", r.egressDrops},
                     {"cnp_sent", r.cnpSent},
                     {"mq_overflow", r.mqOverflow},
                     {"pfc_pauses", r.pfcPauses},
                     {"failures", r.victim.failures}});
                if (fan == 16 && load == 1.5) {
                    (mode == Mode::Baseline ? basP99 : dcqP99) =
                        r.victim.p99us;
                    (mode == Mode::Baseline ? basDrop : dcqDrop) =
                        r.dropRate;
                }
            }
        }
    }

    // Self-check on the headline cell (16-to-1, 1.5x saturation).
    bool ok = true;
    if (failures != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu byte-validation failures — "
                     "congestion must never corrupt\n",
                     static_cast<unsigned long long>(failures));
        ok = false;
    }
    if (basDrop <= 0.0) {
        std::fprintf(stderr,
                     "FAIL: tail-drop baseline never dropped at "
                     "16-to-1 x1.5 — sweep is not congesting\n");
        ok = false;
    }
    if (dcqP99 >= basP99) {
        std::fprintf(stderr,
                     "FAIL: dcqcn victim p99 %.1fus >= baseline "
                     "%.1fus\n",
                     dcqP99, basP99);
        ok = false;
    }
    if (dcqDrop >= basDrop) {
        std::fprintf(stderr,
                     "FAIL: dcqcn victim drop rate %.4f >= baseline "
                     "%.4f\n",
                     dcqDrop, basDrop);
        ok = false;
    }
    std::printf("\nself-check (16-to-1, 1.5x): p99 %.1fus -> %.1fus, "
                "drops %.2f%% -> %.2f%% [%s]\n",
                basP99, dcqP99, basDrop * 100, dcqDrop * 100,
                ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
}

/**
 * @file
 * Graceful-degradation table (extension — see docs/INTERNALS.md §7):
 * how the fault-injection & failover machinery trades throughput for
 * correctness. Two sweeps on the Bluefield deployment, one local +
 * one remote GPU (loss sweep) and N GPUs with one remote victim
 * (failover sweep):
 *
 *  - throughput / tail latency vs fabric+RDMA loss rate: every drop
 *    costs client timeouts and RDMA retransmits, so Ktps falls and
 *    p99 explodes — but not one response fails byte-for-byte
 *    validation (the failures column must stay 0);
 *
 *  - throughput with 1-dead-of-N accelerators: a partitioned remote
 *    GPU is declared dead and its work re-queued, so steady-state
 *    throughput degrades to roughly the surviving (N-1)/N share of
 *    the healthy run instead of collapsing or corrupting.
 *
 * Writes BENCH_tab_degradation.json; `--fast` shrinks the run for CI
 * smoke use.
 */

#include <cstring>

#include "common.hh"

#include "pcie/fabric.hh"
#include "rdma/qp.hh"
#include "sim/fault.hh"

using namespace lynxbench;

namespace {

/** Request payload as a pure function of the sequence number, so the
 *  validator can recompute the expected bytes from the response. */
std::vector<std::uint8_t>
payloadFor(std::uint64_t seq)
{
    std::vector<std::uint8_t> p(64);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 131 + b * 17 + 7);
    return p;
}

/** One echo deployment with failover enabled: one local GPU plus one
 *  remote GPU behind @p plan (bound to the fabric and the remote
 *  QP). Extra GPUs (for the failover sweep) are local. */
struct DegradationRun
{
    RunResult r;
    std::uint64_t died = 0;
    std::uint64_t revived = 0;
    std::uint64_t requeued = 0;
};

DegradationRun
measure(int gpus, sim::FaultConfig fc, bool partitionRemote,
        sim::Tick procTime, int concurrency, bool fast)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    host::Node remoteHost(s, nw, "server1");
    pcie::Fabric localFabric(s, "server0.pcie");

    std::vector<std::unique_ptr<accel::Gpu>> gpuPool;
    for (int g = 0; g < gpus; ++g) {
        bool remote = g == gpus - 1; // last GPU is the remote victim
        gpuPool.push_back(std::make_unique<accel::Gpu>(
            s, "gpu" + std::to_string(g),
            remote ? remoteHost.fabric() : localFabric));
    }

    sim::FaultPlan plan(fc);
    if (partitionRemote)
        plan.partition(bf.node(), remoteHost.id(), 2_ms, 100_s);
    nw.setFaultPlan(&plan);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.failover.enabled = true;
    core::Runtime rt(s, cfg);
    rdma::RdmaPathModel lp;
    auto remotePath =
        lp.viaNetwork(calibration::rdmaRemoteExtraOneWay);
    std::vector<core::AccelHandle *> handles;
    for (int g = 0; g < gpus; ++g) {
        bool remote = g == gpus - 1;
        handles.push_back(&rt.addAccelerator(
            gpuPool[static_cast<std::size_t>(g)]->name(),
            gpuPool[static_cast<std::size_t>(g)]->memory(),
            remote ? remotePath : lp));
        if (remote) {
            rdma::QpFaultBinding fb;
            fb.plan = &plan;
            fb.initiator = bf.node();
            fb.target = remoteHost.id();
            handles.back()->qp().bindFaults(fb);
        }
    }

    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    for (int g = 0; g < gpus; ++g) {
        auto qs = rt.makeAccelQueues(
            svc, *handles[static_cast<std::size_t>(g)]);
        for (auto &q : qs) {
            sim::spawn(s, apps::runEchoBlock(
                              *gpuPool[static_cast<std::size_t>(g)],
                              *q, procTime));
            queues.push_back(std::move(q));
        }
    }
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = concurrency;
    lg.warmup = fast ? 2_ms : 5_ms;
    lg.duration = fast ? 12_ms : 60_ms;
    lg.requestTimeout = 2_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return payloadFor(seq);
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload == payloadFor(resp.seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 5_ms);

    DegradationRun out;
    out.r = collect(gen);
    for (const auto &mon : rt.monitors()) {
        out.died += mon->stats().counterValue("mqueues_died");
        out.revived += mon->stats().counterValue("mqueues_revived");
        out.requeued += mon->stats().counterValue("requests_requeued");
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
    banner("tab_degradation",
           "graceful degradation under faults (extension)",
           "not reported in the paper — the failover extension must "
           "trade throughput, never correctness: failures stay 0 at "
           "every loss rate, and 1-dead-of-N keeps ~(N-1)/N of the "
           "healthy throughput");
    BenchJson json("tab_degradation");

    // Sweep 1: throughput/latency vs fabric+RDMA loss rate.
    std::vector<double> rates =
        fast ? std::vector<double>{0.0, 0.02, 0.08}
             : std::vector<double>{0.0, 0.005, 0.01, 0.02, 0.05, 0.1};
    std::printf("%9s | %8s | %8s | %8s | %8s | %8s\n", "loss", "Ktps",
                "p50 us", "p99 us", "timeouts", "failures");
    for (double rate : rates) {
        sim::FaultConfig fc;
        fc.dropRate = rate;
        DegradationRun d = measure(2, fc, /*partitionRemote=*/false,
                                   4_us, 16, fast);
        std::printf("%8.1f%% | %8.1f | %8.1f | %8.1f | %8llu | %8llu\n",
                    rate * 100, d.r.rps / 1e3, d.r.p50us, d.r.p99us,
                    static_cast<unsigned long long>(d.r.timeouts),
                    static_cast<unsigned long long>(d.r.failures));
        json.addRow({{"sweep", "loss"},
                     {"rate", rate},
                     {"ktps", d.r.rps / 1e3},
                     {"p50us", d.r.p50us},
                     {"p99us", d.r.p99us},
                     {"timeouts", d.r.timeouts},
                     {"failures", d.r.failures}});
    }

    // Sweep 2: 1 dead (partitioned, never healed) of N accelerators.
    std::printf("\n%6s | %12s | %12s | %7s | %7s | %8s\n", "GPUs",
                "healthy Ktps", "1-dead Ktps", "ratio", "ideal",
                "failures");
    std::vector<int> fleet = fast ? std::vector<int>{2, 4}
                                  : std::vector<int>{2, 4, 8};
    for (int n : fleet) {
        // Saturating closed loop so throughput tracks capacity.
        sim::Tick procTime = 64_us;
        int conc = 6 * n;
        DegradationRun healthy =
            measure(n, {}, /*partitionRemote=*/false, procTime, conc,
                    fast);
        DegradationRun dead =
            measure(n, {}, /*partitionRemote=*/true, procTime, conc,
                    fast);
        double ratio = dead.r.rps / healthy.r.rps;
        double ideal = static_cast<double>(n - 1) / n;
        std::printf("%6d | %12.1f | %12.1f | %6.2f | %6.2f | %8llu\n",
                    n, healthy.r.rps / 1e3, dead.r.rps / 1e3, ratio,
                    ideal,
                    static_cast<unsigned long long>(
                        dead.r.failures + healthy.r.failures));
        json.addRow({{"sweep", "dead"},
                     {"gpus", n},
                     {"healthy_ktps", healthy.r.rps / 1e3},
                     {"dead_ktps", dead.r.rps / 1e3},
                     {"ratio", ratio},
                     {"ideal", ideal},
                     {"died", dead.died},
                     {"requeued", dead.requeued},
                     {"failures", dead.r.failures + healthy.r.failures}});
    }
    return 0;
}

/**
 * @file
 * Figure 8c — "Scalability projection with Lynx": how many LeNet
 * GPUs one Lynx instance can drive before its network processing
 * saturates, for UDP and TCP, on Bluefield vs a single Xeon core.
 *
 * Uses the paper's emulation methodology (§6.3): each "GPU" is a
 * kernel with a single thread that blocks for the LeNet execution
 * time, one mqueue per GPU ("the emulation results precisely match
 * the performance of Lynx on 12 real GPUs").
 */

#include "common.hh"

using namespace lynxbench;

namespace {

double
measure(bool bluefield, net::Protocol proto, int nGpus)
{
    sim::Simulator s;
    net::Network network(s);
    auto &client0 = network.addNic("client0");
    auto &client1 = network.addNic("client1");
    host::Node serverHost(s, network, "server0");
    pcie::Fabric fabric(s, "pcie");

    // Emulated GPUs: tiny device-memory footprint, one mqueue each.
    // (Declared before the Runtime: the runtime's mqueue watchpoints
    // must be torn down before the device memories they watch.)
    accel::GpuConfig emu;
    emu.blockSlots = 4;
    emu.memBytes = 1ull << 20;
    std::vector<std::unique_ptr<accel::Gpu>> gpus;

    std::unique_ptr<snic::Bluefield> bf;
    core::RuntimeConfig cfg;
    std::uint32_t serverNode;
    if (bluefield) {
        bf = std::make_unique<snic::Bluefield>(s, network, "bf0");
        cfg = bf->lynxRuntimeConfig();
        serverNode = bf->node();
    } else {
        cfg = snic::hostRuntimeConfig({&serverHost.cores()[0]},
                                      serverHost.nic());
        serverNode = serverHost.id();
    }
    core::Runtime rt(s, cfg);
    std::vector<core::AccelHandle *> handles;
    for (int g = 0; g < nGpus; ++g) {
        gpus.push_back(std::make_unique<accel::Gpu>(
            s, "emu" + std::to_string(g), fabric, emu));
        handles.push_back(&rt.addAccelerator(gpus.back()->name(),
                                             gpus.back()->memory(),
                                             rdma::RdmaPathModel{}));
    }
    core::ServiceConfig scfg;
    scfg.name = "lenet-emu";
    scfg.port = 7000;
    scfg.proto = proto;
    auto &svc = rt.addService(scfg);
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    for (int g = 0; g < nGpus; ++g) {
        auto qs = rt.makeAccelQueues(svc, *handles[
            static_cast<std::size_t>(g)]);
        // Reply with 1 byte, like the real LeNet service.
        sim::spawn(s, apps::runEchoBlock(
                          *gpus[static_cast<std::size_t>(g)], *qs[0],
                          calibration::lenetTotal(), 1));
        queues.push_back(std::move(qs[0]));
    }
    rt.start();

    auto makeGen = [&](net::Nic *nic, int conc, std::uint64_t seed) {
        workload::LoadGenConfig lg;
        lg.nic = nic;
        lg.target = {serverNode, 7000};
        lg.proto = proto;
        lg.concurrency = conc;
        lg.warmup = 10_ms;
        lg.duration = 120_ms;
        lg.seed = seed;
        lg.requestTimeout = 400_ms;
        lg.makeRequest = [](std::uint64_t, sim::Rng &) {
            // LeNet-sized requests (28x28 image).
            return std::vector<std::uint8_t>(784, 0x11);
        };
        return std::make_unique<workload::LoadGen>(s, lg);
    };
    // 2 outstanding per GPU, split over two client machines.
    auto g0 = makeGen(&client0, nGpus, 5);
    auto g1 = makeGen(&client1, nGpus, 7);
    g0->start();
    g1->start();
    s.runUntil(g0->windowEnd() + 20_ms);
    return g0->throughputRps() + g1->throughputRps();
}

} // namespace

int
main()
{
    banner("fig8c", "multi-GPU scalability projection (emulated LeNet "
                    "GPUs, one mqueue each)",
           "linear until Lynx saturates: UDP ~102 GPUs on Bluefield "
           "vs ~74 on one Xeon core; TCP ~15 vs ~7 GPUs");

    const int counts[] = {7, 15, 30, 45, 60, 75, 90, 105};
    const double perGpu = 3500.0; // ideal req/s per emulated GPU

    std::printf("%6s | %13s %13s | %13s %13s\n", "GPUs", "udp-bf",
                "udp-xeon1", "tcp-bf", "tcp-xeon1");
    std::printf("%6s | %13s %13s | %13s %13s   (kreq/s, *=saturated)\n",
                "", "", "", "", "");
    for (int n : counts) {
        std::printf("%6d |", n);
        for (auto [bf, proto] :
             {std::pair{true, net::Protocol::Udp},
              std::pair{false, net::Protocol::Udp},
              std::pair{true, net::Protocol::Tcp},
              std::pair{false, net::Protocol::Tcp}}) {
            double rps = measure(bf, proto, n);
            bool saturated = rps < 0.93 * perGpu * n;
            std::printf(" %11.1fk%s", rps / 1000.0,
                        saturated ? "*" : " ");
            if (!bf && proto == net::Protocol::Udp)
                std::printf(" |");
        }
        std::printf("\n");
    }
    std::printf("\nlinear region ends where '*' starts; paper: "
                "UDP 102 (BF) / 74 (Xeon core); TCP 15 / 7.\n");
    return 0;
}

/**
 * @file
 * §6.2 "Integration with the Intel VCA" — a secure computing server
 * inside an SGX enclave on one VCA E3 processor: it receives a
 * 4-byte AES-encrypted message, decrypts it, multiplies by a
 * constant, re-encrypts, and replies. AES-128 is computed for real.
 *
 * Lynx path: mqueues live in *host* memory (the paper's workaround
 * for the VCA RDMA bug, "a sub-optimal configuration") and the E3
 * accesses them across the PCIe at a few microseconds per access;
 * the gio library is small enough to live inside the enclave TCB.
 *
 * Baseline: the stock IP-over-PCIe host network bridge ("the Intel
 * preferred way to connect the VCA to the network") plus the native
 * Linux stack on the VCA.
 *
 * Paper: Lynx reaches 56 us 90th-percentile latency, 4.3x lower than
 * the baseline, under 1 K req/s.
 */

#include "common.hh"

#include "accel/vca.hh"
#include "apps/aes.hh"

using namespace lynxbench;

namespace {

const apps::Aes128::Key kKey = {1, 2,  3,  4,  5,  6,  7,  8,
                                9, 10, 11, 12, 13, 14, 15, 16};
constexpr std::uint32_t kFactor = 3;

/** The paper-calibrated VCA. */
accel::VcaConfig
vcaConfig()
{
    accel::VcaConfig cfg;
    cfg.coreSlowdown = calibration::vcaCoreSlowdown;
    cfg.sgxTransitionCost = calibration::sgxTransitionCost;
    cfg.bridgeLatency = calibration::vcaBridgeLatency;
    cfg.queueAccessLatency = calibration::vcaQueueAccessLatency;
    return cfg;
}

/** Decrypt, multiply, encrypt — the enclave computation (real AES). */
std::vector<std::uint8_t>
enclaveCompute(const apps::Aes128 &aes,
               std::span<const std::uint8_t> payload)
{
    if (payload.size() != 16)
        return {};
    apps::Aes128::Block blk{};
    std::copy(payload.begin(), payload.end(), blk.begin());
    apps::Aes128::Block plain = aes.decrypt(blk);
    std::uint32_t v = static_cast<std::uint32_t>(plain[0]) |
                      (static_cast<std::uint32_t>(plain[1]) << 8) |
                      (static_cast<std::uint32_t>(plain[2]) << 16) |
                      (static_cast<std::uint32_t>(plain[3]) << 24);
    v *= kFactor;
    apps::Aes128::Block out{};
    out[0] = static_cast<std::uint8_t>(v);
    out[1] = static_cast<std::uint8_t>(v >> 8);
    out[2] = static_cast<std::uint8_t>(v >> 16);
    out[3] = static_cast<std::uint8_t>(v >> 24);
    apps::Aes128::Block enc = aes.encrypt(out);
    return {enc.begin(), enc.end()};
}

workload::LoadGenConfig
clientConfig(net::Nic &clientNic, net::Address target)
{
    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = target;
    lg.openRate = 1000.0; // the paper's 1 K req/s load
    lg.warmup = 20_ms;
    lg.duration = 400_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        apps::Aes128 aes(kKey);
        apps::Aes128::Block plain{};
        plain[0] = static_cast<std::uint8_t>(seq);
        plain[1] = static_cast<std::uint8_t>(seq >> 8);
        auto enc = aes.encrypt(plain);
        return std::vector<std::uint8_t>(enc.begin(), enc.end());
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload.size() == 16;
    };
    return lg;
}

double
measureLynx()
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    apps::Aes128 aes(kKey);
    accel::Vca vca(s, "vca0", vcaConfig());
    accel::SgxEnclave enclave(
        vca, calibration::vcaComputeCost,
        [&aes](std::span<const std::uint8_t> in) {
            return enclaveCompute(aes, in);
        });

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    // The sub-optimal host-memory placement: each queue access from
    // the VCA costs a PCIe round trip (§5.4).
    cfg.gio.localLatency = vca.config().queueAccessLatency;
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("vca0", vca.hostWindow(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "sgx";
    scfg.port = 7200;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);

    auto worker = [&](core::AccelQueue &q) -> sim::Task {
        for (;;) {
            core::GioMessage m = co_await q.recv();
            auto resp =
                co_await enclave.call(vca.processor(0), m.payload);
            co_await q.send(m.tag, resp);
        }
    };
    sim::spawn(s, worker(*queues[0]));
    rt.start();

    workload::LoadGen gen(s, clientConfig(clientNic,
                                          {bf.node(), 7200}));
    gen.start();
    s.runUntil(gen.windowEnd() + 10_ms);
    return sim::toMicroseconds(gen.latency().percentile(90));
}

double
measureBaseline()
{
    sim::Simulator s;
    net::Network nw(s);
    auto &clientNic = nw.addNic("client");
    host::Node vcaHost(s, nw, "vca-host");
    apps::Aes128 aes(kKey);
    accel::Vca vca(s, "vca0", vcaConfig());
    accel::SgxEnclave enclave(
        vca, calibration::vcaComputeCost,
        [&aes](std::span<const std::uint8_t> in) {
            return enclaveCompute(aes, in);
        });
    sim::Core &e3 = vca.processor(0);

    // Native path: requests arrive at the host NIC and traverse the
    // IP-over-PCIe bridge into the VCA's Linux stack, and back.
    net::Endpoint &ep = vcaHost.nic().bind(net::Protocol::Udp, 7200);
    auto stack = calibration::kernelXeon();
    auto server = [&]() -> sim::Task {
        for (;;) {
            net::Message m = co_await ep.recv();
            // Host bridge processing + PCIe tunnel, inbound.
            co_await vcaHost.cores()[0].exec(
                stack.cost(net::Protocol::Udp, net::Dir::Recv,
                           m.size()));
            co_await sim::sleep(vca.config().bridgeLatency);
            // VCA-side kernel network stack, then the enclave.
            co_await e3.exec(stack.cost(net::Protocol::Udp,
                                        net::Dir::Recv, m.size()));
            auto resp = co_await enclave.call(e3, m.payload);
            co_await e3.exec(stack.cost(net::Protocol::Udp,
                                        net::Dir::Send, resp.size()));
            co_await sim::sleep(vca.config().bridgeLatency);
            net::Message out;
            out.src = m.dst;
            out.dst = m.src;
            out.proto = m.proto;
            out.payload = std::move(resp);
            out.seq = m.seq;
            out.sentAt = m.sentAt;
            co_await vcaHost.cores()[0].exec(
                stack.cost(net::Protocol::Udp, net::Dir::Send,
                           out.size()));
            co_await vcaHost.nic().send(std::move(out));
        }
    };
    sim::spawn(s, server());

    workload::LoadGen gen(s, clientConfig(clientNic,
                                          {vcaHost.id(), 7200}));
    gen.start();
    s.runUntil(gen.windowEnd() + 10_ms);
    return sim::toMicroseconds(gen.latency().percentile(90));
}

} // namespace

int
main()
{
    banner("tab_vca_sgx",
           "SGX secure server on the Intel VCA: Lynx vs the native "
           "IP-over-PCIe bridge, 1 K req/s",
           "Lynx: 56 us p90, 4.3x lower than the baseline; the gio "
           "layer (20 LoC) is statically linked into the enclave");

    double lynxP90 = measureLynx();
    double baseP90 = measureBaseline();
    std::printf("%24s | %10s\n", "path", "p90 [us]");
    std::printf("%24s | %10.1f\n", "lynx (host-mem mqueues)", lynxP90);
    std::printf("%24s | %10.1f\n", "native bridge baseline", baseP90);
    std::printf("\nbaseline/lynx = %.1fx (paper: 4.3x; lynx p90 "
                "paper: 56 us)\n",
                baseP90 / lynxP90);
    return 0;
}

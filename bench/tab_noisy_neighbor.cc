/**
 * @file
 * §3.2 "Interference with co-located applications" + §6.2
 * "Performance isolation".
 *
 * A GPU-accelerated vector-scale server (256-int requests) co-runs
 * with a cache-filling 1140x1140 matrix-product neighbor:
 *
 *  - host-centric server: 99th-percentile latency inflates 13x
 *    (0.13 ms -> 1.7 ms) and the matmul itself slows 21%;
 *  - Lynx on Bluefield (§6.2): "we observe no interference".
 */

#include "common.hh"

#include "host/llc.hh"

using namespace lynxbench;

namespace {

/** LLC parameters reproducing the §3.2 victim tail. */
host::LlcConfig
llcConfig()
{
    host::LlcConfig cfg;
    cfg.victimSteady = 1.35;
    cfg.burstProbability = 0.02;
    cfg.burstScale = 40.0;
    cfg.neighborSlowdown = 1.27;
    return cfg;
}

struct NoisyResult
{
    double p50us = 0, p99us = 0;
    double matmulSlowdown = 1.0;
};

/** The neighbor: repeated 1140x1140 integer matrix products. */
sim::Task
matmulNeighbor(sim::Core &core, host::LlcModel &llc,
               std::uint64_t *iterations)
{
    // ~45 ms per product on the reference core (O(n^3) int ops).
    const sim::Tick productTime = 45_ms;
    for (;;) {
        sim::Tick t = static_cast<sim::Tick>(
            static_cast<double>(productTime) * llc.neighborFactor());
        co_await core.exec(t);
        ++*iterations;
    }
}

NoisyResult
measureHostCentric(bool noisy)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &client = nw.addNic("client");
    host::Node server(s, nw, "server0");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    accel::GpuDriver driver(s, gpu);
    host::LlcModel llc(llcConfig(), 0xbeef);
    llc.setNoisy(noisy);

    // Victim: vector-by-constant product on the GPU, host-centric;
    // the CPU-side request handling suffers LLC interference.
    baseline::HostServerConfig cfg;
    cfg.nic = &server.nic();
    cfg.port = 7000;
    cfg.stack = calibration::vmaXeon();
    cfg.cores = {&server.cores()[0]};
    cfg.streams = 8;
    auto handler = [&](sim::Core &core, accel::Stream &st,
                       const net::Message &req)
        -> sim::Co<std::vector<std::uint8_t>> {
        // Cache-sensitive CPU work (buffer management, copies): the
        // noisy neighbor multiplies its effective duration.
        co_await core.exec(llc.perturb(55_us));
        co_await st.memcpyH2D(core, req.size());
        co_await st.launch(core, 1, 20_us);
        co_await st.memcpyD2H(core, req.size());
        co_await st.sync(core);
        co_return req.payload.toVector();
    };
    baseline::HostCentricServer srv(s, driver, cfg, handler);
    srv.start();

    std::uint64_t matmuls = 0;
    if (noisy)
        sim::spawn(s, matmulNeighbor(server.cores()[1], llc, &matmuls));

    workload::LoadGenConfig lg;
    lg.nic = &client;
    lg.target = {server.id(), 7000};
    lg.concurrency = 1;
    lg.warmup = 20_ms;
    lg.duration = 400_ms;
    lg.thinkTime = 50_us;
    lg.requestTimeout = 100_ms;
    lg.makeRequest = [](std::uint64_t, sim::Rng &) {
        return std::vector<std::uint8_t>(256 * 4, 7);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 10_ms);

    NoisyResult r;
    r.p50us = sim::toMicroseconds(gen.latency().percentile(50));
    r.p99us = sim::toMicroseconds(gen.latency().percentile(99));
    if (noisy) {
        double expected =
            sim::toSeconds(400_ms) / sim::toSeconds(45_ms);
        r.matmulSlowdown =
            expected / std::max<double>(1.0,
                                        static_cast<double>(matmuls));
    }
    return r;
}

NoisyResult
measureLynxBluefield(bool noisy)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &client = nw.addNic("client");
    host::Node server(s, nw, "server0");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    host::LlcModel llc(llcConfig(), 0xbeef);
    llc.setNoisy(noisy);

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runVectorScaleBlock(gpu, *queues[0], 3, 20_us));
    rt.start();

    // The neighbor still hammers the *host* LLC, but no Lynx request
    // ever touches a host core.
    std::uint64_t matmuls = 0;
    if (noisy)
        sim::spawn(s, matmulNeighbor(server.cores()[1], llc, &matmuls));

    workload::LoadGenConfig lg;
    lg.nic = &client;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 1;
    lg.warmup = 20_ms;
    lg.duration = 400_ms;
    lg.thinkTime = 50_us;
    lg.makeRequest = [](std::uint64_t, sim::Rng &) {
        return std::vector<std::uint8_t>(256 * 4, 7);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 10_ms);

    NoisyResult r;
    r.p50us = sim::toMicroseconds(gen.latency().percentile(50));
    r.p99us = sim::toMicroseconds(gen.latency().percentile(99));
    return r;
}

} // namespace

int
main()
{
    banner("tab_noisy_neighbor",
           "GPU-server latency under a cache-filling matrix-product "
           "neighbor (§3.2) and Lynx's isolation (§6.2)",
           "host-centric p99 inflates 13x (0.13 -> 1.7 ms), matmul "
           "slows 21%; Lynx on Bluefield shows no interference");

    NoisyResult hQuiet = measureHostCentric(false);
    NoisyResult hNoisy = measureHostCentric(true);
    NoisyResult bQuiet = measureLynxBluefield(false);
    NoisyResult bNoisy = measureLynxBluefield(true);

    std::printf("%28s | %9s %9s | %10s\n", "config", "p50 [us]",
                "p99 [us]", "p99 ratio");
    std::printf("%28s | %9.0f %9.0f | %10s\n", "host-centric, quiet",
                hQuiet.p50us, hQuiet.p99us, "1.0x");
    std::printf("%28s | %9.0f %9.0f | %9.1fx\n",
                "host-centric, noisy", hNoisy.p50us, hNoisy.p99us,
                hNoisy.p99us / hQuiet.p99us);
    std::printf("%28s | %9.0f %9.0f | %10s\n",
                "lynx-bluefield, quiet", bQuiet.p50us, bQuiet.p99us,
                "1.0x");
    std::printf("%28s | %9.0f %9.0f | %9.2fx\n",
                "lynx-bluefield, noisy", bNoisy.p50us, bNoisy.p99us,
                bNoisy.p99us / bQuiet.p99us);
    std::printf("\nmatmul neighbor slowdown next to the host-centric "
                "server: %.0f%% (paper: 21%%)\n",
                (hNoisy.matmulSlowdown - 1) * 100);
    return 0;
}

/**
 * @file
 * Figure 9 — "Illustration of the (inefficient) use of Bluefield to
 * run server workloads (memcached) vs a single Xeon core".
 *
 * Two applications share the machine: A1 = the Lynx-driven LeNet GPU
 * server, A2 = memcached. Configurations:
 *
 *   (a) memcached on all 6 host cores; LeNet managed by Bluefield;
 *   (b) memcached on 5 host cores + on Bluefield
 *       (throughput-optimized: loaded to saturation);
 *   (c) same, latency-optimized: the Bluefield instance is only
 *       allowed load meeting the Xeon's ~15 us p99 target —
 *       "this requirement cannot be satisfied";
 *   (d) reference: memcached on 6 cores with LeNet on a host core
 *       does not fit (only 5 instances + LeNet).
 *
 * Paper numbers: 250 Ktps per Xeon core @ ~15 us p99 vs 400 Ktps on
 * the whole Bluefield @ ~160 us; LeNet unaffected (3.5 K) either way.
 */

#include "common.hh"

#include "apps/kvstore.hh"
#include "workload/datagen.hh"

using namespace lynxbench;

namespace {

struct KvResult
{
    double tput = 0;
    double p99us = 0;
};

/** One memcached instance on the given cores; closed-loop load. */
KvResult
runKvInstance(sim::Simulator &s, net::Network &nw, net::Nic &serverNic,
              std::uint16_t port, std::vector<sim::Core *> cores,
              sim::Tick opCost, net::StackProfile stack, int concurrency,
              net::Nic &clientNic, std::uint16_t clientBase,
              std::vector<std::unique_ptr<apps::KvServer>> &servers,
              std::vector<std::unique_ptr<apps::KvStore>> &stores,
              std::vector<std::unique_ptr<workload::LoadGen>> &gens)
{
    (void)nw;
    stores.push_back(std::make_unique<apps::KvStore>());
    stores.back()->set("k", {1, 2, 3, 4});
    apps::KvServerConfig cfg;
    cfg.name = "kv" + std::to_string(port);
    cfg.nic = &serverNic;
    cfg.port = port;
    cfg.proto = net::Protocol::Udp;
    cfg.stack = stack;
    cfg.cores = std::move(cores);
    cfg.opCost = opCost;
    servers.push_back(
        std::make_unique<apps::KvServer>(s, *stores.back(), cfg));
    servers.back()->start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {serverNic.node(), port};
    lg.concurrency = concurrency;
    lg.warmup = 10_ms;
    lg.duration = 100_ms;
    lg.basePort = clientBase;
    lg.makeRequest = [](std::uint64_t, sim::Rng &) {
        return apps::kvEncodeGet("k");
    };
    gens.push_back(std::make_unique<workload::LoadGen>(s, lg));
    gens.back()->start();
    return {};
}

} // namespace

int
main()
{
    banner("fig9", "memcached placement: Bluefield vs host cores, "
                   "co-located with the Lynx LeNet service",
           "Bluefield: 400 Ktps but ~160 us p99; a Xeon core: "
           "250 Ktps at ~15 us p99; under a 15 us latency target the "
           "Bluefield contributes nothing; LeNet stays at 3.5 K "
           "either way");

    struct Row
    {
        const char *name;
        bool kvOnBluefield;
        int hostKvCores;
        int bfConcurrency; // closed-loop clients at the BF instance
    };
    const Row rows[] = {
        {"6 cores (LeNet on BF)", false, 6, 0},
        {"5 cores + BF (tput-opt)", true, 5, 64},
        {"5 cores + BF (latency-opt)", true, 5, 1},
    };

    std::printf("%28s | %11s %10s | %11s %10s | %10s\n", "config",
                "host [tps]", "p99 [us]", "bf [tps]", "p99 [us]",
                "lenet r/s");
    for (const Row &row : rows) {
        sim::Simulator s;
        net::Network nw(s);
        snic::Bluefield bf(s, nw, "bf0");
        auto &kvClient = nw.addNic("kv-client");
        auto &lenetClient = nw.addNic("lenet-client");
        host::Node server(s, nw, "server0");
        pcie::Fabric fabric(s, "pcie");
        accel::Gpu gpu(s, "k40m", fabric);
        apps::LeNet model;

        std::vector<std::unique_ptr<apps::KvServer>> servers;
        std::vector<std::unique_ptr<apps::KvStore>> stores;
        std::vector<std::unique_ptr<workload::LoadGen>> gens;

        // LeNet via Lynx: on the Bluefield in (a); on the 6th host
        // core when the Bluefield runs memcached.
        core::RuntimeConfig rcfg;
        if (!row.kvOnBluefield) {
            rcfg = bf.lynxRuntimeConfig();
        } else {
            rcfg = snic::hostRuntimeConfig({&server.cores()[5]},
                                           server.nic());
        }
        core::Runtime rt(s, rcfg);
        auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                        rdma::RdmaPathModel{});
        core::ServiceConfig scfg;
        scfg.name = "lenet";
        scfg.port = 7000;
        auto &svc = rt.addService(scfg);
        auto queues = rt.makeAccelQueues(svc, accel);
        sim::spawn(s, apps::runLenetServer(gpu, *queues[0], model));
        rt.start();

        // Host memcached instances: one per core, own port.
        for (int i = 0; i < row.hostKvCores; ++i) {
            runKvInstance(s, nw, server.nic(),
                          static_cast<std::uint16_t>(11211 + i),
                          {&server.cores()[static_cast<std::size_t>(i)]},
                          calibration::memcachedOpCostXeon,
                          calibration::vmaXeon(), 4, kvClient,
                          static_cast<std::uint16_t>(40000 + 100 * i),
                          servers, stores, gens);
        }
        // Bluefield memcached instance across all 7 ARM cores.
        std::size_t bfGenIdx = gens.size();
        if (row.kvOnBluefield) {
            std::vector<sim::Core *> bfCores;
            for (std::size_t i = 0; i < bf.cores().size(); ++i)
                bfCores.push_back(&bf.cores()[i]);
            runKvInstance(s, nw, bf.nic(), 11300, bfCores,
                          calibration::memcachedOpCostArm,
                          calibration::vmaBluefield(),
                          row.bfConcurrency, kvClient, 49000, servers,
                          stores, gens);
        }

        // LeNet load.
        workload::LoadGenConfig llg;
        llg.nic = &lenetClient;
        llg.target = {row.kvOnBluefield ? server.id() : bf.node(),
                      7000};
        llg.concurrency = 1;
        llg.warmup = 10_ms;
        llg.duration = 100_ms;
        llg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
            return workload::synthMnist(static_cast<int>(seq % 10),
                                        seq);
        };
        workload::LoadGen lenetGen(s, llg);
        lenetGen.start();

        s.runUntil(130_ms);

        double hostTput = 0, hostP99 = 0;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(row.hostKvCores); ++i) {
            hostTput += gens[i]->throughputRps();
            hostP99 = std::max(
                hostP99, sim::toMicroseconds(
                             gens[i]->latency().percentile(99)));
        }
        double bfTput = 0, bfP99 = 0;
        if (row.kvOnBluefield) {
            bfTput = gens[bfGenIdx]->throughputRps();
            bfP99 = sim::toMicroseconds(
                gens[bfGenIdx]->latency().percentile(99));
        }
        std::printf("%28s | %11.0f %10.1f | %11.0f %10.1f | %10.0f\n",
                    row.name, hostTput, hostP99, bfTput, bfP99,
                    lenetGen.throughputRps());
    }
    std::printf("\nlatency-opt row: at the ~15 us Xeon p99 target even "
                "a single outstanding request misses it on Bluefield "
                "(service time alone exceeds the target), matching the "
                "paper's 'requirement cannot be satisfied'.\n");
    return 0;
}

/**
 * @file
 * Ablation — dispatching policies (paper §4.2: "load balancing for
 * stateless services, or steering messages to specific queues for
 * stateful ones").
 *
 * Round-robin balances any client mix across mqueues; source-hash
 * gives a client queue affinity (stateful services) at the price of
 * imbalance when few clients dominate.
 */

#include "common.hh"

using namespace lynxbench;

namespace {

struct PolicyResult
{
    RunResult run;
    double maxQueueShare = 0; // busiest queue's share of messages
};

PolicyResult
measure(core::DispatchPolicy policy, int clients)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    scfg.queuesPerAccel = 8;
    scfg.policy = policy;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    for (auto &q : queues)
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 50_us));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = clients;
    lg.warmup = 10_ms;
    lg.duration = 100_ms;
    lg.requestTimeout = 300_ms;
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 10_ms);

    PolicyResult r;
    r.run = collect(gen);
    std::uint64_t total = 0, top = 0;
    for (auto &q : queues) {
        std::uint64_t n = q->stats().counterValue("rx_msgs");
        total += n;
        top = std::max(top, n);
    }
    r.maxQueueShare =
        total ? static_cast<double>(top) / static_cast<double>(total)
              : 0;
    return r;
}

} // namespace

int
main()
{
    banner("tab_dispatch_policy",
           "dispatching policy ablation: round-robin vs source-hash "
           "steering, 8 mqueues, 50 us requests",
           "round-robin load-balances stateless services; hash "
           "steering pins clients to queues (stateful) and skews "
           "under few clients");

    std::printf("%12s %8s | %9s | %9s | %14s\n", "policy", "clients",
                "req/s", "p99 [us]", "busiest queue");
    for (int clients : {2, 16}) {
        for (auto policy : {core::DispatchPolicy::RoundRobin,
                            core::DispatchPolicy::SourceHash}) {
            PolicyResult r = measure(policy, clients);
            std::printf("%12s %8d | %9.0f | %9.0f | %13.0f%%\n",
                        policy == core::DispatchPolicy::RoundRobin
                            ? "round-robin"
                            : "source-hash",
                        clients, r.run.rps, r.run.p99us,
                        r.maxQueueShare * 100);
        }
    }
    std::printf("\nideal balance over 8 queues = 12.5%%; source-hash "
                "with 2 clients concentrates traffic (affinity), "
                "round-robin stays balanced regardless.\n");
    return 0;
}

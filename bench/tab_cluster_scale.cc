/**
 * @file
 * Cluster-scale table (extension — see DESIGN.md §10): the paper's
 * single-server evaluation scaled out to a rack slice. M Lynx
 * machines (each a Bluefield fronting one GPU with 4 echo rings)
 * serve one open-loop client population of a million logical
 * clients, routed two ways:
 *
 *  - across machines by a consistent-hash ring keyed on the logical
 *    client id (net/steering.hh ConsistentHashRing), so shards keep
 *    their clients as the cluster grows;
 *  - within each machine by Toeplitz RSS over the flow 4-tuple
 *    (DispatchPolicy::Rss), so a flow always lands on the same
 *    server mqueue — the hardware-steering behaviour §4.3 assumes;
 *
 * with dispatch-plane admission control on: once a machine's tag
 * tables pass the occupancy threshold, new untenanted arrivals are
 * shed-and-counted instead of queueing without bound.
 *
 * The load generator is open loop on an absolute intended-send-time
 * schedule (no coordinated omission) with per-request timeouts, so
 * the sweep measures what a cluster operator actually sees: offered
 * load vs goodput, tail latency from the *intended* send time, and
 * an exact loss ledger (sent == completed + failed + late + lost).
 *
 * Sweeps machines x offered load {0.6x, 1.5x of aggregate ring
 * capacity}. Self-check (non-zero exit on violation):
 *
 *  - linear scaling: below saturation, 4 machines must serve >= 0.8
 *    x 4 x the 1-machine completion rate, at a sane tail;
 *  - graceful degradation: past saturation the cluster must shed
 *    (counted, > 0), keep the p99 of what it does serve bounded,
 *    and lose nothing silently — every client-observed loss is
 *    matched by a counted server-side shed/drop;
 *  - the open-loop conservation ledger balances exactly in every
 *    cell, and no response byte is ever corrupted.
 *
 * Writes BENCH_cluster_scale.json; `--fast` shrinks the window and
 * sweep for CI smoke use.
 *
 * `--shards N [--threads T]` instead runs the 4-machine sweep on the
 * deterministic parallel engine (sim::ShardedSim, DESIGN.md §11):
 * each machine (and its co-located client population) becomes one
 * shard, cross-machine traffic crosses shards through the fabric's
 * staged records, and the run self-checks that the sharded results
 * are *bit-identical* to the same scenario at --shards 1 — then
 * reports the wall-clock speedup. The speedup floor (>= 3x at 4
 * shards) only applies when the host actually has >= N cores;
 * oversubscribed hosts (CI containers) check a no-collapse floor
 * instead. Writes BENCH_cluster_scale_sharded.json.
 */

#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hh"

#include "net/steering.hh"
#include "pcie/fabric.hh"
#include "sim/metrics.hh"
#include "sim/shard.hh"
#include "sim/task.hh"

using namespace lynxbench;

namespace {

/** Echo processing time per request: makes the accelerator rings
 *  the contended resource (as in the paper's GPU-bound services). */
constexpr sim::Tick kProcTime = 50_us;

constexpr int kRingsPerMachine = 4;

/** One machine's ring-service capacity, requests/second. */
constexpr double kMachineCapacityRps =
    static_cast<double>(kRingsPerMachine) * 1e9 /
    static_cast<double>(kProcTime);

/** Client flow (source-port) pool: enough distinct flows that RSS
 *  spreads them across every machine's mqueues. */
constexpr int kOpenPorts = 256;

constexpr std::uint64_t kLogicalClients = 1'000'000;

constexpr sim::Tick kRequestTimeout = 10_ms;
constexpr sim::Tick kSlo = 5_ms;

std::vector<std::uint8_t>
payloadFor(std::uint64_t seq)
{
    std::vector<std::uint8_t> p(64);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 131 + b * 29 + 7);
    return p;
}

/** One Lynx machine: Bluefield + local GPU + echo service. Members
 *  are ordered so the runtime is torn down before its devices. */
struct Machine
{
    std::unique_ptr<snic::Bluefield> bf;
    std::unique_ptr<pcie::Fabric> fabric;
    std::unique_ptr<accel::Gpu> gpu;
    std::unique_ptr<core::Runtime> rt;
    core::Service *svc = nullptr;
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
};

struct Cell
{
    int machines = 0;
    double loadFactor = 0;
    double offeredRps = 0;
    RunResult r;
    std::uint64_t sent = 0;
    std::uint64_t lost = 0;
    std::uint64_t late = 0;
    std::uint64_t inFlight = 0;
    std::uint64_t goodput = 0;
    bool conserved = false;
    std::uint64_t shed = 0;
    std::uint64_t admitted = 0;
    std::uint64_t serverDrops = 0; ///< sheds + every dispatcher drop
    std::uint64_t rssPicks = 0;
    std::uint64_t rssFallbacks = 0;
};

/** Sum a named counter over every per-machine dispatcher StatSet. */
std::uint64_t
sumCounter(const std::vector<std::unique_ptr<Machine>> &cluster,
           sim::StatSet &(core::Dispatcher::*set)(),
           const char *name)
{
    std::uint64_t n = 0;
    for (const auto &m : cluster)
        n += ((m->svc->dispatcher()).*set)().counterValue(name);
    return n;
}

/** Build one Lynx machine against @p s (a serial simulator, or one
 *  shard of a ShardedSim — the stack is machine-local either way). */
std::unique_ptr<Machine>
buildMachine(sim::Simulator &s, net::Network &nw, int i)
{
    auto m = std::make_unique<Machine>();
    std::string id = std::to_string(i);
    m->bf = std::make_unique<snic::Bluefield>(s, nw, "bf" + id);
    m->fabric =
        std::make_unique<pcie::Fabric>(s, "server" + id + ".pcie");
    m->gpu = std::make_unique<accel::Gpu>(s, "gpu" + id, *m->fabric);

    core::RuntimeConfig cfg = m->bf->lynxRuntimeConfig();
    cfg.admission.enabled = true;
    // Tag tables hold 2x the ring slots, but a serial echo
    // worker keeps at most ~ringSlots+1 tags in flight per
    // queue (~0.52 occupancy); shed at the ring-capacity knee
    // so overload is refused up front, not dropped at the ring.
    cfg.admission.shedOccupancy = 0.45;
    m->rt = std::make_unique<core::Runtime>(s, cfg);

    auto &accel =
        m->rt->addAccelerator("gpu" + id, m->gpu->memory(), {});
    core::ServiceConfig scfg;
    scfg.name = "echo" + id;
    scfg.port = 7000;
    scfg.queuesPerAccel = kRingsPerMachine;
    scfg.ringSlots = 32;
    scfg.policy = core::DispatchPolicy::Rss;
    m->svc = &m->rt->addService(scfg);
    for (auto &q : m->rt->makeAccelQueues(*m->svc, accel)) {
        sim::spawn(s, apps::runEchoBlock(*m->gpu, *q, kProcTime));
        m->queues.push_back(std::move(q));
    }
    m->rt->start();
    return m;
}

Cell
measure(int machines, double loadFactor, bool fast)
{
    sim::Simulator s;
    net::Network nw(s);

    std::vector<std::unique_ptr<Machine>> cluster;
    net::steer::ConsistentHashRing ring;
    std::vector<std::uint32_t> nodes;
    for (int i = 0; i < machines; ++i) {
        cluster.push_back(buildMachine(s, nw, i));
        ring.add(static_cast<std::uint64_t>(i));
        nodes.push_back(cluster.back()->bf->node());
    }

    const double offered =
        loadFactor * kMachineCapacityRps * static_cast<double>(machines);

    auto &clientNic = nw.addNic("clients");
    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {nodes[0], 7000};
    lg.openRate = offered;
    lg.openPorts = kOpenPorts;
    lg.logicalClients = kLogicalClients;
    lg.warmup = fast ? 5_ms : 20_ms;
    lg.duration = fast ? 30_ms : 100_ms;
    lg.requestTimeout = kRequestTimeout;
    lg.slo = kSlo;
    lg.seed = 11;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return payloadFor(seq);
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload == payloadFor(resp.seq);
    };
    // Shard the client population over the cluster: a client's home
    // machine is fixed by the hash ring, independent of cluster
    // events' ordering.
    lg.routeTarget = [ring, nodes](std::uint64_t clientId) {
        return net::Address{
            nodes[static_cast<std::size_t>(ring.route(clientId))],
            7000};
    };
    workload::LoadGen gen(s, lg);
    gen.start();

    // Past the window, every straggler must either complete or pass
    // its deadline so the ledger's in-flight term drains to zero.
    s.runUntil(gen.windowEnd() + kRequestTimeout + 10_ms);

    Cell c;
    c.machines = machines;
    c.loadFactor = loadFactor;
    c.offeredRps = offered;
    c.r = collect(gen);
    c.sent = gen.sent();
    c.lost = gen.lost();
    c.late = gen.late();
    c.inFlight = gen.openInFlight();
    c.goodput = gen.goodput();
    c.conserved = gen.conservationHolds();
    c.shed =
        sumCounter(cluster, &core::Dispatcher::admissionStats,
                   "shed_ring_full");
    c.admitted = sumCounter(cluster, &core::Dispatcher::admissionStats,
                            "admitted");
    c.rssPicks =
        sumCounter(cluster, &core::Dispatcher::steerStats, "rss_picks");
    c.rssFallbacks = sumCounter(
        cluster, &core::Dispatcher::steerStats, "rss_fallbacks");
    c.serverDrops = c.shed;
    for (const char *drop :
         {"dropped_oversized", "dropped_no_tag", "dropped_ring_full",
          "dropped_transport", "dropped_no_live_queue",
          "dropped_tenant_reject"})
        c.serverDrops +=
            sumCounter(cluster, &core::Dispatcher::stats, drop);
    return c;
}

// ---------------------------------------------------------------------
// Sharded mode: the 4-machine sweep on the parallel engine.
// ---------------------------------------------------------------------

/** One sharded cell: model results + the bit-exactness fingerprint +
 *  the host cost of the run loop. */
struct ShardedRun
{
    Cell c;
    std::string fp;
    double wallS = 0;
};

/**
 * The cluster scenario, partitioned: machine i (Bluefield + GPU +
 * runtime + its own client NIC and open-loop generator) lives on
 * shard i % shards. Clients still route by the consistent-hash ring
 * over *all* machines, so the offered load genuinely crosses shards.
 * The scenario (including the wider 5 us propagation that amortizes
 * the lookahead window) is fixed across shard counts — only the
 * partitioning varies, which is exactly what the fingerprint
 * comparison checks.
 */
ShardedRun
measureSharded(int machines, unsigned shards, unsigned threads,
               double loadFactor, bool fast)
{
    sim::ShardedSim ss(shards, threads);
    net::NetworkConfig ncfg;
    ncfg.propagation = 5_us;
    net::Network nw(ss, ncfg);

    std::vector<std::unique_ptr<Machine>> cluster;
    net::steer::ConsistentHashRing ring;
    std::vector<std::uint32_t> nodes;
    for (int i = 0; i < machines; ++i) {
        sim::ShardedSim::Scope scope(
            ss, static_cast<unsigned>(i) % shards);
        cluster.push_back(
            buildMachine(ss.shard(static_cast<unsigned>(i) % shards),
                         nw, i));
        ring.add(static_cast<std::uint64_t>(i));
        nodes.push_back(cluster.back()->bf->node());
    }

    const double offered =
        loadFactor * kMachineCapacityRps * static_cast<double>(machines);

    std::vector<std::unique_ptr<workload::LoadGen>> gens;
    for (int i = 0; i < machines; ++i) {
        unsigned home = static_cast<unsigned>(i) % shards;
        sim::ShardedSim::Scope scope(ss, home);
        auto &clientNic = nw.addNic("clients" + std::to_string(i));
        workload::LoadGenConfig lg;
        lg.nic = &clientNic;
        lg.target = {nodes[0], 7000};
        lg.openRate = offered / machines;
        lg.openPorts = kOpenPorts;
        lg.logicalClients = kLogicalClients / machines;
        lg.warmup = fast ? 5_ms : 20_ms;
        lg.duration = fast ? 30_ms : 100_ms;
        lg.requestTimeout = kRequestTimeout;
        lg.slo = kSlo;
        lg.seed = 11 + static_cast<std::uint64_t>(i);
        lg.metricsName =
            "workload.loadgen.m" + std::to_string(i);
        lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
            return payloadFor(seq);
        };
        lg.validate = [](const net::Message &resp) {
            return resp.payload == payloadFor(resp.seq);
        };
        lg.routeTarget = [ring, nodes](std::uint64_t clientId) {
            return net::Address{
                nodes[static_cast<std::size_t>(ring.route(clientId))],
                7000};
        };
        gens.push_back(std::make_unique<workload::LoadGen>(
            ss.shard(home), lg));
        gens.back()->start();
    }

    WallTimer wall;
    ss.runUntil(gens[0]->windowEnd() + kRequestTimeout + 10_ms);

    ShardedRun out;
    out.wallS = wall.seconds();
    out.c.machines = machines;
    out.c.loadFactor = loadFactor;
    out.c.offeredRps = offered;

    sim::Histogram lat;
    std::ostringstream fp;
    for (int i = 0; i < machines; ++i) {
        const workload::LoadGen &g = *gens[static_cast<std::size_t>(i)];
        out.c.r.rps += g.throughputRps();
        out.c.r.completed += g.completed();
        out.c.r.timeouts += g.timeouts();
        out.c.r.failures += g.validationFailures();
        out.c.sent += g.sent();
        out.c.lost += g.lost();
        out.c.late += g.late();
        out.c.inFlight += g.openInFlight();
        out.c.goodput += g.goodput();
        lat.merge(g.latency());
        fp << "m" << i << " sent=" << g.sent()
           << " completed=" << g.completed()
           << " failed=" << g.windowValidationFailures()
           << " late=" << g.late() << " lost=" << g.lost()
           << " inflight=" << g.openInFlight()
           << " stale=" << g.staleResponses() << "\n";
        const sim::Histogram &h = g.latency();
        fp << "m" << i << " lat count=" << h.count()
           << " min=" << h.min() << " max=" << h.max()
           << " sum=" << h.sum() << " p50=" << h.percentile(50)
           << " p99=" << h.percentile(99) << "\n";
    }
    out.c.conserved = true;
    for (const auto &g : gens)
        out.c.conserved = out.c.conserved && g->conservationHolds();
    out.c.r.meanUs = lat.mean() / 1000.0;
    out.c.r.p50us = sim::toMicroseconds(lat.percentile(50));
    out.c.r.p90us = sim::toMicroseconds(lat.percentile(90));
    out.c.r.p99us = sim::toMicroseconds(lat.percentile(99));
    out.c.shed = sumCounter(cluster, &core::Dispatcher::admissionStats,
                            "shed_ring_full");
    out.c.admitted = sumCounter(
        cluster, &core::Dispatcher::admissionStats, "admitted");
    out.c.serverDrops = out.c.shed;
    for (const char *drop :
         {"dropped_oversized", "dropped_no_tag", "dropped_ring_full",
          "dropped_transport", "dropped_no_live_queue",
          "dropped_tenant_reject"})
        out.c.serverDrops +=
            sumCounter(cluster, &core::Dispatcher::stats, drop);

    fp << "now=" << ss.shard(0).now() << "\n";
    sim::mergedJson(fp,
                    sim::mergeRegistries(ss.registries(), "sim.shard"));
    out.fp = fp.str();
    return out;
}

/** The --shards entry point: bit-exactness vs --shards 1, then the
 *  core-gated wall-clock speedup floor. @return exit code. */
int
runSharded(unsigned shards, unsigned threads, bool fast)
{
    constexpr int kMachines = 4;
    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    banner("tab_cluster_scale --shards",
           "4-machine cluster on the deterministic parallel engine",
           "extension — sharded execution must be bit-identical to "
           "--shards 1 and buy wall-clock on real cores");
    std::printf("  shards %u, worker threads %u (%u cores)\n\n",
                shards, threads ? threads : std::min(shards, cores),
                cores);

    BenchJson json("cluster_scale_sharded");
    bool ok = true;
    auto fail = [&](const char *what) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ok = false;
    };

    double wallBase = 0, wallSharded = 0;
    std::printf("  %-5s %-7s %10s %8s %8s %9s %9s %8s\n", "load",
                "shards", "tput/s", "p50us", "p99us", "wall_s",
                "speedup", "exact");
    for (double f : {0.6, 1.5}) {
        ShardedRun base = measureSharded(kMachines, 1, 1, f, fast);
        ShardedRun run =
            measureSharded(kMachines, shards, threads, f, fast);
        bool exact = base.fp == run.fp;
        double speedup = base.wallS / run.wallS;
        wallBase += base.wallS;
        wallSharded += run.wallS;
        std::printf("  %-5.2f %-7d %10.0f %8.1f %8.1f %9.3f %9s %8s\n",
                    f, 1, base.c.r.rps, base.c.r.p50us, base.c.r.p99us,
                    base.wallS, "-", "-");
        std::printf("  %-5.2f %-7u %10.0f %8.1f %8.1f %9.3f %8.2fx %8s\n",
                    f, shards, run.c.r.rps, run.c.r.p50us,
                    run.c.r.p99us, run.wallS, speedup,
                    exact ? "yes" : "NO");
        for (const ShardedRun *sr : {&base, &run}) {
            json.addRow(
                {{"load_factor", f},
                 {"shards", sr == &base ? 1 : static_cast<int>(shards)},
                 {"threads",
                  sr == &base ? 1 : static_cast<int>(threads)},
                 {"tput_rps", sr->c.r.rps},
                 {"p50_us", sr->c.r.p50us},
                 {"p99_us", sr->c.r.p99us},
                 {"completed", sr->c.r.completed},
                 {"sent", sr->c.sent},
                 {"lost", sr->c.lost},
                 {"shed", sr->c.shed},
                 {"conserved", sr->c.conserved},
                 {"wall_s", sr->wallS},
                 {"bit_exact_vs_shards1", exact},
                 {"cores", static_cast<int>(cores)}});
        }
        if (!exact)
            fail("sharded run is not bit-identical to --shards 1");
        for (const ShardedRun *sr : {&base, &run}) {
            if (!sr->c.conserved)
                fail("open-loop conservation ledger does not balance");
            if (sr->c.inFlight != 0)
                fail("requests still in flight after the drain "
                     "horizon");
            if (sr->c.r.failures != 0)
                fail("response bytes corrupted (validation failures)");
        }
        if (run.c.r.completed == 0)
            fail("sharded cluster completed no requests");
    }

    double speedup = wallBase / wallSharded;
    // The parallel-speedup claim needs the parallelism to exist: on a
    // host with >= `shards` cores the 4-shard sweep must run >= 3x
    // faster than --shards 1; an oversubscribed host can only be held
    // to not collapsing under barrier + mailbox overhead.
    double floor;
    const char *policy;
    if (cores >= shards && shards >= 4) {
        floor = 3.0;
        policy = "full (>= 4 real cores)";
    } else if (cores >= shards && shards >= 2) {
        floor = 1.4;
        policy = "partial (real cores, < 4 shards)";
    } else {
        floor = 0.35;
        policy = "no-collapse only (oversubscribed host)";
    }
    std::printf("\n  aggregate speedup %.2fx vs --shards 1 "
                "(floor %.2fx, policy: %s)\n",
                speedup, floor, policy);
    json.addRow({{"metric", "aggregate_speedup"},
                 {"value", speedup},
                 {"min_accepted", floor},
                 {"policy", policy},
                 {"cores", static_cast<int>(cores)}});
    if (speedup < floor)
        fail("sharded wall-clock speedup below the floor");

    if (ok)
        std::printf("\n  self-check OK: bit-identical to --shards 1, "
                    "ledger exact, speedup policy satisfied\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    unsigned shards = 0, threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0)
            fast = true;
        else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc)
            shards = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = static_cast<unsigned>(std::atoi(argv[++i]));
    }
    if (shards > 0)
        return runSharded(shards, threads, fast);
    banner("tab_cluster_scale",
           "cluster scale-out with RSS steering + admission control "
           "(extension)",
           "not reported in the paper — sharded Lynx machines under "
           "a coordinated-omission-free open loop must scale >= 0.8x "
           "linearly below saturation and degrade gracefully (counted "
           "sheds, bounded p99, zero silent loss) past it");
    BenchJson json("cluster_scale");

    const std::vector<int> sweep = fast ? std::vector<int>{1, 4}
                                        : std::vector<int>{1, 2, 4};
    const double below = 0.6;
    const double above = 1.5;

    std::printf("  %-4s %-5s %10s %10s %10s %8s %8s %10s %10s %8s\n",
                "M", "load", "offer/s", "tput/s", "goodput/s", "p50us",
                "p99us", "lost", "shed", "ledger");
    std::vector<Cell> cells;
    for (int m : sweep) {
        for (double f : {below, above}) {
            Cell c = measure(m, f, fast);
            std::printf("  %-4d %-5.2f %10.0f %10.0f %10.0f %8.1f "
                        "%8.1f %10llu %10llu %8s\n",
                        c.machines, c.loadFactor, c.offeredRps,
                        c.r.rps,
                        static_cast<double>(c.goodput) /
                            sim::toSeconds(fast ? 30_ms : 100_ms),
                        c.r.p50us, c.r.p99us,
                        static_cast<unsigned long long>(c.lost),
                        static_cast<unsigned long long>(c.shed),
                        c.conserved ? "exact" : "BROKEN");
            json.addRow({{"machines", c.machines},
                         {"load_factor", c.loadFactor},
                         {"offered_rps", c.offeredRps},
                         {"tput_rps", c.r.rps},
                         {"p50_us", c.r.p50us},
                         {"p99_us", c.r.p99us},
                         {"sent", c.sent},
                         {"completed", c.r.completed},
                         {"goodput", c.goodput},
                         {"lost", c.lost},
                         {"late", c.late},
                         {"in_flight", c.inFlight},
                         {"validation_failures", c.r.failures},
                         {"admitted", c.admitted},
                         {"shed", c.shed},
                         {"server_drops", c.serverDrops},
                         {"rss_picks", c.rssPicks},
                         {"rss_fallbacks", c.rssFallbacks},
                         {"conserved", c.conserved}});
            cells.push_back(c);
        }
    }

    auto cell = [&](int m, double f) -> const Cell & {
        for (const Cell &c : cells)
            if (c.machines == m && c.loadFactor == f)
                return c;
        std::abort();
    };

    bool ok = true;
    auto fail = [&](const char *what) {
        std::fprintf(stderr, "FAIL: %s\n", what);
        ok = false;
    };

    for (const Cell &c : cells) {
        if (!c.conserved)
            fail("open-loop conservation ledger does not balance");
        if (c.inFlight != 0)
            fail("requests still in flight after the drain horizon");
        if (c.r.failures != 0)
            fail("response bytes corrupted (validation failures)");
        if (c.rssPicks == 0)
            fail("RSS steering never picked a queue");
        if (c.rssFallbacks != 0)
            fail("RSS fell back off a healthy home queue");
    }

    // Linear scaling below saturation: the biggest cluster must
    // complete >= 0.8x (machines ratio) of the 1-machine rate.
    const int maxM = sweep.back();
    const Cell &one = cell(1, below);
    const Cell &big = cell(maxM, below);
    if (big.r.rps < 0.8 * maxM * one.r.rps)
        fail("sub-linear scaling below saturation (< 0.8x linear)");
    for (int m : sweep) {
        const Cell &c = cell(m, below);
        if (c.r.p99us > 2000.0)
            fail("below-saturation p99 above 2 ms");
        if (c.lost != 0)
            fail("losses below saturation");
    }

    // Graceful degradation past saturation: shed-and-count, keep the
    // served tail bounded, and never lose a request silently.
    for (int m : sweep) {
        const Cell &c = cell(m, above);
        if (c.shed == 0)
            fail("overload produced no counted sheds");
        if (c.r.p99us > sim::toMicroseconds(kSlo))
            fail("overload p99 of served requests above the SLO "
                 "envelope");
        if (c.lost > c.serverDrops)
            fail("silent loss: client-observed losses exceed counted "
                 "server-side sheds/drops");
        if (c.r.completed == 0)
            fail("overload starved the cluster completely");
    }

    if (ok)
        std::printf("\n  self-check OK: >= 0.8x linear scaling below "
                    "saturation, counted sheds + bounded p99 + exact "
                    "ledger past it\n");
    return ok ? 0 : 1;
}

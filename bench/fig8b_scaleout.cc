/**
 * @file
 * Figure 8b — "Lynx scaleout to remote GPUs": a single Bluefield
 * drives 4 local K80s, then 4+4 and 4+8 with the extra GPUs in one
 * or two remote machines. The paper reports linear scaling (~3300
 * req/s per K80) and ~8 us of added latency for remote GPUs.
 */

#include "common.hh"

#include "workload/datagen.hh"

using namespace lynxbench;

namespace {

struct ScaleResult
{
    RunResult result;
    double localP50 = 0, remoteP50 = 0;
};

ScaleResult
measure(int localGpus, int remoteGpus)
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bf(s, network, "bf0");
    auto &clientNic = network.addNic("client");
    apps::LeNet model;

    accel::GpuConfig k80;
    k80.blockSlots = 208;
    k80.clockScale = calibration::k80ClockScale;
    k80.memBytes = 4ull << 20;

    // Local server + up to two remote servers with 4 GPUs each.
    std::vector<std::unique_ptr<host::Node>> servers;
    std::vector<std::unique_ptr<accel::Gpu>> gpus;
    std::vector<bool> isRemote;
    int nServers = 1 + (remoteGpus + 3) / 4;
    for (int m = 0; m < nServers; ++m) {
        servers.push_back(std::make_unique<host::Node>(
            s, network, "server" + std::to_string(m)));
    }
    for (int g = 0; g < localGpus + remoteGpus; ++g) {
        int m = g < localGpus ? 0 : 1 + (g - localGpus) / 4;
        gpus.push_back(std::make_unique<accel::Gpu>(
            s, "k80-" + std::to_string(g), servers[static_cast<
                std::size_t>(m)]->fabric(), k80));
        isRemote.push_back(m != 0);
    }

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    rdma::RdmaPathModel local;
    auto remote = local.viaNetwork(calibration::rdmaRemoteExtraOneWay);
    std::vector<core::AccelHandle *> handles;
    for (std::size_t g = 0; g < gpus.size(); ++g) {
        handles.push_back(&rt.addAccelerator(
            gpus[g]->name(), gpus[g]->memory(),
            isRemote[g] ? remote : local));
    }
    core::ServiceConfig scfg;
    scfg.name = "lenet";
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);

    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    for (std::size_t g = 0; g < gpus.size(); ++g) {
        auto qs = rt.makeAccelQueues(svc, *handles[g]);
        sim::spawn(s, apps::runLenetServer(*gpus[g], *qs[0], model));
        for (auto &q : qs)
            queues.push_back(std::move(q));
    }
    rt.start();

    int total = localGpus + remoteGpus;
    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 2 * total;
    lg.warmup = 20_ms;
    lg.duration = 200_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return workload::synthMnist(static_cast<int>(seq % 10), seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 10_ms);

    ScaleResult r;
    r.result = collect(gen);
    return r;
}

/** Unloaded local-vs-remote latency comparison (one of each). */
void
latencyDelta()
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bf(s, network, "bf0");
    auto &clientNic = network.addNic("client");
    host::Node local(s, network, "server0");
    host::Node remoteHost(s, network, "server1");
    accel::GpuConfig k80;
    k80.blockSlots = 208;
    k80.clockScale = calibration::k80ClockScale;
    k80.memBytes = 4ull << 20;
    accel::Gpu gpuL(s, "k80-local", local.fabric(), k80);
    accel::Gpu gpuR(s, "k80-remote", remoteHost.fabric(), k80);
    apps::LeNet model;

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    rdma::RdmaPathModel lp;
    auto &hl = rt.addAccelerator("l", gpuL.memory(), lp);
    auto &hr = rt.addAccelerator(
        "r", gpuR.memory(),
        lp.viaNetwork(calibration::rdmaRemoteExtraOneWay));
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto ql = rt.makeAccelQueues(svc, hl);
    auto qr = rt.makeAccelQueues(svc, hr);
    sim::spawn(s, apps::runLenetServer(gpuL, *ql[0], model));
    sim::spawn(s, apps::runLenetServer(gpuR, *qr[0], model));
    rt.start();

    auto &ep = clientNic.bind(net::Protocol::Udp, 40000);
    std::vector<double> lat;
    auto client = [&]() -> sim::Task {
        for (int i = 0; i < 8; ++i) { // round-robin local/remote
            net::Message m;
            m.src = {clientNic.node(), 40000};
            m.dst = {bf.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = workload::synthMnist(i, 0);
            sim::Tick t0 = s.now();
            co_await clientNic.send(std::move(m));
            (void)co_await ep.recv();
            lat.push_back(sim::toMicroseconds(s.now() - t0));
        }
    };
    sim::spawn(s, client());
    s.run();
    double localAvg = (lat[0] + lat[2] + lat[4] + lat[6]) / 4;
    double remoteAvg = (lat[1] + lat[3] + lat[5] + lat[7]) / 4;
    std::printf("\nunloaded request latency: local GPU %.1f us, remote "
                "GPU %.1f us -> +%.1f us (paper: ~8 us)\n",
                localAvg, remoteAvg, remoteAvg - localAvg);
}

} // namespace

int
main()
{
    banner("fig8b", "scaleout to remote GPUs (K80s across 3 machines)",
           "throughput scales linearly with the number of GPUs, "
           "regardless whether remote or local (~3300 req/s per K80); "
           "remote adds ~8 us");

    struct Config
    {
        int local, remote;
    };
    const Config configs[] = {{4, 0}, {4, 4}, {4, 8}};
    double perGpuFirst = 0;

    std::printf("%12s | %10s | %10s | %8s\n", "config", "req/s",
                "req/s/GPU", "scaling");
    for (const Config &c : configs) {
        ScaleResult r = measure(c.local, c.remote);
        int n = c.local + c.remote;
        double perGpu = r.result.rps / n;
        if (c.remote == 0)
            perGpuFirst = perGpu;
        std::printf("%2d loc %2d rem | %10.0f | %10.0f | %7.2fx\n",
                    c.local, c.remote, r.result.rps, perGpu,
                    perGpu / perGpuFirst);
    }
    latencyDelta();
    return 0;
}

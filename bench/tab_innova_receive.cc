/**
 * @file
 * §6.2 "Bluefield vs Innova FPGA" — receive-path throughput of the
 * Lynx network server into 240 mqueues of one GPU, 64 B UDP messages
 * (the Innova prototype implements the receive path only).
 *
 * Paper: "Innova achieves 7.4M packets/sec compared to 0.5M
 * packets/sec on Bluefield. The CPU-centric design running on six
 * cores is 80x slower [than Innova]."
 */

#include "common.hh"

#include "snic/innova.hh"

using namespace lynxbench;

namespace {

constexpr int kQueues = 240;
constexpr sim::Tick kWindow = 20_ms;

/** Blast 64 B datagrams as fast as the link carries them. */
sim::Task
blaster(sim::Simulator &s, net::Nic &nic, net::Address dst)
{
    while (s.now() < kWindow) {
        net::Message m;
        m.src = {nic.node(), 1};
        m.dst = dst;
        m.proto = net::Protocol::Udp;
        m.payload.assign(64, 0xab);
        co_await nic.send(std::move(m));
    }
}

/** Count messages landing in the accelerator's mqueues in-window. */
struct RxCounter
{
    sim::Simulator &s;
    std::uint64_t count = 0;

    sim::Task
    consume(core::AccelQueue &q)
    {
        for (;;) {
            (void)co_await q.recv();
            if (s.now() < kWindow)
                ++count;
        }
    }
};

double
measureInnova()
{
    sim::Simulator s;
    net::Network nw(s);
    snic::InnovaAfu innova(s, nw, "innova0");
    auto &client = nw.addNic("client", {40.0, 300_ns, 1 << 16});
    pcie::DeviceMemory gpuMem("gpu0.mem", 64 << 20);
    rdma::QueuePair qp(s, "qp", gpuMem, rdma::RdmaPathModel{});

    std::vector<std::unique_ptr<core::SnicMqueue>> mqs;
    std::vector<std::unique_ptr<core::AccelQueue>> gios;
    std::vector<core::SnicMqueue *> raw;
    std::uint64_t base = 0;
    RxCounter counter{s};
    for (int i = 0; i < kQueues; ++i) {
        core::MqueueLayout l{base, 64, 256};
        base += l.totalBytes() + 64;
        mqs.push_back(std::make_unique<core::SnicMqueue>(
            s, "mq" + std::to_string(i), qp, l,
            core::MqueueKind::Server));
        gios.push_back(std::make_unique<core::AccelQueue>(
            s, "gio" + std::to_string(i), gpuMem, l));
        raw.push_back(mqs.back().get());
    }
    for (auto &g : gios)
        sim::spawn(s, counter.consume(*g));
    innova.attachReceiveService(9000, raw);
    sim::spawn(s, blaster(s, client, {innova.node(), 9000}));
    s.runUntil(kWindow + 2_ms);
    std::fprintf(stderr,
                 "[innova] delivered=%llu ring_full=%llu nic_drop=%llu\n",
                 (unsigned long long)innova.stats().counterValue(
                     "afu_delivered"),
                 (unsigned long long)innova.stats().counterValue(
                     "afu_ring_full"),
                 (unsigned long long)innova.nic().stats().counterValue(
                     "rx_drop_udp"));
    return static_cast<double>(counter.count) / sim::toSeconds(kWindow);
}

double
measureInnovaEcho()
{
    // EXTENSION (§5.2 future work): full-duplex AFU service over
    // one-sided-RDMA rings, no CPU helper threads.
    sim::Simulator s;
    net::Network nw(s);
    snic::InnovaAfu innova(s, nw, "innova0");
    auto &client = nw.addNic("client", {40.0, 300_ns, 1 << 16});
    pcie::DeviceMemory gpuMem("gpu0.mem", 64 << 20);
    rdma::QueuePair qp(s, "qp", gpuMem, rdma::RdmaPathModel{});

    std::vector<std::unique_ptr<core::SnicMqueue>> mqs;
    std::vector<std::unique_ptr<core::AccelQueue>> gios;
    std::vector<core::SnicMqueue *> raw;
    std::uint64_t base = 0;
    std::uint64_t echoed = 0;
    for (int i = 0; i < kQueues; ++i) {
        core::MqueueLayout l{base, 64, 256};
        base += l.totalBytes() + 64;
        mqs.push_back(std::make_unique<core::SnicMqueue>(
            s, "mq" + std::to_string(i), qp, l,
            core::MqueueKind::Server));
        gios.push_back(std::make_unique<core::AccelQueue>(
            s, "gio" + std::to_string(i), gpuMem, l));
        raw.push_back(mqs.back().get());
    }
    auto echoWorker = [&](core::AccelQueue &q) -> sim::Task {
        for (;;) {
            core::GioMessage m = co_await q.recv();
            co_await q.send(m.tag, m.payload);
            if (s.now() < kWindow)
                ++echoed;
        }
    };
    for (auto &g : gios)
        sim::spawn(s, echoWorker(*g));
    innova.attachEchoService(9000, raw);
    sim::spawn(s, blaster(s, client, {innova.node(), 9000}));
    s.runUntil(kWindow + 2_ms);
    return static_cast<double>(echoed) / sim::toSeconds(kWindow);
}

double
measureLynxReceive(bool bluefield)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    host::Node server(s, nw, "server0");
    auto &client = nw.addNic("client", {40.0, 300_ns, 1 << 16});
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    RxCounter counter{s};

    core::RuntimeConfig cfg =
        bluefield ? bf.lynxRuntimeConfig()
                  : snic::hostRuntimeConfig(
                        {&server.cores()[0], &server.cores()[1],
                         &server.cores()[2], &server.cores()[3],
                         &server.cores()[4], &server.cores()[5]},
                        server.nic());
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "rx";
    scfg.port = 9000;
    scfg.queuesPerAccel = kQueues;
    scfg.ringSlots = 64;
    scfg.slotBytes = 256;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    for (auto &q : queues)
        sim::spawn(s, counter.consume(*q));
    rt.start();
    sim::spawn(s, blaster(s, client,
                          {bluefield ? bf.node() : server.id(), 9000}));
    s.runUntil(kWindow + 2_ms);
    return static_cast<double>(counter.count) / sim::toSeconds(kWindow);
}

double
measureHostCentricReceive()
{
    // CPU-centric receive: six cores receive UDP and ship each
    // message to the GPU with a driver-mediated async copy.
    sim::Simulator s;
    net::Network nw(s);
    host::Node server(s, nw, "server0");
    auto &client = nw.addNic("client", {40.0, 300_ns, 1 << 16});
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    accel::GpuDriver driver(s, gpu);

    net::Endpoint &ep = server.nic().bind(net::Protocol::Udp, 9000);
    std::uint64_t received = 0;
    auto stack = calibration::vmaXeon();
    auto worker = [&](sim::Core &core) -> sim::Task {
        accel::Stream st(s, driver);
        for (;;) {
            net::Message m = co_await ep.recv();
            co_await core.exec(
                stack.cost(net::Protocol::Udp, net::Dir::Recv,
                           m.size()));
            co_await st.memcpyH2D(core, m.size());
            if (s.now() < kWindow)
                ++received;
        }
    };
    for (std::size_t i = 0; i < 6; ++i)
        sim::spawn(s, worker(server.cores()[i]));
    sim::spawn(s, blaster(s, client, {server.id(), 9000}));
    s.runUntil(kWindow + 2_ms);
    return static_cast<double>(received) / sim::toSeconds(kWindow);
}

} // namespace

int
main()
{
    banner("tab_innova_receive",
           "receive-path throughput into 240 mqueues, 64 B UDP",
           "Innova (FPGA AFU) 7.4 M pkt/s; Bluefield 0.5 M pkt/s; "
           "six-core CPU-centric 80x slower than Innova — 'the more "
           "specialized the SNIC, the higher its performance "
           "potential'");

    double innova = measureInnova();
    double innovaEcho = measureInnovaEcho();
    double bfRate = measureLynxReceive(true);
    double host = measureHostCentricReceive();

    std::printf("%24s | %12s | %14s\n", "platform", "Mpkt/s",
                "vs innova");
    std::printf("%24s | %12.2f | %14s\n", "innova (AFU)", innova / 1e6,
                "1.0x");
    std::printf("%24s | %12.2f | %13.1fx\n", "bluefield (lynx)",
                bfRate / 1e6, innova / bfRate);
    std::printf("%24s | %12.2f | %13.1fx\n", "host-centric (6 cores)",
                host / 1e6, innova / host);
    std::printf("%24s | %12.2f | %14s\n",
                "innova full-duplex (ext)", innovaEcho / 1e6,
                "(extension)");
    std::printf("\nordering reproduced: specialized FPGA >> "
                "SNIC cores >> CPU-centric (paper factors: 14.8x and "
                "80x).\nthe extension row implements the paper's "
                "stated future work: the send path over one-sided-RDMA "
                "rings, no CPU helper threads (§5.2).\n");
    return 0;
}

/**
 * @file
 * Figure 6 — "Relative throughput of GPU server implementations for
 * different request execution times (higher is better)".
 *
 * Sweep: request execution time {20, 200, 800, 1600} us × mqueue
 * count {1, 120, 240}; 64 B UDP messages. Throughput of each Lynx
 * placement is reported relative to the host-centric baseline of the
 * same configuration, as in the paper.
 *
 * Writes BENCH_fig6_throughput.json; `--fast` shrinks the sweep to
 * one cell per platform for CI smoke use.
 */

#include <cstring>

#include "common.hh"

using namespace lynxbench;

namespace {

RunResult
measure(Platform p, int mqueues, sim::Tick procTime)
{
    EchoWorld world(p, mqueues, procTime);
    // Enough closed-loop clients to saturate: ~2 per queue, capped to
    // keep the run small; 1-queue configs still need a few.
    int conc = std::min(2 * mqueues + 2, 512);
    return world.run(conc);
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;

    banner("fig6", "throughput speedup over the host-centric baseline",
           "Lynx-on-Bluefield up to 15.3x for short requests with many "
           "mqueues; always above one Xeon core; ~4 host cores match "
           "the Bluefield; a single host core cannot drive 240 mqueues "
           "even at 1.6 ms requests");

    const std::vector<sim::Tick> times =
        fast ? std::vector<sim::Tick>{20_us}
             : std::vector<sim::Tick>{20_us, 200_us, 800_us, 1600_us};
    const std::vector<int> queueCounts =
        fast ? std::vector<int>{1} : std::vector<int>{1, 120, 240};
    const Platform lynxes[] = {Platform::LynxXeon1, Platform::LynxXeon6,
                               Platform::LynxBluefield};

    BenchJson json("fig6_throughput");

    std::printf("%8s %7s | %12s | %10s %10s %10s   (speedup vs host)\n",
                "exec", "queues", "host [req/s]", "xeon1", "xeon6",
                "bluefield");
    for (sim::Tick t : times) {
        for (int q : queueCounts) {
            RunResult host = measure(Platform::HostCentric, q, t);
            std::printf("%6.0fus %7d | %12.0f |", sim::toMicroseconds(t),
                        q, host.rps);
            json.addRow({{"exec_us", sim::toMicroseconds(t)},
                         {"queues", q},
                         {"platform", platformName(Platform::HostCentric)},
                         {"rps", host.rps},
                         {"speedup", 1.0},
                         {"p50_us", host.p50us},
                         {"p99_us", host.p99us}});
            for (Platform p : lynxes) {
                RunResult r = measure(p, q, t);
                std::printf(" %9.1fx", r.rps / host.rps);
                json.addRow({{"exec_us", sim::toMicroseconds(t)},
                             {"queues", q},
                             {"platform", platformName(p)},
                             {"rps", r.rps},
                             {"speedup", r.rps / host.rps},
                             {"p50_us", r.p50us},
                             {"p99_us", r.p99us}});
            }
            std::printf("\n");
        }
    }
    std::printf("\nreference points: paper reports 2x (20us, 1 queue) "
                "and 15.3x (short requests, many queues) for "
                "Lynx-on-Bluefield.\n");
    return 0;
}

/**
 * @file
 * Figure 6 — "Relative throughput of GPU server implementations for
 * different request execution times (higher is better)".
 *
 * Sweep: request execution time {20, 200, 800, 1600} us × mqueue
 * count {1, 120, 240}; 64 B UDP messages. Throughput of each Lynx
 * placement is reported relative to the host-centric baseline of the
 * same configuration, as in the paper.
 */

#include "common.hh"

using namespace lynxbench;

namespace {

RunResult
measure(Platform p, int mqueues, sim::Tick procTime)
{
    EchoWorld world(p, mqueues, procTime);
    // Enough closed-loop clients to saturate: ~2 per queue, capped to
    // keep the run small; 1-queue configs still need a few.
    int conc = std::min(2 * mqueues + 2, 512);
    return world.run(conc);
}

} // namespace

int
main()
{
    banner("fig6", "throughput speedup over the host-centric baseline",
           "Lynx-on-Bluefield up to 15.3x for short requests with many "
           "mqueues; always above one Xeon core; ~4 host cores match "
           "the Bluefield; a single host core cannot drive 240 mqueues "
           "even at 1.6 ms requests");

    const sim::Tick times[] = {20_us, 200_us, 800_us, 1600_us};
    const int queueCounts[] = {1, 120, 240};
    const Platform lynxes[] = {Platform::LynxXeon1, Platform::LynxXeon6,
                               Platform::LynxBluefield};

    std::printf("%8s %7s | %12s | %10s %10s %10s   (speedup vs host)\n",
                "exec", "queues", "host [req/s]", "xeon1", "xeon6",
                "bluefield");
    for (sim::Tick t : times) {
        for (int q : queueCounts) {
            RunResult host = measure(Platform::HostCentric, q, t);
            std::printf("%6.0fus %7d | %12.0f |", sim::toMicroseconds(t),
                        q, host.rps);
            for (Platform p : lynxes) {
                RunResult r = measure(p, q, t);
                std::printf(" %9.1fx", r.rps / host.rps);
            }
            std::printf("\n");
        }
    }
    std::printf("\nreference points: paper reports 2x (20us, 1 queue) "
                "and 15.3x (short requests, many queues) for "
                "Lynx-on-Bluefield.\n");
    return 0;
}

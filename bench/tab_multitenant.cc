/**
 * @file
 * Multi-tenant isolation table (extension — see DESIGN.md §9): two
 * hundred tenants with Zipf-skewed load share one Lynx dispatch
 * plane while a single *bully* tenant bursts to 10x its steady rate.
 * Sweeps {unvirtualized, virtualized} x {quiet, burst}:
 *
 *  - baseline: the seed dispatch plane — one shared FIFO into the
 *    RX rings. The bully's burst pins the rings full, so an innocent
 *    tenant's requests queue behind (and get dropped with) the
 *    flood;
 *
 *  - tenant-vf: the TenantTable plane — per-tenant admission caps,
 *    mqueue quotas and WRR traffic classes. The bully is clamped to
 *    its quota of ring slots and its cap of in-flight requests;
 *    excess arrivals are rejected-and-counted, and the victim's
 *    class keeps its weighted share of every placement round.
 *
 * Self-check (non-zero exit on violation): the bully's 10x burst
 * must move the victim's p99 by < 5% with the tenant plane on (at
 * undiminished victim goodput — a flat tail over a starved sample
 * would prove nothing), the unvirtualized baseline must be visibly
 * harmed by the same burst — a >= 1.25x p99 regression, or outright
 * starvation (completions collapse / timeouts) when the flood pins
 * the shared tag table and the victim's requests are dropped — the
 * bully's rejections must be counted (the SLA knob is live), and
 * byte-validation failures must stay 0 in every cell —
 * virtualization may defer or reject, never corrupt.
 *
 * Writes BENCH_multitenant.json; `--fast` shrinks the window for CI
 * smoke use.
 */

#include <cstring>

#include "common.hh"

#include "lynx/tenant.hh"
#include "pcie/fabric.hh"
#include "sim/task.hh"

using namespace lynxbench;

namespace {

/** Background population: hundreds of tenants, Zipf-skewed. */
constexpr int kBackgroundTenants = 200;
constexpr double kZipfSkew = 1.0;

/** Aggregate background offered load, requests/second. Sized to
 *  ~45% of the ring-service capacity (4 rings x ~60 us/request):
 *  healthy queueing, no standing congestion. */
constexpr double kBackgroundRps = 30'000.0;

/** The bully's steady rate. Deliberately above its quota-clamped
 *  service share, so its ring footprint is identical in the quiet
 *  and burst cells — the burst changes only how much gets rejected,
 *  which is exactly the isolation claim under test. */
constexpr double kBullyQuietRps = 14'000.0;
constexpr double kBurstFactor = 10.0;

/** Echo processing time per request: makes the accelerator rings
 *  (not the SNIC ARM dispatch cores) the contended resource, so the
 *  contention lives where the quotas do. */
constexpr sim::Tick kProcTime = 50_us;

constexpr std::size_t kVictimPayload = 256;

core::TenantId kVictimTenant = 0; ///< assigned at registration
core::TenantId kBullyTenant = 0;
constexpr core::TenantId kFirstBackgroundTenant = 3;

std::vector<std::uint8_t>
victimPayloadFor(std::uint64_t seq)
{
    std::vector<std::uint8_t> p(kVictimPayload);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 181 + b * 37 + 3);
    return p;
}

/** Open-loop Poisson sender multiplexing kBackgroundTenants tenant
 *  ids from one NIC, ranks drawn Zipf(kZipfSkew) per request — two
 *  hundred VFs without two hundred simulated client machines. */
sim::Task
zipfBackground(sim::Simulator &s, net::Nic &nic, net::Address target,
               double rps, sim::Tick until, std::uint64_t seed)
{
    sim::Rng rng(seed);
    sim::ZipfDist zipf(kBackgroundTenants, kZipfSkew);
    const double meanGapNs = 1e9 / rps;
    std::uint64_t seq = 0;
    while (s.now() < until) {
        co_await sim::sleep(
            1 + static_cast<sim::Tick>(rng.exponential(meanGapNs)));
        net::Message m;
        m.src = {nic.node(), 45000};
        m.dst = target;
        m.payload.assign(64, 0x5b);
        m.seq = seq++;
        m.tenant = static_cast<std::uint16_t>(kFirstBackgroundTenant +
                                              zipf(rng));
        co_await nic.send(std::move(m));
    }
}

/** Discard background echo responses so the endpoint queue drains. */
sim::Task
drainResponses(net::Endpoint &ep)
{
    for (;;)
        co_await ep.recv();
}

struct TenantCell
{
    RunResult victim;
    std::uint64_t bullyRejected = 0;
    std::uint64_t bullyAdmitted = 0;
    std::uint64_t victimRejected = 0;
    std::uint64_t dispatcherRejects = 0;
};

/**
 * One deployment: a Bluefield fronting one local GPU with 4 echo
 * rings, 200 Zipf background tenants, the bully (burst or quiet) and
 * one closed-loop byte-validating victim.
 */
TenantCell
measure(bool virtualized, double bullyRps, bool fast)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpu(s, "gpu0", fabric);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    if (virtualized) {
        cfg.tenancy.enabled = true;
        cfg.tenancy.autoRegister = true; // background VFs on first sight
        cfg.tenancy.defaults.weight = 1;
        cfg.tenancy.defaults.maxInFlight = 8;
        cfg.tenancy.defaults.mqueueQuota = 4;
    }
    core::Runtime rt(s, cfg);

    if (virtualized) {
        // The victim's VF: a fat weight and enough quota that its 4
        // closed-loop workers are never deferred behind the plane.
        core::TenantQuota vq;
        vq.weight = 8;
        vq.maxInFlight = 0;
        vq.mqueueQuota = 8;
        kVictimTenant = rt.tenants()->add(vq);
        // The bully's VF: one ring slot at a time, eight admitted
        // requests total — everything beyond is a counted rejection.
        core::TenantQuota bq;
        bq.weight = 1;
        bq.maxInFlight = 8;
        bq.mqueueQuota = 1;
        kBullyTenant = rt.tenants()->add(bq);
    } else {
        kVictimTenant = 1;
        kBullyTenant = 2;
    }

    auto &accel = rt.addAccelerator("gpu0", gpu.memory(), {});
    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 4;
    scfg.ringSlots = 32;
    auto &svc = rt.addService(scfg);
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    for (auto &q : rt.makeAccelQueues(svc, accel)) {
        sim::spawn(s, apps::runEchoBlock(gpu, *q, kProcTime));
        queues.push_back(std::move(q));
    }
    rt.start();

    sim::Tick warmup = fast ? 10_ms : 20_ms;
    sim::Tick duration = fast ? 40_ms : 100_ms;
    sim::Tick until = warmup + duration;

    auto &bgNic = nw.addNic("background");
    net::Endpoint &bgEp = bgNic.bind(net::Protocol::Udp, 45000);
    sim::spawn(s, zipfBackground(s, bgNic, {bf.node(), 7000},
                                 kBackgroundRps, until, 77));
    sim::spawn(s, drainResponses(bgEp));

    auto &bullyNic = nw.addNic("bully");
    workload::LoadGenConfig blg;
    blg.nic = &bullyNic;
    blg.target = {bf.node(), 7000};
    blg.openRate = bullyRps;
    blg.warmup = warmup;
    blg.duration = duration;
    blg.tenant = kBullyTenant;
    blg.seed = 5;
    blg.makeRequest = [](std::uint64_t, sim::Rng &) {
        return std::vector<std::uint8_t>(64, 0xb1);
    };
    workload::LoadGen bully(s, blg);

    auto &victimNic = nw.addNic("victim");
    workload::LoadGenConfig vlg;
    vlg.nic = &victimNic;
    vlg.target = {bf.node(), 7000};
    vlg.concurrency = 4;
    vlg.warmup = warmup;
    vlg.duration = duration;
    vlg.tenant = kVictimTenant;
    vlg.thinkTime = 1_ms;
    // Generous: only a genuinely dropped request times out, so the
    // latency histogram keeps the congested completions it needs to
    // show the baseline regression.
    vlg.requestTimeout = 50_ms;
    vlg.seed = 9;
    vlg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return victimPayloadFor(seq);
    };
    vlg.validate = [](const net::Message &resp) {
        return resp.payload == victimPayloadFor(resp.seq);
    };
    workload::LoadGen victim(s, vlg);

    bully.start();
    victim.start();
    s.runUntil(victim.windowEnd() + 20_ms);

    TenantCell out;
    out.victim = collect(victim);
    if (core::TenantTable *t = rt.tenants()) {
        out.bullyRejected =
            t->statsOf(kBullyTenant).counterValue("rejected");
        out.bullyAdmitted =
            t->statsOf(kBullyTenant).counterValue("admitted");
        out.victimRejected =
            t->statsOf(kVictimTenant).counterValue("rejected");
        out.dispatcherRejects = svc.dispatcher().stats().counterValue(
            "dropped_tenant_reject");
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;
    banner("tab_multitenant",
           "multi-tenant dispatch-plane virtualization (extension)",
           "not reported in the paper — per-tenant VFs (admission "
           "caps + mqueue quotas + WRR classes, paper §4.5 direction) "
           "must hold an innocent tenant's p99 within 5% under a "
           "10x tenant burst that visibly degrades the unvirtualized "
           "plane");
    BenchJson json("multitenant");

    std::printf("%10s | %6s | %9s | %9s | %9s | %8s | %10s | %10s\n",
                "plane", "bully", "vict p50", "vict p99", "vict tput",
                "timeouts", "bully rej", "disp rej");

    double cell[2][2] = {};        // [virtualized][burst] -> victim p99us
    std::uint64_t done[2][2] = {}; // -> victim in-window completions
    std::uint64_t touts[2][2] = {}; // -> victim timeouts
    std::uint64_t failures = 0;
    std::uint64_t burstRejections = 0;
    for (bool virtualized : {false, true}) {
        for (bool burst : {false, true}) {
            double rps = kBullyQuietRps * (burst ? kBurstFactor : 1.0);
            TenantCell c = measure(virtualized, rps, fast);
            failures += c.victim.failures;
            cell[virtualized][burst] = c.victim.p99us;
            done[virtualized][burst] = c.victim.completed;
            touts[virtualized][burst] = c.victim.timeouts;
            if (virtualized && burst)
                burstRejections = c.bullyRejected;
            std::printf("%10s | %6s | %7.1fus | %7.1fus | %6.1fKrps | "
                        "%8llu | %10llu | %10llu\n",
                        virtualized ? "tenant-vf" : "baseline",
                        burst ? "10x" : "1x", c.victim.p50us,
                        c.victim.p99us, c.victim.rps / 1e3,
                        static_cast<unsigned long long>(
                            c.victim.timeouts),
                        static_cast<unsigned long long>(
                            c.bullyRejected),
                        static_cast<unsigned long long>(
                            c.dispatcherRejects));
            json.addRow(
                {{"plane", virtualized ? "tenant-vf" : "baseline"},
                 {"bully_burst", burst},
                 {"bully_offered_rps", rps},
                 {"background_tenants", kBackgroundTenants},
                 {"victim_p50us", c.victim.p50us},
                 {"victim_p99us", c.victim.p99us},
                 {"victim_ktps", c.victim.rps / 1e3},
                 {"victim_timeouts", c.victim.timeouts},
                 {"victim_failures", c.victim.failures},
                 {"bully_admitted", c.bullyAdmitted},
                 {"bully_rejected", c.bullyRejected},
                 {"victim_rejected", c.victimRejected},
                 {"dispatcher_rejects", c.dispatcherRejects}});
        }
    }

    double basQuiet = cell[0][0], basBurst = cell[0][1];
    double vfQuiet = cell[1][0], vfBurst = cell[1][1];

    bool ok = true;
    if (failures != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu byte-validation failures — "
                     "virtualization must never corrupt\n",
                     static_cast<unsigned long long>(failures));
        ok = false;
    }
    if (vfBurst > vfQuiet * 1.05) {
        std::fprintf(stderr,
                     "FAIL: tenant-vf victim p99 moved %.1fus -> "
                     "%.1fus (> 5%%) under the 10x burst\n",
                     vfQuiet, vfBurst);
        ok = false;
    }
    if (touts[1][1] != 0 || done[1][1] * 2 <= done[1][0]) {
        std::fprintf(stderr,
                     "FAIL: tenant-vf victim goodput collapsed under "
                     "the burst (%llu -> %llu completions, %llu "
                     "timeouts) — a flat p99 over a starved sample "
                     "proves nothing\n",
                     static_cast<unsigned long long>(done[1][0]),
                     static_cast<unsigned long long>(done[1][1]),
                     static_cast<unsigned long long>(touts[1][1]));
        ok = false;
    }
    // The unvirtualized plane must be visibly harmed by the same
    // burst, in either of the two ways overload manifests: a p99
    // blowup (queueing) or outright victim starvation — the shared
    // tag table drops the victim's requests, so completions collapse
    // and the closed loop burns its whole window in timeouts. Total
    // denial is a stronger failure than a slow answer; accept both.
    bool harmed = basBurst >= basQuiet * 1.25 ||
                  done[0][1] * 2 <= done[0][0] || touts[0][1] > 0;
    if (!harmed) {
        std::fprintf(stderr,
                     "FAIL: baseline victim p99 %.1fus -> %.1fus with "
                     "%llu -> %llu completions — the burst is not "
                     "degrading the unvirtualized plane, so the sweep "
                     "proves nothing\n",
                     basQuiet, basBurst,
                     static_cast<unsigned long long>(done[0][0]),
                     static_cast<unsigned long long>(done[0][1]));
        ok = false;
    }
    if (burstRejections == 0) {
        std::fprintf(stderr,
                     "FAIL: the bully's burst was never rejected — "
                     "the admission cap (SLA knob) is not live\n");
        ok = false;
    }
    std::printf("\nself-check: vf p99 %.1fus -> %.1fus (%.1f%%), "
                "baseline p99 %.1fus -> %.1fus, baseline victim "
                "completions %llu -> %llu, bully rejections %llu "
                "[%s]\n",
                vfQuiet, vfBurst,
                vfQuiet > 0 ? (vfBurst / vfQuiet - 1.0) * 100 : 0.0,
                basQuiet, basBurst,
                static_cast<unsigned long long>(done[0][0]),
                static_cast<unsigned long long>(done[0][1]),
                static_cast<unsigned long long>(burstRejections),
                ok ? "OK" : "FAIL");
    return ok ? 0 : 1;
}

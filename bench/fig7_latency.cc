/**
 * @file
 * Figure 7 — "Relative latency of a GPU server with Lynx on Bluefield
 * vs. Lynx on 6-core CPU (lower is better)".
 *
 * Sweep: request runtime {5..1600} us × mqueues {1, 120, 240};
 * unloaded closed loop (one outstanding request per mqueue). Also
 * prints the paper's absolute anchors: ~25 us vs ~19 us end-to-end
 * for a zero-time kernel, 14 us vs 11 us spent inside Lynx.
 */

#include "common.hh"

using namespace lynxbench;

namespace {

RunResult
measure(Platform p, int mqueues, sim::Tick procTime)
{
    EchoWorld world(p, mqueues, procTime);
    int conc = std::min(mqueues, 64); // unloaded: <=1 per queue
    return world.run(conc, 5_ms, 60_ms, 200_us);
}

} // namespace

int
main()
{
    banner("fig7", "latency of Lynx on Bluefield relative to Lynx on "
                   "the host CPU",
           "shorter requests are slower on Bluefield; the difference "
           "diminishes for requests of 150 us and higher; within 10% "
           "for any request size at high mqueue counts; absolute "
           "zero-work e2e ~25 us (BF) vs ~19 us (Xeon)");

    const sim::Tick times[] = {5_us,   20_us,  50_us, 200_us,
                               400_us, 800_us, 1600_us};
    const int queueCounts[] = {1, 120, 240};

    std::printf("%8s |", "runtime");
    for (int q : queueCounts)
        std::printf("   q=%-3d xeon6/bf [us]    slowdown |", q);
    std::printf("\n");

    for (sim::Tick t : times) {
        std::printf("%6.0fus |", sim::toMicroseconds(t));
        for (int q : queueCounts) {
            RunResult bf = measure(Platform::LynxBluefield, q, t);
            RunResult xeon = measure(Platform::LynxXeon6, q, t);
            std::printf("  %7.1f /%7.1f    %8.2fx |", xeon.p50us,
                        bf.p50us, bf.p50us / xeon.p50us);
        }
        std::printf("\n");
    }

    // Zero-work anchor, 1 mqueue.
    RunResult bf0 = measure(Platform::LynxBluefield, 1, 0);
    RunResult xeon0 = measure(Platform::LynxXeon6, 1, 0);
    std::printf("\nzero-work kernel e2e: bluefield %.1f us, xeon %.1f "
                "us (paper: ~25 vs ~19 us)\n",
                bf0.p50us, xeon0.p50us);
    return 0;
}

/**
 * @file
 * Ablation — design choices of the LeNet persistent-kernel service:
 *
 *  - dynamic parallelism (per-layer child kernels, §6.3) vs a single
 *    fused kernel (what TVM's kernel-fusion optimization strives
 *    for, §3.1): how much do the 7 device-side launches cost?
 *  - child kernel footprint (blocks per layer kernel): LeNet kernels
 *    saturate the device, which is why inference is serial per GPU;
 *    smaller hypothetical kernels would overlap requests.
 */

#include "common.hh"

#include "workload/datagen.hh"

using namespace lynxbench;

namespace {

RunResult
measure(apps::LenetServiceConfig lcfg, int concurrency)
{
    sim::Simulator s;
    net::Network network(s);
    snic::Bluefield bf(s, network, "bf0");
    auto &clientNic = network.addNic("client");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    apps::LeNet model;

    core::Runtime rt(s, bf.lynxRuntimeConfig());
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    // One server mqueue per potential concurrent inference.
    scfg.queuesPerAccel = std::max(1, concurrency / 2);
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    for (auto &q : queues)
        sim::spawn(s, apps::runLenetServer(gpu, *q, model, lcfg));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = concurrency;
    lg.warmup = 20_ms;
    lg.duration = 200_ms;
    lg.requestTimeout = 400_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return workload::synthMnist(static_cast<int>(seq % 10), seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 20_ms);
    return collect(gen);
}

} // namespace

int
main()
{
    banner("tab_lenet_ablation",
           "LeNet service design ablations (Lynx on Bluefield)",
           "per-layer dynamic parallelism costs a few us per request "
           "vs a fused kernel; device-saturating kernels serialize "
           "inference (the 3.6 Kreq/s single-GPU ceiling)");

    apps::LenetServiceConfig perLayer; // 7 child kernels, 200 blocks
    apps::LenetServiceConfig fused = perLayer;
    fused.dynamicParallelism = false;

    std::printf("-- launch granularity (1 outstanding request) --\n");
    std::printf("%26s | %9s | %9s\n", "variant", "req/s", "p50 [us]");
    RunResult a = measure(perLayer, 1);
    RunResult b = measure(fused, 1);
    std::printf("%26s | %9.0f | %9.0f\n", "7 per-layer kernels", a.rps,
                a.p50us);
    std::printf("%26s | %9.0f | %9.0f\n", "single fused kernel", b.rps,
                b.p50us);
    std::printf("dynamic-parallelism cost: %.1f us/request "
                "(6 extra device launches)\n\n",
                a.p50us - b.p50us);

    std::printf("-- kernel footprint (8 outstanding requests) --\n");
    std::printf("%26s | %9s | %9s\n", "blocks per layer kernel",
                "req/s", "p50 [us]");
    for (int blocks : {200, 120, 60, 30}) {
        apps::LenetServiceConfig cfg;
        cfg.childBlocks = blocks;
        RunResult r = measure(cfg, 8);
        std::printf("%26d | %9.0f | %9.0f\n", blocks, r.rps, r.p50us);
    }
    std::printf("\n200-block kernels saturate the 240-slot device: "
                "one inference at a time. Smaller kernels would "
                "overlap requests — the efficiency the paper's "
                "multi-GPU scaleout buys differently (more GPUs, one "
                "stream each).\n");
    return 0;
}

/**
 * @file
 * Batched RDMA dispatch & forwarding ablation (extension — see
 * docs/INTERNALS.md §"Batched dispatch & forwarding"): under a
 * saturating closed loop, staging ingress messages per mqueue and
 * coalescing them into multi-slot RDMA writes (one post cost, one
 * trailing doorbell), draining TX rings in pipelined multi-slot
 * fetches, and consuming doorbells in bursts on the accelerator
 * should cut the RDMA operations issued per message by the batch
 * factor while raising small-message throughput.
 *
 * Matrix: batching off (per-message ops, the paper's §5.1 pattern)
 * vs on (maxBatch 16 end to end) × payload {64, 512, 1416} B on the
 * Bluefield deployment. Reported: RDMA ops/message (aggregated over
 * every mqueue's SNIC-side counters), Ktps, p50/p99 latency.
 *
 * Writes BENCH_tab_batching.json; `--fast` shrinks the run for CI
 * smoke use.
 */

#include <cstring>

#include "common.hh"

using namespace lynxbench;

namespace {

struct Row
{
    bool batched;
    std::size_t payload;
    double opsPerMsg;
    double ktps;
    RunResult r;
};

/** Sum the RDMA verbs issued by the SNIC side across all mqueues:
 *  RX writes (1 per coalesced batch segment, 2–3 in the fallback
 *  modes), consumer-cache refresh reads, TX slot fetch reads, and
 *  TX credit commit writes. */
std::uint64_t
rdmaOps(core::Runtime &rt)
{
    std::uint64_t ops = 0;
    for (const auto &mq : rt.mqueues()) {
        const sim::StatSet &st = mq->stats();
        ops += st.counterValue("rx_write_ops");
        ops += st.counterValue("rx_cons_refreshes");
        ops += st.counterValue("tx_fetch_ops");
        ops += st.counterValue("tx_cons_commits");
    }
    return ops;
}

Row
measure(bool batched, std::size_t payload, bool fast)
{
    EchoOptions opts;
    opts.payloadBytes = payload;
    if (batched) {
        opts.mq.maxBatch = calibration::snicRxMaxBatch;
        opts.dispatchMaxBatch = calibration::snicRxMaxBatch;
        opts.forwardMaxBatch = calibration::snicTxMaxBatch;
        opts.adaptivePoll = true;
        opts.gioBurst = true;
    }
    // Few queues + deep rings + many closed-loop clients: arrivals
    // genuinely queue behind each other, so staged batches form.
    EchoWorld world(Platform::LynxBluefield, /*mqueues=*/2,
                    /*procTime=*/0, opts);
    int conc = fast ? 16 : 64;
    RunResult r = world.run(conc, fast ? 2_ms : 5_ms,
                            fast ? 10_ms : 60_ms);
    Row row;
    row.batched = batched;
    row.payload = payload;
    row.r = r;
    row.ktps = r.rps / 1000.0;
    row.opsPerMsg = r.completed
                        ? static_cast<double>(rdmaOps(*world.runtime())) /
                              static_cast<double>(r.completed)
                        : 0.0;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;

    banner("tab_batching",
           "batched RDMA dispatch & forwarding (extension ablation, "
           "zero-work echo, Bluefield, saturating closed loop)",
           "extension target: >=2x fewer RDMA ops/message and higher "
           "64 B throughput with batching on; per-message §5.1 "
           "behaviour with batching off");

    const std::size_t payloads[] = {64, 512, 1416};
    BenchJson json("tab_batching");

    std::printf("%8s %8s | %10s | %10s %10s %10s\n", "payload",
                "batching", "ops/msg", "Ktps", "p50 [us]", "p99 [us]");
    for (std::size_t payload : payloads) {
        Row off = measure(false, payload, fast);
        Row on = measure(true, payload, fast);
        for (const Row *row : {&off, &on}) {
            std::printf("%6zu B %8s | %10.2f | %10.1f %10.1f %10.1f\n",
                        row->payload, row->batched ? "on" : "off",
                        row->opsPerMsg, row->ktps, row->r.p50us,
                        row->r.p99us);
            json.addRow({{"payload", static_cast<int>(row->payload)},
                         {"batching", row->batched},
                         {"ops_per_msg", row->opsPerMsg},
                         {"ktps", row->ktps},
                         {"p50_us", row->r.p50us},
                         {"p99_us", row->r.p99us},
                         {"completed", row->r.completed},
                         {"failures", row->r.failures}});
        }
        std::printf("%8s %8s | %9.2fx | %9.2fx\n", "", "ratio",
                    on.opsPerMsg ? off.opsPerMsg / on.opsPerMsg : 0.0,
                    off.ktps ? on.ktps / off.ktps : 0.0);
    }
    std::printf("\nextension anchor: one coalesced write + doorbell "
                "per batch segment (RX) and one pipelined fetch per "
                "drain (TX) amortize the per-op post cost.\n");
    return 0;
}

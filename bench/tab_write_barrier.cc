/**
 * @file
 * §5.1 ablations on the mqueue RX write path:
 *
 *  - metadata/data coalescing: one contiguous low-to-high RDMA write
 *    carrying payload + metadata + doorbell, vs separate data and
 *    metadata writes;
 *  - the GPU consistency workaround: RDMA data write + blocking RDMA
 *    read barrier + doorbell write. Paper: "these operations incur
 *    extra latency of 5 useconds to each message ... in our
 *    evaluation we disable the consistency enforcement workaround".
 */

#include "common.hh"

using namespace lynxbench;

namespace {

RunResult
measure(core::SnicMqueueConfig mqCfg)
{
    EchoWorld world(Platform::LynxBluefield, 1, 0, mqCfg);
    return world.run(1, 5_ms, 80_ms, 50_us);
}

} // namespace

int
main()
{
    banner("tab_write_barrier",
           "mqueue RX write-path ablation: coalescing and the GPU "
           "consistency barrier (zero-work echo, Bluefield)",
           "coalesced single write is the fast path; the 3-op barrier "
           "sequence adds ~5 us per message");

    core::SnicMqueueConfig coalesced;       // the Lynx default
    core::SnicMqueueConfig split;
    split.coalesceMetadata = false;         // data + metadata writes
    core::SnicMqueueConfig barrier;
    barrier.writeBarrier = true;            // §5.1 workaround

    RunResult rCoal = measure(coalesced);
    RunResult rSplit = measure(split);
    RunResult rBarrier = measure(barrier);

    std::printf("%26s | %10s | %12s\n", "rx write path", "p50 [us]",
                "delta [us]");
    std::printf("%26s | %10.1f | %12s\n",
                "coalesced (1 RDMA write)", rCoal.p50us, "-");
    std::printf("%26s | %10.1f | %12.1f\n",
                "split data+meta (2 writes)", rSplit.p50us,
                rSplit.p50us - rCoal.p50us);
    std::printf("%26s | %10.1f | %12.1f\n",
                "barrier (write+read+write)", rBarrier.p50us,
                rBarrier.p50us - rCoal.p50us);
    std::printf("\npaper anchor: the barrier workaround costs ~5 us "
                "per message and defeats coalescing.\n");
    return 0;
}

/**
 * @file
 * §5.1.1 ablation — the VMA user-level network stack vs the Linux
 * kernel stack, for minimum-size UDP echoes on both Lynx placements.
 *
 * Paper: "ARM cores on Bluefield incur high system call cost ... For
 * minimum-size UDP packets VMA reduces the processing latency by a
 * factor of 4. The library is also efficient on the host CPU
 * resulting in 2x UDP latency reduction."
 */

#include "common.hh"

using namespace lynxbench;

namespace {

struct StackResult
{
    double p50us = 0;
    double stackUs = 0; // pure rx+tx stack cost, min-size message
};

StackResult
measure(bool bluefield, bool vma)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &client = nw.addNic("client");
    host::Node server(s, nw, "server0");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    core::RuntimeConfig cfg =
        bluefield ? bf.lynxRuntimeConfig()
                  : snic::hostRuntimeConfig(
                        {&server.cores()[0], &server.cores()[1],
                         &server.cores()[2], &server.cores()[3],
                         &server.cores()[4], &server.cores()[5]},
                        server.nic());
    if (!vma) {
        cfg.stack = bluefield ? calibration::kernelBluefield()
                              : calibration::kernelXeon();
    }
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("k40m", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    sim::spawn(s, apps::runEchoBlock(gpu, *queues[0], 0));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &client;
    lg.target = {bluefield ? bf.node() : server.id(), 7000};
    lg.concurrency = 1;
    lg.warmup = 5_ms;
    lg.duration = 80_ms;
    lg.thinkTime = 50_us;
    lg.makeRequest = [](std::uint64_t, sim::Rng &) {
        return std::vector<std::uint8_t>(16, 1); // min-size message
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 5_ms);

    StackResult r;
    r.p50us = sim::toMicroseconds(gen.latency().percentile(50));
    r.stackUs = sim::toMicroseconds(
        cfg.stack.cost(net::Protocol::Udp, net::Dir::Recv, 16) +
        cfg.stack.cost(net::Protocol::Udp, net::Dir::Send, 16));
    return r;
}

} // namespace

int
main()
{
    banner("tab_vma_stack",
           "kernel stack vs VMA (kernel bypass) for minimum-size UDP",
           "VMA cuts UDP processing latency 4x on Bluefield and 2x on "
           "the host");

    std::printf("%12s %8s | %14s | %10s\n", "platform", "stack",
                "stack rx+tx[us]", "e2e p50[us]");
    StackResult r[4];
    int i = 0;
    for (bool bluefield : {false, true}) {
        for (bool vma : {false, true}) {
            r[i] = measure(bluefield, vma);
            std::printf("%12s %8s | %14.2f | %10.1f\n",
                        bluefield ? "bluefield" : "xeon6",
                        vma ? "vma" : "kernel", r[i].stackUs,
                        r[i].p50us);
            ++i;
        }
    }
    std::printf("\nprocessing-latency reduction from VMA: host %.1fx "
                "(paper 2x), bluefield %.1fx (paper 4x)\n",
                r[0].stackUs / r[1].stackUs, r[2].stackUs / r[3].stackUs);
    return 0;
}

/**
 * @file
 * §3.2 microbenchmark — "Accelerator invocation overhead": a 4-byte
 * echo kernel with a 100 us on-GPU delay, driven host-centrically
 * (H2D copy, kernel launch, D2H copy, sync). The paper measures
 * 130 us end-to-end, i.e. ~30 us of pure GPU management overhead per
 * request, ~10% of a LeNet-scale request.
 *
 * Second section: the same 100 us request served by Lynx on
 * Bluefield, decomposed per pipeline hop with the request-tracing
 * layer (sim/span.hh). The per-stage deltas must sum exactly to the
 * measured end-to-end latency, and the non-kernel remainder must fit
 * inside the host-centric ~30 us invocation-overhead envelope —
 * both are verified and the process exits non-zero on violation.
 *
 * Flags: --fast (shorter run, CI smoke), --trace-out=FILE (Chrome
 * trace-event JSON, loadable in Perfetto), --metrics-out=FILE
 * (metrics-registry JSON snapshot).
 */

#include <cstring>
#include <fstream>
#include <string>

#include "common.hh"
#include "sim/span.hh"

using namespace lynxbench;

namespace {

/** Host-centric H2D/launch/D2H/sync sweep (§3.2 table). */
void
hostCentricSweep(BenchJson &json, bool fast)
{
    std::printf("%12s | %12s | %12s\n", "kernel [us]", "pipeline [us]",
                "overhead [us]");
    std::vector<sim::Tick> kernels = {0_us, 20_us, 100_us, 300_us,
                                      1000_us};
    if (fast)
        kernels = {0_us, 100_us};
    for (sim::Tick kernel : kernels) {
        sim::Simulator s;
        pcie::Fabric fabric(s, "pcie");
        accel::Gpu gpu(s, "k40m", fabric);
        accel::GpuDriver driver(s, gpu);
        accel::Stream stream(s, driver);
        sim::Core core(s, "xeon.0");

        sim::Tick done = 0;
        auto pipeline = [&]() -> sim::Task {
            co_await stream.memcpyH2D(core, 4);
            co_await stream.launch(core, 1, kernel);
            co_await stream.memcpyD2H(core, 4);
            co_await stream.sync(core);
            done = s.now();
        };
        sim::spawn(s, pipeline());
        s.run();
        double total = sim::toMicroseconds(done);
        double overhead = total - sim::toMicroseconds(kernel);
        std::printf("%12.0f | %12.1f | %12.1f\n",
                    sim::toMicroseconds(kernel), total, overhead);
        json.addRow({{"section", "host_centric"},
                     {"kernel_us", sim::toMicroseconds(kernel)},
                     {"pipeline_us", total},
                     {"overhead_us", overhead}});
    }
    std::printf("\npaper anchor: 100 us kernel -> ~130 us pipeline "
                "(30 us overhead).\n");
    std::printf("LeNet-scale context: overhead is ~10%% of a ~300 us "
                "request (§3.2).\n");
}

/** Lynx-on-Bluefield per-stage breakdown of the same 100 us request.
 *  @return 0 on success, non-zero when a consistency check fails. */
int
lynxBreakdown(BenchJson &json, bool fast, const std::string &traceOut,
              const std::string &metricsOut)
{
    const sim::Tick kernel = 100_us;
    EchoWorld world(Platform::LynxBluefield, 1, kernel);
    sim::SpanCollector spans(world.sim());

    sim::Tick warmup = fast ? 2_ms : 5_ms;
    sim::Tick duration = fast ? 20_ms : 60_ms;
    RunResult r = world.run(1, warmup, duration, 200_us);

    std::printf("\nlynx-bluefield, 100 us kernel, unloaded closed "
                "loop (%llu spans):\n",
                static_cast<unsigned long long>(spans.finished()));
    std::printf("%18s | %8s | %10s | %10s | %6s\n", "stage", "count",
                "mean [us]", "p50 [us]", "share");

    const sim::Histogram &total = spans.totalHistogram();
    double stageSumNs = 0.0;
    for (std::size_t i = 1; i < sim::kNumStages; ++i) {
        auto st = static_cast<sim::Stage>(i);
        const sim::Histogram &h = spans.stageHistogram(st);
        stageSumNs += h.sum();
        double meanUs = h.mean() / 1000.0;
        std::printf("%18s | %8llu | %10.2f | %10.2f | %5.1f%%\n",
                    sim::stageName(st),
                    static_cast<unsigned long long>(h.count()), meanUs,
                    sim::toMicroseconds(h.percentile(50)),
                    total.sum() > 0.0 ? 100.0 * h.sum() / total.sum()
                                      : 0.0);
        json.addRow({{"section", "lynx_stage"},
                     {"stage", sim::stageName(st)},
                     {"count", h.count()},
                     {"mean_us", meanUs},
                     {"p50_us",
                      sim::toMicroseconds(h.percentile(50))}});
    }
    double totalMeanUs = total.mean() / 1000.0;
    double overheadUs = totalMeanUs - sim::toMicroseconds(kernel);
    std::printf("%18s | %8llu | %10.2f | %10.2f | 100.0%%\n",
                "end-to-end",
                static_cast<unsigned long long>(total.count()),
                totalMeanUs, sim::toMicroseconds(total.percentile(50)));
    std::printf("\nnon-kernel overhead: %.2f us mean (host-centric "
                "envelope: ~30 us, §3.2)\n",
                overheadUs);
    json.addRow({{"section", "lynx_summary"},
                 {"spans", total.count()},
                 {"e2e_mean_us", totalMeanUs},
                 {"e2e_p50_us",
                  sim::toMicroseconds(total.percentile(50))},
                 {"overhead_us", overheadUs},
                 {"rps", r.rps}});

    if (!traceOut.empty()) {
        if (spans.writeChromeTrace(traceOut))
            std::printf("[trace] wrote %s (%zu spans) — load in "
                        "Perfetto / chrome://tracing\n",
                        traceOut.c_str(), spans.spans().size());
        else
            std::fprintf(stderr, "cannot write %s\n", traceOut.c_str());
    }
    if (!metricsOut.empty()) {
        std::ofstream os(metricsOut);
        if (os) {
            world.sim().metrics().json(os);
            std::printf("[metrics] wrote %s (%zu stat sets)\n",
                        metricsOut.c_str(),
                        world.sim().metrics().size());
        } else {
            std::fprintf(stderr, "cannot write %s\n",
                         metricsOut.c_str());
        }
    }

    int rc = 0;
    // Stage deltas are folded against the previous *stamped* stage, so
    // their per-span sum telescopes to exactly ClientRx - ClientTx;
    // the aggregate sums must therefore match to the tick (sums stay
    // far below 2^53, so the doubles are exact).
    if (total.count() == 0) {
        std::fprintf(stderr,
                     "FAIL: no spans completed (expected traffic)\n");
        rc = 1;
    }
    if (stageSumNs != total.sum()) {
        std::fprintf(stderr,
                     "FAIL: stage deltas sum to %.0f ns but "
                     "end-to-end is %.0f ns\n",
                     stageSumNs, total.sum());
        rc = 1;
    }
    if (overheadUs <= 0.0 || overheadUs > 30.0) {
        std::fprintf(stderr,
                     "FAIL: non-kernel overhead %.2f us outside the "
                     "(0, 30] us invocation-overhead envelope\n",
                     overheadUs);
        rc = 1;
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = false;
    std::string traceOut, metricsOut;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fast") == 0)
            fast = true;
        else if (std::strncmp(argv[i], "--trace-out=", 12) == 0)
            traceOut = argv[i] + 12;
        else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0)
            metricsOut = argv[i] + 14;
        else
            std::fprintf(stderr, "ignoring unknown flag %s\n",
                         argv[i]);
    }

    banner("tab_invocation_overhead",
           "per-request GPU management overhead of the CPU-driven "
           "pipeline (§3.2), and the Lynx per-stage breakdown",
           "100 us kernel measures ~130 us end-to-end: ~30 us of pure "
           "management overhead");

    BenchJson json("tab_invocation_overhead");
    hostCentricSweep(json, fast);
    return lynxBreakdown(json, fast, traceOut, metricsOut);
}

/**
 * @file
 * §3.2 microbenchmark — "Accelerator invocation overhead": a 4-byte
 * echo kernel with a 100 us on-GPU delay, driven host-centrically
 * (H2D copy, kernel launch, D2H copy, sync). The paper measures
 * 130 us end-to-end, i.e. ~30 us of pure GPU management overhead per
 * request, ~10% of a LeNet-scale request.
 */

#include "common.hh"

using namespace lynxbench;

int
main()
{
    banner("tab_invocation_overhead",
           "per-request GPU management overhead of the CPU-driven "
           "pipeline (§3.2)",
           "100 us kernel measures ~130 us end-to-end: ~30 us of pure "
           "management overhead");

    std::printf("%12s | %12s | %12s\n", "kernel [us]", "pipeline [us]",
                "overhead [us]");
    for (sim::Tick kernel :
         {0_us, 20_us, 100_us, 300_us, 1000_us}) {
        sim::Simulator s;
        pcie::Fabric fabric(s, "pcie");
        accel::Gpu gpu(s, "k40m", fabric);
        accel::GpuDriver driver(s, gpu);
        accel::Stream stream(s, driver);
        sim::Core core(s, "xeon.0");

        sim::Tick done = 0;
        auto pipeline = [&]() -> sim::Task {
            co_await stream.memcpyH2D(core, 4);
            co_await stream.launch(core, 1, kernel);
            co_await stream.memcpyD2H(core, 4);
            co_await stream.sync(core);
            done = s.now();
        };
        sim::spawn(s, pipeline());
        s.run();
        double total = sim::toMicroseconds(done);
        std::printf("%12.0f | %12.1f | %12.1f\n",
                    sim::toMicroseconds(kernel), total,
                    total - sim::toMicroseconds(kernel));
    }
    std::printf("\npaper anchor: 100 us kernel -> ~130 us pipeline "
                "(30 us overhead).\n");
    std::printf("LeNet-scale context: overhead is ~10%% of a ~300 us "
                "request (§3.2).\n");
    return 0;
}

/**
 * @file
 * Figure 5 — "Performance of data transfer mechanisms for managing
 * mqueue, relative to cudaMemcpyAsync".
 *
 * A CPU-side manager feeds a single-threadblock GPU echo server
 * through one mqueue, using each mechanism for the data path
 * (payload) and control path (doorbell/status register):
 *
 *   data:cudaMemcpyAsync + control:cudaMemcpyAsync   (baseline)
 *   data:cudaMemcpyAsync + control:gdrcopy
 *   data:RDMA            + control:gdrcopy
 *   data:RDMA            + control:RDMA              (Lynx's choice)
 *
 * cudaMemcpyAsync pays a constant driver overhead per call; gdrcopy
 * blocks the CPU for the store; RDMA posting costs <1 us (§5.1).
 */

#include "common.hh"

using namespace lynxbench;

namespace {

enum class Mech { CudaMemcpy, Gdrcopy, Rdma };

const char *
mechName(Mech m)
{
    switch (m) {
      case Mech::CudaMemcpy: return "cudaMemcpyAsync";
      case Mech::Gdrcopy: return "gdrcopy";
      case Mech::Rdma: return "RDMA";
    }
    return "?";
}

/** Messages/second a manager loop achieves with the given paths. */
double
measure(Mech data, Mech control, std::uint64_t payload)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "k40m", fabric);
    accel::GpuDriver driver(s, gpu);
    rdma::RdmaPathModel path;
    path.postCost = calibration::rdmaPostCost;
    rdma::QueuePair qp(s, "qp", gpu.memory(), path);
    sim::Core core(s, "xeon.0");

    // The paper's measured per-call costs: "cudaMemcpyAsync incurs a
    // constant overhead of 7-8 usec", "gdrcopy blocks until the
    // transfer is completed", "IB RDMA requires less than 1 usec to
    // invoke".
    const sim::Tick cudaCallCost = 7500_ns;

    // Critical-path payload transfer at the small-TLP PCIe p2p rate
    // plus the GPU-side echo handling; identical for all mechanisms.
    const double p2pGbps = 8.0;
    auto commonTurnaround = [&](std::uint64_t bytes) {
        return 900_ns + 1500_ns +
               static_cast<sim::Tick>(static_cast<double>(bytes) * 8.0 /
                                      p2pGbps);
    };

    const sim::Tick window = 20_ms;
    std::uint64_t delivered = 0;

    auto doPath = [&](Mech m, std::uint64_t bytes) -> sim::Co<void> {
        switch (m) {
          case Mech::CudaMemcpy:
            co_await core.exec(cudaCallCost);
            break;
          case Mech::Gdrcopy:
            co_await driver.gdrAccess(core, bytes);
            break;
          case Mech::Rdma:
            co_await core.exec(qp.path().postCost);
            qp.postWrite(0, std::vector<std::uint8_t>(bytes, 0));
            break;
        }
    };

    auto manager = [&]() -> sim::Task {
        while (s.now() < window) {
            // Ring bookkeeping common to every mechanism.
            co_await core.exec(800_ns);
            co_await doPath(data, payload); // payload into the ring
            co_await doPath(control, 4);    // doorbell/status update
            co_await sim::sleep(commonTurnaround(payload));
            ++delivered;
        }
    };
    sim::spawn(s, manager());
    s.run();
    return static_cast<double>(delivered) / sim::toSeconds(window);
}

} // namespace

int
main()
{
    banner("fig5", "mqueue management mechanisms, speedup relative to "
                   "cudaMemcpyAsync for data+control",
           "RDMA performs better than any other mechanism, in "
           "particular for smaller accesses; cudaMemcpyAsync has a "
           "constant 7-8 us overhead; gdrcopy blocks the CPU");

    struct Combo
    {
        Mech data, control;
    };
    const Combo combos[] = {
        {Mech::CudaMemcpy, Mech::CudaMemcpy},
        {Mech::CudaMemcpy, Mech::Gdrcopy},
        {Mech::Rdma, Mech::Gdrcopy},
        {Mech::Rdma, Mech::Rdma},
    };
    const std::uint64_t sizes[] = {20, 116, 516, 1016, 1416};

    std::printf("%28s |", "data+control \\ payload [B]");
    for (auto sz : sizes)
        std::printf(" %8llu", static_cast<unsigned long long>(sz));
    std::printf("\n");

    for (const Combo &c : combos) {
        std::printf("%15s + %-10s |", mechName(c.data),
                    mechName(c.control));
        for (auto sz : sizes) {
            double base =
                measure(Mech::CudaMemcpy, Mech::CudaMemcpy, sz);
            double v = measure(c.data, c.control, sz);
            std::printf(" %7.2fx", v / base);
        }
        std::printf("\n");
    }
    std::printf("\npaper shape: the RDMA+RDMA combination wins at all "
                "sizes (up to ~5x), most at small payloads.\n");
    return 0;
}

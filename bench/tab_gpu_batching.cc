/**
 * @file
 * Accelerator-side dynamic request batching (extension beyond the
 * paper): batch size × offered load for the LeNet inference service
 * on Lynx. Batching drains the mqueue with recvBatch, classifies the
 * whole batch with one child-kernel sequence (occupancy-aware
 * duration), and commits the responses with sendBatch.
 *
 * Every response is verified byte-for-byte against the model's
 * classification of the request image (the echoed request seq indexes
 * a precomputed expected-digit table), so the throughput numbers
 * double as an end-to-end correctness check of the batched path.
 *
 * Self-checks (non-zero exit on violation):
 *  - at saturation, batch >= 8 reaches >= 2x the unbatched
 *    throughput;
 *  - at low load (concurrency 1), batching leaves p99 latency within
 *    1.5x of unbatched (the idle ring serves immediately);
 *  - zero validation failures and timeouts everywhere.
 */

#include "common.hh"

#include <cstring>

#include "workload/datagen.hh"

using namespace lynxbench;

namespace {

constexpr std::size_t kImagePool = 64;

struct BatchRun
{
    int batch = 1;
    int concurrency = 1;
    RunResult result;
};

BatchRun
measure(const apps::LeNet &model,
        const std::vector<std::vector<std::uint8_t>> &images,
        const std::vector<std::uint8_t> &expected, int batch,
        int concurrency, sim::Tick warmup, sim::Tick duration)
{
    sim::Simulator s;
    net::Network network(s);
    auto &clientNic = network.addNic("client");
    host::Node serverHost(s, network, "server0");
    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpu(s, "k40m", fabric);

    auto cfg = snic::hostRuntimeConfig({&serverHost.cores()[0]},
                                       serverHost.nic());
    core::Runtime runtime(s, cfg);
    auto &accel = runtime.addAccelerator("k40m", gpu.memory(),
                                         rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "lenet";
    scfg.port = 7000;
    scfg.ringSlots = 64; // roomy ring so backlog can form batches
    auto &svc = runtime.addService(scfg);
    auto queues = runtime.makeAccelQueues(svc, accel);
    apps::LenetServiceConfig lcfg;
    lcfg.maxBatch = batch;
    lcfg.batchLinger = batch > 1 ? 20_us : 0;
    sim::spawn(s, apps::runLenetServer(gpu, *queues[0], model, lcfg));
    runtime.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {serverHost.id(), 7000};
    lg.concurrency = concurrency;
    lg.warmup = warmup;
    lg.duration = duration;
    lg.requestTimeout = 500_ms;
    lg.makeRequest = [&images](std::uint64_t seq, sim::Rng &) {
        return images[seq % kImagePool];
    };
    lg.validate = [&expected](const net::Message &resp) {
        return resp.payload.size() == 1 &&
               resp.payload[0] == expected[resp.seq % kImagePool];
    };
    workload::LoadGen gen(s, lg);
    gen.start();
    s.runUntil(gen.windowEnd() + 20_ms);

    BatchRun run;
    run.batch = batch;
    run.concurrency = concurrency;
    run.result = collect(gen);
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fast = argc > 1 && std::strcmp(argv[1], "--fast") == 0;

    banner("gpu_batching",
           "accelerator-side dynamic request batching: LeNet "
           "throughput/latency, batch size x offered load",
           "extension beyond the paper; expectation: >= 2x "
           "throughput at saturation for batch >= 8, unchanged "
           "low-load latency");

    apps::LeNet model;
    std::vector<std::vector<std::uint8_t>> images;
    std::vector<std::uint8_t> expected;
    for (std::size_t i = 0; i < kImagePool; ++i) {
        images.push_back(
            workload::synthMnist(static_cast<int>(i % 10), i));
        expected.push_back(
            static_cast<std::uint8_t>(model.classify(images.back())));
    }

    const std::vector<int> batches =
        fast ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};
    const std::vector<int> concs =
        fast ? std::vector<int>{1, 16} : std::vector<int>{1, 8, 32};
    const sim::Tick warmup = fast ? 10_ms : 20_ms;
    const sim::Tick duration = fast ? 120_ms : 400_ms;

    BenchJson json("gpu_batching");
    std::printf("%6s %6s | %10s | %8s %8s %8s | %9s\n", "batch",
                "conc", "req/s", "p50[us]", "p90[us]", "p99[us]",
                "bad/tmo");

    // runs[batch index][concurrency index]
    std::vector<std::vector<BatchRun>> runs;
    std::uint64_t badTotal = 0;
    for (int b : batches) {
        runs.emplace_back();
        for (int c : concs) {
            BatchRun r = measure(model, images, expected, b, c, warmup,
                                 duration);
            std::printf("%6d %6d | %10.0f | %8.0f %8.0f %8.0f | %4llu/%-4llu\n",
                        b, c, r.result.rps, r.result.p50us,
                        r.result.p90us, r.result.p99us,
                        static_cast<unsigned long long>(
                            r.result.failures),
                        static_cast<unsigned long long>(
                            r.result.timeouts));
            json.addRow({{"batch", b},
                         {"concurrency", c},
                         {"rps", r.result.rps},
                         {"p50us", r.result.p50us},
                         {"p90us", r.result.p90us},
                         {"p99us", r.result.p99us},
                         {"completed", r.result.completed},
                         {"failures", r.result.failures},
                         {"timeouts", r.result.timeouts}});
            badTotal += r.result.failures + r.result.timeouts;
            runs.back().push_back(r);
        }
    }

    // Self-checks.
    int violations = 0;
    const std::size_t satIdx = concs.size() - 1;
    const double rps1 = runs.front()[satIdx].result.rps;
    for (std::size_t bi = 0; bi < batches.size(); ++bi) {
        if (batches[bi] < 8)
            continue;
        double speedup = runs[bi][satIdx].result.rps / rps1;
        std::printf("batch %d at saturation (conc %d): %.2fx "
                    "unbatched throughput\n",
                    batches[bi], concs[satIdx], speedup);
        if (speedup < 2.0) {
            std::printf("VIOLATION: batch %d speedup %.2fx < 2x\n",
                        batches[bi], speedup);
            ++violations;
        }
    }
    const double p99Unbatched = runs.front()[0].result.p99us;
    for (std::size_t bi = 1; bi < batches.size(); ++bi) {
        double p99 = runs[bi][0].result.p99us;
        if (p99 > 1.5 * p99Unbatched) {
            std::printf("VIOLATION: batch %d low-load p99 %.0f us > "
                        "1.5x unbatched %.0f us\n",
                        batches[bi], p99, p99Unbatched);
            ++violations;
        }
    }
    std::printf("low-load p99: unbatched %.0f us, batched worst "
                "%.0f us\n",
                p99Unbatched,
                [&] {
                    double w = 0;
                    for (std::size_t bi = 1; bi < batches.size(); ++bi)
                        w = std::max(w, runs[bi][0].result.p99us);
                    return w;
                }());
    if (badTotal != 0) {
        std::printf("VIOLATION: %llu validation failures/timeouts\n",
                    static_cast<unsigned long long>(badTotal));
        ++violations;
    }
    return violations == 0 ? 0 : 1;
}

/**
 * @file
 * Tests of the per-request tracing layer (sim/span.hh).
 *
 * The two load-bearing guarantees:
 *  - stamps are pure metadata: installing a SpanCollector must not
 *    move a single simulated timestamp (checked against the seed's
 *    golden echo timestamps with stamping both OFF and ON);
 *  - the per-stage deltas of every finished span are monotone and
 *    telescope exactly to the end-to-end latency (the §6.2-style
 *    breakdown tables rest on this).
 * Plus: the Chrome trace-event export must round-trip through a JSON
 * parser with the right events in it.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <vector>

#include "json_lite.hh"

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "host/node.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "sim/simulator.hh"
#include "sim/span.hh"
#include "sim/task.hh"
#include "snic/bluefield.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using sim::SpanCollector;
using sim::Stage;

TEST(Span, BeginStampFinishFoldsDeltasExactly)
{
    sim::Simulator s;
    SpanCollector spans(s);
    EXPECT_EQ(s.spans(), &spans);

    std::uint64_t id = spans.begin(100);
    EXPECT_NE(id, 0u);
    spans.stamp(id, Stage::NicTx, 150);
    spans.stamp(id, Stage::SnicIngress, 400);
    spans.stamp(id, Stage::AppStart, 900);
    // Skipped stages (DispatchEnqueue...) must not contribute.
    spans.finish(id, 1000);

    ASSERT_EQ(spans.finished(), 1u);
    EXPECT_EQ(spans.stageHistogram(Stage::NicTx).min(), 50u);
    EXPECT_EQ(spans.stageHistogram(Stage::SnicIngress).min(), 250u);
    EXPECT_EQ(spans.stageHistogram(Stage::AppStart).min(), 500u);
    EXPECT_EQ(spans.stageHistogram(Stage::ClientRx).min(), 100u);
    EXPECT_EQ(spans.stageHistogram(Stage::DispatchEnqueue).count(), 0u);
    EXPECT_EQ(spans.totalHistogram().min(), 900u);

    double stageSum = 0.0;
    for (std::size_t i = 1; i < sim::kNumStages; ++i)
        stageSum += spans.stageHistogram(static_cast<Stage>(i)).sum();
    EXPECT_EQ(stageSum, spans.totalHistogram().sum());
}

TEST(Span, FirstStampWinsAndUnknownIdsAreIgnored)
{
    sim::Simulator s;
    SpanCollector spans(s);

    std::uint64_t id = spans.begin(0);
    spans.stamp(id, Stage::NicTx, 10);
    // A response re-traversing the same NIC must not overwrite the
    // request's stamp.
    spans.stamp(id, Stage::NicTx, 99);

    // Unknown / zero ids: silently dropped, never crash.
    spans.stamp(0, Stage::NicTx, 5);
    spans.stamp(424242, Stage::NicTx, 5);
    spans.finish(0, 5);
    spans.finish(424242, 5);

    spans.finish(id, 20);
    ASSERT_EQ(spans.finished(), 1u);
    EXPECT_EQ(spans.stageHistogram(Stage::NicTx).min(), 10u);
    EXPECT_EQ(spans.stageHistogram(Stage::ClientRx).min(), 10u);
}

TEST(Span, TagBindingsResolveStampAndUnbind)
{
    sim::Simulator s;
    SpanCollector spans(s);
    int memA, memB;

    std::uint64_t id = spans.begin(0);
    spans.bindTag(&memA, 0, 7, id);

    // Same tag on a different ring: distinct binding, no cross-talk.
    spans.stampTag(&memB, 0, 7, Stage::MqueueWrite, 111);
    spans.stampTag(&memA, 4096, 7, Stage::MqueueWrite, 222);
    spans.stampTag(&memA, 0, 7, Stage::MqueueWrite, 333);

    spans.unbindTag(&memA, 0, 7);
    spans.stampTag(&memA, 0, 7, Stage::GioPop, 444); // unbound: no-op

    spans.finish(id, 500);
    ASSERT_EQ(spans.finished(), 1u);
    EXPECT_EQ(spans.stageHistogram(Stage::MqueueWrite).min(), 333u);
    EXPECT_EQ(spans.stageHistogram(Stage::GioPop).count(), 0u);
}

TEST(Span, UninstallsFromSimulatorOnDestruction)
{
    sim::Simulator s;
    {
        SpanCollector spans(s);
        EXPECT_EQ(s.spans(), &spans);
    }
    EXPECT_EQ(s.spans(), nullptr);
}

TEST(Span, RetainLimitCountsDroppedSpans)
{
    sim::Simulator s;
    SpanCollector spans(s);
    spans.setRetainLimit(2);
    for (int i = 0; i < 5; ++i)
        spans.finish(spans.begin(10 * i), 10 * i + 5);
    EXPECT_EQ(spans.finished(), 5u);
    EXPECT_EQ(spans.spans().size(), 2u);
    EXPECT_EQ(spans.droppedSpans(), 3u);
    // Histograms keep aggregating past the retain limit.
    EXPECT_EQ(spans.totalHistogram().count(), 5u);
}

TEST(Span, ChromeTraceExportRoundTripsThroughJsonParser)
{
    sim::Simulator s;
    SpanCollector spans(s);

    std::uint64_t id = spans.begin(1000);
    spans.stamp(id, Stage::NicTx, 1500);
    spans.stamp(id, Stage::AppStart, 2000);
    spans.finish(id, 3000);
    std::uint64_t id2 = spans.begin(5000);
    spans.finish(id2, 6000);

    std::ostringstream os;
    spans.writeChromeTrace(os);
    jsonlite::Value doc = jsonlite::parse(os.str());

    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ns");
    const jsonlite::Value &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    // Span 1: nic_tx, app_start, client_rx. Span 2: client_rx only.
    ASSERT_EQ(events.items.size(), 4u);

    double durSum = 0.0;
    for (const jsonlite::Value &ev : events.items) {
        EXPECT_EQ(ev.at("ph").str, "X");
        EXPECT_TRUE(ev.at("ts").isNumber());
        EXPECT_TRUE(ev.at("dur").isNumber());
        EXPECT_TRUE(ev.at("name").isString());
        durSum += ev.at("dur").number;
    }
    // Total traced time: 2000 ns + 1000 ns = 3 us.
    EXPECT_NEAR(durSum, 3.0, 1e-9);
    EXPECT_EQ(events.items[0].at("name").str, "nic_tx");
    EXPECT_EQ(events.items[0].at("ts").number, 1.0);  // 1000 ns
    EXPECT_EQ(events.items[0].at("dur").number, 0.5); // 500 ns
}

namespace {

/** Everything the golden-scenario assertions need, captured before
 *  the world (and its collector) is torn down. */
struct GoldenResult
{
    std::vector<sim::Tick> stamps;
    std::uint64_t finished = 0;
    std::vector<sim::RequestSpan> spans;
    std::array<std::uint64_t, sim::kNumStages> stageCount{};
    std::array<double, sim::kNumStages> stageSum{};
    std::uint64_t totalCount = 0;
    double totalSum = 0.0;
    std::string traceJson;
};

/** The golden seed scenario of test_lynx_batching.cc: five
 *  sequential 64 B echoes through the default Lynx-on-host runtime,
 *  with or without a SpanCollector installed. */
GoldenResult
runGoldenEcho(bool withCollector)
{
    GoldenResult result;
    sim::Simulator s;
    net::Network network(s);
    net::Nic &client = network.addNic("client");
    host::Node server(s, network, "server");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);

    std::unique_ptr<SpanCollector> owned;
    if (withCollector)
        owned = std::make_unique<SpanCollector>(s);
    SpanCollector *collector = owned.get();

    std::vector<sim::Core *> cores{&server.cores()[0]};
    core::RuntimeConfig cfg =
        snic::hostRuntimeConfig(cores, server.nic());
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("gpu", gpu.memory(),
                                    rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 1;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    for (auto &q : queues)
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 0));
    rt.start();

    net::Endpoint &ep = client.bind(net::Protocol::Udp, 30000);
    auto clientTask = [&]() -> sim::Task {
        for (int i = 0; i < 5; ++i) {
            net::Message m;
            m.src = {client.node(), 30000};
            m.dst = {server.id(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload.assign(64, static_cast<std::uint8_t>(i));
            if (collector)
                m.traceId = collector->begin(s.now());
            co_await client.send(std::move(m));
            net::Message r = co_await ep.recv();
            EXPECT_EQ(r.payload.size(), 64u);
            if (collector)
                collector->finish(r.traceId, s.now());
            result.stamps.push_back(s.now());
        }
    };
    sim::spawn(s, clientTask());
    s.runUntil(10_ms);

    if (collector) {
        result.finished = collector->finished();
        result.spans = collector->spans();
        for (std::size_t i = 0; i < sim::kNumStages; ++i) {
            const sim::Histogram &h =
                collector->stageHistogram(static_cast<Stage>(i));
            result.stageCount[i] = h.count();
            result.stageSum[i] = h.sum();
        }
        result.totalCount = collector->totalHistogram().count();
        result.totalSum = collector->totalHistogram().sum();
        std::ostringstream os;
        collector->writeChromeTrace(os);
        result.traceJson = os.str();
    }
    return result;
}

const std::vector<sim::Tick> kSeedStamps{11763, 23526, 35289, 47052,
                                         58815};

} // namespace

/** Stamping disabled (no collector): the seed's golden timestamps. */
TEST(SpanGolden, NoCollectorReproducesSeedTimestamps)
{
    EXPECT_EQ(runGoldenEcho(false).stamps, kSeedStamps);
}

/**
 * Stamping enabled: the *same* golden timestamps — the collector is
 * pure metadata — and every span carries all ten stages, monotone,
 * with stage deltas telescoping exactly to the end-to-end latency.
 */
TEST(SpanGolden, CollectorIsMetadataOnlyAndStampsEveryStage)
{
    GoldenResult r = runGoldenEcho(true);
    EXPECT_EQ(r.stamps, kSeedStamps);

    EXPECT_EQ(r.finished, 5u);
    ASSERT_EQ(r.spans.size(), 5u);
    for (const sim::RequestSpan &span : r.spans) {
        sim::Tick prev = 0;
        for (std::size_t i = 0; i < sim::kNumStages; ++i) {
            auto st = static_cast<Stage>(i);
            ASSERT_TRUE(span.stamped(st))
                << "span " << span.id << " missing stage "
                << sim::stageName(st);
            EXPECT_GE(span.at(st), prev)
                << "span " << span.id << " stage "
                << sim::stageName(st) << " not monotone";
            prev = span.at(st);
        }
        // Telescoping: deltas between consecutive stamped stages sum
        // to exactly ClientRx - ClientTx.
        sim::Tick deltaSum = 0;
        for (std::size_t i = 1; i < sim::kNumStages; ++i)
            deltaSum += span.at(static_cast<Stage>(i)) -
                        span.at(static_cast<Stage>(i - 1));
        EXPECT_EQ(deltaSum, span.at(Stage::ClientRx) -
                                span.at(Stage::ClientTx));
    }

    // Aggregate identity over the histograms as well.
    double stageSum = 0.0;
    for (std::size_t i = 1; i < sim::kNumStages; ++i) {
        EXPECT_EQ(r.stageCount[i], 5u)
            << sim::stageName(static_cast<Stage>(i));
        stageSum += r.stageSum[i];
    }
    EXPECT_EQ(stageSum, r.totalSum);
    EXPECT_EQ(r.totalCount, 5u);

    // The export of a real run also round-trips: 5 spans x 9 stage
    // events each.
    jsonlite::Value doc = jsonlite::parse(r.traceJson);
    EXPECT_EQ(doc.at("traceEvents").items.size(), 45u);
}

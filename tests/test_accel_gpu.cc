/**
 * @file
 * Tests for the GPU model: slot pool admission, kernel execution,
 * dynamic parallelism, driver lock costs, stream ordering, and the
 * paper's §3.2 invocation-overhead microbenchmark shape.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/gpu.hh"
#include "pcie/fabric.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

struct Rig
{
    sim::Simulator s;
    pcie::Fabric fabric{s, "pcie"};
    accel::Gpu gpu{s, "gpu0", fabric};
    accel::GpuDriver driver{s, gpu};
    sim::Core core{s, "xeon.0"};
};

} // namespace

TEST(SlotPool, GrantsWhenAvailable)
{
    sim::Simulator s;
    accel::SlotPool pool(s, 10);
    bool got = false;
    auto body = [&]() -> sim::Task {
        co_await pool.acquire(4);
        got = true;
    };
    sim::spawn(s, body());
    EXPECT_TRUE(got);
    EXPECT_EQ(pool.free(), 6);
    s.run();
}

TEST(SlotPool, FifoAdmissionHeadOfLineBlocks)
{
    sim::Simulator s;
    accel::SlotPool pool(s, 10);
    std::vector<int> order;
    auto taker = [&](int id, int n, sim::Tick hold) -> sim::Task {
        co_await pool.acquire(n);
        order.push_back(id);
        co_await sim::sleep(hold);
        pool.release(n);
    };
    sim::spawn(s, taker(0, 8, 100_us)); // takes 8, frees at 100us
    sim::spawn(s, taker(1, 6, 10_us));  // needs 6: must wait for 0
    sim::spawn(s, taker(2, 1, 10_us));  // fits now, but FIFO: blocked
    s.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Gpu, KernelRunsForScaledDuration)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::GpuConfig cfg;
    cfg.clockScale = 2.0;
    accel::Gpu gpu(s, "k80", fabric, cfg);
    sim::Tick done = 0;
    bool bodyRan = false;
    auto body = [&]() -> sim::Task {
        co_await gpu.execKernel(1, 100_us, [&] { bodyRan = true; });
        done = s.now();
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_EQ(done, 200_us);
    EXPECT_TRUE(bodyRan);
    EXPECT_EQ(gpu.stats().counterValue("kernels"), 1u);
}

TEST(Gpu, ConcurrentKernelsShareSlots)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::GpuConfig cfg;
    cfg.blockSlots = 2;
    accel::Gpu gpu(s, "gpu0", fabric, cfg);
    std::vector<sim::Tick> completions;
    auto one = [&]() -> sim::Task {
        co_await gpu.execKernel(1, 100_us);
        completions.push_back(s.now());
    };
    // 3 single-block kernels on a 2-slot device: third waits.
    sim::spawn(s, one());
    sim::spawn(s, one());
    sim::spawn(s, one());
    s.run();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0], 100_us);
    EXPECT_EQ(completions[1], 100_us);
    EXPECT_EQ(completions[2], 200_us);
}

TEST(Gpu, DeviceLaunchAddsOverheadOnly)
{
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::GpuConfig cfg;
    cfg.deviceLaunchOverhead = 1500_ns;
    accel::Gpu gpu(s, "gpu0", fabric, cfg);
    sim::Tick done = 0;
    auto body = [&]() -> sim::Task {
        co_await gpu.deviceLaunch(1, 50_us);
        done = s.now();
    };
    sim::spawn(s, body());
    s.run();
    EXPECT_EQ(done, 50_us + 1500_ns);
    EXPECT_EQ(gpu.stats().counterValue("device_launches"), 1u);
}

TEST(GpuDeath, OversizedKernelPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    sim::Simulator s;
    pcie::Fabric fabric(s, "pcie");
    accel::GpuConfig cfg;
    cfg.blockSlots = 4;
    accel::Gpu gpu(s, "gpu0", fabric, cfg);
    auto body = [&]() -> sim::Task { co_await gpu.execKernel(5, 1_us); };
    EXPECT_DEATH(
        {
            sim::spawn(s, body());
            s.run();
        },
        "exceeds device capacity");
}

TEST(GpuDriver, UncontendedCallCost)
{
    Rig r;
    sim::Tick done = 0;
    auto body = [&]() -> sim::Task {
        co_await r.driver.driverCall(r.core);
        done = r.s.now();
    };
    sim::spawn(r.s, body());
    r.s.run();
    EXPECT_EQ(done, r.driver.config().submitCost);
    EXPECT_EQ(r.driver.stats().counterValue("contended_calls"), 0u);
}

TEST(GpuDriver, ContendedCallsPayExtra)
{
    Rig r;
    sim::CorePool cores(r.s, "cpu", 2);
    std::vector<sim::Tick> dones;
    auto body = [&](sim::Core &c) -> sim::Task {
        co_await r.driver.driverCall(c);
        dones.push_back(r.s.now());
    };
    sim::spawn(r.s, body(cores[0]));
    sim::spawn(r.s, body(cores[1]));
    r.s.run();
    const auto &cfg = r.driver.config();
    ASSERT_EQ(dones.size(), 2u);
    EXPECT_EQ(dones[0], cfg.submitCost);
    EXPECT_EQ(dones[1], cfg.submitCost * 2 + cfg.contendedExtra);
    EXPECT_EQ(r.driver.stats().counterValue("contended_calls"), 1u);
}

TEST(GpuDriver, GdrAccessScalesWithSize)
{
    Rig r;
    sim::Tick t4 = 0, t1416 = 0;
    auto body = [&]() -> sim::Task {
        sim::Tick start = r.s.now();
        co_await r.driver.gdrAccess(r.core, 4);
        t4 = r.s.now() - start;
        start = r.s.now();
        co_await r.driver.gdrAccess(r.core, 1416);
        t1416 = r.s.now() - start;
    };
    sim::spawn(r.s, body());
    r.s.run();
    EXPECT_GT(t1416, t4);
    EXPECT_EQ(t4, r.driver.config().gdrBase +
                      static_cast<sim::Tick>(
                          r.driver.config().gdrPerByte * 4));
}

TEST(Stream, OpsExecuteInOrder)
{
    Rig r;
    std::vector<int> order;
    accel::Stream st(r.s, r.driver);
    auto body = [&]() -> sim::Task {
        co_await st.memcpyH2D(r.core, 64);
        co_await st.launch(r.core, 1, 50_us, [&] { order.push_back(1); });
        co_await st.launch(r.core, 1, 1_us, [&] { order.push_back(2); });
        co_await st.memcpyD2H(r.core, 64);
        co_await st.sync(r.core);
        order.push_back(3);
    };
    sim::spawn(r.s, body());
    r.s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Stream, EchoPipelineMatchesPaperOverhead)
{
    // Paper §3.2: 4-byte echo kernel with a 100 us on-GPU delay,
    // driven host-centrically (H2D copy, launch, D2H copy, sync),
    // measures ~130 us end-to-end: ~30 us of pure GPU management.
    Rig r;
    accel::Stream st(r.s, r.driver);
    sim::Tick done = 0;
    auto body = [&]() -> sim::Task {
        co_await st.memcpyH2D(r.core, 4);
        co_await st.launch(r.core, 1, 100_us);
        co_await st.memcpyD2H(r.core, 4);
        co_await st.sync(r.core);
        done = r.s.now();
    };
    sim::spawn(r.s, body());
    r.s.run();
    double overheadUs = sim::toMicroseconds(done) - 100.0;
    EXPECT_GT(overheadUs, 25.0);
    EXPECT_LT(overheadUs, 35.0);
}

TEST(Stream, IndependentStreamsOverlapOnDevice)
{
    Rig r;
    accel::Stream a(r.s, r.driver), b(r.s, r.driver);
    std::vector<sim::Tick> dones;
    auto user = [&](accel::Stream &st, sim::Core &c) -> sim::Task {
        co_await st.launch(c, 1, 200_us);
        co_await st.sync(c);
        dones.push_back(r.s.now());
    };
    sim::CorePool cores(r.s, "cpu", 2);
    sim::spawn(r.s, user(a, cores[0]));
    sim::spawn(r.s, user(b, cores[1]));
    r.s.run();
    ASSERT_EQ(dones.size(), 2u);
    // Kernels overlap on the device; only submissions serialize.
    EXPECT_LT(sim::toMicroseconds(dones[1]), 2 * 200.0);
}

TEST(Stream, SyncOnIdleStreamReturnsQuickly)
{
    Rig r;
    accel::Stream st(r.s, r.driver);
    sim::Tick done = 0;
    auto body = [&]() -> sim::Task {
        co_await st.sync(r.core);
        done = r.s.now();
    };
    sim::spawn(r.s, body());
    r.s.run();
    EXPECT_EQ(done, r.driver.config().syncCost);
}

/**
 * @file
 * Deterministic chaos suite for the fault-injection & failover
 * extension (docs/INTERNALS.md §7): seeded FaultPlans drop, corrupt,
 * delay and partition link/RDMA transfers while Lynx serves echo
 * traffic from local and remote accelerators. The invariants under
 * every fault mix and seed:
 *
 *  - zero payload corruption ever reaches a client (checksums turn
 *    corruption into drops/retransmits);
 *  - no request is lost silently: closed-loop clients observe every
 *    loss as a timeout, and injected faults show up in counters;
 *  - after heal() the service converges: fresh requests all complete
 *    byte-exactly, and partitioned mqueues are revived.
 *
 * Also here: the failover end-to-end test on the Fig. 8b scale-out
 * topology (kill one remote machine mid-run, byte-exact throughout,
 * throughput recovers after revival) and the golden-timestamp guard
 * proving an attached-but-zero FaultPlan changes nothing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "host/node.hh"
#include "lynx/calibration.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "rdma/qp.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "snic/bluefield.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

/** Request payload as a pure function of the sequence number, so a
 *  validator can recompute the expected bytes from the response
 *  alone (byte-exactness survives reordering and retries). */
std::vector<std::uint8_t>
payloadFor(std::uint64_t seq)
{
    std::vector<std::uint8_t> p(64);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 131 + b * 17 + 7);
    return p;
}

enum class FaultKind { Drop, Corrupt, Delay, Partition };

const char *
kindName(FaultKind k)
{
    switch (k) {
    case FaultKind::Drop: return "drop";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Delay: return "delay";
    case FaultKind::Partition: return "partition";
    }
    return "?";
}

struct ChaosOutcome
{
    std::uint64_t completed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;
    std::uint64_t injected = 0;
    std::uint64_t corruptionsDetected = 0;
    std::uint64_t died = 0;
    std::uint64_t revived = 0;
    int convergedSent = 0;
    int converged = 0;
};

/**
 * One chaos run: a Bluefield Lynx echo service over one local and one
 * remote GPU, failover enabled, with @p kind faults at seed @p seed
 * active for the first 18 ms, then healed; a convergence client then
 * verifies the healed service end to end.
 */
ChaosOutcome
runChaos(FaultKind kind, std::uint64_t seed)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    host::Node remoteHost(s, nw, "server1");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpuL(s, "gpu-local", fabric);
    accel::Gpu gpuR(s, "gpu-remote", remoteHost.fabric());

    sim::FaultConfig fc;
    fc.seed = seed * 0x9e3779b97f4a7c15ull + 1;
    switch (kind) {
    case FaultKind::Drop: fc.dropRate = 0.04; break;
    case FaultKind::Corrupt: fc.corruptRate = 0.04; break;
    case FaultKind::Delay: fc.delayRate = 0.08; break;
    case FaultKind::Partition: break;
    }
    sim::FaultPlan plan(fc);
    if (kind == FaultKind::Partition)
        plan.partition(bf.node(), remoteHost.id(), 3_ms, 12_ms);
    nw.setFaultPlan(&plan);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.failover.enabled = true;
    core::Runtime rt(s, cfg);
    rdma::RdmaPathModel lp;
    auto &hl = rt.addAccelerator("local", gpuL.memory(), lp);
    auto &hr = rt.addAccelerator(
        "remote", gpuR.memory(),
        lp.viaNetwork(calibration::rdmaRemoteExtraOneWay));
    rdma::QpFaultBinding fb;
    fb.plan = &plan;
    fb.initiator = bf.node();
    fb.target = remoteHost.id();
    hr.qp().bindFaults(fb);

    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto qsL = rt.makeAccelQueues(svc, hl);
    auto qsR = rt.makeAccelQueues(svc, hr);
    sim::spawn(s, apps::runEchoBlock(gpuL, *qsL[0], 2_us));
    sim::spawn(s, apps::runEchoBlock(gpuR, *qsR[0], 2_us));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 3;
    lg.warmup = 1_ms;
    lg.duration = 16_ms;
    lg.requestTimeout = 2_ms;
    lg.seed = seed;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return payloadFor(seq);
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload == payloadFor(resp.seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();

    const sim::Tick healAt = 18_ms;
    s.schedule(healAt, [&] { plan.heal(); });

    ChaosOutcome out;
    auto convergence = [&]() -> sim::Task {
        co_await sim::sleep(healAt + 5_ms);
        auto &ep = clientNic.bind(net::Protocol::Udp, 45000);
        for (int i = 0; i < 10; ++i) {
            std::uint64_t seq = 1000000 + static_cast<std::uint64_t>(i);
            net::Message m;
            m.src = {clientNic.node(), 45000};
            m.dst = {bf.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = payloadFor(seq);
            m.seq = seq;
            ++out.convergedSent;
            co_await clientNic.send(std::move(m));
            auto resp = co_await workload::recvTimeout(s, ep, 10_ms);
            if (resp && resp->seq == seq &&
                resp->payload == payloadFor(seq))
                ++out.converged;
        }
    };
    sim::spawn(s, convergence());
    s.runUntil(140_ms);

    out.completed = gen.completed();
    out.timeouts = gen.timeouts();
    out.failures = gen.validationFailures();
    auto &ps = plan.stats();
    out.injected = ps.counterValue("drops") +
                   ps.counterValue("corruptions") +
                   ps.counterValue("delays") +
                   ps.counterValue("partition_drops");
    out.corruptionsDetected =
        bf.nic().stats().counterValue("rx_drop_corrupt") +
        clientNic.stats().counterValue("rx_drop_corrupt") +
        hr.qp().stats().counterValue("hw_retransmits");
    for (const auto &mon : rt.monitors()) {
        out.died += mon->stats().counterValue("mqueues_died");
        out.revived += mon->stats().counterValue("mqueues_revived");
    }
    return out;
}

} // namespace

/* ------------------------------------------------------------------ */
/* FaultPlan unit behaviour                                           */
/* ------------------------------------------------------------------ */

TEST(FaultPlan, SameSeedReplaysIdenticalVerdicts)
{
    sim::FaultConfig fc;
    fc.dropRate = 0.3;
    fc.corruptRate = 0.2;
    fc.delayRate = 0.25;
    fc.seed = 77;
    sim::FaultPlan a(fc), b(fc);
    for (int i = 0; i < 2000; ++i) {
        auto va = a.judge(1, 2, i);
        auto vb = b.judge(1, 2, i);
        ASSERT_EQ(va.drop, vb.drop) << "judgement " << i;
        ASSERT_EQ(va.corrupt, vb.corrupt) << "judgement " << i;
        ASSERT_EQ(va.delay, vb.delay) << "judgement " << i;
    }
}

TEST(FaultPlan, ZeroPlanIsDisabledAndPartitionEnablesIt)
{
    sim::FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    plan.partition(1, 2, 100, 200);
    EXPECT_TRUE(plan.enabled());
    EXPECT_TRUE(plan.partitioned(1, 2, 150));
    EXPECT_TRUE(plan.partitioned(2, 1, 150)); // bidirectional
    EXPECT_FALSE(plan.partitioned(1, 2, 99));
    EXPECT_FALSE(plan.partitioned(1, 2, 200));
    EXPECT_FALSE(plan.partitioned(1, 3, 150));
    plan.heal();
    EXPECT_FALSE(plan.enabled());
    EXPECT_FALSE(plan.partitioned(1, 2, 150));
}

TEST(FaultPlan, WildcardPartitionMatchesEveryPeer)
{
    sim::FaultPlan plan;
    plan.partition(sim::FaultPlan::kAnyNode, 4, 0, 10);
    EXPECT_TRUE(plan.partitioned(0, 4, 5));
    EXPECT_TRUE(plan.partitioned(4, 17, 5));
    EXPECT_FALSE(plan.partitioned(1, 2, 5));
}

TEST(FaultPlan, CorruptInPlaceAlwaysChangesBytes)
{
    sim::FaultConfig fc;
    fc.seed = 5;
    sim::FaultPlan plan(fc);
    for (int round = 0; round < 50; ++round) {
        std::vector<std::uint8_t> data(32, 0xab);
        const std::vector<std::uint8_t> orig = data;
        plan.corruptInPlace(data);
        EXPECT_NE(data, orig) << "round " << round;
    }
}

/* ------------------------------------------------------------------ */
/* Fabric- and QP-level fault surfacing                               */
/* ------------------------------------------------------------------ */

TEST(FaultInjection, CorruptedFrameIsDroppedByChecksumNotDelivered)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    sim::FaultConfig fc;
    fc.corruptRate = 1.0;
    sim::FaultPlan plan(fc);
    nw.setFaultPlan(&plan);

    auto &ep = b.bind(net::Protocol::Udp, 9);
    auto sender = [&]() -> sim::Task {
        net::Message m;
        m.src = {a.node(), 1};
        m.dst = {b.node(), 9};
        m.proto = net::Protocol::Udp;
        m.payload = {1, 2, 3, 4};
        co_await a.send(std::move(m));
    };
    sim::spawn(s, sender());
    s.run();

    EXPECT_EQ(ep.backlog(), 0u);
    EXPECT_EQ(b.stats().counterValue("rx_drop_corrupt"), 1u);
    EXPECT_EQ(nw.stats().counterValue("corrupted_in_fabric"), 1u);
    EXPECT_EQ(plan.stats().counterValue("corruptions"), 1u);
}

TEST(FaultInjection, PartitionWindowDropsThenHealsOnSchedule)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &a = nw.addNic("a");
    auto &b = nw.addNic("b");
    sim::FaultPlan plan;
    plan.partition(a.node(), b.node(), 1_ms, 2_ms);
    nw.setFaultPlan(&plan);

    auto &ep = b.bind(net::Protocol::Udp, 9);
    auto sendAt = [&](sim::Tick when) -> sim::Task {
        co_await sim::sleep(when);
        net::Message m;
        m.src = {a.node(), 1};
        m.dst = {b.node(), 9};
        m.proto = net::Protocol::Udp;
        m.payload = {9};
        co_await a.send(std::move(m));
    };
    sim::spawn(s, sendAt(1500_us)); // inside the window: dropped
    sim::spawn(s, sendAt(2500_us)); // after the window: delivered
    s.run();

    EXPECT_EQ(ep.backlog(), 1u);
    EXPECT_EQ(nw.stats().counterValue("dropped_by_fault"), 1u);
    EXPECT_EQ(plan.stats().counterValue("partition_drops"), 1u);
}

TEST(FaultInjection, RdmaWriteErrorSurfacesAndDataNeverLands)
{
    sim::Simulator s;
    pcie::DeviceMemory mem("m", 4096);
    rdma::QueuePair qp(s, "qp", mem, rdma::RdmaPathModel{});
    sim::FaultConfig fc;
    fc.dropRate = 1.0;
    sim::FaultPlan plan(fc);
    rdma::QpFaultBinding fb;
    fb.plan = &plan;
    qp.bindFaults(fb);

    rdma::WcStatus st = rdma::WcStatus::Ok;
    auto writer = [&]() -> sim::Task {
        std::vector<std::uint8_t> data(8, 0x5a);
        st = co_await qp.write(64, data);
        EXPECT_EQ(st, rdma::WcStatus::Error);
        // The transport burned its full retransmit budget first.
        EXPECT_EQ(qp.stats().counterValue("hw_retransmits"), 4u);
        EXPECT_EQ(qp.stats().counterValue("wc_errors"), 1u);
        // Heal: the very next op succeeds (no sticky QP error state).
        plan.heal();
        st = co_await qp.write(64, data);
    };
    sim::spawn(s, writer());
    s.run();

    EXPECT_EQ(st, rdma::WcStatus::Ok);
    std::vector<std::uint8_t> out(8);
    mem.read(64, out);
    EXPECT_EQ(out, std::vector<std::uint8_t>(8, 0x5a));
}

TEST(FaultInjection, RetryPolicyBackoffIsExponentialAndCapped)
{
    rdma::RdmaRetryPolicy p;
    EXPECT_FALSE(p.enabled()); // off by default: seed fast path
    p.maxRetries = 4;
    EXPECT_TRUE(p.enabled());
    EXPECT_EQ(p.backoff(0), 2_us);
    EXPECT_EQ(p.backoff(1), 4_us);
    EXPECT_EQ(p.backoff(2), 8_us);
    EXPECT_EQ(p.backoff(5), 64_us);
    EXPECT_EQ(p.backoff(40), 64_us); // shift clamped, no UB
}

/* ------------------------------------------------------------------ */
/* Golden guard: attached-but-zero plan changes nothing               */
/* ------------------------------------------------------------------ */

/** The chaos machinery must be invisible when idle: the seed echo
 *  golden timestamps with a constructed-but-all-zero FaultPlan
 *  attached to both the fabric and the QP (cf. the identical test
 *  without a plan in test_lynx_batching.cc). */
TEST(LynxFaults, ZeroFaultPlanReproducesSeedEchoTimestampsExactly)
{
    sim::Simulator s;
    net::Network network(s);
    net::Nic &client = network.addNic("client");
    host::Node server(s, network, "server");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpu(s, "gpu", fabric);

    sim::FaultPlan plan; // all-zero: enabled() == false
    network.setFaultPlan(&plan);

    std::vector<sim::Core *> cores{&server.cores()[0]};
    core::RuntimeConfig cfg = snic::hostRuntimeConfig(cores, server.nic());
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("gpu", gpu.memory(),
                                    rdma::RdmaPathModel{});
    rdma::QpFaultBinding fb;
    fb.plan = &plan;
    fb.initiator = server.id();
    fb.target = server.id();
    accel.qp().bindFaults(fb);
    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 1;
    auto &svc = rt.addService(scfg);
    auto queues = rt.makeAccelQueues(svc, accel);
    for (auto &q : queues)
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 0));
    rt.start();

    net::Endpoint &ep = client.bind(net::Protocol::Udp, 30000);
    std::vector<sim::Tick> stamps;
    auto clientTask = [&]() -> sim::Task {
        for (int i = 0; i < 5; ++i) {
            net::Message m;
            m.src = {client.node(), 30000};
            m.dst = {server.id(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload.assign(64, static_cast<std::uint8_t>(i));
            co_await client.send(std::move(m));
            net::Message r = co_await ep.recv();
            EXPECT_EQ(r.payload.size(), 64u);
            stamps.push_back(s.now());
        }
    };
    sim::spawn(s, clientTask());
    s.runUntil(10_ms);

    const std::vector<sim::Tick> seedStamps{11763, 23526, 35289, 47052,
                                            58815};
    EXPECT_EQ(stamps, seedStamps);
}

/* ------------------------------------------------------------------ */
/* The chaos sweep (satellite a): >= 20 seeds x 4 fault kinds         */
/* ------------------------------------------------------------------ */

class LynxChaos : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(LynxChaos, NoCorruptionNoSilentLossEventualConvergence)
{
    const std::uint64_t seed = GetParam();
    for (FaultKind kind : {FaultKind::Drop, FaultKind::Corrupt,
                           FaultKind::Delay, FaultKind::Partition}) {
        SCOPED_TRACE(::testing::Message()
                     << "kind=" << kindName(kind) << " seed=" << seed);
        ChaosOutcome o = runChaos(kind, seed);

        // Byte-exactness: not one validated response ever differed
        // from its request, under any fault mix.
        EXPECT_EQ(o.failures, 0u);
        // The adversary really fired...
        EXPECT_GT(o.injected, 0u);
        // ...yet the service kept making progress under fire.
        EXPECT_GT(o.completed, 100u);
        // Convergence: after heal every fresh request completes.
        EXPECT_EQ(o.convergedSent, 10);
        EXPECT_EQ(o.converged, o.convergedSent);

        if (kind == FaultKind::Drop) {
            // No silent loss: dropped datagrams surfaced as client
            // timeouts (closed-loop accounting), not vanished work.
            EXPECT_GT(o.timeouts, 0u);
        }
        if (kind == FaultKind::Corrupt) {
            // Every corruption that reached a checksum was caught
            // there (frame CRC drop or RDMA ICRC retransmit).
            EXPECT_GT(o.corruptionsDetected, 0u);
        }
        if (kind == FaultKind::Partition) {
            // The partitioned remote mqueue was declared dead and,
            // after the window closed, revived.
            EXPECT_GE(o.died, 1u);
            EXPECT_GE(o.revived, 1u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LynxChaos,
                         ::testing::Range<std::uint64_t>(1, 21));

/* ------------------------------------------------------------------ */
/* Failover end-to-end (satellite b): Fig. 8b scale-out topology      */
/* ------------------------------------------------------------------ */

/**
 * Kill one remote machine mid-run on the Fig. 8b scale-out shape
 * (2 local + 2 remote GPUs): its mqueues must be declared dead and
 * their in-flight requests re-queued to survivors; every response
 * stays byte-exact; after the partition heals the queues revive and
 * the remote GPUs serve traffic again at the pre-fault rate.
 */
TEST(LynxFailover, RemoteMachineDeathAndRevivalOnScaleout)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    host::Node server0(s, nw, "server0");
    host::Node server1(s, nw, "server1");
    accel::Gpu g0(s, "gpu0", server0.fabric());
    accel::Gpu g1(s, "gpu1", server0.fabric());
    accel::Gpu g2(s, "gpu2", server1.fabric());
    accel::Gpu g3(s, "gpu3", server1.fabric());

    sim::FaultPlan plan;
    plan.partition(bf.node(), server1.id(), 10_ms, 28_ms);
    nw.setFaultPlan(&plan);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.failover.enabled = true;
    core::Runtime rt(s, cfg);
    rdma::RdmaPathModel lp;
    auto remote = lp.viaNetwork(calibration::rdmaRemoteExtraOneWay);
    auto &h0 = rt.addAccelerator("gpu0", g0.memory(), lp);
    auto &h1 = rt.addAccelerator("gpu1", g1.memory(), lp);
    auto &h2 = rt.addAccelerator("gpu2", g2.memory(), remote);
    auto &h3 = rt.addAccelerator("gpu3", g3.memory(), remote);
    for (core::AccelHandle *h : {&h2, &h3}) {
        rdma::QpFaultBinding fb;
        fb.plan = &plan;
        fb.initiator = bf.node();
        fb.target = server1.id();
        h->qp().bindFaults(fb);
    }

    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    accel::Gpu *gpus[] = {&g0, &g1, &g2, &g3};
    core::AccelHandle *handles[] = {&h0, &h1, &h2, &h3};
    for (int i = 0; i < 4; ++i) {
        auto qs = rt.makeAccelQueues(svc, *handles[i]);
        sim::spawn(s, apps::runEchoBlock(*gpus[i], *qs[0], 20_us));
        for (auto &q : qs)
            queues.push_back(std::move(q));
    }
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 8;
    lg.warmup = 2_ms;
    lg.duration = 58_ms;
    lg.requestTimeout = 4_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return payloadFor(seq);
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload == payloadFor(resp.seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();

    // rt.mqueues() order follows the accelerator list: 2, 3 = remote.
    auto remoteRxPushed = [&rt]() {
        return rt.mqueues()[2]->stats().counterValue("rx_pushed") +
               rt.mqueues()[3]->stats().counterValue("rx_pushed");
    };
    std::uint64_t completedAtKill = 0, completedAtHeal = 0;
    std::uint64_t remoteRxAtHeal = 0;
    s.schedule(10_ms, [&] { completedAtKill = gen.completed(); });
    s.schedule(30_ms, [&] {
        completedAtHeal = gen.completed();
        remoteRxAtHeal = remoteRxPushed();
    });
    s.runUntil(75_ms);

    // Byte-exact responses throughout, including across the failover.
    EXPECT_EQ(gen.validationFailures(), 0u);
    EXPECT_GT(gen.completed(), 1000u);

    std::uint64_t died = 0, revived = 0, requeued = 0;
    for (const auto &mon : rt.monitors()) {
        died += mon->stats().counterValue("mqueues_died");
        revived += mon->stats().counterValue("mqueues_revived");
        requeued += mon->stats().counterValue("requests_requeued");
    }
    // Both remote mqueues died during the partition and were revived
    // after it healed; in-flight work was evacuated, not dropped.
    EXPECT_EQ(died, 2u);
    EXPECT_EQ(revived, 2u);
    EXPECT_GE(requeued, 1u);

    // The revived queues carry fresh traffic again...
    EXPECT_GT(remoteRxPushed(), remoteRxAtHeal);

    // ...and throughput recovered: the post-heal rate is at least
    // 70% of the pre-fault rate (closed loop; deterministic run).
    double preRate =
        static_cast<double>(completedAtKill) / 8.0; // [2, 10) ms
    double postRate =
        static_cast<double>(gen.completed() - completedAtHeal) /
        30.0; // [30, 60) ms
    EXPECT_GT(postRate, 0.7 * preRate);
}

/**
 * @file
 * Tests for the memcached-like KV store: storage semantics, wire
 * codec (including malformed input), and the networked server loop.
 */

#include <gtest/gtest.h>

#include "apps/kvstore.hh"
#include "lynx/calibration.hh"
#include "net/network.hh"
#include "sim/processor.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::apps;
using namespace lynx::sim::literals;

TEST(KvStore, SetGetEraseSemantics)
{
    KvStore kv;
    EXPECT_FALSE(kv.get("a").has_value());
    kv.set("a", {1, 2, 3});
    ASSERT_TRUE(kv.get("a").has_value());
    EXPECT_EQ(*kv.get("a"), (std::vector<std::uint8_t>{1, 2, 3}));
    kv.set("a", {9});
    EXPECT_EQ(*kv.get("a"), (std::vector<std::uint8_t>{9}));
    EXPECT_TRUE(kv.erase("a"));
    EXPECT_FALSE(kv.erase("a"));
    EXPECT_FALSE(kv.get("a").has_value());
}

TEST(KvCodec, GetRoundTrip)
{
    auto buf = kvEncodeGet("hello");
    auto req = kvDecodeRequest(buf);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->op, KvOp::Get);
    EXPECT_EQ(req->key, "hello");
    EXPECT_TRUE(req->value.empty());
}

TEST(KvCodec, SetRoundTrip)
{
    std::vector<std::uint8_t> val{5, 6, 7, 8};
    auto buf = kvEncodeSet("k1", val);
    auto req = kvDecodeRequest(buf);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->op, KvOp::Set);
    EXPECT_EQ(req->key, "k1");
    EXPECT_EQ(req->value, val);
}

TEST(KvCodec, MalformedInputsRejected)
{
    EXPECT_FALSE(kvDecodeRequest({}).has_value());
    std::vector<std::uint8_t> tooShort{0, 1};
    EXPECT_FALSE(kvDecodeRequest(tooShort).has_value());
    std::vector<std::uint8_t> badOp{7, 0, 0, 0, 0, 0, 0};
    EXPECT_FALSE(kvDecodeRequest(badOp).has_value());
    // Key length exceeding the buffer.
    std::vector<std::uint8_t> badKey{0, 0xff, 0xff, 0, 0, 0, 0};
    EXPECT_FALSE(kvDecodeRequest(badKey).has_value());
    // Truncated value.
    auto buf = kvEncodeSet("k", std::vector<std::uint8_t>(10, 1));
    buf.resize(buf.size() - 5);
    EXPECT_FALSE(kvDecodeRequest(buf).has_value());
}

TEST(KvCodec, ResponseRoundTrip)
{
    std::vector<std::uint8_t> val{1, 2};
    auto buf = kvEncodeResponse(KvStatus::Ok, val);
    auto resp = kvDecodeResponse(buf);
    EXPECT_EQ(resp.status, KvStatus::Ok);
    EXPECT_EQ(resp.value, val);

    auto miss = kvDecodeResponse(kvEncodeResponse(KvStatus::Miss, {}));
    EXPECT_EQ(miss.status, KvStatus::Miss);
    EXPECT_TRUE(miss.value.empty());

    KvResponse broken = kvDecodeResponse(std::vector<std::uint8_t>{1});
    EXPECT_EQ(broken.status, KvStatus::Malformed);
}

TEST(KvApply, GetMissAndHit)
{
    KvStore kv;
    KvRequest get{KvOp::Get, "x", {}};
    auto miss = kvDecodeResponse(kvApply(kv, get));
    EXPECT_EQ(miss.status, KvStatus::Miss);

    KvRequest set{KvOp::Set, "x", {42}};
    auto ok = kvDecodeResponse(kvApply(kv, set));
    EXPECT_EQ(ok.status, KvStatus::Ok);

    auto hit = kvDecodeResponse(kvApply(kv, get));
    EXPECT_EQ(hit.status, KvStatus::Ok);
    EXPECT_EQ(hit.value, (std::vector<std::uint8_t>{42}));
}

TEST(KvServer, ServesGetSetOverNetwork)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("kv-server");
    auto &clientNic = nw.addNic("client");
    sim::CorePool cores(s, "xeon", 2);

    KvStore kv;
    KvServerConfig cfg;
    cfg.nic = &serverNic;
    cfg.proto = net::Protocol::Tcp;
    cfg.stack = calibration::vmaXeon();
    cfg.cores = {&cores[0], &cores[1]};
    cfg.opCost = calibration::memcachedOpCostXeon;
    KvServer server(s, kv, cfg);
    server.start();

    auto &cliEp = clientNic.bind(net::Protocol::Tcp, 50000);
    std::vector<std::uint8_t> fetched;
    auto client = [&]() -> sim::Task {
        auto sendReq = [&](std::vector<std::uint8_t> body)
            -> sim::Co<net::Message> {
            net::Message m;
            m.src = {clientNic.node(), 50000};
            m.dst = {serverNic.node(), 11211};
            m.proto = net::Protocol::Tcp;
            m.payload = std::move(body);
            co_await clientNic.send(std::move(m));
            net::Message r = co_await cliEp.recv();
            co_return r;
        };
        std::vector<std::uint8_t> img(128, 0x3c);
        auto setResp = co_await sendReq(kvEncodeSet("face:42", img));
        EXPECT_EQ(kvDecodeResponse(setResp.payload).status, KvStatus::Ok);
        auto getResp = co_await sendReq(kvEncodeGet("face:42"));
        auto decoded = kvDecodeResponse(getResp.payload);
        EXPECT_EQ(decoded.status, KvStatus::Ok);
        fetched = decoded.value;
    };
    sim::spawn(s, client());
    s.run();

    EXPECT_EQ(fetched, std::vector<std::uint8_t>(128, 0x3c));
    EXPECT_EQ(server.stats().counterValue("gets"), 1u);
    EXPECT_EQ(server.stats().counterValue("sets"), 1u);
    EXPECT_EQ(kv.size(), 1u);
}

TEST(KvServer, ThroughputScalesWithCores)
{
    // Fig. 9's premise: "memcached ... scales linearly with
    // additional CPU cores" — 250 Ktps per Xeon core.
    auto measure = [](int ncores) {
        sim::Simulator s;
        net::Network nw(s);
        auto &serverNic = nw.addNic("kv-server");
        auto &clientNic = nw.addNic("client");
        sim::CorePool cores(s, "xeon", static_cast<std::size_t>(ncores));
        KvStore kv;
        kv.set("k", {1});
        KvServerConfig cfg;
        cfg.nic = &serverNic;
        cfg.proto = net::Protocol::Udp; // memcached UDP mode
        cfg.stack = calibration::vmaXeon();
        for (int i = 0; i < ncores; ++i)
            cfg.cores.push_back(&cores[static_cast<std::size_t>(i)]);
        cfg.opCost = calibration::memcachedOpCostXeon;
        KvServer server(s, kv, cfg);
        server.start();

        workload::LoadGenConfig lg;
        lg.nic = &clientNic;
        lg.target = {serverNic.node(), 11211};
        lg.proto = net::Protocol::Udp;
        lg.concurrency = ncores * 16;
        lg.warmup = 5_ms;
        lg.duration = 30_ms;
        lg.makeRequest = [](std::uint64_t, sim::Rng &) {
            return kvEncodeGet("k");
        };
        workload::LoadGen gen(s, lg);
        gen.start();
        s.runUntil(gen.windowEnd() + 5_ms);
        return gen.throughputRps();
    };

    double one = measure(1);
    double two = measure(2);
    EXPECT_GT(one, 100'000.0);
    EXPECT_LT(one, 400'000.0);
    EXPECT_NEAR(two / one, 2.0, 0.35);
}

/**
 * @file
 * Interaction regression: doorbell coalescing (dispatcher staging +
 * mqueue batched RDMA writes, PR "tab_batching"/"tab_gpu_batching"
 * machinery) composed with the congestion plane. Batching trades a
 * bounded linger for fewer RDMA ops; under ECN marking and DCQCN
 * pacing that trade must stay bounded — coalescing may never inflate
 * the incast victim's p99 beyond a small envelope over the unbatched
 * run, and must never corrupt. Measured numbers are recorded in
 * EXPERIMENTS.md (congestion x batching).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "lynx/gio.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "sim/simulator.hh"
#include "snic/bluefield.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

constexpr double kBottleneckGbps = 0.5;
constexpr std::size_t kPayloadBytes = 1024;

std::vector<std::uint8_t>
payloadFor(std::uint64_t seq)
{
    std::vector<std::uint8_t> p(kPayloadBytes);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 181 + b * 23 + 3);
    return p;
}

struct VictimResult
{
    double p50us = 0;
    double p99us = 0;
    std::uint64_t completed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;
    std::uint64_t ecnMarked = 0;
};

/** An 8-to-1 incast at 1.5x saturation with DCQCN on, with or
 *  without the doorbell-coalescing knobs (dispatcher staging 8 +
 *  mqueue maxBatch 8 + the default 2 us flush linger). */
VictimResult
measure(bool batched)
{
    sim::Simulator s;

    net::NetworkConfig ncfg;
    ncfg.congestion.enabled = true;
    ncfg.congestion.egressQueueBytes = 128 * 1024;
    ncfg.congestion.ecnKminBytes = 4 * 1024;
    ncfg.congestion.ecnKmaxBytes = 16 * 1024;
    ncfg.congestion.ecnEnabled = true;
    ncfg.congestion.dcqcnEnabled = true;
    ncfg.congestion.dcqcn.lineRateGbps = kBottleneckGbps;
    ncfg.congestion.dcqcn.minRateGbps = kBottleneckGbps / 50;
    ncfg.congestion.dcqcn.aiGbps = kBottleneckGbps / 100;
    ncfg.congestion.dcqcn.haiGbps = kBottleneckGbps / 20;
    ncfg.congestion.dcqcn.alphaTimer = 275_us;
    ncfg.congestion.dcqcn.rateTimer = 500_us;
    ncfg.congestion.pfc.enabled = true;
    net::Network nw(s, ncfg);

    snic::BluefieldConfig bfc;
    bfc.nic.gbps = kBottleneckGbps;
    snic::Bluefield bf(s, nw, "bf0", bfc);

    pcie::Fabric fabric(s, "server0.pcie");
    accel::Gpu gpu(s, "gpu0", fabric);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.congestion = ncfg.congestion;
    if (batched) {
        cfg.dispatchMaxBatch = 8;
        cfg.mq.maxBatch = 8;
    }
    core::Runtime rt(s, cfg);
    auto &accel = rt.addAccelerator("gpu0", gpu.memory(), {});

    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    scfg.queuesPerAccel = 4;
    scfg.ringSlots = 32;
    auto &svc = rt.addService(scfg);
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    for (auto &q : rt.makeAccelQueues(svc, accel)) {
        sim::spawn(s, apps::runEchoBlock(gpu, *q, 2_us));
        queues.push_back(std::move(q));
    }
    rt.start();

    constexpr sim::Tick kWarmup = 10_ms;
    constexpr sim::Tick kWindow = 40_ms;
    constexpr double kSaturationRps = 61'000.0;

    std::vector<std::unique_ptr<workload::LoadGen>> agg;
    for (int a = 0; a < 8; ++a) {
        auto &nic = nw.addNic("agg" + std::to_string(a));
        workload::LoadGenConfig lg;
        lg.nic = &nic;
        lg.target = {bf.node(), 7000};
        lg.openRate = 1.5 * kSaturationRps / 8;
        lg.warmup = kWarmup;
        lg.duration = kWindow;
        lg.makeRequest = [](std::uint64_t, sim::Rng &) {
            return std::vector<std::uint8_t>(kPayloadBytes, 0x3c);
        };
        lg.seed = 300 + static_cast<std::uint64_t>(a);
        agg.push_back(std::make_unique<workload::LoadGen>(s, lg));
    }

    auto &victimNic = nw.addNic("victim");
    workload::LoadGenConfig lg;
    lg.nic = &victimNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 4;
    lg.warmup = kWarmup;
    lg.duration = kWindow;
    lg.requestTimeout = 5_ms;
    lg.thinkTime = 1_ms;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return payloadFor(seq);
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload == payloadFor(resp.seq);
    };
    workload::LoadGen victim(s, lg);

    for (auto &g : agg)
        g->start();
    victim.start();
    s.runUntil(victim.windowEnd() + 10_ms);

    VictimResult out;
    out.p50us = sim::toMicroseconds(victim.latency().percentile(50));
    out.p99us = sim::toMicroseconds(victim.latency().percentile(99));
    out.completed = victim.completed();
    out.timeouts = victim.timeouts();
    out.failures = victim.validationFailures();
    out.ecnMarked = nw.ecnStats().counterValue("marked");
    return out;
}

} // namespace

/** Coalescing under sustained ECN marking: the batched run's victim
 *  p99 must stay inside a 1.5x + 250 us envelope of the unbatched
 *  run (the linger bound is 2 us; anything beyond the envelope means
 *  batching is amplifying congestion), with byte-exact responses and
 *  no extra drops. */
TEST(CongestionBatching, CoalescingKeepsVictimTailInEnvelope)
{
    VictimResult plain = measure(/*batched=*/false);
    VictimResult batched = measure(/*batched=*/true);

    // Both runs must be genuinely congested and both victims served.
    EXPECT_GT(plain.ecnMarked, 0u);
    EXPECT_GT(batched.ecnMarked, 0u);
    EXPECT_GE(plain.completed, 50u);
    EXPECT_GE(batched.completed, 50u);
    EXPECT_EQ(plain.failures, 0u);
    EXPECT_EQ(batched.failures, 0u);

    double envelope = 1.5 * plain.p99us + 250.0;
    EXPECT_LE(batched.p99us, envelope)
        << "batched p99 " << batched.p99us << "us vs unbatched "
        << plain.p99us << "us";

    // Recorded in EXPERIMENTS.md (congestion x batching).
    ::testing::Test::RecordProperty("unbatched_p99us", plain.p99us);
    ::testing::Test::RecordProperty("batched_p99us", batched.p99us);
    std::printf("[congestion x batching] unbatched p50/p99 = "
                "%.1f/%.1f us, batched p50/p99 = %.1f/%.1f us, "
                "timeouts %llu -> %llu\n",
                plain.p50us, plain.p99us, batched.p50us,
                batched.p99us,
                static_cast<unsigned long long>(plain.timeouts),
                static_cast<unsigned long long>(batched.timeouts));
}

/**
 * @file
 * Chaos suite for accelerator-side batched rings: seeded FaultPlans
 * drop and delay link/RDMA transfers (and partition the remote
 * machine) while a fully batched Lynx echo service — SNIC-side
 * coalesced RX writes feeding gio recvBatch, responses committed
 * with sendBatch into pipelined pollTxBatch drains — serves closed-
 * loop traffic from a local and a remote GPU with failover enabled.
 *
 * The invariants, per fault kind and seed:
 *  - zero payload corruption ever reaches a client;
 *  - batched sweeps keep consuming through kSlotSkipErr gap-repair
 *    slots (the run makes progress and completes cleanly after
 *    heal() even when RDMA faults punched holes into the rings);
 *  - the batch counters prove the batched paths actually ran.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "host/node.hh"
#include "lynx/calibration.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "pcie/fabric.hh"
#include "rdma/qp.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "snic/bluefield.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

std::vector<std::uint8_t>
payloadFor(std::uint64_t seq)
{
    std::vector<std::uint8_t> p(64);
    for (std::size_t b = 0; b < p.size(); ++b)
        p[b] = static_cast<std::uint8_t>(seq * 131 + b * 17 + 7);
    return p;
}

enum class FaultKind { Drop, Delay, Partition };

struct ChaosOutcome
{
    std::uint64_t completed = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t failures = 0;
    std::uint64_t injected = 0;
    std::uint64_t batchRecvs = 0;
    std::uint64_t batchSends = 0;
    int convergedSent = 0;
    int converged = 0;
};

/**
 * One chaos run with every batching knob ON: faults active for the
 * first 18 ms, then healed; a convergence client verifies the healed
 * batched service end to end.
 */
ChaosOutcome
runBatchedChaos(FaultKind kind, std::uint64_t seed)
{
    sim::Simulator s;
    net::Network nw(s);
    snic::Bluefield bf(s, nw, "bf0");
    auto &clientNic = nw.addNic("client");
    host::Node remoteHost(s, nw, "server1");
    pcie::Fabric fabric(s, "pcie");
    accel::Gpu gpuL(s, "gpu-local", fabric);
    accel::Gpu gpuR(s, "gpu-remote", remoteHost.fabric());

    sim::FaultConfig fc;
    fc.seed = seed * 0x9e3779b97f4a7c15ull + 1;
    switch (kind) {
    case FaultKind::Drop: fc.dropRate = 0.04; break;
    case FaultKind::Delay: fc.delayRate = 0.08; break;
    case FaultKind::Partition: break;
    }
    sim::FaultPlan plan(fc);
    if (kind == FaultKind::Partition)
        plan.partition(bf.node(), remoteHost.id(), 3_ms, 12_ms);
    nw.setFaultPlan(&plan);

    core::RuntimeConfig cfg = bf.lynxRuntimeConfig();
    cfg.failover.enabled = true;
    cfg.mq.maxBatch = 8;
    cfg.dispatchMaxBatch = 8;
    cfg.dispatchFlushLinger = 30_us;
    cfg.forwarder.maxBatch = 8;
    cfg.gio.rxBurst = true;
    core::Runtime rt(s, cfg);
    rdma::RdmaPathModel lp;
    auto &hl = rt.addAccelerator("local", gpuL.memory(), lp);
    auto &hr = rt.addAccelerator(
        "remote", gpuR.memory(),
        lp.viaNetwork(calibration::rdmaRemoteExtraOneWay));
    rdma::QpFaultBinding fb;
    fb.plan = &plan;
    fb.initiator = bf.node();
    fb.target = remoteHost.id();
    hr.qp().bindFaults(fb);

    core::ServiceConfig scfg;
    scfg.name = "echo";
    scfg.port = 7000;
    auto &svc = rt.addService(scfg);
    auto qsL = rt.makeAccelQueues(svc, hl);
    auto qsR = rt.makeAccelQueues(svc, hr);
    apps::ServiceBatchConfig bcfg;
    bcfg.maxBatch = 4;
    bcfg.linger = 10_us;
    sim::spawn(s, apps::runEchoBlock(gpuL, *qsL[0], 2_us, 0, bcfg));
    sim::spawn(s, apps::runEchoBlock(gpuR, *qsR[0], 2_us, 0, bcfg));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &clientNic;
    lg.target = {bf.node(), 7000};
    lg.concurrency = 4;
    lg.warmup = 1_ms;
    lg.duration = 16_ms;
    lg.requestTimeout = 2_ms;
    lg.seed = seed;
    lg.makeRequest = [](std::uint64_t seq, sim::Rng &) {
        return payloadFor(seq);
    };
    lg.validate = [](const net::Message &resp) {
        return resp.payload == payloadFor(resp.seq);
    };
    workload::LoadGen gen(s, lg);
    gen.start();

    const sim::Tick healAt = 18_ms;
    s.schedule(healAt, [&] { plan.heal(); });

    ChaosOutcome out;
    auto convergence = [&]() -> sim::Task {
        co_await sim::sleep(healAt + 5_ms);
        auto &ep = clientNic.bind(net::Protocol::Udp, 45000);
        for (int i = 0; i < 10; ++i) {
            std::uint64_t seq = 1000000 + static_cast<std::uint64_t>(i);
            net::Message m;
            m.src = {clientNic.node(), 45000};
            m.dst = {bf.node(), 7000};
            m.proto = net::Protocol::Udp;
            m.payload = payloadFor(seq);
            m.seq = seq;
            ++out.convergedSent;
            co_await clientNic.send(std::move(m));
            auto resp = co_await workload::recvTimeout(s, ep, 10_ms);
            if (resp && resp->seq == seq &&
                resp->payload == payloadFor(seq))
                ++out.converged;
        }
    };
    sim::spawn(s, convergence());
    s.runUntil(140_ms);

    out.completed = gen.completed();
    out.timeouts = gen.timeouts();
    out.failures = gen.validationFailures();
    auto &ps = plan.stats();
    out.injected = ps.counterValue("drops") + ps.counterValue("delays") +
                   ps.counterValue("partition_drops");
    for (auto *q : {qsL[0].get(), qsR[0].get()}) {
        out.batchRecvs += q->stats().counterValue("batch.recvs");
        out.batchSends += q->stats().counterValue("batch.sends");
    }
    return out;
}

} // namespace

/**
 * Drop faults punch holes into the RDMA rings (repaired with
 * kSlotSkipErr markers); the batched sweeps must consume straight
 * through them: no corrupted response, service converges after heal.
 */
TEST(GpuBatchingChaos, BatchedRingsSurviveDropFaults)
{
    for (std::uint64_t seed : {3ull, 9ull}) {
        ChaosOutcome out = runBatchedChaos(FaultKind::Drop, seed);
        EXPECT_EQ(out.failures, 0u) << "seed " << seed;
        EXPECT_GT(out.completed, 0u) << "seed " << seed;
        EXPECT_GT(out.injected, 0u) << "seed " << seed;
        EXPECT_GT(out.batchRecvs, 0u) << "seed " << seed;
        EXPECT_GT(out.batchSends, 0u) << "seed " << seed;
        EXPECT_EQ(out.converged, out.convergedSent) << "seed " << seed;
    }
}

/** Delay faults reorder completions across the batched rings; every
 *  response must still match its request byte-for-byte. */
TEST(GpuBatchingChaos, BatchedRingsSurviveDelayFaults)
{
    for (std::uint64_t seed : {5ull, 11ull}) {
        ChaosOutcome out = runBatchedChaos(FaultKind::Delay, seed);
        EXPECT_EQ(out.failures, 0u) << "seed " << seed;
        EXPECT_GT(out.completed, 0u) << "seed " << seed;
        EXPECT_GT(out.injected, 0u) << "seed " << seed;
        EXPECT_GT(out.batchRecvs, 0u) << "seed " << seed;
        EXPECT_EQ(out.converged, out.convergedSent) << "seed " << seed;
    }
}

/** A mid-run partition of the remote machine must not corrupt a
 *  single batched response, and the service must converge once the
 *  partition lifts (failover keeps the local GPU serving). */
TEST(GpuBatchingChaos, BatchedRingsSurvivePartitionAndFailover)
{
    ChaosOutcome out = runBatchedChaos(FaultKind::Partition, 7);
    EXPECT_EQ(out.failures, 0u);
    EXPECT_GT(out.completed, 0u);
    EXPECT_GT(out.batchRecvs, 0u);
    EXPECT_EQ(out.converged, out.convergedSent);
}

/**
 * @file
 * Unit and property tests for the log-linear histogram. The property
 * tests check percentiles against an exact sorted reference within
 * the documented ~3% quantization bound.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/histogram.hh"
#include "sim/random.hh"

using namespace lynx::sim;

TEST(Histogram, EmptyHistogramReportsZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(Histogram, SmallValuesAreExact)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 32; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 32u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 31u);
    // Values below 32 land in exact unit buckets.
    EXPECT_EQ(h.percentile(100), 31u);
    EXPECT_EQ(h.percentile(50), 15u);
}

TEST(Histogram, SingleValueDominatesAllPercentiles)
{
    Histogram h;
    h.record(1234567);
    for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
        std::uint64_t v = h.percentile(p);
        EXPECT_NEAR(static_cast<double>(v), 1234567.0, 1234567.0 * 0.04);
    }
    EXPECT_EQ(h.max(), 1234567u);
    EXPECT_EQ(h.min(), 1234567u);
}

TEST(Histogram, MeanIsExact)
{
    Histogram h;
    h.record(10);
    h.record(20);
    h.record(60);
    EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(Histogram, RecordWithCountWeightsSamples)
{
    Histogram h;
    h.record(5, 99);
    h.record(1000, 1);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(50), 5u);
    EXPECT_GE(h.percentile(100), 1000u * 97 / 100);
}

TEST(Histogram, MergeCombinesSamples)
{
    Histogram a, b;
    a.record(10, 50);
    b.record(1000, 50);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 1000u);
    EXPECT_EQ(a.percentile(25), 10u);
    EXPECT_NEAR(static_cast<double>(a.percentile(99)), 1000.0, 40.0);
}

TEST(Histogram, ResetClearsState)
{
    Histogram h;
    h.record(42, 10);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(99), 0u);
    h.record(7);
    EXPECT_EQ(h.min(), 7u);
}

TEST(Histogram, PercentileNeverExceedsMax)
{
    Histogram h;
    h.record(1'000'000'007ull);
    h.record(3);
    EXPECT_LE(h.percentile(100), h.max());
}

/**
 * The percentile endpoints are exact, not bucket-quantized: p0 is
 * the recorded minimum and p100 the recorded maximum, for any mix of
 * magnitudes (large values land in wide buckets whose edges can
 * otherwise under/overshoot the recorded extremes).
 */
TEST(Histogram, PercentileEndpointsAreExactMinAndMax)
{
    Histogram h;
    for (std::uint64_t v :
         {3ull, 17ull, 999ull, 65'537ull, 1'000'000'007ull}) {
        h.record(v);
        EXPECT_EQ(h.percentile(0), h.min());
        EXPECT_EQ(h.percentile(100), h.max());
    }
    EXPECT_EQ(h.percentile(0), 3u);
    EXPECT_EQ(h.percentile(100), 1'000'000'007ull);
    // Every interior percentile stays inside the recorded range.
    for (double p : {0.1, 1.0, 25.0, 50.0, 75.0, 99.0, 99.9}) {
        EXPECT_GE(h.percentile(p), h.min()) << "p=" << p;
        EXPECT_LE(h.percentile(p), h.max()) << "p=" << p;
    }
}

/** Property sweep: percentile error vs. exact reference, per seed. */
class HistogramProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(HistogramProperty, PercentilesMatchSortedReferenceWithin4Percent)
{
    Rng rng(GetParam());
    Histogram h;
    std::vector<std::uint64_t> ref;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        // Mix of magnitudes: latency-like distribution.
        std::uint64_t v;
        switch (rng.below(3)) {
          case 0: v = rng.between(1, 100); break;
          case 1: v = rng.between(100, 100'000); break;
          default: v = rng.between(100'000, 50'000'000); break;
        }
        h.record(v);
        ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
        std::size_t rank = static_cast<std::size_t>(p / 100.0 * n);
        if (rank == 0)
            rank = 1;
        std::uint64_t exact = ref[rank - 1];
        std::uint64_t approx = h.percentile(p);
        EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                    static_cast<double>(exact) * 0.04 + 1.0)
            << "p=" << p;
    }
    EXPECT_EQ(h.min(), ref.front());
    EXPECT_EQ(h.max(), ref.back());
    EXPECT_EQ(h.percentile(0), ref.front());
    EXPECT_EQ(h.percentile(100), ref.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramProperty,
                         ::testing::Values(7, 11, 23, 42, 1337));

/**
 * @file
 * Property tests over the full Lynx stack: for randomized payloads
 * and a grid of (protocol, queue count, payload size, ring geometry)
 * configurations, every request must come back byte-exact, exactly
 * once, with conservation of message counts across the pipeline
 * stages (NIC -> dispatcher -> mqueue -> gio -> forwarder -> client).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

struct World
{
    sim::Simulator s;
    net::Network nw{s};
    snic::Bluefield bf{s, nw, "bf0"};
    net::Nic &clientNic = nw.addNic("client");
    pcie::Fabric fabric{s, "pcie"};
    accel::Gpu gpu{s, "k40m", fabric};
    std::unique_ptr<core::Runtime> rt;
    std::vector<std::unique_ptr<core::AccelQueue>> queues;
    core::Service *svc = nullptr;

    World(net::Protocol proto, int nQueues, std::uint32_t ringSlots,
          std::uint32_t slotBytes)
    {
        rt = std::make_unique<core::Runtime>(s, bf.lynxRuntimeConfig());
        auto &accel = rt->addAccelerator("k40m", gpu.memory(),
                                         rdma::RdmaPathModel{});
        core::ServiceConfig scfg;
        scfg.name = "prop";
        scfg.port = 7000;
        scfg.proto = proto;
        scfg.queuesPerAccel = nQueues;
        scfg.ringSlots = ringSlots;
        scfg.slotBytes = slotBytes;
        svc = &rt->addService(scfg);
        queues = rt->makeAccelQueues(*svc, accel);
        for (auto &q : queues)
            sim::spawn(s, apps::runEchoBlock(gpu, *q, 5_us));
        rt->start();
    }
};

} // namespace

/** (proto, queues, payloadBytes, ringSlots, seed) */
using EchoParam = std::tuple<net::Protocol, int, int, int,
                             std::uint64_t>;

class LynxEchoProperty : public ::testing::TestWithParam<EchoParam>
{};

TEST_P(LynxEchoProperty, RandomPayloadsEchoExactlyOnceByteExact)
{
    auto [proto, nQueues, payloadBytes, ringSlots, seed] = GetParam();
    World w(proto, nQueues, static_cast<std::uint32_t>(ringSlots),
            2048);

    const int total = 150;
    workload::LoadGenConfig lg;
    lg.nic = &w.clientNic;
    lg.target = {w.bf.node(), 7000};
    lg.proto = proto;
    lg.concurrency = 4;
    lg.warmup = 0;
    lg.duration = 500_ms; // generous: the count below ends the run
    lg.seed = seed;
    lg.requestTimeout = 300_ms;
    lg.makeRequest = [&, payloadBytes](std::uint64_t seq,
                                       sim::Rng &rng) {
        std::vector<std::uint8_t> p(
            static_cast<std::size_t>(payloadBytes));
        for (auto &b : p)
            b = static_cast<std::uint8_t>(rng.below(256));
        // Stamp the sequence for integrity checking.
        if (p.size() >= 8) {
            for (int i = 0; i < 8; ++i)
                p[static_cast<std::size_t>(i)] =
                    static_cast<std::uint8_t>(seq >> (8 * i));
        }
        return p;
    };
    std::uint64_t echoed = 0, integrityErrors = 0;
    lg.validate = [&](const net::Message &resp) {
        ++echoed;
        if (resp.payload.size() !=
            static_cast<std::size_t>(payloadBytes)) {
            ++integrityErrors;
            return false;
        }
        if (resp.payload.size() >= 8) {
            std::uint64_t got = 0;
            for (int i = 0; i < 8; ++i)
                got |= static_cast<std::uint64_t>(
                           resp.payload[static_cast<std::size_t>(i)])
                       << (8 * i);
            if (got != resp.seq) {
                ++integrityErrors;
                return false;
            }
        }
        return true;
    };
    workload::LoadGen gen(w.s, lg);
    gen.start();

    // Run until `total` responses (or the window closes).
    while (echoed < total && w.s.now() < lg.warmup + lg.duration) {
        w.s.runUntil(w.s.now() + 1_ms);
    }
    EXPECT_GE(echoed, static_cast<std::uint64_t>(total));
    EXPECT_EQ(integrityErrors, 0u);
    EXPECT_EQ(gen.validationFailures(), 0u);

    // Conservation: everything the dispatcher accepted reached a gio
    // queue and every response was forwarded exactly once.
    std::uint64_t dispatched =
        w.svc->dispatcher().stats().counterValue("dispatched");
    std::uint64_t gioRx = 0, gioTx = 0;
    for (auto &q : w.queues) {
        gioRx += q->stats().counterValue("rx_msgs");
        gioTx += q->stats().counterValue("tx_msgs");
    }
    EXPECT_LE(gioRx, dispatched);
    EXPECT_GE(gioTx, echoed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LynxEchoProperty,
    ::testing::Values(
        EchoParam{net::Protocol::Udp, 1, 16, 16, 1},
        EchoParam{net::Protocol::Udp, 4, 64, 16, 2},
        EchoParam{net::Protocol::Udp, 16, 256, 8, 3},
        EchoParam{net::Protocol::Udp, 4, 1400, 16, 4},
        EchoParam{net::Protocol::Udp, 2, 64, 2, 5},   // tiny rings
        EchoParam{net::Protocol::Udp, 3, 777, 3, 6},  // odd geometry
        EchoParam{net::Protocol::Tcp, 1, 64, 16, 7},
        EchoParam{net::Protocol::Tcp, 8, 512, 16, 8},
        EchoParam{net::Protocol::Udp, 1, 8, 16, 9},   // < seq stamp
        EchoParam{net::Protocol::Udp, 32, 128, 4, 10}));

TEST(LynxMultiplexing, ManyClientsShareOneServerMqueue)
{
    // §4.5: "Lynx allows multiplexing multiple connections over the
    // same server mqueue" — 40 concurrent clients, one mqueue.
    World w(net::Protocol::Udp, 1, 16, 2048);
    const int clients = 40;
    std::map<std::uint16_t, int> perClient;

    auto &ep0 = w.clientNic; // all workers on one NIC, many ports
    std::vector<std::unique_ptr<workload::LoadGen>> gens;
    workload::LoadGenConfig lg;
    lg.nic = &ep0;
    lg.target = {w.bf.node(), 7000};
    lg.concurrency = clients;
    lg.warmup = 0;
    lg.duration = 30_ms;
    lg.requestTimeout = 200_ms;
    workload::LoadGen gen(w.s, lg);
    gen.start();
    w.s.runUntil(gen.windowEnd() + 5_ms);

    EXPECT_GT(gen.completed(), 1000u);
    EXPECT_EQ(gen.validationFailures(), 0u);
    // One mqueue carried all of it.
    EXPECT_GE(w.queues[0]->stats().counterValue("rx_msgs"),
              gen.completed());
}

TEST(LynxMultiplexing, TagTableBoundsOutstandingRequestsSafely)
{
    // Hammer one tiny mqueue far beyond its capacity: drops are fine,
    // corruption and tag-table leaks are not.
    World w(net::Protocol::Udp, 1, 4, 256);
    workload::LoadGenConfig lg;
    lg.nic = &w.clientNic;
    lg.target = {w.bf.node(), 7000};
    lg.openRate = 500'000; // far above one echo block's capacity
    lg.warmup = 1_ms;
    lg.duration = 30_ms;
    lg.makeRequest = [](std::uint64_t, sim::Rng &) {
        return std::vector<std::uint8_t>(32, 1);
    };
    workload::LoadGen gen(w.s, lg);
    gen.start();
    w.s.runUntil(gen.windowEnd() + 10_ms);

    // Overload: many sent, some dropped, everything echoed is valid.
    EXPECT_GT(gen.sent(), gen.completed());
    EXPECT_EQ(gen.validationFailures(), 0u);
    auto &d = w.svc->dispatcher().stats();
    EXPECT_GT(d.counterValue("dropped_ring_full") +
                  d.counterValue("dropped_no_tag"),
              0u);
    // After the dust settles the service still works: tag table must
    // not have leaked (a fresh request round-trips).
    workload::LoadGenConfig probe;
    probe.nic = &w.clientNic;
    probe.basePort = 45000;
    probe.target = {w.bf.node(), 7000};
    probe.concurrency = 1;
    probe.warmup = w.s.now() + 5_ms;
    probe.duration = 10_ms;
    workload::LoadGen probeGen(w.s, probe);
    probeGen.start();
    w.s.runUntil(w.s.now() + 25_ms);
    EXPECT_GT(probeGen.completed(), 50u);
    EXPECT_EQ(probeGen.validationFailures(), 0u);
}

/**
 * @file
 * AES-128 tests, including the FIPS-197 Appendix B/C vectors.
 */

#include <gtest/gtest.h>

#include "apps/aes.hh"
#include "sim/random.hh"

using lynx::apps::Aes128;

namespace {

Aes128::Block
block(std::initializer_list<int> xs)
{
    Aes128::Block b{};
    int i = 0;
    for (int x : xs)
        b[static_cast<std::size_t>(i++)] = static_cast<std::uint8_t>(x);
    return b;
}

} // namespace

TEST(Aes128, Fips197AppendixBVector)
{
    // FIPS-197 Appendix B: key 2b7e1516..., plaintext 3243f6a8...
    Aes128 aes(block({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                      0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}));
    auto cipher = aes.encrypt(
        block({0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31,
               0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}));
    auto expect = block({0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                         0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32});
    EXPECT_EQ(cipher, expect);
}

TEST(Aes128, Fips197AppendixCVector)
{
    // FIPS-197 Appendix C.1: key 000102...0f, plaintext 001122...ff.
    Aes128 aes(block({0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                      0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}));
    auto cipher = aes.encrypt(
        block({0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88,
               0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}));
    auto expect = block({0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                         0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a});
    EXPECT_EQ(cipher, expect);
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    lynx::sim::Rng rng(7);
    Aes128::Key key{};
    for (auto &b : key)
        b = static_cast<std::uint8_t>(rng.below(256));
    Aes128 aes(key);
    for (int trial = 0; trial < 50; ++trial) {
        Aes128::Block plain{};
        for (auto &b : plain)
            b = static_cast<std::uint8_t>(rng.below(256));
        EXPECT_EQ(aes.decrypt(aes.encrypt(plain)), plain);
    }
}

TEST(Aes128, EncryptChangesData)
{
    Aes128 aes(block({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                      15, 16}));
    Aes128::Block plain{};
    auto cipher = aes.encrypt(plain);
    EXPECT_NE(cipher, plain);
}

TEST(Aes128, CtrRoundTripsArbitraryLengths)
{
    Aes128 aes(block({9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}));
    Aes128::Block iv = block({1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                              0, 0});
    for (std::size_t n : {1u, 4u, 15u, 16u, 17u, 100u}) {
        std::vector<std::uint8_t> data(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] = static_cast<std::uint8_t>(i * 7 + 1);
        auto enc = aes.ctr(data, iv);
        EXPECT_NE(enc, data);
        auto dec = aes.ctr(enc, iv);
        EXPECT_EQ(dec, data);
    }
}

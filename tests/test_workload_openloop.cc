/**
 * @file
 * Open-loop load generator tests: the coordinated-omission fix
 * (latency measured from *intended* send times), per-request timeout
 * and loss accounting with its exact conservation invariant, SLO
 * goodput, the source-port pool, and the fail-fast port-range checks.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/network.hh"
#include "sim/fault.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

/** A fixed-service-time echo server (records source ports seen). */
struct EchoService
{
    sim::Simulator &s;
    net::Nic &nic;
    sim::Tick serviceTime;
    std::set<std::uint16_t> srcPorts = {};

    void
    start(std::uint16_t port)
    {
        net::Endpoint &ep = nic.bind(net::Protocol::Udp, port);
        sim::spawn(s, loop(ep, port));
    }

    sim::Task
    loop(net::Endpoint &ep, std::uint16_t port)
    {
        for (;;) {
            net::Message m = co_await ep.recv();
            srcPorts.insert(m.src.port);
            if (serviceTime)
                co_await sim::sleep(serviceTime);
            net::Message r;
            r.src = {nic.node(), port};
            r.dst = m.src;
            r.proto = m.proto;
            r.payload = m.payload;
            r.seq = m.seq;
            r.sentAt = m.sentAt;
            co_await nic.send(std::move(r));
        }
    }
};

/** One open-loop run against an echo service; returns the generator
 *  for inspection. The client NIC's link rate is the experiment knob:
 *  slow links backpressure the sender. */
struct OpenRun
{
    sim::Simulator s;
    net::Network nw{s};
    net::Nic &serverNic;
    net::Nic &clientNic;
    EchoService svc;
    workload::LoadGen gen;

    OpenRun(double clientGbps, double rate, sim::Tick timeout,
            sim::Tick settle)
        : serverNic(nw.addNic("server")),
          clientNic(nw.addNic("client", makeCfg(clientGbps))),
          svc{s, serverNic, 10_us},
          gen(s, makeGenCfg(rate, timeout))
    {
        svc.start(7000);
        gen.start();
        s.runUntil(gen.windowEnd() + settle);
    }

    static net::NicConfig
    makeCfg(double gbps)
    {
        net::NicConfig nc;
        nc.gbps = gbps;
        return nc;
    }

    workload::LoadGenConfig
    makeGenCfg(double rate, sim::Tick timeout)
    {
        workload::LoadGenConfig cfg;
        cfg.nic = &clientNic;
        cfg.target = {serverNic.node(), 7000};
        cfg.openRate = rate;
        cfg.warmup = 2_ms;
        cfg.duration = 20_ms;
        cfg.requestTimeout = timeout;
        return cfg;
    }
};

} // namespace

/**
 * THE coordinated-omission regression. The old open loop drew the
 * next Poisson gap only after `co_await nic->send(...)` returned, so
 * a backpressured NIC silently stretched the schedule and the
 * recorded tail *improved* under overload. With the schedule pinned
 * to absolute intended times, a client link too slow for the offered
 * load must push the recorded tail *up* by the accumulated slip.
 */
TEST(OpenLoopCo, BackpressuredNicRaisesRecordedTailNotGaps)
{
    // 40 Gb/s: a 64 B request serializes in ~13 ns, no backpressure.
    OpenRun fast(40.0, 100'000.0, 1_s, 100_ms);
    // 5 Mb/s: ~102 us per request against a 10 us intended gap; the
    // sender falls ever further behind its schedule.
    OpenRun slow(0.005, 100'000.0, 1_s, 900_ms);

    ASSERT_GT(fast.gen.completed(), 100u);
    ASSERT_GT(slow.gen.completed(), 100u);

    std::uint64_t p99Fast = fast.gen.latency().percentile(99);
    std::uint64_t p99Slow = slow.gen.latency().percentile(99);
    // The direction is the regression: under coordinated omission the
    // backpressured run recorded an (absurd) *lower-or-equal* tail.
    EXPECT_GT(p99Slow, p99Fast);
    // And the magnitude is the accumulated schedule slip —
    // milliseconds, not the microseconds a stretched-gap measurement
    // would claim.
    EXPECT_GT(p99Slow, static_cast<std::uint64_t>(5_ms));
    EXPECT_LT(p99Fast, static_cast<std::uint64_t>(1_ms));

    EXPECT_TRUE(fast.gen.conservationHolds());
    EXPECT_TRUE(slow.gen.conservationHolds());
}

TEST(OpenLoopCo, UnstressedScheduleStillHitsTargetRate)
{
    OpenRun run(40.0, 50'000.0, 20_ms, 5_ms);
    EXPECT_NEAR(run.gen.throughputRps(), 50'000.0, 3'000.0);
    EXPECT_EQ(run.gen.lost(), 0u);
    EXPECT_EQ(run.gen.late(), 0u);
    EXPECT_TRUE(run.gen.conservationHolds());
}

/**
 * The open-loop books must balance *exactly*, whatever a lossy and
 * reordering network does: every in-window request ends up in exactly
 * one of completed / validation-failed / late / lost / in-flight.
 * The terms are maintained by three independent code paths (sender,
 * receiver, expiry sweeper), so this is a real invariant.
 */
TEST(OpenLoopAccounting, ConservationHoldsUnderFaultsAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        sim::Simulator s;
        net::Network nw(s);
        auto &serverNic = nw.addNic("server");
        auto &clientNic = nw.addNic("client");

        sim::FaultConfig fc;
        fc.dropRate = 0.15;  // lost requests/responses
        fc.delayRate = 0.2;  // stragglers past the deadline
        fc.delayMin = 5_ms;
        fc.delayMax = 9_ms;
        fc.seed = seed * 977;
        sim::FaultPlan faults(fc);
        nw.setFaultPlan(&faults);

        EchoService svc{s, serverNic, 5_us};
        svc.start(7000);

        workload::LoadGenConfig cfg;
        cfg.nic = &clientNic;
        cfg.target = {serverNic.node(), 7000};
        cfg.openRate = 20'000.0;
        cfg.warmup = 2_ms;
        cfg.duration = 50_ms;
        cfg.requestTimeout = 3_ms;
        cfg.seed = seed;
        workload::LoadGen gen(s, cfg);
        gen.start();
        // Far past the window: every deadline has passed and every
        // straggler has arrived, so nothing is left in flight.
        s.runUntil(gen.windowEnd() + 50_ms);

        EXPECT_EQ(gen.openInFlight(), 0u) << "seed " << seed;
        EXPECT_TRUE(gen.conservationHolds())
            << "seed " << seed << ": sent=" << gen.sent()
            << " completed=" << gen.completed()
            << " late=" << gen.late() << " lost=" << gen.lost()
            << " inFlight=" << gen.openInFlight();
        EXPECT_EQ(gen.sent(), gen.completed() + gen.late() +
                                  gen.lost() + gen.openInFlight())
            << "seed " << seed;
        // The fault plan actually exercised both loss classes.
        EXPECT_GT(gen.lost(), 0u) << "seed " << seed;
        EXPECT_GT(gen.late(), 0u) << "seed " << seed;
        EXPECT_GT(gen.completed(), 0u) << "seed " << seed;
        // Timeouts fired for everything that missed its deadline,
        // answered late or not.
        EXPECT_EQ(gen.timeouts(), gen.lost() + gen.late())
            << "seed " << seed;
    }
}

TEST(OpenLoopAccounting, LateResponsesStayOutOfTheLatencySample)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");

    sim::FaultConfig fc;
    fc.delayRate = 1.0; // every transfer held back...
    fc.delayMin = 5_ms; // ...past the 2 ms request timeout
    fc.delayMax = 8_ms;
    fc.seed = 7;
    sim::FaultPlan faults(fc);
    nw.setFaultPlan(&faults);

    EchoService svc{s, serverNic, 0};
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.openRate = 5'000.0;
    cfg.warmup = 0;
    cfg.duration = 40_ms;
    cfg.requestTimeout = 2_ms;
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 60_ms);

    // Round trips are >= 10 ms against a 2 ms deadline: everything
    // expires first and answers late.
    EXPECT_EQ(gen.completed(), 0u);
    EXPECT_EQ(gen.latency().count(), 0u);
    EXPECT_GT(gen.late(), 0u);
    EXPECT_EQ(gen.lost(), 0u); // every answer did arrive
    EXPECT_TRUE(gen.conservationHolds());
}

TEST(OpenLoopValidation, FailedResponsesAreNotCompletions)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");
    EchoService svc{s, serverNic, 5_us};
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.openRate = 20'000.0;
    cfg.warmup = 1_ms;
    cfg.duration = 30_ms;
    // Every other response "corrupt": must be counted, not recorded.
    cfg.validate = [](const net::Message &r) { return r.seq % 2 == 0; };
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 5_ms);

    EXPECT_GT(gen.validationFailures(), 0u);
    EXPECT_GT(gen.completed(), 0u);
    // The exclusion regression: completions and the latency sample
    // must agree exactly — a failed response contributes to neither.
    EXPECT_EQ(gen.latency().count(), gen.completed());
    EXPECT_NEAR(static_cast<double>(gen.windowValidationFailures()),
                static_cast<double>(gen.completed()),
                static_cast<double>(gen.sent()) * 0.1);
    EXPECT_TRUE(gen.conservationHolds());
}

TEST(ClosedLoopValidation, FailedResponsesAreNotCompletions)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");
    EchoService svc{s, serverNic, 1_us};
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.concurrency = 2;
    cfg.warmup = 0;
    cfg.duration = 10_ms;
    cfg.validate = [](const net::Message &) { return false; };
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 2_ms);

    EXPECT_GT(gen.validationFailures(), 0u);
    // The regression: these used to be counted as completions AND
    // recorded into the latency histogram.
    EXPECT_EQ(gen.completed(), 0u);
    EXPECT_EQ(gen.latency().count(), 0u);
    EXPECT_EQ(gen.goodput(), 0u);
}

TEST(OpenLoopSlo, GoodputCountsOnlyWithinSloCompletions)
{
    auto run = [](sim::Tick slo) {
        sim::Simulator s;
        net::Network nw(s);
        auto &serverNic = nw.addNic("server");
        auto &clientNic = nw.addNic("client");
        EchoService svc{s, serverNic, 100_us};
        svc.start(7000);
        workload::LoadGenConfig cfg;
        cfg.nic = &clientNic;
        cfg.target = {serverNic.node(), 7000};
        cfg.openRate = 10'000.0;
        cfg.warmup = 1_ms;
        cfg.duration = 30_ms;
        cfg.slo = slo;
        workload::LoadGen gen(s, cfg);
        gen.start();
        s.runUntil(gen.windowEnd() + 5_ms);
        return std::pair<std::uint64_t, std::uint64_t>(
            gen.completed(), gen.goodput());
    };

    // No SLO: goodput degenerates to completions.
    auto [cAll, gAll] = run(0);
    EXPECT_GT(cAll, 100u);
    EXPECT_EQ(gAll, cAll);

    // SLO below the ~100 us service floor: completions, zero goodput.
    auto [cTight, gTight] = run(50_us);
    EXPECT_GT(cTight, 100u);
    EXPECT_EQ(gTight, 0u);

    // Generous SLO: everything is good again.
    auto [cLoose, gLoose] = run(10_ms);
    EXPECT_EQ(gLoose, cLoose);
}

TEST(OpenLoopPorts, LogicalClientsMultiplexOntoThePortPool)
{
    sim::Simulator s;
    net::Network nw(s);
    auto &serverNic = nw.addNic("server");
    auto &clientNic = nw.addNic("client");
    EchoService svc{s, serverNic, 5_us};
    svc.start(7000);

    workload::LoadGenConfig cfg;
    cfg.nic = &clientNic;
    cfg.target = {serverNic.node(), 7000};
    cfg.openRate = 20'000.0;
    cfg.warmup = 1_ms;
    cfg.duration = 30_ms;
    cfg.openPorts = 4;
    cfg.logicalClients = 100'000;
    workload::LoadGen gen(s, cfg);
    gen.start();
    s.runUntil(gen.windowEnd() + 5_ms);

    // 100k logical clients over a 4-port pool: every pool port is a
    // live flow, and responses still match their requests.
    EXPECT_EQ(svc.srcPorts.size(), 4u);
    for (std::uint16_t p = 40000; p < 40004; ++p)
        EXPECT_TRUE(svc.srcPorts.count(p)) << "port " << p;
    EXPECT_GT(gen.completed(), 200u);
    EXPECT_TRUE(gen.conservationHolds());
    EXPECT_EQ(gen.staleResponses(), 0u);
}

TEST(PortRangeDeath, ClosedLoopWorkerRangePastUint16FailsFast)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            sim::Simulator s;
            net::Network nw(s);
            auto &clientNic = nw.addNic("client");
            workload::LoadGenConfig cfg;
            cfg.nic = &clientNic;
            cfg.basePort = 65500;
            cfg.concurrency = 100; // 65500 + 99 wraps
            workload::LoadGen gen(s, cfg);
        },
        ::testing::ExitedWithCode(1), "wraps past 65535");
}

TEST(PortRangeDeath, OpenLoopPortPoolPastUint16FailsFast)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            sim::Simulator s;
            net::Network nw(s);
            auto &clientNic = nw.addNic("client");
            workload::LoadGenConfig cfg;
            cfg.nic = &clientNic;
            cfg.openRate = 1000.0;
            cfg.basePort = 65000;
            cfg.openPorts = 1000; // pool end wraps
            workload::LoadGen gen(s, cfg);
        },
        ::testing::ExitedWithCode(1), "wraps past 65535");
}

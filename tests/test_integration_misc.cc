/**
 * @file
 * Cross-cutting integration tests: accelerator composition (two
 * services pipelined through the SNIC), multi-service isolation,
 * runtime misuse diagnostics, and stats plumbing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "accel/gpu.hh"
#include "apps/gpu_services.hh"
#include "lynx/runtime.hh"
#include "net/network.hh"
#include "snic/bluefield.hh"
#include "sim/simulator.hh"
#include "workload/loadgen.hh"

using namespace lynx;
using namespace lynx::sim::literals;

namespace {

struct Rig
{
    sim::Simulator s;
    net::Network nw{s};
    snic::Bluefield bf{s, nw, "bf0"};
    net::Nic &clientNic = nw.addNic("client");
    pcie::Fabric fabric{s, "pcie"};
    accel::Gpu gpuA{s, "gpu-a", fabric};
    accel::Gpu gpuB{s, "gpu-b", fabric};
};

} // namespace

TEST(Composition, TwoStagePipelineThroughTheSnic)
{
    // Stage 1 on GPU A increments each byte, then consults stage 2
    // (GPU B doubles each byte) through a client mqueue whose backend
    // is the SNIC's own second service.
    Rig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    auto &accelA = rt.addAccelerator("a", r.gpuA.memory(),
                                     rdma::RdmaPathModel{});
    auto &accelB = rt.addAccelerator("b", r.gpuB.memory(),
                                     rdma::RdmaPathModel{});
    core::ServiceConfig front;
    front.name = "front";
    front.port = 7000;
    front.accels = {&accelA};
    auto &frontSvc = rt.addService(front);
    core::ServiceConfig back;
    back.name = "back";
    back.port = 7001;
    back.accels = {&accelB};
    auto &backSvc = rt.addService(back);
    auto stage2Ref = rt.addClientQueue(accelA, "a2b",
                                       {r.bf.node(), 7001},
                                       net::Protocol::Udp);

    auto frontQs = rt.makeAccelQueues(frontSvc, accelA);
    auto stage2Q = rt.makeAccelQueue(stage2Ref);
    auto backQs = rt.makeAccelQueues(backSvc, accelB);

    auto stage1 = [&]() -> sim::Task {
        co_await r.gpuA.slots().acquire(1);
        std::uint32_t tag = 1;
        for (;;) {
            core::GioMessage m = co_await frontQs[0]->recv();
            for (auto &b : m.payload)
                b = static_cast<std::uint8_t>(b + 1);
            co_await stage2Q->send(tag++, m.payload);
            core::GioMessage resp = co_await stage2Q->recv();
            EXPECT_EQ(resp.err, 0u);
            co_await frontQs[0]->send(m.tag, resp.payload);
        }
    };
    auto stage2 = [&]() -> sim::Task {
        co_await r.gpuB.slots().acquire(1);
        for (;;) {
            core::GioMessage m = co_await backQs[0]->recv();
            for (auto &b : m.payload)
                b = static_cast<std::uint8_t>(b * 2);
            co_await backQs[0]->send(m.tag, m.payload);
        }
    };
    sim::spawn(r.s, stage1());
    sim::spawn(r.s, stage2());
    rt.start();

    auto &ep = r.clientNic.bind(net::Protocol::Udp, 40000);
    std::vector<std::uint8_t> got;
    auto client = [&]() -> sim::Task {
        net::Message m;
        m.src = {r.clientNic.node(), 40000};
        m.dst = {r.bf.node(), 7000};
        m.proto = net::Protocol::Udp;
        m.payload = {1, 2, 3, 100};
        co_await r.clientNic.send(std::move(m));
        net::Message resp = co_await ep.recv();
        got = resp.payload.toVector();
    };
    sim::spawn(r.s, client());
    r.s.run();
    // (x + 1) * 2
    EXPECT_EQ(got, (std::vector<std::uint8_t>{4, 6, 8, 202}));
}

TEST(MultiService, TenantsAreIsolatedByAcceleratorFilter)
{
    Rig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    auto &accelA = rt.addAccelerator("a", r.gpuA.memory(),
                                     rdma::RdmaPathModel{});
    auto &accelB = rt.addAccelerator("b", r.gpuB.memory(),
                                     rdma::RdmaPathModel{});
    core::ServiceConfig ca;
    ca.name = "svcA";
    ca.port = 7000;
    ca.accels = {&accelA};
    auto &svcA = rt.addService(ca);
    core::ServiceConfig cb;
    cb.name = "svcB";
    cb.port = 7001;
    cb.accels = {&accelB};
    auto &svcB = rt.addService(cb);

    auto qa = rt.makeAccelQueues(svcA, accelA);
    auto qb = rt.makeAccelQueues(svcB, accelB);
    sim::spawn(r.s, apps::runEchoBlock(r.gpuA, *qa[0], 10_us));
    sim::spawn(r.s, apps::runEchoBlock(r.gpuB, *qb[0], 10_us));
    rt.start();

    workload::LoadGenConfig lg;
    lg.nic = &r.clientNic;
    lg.target = {r.bf.node(), 7000};
    lg.warmup = 1_ms;
    lg.duration = 20_ms;
    workload::LoadGen genA(r.s, lg);
    lg.target = {r.bf.node(), 7001};
    lg.basePort = 41000;
    workload::LoadGen genB(r.s, lg);
    genA.start();
    genB.start();
    r.s.runUntil(genA.windowEnd() + 2_ms);

    EXPECT_GT(genA.completed(), 100u);
    EXPECT_GT(genB.completed(), 100u);
    // Strict isolation: each tenant's traffic only on its GPU.
    EXPECT_GE(qa[0]->stats().counterValue("rx_msgs"),
              genA.completed());
    EXPECT_GE(qb[0]->stats().counterValue("rx_msgs"),
              genB.completed());
    // svcA's layouts do not exist on accelB and vice versa.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH((void)svcA.layoutsFor(accelB), "no queues");
    EXPECT_DEATH((void)svcB.layoutsFor(accelA), "no queues");
}

TEST(RuntimeMisuse, AcceleratorAfterServicePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    rt.addAccelerator("a", r.gpuA.memory(), rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    rt.addService(scfg);
    EXPECT_DEATH(rt.addAccelerator("b", r.gpuB.memory(),
                                   rdma::RdmaPathModel{}),
                 "before adding services");
}

TEST(RuntimeMisuse, DoubleStartPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    rt.addAccelerator("a", r.gpuA.memory(), rdma::RdmaPathModel{});
    core::ServiceConfig scfg;
    scfg.port = 7000;
    rt.addService(scfg);
    rt.start();
    EXPECT_DEATH(rt.start(), "twice");
}

TEST(RuntimeMisuse, ServiceWithoutAcceleratorsPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Rig r;
    core::Runtime rt(r.s, r.bf.lynxRuntimeConfig());
    core::ServiceConfig scfg;
    EXPECT_DEATH(rt.addService(scfg), "no accelerators");
}

TEST(Stats, DumpPrintsCountersAndHistograms)
{
    sim::StatSet set;
    set.counter("requests").add(41);
    set.counter("requests").add();
    set.histogram("latency").record(100);
    set.histogram("latency").record(200);
    std::ostringstream os;
    set.dump(os, "svc.");
    std::string out = os.str();
    EXPECT_NE(out.find("svc.requests = 42"), std::string::npos);
    EXPECT_NE(out.find("svc.latency: n=2"), std::string::npos);
    set.reset();
    EXPECT_EQ(set.counterValue("requests"), 0u);
}

TEST(Stats, MissingCounterReadsZero)
{
    sim::StatSet set;
    EXPECT_EQ(set.counterValue("never-touched"), 0u);
}

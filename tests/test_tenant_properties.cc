/**
 * @file
 * Property tests of the multi-tenant dispatch plane (DESIGN.md §9):
 * smooth-WRR invariants under random sweeps (weight-proportional
 * service within a bounded window, work conservation when only one
 * tenant has work), TenantTable admission-cap and mqueue-quota
 * invariants (the cap and the quota are never exceeded, rejections
 * are counted), and tag-namespace staleness (a retired generation's
 * responses are dropped-and-counted, never delivered). Mirrors the
 * structure of test_congestion_properties.cc: pure-unit sweeps first,
 * then an integration rig of Dispatcher + SnicMqueue + AccelQueue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "lynx/dispatcher.hh"
#include "lynx/gio.hh"
#include "lynx/snic_mqueue.hh"
#include "lynx/tenant.hh"
#include "net/message.hh"
#include "pcie/memory.hh"
#include "rdma/qp.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace lynx;
using namespace lynx::sim::literals;
using lynx::core::AccelQueue;
using lynx::core::DispatchPolicy;
using lynx::core::Dispatcher;
using lynx::core::DispatcherConfig;
using lynx::core::GioMessage;
using lynx::core::MqueueKind;
using lynx::core::MqueueLayout;
using lynx::core::SnicMqueue;
using lynx::core::SnicMqueueConfig;
using lynx::core::TenantConfig;
using lynx::core::TenantId;
using lynx::core::TenantQuota;
using lynx::core::TenantTable;
using lynx::core::WrrPicker;

/*
 * ----- WrrPicker (pure unit sweeps) -----
 */

/** Smooth WRR's bounded-window guarantee: with stable eligibility,
 *  every window of sum(weights) consecutive picks serves entry i
 *  exactly weight(i) times — for random entry counts and weights,
 *  and from the very first window (no warm-up cycles). */
TEST(WrrProperties, WeightProportionalWithinEveryCycle)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        sim::Rng rng(seed);
        const std::size_t n = 2 + rng.below(5); // 2..6 tenants
        std::vector<std::int64_t> weights(n);
        std::int64_t total = 0;
        for (auto &w : weights) {
            w = 1 + static_cast<std::int64_t>(rng.below(8));
            total += w;
        }
        WrrPicker p;
        for (int cycle = 0; cycle < 10; ++cycle) {
            std::vector<std::int64_t> count(n, 0);
            for (std::int64_t k = 0; k < total; ++k) {
                std::size_t i =
                    p.pick(n, [&](std::size_t j) { return weights[j]; });
                ASSERT_LT(i, n);
                ++count[i];
            }
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(count[i], weights[i])
                    << "cycle " << cycle << " entry " << i;
        }
    }
}

/** Work conservation: whatever credit history has accumulated, the
 *  picker always serves *some* eligible entry — the sole eligible
 *  one when only one has work, and kNone only when nothing does. */
TEST(WrrProperties, WorkConservingUnderRandomEligibility)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        sim::Rng rng(seed);
        const std::size_t n = 4;
        std::vector<std::int64_t> weights(n);
        for (auto &w : weights)
            w = 1 + static_cast<std::int64_t>(rng.below(8));
        WrrPicker p;
        for (int step = 0; step < 500; ++step) {
            std::uint64_t mask = rng.below(1u << n); // possibly empty
            std::size_t i = p.pick(n, [&](std::size_t j) {
                return (mask >> j) & 1 ? weights[j] : 0;
            });
            if (mask == 0) {
                EXPECT_EQ(i, WrrPicker::kNone);
            } else {
                ASSERT_LT(i, n);
                EXPECT_TRUE((mask >> i) & 1)
                    << "picked an ineligible entry";
                // A lone eligible entry is always the winner,
                // no matter how starved its credit is.
                if ((mask & (mask - 1)) == 0) {
                    EXPECT_EQ(mask, 1ull << i);
                }
            }
        }
    }
}

/** unpick() is an exact inverse of pick(): a refunded turn leaves no
 *  trace, so a re-pick under the same eligibility chooses the same
 *  winner, and randomly injected pick/unpick pairs (a full ring's
 *  "doomed pick") never disturb the per-cycle proportionality. */
TEST(WrrProperties, UnpickRestoresStateExactly)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        sim::Rng rng(seed);
        const std::size_t n = 2 + rng.below(5);
        std::vector<std::int64_t> weights(n);
        std::int64_t total = 0;
        for (auto &w : weights) {
            w = 1 + static_cast<std::int64_t>(rng.below(8));
            total += w;
        }
        WrrPicker p;
        auto fn = [&](std::size_t j) { return weights[j]; };
        for (int cycle = 0; cycle < 10; ++cycle) {
            std::vector<std::int64_t> count(n, 0);
            for (std::int64_t k = 0; k < total; ++k) {
                // Fail-and-refund a few turns before the served one.
                while (rng.below(3) == 0) {
                    std::size_t doomed = p.pick(n, fn);
                    ASSERT_LT(doomed, n);
                    p.unpick();
                    std::size_t again = p.pick(n, fn);
                    EXPECT_EQ(again, doomed)
                        << "refunded pick left a trace";
                    p.unpick();
                }
                std::size_t i = p.pick(n, fn);
                ASSERT_LT(i, n);
                ++count[i];
            }
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(count[i], weights[i])
                    << "cycle " << cycle << " entry " << i;
        }
        p.unpick(); // refunds the cycle's final pick…
        p.unpick(); // …and the second refund is a guarded no-op
        std::size_t i = p.pick(n, fn);
        ASSERT_LT(i, n); // the picker still serves afterwards
    }
}

/*
 * ----- TenantTable admission + generations (unit) -----
 */

/** The maxInFlight cap is never exceeded under random interleavings
 *  of arrivals and completions, every arrival is accounted exactly
 *  once (admitted or rejected), and draining returns each tenant to
 *  zero in flight. */
TEST(TenantTableProperties, AdmissionCapNeverExceeded)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        sim::Rng rng(seed);
        sim::Simulator s;
        TenantConfig cfg;
        cfg.enabled = true;
        cfg.autoRegister = false;
        TenantTable table(s, cfg);

        const std::size_t n = 1 + rng.below(4);
        std::vector<TenantId> ids;
        std::vector<std::uint32_t> cap(n);
        for (std::size_t i = 0; i < n; ++i) {
            TenantQuota q;
            q.maxInFlight = 1 + static_cast<std::uint32_t>(rng.below(8));
            cap[i] = q.maxInFlight;
            ids.push_back(table.add(q));
        }

        std::vector<std::uint64_t> attempts(n, 0);
        for (int step = 0; step < 1000; ++step) {
            std::size_t i = rng.below(n);
            if (rng.chance(0.55)) {
                ++attempts[i];
                table.admit(ids[i]);
            } else if (table.inFlight(ids[i]) > 0) {
                table.completed(ids[i], 1_us);
            }
            for (std::size_t j = 0; j < n; ++j)
                ASSERT_LE(table.inFlight(ids[j]), cap[j]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            sim::StatSet &st = table.statsOf(ids[i]);
            EXPECT_EQ(st.counterValue("admitted") +
                          st.counterValue("rejected"),
                      attempts[i]);
            while (table.inFlight(ids[i]) > 0)
                table.completed(ids[i], 1_us);
            EXPECT_EQ(table.inFlight(ids[i]), 0u);
        }
    }
}

/** Unknown tenants auto-register with the default quota when
 *  configured, and are rejected (counted at table level as zero
 *  registrations) when not. */
TEST(TenantTableProperties, AutoRegisterPolicyGovernsUnknownIds)
{
    sim::Simulator s;
    TenantConfig off;
    off.enabled = true;
    off.autoRegister = false;
    {
        TenantTable t(s, off);
        EXPECT_FALSE(t.admit(3));
        EXPECT_FALSE(t.known(3));
    }
    TenantConfig on;
    on.enabled = true;
    on.autoRegister = true;
    on.defaults.weight = 5;
    TenantTable t(s, on);
    EXPECT_TRUE(t.admit(3)); // densely fills ids 1..3
    EXPECT_TRUE(t.known(1));
    EXPECT_TRUE(t.known(2));
    EXPECT_TRUE(t.known(3));
    EXPECT_EQ(t.weight(3), 5);
    EXPECT_EQ(t.inFlight(3), 1u);
    EXPECT_EQ(t.stats().counterValue("auto_registered"), 3u);
}

/** Tag-namespace staleness: retiring a tenant bumps its generation,
 *  so (a) new arrivals are rejected, (b) responses carrying the old
 *  generation are reported non-deliverable and counted under
 *  stale_dropped, and (c) every stale finish still releases its
 *  in-flight slot — the retired VF drains to zero, never wedges. */
TEST(TenantTableProperties, RetiredGenerationIsNeverDeliverable)
{
    sim::Simulator s;
    TenantConfig cfg;
    cfg.enabled = true;
    TenantTable table(s, cfg);
    TenantId id = table.add();

    ASSERT_TRUE(table.admit(id));
    ASSERT_TRUE(table.admit(id));
    ASSERT_TRUE(table.admit(id));
    const std::uint16_t oldGen = table.generation(id);
    EXPECT_TRUE(table.current(id, oldGen));

    table.retire(id);
    EXPECT_FALSE(table.active(id));
    EXPECT_TRUE(table.known(id)); // id space is never recycled
    EXPECT_FALSE(table.current(id, oldGen));
    EXPECT_FALSE(table.admit(id)); // rejected, counted

    // A response answered to the current generation delivers...
    TenantId fresh = table.add();
    ASSERT_TRUE(table.admit(fresh));
    EXPECT_TRUE(table.finish(fresh, table.generation(fresh), 2_us));

    // ...but all three of the retiree's in-flight responses drain as
    // counted stale drops, never as deliveries.
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(table.finish(id, oldGen, 2_us));
    EXPECT_EQ(table.inFlight(id), 0u);
    sim::StatSet &st = table.statsOf(id);
    EXPECT_EQ(st.counterValue("stale_dropped"), 3u);
    EXPECT_EQ(st.counterValue("rejected"), 1u);
    EXPECT_EQ(st.counterValue("admitted"), 3u);
}

/*
 * ----- Integration rig: Dispatcher + SnicMqueue + AccelQueue -----
 */

namespace {

struct Rig
{
    sim::Simulator s;
    pcie::DeviceMemory mem{"accel.mem", 1 << 20};
    rdma::QueuePair qp{s, "qp", mem, rdma::RdmaPathModel{}};
    sim::Core core{s, "snic.0"};
    MqueueLayout layout{0, 8, 256};
};

net::Message
tenantMsg(TenantId t, std::uint64_t seq)
{
    net::Message m;
    m.payload.assign(32, static_cast<std::uint8_t>(t * 17 + seq));
    m.tenant = t;
    m.seq = seq;
    return m;
}

} // namespace

/** The mqueue quota is a hard in-flight bound: across random
 *  interleavings, a tenant's concurrently held ring tags never
 *  exceed its quota — excess work waits in its class queue — and
 *  everything is eventually delivered (deferred, not dropped). */
TEST(TenantDispatchProperties, MqueueQuotaNeverExceeded)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        sim::Rng rng(seed);
        Rig r;
        TenantConfig tcfg;
        tcfg.enabled = true;
        tcfg.autoRegister = false;
        TenantTable table(r.s, tcfg);
        constexpr std::size_t kTenants = 3;
        constexpr int kPerTenant = 8;
        std::vector<TenantId> ids;
        std::vector<std::uint32_t> quota(kTenants);
        for (std::size_t i = 0; i < kTenants; ++i) {
            TenantQuota q;
            q.weight = 1 + static_cast<int>(rng.below(4));
            q.mqueueQuota = 1 + static_cast<std::uint32_t>(rng.below(3));
            quota[i] = q.mqueueQuota;
            ids.push_back(table.add(q));
        }

        SnicMqueueConfig mcfg;
        mcfg.tenants = &table;
        SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, mcfg);
        AccelQueue gio(r.s, "gio", r.mem, r.layout);
        Dispatcher d("d", DispatchPolicy::RoundRobin,
                     DispatcherConfig{.tenants = &table});
        d.addQueue(&mq);

        // Random interleaving of each tenant's kPerTenant arrivals.
        std::vector<TenantId> arrivals;
        for (TenantId id : ids)
            for (int k = 0; k < kPerTenant; ++k)
                arrivals.push_back(id);
        for (std::size_t i = arrivals.size(); i > 1; --i)
            std::swap(arrivals[i - 1], arrivals[rng.below(i)]);

        const int kTotal = static_cast<int>(arrivals.size());
        auto checkQuota = [&] {
            for (std::size_t i = 0; i < kTenants; ++i)
                ASSERT_LE(table.tagsHeld(ids[i]), quota[i]);
        };

        auto produce = [&]() -> sim::Task {
            std::uint64_t seq = 0;
            for (TenantId t : arrivals) {
                co_await d.dispatch(r.core, tenantMsg(t, seq++));
                checkQuota();
            }
        };
        int delivered = 0;
        std::vector<int> perTenant(kTenants, 0);
        auto consume = [&]() -> sim::Task {
            while (delivered < kTotal) {
                GioMessage g = co_await gio.recv();
                checkQuota();
                const auto *c = mq.peekTag(g.tag);
                // ASSERT_* returns, which a coroutine cannot do.
                if (c == nullptr || c->tenant < 1) {
                    ADD_FAILURE() << "tag without a tenant record";
                    co_return;
                }
                ++perTenant[c->tenant - 1];
                ++delivered;
                EXPECT_TRUE(mq.tryReleaseTag(g.tag).has_value());
                // The runtime's drain task normally re-pumps on the
                // capacity-freed hook; the rig pumps inline.
                co_await d.pumpTenants(r.core);
            }
        };
        sim::spawn(r.s, produce());
        sim::spawn(r.s, consume());
        r.s.run();

        EXPECT_EQ(delivered, kTotal);
        EXPECT_EQ(d.tenantPending(), 0u);
        for (std::size_t i = 0; i < kTenants; ++i) {
            EXPECT_EQ(perTenant[i], kPerTenant);
            EXPECT_EQ(table.tagsHeld(ids[i]), 0u);
        }
        EXPECT_EQ(d.stats().counterValue("dispatched"),
                  static_cast<std::uint64_t>(kTotal));
    }
}

/** With two backlogged tenants at weights 3:1, the WRR placement
 *  order (= single-ring delivery order) serves them 3:1 inside every
 *  steady-state window; once the heavy tenant drains, the light one
 *  gets the full link (work conservation end-to-end). */
TEST(TenantDispatchProperties, DispatchOrderFollowsWeights)
{
    Rig r;
    TenantConfig tcfg;
    tcfg.enabled = true;
    tcfg.autoRegister = false;
    TenantTable table(r.s, tcfg);
    TenantQuota qa;
    qa.weight = 3;
    TenantQuota qb;
    qb.weight = 1;
    TenantId a = table.add(qa);
    TenantId b = table.add(qb);

    SnicMqueueConfig mcfg;
    mcfg.tenants = &table;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, mcfg);
    AccelQueue gio(r.s, "gio", r.mem, r.layout);
    Dispatcher d("d", DispatchPolicy::RoundRobin,
                 DispatcherConfig{.tenants = &table});
    d.addQueue(&mq);

    constexpr int kPerTenant = 24;
    auto produce = [&]() -> sim::Task {
        for (int k = 0; k < kPerTenant; ++k) {
            co_await d.dispatch(r.core, tenantMsg(a, k));
            co_await d.dispatch(r.core, tenantMsg(b, k));
        }
    };
    std::vector<TenantId> order;
    auto consume = [&]() -> sim::Task {
        // Start after the producer has filled the ring and backlogged
        // BOTH class queues — a consumer that keeps pace with the
        // producer would see plain arrival order (only one message is
        // ever waiting, and work-conserving WRR serves it), which
        // exercises conservation, not weights.
        co_await sim::sleep(1_ms);
        while (order.size() < 2 * kPerTenant) {
            GioMessage g = co_await gio.recv();
            const auto *c = mq.peekTag(g.tag);
            if (c == nullptr) {
                ADD_FAILURE() << "tag without a tenant record";
                co_return;
            }
            order.push_back(c->tenant);
            mq.tryReleaseTag(g.tag);
            co_await d.pumpTenants(r.core);
        }
    };
    sim::spawn(r.s, produce());
    sim::spawn(r.s, consume());
    r.s.run();

    ASSERT_EQ(order.size(), 2u * kPerTenant);
    // Skip the ring-fill prefix placed in plain arrival order before
    // the class queues backlogged; the next 20 services are pure WRR
    // over two backlogged classes: 3:1 within rounding slack.
    int aCount = 0;
    for (std::size_t i = 8; i < 28; ++i)
        aCount += order[i] == a;
    EXPECT_GE(aCount, 13) << "heavy tenant under-served";
    EXPECT_LE(aCount, 17) << "heavy tenant over-served";
    // The tail after the heavy class drains is all light-tenant —
    // weight 1 still gets the whole link when alone (conservation).
    EXPECT_EQ(order.back(), b);
}

/** A weight-8 tenant with no traffic never blocks a weight-1 tenant:
 *  the light tenant's whole backlog is delivered and nothing is left
 *  parked in the class queues. */
TEST(TenantDispatchProperties, WorkConservingWhenOnlyOneTenantHasWork)
{
    Rig r;
    TenantConfig tcfg;
    tcfg.enabled = true;
    tcfg.autoRegister = false;
    TenantTable table(r.s, tcfg);
    TenantQuota heavy;
    heavy.weight = 8;
    table.add(heavy); // registered, forever idle
    TenantQuota light;
    light.weight = 1;
    TenantId b = table.add(light);

    SnicMqueueConfig mcfg;
    mcfg.tenants = &table;
    SnicMqueue mq(r.s, "mq", r.qp, r.layout, MqueueKind::Server, mcfg);
    AccelQueue gio(r.s, "gio", r.mem, r.layout);
    Dispatcher d("d", DispatchPolicy::RoundRobin,
                 DispatcherConfig{.tenants = &table});
    d.addQueue(&mq);

    constexpr int kMsgs = 20;
    auto produce = [&]() -> sim::Task {
        for (int k = 0; k < kMsgs; ++k)
            co_await d.dispatch(r.core, tenantMsg(b, k));
    };
    int delivered = 0;
    auto consume = [&]() -> sim::Task {
        while (delivered < kMsgs) {
            GioMessage g = co_await gio.recv();
            const auto *c = mq.peekTag(g.tag);
            if (c == nullptr) {
                ADD_FAILURE() << "tag without a tenant record";
                co_return;
            }
            EXPECT_EQ(c->tenant, b);
            ++delivered;
            mq.tryReleaseTag(g.tag);
            co_await d.pumpTenants(r.core);
        }
    };
    sim::spawn(r.s, produce());
    sim::spawn(r.s, consume());
    r.s.run();

    EXPECT_EQ(delivered, kMsgs);
    EXPECT_EQ(d.tenantPending(), 0u);
}
